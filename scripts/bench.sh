#!/usr/bin/env sh
# bench.sh — refresh the repository's performance trajectory.
#
# Runs the kernel micro-benchmarks and the full experiment-suite
# benchmarks with -benchmem, parses the output through cmd/benchjson,
# and writes:
#
#   BENCH_kernel.json       internal/sim micro-benchmarks
#   BENCH_experiments.json  paper-experiment benchmarks + RunAll wall
#                           times (serial vs -parallel 8)
#   BENCH_lanes.json        laned campaign speedup/efficiency: wall-clock
#                           speedup over serial plus the lane profiler's
#                           own estimate and parallel efficiency
#   BENCH_analysis.json     streaming analysis pipeline: streamed vs
#                           materialized digest (B/op, flows/sec) and
#                           the GOMEMLIMIT-bounded peak heap of a
#                           Fig13-scale streamed digest
#   BENCH_storefault.json   storage seam overhead: journal-line and
#                           flowstore-block writes raw vs through the
#                           passthrough FS seam, plus the measured
#                           seam/raw ratios (gated within noise in
#                           -smoke)
#
# Each file keeps the best of -count runs per benchmark. Commit the
# refreshed files alongside any change that moves them.
#
#   scripts/bench.sh            full measurement (minutes)
#   scripts/bench.sh -smoke     one iteration per benchmark, output to a
#                               temp dir — a CI gate that bench code and
#                               the JSON pipeline still work; committed
#                               BENCH_*.json are left untouched.
set -eu
cd "$(dirname "$0")/.."

smoke=0
if [ "${1:-}" = "-smoke" ]; then
    smoke=1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ "$smoke" -eq 1 ]; then
    benchtime=1x
    count=1
    kernel_out="$tmp/BENCH_kernel.json"
    experiments_out="$tmp/BENCH_experiments.json"
    lanes_out="$tmp/BENCH_lanes.json"
    analysis_out="$tmp/BENCH_analysis.json"
    storefault_out="$tmp/BENCH_storefault.json"
else
    benchtime=
    count=3
    kernel_out=BENCH_kernel.json
    experiments_out=BENCH_experiments.json
    lanes_out=BENCH_lanes.json
    analysis_out=BENCH_analysis.json
    storefault_out=BENCH_storefault.json
fi

go build -o "$tmp/benchjson" ./cmd/benchjson

echo "== kernel micro-benchmarks (internal/sim) =="
go test -run '^$' -bench . -benchmem ${benchtime:+-benchtime $benchtime} \
    -count "$count" ./internal/sim | tee "$tmp/kernel.txt"

# Laned campaign wall time: the same journaled campaign driven serially
# and through sharded dataplane lanes. The speedup is hardware-dependent
# (it needs real cores; on one core the window barrier is pure
# overhead), so it is recorded, not gated — what IS gated, in -smoke
# mode, is that lanes with one worker stay within noise of serial and
# that both runs leave byte-identical metrics and WALs.
echo "== laned campaign wall time: serial vs -lanes 4 =="
go build -o "$tmp/patchwork" ./cmd/patchwork
if [ "$smoke" -eq 1 ]; then
    laned_runs=1
else
    laned_runs=3
fi
laned_wall_ms() {
    start=$(date +%s%N)
    "$tmp/patchwork" -federation-sites 4 -runs "$laned_runs" -samples 2 \
        -sample-sec 2 -seed 9 -remedy -checkpoint-sec 10 \
        -journal "$tmp/lw-$1-$2" -out "$tmp/lw-out-$1-$2" \
        -metrics "$tmp/lw-$1-$2.prom" \
        -lanes "$1" -lane-workers "$2" ${3:-} > /dev/null
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}
laned_serial_ms=$(laned_wall_ms 1 0)
laned_w1_ms=$(laned_wall_ms 4 1)
laned_w4_ms=$(laned_wall_ms 4 4 -profile)
cmp "$tmp/lw-1-0.prom" "$tmp/lw-4-1.prom"
cmp "$tmp/lw-1-0.prom" "$tmp/lw-4-4.prom"
cmp "$tmp/lw-1-0/wal.jsonl" "$tmp/lw-4-1/wal.jsonl"
cmp "$tmp/lw-1-0/wal.jsonl" "$tmp/lw-4-4/wal.jsonl"
echo "laned campaign: serial ${laned_serial_ms} ms, lanes=4/w=1 ${laned_w1_ms} ms, lanes=4/w=4 ${laned_w4_ms} ms (artifacts byte-identical)"
if [ "$smoke" -eq 1 ]; then
    # Noise gate: one worker must not cost more than 2x serial (+25 ms
    # floor so sub-50ms runs don't trip on scheduler jitter).
    limit=$(( laned_serial_ms * 2 + 25 ))
    if [ "$laned_w1_ms" -gt "$limit" ]; then
        echo "laned(1 worker) took ${laned_w1_ms} ms, over noise limit ${limit} ms (serial ${laned_serial_ms} ms)" >&2
        exit 1
    fi
fi

"$tmp/benchjson" \
    -add "LanedCampaignWallSerial:ms:$laned_serial_ms" \
    -add "LanedCampaignWall1Worker:ms:$laned_w1_ms" \
    -add "LanedCampaignWall4Workers:ms:$laned_w4_ms" \
    < "$tmp/kernel.txt" > "$kernel_out"

# Lane speedup/efficiency report: the measured wall-clock speedup over
# serial, plus the lane profiler's own estimate and parallel efficiency
# pulled from the -profile run's lane-summary.json. All of these are
# hardware-dependent — recorded for the trajectory, never gated.
summary="$tmp/lw-out-4-4/prof/lane-summary.json"
json_field() {
    awk -F'[:,]' -v k="\"$1\"" '$0 ~ k { gsub(/[[:space:]]/, "", $2); print $2; exit }' "$summary"
}
wall_speedup=$(awk -v s="$laned_serial_ms" -v p="$laned_w4_ms" \
    'BEGIN { if (p > 0) printf "%.3f", s / p; else print 0 }')
est_speedup=$(json_field est_speedup)
efficiency=$(json_field parallel_efficiency)
"$tmp/benchjson" \
    -add "LanedWallSpeedup4Workers:x:${wall_speedup:-0}" \
    -add "LanedEstSpeedup4Workers:x:${est_speedup:-0}" \
    -add "LanedParallelEfficiency4Workers:frac:${efficiency:-0}" \
    < /dev/null > "$lanes_out"
echo "lane speedup: wall ${wall_speedup:-0}x, profiler estimate ${est_speedup:-0}x, efficiency ${efficiency:-0}"

echo "== experiment benchmarks (repro root) =="
# The figure/table benchmarks regenerate full paper artifacts per
# iteration (seconds each), so one iteration per count is the
# measurement; the per-frame micro-benchmarks need real iteration
# counts, so they run with the default benchtime.
micro='^Benchmark(WireFastPath|CaptureEngine|HostWritev)$'
go test -run '^$' -bench . -benchmem -benchtime 1x \
    -count "$count" . \
    | grep -Ev '^Benchmark(WireFastPath|CaptureEngine|HostWritev)\b' \
    | tee "$tmp/experiments.txt"
go test -run '^$' -bench "$micro" -benchmem ${benchtime:+-benchtime $benchtime} \
    -count "$count" . | tee -a "$tmp/experiments.txt"

echo "== streaming analysis: streamed vs materialized digest =="
# The figure corpus is regenerated per iteration, so one iteration per
# count is the measurement (same reasoning as the experiment suite).
go test -run '^$' -bench '^Benchmark(Streamed|Materialized)FlowDigest$' \
    -benchmem -benchtime 1x -count "$count" . | tee "$tmp/analysis.txt"

# Bounded-memory gate: a Fig13-scale streamed digest runs with the Go
# heap pinned to 64 MiB; the test fails if peak HeapAlloc exceeds the
# budget (the materialized pipeline needs several hundred MB for the
# same corpus). The measured peak lands in BENCH_analysis.json.
GOMEMLIMIT=64MiB PW_STREAM_HEAP_BUDGET_MB=64 \
    go test -run '^TestStreamedDigestHeapBudget$' -v . | tee "$tmp/heap.txt"
peak_heap=$(awk '/peak_heap_mb/ { print $NF }' "$tmp/heap.txt")
"$tmp/benchjson" \
    -add "StreamedDigestPeakHeap64MiBLimit:MB:${peak_heap:-0}" \
    < "$tmp/analysis.txt" > "$analysis_out"
echo "streamed digest peak heap under GOMEMLIMIT=64MiB: ${peak_heap:-?} MB"

echo "== storage seam overhead: raw vs passthrough FS =="
# The fault-injection seam routes every journal and flowstore write
# through an interface; the gate proves the passthrough costs ~0. The
# gate test runs in every mode (smoke included) and FAILS if the seam
# exceeds 2x + 2µs of the raw write on either hot-path shape; the
# benchmarks record the trajectory.
go test -run '^$' -bench '^BenchmarkSeam' -benchmem ${benchtime:+-benchtime $benchtime} \
    -count "$count" ./internal/storefault | tee "$tmp/storefault.txt"
PW_SEAM_GATE=1 go test -run '^TestSeamOverheadGate$' -count=1 -v \
    ./internal/storefault | tee "$tmp/seamgate.txt"
seam_ratio() {
    awk -v k="$1" '$1 == "seam_overhead" && $2 == k { sub(/ratio=/, "", $NF); print $NF; exit }' \
        "$tmp/seamgate.txt"
}
journal_ratio=$(seam_ratio journal-line)
block_ratio=$(seam_ratio flowstore-block)
"$tmp/benchjson" \
    -add "SeamOverheadJournalLine:x:${journal_ratio:-0}" \
    -add "SeamOverheadFlowstoreBlock:x:${block_ratio:-0}" \
    < "$tmp/storefault.txt" > "$storefault_out"
echo "storage seam overhead: journal-line ${journal_ratio:-?}x, flowstore-block ${block_ratio:-?}x raw"

if [ "$smoke" -eq 1 ]; then
    "$tmp/benchjson" < "$tmp/experiments.txt" > "$experiments_out"
    echo "smoke ok: $(ls "$tmp"/BENCH_*.json | wc -l) reports generated (discarded)"
    exit 0
fi
echo "wrote $analysis_out"

echo "wrote $lanes_out"

echo "wrote $storefault_out"

echo "== RunAll wall time: serial vs parallel =="
go build -o "$tmp/pwexperiments" ./cmd/pwexperiments
wall_ms() {
    start=$(date +%s%N)
    "$tmp/pwexperiments" -all -parallel "$1" > /dev/null
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
}
serial_ms=$(wall_ms 1)
parallel_ms=$(wall_ms 8)
echo "RunAll serial: ${serial_ms} ms, -parallel 8: ${parallel_ms} ms"

"$tmp/benchjson" \
    -add "RunAllWallSerial:ms:$serial_ms" \
    -add "RunAllWallParallel8:ms:$parallel_ms" \
    < "$tmp/experiments.txt" > "$experiments_out"

echo "wrote $kernel_out and $experiments_out"
