#!/usr/bin/env sh
# CI gate: build, vet, race-enabled tests, and a benchmark smoke pass
# (one iteration per benchmark, no test re-runs) to catch bit-rotted
# bench code without paying for real measurements.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go test -bench=. -benchtime=1x -run='^$' .
