#!/usr/bin/env sh
# CI gate: build, vet, race-enabled tests, a benchmark smoke pass
# (one iteration per benchmark, no test re-runs) to catch bit-rotted
# bench code without paying for real measurements, and a short fuzz
# smoke over the wire-format parsers (seed corpus plus a few seconds of
# mutation — enough to catch regressions in the option/length walkers).
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go test -bench=. -benchtime=1x -run='^$' .
go test -run='^$' -fuzz='^FuzzParsePacket$' -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz='^FuzzTCPOptions$' -fuzztime=5s ./internal/wire
