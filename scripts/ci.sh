#!/usr/bin/env sh
# CI gate: formatting, build, vet, race-enabled tests (short mode — the
# parallel-harness and chaos determinism tests still run their
# concurrent paths there, so the race detector permanently gates the
# "parallel simulations share no state" contract), a bench.sh smoke pass
# (one iteration per benchmark plus the BENCH_*.json pipeline) so CI
# fails if benchmark code no longer compiles, a short fuzz smoke over
# the wire-format parsers (seed corpus plus a few seconds of mutation —
# enough to catch regressions in the option/length walkers — plus the
# flow-store segment codec and the sketch merge operators), a
# streaming-analytics equivalence gate (the single-pass digester and
# the materialized in-memory pipeline must agree byte-for-byte on every
# CSV and figure artifact, spilling included), and a
# validate-only dry run of every health-alert rule file (the embedded
# defaults always, plus any rules/*.json), a crash/resume gate: a
# journaled campaign is killed at an injected crash point (exit 3),
# resumed, and its metrics and WAL must be byte-identical to an
# uninterrupted baseline of the same seed — repeated under sharded
# dataplane lanes (-lanes), where the laned run, the killed-and-resumed
# laned run, and the serial baseline must all byte-match (the short-mode
# race run above also carries the laned randomized-topology stress
# suite), and a live-telemetry gate: a
# campaign served with -serve is probed over HTTP (pwlive validates the
# exposition and JSON endpoints), shut down with SIGTERM, and its
# artifacts must be byte-identical to the unserved baseline, and a
# provenance gate: the same campaign run with -provenance serially and
# under -lanes must write byte-identical causal traces, and pwprof must
# produce a critical-path report from them.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race -short ./...
sh scripts/bench.sh -smoke
go test -run='^$' -fuzz='^FuzzParsePacket$' -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz='^FuzzTCPOptions$' -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz='^FuzzParsePolicy$' -fuzztime=5s ./internal/remedy
go test -run='^$' -fuzz='^FuzzLanePartition$' -fuzztime=5s ./internal/lanes
go test -run='^$' -fuzz='^FuzzSegmentCodec$' -fuzztime=5s ./internal/flowstore
go test -run='^$' -fuzz='^FuzzSketchMerge$' -fuzztime=5s ./internal/sketch
go test -run='^$' -fuzz='^FuzzRingSegment$' -fuzztime=5s ./internal/livemon

# Streaming-analytics equivalence gate: streamed digest vs materialized
# baseline on clean and hostile corpora (internal/analysis), and the
# pwanalyze CLI end-to-end with spilling forced (cmd/pwanalyze).
go test -run '^TestStreamEquivalence' ./internal/analysis
go test -run '^TestRunMatchesInMemoryPipeline$' ./cmd/pwanalyze
echo "streaming equivalence gate: digester matches in-memory pipeline byte-for-byte"

go run ./cmd/pwhealth -validate
if ls rules/*.json >/dev/null 2>&1; then
    go run ./cmd/pwhealth -validate rules/*.json
fi

# Crash/resume gate: baseline (crash points journaled but ignored),
# then a killed run that must exit 3, then a resume that must converge
# on the baseline's exact metrics and WAL.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/patchwork" ./cmd/patchwork
cat >"$tmp/plan.json" <<'EOF'
{"name": "ci-crash", "crash_points": [{"at_sec": 7}]}
EOF
common="-federation-sites 2 -runs 1 -samples 2 -sample-sec 2 -seed 7 \
    -remedy -checkpoint-sec 5 -faults $tmp/plan.json"
"$tmp/patchwork" $common -journal "$tmp/base" -out "$tmp/base-out" \
    -metrics "$tmp/base.prom" -no-kill >/dev/null
rc=0
"$tmp/patchwork" $common -journal "$tmp/crash" -out "$tmp/crash-out" \
    -metrics "$tmp/crash.prom" >/dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "crash run exited $rc, want 3" >&2
    exit 1
fi
"$tmp/patchwork" -resume "$tmp/crash" -out "$tmp/crash-out" \
    -metrics "$tmp/crash.prom" >/dev/null
cmp "$tmp/base.prom" "$tmp/crash.prom"
cmp "$tmp/base/wal.jsonl" "$tmp/crash/wal.jsonl"
echo "crash/resume gate: metrics and WAL byte-identical"

# Laned crash/resume gate: the same campaign sharded across dataplane
# lanes. The uninterrupted laned run must byte-match the serial
# baseline; a laned run killed at the crash point and resumed (under a
# different worker count) must byte-match both.
"$tmp/patchwork" $common -journal "$tmp/lbase" -out "$tmp/lbase-out" \
    -metrics "$tmp/lbase.prom" -no-kill -lanes 2 -lane-workers 2 >/dev/null
cmp "$tmp/base.prom" "$tmp/lbase.prom"
cmp "$tmp/base/wal.jsonl" "$tmp/lbase/wal.jsonl"
rc=0
"$tmp/patchwork" $common -journal "$tmp/lcrash" -out "$tmp/lcrash-out" \
    -metrics "$tmp/lcrash.prom" -lanes 2 -lane-workers 2 >/dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "laned crash run exited $rc, want 3" >&2
    exit 1
fi
"$tmp/patchwork" -resume "$tmp/lcrash" -out "$tmp/lcrash-out" \
    -metrics "$tmp/lcrash.prom" -lanes 2 -lane-workers 1 >/dev/null
cmp "$tmp/base.prom" "$tmp/lcrash.prom"
cmp "$tmp/base/wal.jsonl" "$tmp/lcrash/wal.jsonl"
echo "laned crash/resume gate: artifacts byte-identical to serial baseline"

# Live-telemetry gate: the same campaign served on an ephemeral port.
# -serve-hold keeps the server up after completion so the probe sees a
# finished campaign; pwlive validates /metrics (Prometheus syntax +
# histogram monotonicity), the JSON endpoints, and a ring time-range
# query; SIGTERM releases the hold for a graceful exit 0. The served
# run's artifacts must byte-match the unserved baseline — attaching the
# telemetry plane must not perturb the simulation.
go build -o "$tmp/pwlive" ./cmd/pwlive
"$tmp/patchwork" $common -journal "$tmp/serve" -out "$tmp/serve-out" \
    -metrics "$tmp/serve.prom" -no-kill -serve :0 -serve-hold >/dev/null &
serve_pid=$!
"$tmp/pwlive" -addr-file "$tmp/serve-out/livemon/addr" -wait-sec 30 \
    -series sim_events_processed -min-points 2 >/dev/null
kill -TERM "$serve_pid"
wait "$serve_pid"
cmp "$tmp/base.prom" "$tmp/serve.prom"
cmp "$tmp/base/wal.jsonl" "$tmp/serve/wal.jsonl"
go run ./cmd/pwhealth -check-prom "$tmp/serve.prom" >/dev/null
echo "live-telemetry gate: probe passed, artifacts byte-identical with -serve"

# Provenance gate: the causal event DAG recorded with -provenance is a
# sim-time artifact, so a serial run and a sharded laned run of the same
# seed must write byte-identical traces — and recording it (plus wall
# profiling on the laned run) must not perturb any other artifact. A
# pwprof smoke run then proves the trace loads and yields a critical
# path and blame report.
"$tmp/patchwork" $common -journal "$tmp/pserial" -out "$tmp/pserial-out" \
    -metrics "$tmp/pserial.prom" -no-kill -provenance >/dev/null
"$tmp/patchwork" $common -journal "$tmp/planed" -out "$tmp/planed-out" \
    -metrics "$tmp/planed.prom" -no-kill -lanes 2 -lane-workers 2 \
    -provenance -profile >/dev/null
cmp "$tmp/pserial-out/prof/provenance.trace" "$tmp/planed-out/prof/provenance.trace"
cmp "$tmp/base.prom" "$tmp/pserial.prom"
cmp "$tmp/base.prom" "$tmp/planed.prom"
cmp "$tmp/base/wal.jsonl" "$tmp/pserial/wal.jsonl"
test -s "$tmp/planed-out/prof/lane-trace.json"
test -s "$tmp/planed-out/prof/lane-summary.json"
go build -o "$tmp/pwprof" ./cmd/pwprof
"$tmp/pwprof" -top 5 -chrome "$tmp/critical.json" \
    "$tmp/pserial-out/prof/provenance.trace" | grep -q "critical path:"
test -s "$tmp/critical.json"
echo "provenance gate: serial and laned traces byte-identical, pwprof report ok"

# Crash-point-matrix smoke: kill the campaign at a strided set of WAL
# record and checkpoint-swap boundaries (every boundary runs in the
# full, non-short suite) and require the resumed artifacts byte-match
# the uninterrupted baseline.
go test -short -run '^TestCrashPointMatrix' .
echo "crash-point-matrix smoke: resume byte-identical at probed boundaries"

# Storage-chaos gate: a campaign journaling through a hostile
# fault-injecting filesystem (torn write, bit flip, ENOSPC on the WAL)
# must still complete with exit 0, count the loud fault in
# patchwork_storage_errors_total, and a same-seed rerun must replay the
# chaos injection-for-injection (byte-identical storefault.jsonl).
cat >"$tmp/store-plan.json" <<'EOF'
{
  "name": "ci-hostile-store",
  "torn_writes": [{"path_glob": "wal.jsonl", "rate": 1, "after_ops": 6,  "max": 1}],
  "bit_flips":   [{"path_glob": "wal.jsonl", "rate": 1, "after_ops": 10, "max": 1}],
  "enospc":      [{"path_glob": "wal.jsonl", "rate": 1, "after_ops": 8,  "max": 1}]
}
EOF
"$tmp/patchwork" $common -journal "$tmp/chaos1/journal" -out "$tmp/chaos1" \
    -metrics "$tmp/chaos1.prom" -no-kill -store-chaos "$tmp/store-plan.json" >/dev/null
"$tmp/patchwork" $common -journal "$tmp/chaos2/journal" -out "$tmp/chaos2" \
    -metrics "$tmp/chaos2.prom" -no-kill -store-chaos "$tmp/store-plan.json" >/dev/null
test -s "$tmp/chaos1/storefault.jsonl"
cmp "$tmp/chaos1/storefault.jsonl" "$tmp/chaos2/storefault.jsonl"
grep -q 'patchwork_storage_errors_total{artifact="append"} 1' "$tmp/chaos1.prom"
echo "storage-chaos gate: hostile plan survived, injections replay byte-identically"

# pwfsck gate: the chaos campaign's silent faults (the torn write and
# bit flip land mid-WAL, because later appends continue past them) are
# exactly what the scrubber exists to find. Doctor the directory
# further with shell-planted damage — a pcap truncated mid-record, an
# event log with an unterminated tail — then require pwfsck to report
# mid-file corruption (exit 3), -repair to truncate every damaged
# artifact to its last valid frame, and a re-scrub to come back clean.
go build -o "$tmp/pwfsck" ./cmd/pwfsck
cp -r "$tmp/chaos1" "$tmp/doctored"
pc=$(find "$tmp/doctored" -name '*.pcap' | head -1)
head -c "$(($(wc -c <"$pc") - 11))" "$pc" >"$pc.t" && mv "$pc.t" "$pc"
printf '{"torn' >>"$tmp/doctored/health/alerts.jsonl"
rc=0
"$tmp/pwfsck" "$tmp/doctored" >/dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "pwfsck on doctored chaos dir exited $rc, want 3 (mid-file corruption)" >&2
    exit 1
fi
rc=0
"$tmp/pwfsck" -repair "$tmp/doctored" >/dev/null || rc=$?
if [ "$rc" -ne 3 ] && [ "$rc" -ne 2 ] && [ "$rc" -ne 0 ]; then
    echo "pwfsck -repair exited $rc" >&2
    exit 1
fi
"$tmp/pwfsck" "$tmp/doctored"
echo "pwfsck gate: chaos + doctored damage detected, repaired, re-scrub clean"
