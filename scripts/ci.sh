#!/usr/bin/env sh
# CI gate: formatting, build, vet, race-enabled tests (short mode — the
# parallel-harness and chaos determinism tests still run their
# concurrent paths there, so the race detector permanently gates the
# "parallel simulations share no state" contract), a bench.sh smoke pass
# (one iteration per benchmark plus the BENCH_*.json pipeline) so CI
# fails if benchmark code no longer compiles, a short fuzz smoke over
# the wire-format parsers (seed corpus plus a few seconds of mutation —
# enough to catch regressions in the option/length walkers), and a
# validate-only dry run of every health-alert rule file (the embedded
# defaults always, plus any rules/*.json).
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race -short ./...
sh scripts/bench.sh -smoke
go test -run='^$' -fuzz='^FuzzParsePacket$' -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz='^FuzzTCPOptions$' -fuzztime=5s ./internal/wire

go run ./cmd/pwhealth -validate
if ls rules/*.json >/dev/null 2>&1; then
    go run ./cmd/pwhealth -validate rules/*.json
fi
