package repro

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/remedy"
)

// The campaign-level determinism-equivalence harness for sharded
// execution: a full journaled campaign — capture pipeline, health
// monitor, self-healing supervisor, fault injection — must leave
// byte-identical artifacts whether the kernel is driven serially or
// through parallel dataplane lanes, at every worker count.

// lanedHostilePlan is the hostile fault-plan variant against the first
// three sites of the default federation (STAR, NCSA, UCSD): a flaky
// allocator and corrupted mirror, a site outage, port flaps, slow
// storage, and capture stalls — all while lanes run in parallel.
const lanedHostilePlan = `{
  "name": "laned-hostile",
  "allocator_transients": [{"site": "STAR", "rate": 0.3, "from_sec": 0, "to_sec": 20}],
  "site_outages":         [{"site": "NCSA", "from_sec": 1, "to_sec": 6}],
  "port_flaps":           [{"site": "UCSD", "port": "P1", "at_sec": 4, "down_sec": 2, "repeat": 2, "every_sec": 8}],
  "mirror_corruptions":   [{"site": "STAR", "rate": 0.05}],
  "storage_slowdowns":    [{"site": "NCSA", "factor": 3}],
  "capture_stalls":       [{"site": "UCSD", "rate": 0.1, "stall_sec": 0.002}]
}`

// lanedArtifacts is every campaign output the harness byte-compares.
type lanedArtifacts struct {
	metrics  []byte
	alertLog []byte
	wal      []byte
	pcapDig  uint64
	pcaps    int
	summary  string
}

func lanedSpec(t *testing.T, hostile bool) campaign.Spec {
	t.Helper()
	pol := remedy.DefaultPolicy()
	spec := campaign.Spec{
		FederationSites: 3, Runs: 1, Samples: 2,
		SampleSec: 2, IntervalSec: 4, Seed: 17,
		Remedy: &pol, CheckpointSec: 5,
	}
	if hostile {
		plan, err := faults.Parse([]byte(lanedHostilePlan))
		if err != nil {
			t.Fatal(err)
		}
		spec.Faults = &plan
	}
	return spec.WithDefaults()
}

// runLanedCampaign executes one campaign under the given execution
// strategy and collects its artifacts. kill=false: crash points (none
// in these plans) would be journaled but not honored.
func runLanedCampaign(t *testing.T, spec campaign.Spec, exec campaign.Exec) lanedArtifacts {
	t.Helper()
	dir := t.TempDir()
	res, err := campaign.RunExec(spec, dir, false, exec)
	if err != nil {
		t.Fatalf("campaign (lanes=%d workers=%d): %v", exec.Lanes, exec.Workers, err)
	}
	if res.Crashed || res.Profile == nil {
		t.Fatalf("campaign (lanes=%d workers=%d): crashed=%v", exec.Lanes, exec.Workers, res.Crashed)
	}
	return collectLanedArtifacts(t, res, dir)
}

func collectLanedArtifacts(t *testing.T, res *campaign.Result, dir string) lanedArtifacts {
	t.Helper()
	var metrics bytes.Buffer
	if err := res.Registry.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	var alerts bytes.Buffer
	if err := res.Monitor.WriteAlertLog(&alerts); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, journal.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	pcaps := 0
	for _, b := range res.Profile.Bundles {
		fmt.Fprintf(h, "site=%s n=%d\n", b.Site, len(b.CompressedPcaps))
		for _, p := range b.CompressedPcaps {
			h.Write(p)
			pcaps++
		}
	}
	art := lanedArtifacts{
		metrics:  metrics.Bytes(),
		alertLog: alerts.Bytes(),
		wal:      wal,
		pcapDig:  h.Sum64(),
		pcaps:    pcaps,
	}
	if res.Injector != nil {
		art.summary = res.Injector.Summary()
	}
	return art
}

func diffLanedArtifacts(t *testing.T, label string, want, got lanedArtifacts) {
	t.Helper()
	if !bytes.Equal(want.metrics, got.metrics) {
		t.Errorf("%s: metrics differ from serial (lens %d vs %d)", label, len(got.metrics), len(want.metrics))
	}
	if !bytes.Equal(want.alertLog, got.alertLog) {
		t.Errorf("%s: alert log differs from serial:\n%s\nvs\n%s", label, got.alertLog, want.alertLog)
	}
	if !bytes.Equal(want.wal, got.wal) {
		t.Errorf("%s: journal WAL differs from serial (lens %d vs %d)", label, len(got.wal), len(want.wal))
	}
	if want.pcapDig != got.pcapDig || want.pcaps != got.pcaps {
		t.Errorf("%s: pcap digest %#x (%d pcaps), serial %#x (%d)", label, got.pcapDig, got.pcaps, want.pcapDig, want.pcaps)
	}
	if want.summary != got.summary {
		t.Errorf("%s: injection summary %q, serial %q", label, got.summary, want.summary)
	}
}

func lanedWorkerCounts() []int {
	counts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}
	return counts
}

// TestLanedCampaignEquivalence: identical seeded campaigns, serial vs
// laned at worker counts {1, 2, 4, 8, NumCPU}, must agree byte-for-byte
// on metrics, alert logs, pcap digests, and journal WALs — clean and
// under the hostile fault plan.
func TestLanedCampaignEquivalence(t *testing.T) {
	for _, hostile := range []bool{false, true} {
		name := "clean"
		if hostile {
			name = "hostile"
		}
		hostile := hostile
		t.Run(name, func(t *testing.T) {
			spec := lanedSpec(t, hostile)
			serial := runLanedCampaign(t, spec, campaign.Exec{})
			if serial.pcaps == 0 {
				t.Fatal("serial baseline produced no pcaps")
			}
			if hostile && serial.summary == "" {
				t.Fatal("hostile baseline injected nothing")
			}
			for _, workers := range lanedWorkerCounts() {
				exec := campaign.Exec{Lanes: 3, Workers: workers}
				got := runLanedCampaign(t, spec, exec)
				diffLanedArtifacts(t, fmt.Sprintf("lanes=3 workers=%d", workers), serial, got)
			}
		})
	}
}

// TestLanedCampaignCrashResume: a laned campaign killed at an injected
// crash point and resumed (still laned) must converge on the exact
// artifacts of the uninterrupted SERIAL baseline — crash consistency
// and shard equivalence composed.
func TestLanedCampaignCrashResume(t *testing.T) {
	spec := lanedSpec(t, false)
	plan, err := faults.Parse([]byte(`{"name": "laned-crash", "crash_points": [{"at_sec": 7}]}`))
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = &plan

	baseline := runLanedCampaign(t, spec, campaign.Exec{}) // kill=false: crash ignored

	exec := campaign.Exec{Lanes: 3, Workers: 4}
	dir := t.TempDir()
	res, err := campaign.RunExec(spec, dir, true, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("laned campaign did not honor the crash point")
	}
	// Resume under a DIFFERENT worker count: the journal must not care
	// how the dead campaign was sharded.
	res, err = campaign.ResumeExec(dir, true, campaign.Exec{Lanes: 3, Workers: 2})
	if err != nil {
		t.Fatalf("laned resume: %v", err)
	}
	if res.Crashed || res.Profile == nil {
		t.Fatalf("resume did not complete: crashed=%v", res.Crashed)
	}
	got := collectLanedArtifacts(t, res, dir)
	// The killed run's WAL carries the extra crash record; everything
	// else must match the uninterrupted serial baseline exactly.
	if !bytes.Equal(baseline.metrics, got.metrics) {
		t.Errorf("resumed laned metrics differ from serial baseline (lens %d vs %d)",
			len(got.metrics), len(baseline.metrics))
	}
	if !bytes.Equal(baseline.alertLog, got.alertLog) {
		t.Error("resumed laned alert log differs from serial baseline")
	}
	if baseline.pcapDig != got.pcapDig {
		t.Errorf("resumed laned pcap digest %#x, serial baseline %#x", got.pcapDig, baseline.pcapDig)
	}
}
