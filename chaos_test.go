package repro

import (
	"bytes"
	"testing"

	patchwork "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
)

// hostilePlan exercises every fault kind at once: a flaky allocator and
// corrupted mirror table at SITEA, a hard outage plus slow storage at
// SITEB, and a flapping port plus capture-core stalls at SITEC.
const hostilePlan = `{
  "name": "hostile",
  "allocator_transients": [{"site": "SITEA", "rate": 0.4, "from_sec": 0, "to_sec": 30}],
  "site_outages":         [{"site": "SITEB", "from_sec": 1, "to_sec": 8}],
  "port_flaps":           [{"site": "SITEC", "port": "P1", "at_sec": 5, "down_sec": 3, "repeat": 2, "every_sec": 10}],
  "mirror_corruptions":   [{"site": "SITEA", "rate": 0.05}],
  "storage_slowdowns":    [{"site": "SITEB", "factor": 3}],
  "capture_stalls":       [{"site": "SITEC", "rate": 0.1, "stall_sec": 0.002}]
}`

// chaosRun executes one full profiling campaign under the hostile plan
// and returns the profile, the exported metrics, and the injection
// summary. Everything — kernel, federation, traffic, registry — is
// rebuilt from scratch so consecutive calls share no state.
func chaosRun(t *testing.T, seed uint64) (*patchwork.Profile, []byte, string) {
	t.Helper()
	k := sim.NewKernel()
	specs := make([]testbed.SiteSpec, 3)
	for i := range specs {
		specs[i] = testbed.SiteSpec{
			Name: "SITE" + string(rune('A'+i)), Uplinks: 2, Downlinks: 10,
			DedicatedNICs: 3, Cores: 64, RAM: 256 * units.GB, Storage: 2 * units.TB,
		}
	}
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewKernelRegistry(k)
	fed.SetObs(reg)

	plan, err := faults.Parse([]byte(hostilePlan))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := faults.NewEngine(k, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetObs(reg)
	if err := eng.Arm(fed); err != nil {
		t.Fatal(err)
	}

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 15*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], seed+uint64(i))
		d := patchwork.NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 120
		drivers = append(drivers, d)
		d.Start()
	}
	poller.Start()

	cfg := patchwork.Config{
		Mode:            patchwork.AllExperiment,
		SampleDuration:  2 * sim.Second,
		SampleInterval:  4 * sim.Second,
		SamplesPerRun:   2,
		Runs:            3,
		InstancesWanted: 1,
		Seed:            seed,
		Obs:             reg,
		Faults:          eng,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return prof, buf.Bytes(), eng.Summary()
}

// TestChaosExperimentSurvivesHostilePlan: a full experiment under the
// hostile plan must still complete, with every site accounted for and
// data loss bounded — adversity costs samples, not the campaign.
func TestChaosExperimentSurvivesHostilePlan(t *testing.T) {
	prof, _, summary := chaosRun(t, 11)
	if len(prof.Bundles) != 3 {
		t.Fatalf("bundles = %d, want 3", len(prof.Bundles))
	}
	var captured, dropped int64
	sitesWithData := 0
	for _, b := range prof.Bundles {
		t.Logf("%s: %v granted=%d/%d pcaps=%d (%s)",
			b.Site, b.Outcome, b.InstancesGranted, b.InstancesRequested,
			len(b.CompressedPcaps), b.FailureReason)
		// The watchdog outcome would mean the platform itself crashed; the
		// plan must only be able to cost resources, never crash the run.
		if b.Outcome == patchwork.OutcomeIncomplete {
			t.Errorf("%s: hostile plan crashed the run: %s", b.Site, b.FailureReason)
		}
		if len(b.CompressedPcaps) > 0 {
			sitesWithData++
		}
		for _, s := range b.Samples {
			captured += s.Frames
			dropped += s.DroppedAtNIC + int64(s.CloneDrops)
		}
	}
	if sitesWithData < 2 {
		t.Errorf("only %d/3 sites produced captures under the plan", sitesWithData)
	}
	if captured == 0 {
		t.Fatal("no frames captured under the hostile plan")
	}
	// Bounded data loss: the plan's drop faults (mirror corruption, port
	// flaps, stalls) must not cost more than half the offered frames.
	if dropped > captured {
		t.Errorf("unbounded loss: %d dropped vs %d captured", dropped, captured)
	}
	// The outage at SITEB overlaps its setup; the retry loop must have
	// carried it through rather than failing the site.
	for _, b := range prof.Bundles {
		if b.Site == "SITEB" && b.Outcome == patchwork.OutcomeFailed {
			t.Errorf("SITEB failed despite a recoverable 7s outage: %s", b.FailureReason)
		}
	}
	if summary == "" {
		t.Error("engine injected nothing under the hostile plan")
	}
	t.Logf("faults injected: %s", summary)
}

// TestChaosDeterminism: the fault plan is part of the experiment's
// replayable input — two runs with the same seed must export
// byte-identical metrics and identical injection summaries, and a
// different seed must diverge.
func TestChaosDeterminism(t *testing.T) {
	_, m1, s1 := chaosRun(t, 11)
	_, m2, s2 := chaosRun(t, 11)
	if !bytes.Equal(m1, m2) {
		t.Errorf("same seed, different metrics (lens %d vs %d)", len(m1), len(m2))
	}
	if s1 != s2 {
		t.Errorf("same seed, different injections: %q vs %q", s1, s2)
	}
	_, m3, _ := chaosRun(t, 12)
	if bytes.Equal(m1, m3) {
		t.Error("different seeds produced identical metrics — faults not seed-driven")
	}
}
