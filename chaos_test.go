package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	patchwork "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/hostsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
)

// hostilePlan exercises every fault kind at once: a flaky allocator and
// corrupted mirror table at SITEA, a hard outage plus slow storage at
// SITEB, and a flapping port plus capture-core stalls at SITEC.
const hostilePlan = `{
  "name": "hostile",
  "allocator_transients": [{"site": "SITEA", "rate": 0.4, "from_sec": 0, "to_sec": 30}],
  "site_outages":         [{"site": "SITEB", "from_sec": 1, "to_sec": 8}],
  "port_flaps":           [{"site": "SITEC", "port": "P1", "at_sec": 5, "down_sec": 3, "repeat": 2, "every_sec": 10}],
  "mirror_corruptions":   [{"site": "SITEA", "rate": 0.05}],
  "storage_slowdowns":    [{"site": "SITEB", "factor": 3}],
  "capture_stalls":       [{"site": "SITEC", "rate": 0.1, "stall_sec": 0.002}]
}`

// chaosArtifacts is what one chaos campaign leaves behind for
// assertions: the exported metrics, the injection summary, and the
// health monitor's alert log and flight-recorder dumps.
type chaosArtifacts struct {
	metrics  []byte
	summary  string
	alertLog []byte
	events   []health.AlertEvent
	dumps    []health.Dump
}

// chaosRun executes one full profiling campaign under the hostile plan
// — with the bundled health rules watching it — and returns the profile
// plus every artifact. Everything — kernel, federation, traffic,
// registry, monitor — is rebuilt from scratch so consecutive calls
// share no state.
func chaosRun(t *testing.T, seed uint64) (*patchwork.Profile, chaosArtifacts) {
	t.Helper()
	k := sim.NewKernel()
	specs := make([]testbed.SiteSpec, 3)
	for i := range specs {
		specs[i] = testbed.SiteSpec{
			Name: "SITE" + string(rune('A'+i)), Uplinks: 2, Downlinks: 10,
			DedicatedNICs: 3, Cores: 64, RAM: 256 * units.GB, Storage: 2 * units.TB,
		}
	}
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewKernelRegistry(k)
	fed.SetObs(reg)

	plan, err := faults.Parse([]byte(hostilePlan))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := faults.NewEngine(k, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetObs(reg)
	if err := eng.Arm(fed); err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewKernelTracer(k)
	monitor, err := health.NewMonitor(k, reg, tracer, health.Config{Rules: health.DefaultRules()})
	if err != nil {
		t.Fatal(err)
	}
	monitor.Start()

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 15*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], seed+uint64(i))
		d := patchwork.NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 120
		drivers = append(drivers, d)
		d.Start()
	}
	poller.Start()

	cfg := patchwork.Config{
		Mode:            patchwork.AllExperiment,
		SampleDuration:  2 * sim.Second,
		SampleInterval:  4 * sim.Second,
		SamplesPerRun:   2,
		Runs:            3,
		InstancesWanted: 1,
		Seed:            seed,
		Obs:             reg,
		Tracer:          tracer,
		Faults:          eng,
		Storage:         &hostsim.Config{},
		LogSink:         monitor,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()
	monitor.Stop()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var alerts bytes.Buffer
	if err := monitor.WriteAlertLog(&alerts); err != nil {
		t.Fatal(err)
	}
	return prof, chaosArtifacts{
		metrics:  buf.Bytes(),
		summary:  eng.Summary(),
		alertLog: alerts.Bytes(),
		events:   monitor.Events(),
		dumps:    monitor.Dumps(),
	}
}

// TestChaosExperimentSurvivesHostilePlan: a full experiment under the
// hostile plan must still complete, with every site accounted for and
// data loss bounded — adversity costs samples, not the campaign.
func TestChaosExperimentSurvivesHostilePlan(t *testing.T) {
	prof, art := chaosRun(t, 11)
	summary := art.summary
	if len(prof.Bundles) != 3 {
		t.Fatalf("bundles = %d, want 3", len(prof.Bundles))
	}
	var captured, dropped int64
	sitesWithData := 0
	for _, b := range prof.Bundles {
		t.Logf("%s: %v granted=%d/%d pcaps=%d (%s)",
			b.Site, b.Outcome, b.InstancesGranted, b.InstancesRequested,
			len(b.CompressedPcaps), b.FailureReason)
		// The watchdog outcome would mean the platform itself crashed; the
		// plan must only be able to cost resources, never crash the run.
		if b.Outcome == patchwork.OutcomeIncomplete {
			t.Errorf("%s: hostile plan crashed the run: %s", b.Site, b.FailureReason)
		}
		if len(b.CompressedPcaps) > 0 {
			sitesWithData++
		}
		for _, s := range b.Samples {
			captured += s.Frames
			dropped += s.DroppedAtNIC + int64(s.CloneDrops)
		}
	}
	if sitesWithData < 2 {
		t.Errorf("only %d/3 sites produced captures under the plan", sitesWithData)
	}
	if captured == 0 {
		t.Fatal("no frames captured under the hostile plan")
	}
	// Bounded data loss: the plan's drop faults (mirror corruption, port
	// flaps, stalls) must not cost more than half the offered frames.
	if dropped > captured {
		t.Errorf("unbounded loss: %d dropped vs %d captured", dropped, captured)
	}
	// The outage at SITEB overlaps its setup; the retry loop must have
	// carried it through rather than failing the site.
	for _, b := range prof.Bundles {
		if b.Site == "SITEB" && b.Outcome == patchwork.OutcomeFailed {
			t.Errorf("SITEB failed despite a recoverable 7s outage: %s", b.FailureReason)
		}
	}
	if summary == "" {
		t.Error("engine injected nothing under the hostile plan")
	}
	t.Logf("faults injected: %s", summary)
}

// TestChaosDeterminism: the fault plan is part of the experiment's
// replayable input — two runs with the same seed must export
// byte-identical metrics and identical injection summaries, and a
// different seed must diverge.
func TestChaosDeterminism(t *testing.T) {
	_, a1 := chaosRun(t, 11)
	_, a2 := chaosRun(t, 11)
	if !bytes.Equal(a1.metrics, a2.metrics) {
		t.Errorf("same seed, different metrics (lens %d vs %d)", len(a1.metrics), len(a2.metrics))
	}
	if a1.summary != a2.summary {
		t.Errorf("same seed, different injections: %q vs %q", a1.summary, a2.summary)
	}
	// The health pipeline inherits the same contract: byte-identical
	// alert logs and flight-recorder dumps for the same seed.
	if !bytes.Equal(a1.alertLog, a2.alertLog) {
		t.Errorf("same seed, different alert logs:\n%s\nvs\n%s", a1.alertLog, a2.alertLog)
	}
	if len(a1.dumps) != len(a2.dumps) {
		t.Fatalf("same seed, different dump counts: %d vs %d", len(a1.dumps), len(a2.dumps))
	}
	for i := range a1.dumps {
		if a1.dumps[i].Name != a2.dumps[i].Name || !bytes.Equal(a1.dumps[i].Data, a2.dumps[i].Data) {
			t.Errorf("same seed, dump %d differs (%s vs %s)", i, a1.dumps[i].Name, a2.dumps[i].Name)
		}
	}
	_, a3 := chaosRun(t, 12)
	if bytes.Equal(a1.metrics, a3.metrics) {
		t.Error("different seeds produced identical metrics — faults not seed-driven")
	}
}

// TestChaosAlertsFire: under the hostile plan the bundled default rules
// must notice at least three distinct failure classes — the corrupted
// mirror's drop ratio at SITEA, capture listeners going quiet between
// cycles, and SITEB's degraded storage — and each firing must freeze a
// flight-recorder dump whose window covers the moment the rule fired.
func TestChaosAlertsFire(t *testing.T) {
	_, art := chaosRun(t, 11)

	fired := map[string][]health.AlertEvent{}
	for _, ev := range art.events {
		if ev.State == "firing" {
			fired[ev.Rule] = append(fired[ev.Rule], ev)
		}
	}
	t.Logf("alert log:\n%s", art.alertLog)
	if len(fired) < 3 {
		t.Fatalf("only %d distinct rules fired (%v), want >= 3", len(fired), ruleNames(fired))
	}
	for _, want := range []string{"mirror-drop-ratio", "listener-stale", "storage-write-latency"} {
		if len(fired[want]) == 0 {
			t.Errorf("rule %q did not fire under the hostile plan", want)
		}
	}
	// The storage alert must come from the site whose storage the plan
	// degrades, and the mirror alert from the corrupted mirror's site.
	for _, ev := range fired["storage-write-latency"] {
		if !strings.Contains(ev.Instance, "site=SITEB") {
			t.Errorf("storage alert on %q, want SITEB", ev.Instance)
		}
	}
	for _, ev := range fired["mirror-drop-ratio"] {
		if !strings.Contains(ev.Instance, "switch=SITEA") {
			t.Errorf("mirror alert on %q, want SITEA", ev.Instance)
		}
	}

	// Every firing froze a dump; each dump's header window must cover
	// its own firing instant, and the dump must carry metric snapshots.
	byName := map[string]health.Dump{}
	for _, d := range art.dumps {
		byName[d.Name] = d
	}
	firings := 0
	for _, evs := range fired {
		firings += len(evs)
		for _, ev := range evs {
			name := dumpNameFor(ev)
			d, ok := byName[name]
			if !ok {
				t.Errorf("no dump for firing %s/%s at %v", ev.Rule, ev.Instance, ev.At)
				continue
			}
			var header struct {
				Type   string `json:"type"`
				Rule   string `json:"rule"`
				FromNs int64  `json:"window_from_ns"`
				ToNs   int64  `json:"window_to_ns"`
			}
			first := d.Data[:bytes.IndexByte(d.Data, '\n')]
			if err := json.Unmarshal(first, &header); err != nil {
				t.Fatalf("dump %s header: %v", name, err)
			}
			if header.Type != "alert" || header.Rule != ev.Rule {
				t.Errorf("dump %s header wrong: %+v", name, header)
			}
			if header.FromNs >= header.ToNs || header.ToNs != int64(ev.At) {
				t.Errorf("dump %s window [%d,%d] does not cover firing at %d",
					name, header.FromNs, header.ToNs, int64(ev.At))
			}
			if !bytes.Contains(d.Data, []byte(`"type":"metrics"`)) {
				t.Errorf("dump %s has no metric snapshots", name)
			}
		}
	}
	if len(art.dumps) != firings {
		t.Errorf("dumps = %d, firings = %d; want one dump per firing", len(art.dumps), firings)
	}
}

// ruleNames lists the fired rules for diagnostics.
func ruleNames(fired map[string][]health.AlertEvent) []string {
	var names []string
	for n := range fired {
		names = append(names, n)
	}
	return names
}

// dumpNameFor reproduces the monitor's dump naming so the test can pair
// firings with dumps without exporting internals.
func dumpNameFor(ev health.AlertEvent) string {
	inst := ev.Instance
	if inst == "" {
		inst = "all"
	}
	var sb strings.Builder
	for _, r := range inst {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_' || r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	return fmt.Sprintf("%s--%s--%d", ev.Rule, sb.String(), int64(ev.At))
}

// TestChaosParallelCampaigns runs two full chaos campaigns concurrently
// — each building its own kernel, federation, fault engine, registry,
// and monitor — and requires both to be byte-identical to a serial run
// of the same seed. Under `go test -race` this permanently gates the
// parallel experiment harness's core assumption: simulations sharing a
// process share no mutable package-level state.
func TestChaosParallelCampaigns(t *testing.T) {
	_, want := chaosRun(t, 11)
	arts := make([]chaosArtifacts, 2)
	t.Run("concurrent", func(t *testing.T) {
		for i := range arts {
			i := i
			t.Run(fmt.Sprintf("campaign%d", i), func(t *testing.T) {
				t.Parallel()
				_, arts[i] = chaosRun(t, 11)
			})
		}
	})
	for i, art := range arts {
		if !bytes.Equal(art.metrics, want.metrics) {
			t.Errorf("campaign %d: metrics differ from serial run (lens %d vs %d)",
				i, len(art.metrics), len(want.metrics))
		}
		if art.summary != want.summary {
			t.Errorf("campaign %d: injection summary differs: %q vs %q", i, art.summary, want.summary)
		}
		if !bytes.Equal(art.alertLog, want.alertLog) {
			t.Errorf("campaign %d: alert log differs from serial run", i)
		}
	}
}
