package repro

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/journal"
)

// matrixSpec is a deliberately small campaign whose WAL still exercises
// every record kind the matrix cares about: setups, releases, periodic
// checkpoints, and the teardown tail.
func matrixSpec() campaign.Spec {
	return campaign.Spec{
		Mode:            "all",
		FederationSites: 2,
		Runs:            1,
		Samples:         1,
		SampleSec:       2,
		IntervalSec:     4,
		Seed:            7,
		Instances:       1,
		CheckpointSec:   5,
	}
}

// matrixArtifacts is every byte a kill+resume pair must reproduce.
type matrixArtifacts struct {
	wal, checkpoint, metrics, alertLog []byte
}

func matrixCollect(t *testing.T, res *campaign.Result) matrixArtifacts {
	t.Helper()
	var metrics, alerts bytes.Buffer
	if err := res.Registry.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := res.Monitor.WriteAlertLog(&alerts); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(res.Dir, journal.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := os.ReadFile(filepath.Join(res.Dir, journal.CheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	return matrixArtifacts{wal: wal, checkpoint: cp, metrics: metrics.Bytes(), alertLog: alerts.Bytes()}
}

// probeCrashPoint kills a fresh campaign at one WAL boundary, resumes it
// to completion, and asserts every artifact matches the uninterrupted
// baseline byte for byte.
func probeCrashPoint(t *testing.T, spec campaign.Spec, base matrixArtifacts, exec campaign.Exec, seq uint64, afterSwap bool) {
	t.Helper()
	dir := t.TempDir()
	kill := exec
	kill.CrashArm, kill.CrashAtSeq, kill.CrashAfterCheckpointSwap = true, seq, afterSwap
	res, err := campaign.RunExec(spec, dir, false, kill)
	if err != nil {
		t.Fatalf("seq %d afterSwap=%v: %v", seq, afterSwap, err)
	}
	if !res.Crashed {
		t.Fatalf("seq %d afterSwap=%v: campaign completed despite armed crash point", seq, afterSwap)
	}
	for resumes := 0; res.Crashed; resumes++ {
		if resumes > 3 {
			t.Fatalf("seq %d afterSwap=%v: still crashed after 3 resumes", seq, afterSwap)
		}
		if res, err = campaign.ResumeExec(dir, false, exec); err != nil {
			t.Fatalf("seq %d afterSwap=%v: resume: %v", seq, afterSwap, err)
		}
	}
	if res.Profile == nil {
		t.Fatalf("seq %d afterSwap=%v: resumed campaign produced no profile", seq, afterSwap)
	}
	art := matrixCollect(t, res)
	if !bytes.Equal(art.wal, base.wal) {
		t.Errorf("seq %d afterSwap=%v: WAL differs from baseline:\n%s\nvs\n%s", seq, afterSwap, art.wal, base.wal)
	}
	if !bytes.Equal(art.checkpoint, base.checkpoint) {
		t.Errorf("seq %d afterSwap=%v: checkpoint.json differs from baseline", seq, afterSwap)
	}
	if !bytes.Equal(art.metrics, base.metrics) {
		t.Errorf("seq %d afterSwap=%v: metrics differ from baseline", seq, afterSwap)
	}
	if !bytes.Equal(art.alertLog, base.alertLog) {
		t.Errorf("seq %d afterSwap=%v: alert log differs from baseline", seq, afterSwap)
	}
}

// crashMatrix runs the boundary sweep under one execution strategy:
// every WAL record boundary (strided in -short mode), plus both sides of
// every checkpoint swap.
func crashMatrix(t *testing.T, exec campaign.Exec, stride int) {
	spec := matrixSpec()
	baseDir := t.TempDir()
	baseRes, err := campaign.RunExec(spec, baseDir, false, exec)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Profile == nil {
		t.Fatal("baseline produced no profile")
	}
	base := matrixCollect(t, baseRes)
	recs, err := journal.ReadWAL(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 6 {
		t.Fatalf("baseline WAL holds only %d records — too small to be a meaningful matrix", len(recs))
	}
	checkpoints := 0
	for i, rec := range recs {
		if rec.Kind == journal.KindCheckpoint {
			checkpoints++
		}
		probe := i%stride == 0 || i == len(recs)-1 || rec.Kind == journal.KindCheckpoint
		if !probe {
			continue
		}
		t.Run(fmt.Sprintf("seq%03d-%s", rec.Seq, rec.Kind), func(t *testing.T) {
			probeCrashPoint(t, spec, base, exec, rec.Seq, false)
		})
		if rec.Kind == journal.KindCheckpoint {
			t.Run(fmt.Sprintf("seq%03d-%s-after-swap", rec.Seq, rec.Kind), func(t *testing.T) {
				probeCrashPoint(t, spec, base, exec, rec.Seq, true)
			})
		}
	}
	if checkpoints == 0 {
		t.Error("baseline WAL holds no checkpoint records — the matrix never probed a swap boundary")
	}
	t.Logf("matrix over %d WAL records (%d checkpoints), stride %d", len(recs), checkpoints, stride)
}

// TestCrashPointMatrix kills a journaled campaign at every WAL-record
// and checkpoint boundary and asserts the resumed run is byte-identical
// to the uninterrupted baseline — the strongest form of the
// crash-consistency contract.
func TestCrashPointMatrix(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 5
	}
	crashMatrix(t, campaign.Exec{}, stride)
}

// TestCrashPointMatrixLanes repeats a strided subset of the matrix under
// sharded lane execution: the crash boundary and the resume must behave
// identically when the dataplane runs on parallel lanes.
func TestCrashPointMatrixLanes(t *testing.T) {
	stride := 4
	if testing.Short() {
		stride = 8
	}
	crashMatrix(t, campaign.Exec{Lanes: 2}, stride)
}
