package repro

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/trafficgen"
)

// The streamed-vs-materialized pair below measures the analysis
// pipeline rework on a Fig13-class workload (per-sample flow counting
// over truncated captures). Both digest the identical frame sequence;
// the difference is the old path materializes every frame and acap
// record while the new one streams frames through an arena into the
// bounded digester. The B/op column is the headline: the streamed
// path's allocation volume must stay an order of magnitude under the
// materialized baseline's.
const (
	streamBenchSites   = 4
	streamBenchSamples = 2
	streamBenchFrames  = 10000
	streamBenchSnap    = 200
)

func streamBenchConfig() trafficgen.SampleConfig {
	return trafficgen.SampleConfig{
		Duration:  20 * sim.Second,
		MaxFrames: streamBenchFrames,
	}
}

// BenchmarkStreamedFlowDigest is the new single-pass pipeline:
// arena-backed generation feeding the bounded-memory digester.
func BenchmarkStreamedFlowDigest(b *testing.B) {
	profiles := trafficgen.MakeSiteProfiles(2, 30)[:streamBenchSites]
	arena := trafficgen.NewFrameArena()
	var frames []trafficgen.TimedFrame
	b.ReportAllocs()
	b.ResetTimer()
	var digested, flows int
	for i := 0; i < b.N; i++ {
		d := analysis.NewDigester(analysis.DigestOptions{MaxHotFlows: 4096})
		for pi, p := range profiles {
			g := trafficgen.NewGenerator(p, 1000+uint64(pi))
			for s := 0; s < streamBenchSamples; s++ {
				arena.Reset()
				var err error
				frames, err = g.SampleInto(streamBenchConfig(), frames[:0], arena.Alloc)
				if err != nil {
					b.Fatal(err)
				}
				d.StartSample(p.Site)
				for _, tf := range frames {
					data := tf.Data
					if len(data) > streamBenchSnap {
						data = data[:streamBenchSnap]
					}
					if err := d.Frame(int64(tf.At), data, len(tf.Data)); err != nil {
						b.Fatal(err)
					}
				}
				d.EndSample()
			}
		}
		digested = d.Frames()
		est, _ := d.Flows().CardinalityEstimate()
		flows = int(est)
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(digested)*float64(b.N)/sec, "frames/s")
		b.ReportMetric(float64(flows)*float64(b.N)/sec, "flows/s")
	}
}

// BenchmarkMaterializedFlowDigest is the pre-rework baseline: heap
// frames from Sample, one acap record per frame, in-memory fold.
func BenchmarkMaterializedFlowDigest(b *testing.B) {
	profiles := trafficgen.MakeSiteProfiles(2, 30)[:streamBenchSites]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts []int
		for pi, p := range profiles {
			g := trafficgen.NewGenerator(p, 1000+uint64(pi))
			for s := 0; s < streamBenchSamples; s++ {
				frames, err := g.Sample(streamBenchConfig())
				if err != nil {
					b.Fatal(err)
				}
				acap := &analysis.Acap{Site: p.Site}
				for _, tf := range frames {
					data := tf.Data
					if len(data) > streamBenchSnap {
						data = data[:streamBenchSnap]
					}
					acap.Records = append(acap.Records,
						analysis.DigestFrame(int64(tf.At), data, len(tf.Data)))
				}
				counts = append(counts, analysis.FlowsInSample(acap))
			}
		}
		_ = counts
	}
}

// TestStreamedDigestHeapBudget is the bounded-memory gate bench.sh runs
// with GOMEMLIMIT pinned: a Fig13-scale streamed digest (the registered
// experiment digests 3.6M frames; this drives 360k through the same
// path) must complete with peak HeapAlloc under the budget given in
// PW_STREAM_HEAP_BUDGET_MB. Skipped when the variable is unset so plain
// `go test` runs aren't slowed. The final line prints the measured peak
// for BENCH_analysis.json.
func TestStreamedDigestHeapBudget(t *testing.T) {
	budgetMB, err := strconv.Atoi(os.Getenv("PW_STREAM_HEAP_BUDGET_MB"))
	if err != nil || budgetMB <= 0 {
		t.Skip("set PW_STREAM_HEAP_BUDGET_MB (with GOMEMLIMIT) to run the heap-budget gate")
	}
	const (
		sites   = 6
		samples = 2
		nframes = 30000
	)
	profiles := trafficgen.MakeSiteProfiles(2, 30)[:sites]
	arena := trafficgen.NewFrameArena()
	var frames []trafficgen.TimedFrame
	d := analysis.NewDigester(analysis.DigestOptions{MaxHotFlows: 4096})
	var m runtime.MemStats
	var peak uint64
	for pi, p := range profiles {
		g := trafficgen.NewGenerator(p, 1000+uint64(pi))
		for s := 0; s < samples; s++ {
			arena.Reset()
			frames, err = g.SampleInto(trafficgen.SampleConfig{
				Duration: 20 * sim.Second, MaxFrames: nframes,
			}, frames[:0], arena.Alloc)
			if err != nil {
				t.Fatal(err)
			}
			d.StartSample(p.Site)
			for _, tf := range frames {
				data := tf.Data
				if len(data) > streamBenchSnap {
					data = data[:streamBenchSnap]
				}
				if err := d.Frame(int64(tf.At), data, len(tf.Data)); err != nil {
					t.Fatal(err)
				}
			}
			d.EndSample()
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > peak {
				peak = m.HeapAlloc
			}
		}
	}
	// Samples are duration-bounded, so per-profile yields vary; the gate
	// only needs real volume, not an exact count.
	if d.Frames() < 100000 {
		t.Fatalf("digested only %d frames; corpus too small for a meaningful gate", d.Frames())
	}
	peakMB := float64(peak) / (1 << 20)
	if peakMB > float64(budgetMB) {
		t.Fatalf("peak heap %.1f MB exceeds the %d MB budget", peakMB, budgetMB)
	}
	t.Logf("digested %d frames across %d samples", d.Frames(), sites*samples)
	// Parsed by scripts/bench.sh; keep the format stable.
	t.Logf("peak_heap_mb %.1f", peakMB)
}
