// Command pwexperiments regenerates the paper's tables and figures from
// the simulated substrates.
//
// Usage:
//
//	pwexperiments -list
//	pwexperiments -id fig12 [-seed 7] [-csv]
//	pwexperiments -all [-parallel N] [-out results/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		id    = flag.String("id", "", "run a single experiment by id")
		all   = flag.Bool("all", false, "run every experiment")
		seed  = flag.Uint64("seed", 1, "deterministic seed")
		asCSV = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		par   = flag.Int("parallel", 0, "worker count for -all (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
		out   = flag.String("out", "", "directory to write per-experiment CSV files (with -all)")
		obsD  = flag.String("obs", "", "directory to write per-experiment metrics (.prom) and traces (.jsonl) for experiments that support observability")
	)
	flag.Parse()
	experiments.Observe = *obsD != ""

	switch {
	case *list:
		for _, eid := range experiments.IDs() {
			fmt.Println(eid)
		}
	case *id != "":
		res, err := experiments.Run(*id, *seed)
		if err != nil {
			fatal(err)
		}
		if *asCSV {
			if err := res.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if err := writeObs(*obsD, res); err != nil {
			fatal(err)
		}
	case *all:
		results, err := experiments.RunMany(experiments.IDs(), *seed, *par)
		if err != nil {
			fatal(err)
		}
		for _, res := range results {
			if err := res.Render(os.Stdout); err != nil {
				fatal(err)
			}
			if *out != "" {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				f, err := os.Create(filepath.Join(*out, res.ID+".csv"))
				if err != nil {
					fatal(err)
				}
				if err := res.WriteCSV(f); err != nil {
					_ = f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
			if err := writeObs(*obsD, res); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeObs persists an experiment's observability outputs, if any:
// <dir>/<id>.prom for metrics and <dir>/<id>.jsonl for spans.
func writeObs(dir string, res *experiments.Result) error {
	if dir == "" || (res.Metrics == nil && res.Trace == nil) {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if res.Metrics != nil {
		f, err := os.Create(filepath.Join(dir, res.ID+".prom"))
		if err != nil {
			return err
		}
		err = res.Metrics.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if res.Trace != nil {
		f, err := os.Create(filepath.Join(dir, res.ID+".jsonl"))
		if err != nil {
			return err
		}
		err = res.Trace.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwexperiments:", err)
	os.Exit(1)
}
