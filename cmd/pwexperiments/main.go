// Command pwexperiments regenerates the paper's tables and figures from
// the simulated substrates.
//
// Usage:
//
//	pwexperiments -list
//	pwexperiments -id fig12 [-seed 7] [-csv]
//	pwexperiments -all [-parallel N] [-out results/]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/livemon"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		id    = flag.String("id", "", "run a single experiment by id")
		all   = flag.Bool("all", false, "run every experiment")
		seed  = flag.Uint64("seed", 1, "deterministic seed")
		asCSV = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		par   = flag.Int("parallel", 0, "worker count for -all (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
		out   = flag.String("out", "", "directory to write per-experiment CSV files (with -all)")
		obsD  = flag.String("obs", "", "directory to write per-experiment metrics (.prom) and traces (.jsonl) for experiments that support observability")

		serve     = flag.String("serve", "", `serve live worker progress over HTTP on this address (":0" for an ephemeral port) while -all runs`)
		serveHold = flag.Bool("serve-hold", false, "keep serving after -all finishes until SIGINT/SIGTERM")
	)
	flag.Parse()
	experiments.Observe = *obsD != ""

	// The suite has no single kernel or registry, so the telemetry
	// server runs registry-less with a memory-only ring: /metrics shows
	// runtime + RunMany progress gauges, /events streams progress.
	var live *livemon.Server
	var holdSig chan os.Signal
	progress := func(experiments.Progress) {}
	if *serve != "" {
		var err error
		if live, err = livemon.New(livemon.Config{Addr: *serve}); err != nil {
			fatal(err)
		}
		defer live.Close()
		if err := live.ListenAndServe(); err != nil {
			fatal(err)
		}
		fmt.Printf("live telemetry on http://%s\n", live.Addr())
		progress = func(p experiments.Progress) {
			live.PublishProgress(p.Worker, p.ID, p.State, p.Done, p.Total)
		}
		if *serveHold {
			// Install the handler before the run: a SIGTERM that lands
			// mid-suite is latched and released at the hold instead of
			// killing the process.
			holdSig = make(chan os.Signal, 1)
			signal.Notify(holdSig, os.Interrupt, syscall.SIGTERM)
		}
	}

	switch {
	case *list:
		for _, eid := range experiments.IDs() {
			fmt.Println(eid)
		}
	case *id != "":
		res, err := experiments.Run(*id, *seed)
		if err != nil {
			fatal(err)
		}
		if *asCSV {
			if err := res.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
		if err := writeObs(*obsD, res); err != nil {
			fatal(err)
		}
	case *all:
		results, err := experiments.RunManyWithProgress(experiments.IDs(), *seed, *par, progress)
		if err != nil {
			fatal(err)
		}
		for _, res := range results {
			if err := res.Render(os.Stdout); err != nil {
				fatal(err)
			}
			if *out != "" {
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fatal(err)
				}
				f, err := os.Create(filepath.Join(*out, res.ID+".csv"))
				if err != nil {
					fatal(err)
				}
				if err := res.WriteCSV(f); err != nil {
					_ = f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
			if err := writeObs(*obsD, res); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if live != nil && *serveHold {
		fmt.Printf("holding live telemetry on http://%s — SIGINT/SIGTERM to exit\n", live.Addr())
		<-holdSig
		signal.Stop(holdSig)
	}
}

// writeObs persists an experiment's observability outputs, if any:
// <dir>/<id>.prom for metrics and <dir>/<id>.jsonl for spans.
func writeObs(dir string, res *experiments.Result) error {
	if dir == "" || (res.Metrics == nil && res.Trace == nil) {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if res.Metrics != nil {
		f, err := os.Create(filepath.Join(dir, res.ID+".prom"))
		if err != nil {
			return err
		}
		err = res.Metrics.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if res.Trace != nil {
		f, err := os.Create(filepath.Join(dir, res.ID+".jsonl"))
		if err != nil {
			return err
		}
		err = res.Trace.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwexperiments:", err)
	os.Exit(1)
}
