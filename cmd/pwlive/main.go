// Command pwlive probes a running live telemetry server (patchwork
// -serve / pwexperiments -serve): it discovers the address from the
// rendezvous file the server writes, scrapes /metrics and the JSON
// endpoints, and validates what it gets. CI uses it as the smoke test
// that the telemetry plane actually serves a parseable exposition while
// a campaign runs; exit status 0 means every check passed.
//
// Usage:
//
//	pwlive -addr-file out/livemon/addr [-wait-sec 10]
//	pwlive -addr 127.0.0.1:8080 -series sim_events_processed -min-points 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "", "server address (host:port)")
		addrFile  = flag.String("addr-file", "", "poll this file for the server address (written by -serve)")
		waitSec   = flag.Int("wait-sec", 10, "seconds to wait for the address file and first successful fetch")
		series    = flag.String("series", "", "also query /api/series for this metric name")
		minPoints = flag.Int("min-points", 1, "minimum points the -series query must return")
	)
	flag.Parse()

	deadline := time.Now().Add(time.Duration(*waitSec) * time.Second)
	target, err := resolveAddr(*addr, *addrFile, deadline)
	if err != nil {
		fatal(err)
	}
	base := "http://" + target

	body, err := fetch(base+"/metrics", deadline)
	if err != nil {
		fatal(err)
	}
	samples, err := obs.ValidateExposition(strings.NewReader(body))
	if err != nil {
		fatal(fmt.Errorf("/metrics invalid: %w", err))
	}
	if !strings.Contains(body, "patchwork_build_info") {
		fatal(fmt.Errorf("/metrics missing patchwork_build_info"))
	}
	fmt.Printf("/metrics: %d samples — ok\n", samples)

	var status struct {
		SimNs     int64 `json:"sim_ns"`
		Published int   `json:"published"`
		Ring      struct {
			Records int    `json:"records"`
			Err     string `json:"err"`
		} `json:"ring"`
	}
	if err := fetchJSON(base+"/api/status", deadline, &status); err != nil {
		fatal(err)
	}
	if status.Ring.Err != "" {
		fatal(fmt.Errorf("/api/status reports ring error: %s", status.Ring.Err))
	}
	fmt.Printf("/api/status: sim_ns=%d published=%d ring_records=%d — ok\n",
		status.SimNs, status.Published, status.Ring.Records)

	var bi struct {
		GoVersion string `json:"go_version"`
	}
	if err := fetchJSON(base+"/api/buildinfo", deadline, &bi); err != nil {
		fatal(err)
	}
	if bi.GoVersion == "" {
		fatal(fmt.Errorf("/api/buildinfo missing go_version"))
	}
	fmt.Printf("/api/buildinfo: %s — ok\n", bi.GoVersion)

	var alerts struct {
		Active []json.RawMessage `json:"active"`
	}
	if err := fetchJSON(base+"/api/alerts", deadline, &alerts); err != nil {
		fatal(err)
	}
	fmt.Printf("/api/alerts: %d active — ok\n", len(alerts.Active))

	if *series != "" {
		var sr struct {
			Series []struct {
				Points []json.RawMessage `json:"points"`
			} `json:"series"`
		}
		if err := fetchJSON(base+"/api/series?name="+*series, deadline, &sr); err != nil {
			fatal(err)
		}
		points := 0
		for _, s := range sr.Series {
			points += len(s.Points)
		}
		if points < *minPoints {
			fatal(fmt.Errorf("/api/series?name=%s returned %d points, want >= %d", *series, points, *minPoints))
		}
		fmt.Printf("/api/series?name=%s: %d points — ok\n", *series, points)
	}
}

// resolveAddr returns the probe target, polling the address file until
// the deadline when one was given.
func resolveAddr(addr, addrFile string, deadline time.Time) (string, error) {
	if addr != "" {
		return addr, nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("need -addr or -addr-file")
	}
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			if a := strings.TrimSpace(string(data)); a != "" {
				return a, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("address file %s never appeared", addrFile)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fetch GETs a URL, retrying connection errors until the deadline (the
// server may still be binding when the probe starts).
func fetch(url string, deadline time.Time) (string, error) {
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return "", rerr
			}
			if resp.StatusCode != http.StatusOK {
				return "", fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
			}
			return string(body), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("GET %s: %w", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchJSON(url string, deadline time.Time, into any) error {
	body, err := fetch(url, deadline)
	if err != nil {
		return err
	}
	if err := json.Unmarshal([]byte(body), into); err != nil {
		return fmt.Errorf("%s: %w in %s", url, err, body)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwlive:", err)
	os.Exit(1)
}
