// Command patchwork runs a profiling campaign on the simulated FABRIC
// federation: it builds the testbed, drives synthetic research workloads
// across its sites, runs the Patchwork coordinator (single- or
// all-experiment mode), and writes the gathered captures and logs to an
// output directory.
//
// Usage:
//
//	patchwork -mode all [-sites STAR,TACC] [-runs 4] [-out profile/]
//	patchwork -mode single -sites NCSA -out myslice/
//
// Self-healing campaign mode (journaled, resumable):
//
//	patchwork -remedy -faults plan.json -journal out/journal -out out/
//	patchwork -resume out/journal -out out/        # after a crash (exit 3)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/capture"
	patchwork "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/hostsim"
	"repro/internal/livemon"
	"repro/internal/obs"
	"repro/internal/remedy"
	"repro/internal/sim"
	"repro/internal/storefault"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
)

func main() {
	var (
		mode        = flag.String("mode", "all", `"all" (all-experiment) or "single" (single-experiment)`)
		sitesFlag   = flag.String("sites", "", "comma-separated site list (required for -mode single)")
		runs        = flag.Int("runs", 3, "port-cycling runs per site")
		samples     = flag.Int("samples", 2, "samples per run")
		sampleSec   = flag.Int("sample-sec", 5, "sample duration in (virtual) seconds")
		method      = flag.String("method", "tcpdump", "capture method: tcpdump|dpdk|fpga")
		trunc       = flag.Int("truncate", 200, "stored snap length in bytes")
		seed        = flag.Uint64("seed", 1, "deterministic seed")
		out         = flag.String("out", "patchwork-out", "output directory")
		nSites      = flag.Int("federation-sites", 6, "number of sites in the simulated federation")
		nice        = flag.Bool("nice", false, "enable runtime footprint scaling (the nice-factor extension)")
		metrics     = flag.String("metrics", "", "write platform metrics to this file (.prom, .jsonl, or .csv by extension)")
		trace       = flag.String("trace", "", "write span trace JSONL to this file")
		faultPlan   = flag.String("faults", "", "JSON fault plan to inject during the run (see internal/faults)")
		watch       = flag.Bool("watch", false, "run the health monitor and print the live per-site status table during the run")
		watchSec    = flag.Int("watch-sec", 60, "status table cadence in (virtual) seconds with -watch")
		healthRules = flag.String("health-rules", "", "alert rule JSON for -watch (default: bundled rules)")
		storage     = flag.Bool("storage", false, "model each listener VM's storage stack (implied by -watch)")

		remedyOn   = flag.Bool("remedy", false, "run the self-healing remediation supervisor (journaled campaign mode)")
		remedyPol  = flag.String("remedy-policy", "", "remediation policy JSON (default: bundled policy; implies -remedy)")
		journalDir = flag.String("journal", "", "campaign journal directory (default <out>/journal; implies campaign mode)")
		resume     = flag.String("resume", "", "resume the campaign journaled in this directory")
		cpSec      = flag.Int("checkpoint-sec", 60, "checkpoint cadence in (virtual) seconds (campaign mode)")
		noKill     = flag.Bool("no-kill", false, "journal injected crash points without honoring them (baseline run)")
		lanesN     = flag.Int("lanes", 1, "shard the dataplane into this many parallel per-site lanes (campaign mode; output is byte-identical at any lane count)")
		laneWk     = flag.Int("lane-workers", 0, "worker goroutines for -lanes (0 = min(lanes, GOMAXPROCS))")
		provOn     = flag.Bool("provenance", false, "record the causal event DAG to <out>/prof/provenance.trace (campaign mode; analyze with pwprof)")
		profOn     = flag.Bool("profile", false, "profile the lane scheduler's wall clock into <out>/prof/lane-trace.json and lane-summary.json (requires -lanes > 1)")
		storeChaos = flag.String("store-chaos", "", "storage fault-injection plan JSON (campaign mode); seeded by -seed, injection log lands in <out>/storefault.jsonl")

		serveAddr  = flag.String("serve", "", `serve live telemetry (metrics/status/SSE) on this address (":0" for an ephemeral port; bound address lands in <out>/livemon/addr)`)
		servePprof = flag.Bool("serve-pprof", false, "also mount /debug/pprof/ on the telemetry server")
		serveHold  = flag.Bool("serve-hold", false, "keep serving after the run finishes until SIGINT/SIGTERM")
	)
	flag.Parse()

	if *resume != "" || *remedyOn || *remedyPol != "" || *journalDir != "" || *lanesN > 1 || *provOn || *profOn || *storeChaos != "" {
		os.Exit(campaignMain(campaignFlags{
			mode: *mode, sites: *sitesFlag, runs: *runs, samples: *samples,
			sampleSec: *sampleSec, method: *method, trunc: *trunc, seed: *seed,
			out: *out, nSites: *nSites, nice: *nice, metrics: *metrics,
			faultPlan: *faultPlan, healthRules: *healthRules,
			remedyPolicy: *remedyPol, journalDir: *journalDir, resume: *resume,
			checkpointSec: *cpSec, noKill: *noKill,
			lanes: *lanesN, laneWorkers: *laneWk,
			provenance: *provOn, profile: *profOn, storeChaos: *storeChaos,
			serveAddr: *serveAddr, servePprof: *servePprof, serveHold: *serveHold,
		}))
	}

	var live *livemon.Server
	var holdSig chan os.Signal
	if *serveAddr != "" {
		var lerr error
		if live, holdSig, lerr = newLiveServer(*out, *serveAddr, *servePprof, *serveHold); lerr != nil {
			fatal(lerr)
		}
		defer live.Close()
	}

	var m patchwork.Mode
	switch *mode {
	case "all":
		m = patchwork.AllExperiment
	case "single":
		m = patchwork.SingleExperiment
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	var capMethod capture.Method
	switch *method {
	case "tcpdump":
		capMethod = capture.MethodTcpdump
	case "dpdk":
		capMethod = capture.MethodDPDK
	case "fpga":
		capMethod = capture.MethodFPGADPDK
	default:
		fatal(fmt.Errorf("unknown capture method %q", *method))
	}

	// Build a federation slice of the default 28-site layout.
	k := sim.NewKernel()
	full := testbed.DefaultFederation(k, *seed)
	specs := make([]testbed.SiteSpec, 0, *nSites)
	for i, s := range full.Sites() {
		if i >= *nSites {
			break
		}
		specs = append(specs, s.Spec)
	}
	k = sim.NewKernel()
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		fatal(err)
	}

	// Observability: registry and tracer stamp everything in sim time, so
	// two runs with the same seed emit byte-identical files.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics != "" || *watch || live != nil {
		reg = obs.NewKernelRegistry(k)
		obs.CollectKernel(reg, k)
		fed.SetObs(reg)
	}
	if *trace != "" || *watch {
		tracer = obs.NewKernelTracer(k)
	}

	// Fault injection: the plan is part of the experiment's replayable
	// input — same plan + same seed reproduces the run byte-for-byte.
	var injector *faults.Engine
	if *faultPlan != "" {
		plan, err := faults.Load(*faultPlan)
		if err != nil {
			fatal(err)
		}
		injector, err = faults.NewEngine(k, *seed, plan)
		if err != nil {
			fatal(err)
		}
		if reg != nil {
			injector.SetObs(reg)
		}
		if err := injector.Arm(fed); err != nil {
			fatal(err)
		}
	}

	// Health monitoring: sliding windows, alert rules, and the flight
	// recorder all run inside the kernel, so the "live" view advances in
	// sim time and stays deterministic for a fixed seed.
	var monitor *health.Monitor
	if *watch {
		rules := health.DefaultRules()
		if *healthRules != "" {
			data, err := os.ReadFile(*healthRules)
			if err != nil {
				fatal(err)
			}
			if rules, err = health.ParseBytes(data); err != nil {
				fatal(err)
			}
		}
		var err error
		monitor, err = health.NewMonitor(k, reg, tracer, health.Config{Rules: rules})
		if err != nil {
			fatal(err)
		}
		monitor.Start()
		k.Every(sim.Duration(*watchSec)*sim.Second, func(sim.Time) {
			if err := monitor.WriteStatus(os.Stdout); err != nil {
				fatal(err)
			}
		})
	}

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(*seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], *seed+uint64(i))
		d := patchwork.NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 150
		drivers = append(drivers, d)
		d.Start()
	}
	poller.Start()

	var siteList []string
	if *sitesFlag != "" {
		siteList = strings.Split(*sitesFlag, ",")
	}
	cfg := patchwork.Config{
		Mode:           m,
		Sites:          siteList,
		SampleDuration: sim.Duration(*sampleSec) * sim.Second,
		SampleInterval: sim.Duration(2**sampleSec) * sim.Second,
		SamplesPerRun:  *samples,
		Runs:           *runs,
		TruncateBytes:  *trunc,
		Method:         capMethod,
		Seed:           *seed,
		Obs:            reg,
		Tracer:         tracer,
		Faults:         injector,
	}
	if *storage || *watch {
		cfg.Storage = &hostsim.Config{}
	}
	if monitor != nil {
		cfg.LogSink = monitor
	}
	if *nice {
		cfg.Nice = &patchwork.NicePolicy{ScaleDownFreeNICs: 0, ScaleUpFreeNICs: 1}
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		fatal(err)
	}
	var prof *patchwork.Profile
	if live == nil {
		prof, err = coord.Run()
		if err != nil {
			fatal(err)
		}
	} else {
		// With live telemetry the drive loop is explicit: publishing
		// happens between kernel steps, never as a scheduled event, so
		// the run's outputs match an unserved run byte-for-byte.
		live.Attach(reg, monitor)
		var runErr error
		finished := false
		coord.Start(func(p *patchwork.Profile, err error) {
			prof, runErr = p, err
			finished = true
		})
		var publishNext sim.Time
		for !finished {
			if !k.Step() {
				fatal(fmt.Errorf("simulation stalled before completion"))
			}
			if k.Now() >= publishNext {
				live.PublishTick(k.Now())
				publishNext = k.Now() + live.Interval()
			}
		}
		live.PublishTick(k.Now())
		if runErr != nil {
			fatal(runErr)
		}
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()

	if err := writeProfile(*out, prof); err != nil {
		fatal(err)
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, reg); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	if *trace != "" {
		if err := writeTrace(*trace, tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *trace, tracer.Len())
	}
	if monitor != nil {
		monitor.Stop()
		fmt.Println("final health status:")
		if err := monitor.WriteStatus(os.Stdout); err != nil {
			fatal(err)
		}
		if err := writeHealthArtifacts(*out, monitor); err != nil {
			fatal(err)
		}
	}
	if injector != nil {
		fmt.Printf("faults injected: %s\n", injector.Summary())
	}
	fmt.Printf("profile complete: %d sites in %v of virtual time\n",
		len(prof.Bundles), prof.Finished-prof.Started)
	for _, b := range prof.Bundles {
		fmt.Printf("  %-8s outcome=%-10s instances=%d/%d captures=%d ports=%v\n",
			b.Site, b.Outcome, b.InstancesGranted, b.InstancesRequested,
			len(b.CompressedPcaps), b.PortsSampled)
	}
	fmt.Printf("success rate: %.0f%%\n", prof.SuccessRate()*100)
	for _, b := range prof.Bundles {
		for _, ev := range b.ScaleEvents {
			fmt.Printf("  %s nice: %v\n", b.Site, ev)
		}
	}
	fmt.Printf("output written to %s\n", *out)
	if live != nil && *serveHold {
		holdServe(live, holdSig)
	}
}

// writeProfile persists each bundle's pcaps and logs.
func writeProfile(dir string, prof *patchwork.Profile) error {
	for _, b := range prof.Bundles {
		siteDir := filepath.Join(dir, b.Site)
		if err := os.MkdirAll(siteDir, 0o755); err != nil {
			return err
		}
		pcaps, err := b.DecompressPcaps()
		if err != nil {
			return err
		}
		for i, data := range pcaps {
			name := filepath.Join(siteDir, fmt.Sprintf("capture-%02d.pcap", i))
			if err := os.WriteFile(name, data, 0o644); err != nil {
				return err
			}
		}
		var logBuf strings.Builder
		for _, e := range b.Logs {
			logBuf.WriteString(e.String())
			logBuf.WriteByte('\n')
		}
		for _, c := range b.Congestion {
			fmt.Fprintf(&logBuf, "t=%v congestion %s->%s offered=%.0fB/s capacity=%.0fB/s\n",
				c.At, c.MirroredPort, c.EgressPort, c.OfferedBps, c.CapacityBps)
		}
		if err := os.WriteFile(filepath.Join(siteDir, "run.log"), []byte(logBuf.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeMetrics exports the registry in the format the file extension
// names: Prometheus text (.prom, also the fallback), JSONL, or CSV.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch filepath.Ext(path) {
	case ".jsonl":
		err = reg.WriteMetricsJSONL(f)
	case ".csv":
		err = reg.WriteCSV(f)
	default:
		err = reg.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeHealthArtifacts persists the alert log and every flight-recorder
// dump under <out>/health/.
func writeHealthArtifacts(dir string, m *health.Monitor) error {
	healthDir := filepath.Join(dir, "health")
	if err := os.MkdirAll(healthDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(healthDir, "alerts.jsonl"))
	if err != nil {
		return err
	}
	err = m.WriteAlertLog(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	for _, d := range m.Dumps() {
		if err := os.WriteFile(filepath.Join(healthDir, d.Name+".jsonl"), d.Data, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("health artifacts written to %s (%d alerts, %d dumps)\n",
		healthDir, len(m.Events()), len(m.Dumps()))
	return nil
}

// writeTrace exports the span tree as JSONL.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tr.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// campaignFlags carries the flag values into campaign mode.
type campaignFlags struct {
	mode, sites                      string
	runs, samples, sampleSec, trunc  int
	method                           string
	seed                             uint64
	out                              string
	nSites                           int
	nice                             bool
	metrics, faultPlan, healthRules  string
	remedyPolicy, journalDir, resume string
	checkpointSec                    int
	noKill                           bool
	lanes, laneWorkers               int
	provenance, profile              bool
	storeChaos                       string
	serveAddr                        string
	servePprof, serveHold            bool
}

// campaignMain runs the journaled, self-healing campaign path and
// returns the process exit code: 0 on completion, 3 on a crash-point
// abort (resume the journal directory to continue), 1 on error.
func campaignMain(fl campaignFlags) int {
	var live *livemon.Server
	var holdSig chan os.Signal
	if fl.serveAddr != "" {
		var lerr error
		if live, holdSig, lerr = newLiveServer(fl.out, fl.serveAddr, fl.servePprof, fl.serveHold); lerr != nil {
			fmt.Fprintln(os.Stderr, "patchwork:", lerr)
			return 1
		}
		defer live.Close()
	}
	// The nil-interface trap: passing a typed nil *livemon.Server as a
	// campaign.LiveSink would make the != nil check inside run() true.
	var sink campaign.LiveSink
	if live != nil {
		sink = live
	}
	if fl.profile && fl.lanes <= 1 {
		fmt.Fprintln(os.Stderr, "patchwork: -profile measures the lane scheduler; it requires -lanes > 1")
		return 1
	}
	exec := campaign.Exec{Lanes: fl.lanes, Workers: fl.laneWorkers, Profile: fl.profile}
	if fl.provenance {
		exec.ProvenancePath = filepath.Join(fl.out, "prof", "provenance.trace")
	}
	// Storage chaos: every journal write goes through the fault-injecting
	// filesystem. Seeded by the campaign seed, so a rerun with the same
	// plan replays the same injections; the log is the receipt.
	var chaos *storefault.Chaos
	if fl.storeChaos != "" {
		plan, perr := storefault.Load(fl.storeChaos)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "patchwork:", perr)
			return 1
		}
		if chaos, perr = storefault.NewChaos(nil, fl.seed, plan); perr != nil {
			fmt.Fprintln(os.Stderr, "patchwork:", perr)
			return 1
		}
		exec.FS = chaos
		defer func() {
			if err := writeChaosLog(fl.out, chaos); err != nil {
				fmt.Fprintln(os.Stderr, "patchwork:", err)
			} else {
				fmt.Printf("storage chaos: %s (log in %s)\n",
					chaos.Summary(), filepath.Join(fl.out, "storefault.jsonl"))
			}
		}()
	}
	var res *campaign.Result
	var err error
	if fl.resume != "" {
		res, err = campaign.ResumeExecLive(fl.resume, !fl.noKill, exec, sink)
	} else {
		spec, serr := specFromFlags(fl)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "patchwork:", serr)
			return 1
		}
		dir := fl.journalDir
		if dir == "" {
			dir = filepath.Join(fl.out, "journal")
		}
		res, err = campaign.RunExecLive(spec, dir, !fl.noKill, exec, sink)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "patchwork:", err)
		return 1
	}
	if res.Replayed > 0 {
		fmt.Printf("resume: replayed and verified %d journaled records\n", res.Replayed)
	}
	if res.Crashed {
		fmt.Fprintf(os.Stderr, "patchwork: campaign crashed at t=%v (injected crash point)\n", res.CrashedAt)
		fmt.Fprintf(os.Stderr, "patchwork: journal preserved in %s — resume with: patchwork -resume %s\n",
			res.Dir, res.Dir)
		if live != nil && fl.serveHold {
			holdServe(live, holdSig)
		}
		return 3
	}

	// Artifact writers: a failed write is counted per artifact (feeding
	// the storage-errors health rule and the live telemetry plane) and
	// reported, but does not stop the remaining artifacts from being
	// attempted — a full disk should cost one output, not all of them.
	wrote := func(artifact string, err error) bool {
		if err == nil {
			return true
		}
		if res.Registry != nil {
			res.Registry.Counter("patchwork_storage_errors_total", obs.L("artifact", artifact)).Inc()
		}
		fmt.Fprintf(os.Stderr, "patchwork: writing %s artifacts: %v\n", artifact, err)
		return false
	}
	ok := wrote("pcap", writeProfile(fl.out, res.Profile))
	if fl.metrics != "" {
		if wrote("metrics", writeMetrics(fl.metrics, res.Registry)) {
			fmt.Printf("metrics written to %s\n", fl.metrics)
		} else {
			ok = false
		}
	}
	ok = wrote("health", writeHealthArtifacts(fl.out, res.Monitor)) && ok
	if res.Supervisor != nil {
		ok = wrote("remedy", writeRemedyArtifacts(fl.out, res.Supervisor)) && ok
	}
	if res.Injector != nil {
		fmt.Printf("faults injected: %s\n", res.Injector.Summary())
	}
	ok = wrote("prof", writeProfArtifacts(fl, res)) && ok
	if !ok {
		return 1
	}
	prof := res.Profile
	fmt.Printf("campaign complete: %d sites in %v of virtual time (journal %s)\n",
		len(prof.Bundles), prof.Finished-prof.Started, res.Dir)
	fmt.Printf("success rate: %.0f%%\n", prof.SuccessRate()*100)
	if live != nil && fl.serveHold {
		holdServe(live, holdSig)
	}
	return 0
}

// specFromFlags assembles the campaign manifest from the CLI flags.
func specFromFlags(fl campaignFlags) (campaign.Spec, error) {
	spec := campaign.Spec{
		Mode:            fl.mode,
		Runs:            fl.runs,
		Samples:         fl.samples,
		SampleSec:       fl.sampleSec,
		IntervalSec:     2 * fl.sampleSec,
		TruncateBytes:   fl.trunc,
		Method:          fl.method,
		Seed:            fl.seed,
		FederationSites: fl.nSites,
		Nice:            fl.nice,
		CheckpointSec:   fl.checkpointSec,
	}
	if fl.sites != "" {
		spec.Sites = strings.Split(fl.sites, ",")
	}
	if fl.faultPlan != "" {
		plan, err := faults.Load(fl.faultPlan)
		if err != nil {
			return spec, err
		}
		spec.Faults = &plan
	}
	if fl.healthRules != "" {
		data, err := os.ReadFile(fl.healthRules)
		if err != nil {
			return spec, err
		}
		spec.HealthRules = json.RawMessage(data)
	}
	pol := remedy.DefaultPolicy()
	if fl.remedyPolicy != "" {
		var err error
		if pol, err = remedy.LoadPolicy(fl.remedyPolicy); err != nil {
			return spec, err
		}
	}
	spec.Remedy = &pol
	return spec, nil
}

// writeRemedyArtifacts persists the remediation action log and a
// summary under <out>/remedy/.
func writeRemedyArtifacts(dir string, sup *remedy.Supervisor) error {
	remedyDir := filepath.Join(dir, "remedy")
	if err := os.MkdirAll(remedyDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(remedyDir, "actions.jsonl"))
	if err != nil {
		return err
	}
	err = sup.WriteActionLog(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	var sb strings.Builder
	outcomes := sup.Outcomes()
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s %d\n", k, outcomes[k])
	}
	for _, site := range sup.Quarantined() {
		fmt.Fprintf(&sb, "quarantined %s\n", site)
	}
	if err := os.WriteFile(filepath.Join(remedyDir, "summary.txt"), []byte(sb.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("remediation artifacts written to %s (%d decisions, %d quarantined)\n",
		remedyDir, len(sup.Actions()), len(sup.Quarantined()))
	return nil
}

// writeProfArtifacts persists the wall-plane lane profile under
// <out>/prof/ and reports where the provenance trace landed. The
// provenance trace itself was streamed during the run by the campaign
// engine; only the pointer is printed here.
func writeProfArtifacts(fl campaignFlags, res *campaign.Result) error {
	if fl.provenance {
		fmt.Printf("provenance trace: %d events in %s (analyze with pwprof)\n",
			res.ProvRecords, filepath.Join(fl.out, "prof", "provenance.trace"))
	}
	if res.LaneProfiler == nil {
		return nil
	}
	profDir := filepath.Join(fl.out, "prof")
	if err := os.MkdirAll(profDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(profDir, "lane-trace.json"))
	if err != nil {
		return err
	}
	err = res.LaneProfiler.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	sum := res.LaneProfiler.Summary()
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(profDir, "lane-summary.json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("lane profile: %d windows, est speedup %.2fx, efficiency %.0f%% (%s)\n",
		sum.Windows, sum.EstSpeedup, sum.ParallelEfficiency*100, profDir)
	return nil
}

// writeChaosLog persists the storage-fault injection log so same-seed
// reruns can be diffed injection-for-injection.
func writeChaosLog(dir string, chaos *storefault.Chaos) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "storefault.jsonl"))
	if err != nil {
		return err
	}
	err = chaos.WriteLogJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "patchwork:", err)
	os.Exit(1)
}
