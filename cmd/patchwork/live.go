package main

import (
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/livemon"
)

// newLiveServer starts the live telemetry plane for this process: the
// ring and address-rendezvous file live under <out>/livemon/, so a
// probe can discover the ephemeral port and a crashed campaign's ring
// is recovered on resume from the same directory. When hold is set the
// SIGINT/SIGTERM handler is installed now, before the run starts: a
// signal that arrives mid-run is latched and released at holdServe
// instead of killing the process before its artifacts are written.
func newLiveServer(out, addr string, pprofOn, hold bool) (*livemon.Server, chan os.Signal, error) {
	dir := filepath.Join(out, "livemon")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s, err := livemon.New(livemon.Config{
		Addr:     addr,
		Dir:      filepath.Join(dir, "ring"),
		AddrFile: filepath.Join(dir, "addr"),
		Pprof:    pprofOn,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := s.ListenAndServe(); err != nil {
		s.Close()
		return nil, nil, err
	}
	fmt.Printf("live telemetry on http://%s (metrics, api, events)\n", s.Addr())
	var sig chan os.Signal
	if hold {
		sig = make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	}
	return s, sig, nil
}

// holdServe keeps the telemetry server up after the run finishes until
// SIGINT/SIGTERM, so the final state can be inspected (and CI can probe
// a known-complete server before asking the process to exit).
func holdServe(s *livemon.Server, sig chan os.Signal) {
	fmt.Printf("holding live telemetry on http://%s — SIGINT/SIGTERM to exit\n", s.Addr())
	<-sig
	signal.Stop(sig)
}
