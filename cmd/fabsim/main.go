// Command fabsim inspects the simulated FABRIC federation: it dumps the
// information model (sites, ports, NIC inventories), generates a year of
// slice activity, and reports utilization statistics — the Section 5
// study in executable form.
//
// Usage:
//
//	fabsim -seed 1 [-slices] [-faults plan.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		slices    = flag.Bool("slices", false, "summarize a year of slice activity")
		faultPlan = flag.String("faults", "", "validate a JSON fault plan against the federation and report its entries")
	)
	flag.Parse()

	k := sim.NewKernel()
	fed := testbed.DefaultFederation(k, *seed)
	fmt.Printf("federation: %d sites\n\n", len(fed.Sites()))
	fmt.Printf("%-8s %9s %7s %8s %6s %6s %8s %8s\n",
		"site", "downlinks", "uplinks", "ded-nics", "fpgas", "cores", "ram", "storage")
	for _, s := range fed.Sites() {
		sp := s.Spec
		fmt.Printf("%-8s %9d %7d %8d %6d %6d %8v %8v\n",
			sp.Name, sp.Downlinks, sp.Uplinks, sp.DedicatedNICs, sp.FPGANICs,
			sp.Cores, sp.RAM, sp.Storage)
	}

	if *faultPlan != "" {
		plan, err := faults.Load(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabsim:", err)
			os.Exit(1)
		}
		// Arming against the federation is the dry run: it catches plans
		// naming unknown sites or ports before an experiment spends a
		// campaign on them.
		eng, err := faults.NewEngine(k, *seed, plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fabsim:", err)
			os.Exit(1)
		}
		if err := eng.Arm(fed); err != nil {
			fmt.Fprintln(os.Stderr, "fabsim:", err)
			os.Exit(1)
		}
		name := plan.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("\nfault plan %s: valid\n", name)
		fmt.Printf("  allocator transients: %d\n", len(plan.AllocatorTransients))
		fmt.Printf("  site outages:         %d\n", len(plan.SiteOutages))
		fmt.Printf("  port flaps:           %d\n", len(plan.PortFlaps))
		fmt.Printf("  mirror corruptions:   %d\n", len(plan.MirrorCorruptions))
		fmt.Printf("  storage slowdowns:    %d\n", len(plan.StorageSlowdowns))
		fmt.Printf("  capture stalls:       %d\n", len(plan.CaptureStalls))
	}

	if *slices {
		model := testbed.DefaultWorkloadModel()
		recs := model.Generate(*seed, 52*sim.Week, fed.SiteNames())
		h := testbed.SitesPerSliceHistogram(recs)
		fmt.Printf("\nslice activity over one year: %d slices\n", len(recs))
		single := float64(h[1]) / float64(len(recs)) * 100
		fmt.Printf("  single-site slices: %.1f%%\n", single)
		cdf := testbed.LifetimeCDF(recs, []sim.Duration{24 * sim.Hour})
		fmt.Printf("  slices lasting <= 24h: %.1f%%\n", cdf[0]*100)
		st := testbed.Concurrency(recs, 52*sim.Week, 6*sim.Hour)
		fmt.Printf("  concurrent slices: mean %.1f, stddev %.1f, max %d\n",
			st.Mean, st.StdDev, st.Max)
	}
}
