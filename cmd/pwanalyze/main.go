// Command pwanalyze runs Patchwork's offline analysis pipeline over a
// directory of pcap captures (as produced by cmd/patchwork): Digest
// (protocol dissection into abstract header stacks), Index, Analyze, and
// Process (CSV emission).
//
// The pipeline is single-pass and bounded-memory: each capture streams
// through the digester frame by frame, per-capture acaps are encoded
// and dropped as soon as they are indexed, and the flow table spills
// cold flows to a columnar flow store (flows.pwfs) that doubles as the
// /api/flows query artifact. Only the hot flow working set and one
// capture's records are ever resident at once.
//
// Usage:
//
//	pwanalyze -in patchwork-out -out analysis-out
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/analysis"
	"repro/internal/flowstore"
	"repro/internal/livemon"
	"repro/internal/pcap"
)

func main() {
	var (
		in      = flag.String("in", "", "input directory (site subdirectories of pcaps)")
		out     = flag.String("out", "analysis-out", "output directory for acaps, index, CSVs, and flow store")
		hotMax  = flag.Int("hotflows", 1<<16, "max in-memory flows before spilling to the flow store")
		verbose = flag.Bool("v", false, "print sketch summaries (cardinality estimate, heavy hitters)")
		serve   = flag.String("serve", "", `after analysis, serve the flow store on this address (":0" for an ephemeral port; bound address lands in <out>/livemon/addr) until SIGINT/SIGTERM`)
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	torn, err := run(*in, *out, *hotMax, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwanalyze:", err)
		os.Exit(1)
	}
	for _, path := range torn {
		fmt.Fprintf(os.Stderr, "pwanalyze: warning: %s: torn tail — a partial final record was dropped (run pwfsck -repair to truncate it)\n", path)
	}
	if *serve != "" {
		if err := serveFlows(*out, *serve); err != nil {
			fmt.Fprintln(os.Stderr, "pwanalyze:", err)
			os.Exit(1)
		}
	}
	if len(torn) > 0 {
		// Distinct from hard failure (1) and usage (2): the analysis
		// completed, but its inputs were not byte-complete.
		os.Exit(exitTornInput)
	}
}

// exitTornInput is the exit code for a successful analysis over at
// least one torn capture: the results are valid for every committed
// record, but integrity-sensitive callers need to know frames were
// dropped.
const exitTornInput = 4

// serveFlows exposes the analysis run's flow store on livemon's
// /api/flows endpoint until a SIGINT/SIGTERM arrives.
func serveFlows(out, addr string) error {
	dir := filepath.Join(out, "livemon")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	srv, err := livemon.New(livemon.Config{Addr: addr, AddrFile: filepath.Join(dir, "addr")})
	if err != nil {
		return err
	}
	srv.SetFlowStore(filepath.Join(out, "flows.pwfs"))
	if err := srv.ListenAndServe(); err != nil {
		return err
	}
	fmt.Printf("serving flow store on %s (SIGINT/SIGTERM to stop)\n", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}

// run executes the pipeline and returns the capture paths whose pcap
// stream ended in a torn tail (analysis proceeds over the intact
// prefix; the caller surfaces the integrity warning).
func run(in, out string, hotMax int, verbose bool) (torn []string, err error) {
	acapDir := filepath.Join(out, "acaps")
	if err := os.MkdirAll(acapDir, 0o755); err != nil {
		return nil, err
	}

	flowPath := filepath.Join(out, "flows.pwfs")
	spill, err := flowstore.Create(flowPath)
	if err != nil {
		return nil, err
	}
	defer spill.Close()
	d := analysis.NewDigester(analysis.DigestOptions{MaxHotFlows: hotMax, Spill: spill})

	// Digest: one acap (and one digester sample) per pcap, site taken
	// from the parent directory. Each acap is encoded and released
	// before the next capture opens; every streamed statistic — frame
	// sizes, header stacks, flows, TCP flags — folds into the digester.
	var captures int
	var index analysis.Index
	err = filepath.WalkDir(in, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, ".pcap") {
			return err
		}
		site := filepath.Base(filepath.Dir(path))
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rd, err := pcap.NewReader(f)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		acap := &analysis.Acap{Site: site}
		d.StartSample(site)
		err = rd.ForEach(func(rec *pcap.Record) error {
			acap.Records = append(acap.Records,
				analysis.DigestFrame(rec.TimestampNanos, rec.Data, rec.OriginalLength))
			return d.Frame(rec.TimestampNanos, rec.Data, rec.OriginalLength)
		})
		if err != nil {
			return err
		}
		if rd.Torn() {
			torn = append(torn, path)
		}
		d.EndSample()
		captures++

		// Persist the acap and index it; the records are dropped here.
		name := fmt.Sprintf("%s-%03d.json", site, captures)
		acapPath := filepath.Join(acapDir, name)
		af, err := os.Create(acapPath)
		if err != nil {
			return err
		}
		if err := acap.Encode(af); err != nil {
			_ = af.Close()
			return err
		}
		if err := af.Close(); err != nil {
			return err
		}
		index.Add(analysis.Summarize(acap, acapPath))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if captures == 0 {
		return nil, fmt.Errorf("no .pcap files under %s", in)
	}

	// Flush the remaining hot flows so flows.pwfs is a complete record,
	// then reopen it read-only for the exact aggregate merge.
	if err := d.Flows().Flush(); err != nil {
		return nil, err
	}
	if err := spill.Close(); err != nil {
		return nil, err
	}
	store, err := flowstore.Open(flowPath)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	flows, err := d.Flows().Aggregates(store)
	if err != nil {
		return nil, err
	}

	// Index.
	ixf, err := os.Create(filepath.Join(out, "index.json"))
	if err != nil {
		return nil, err
	}
	if err := index.Encode(ixf); err != nil {
		_ = ixf.Close()
		return nil, err
	}
	if err := ixf.Close(); err != nil {
		return nil, err
	}

	// Process: the paper's CSV outputs, each rendered from the
	// digester's folded state.
	writers := []struct {
		name string
		fn   func(*os.File) error
	}{
		{"frame_sizes.csv", func(f *os.File) error { return analysis.WriteFrameSizeHistCSV(f, d.FrameSizeHist()) }},
		{"header_occurrence.csv", func(f *os.File) error {
			return analysis.WriteHeaderOccurrenceMapCSV(f, d.HeaderOccurrence())
		}},
		{"site_headers.csv", func(f *os.File) error {
			return analysis.WriteSiteHeaderStatsCSV(f, d.SiteHeaderStats())
		}},
		{"flow_counts.csv", func(f *os.File) error { return analysis.WriteFlowCountCSV(f, d.SampleFlowCounts()) }},
		{"flow_aggregate.csv", func(f *os.File) error {
			return analysis.WriteFlowAggregateCSV(f, flows, 100)
		}},
		{"encapsulations.csv", func(f *os.File) error {
			return analysis.WriteStackPatternsCSV(f, d.EncapCensus(), 50)
		}},
		{"site_protocols.csv", func(f *os.File) error {
			return analysis.WriteSiteProtocolCSV(f, d.SiteProtocolShares())
		}},
		{"tcp_flags.csv", func(f *os.File) error {
			return analysis.WriteTCPFlagsCSV(f, d.TCPFlags())
		}},
	}
	for _, w := range writers {
		f, err := os.Create(filepath.Join(out, w.name))
		if err != nil {
			return nil, err
		}
		if err := w.fn(f); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	fmt.Printf("digested %d captures (%d frames, %d flows) into %s\n",
		captures, d.Frames(), len(flows), out)
	if verbose {
		est, stderr := d.Flows().CardinalityEstimate()
		fmt.Printf("  distinct flows ~%d (±%.1f%%), %d spilled rows in %s\n",
			est, stderr*100, d.Flows().SpilledFlows(), flowPath)
		for _, h := range d.Flows().HeavyHitters(10) {
			fmt.Printf("  heavy: %v frames>=%d (overestimate<=%d)\n", h.Key, h.Count-h.Err, h.Err)
		}
	}
	return torn, nil
}
