// Command pwanalyze runs Patchwork's offline analysis pipeline over a
// directory of pcap captures (as produced by cmd/patchwork): Digest
// (protocol dissection into abstract header stacks), Index, Analyze, and
// Process (CSV emission).
//
// Usage:
//
//	pwanalyze -in patchwork-out -out analysis-out
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/pcap"
)

func main() {
	var (
		in  = flag.String("in", "", "input directory (site subdirectories of pcaps)")
		out = flag.String("out", "analysis-out", "output directory for acaps, index, and CSVs")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "pwanalyze:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	acapDir := filepath.Join(out, "acaps")
	if err := os.MkdirAll(acapDir, 0o755); err != nil {
		return err
	}

	// Digest: one acap per pcap, site taken from the parent directory.
	// Raw stored frames are retained (bounded) for the flag analysis,
	// which needs header field values the acap discards.
	const maxRawFrames = 200000
	var rawFrames [][]byte
	var acaps []*analysis.Acap
	var index analysis.Index
	err := filepath.WalkDir(in, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".pcap") {
			return err
		}
		site := filepath.Base(filepath.Dir(path))
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rd, err := pcap.NewReader(f)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		acap := &analysis.Acap{Site: site}
		err = rd.ForEach(func(rec *pcap.Record) error {
			acap.Records = append(acap.Records,
				analysis.DigestFrame(rec.TimestampNanos, rec.Data, rec.OriginalLength))
			if len(rawFrames) < maxRawFrames {
				rawFrames = append(rawFrames, append([]byte(nil), rec.Data...))
			}
			return nil
		})
		if err != nil {
			return err
		}
		acaps = append(acaps, acap)

		// Persist the acap and index it.
		name := fmt.Sprintf("%s-%03d.json", site, len(acaps))
		acapPath := filepath.Join(acapDir, name)
		af, err := os.Create(acapPath)
		if err != nil {
			return err
		}
		if err := acap.Encode(af); err != nil {
			_ = af.Close()
			return err
		}
		if err := af.Close(); err != nil {
			return err
		}
		index.Add(analysis.Summarize(acap, acapPath))
		return nil
	})
	if err != nil {
		return err
	}
	if len(acaps) == 0 {
		return fmt.Errorf("no .pcap files under %s", in)
	}

	// Index.
	ixf, err := os.Create(filepath.Join(out, "index.json"))
	if err != nil {
		return err
	}
	if err := index.Encode(ixf); err != nil {
		_ = ixf.Close()
		return err
	}
	if err := ixf.Close(); err != nil {
		return err
	}

	// Analyze + Process: the paper's CSV outputs.
	var all []analysis.Record
	var flowCounts []int
	for _, a := range acaps {
		all = append(all, a.Records...)
		flowCounts = append(flowCounts, analysis.FlowsInSample(a))
	}
	writers := []struct {
		name string
		fn   func(*os.File) error
	}{
		{"frame_sizes.csv", func(f *os.File) error { return analysis.WriteFrameSizeCSV(f, all) }},
		{"header_occurrence.csv", func(f *os.File) error { return analysis.WriteHeaderOccurrenceCSV(f, all) }},
		{"site_headers.csv", func(f *os.File) error {
			return analysis.WriteSiteHeaderStatsCSV(f, analysis.HeaderStatsBySite(acaps))
		}},
		{"flow_counts.csv", func(f *os.File) error { return analysis.WriteFlowCountCSV(f, flowCounts) }},
		{"flow_aggregate.csv", func(f *os.File) error {
			return analysis.WriteFlowAggregateCSV(f, analysis.AggregateFlows(acaps), 100)
		}},
		{"encapsulations.csv", func(f *os.File) error {
			return analysis.WriteEncapsulationCSV(f, all, 50)
		}},
		{"site_protocols.csv", func(f *os.File) error {
			return analysis.WriteSiteProtocolCSV(f, analysis.ProtocolShareBySite(acaps))
		}},
		{"tcp_flags.csv", func(f *os.File) error {
			return analysis.WriteTCPFlagsCSV(f, analysis.CountTCPFlags(rawFrames))
		}},
	}
	for _, w := range writers {
		f, err := os.Create(filepath.Join(out, w.name))
		if err != nil {
			return err
		}
		if err := w.fn(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("digested %d captures (%d frames) into %s\n", len(acaps), len(all), out)
	return nil
}
