package main

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/flowstore"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/trafficgen"
)

// writeCorpus generates a small capture tree (site subdirectories of
// pcaps, 200-byte snaplen like a real capture) and returns its root.
func writeCorpus(t *testing.T, seed uint64, sites, samples, frames int) string {
	t.Helper()
	root := t.TempDir()
	profiles := trafficgen.MakeSiteProfiles(seed, 30)
	for i := 0; i < sites; i++ {
		p := profiles[i]
		g := trafficgen.NewGenerator(p, seed*1000+uint64(i))
		dir := filepath.Join(root, p.Site)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < samples; j++ {
			tfs, err := g.Sample(trafficgen.SampleConfig{
				Duration: 20 * sim.Second, MaxFrames: frames, FlowCount: 50,
			})
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.Create(filepath.Join(dir, fmt.Sprintf("sample-%02d.pcap", j)))
			if err != nil {
				t.Fatal(err)
			}
			w, err := pcap.NewWriter(f, pcap.FileHeader{SnapLen: 200})
			if err != nil {
				t.Fatal(err)
			}
			for _, tf := range tfs {
				if err := w.WriteRecord(int64(tf.At), tf.Data, len(tf.Data)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return root
}

// baselineCSVs reruns the pre-streaming pipeline — materialize every
// acap and raw frame, fold with the in-memory analysis functions — and
// returns the CSVs by file name.
func baselineCSVs(t *testing.T, in string) map[string][]byte {
	t.Helper()
	var acaps []*analysis.Acap
	var rawFrames [][]byte
	err := filepath.WalkDir(in, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, ".pcap") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rd, err := pcap.NewReader(f)
		if err != nil {
			return err
		}
		acap := &analysis.Acap{Site: filepath.Base(filepath.Dir(path))}
		err = rd.ForEach(func(rec *pcap.Record) error {
			acap.Records = append(acap.Records,
				analysis.DigestFrame(rec.TimestampNanos, rec.Data, rec.OriginalLength))
			rawFrames = append(rawFrames, append([]byte(nil), rec.Data...))
			return nil
		})
		if err != nil {
			return err
		}
		acaps = append(acaps, acap)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []analysis.Record
	var flowCounts []int
	for _, a := range acaps {
		all = append(all, a.Records...)
		flowCounts = append(flowCounts, analysis.FlowsInSample(a))
	}
	out := map[string][]byte{}
	emit := func(name string, fn func(*bytes.Buffer) error) {
		var b bytes.Buffer
		if err := fn(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = b.Bytes()
	}
	emit("frame_sizes.csv", func(b *bytes.Buffer) error { return analysis.WriteFrameSizeCSV(b, all) })
	emit("header_occurrence.csv", func(b *bytes.Buffer) error { return analysis.WriteHeaderOccurrenceCSV(b, all) })
	emit("site_headers.csv", func(b *bytes.Buffer) error {
		return analysis.WriteSiteHeaderStatsCSV(b, analysis.HeaderStatsBySite(acaps))
	})
	emit("flow_counts.csv", func(b *bytes.Buffer) error { return analysis.WriteFlowCountCSV(b, flowCounts) })
	emit("flow_aggregate.csv", func(b *bytes.Buffer) error {
		return analysis.WriteFlowAggregateCSV(b, analysis.AggregateFlows(acaps), 100)
	})
	emit("encapsulations.csv", func(b *bytes.Buffer) error { return analysis.WriteEncapsulationCSV(b, all, 50) })
	emit("site_protocols.csv", func(b *bytes.Buffer) error {
		return analysis.WriteSiteProtocolCSV(b, analysis.ProtocolShareBySite(acaps))
	})
	emit("tcp_flags.csv", func(b *bytes.Buffer) error {
		return analysis.WriteTCPFlagsCSV(b, analysis.CountTCPFlags(rawFrames))
	})
	return out
}

// TestRunMatchesInMemoryPipeline is the end-to-end equivalence gate for
// the CLI: the streamed run — with a hot-flow cap low enough to force
// spilling — must write every CSV byte-identical to the old
// materialize-everything pipeline, plus a complete flow store.
func TestRunMatchesInMemoryPipeline(t *testing.T) {
	in := writeCorpus(t, 21, 2, 2, 800)
	out := t.TempDir()
	torn, err := run(in, out, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) != 0 {
		t.Fatalf("clean corpus reported torn captures: %v", torn)
	}

	want := baselineCSVs(t, in)
	for name, wantBytes := range want {
		got, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes) {
			t.Errorf("%s differs from in-memory baseline\n--- streamed ---\n%s\n--- baseline ---\n%s",
				name, got, wantBytes)
		}
	}

	// The acap and index artifacts still exist.
	if _, err := os.Stat(filepath.Join(out, "index.json")); err != nil {
		t.Error(err)
	}
	acaps, err := filepath.Glob(filepath.Join(out, "acaps", "*.json"))
	if err != nil || len(acaps) != 4 {
		t.Errorf("acaps: %v (err %v), want 4", acaps, err)
	}

	// The flow store is complete: aggregating it alone (no hot state)
	// reproduces the exact flow totals.
	store, err := flowstore.Open(filepath.Join(out, "flows.pwfs"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Torn() || store.Rows() == 0 {
		t.Fatalf("flow store: torn=%v rows=%d", store.Torn(), store.Rows())
	}
	empty := analysis.NewFlowTable(0, nil, 0, 0)
	flows, err := empty.Aggregates(store)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := analysis.WriteFlowAggregateCSV(&b, flows, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want["flow_aggregate.csv"]) {
		t.Error("aggregates from the flow store alone differ from the baseline")
	}
}

// TestTornCaptureSurfaced: a capture whose final record was cut short
// must not fail the run — the intact prefix is analyzed — but its path
// must be reported so the CLI can warn and exit with the torn code.
func TestTornCaptureSurfaced(t *testing.T) {
	in := writeCorpus(t, 33, 2, 1, 400)
	var tornPath string
	err := filepath.WalkDir(in, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, ".pcap") || tornPath != "" {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		tornPath = path
		return os.Truncate(path, st.Size()-9) // die mid-record
	})
	if err != nil {
		t.Fatal(err)
	}
	if tornPath == "" {
		t.Fatal("corpus produced no pcaps")
	}

	torn, err := run(in, t.TempDir(), 64, false)
	if err != nil {
		t.Fatalf("torn capture failed the run instead of being surfaced: %v", err)
	}
	if len(torn) != 1 || torn[0] != tornPath {
		t.Errorf("torn = %v, want exactly [%s]", torn, tornPath)
	}
}
