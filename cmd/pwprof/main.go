// Command pwprof analyzes a causal provenance trace recorded by
// patchwork -provenance: it prints the sim-time critical path through
// the event DAG, blame tables attributing that path to sites and
// callbacks, and fan-out statistics, and can export the critical path
// as a Chrome trace for chrome://tracing / Perfetto.
//
// Usage:
//
//	pwprof [-top 10] [-chrome out.json] [-json] <provenance.trace>
//	pwprof -trace patchwork-out/prof/provenance.trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/prof"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "provenance trace file (or pass it as the positional argument)")
		top       = flag.Int("top", 10, "rows per blame table / critical-path steps to print")
		chrome    = flag.String("chrome", "", "also export the critical path as a Chrome trace to this file")
		asJSON    = flag.Bool("json", false, "emit the analysis as JSON instead of the text report")
	)
	flag.Parse()
	path := *tracePath
	if path == "" && flag.NArg() == 1 {
		path = flag.Arg(0)
	}
	if path == "" || flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: pwprof [-top N] [-chrome out.json] [-json] <provenance.trace>")
		os.Exit(2)
	}
	if err := run(path, *top, *chrome, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "pwprof:", err)
		os.Exit(1)
	}
}

func run(path string, top int, chromeOut string, asJSON bool) error {
	t, err := prof.LoadTrace(path)
	if err != nil {
		return err
	}
	if asJSON {
		if err := writeJSON(os.Stdout, t); err != nil {
			return err
		}
	} else if err := prof.WriteReport(os.Stdout, t, top); err != nil {
		return err
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		err = prof.WriteChromeCriticalPath(f, t)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("critical path exported to %s (open in chrome://tracing)\n", chromeOut)
	}
	return nil
}

// writeJSON emits the machine-readable analysis: overall stats, the
// critical path, and both blame tables.
func writeJSON(w *os.File, t *prof.Trace) error {
	path := t.CriticalPath()
	byFn, byTag := t.Blame(path)
	fan := t.FanOut()
	type step struct {
		Seq     uint64 `json:"seq"`
		Parent  int64  `json:"parent"`
		AtNs    int64  `json:"at_ns"`
		DeltaNs int64  `json:"delta_ns"`
		Fn      string `json:"fn"`
		Tag     string `json:"tag"`
	}
	steps := make([]step, 0, len(path))
	for _, s := range path {
		steps = append(steps, step{
			Seq: s.Ev.Seq, Parent: s.Ev.Parent,
			AtNs: int64(s.Ev.At), DeltaNs: int64(s.Delta),
			Fn: t.FnName(s.Ev.Fn), Tag: t.TagName(s.Ev.Tag),
		})
	}
	out := struct {
		Events       int               `json:"events"`
		SpanNs       int64             `json:"span_ns"`
		Torn         bool              `json:"torn,omitempty"`
		FanOut       prof.FanOutStats  `json:"fan_out"`
		CriticalPath []step            `json:"critical_path"`
		BlameByFn    []prof.BlameEntry `json:"blame_by_callback"`
		BlameByTag   []prof.BlameEntry `json:"blame_by_site"`
	}{
		Events: len(t.Events), SpanNs: int64(t.Span()), Torn: t.Torn,
		FanOut: fan, CriticalPath: steps, BlameByFn: byFn, BlameByTag: byTag,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
