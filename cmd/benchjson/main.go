// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_*.json format: one entry per benchmark, carrying
// every reported metric (ns/op, B/op, allocs/op, and custom units like
// ns/frame or %loss@11G). With -count > 1 runs of the same benchmark,
// the run with the lowest ns/op wins — the conventional "best of N"
// that filters scheduler noise.
//
// Usage:
//
//	go test -bench . -benchmem -count 3 ./internal/sim | benchjson > BENCH_kernel.json
//	benchjson -add RunAllSerial:ms:24831 -add RunAllParallel8:ms:24210 < bench.txt
//
// Each -add NAME:UNIT:VALUE injects an extra entry (e.g. wall-clock
// timings measured outside the testing framework).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// entry is one benchmark's record.
type entry struct {
	Iters   int64              `json:"iters,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// report is the full BENCH_*.json document.
type report struct {
	GeneratedBy string           `json:"generated_by"`
	Goos        string           `json:"goos,omitempty"`
	Goarch      string           `json:"goarch,omitempty"`
	CPU         string           `json:"cpu,omitempty"`
	Pkg         string           `json:"pkg,omitempty"`
	Cores       int              `json:"cores"`
	Benchmarks  map[string]entry `json:"benchmarks"`
}

// addList accumulates repeated -add flags.
type addList []string

func (a *addList) String() string     { return strings.Join(*a, ",") }
func (a *addList) Set(s string) error { *a = append(*a, s); return nil }

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	var adds addList
	flag.Var(&adds, "add", "inject an extra entry as NAME:UNIT:VALUE (repeatable)")
	flag.Parse()

	rep := report{
		GeneratedBy: "scripts/bench.sh (cmd/benchjson)",
		Cores:       runtime.NumCPU(),
		Benchmarks:  map[string]entry{},
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		metrics, ok := parseMetrics(m[3])
		if !ok {
			continue
		}
		prev, seen := rep.Benchmarks[name]
		// Best-of-N: keep the run with the lowest ns/op; a run without
		// ns/op only wins if nothing better was seen.
		if seen && better(prev.Metrics, metrics) {
			continue
		}
		rep.Benchmarks[name] = entry{Iters: iters, Metrics: metrics}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	for _, add := range adds {
		parts := strings.SplitN(add, ":", 3)
		if len(parts) != 3 {
			fatal(fmt.Errorf("bad -add %q, want NAME:UNIT:VALUE", add))
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			fatal(fmt.Errorf("bad -add value in %q: %v", add, err))
		}
		e := rep.Benchmarks[parts[0]]
		if e.Metrics == nil {
			e.Metrics = map[string]float64{}
		}
		e.Metrics[parts[1]] = v
		rep.Benchmarks[parts[0]] = e
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// parseMetrics splits "118.9 ns/op\t0 B/op\t0 allocs/op" into a map.
func parseMetrics(rest string) (map[string]float64, bool) {
	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return nil, false
	}
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		out[fields[i+1]] = v
	}
	return out, len(out) > 0
}

// better reports whether prev should be kept over cur (lower ns/op wins).
func better(prev, cur map[string]float64) bool {
	pn, ok1 := prev["ns/op"]
	cn, ok2 := cur["ns/op"]
	if !ok1 {
		return false // prev has no timing; any run replaces it
	}
	if !ok2 {
		return true
	}
	return pn <= cn
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
