// Command pwfsck scrubs a campaign output directory: it walks every
// on-disk artifact the platform writes — the journal WAL and
// checkpoint, flowstore segment files, live-telemetry ring segments,
// provenance traces, pcap captures, and JSONL event logs — and
// validates each format's framing and structural invariants.
//
// Damage is classified into two classes with very different meanings:
//
//   - torn tail: a single damaged region ending the file, the signature
//     of a process that died mid-write. Tolerable by design — every
//     reader in the platform already drops it — and repairable by
//     truncating to the last valid frame.
//   - mid-file corruption: intact frames reappear after the damage.
//     This is never caused by a crash; it means the storage layer
//     flipped or lost committed bytes. Repair still truncates to the
//     last frame of the leading intact run, but the data behind the
//     damage is lost and the scrub says so loudly.
//
// Usage:
//
//	pwfsck [-repair] [-q] <campaign-dir>
//
// Exit codes: 0 everything clean (or fully repaired with -repair),
// 1 operational error, 2 only tolerable torn tails found, 3 mid-file
// or unrepairable corruption found.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/flowstore"
	"repro/internal/pcap"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes. Torn and corrupt are distinct so scripted callers can
// treat "the process died mid-write" differently from "the disk lied".
const (
	exitClean   = 0
	exitErr     = 1
	exitTorn    = 2
	exitCorrupt = 3
)

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pwfsck", flag.ContinueOnError)
	flags.SetOutput(stderr)
	repair := flags.Bool("repair", false, "truncate damaged files to their last valid frame")
	quiet := flags.Bool("q", false, "print only damaged files and the summary")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: pwfsck [-repair] [-q] <campaign-dir>\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return exitErr
	}
	if flags.NArg() != 1 {
		flags.Usage()
		return exitErr
	}
	root := flags.Arg(0)
	if st, err := os.Stat(root); err != nil || !st.IsDir() {
		fmt.Fprintf(stderr, "pwfsck: %s is not a directory\n", root)
		return exitErr
	}

	reports, err := scrubDir(root, *repair)
	if err != nil {
		fmt.Fprintf(stderr, "pwfsck: %v\n", err)
		return exitErr
	}

	var clean, torn, corrupt, repaired int
	for _, r := range reports {
		switch {
		case r.repaired:
			repaired++
		case r.corrupt():
			corrupt++
		case r.torn():
			torn++
		default:
			clean++
		}
		if *quiet && !r.damaged() && !r.repaired {
			continue
		}
		fmt.Fprintf(stdout, "  %-8s %-40s %s\n", r.status(), r.rel, r.detail)
	}
	fmt.Fprintf(stdout, "pwfsck: %d artifacts scanned: %d clean, %d torn, %d corrupt, %d repaired\n",
		len(reports), clean, torn, corrupt, repaired)
	switch {
	case corrupt > 0:
		return exitCorrupt
	case torn > 0:
		return exitTorn
	}
	return exitClean
}

// report is the scrub outcome for one artifact.
type report struct {
	rel      string // path relative to the campaign dir
	format   string
	detail   string
	scan     lineScan
	repaired bool
	noRepair bool // damage truncation cannot fix (e.g. a corrupt whole-file JSON doc)
}

func (r report) damaged() bool { return r.scan.Damaged() || r.noRepair }
func (r report) torn() bool    { return r.damaged() && !r.corrupt() }
func (r report) corrupt() bool { return (r.scan.Damaged() && r.scan.MidFile) || r.noRepair }

func (r report) status() string {
	switch {
	case r.repaired:
		return "repaired"
	case r.corrupt():
		return "CORRUPT"
	case r.torn():
		return "TORN"
	}
	return "ok"
}

// lineScan is the shared damage geometry every scrubber reports:
// where the leading intact run ends, how big the file is, and whether
// intact data reappears after the damage.
type lineScan struct {
	Records int   // intact records/frames/segments in the leading run
	Good    int64 // byte offset where the leading intact run ends
	Size    int64
	MidFile bool // intact frames found after damage
}

func (s lineScan) Damaged() bool { return s.Good < s.Size }

// scrubDir walks the campaign directory and scrubs every artifact
// whose format the platform owns. Freeform text (run.log, summary.txt,
// addr, metric exports) is not validated.
func scrubDir(root string, repair bool) ([]report, error) {
	var reports []report
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		r, checked := scrubFile(path, rel)
		if !checked {
			return nil
		}
		if repair && r.scan.Damaged() && !r.noRepair {
			if err := os.Truncate(path, r.scan.Good); err != nil {
				return fmt.Errorf("repair %s: %w", rel, err)
			}
			r.repaired = true
			r.detail += fmt.Sprintf(" — truncated %d -> %d bytes", r.scan.Size, r.scan.Good)
		}
		reports = append(reports, r)
		return nil
	})
	sort.Slice(reports, func(i, j int) bool { return reports[i].rel < reports[j].rel })
	return reports, err
}

// scrubFile dispatches one file to its format scrubber. checked is
// false for files pwfsck does not understand.
func scrubFile(path, rel string) (report, bool) {
	base := filepath.Base(path)
	r := report{rel: rel}
	switch {
	case base == "wal.jsonl":
		r.format = "wal"
		r.scan, r.detail = scrubWAL(path)
	case base == "provenance.trace" || filepath.Ext(base) == ".trace":
		r.format = "trace"
		r.scan, r.detail = scrubFramed(path)
	case ringSegment(base):
		r.format = "ring"
		r.scan, r.detail = scrubFramed(path)
	case filepath.Ext(base) == ".pwfs":
		r.format = "flowstore"
		r.scan, r.detail = scrubFlowstore(path)
	case filepath.Ext(base) == ".pcap":
		r.format = "pcap"
		r.scan, r.detail = scrubPcap(path)
	case filepath.Ext(base) == ".json":
		r.format = "json"
		var ok bool
		ok, r.detail = scrubJSON(path)
		r.noRepair = !ok
	case filepath.Ext(base) == ".jsonl":
		r.format = "jsonl"
		r.scan, r.detail = scrubJSONL(path)
	default:
		return report{}, false
	}
	return r, true
}

func ringSegment(base string) bool {
	ok, _ := filepath.Match("seg-*.jsonl", base)
	return ok
}

// scanLines walks newline-terminated records, validating each line
// with valid. An unterminated final line is torn by definition — even
// if its content validates, the writer died before committing the
// newline, so it is excluded from the intact run (and truncation never
// extends the file). A valid line reappearing after damage flags
// mid-file corruption. leading, when non-nil, imposes an extra
// structural invariant on lines in the leading run only (e.g. WAL
// sequence contiguity).
func scanLines(data []byte, valid func(line []byte) bool, leading func(line []byte) bool) lineScan {
	s := lineScan{Size: int64(len(data))}
	off, damaged := 0, false
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		line := data[off : off+nl]
		ok := valid(line)
		switch {
		case ok && !damaged && (leading == nil || leading(line)):
			s.Records++
			s.Good = int64(off + nl + 1)
		case ok && damaged:
			s.MidFile = true
		default:
			damaged = true
		}
		off += nl + 1
	}
	return s
}

// validFrame checks the "crc32-hex8 space json" framing shared by the
// journal WAL, ring segments, and provenance traces.
func validFrame(line []byte) bool {
	if len(line) < 10 || line[8] != ' ' {
		return false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return false
	}
	body := line[9:]
	return crc32.ChecksumIEEE(body) == uint32(want) && json.Valid(body)
}

func scrubFramed(path string) (lineScan, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return lineScan{}, err.Error()
	}
	s := scanLines(data, validFrame, nil)
	return s, scanDetail(s, "frames")
}

// scrubWAL scrubs CRC framing plus the journal's structural invariant:
// sequence numbers are contiguous from zero. A CRC-valid record whose
// seq breaks the chain ends the intact run exactly like a bad frame —
// resume must never replay past a gap.
func scrubWAL(path string) (lineScan, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return lineScan{}, err.Error()
	}
	next := uint64(0)
	s := scanLines(data, validFrame, func(line []byte) bool {
		var rec struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(line[9:], &rec) != nil || rec.Seq != next {
			return false
		}
		next++
		return true
	})
	return s, scanDetail(s, "records")
}

func scrubJSONL(path string) (lineScan, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return lineScan{}, err.Error()
	}
	s := scanLines(data, json.Valid, nil)
	return s, scanDetail(s, "lines")
}

func scrubJSON(path string) (bool, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err.Error()
	}
	if !json.Valid(data) {
		return false, fmt.Sprintf("invalid JSON document (%d bytes) — not repairable by truncation", len(data))
	}
	return true, fmt.Sprintf("%d bytes", len(data))
}

func scrubFlowstore(path string) (lineScan, string) {
	rep, err := flowstore.Verify(nil, path)
	if err != nil {
		return lineScan{}, err.Error()
	}
	s := lineScan{Records: rep.Segments, Good: rep.Good, Size: rep.Size, MidFile: rep.MidFile}
	return s, scanDetail(s, "segments")
}

// scrubPcap walks the record stream tracking byte offsets. Pcap record
// headers carry no checksum and no resync marker, so nothing after the
// first damage can be trusted: a hard decode error (an implausible
// record length) is classified mid-file, a clean truncation mid-record
// is a torn tail.
func scrubPcap(path string) (lineScan, string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return lineScan{}, err.Error()
	}
	s := lineScan{Size: int64(len(data))}
	rd, err := pcap.NewReader(bytes.NewReader(data))
	if err != nil {
		s.MidFile = true // a bad magic is never a crash artifact
		return s, fmt.Sprintf("bad file header: %v", err)
	}
	s.Good = 24 // pcap global header
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			if rd.Torn() {
				return s, scanDetail(s, "packets")
			}
			// Trailing garbage a torn read would have consumed silently.
			if s.Good < s.Size {
				s.MidFile = true
				return s, scanDetail(s, "packets")
			}
			return s, fmt.Sprintf("%d packets, %d bytes", s.Records, s.Size)
		}
		if err != nil {
			s.MidFile = true
			return s, fmt.Sprintf("%s; %v", scanDetail(s, "packets"), err)
		}
		s.Records++
		s.Good += 16 + int64(len(rec.Data))
	}
}

func scanDetail(s lineScan, unit string) string {
	if !s.Damaged() {
		return fmt.Sprintf("%d %s, %d bytes", s.Records, unit, s.Size)
	}
	class := "torn tail"
	if s.MidFile {
		class = "mid-file corruption"
	}
	return fmt.Sprintf("%d %s intact, %s after byte %d of %d", s.Records, unit, class, s.Good, s.Size)
}
