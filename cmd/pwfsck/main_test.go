package main

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/flowstore"
	"repro/internal/pcap"
	"repro/internal/wire"
)

// frame encodes one CRC-framed line in the shared WAL/ring/trace format.
func frame(body string) string {
	return fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE([]byte(body)), body)
}

func walLines(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(frame(fmt.Sprintf(`{"seq":%d,"sim_ns":%d,"kind":"setup","site":"S%d"}`, i, i*1000, i)))
	}
	return b.String()
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writePcap writes a structurally valid pcap with n records and returns
// its bytes.
func writePcap(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.FileHeader{Nanosecond: true, SnapLen: 4096, LinkType: pcap.LinkTypeEthernet})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 60+i)
		if err := w.WriteRecord(int64(i)*1e6, data, len(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeFlowstore writes a valid .pwfs file with a few segments.
func writeFlowstore(t *testing.T, path string) {
	t.Helper()
	w, err := flowstore.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < 3; seg++ {
		recs := make([]flowstore.Rec, 20)
		for i := range recs {
			a := netip.AddrFrom4([4]byte{10, 0, byte(seg), byte(i)})
			b := netip.AddrFrom4([4]byte{10, 1, byte(seg), byte(i)})
			recs[i] = flowstore.Rec{
				Key: flowstore.Key{
					Src: wire.NewIPEndpoint(a), Dst: wire.NewIPEndpoint(b),
					Proto: wire.LayerTypeTCP, SrcPort: 1000 + uint16(i), DstPort: 443,
				},
				Site:    "site-a",
				FirstNs: int64(seg)*1e9 + int64(i)*1e6, LastNs: int64(seg)*1e9 + int64(i)*1e6 + 5e5,
				FirstSeq: uint64(seg*100 + i), Frames: 3, Bytes: 1800,
			}
		}
		if err := w.Append("site-a", recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// buildCampaignDir lays out a doctored campaign directory with every
// artifact format, returning the dir. Damage is planted per the flags.
func buildCampaignDir(t *testing.T, doctor bool) string {
	t.Helper()
	dir := t.TempDir()

	wal := walLines(8)
	if doctor {
		wal = wal[:len(wal)-7] // torn tail: final line cut mid-frame
	}
	writeFile(t, filepath.Join(dir, "journal", "wal.jsonl"), wal)
	writeFile(t, filepath.Join(dir, "journal", "manifest.json"), `{"spec":{"seed":7}}`)
	cp := `{"wal_seq":4,"kernel":{"now_ns":100}}`
	if doctor {
		cp = cp[:len(cp)-3] // corrupt whole-doc JSON: unrepairable
	}
	writeFile(t, filepath.Join(dir, "journal", "checkpoint.json"), cp)

	seg := frame(`{"seq":0,"k":"metric"}`) + frame(`{"seq":1,"k":"metric"}`) + frame(`{"seq":2,"k":"log"}`)
	if doctor {
		// Mid-file corruption: flip a byte inside the middle frame's body.
		b := []byte(seg)
		b[len(seg)/2] ^= 0x40
		seg = string(b)
	}
	writeFile(t, filepath.Join(dir, "livemon", "seg-00000000.jsonl"), seg)

	trace := frame(`{"k":"h","format":"pw-prov"}`) + frame(`{"k":"e","s":1}`)
	writeFile(t, filepath.Join(dir, "prof", "provenance.trace"), trace)

	alerts := `{"rule":"capture-drop-ratio","state":"firing"}` + "\n" + `{"rule":"capture-drop-ratio","state":"ok"}` + "\n"
	if doctor {
		alerts += `{"rule":"truncat` // torn tail: unterminated final line
	}
	writeFile(t, filepath.Join(dir, "health", "alerts.jsonl"), alerts)

	pc := writePcap(t, 5)
	if doctor {
		pc = pc[:len(pc)-20] // torn tail: died mid-record
	}
	writeFile(t, filepath.Join(dir, "STAR", "capture-00.pcap"), string(pc))
	writeFile(t, filepath.Join(dir, "STAR", "run.log"), "free text is not scrubbed\n")

	writeFlowstore(t, filepath.Join(dir, "flows.pwfs"))
	if doctor {
		// Torn tail: chop the last flowstore segment mid-block.
		st, err := os.Stat(filepath.Join(dir, "flows.pwfs"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(filepath.Join(dir, "flows.pwfs"), st.Size()-15); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestScrubCleanDir: a pristine campaign directory exits 0 and every
// artifact reports ok.
func TestScrubCleanDir(t *testing.T) {
	dir := buildCampaignDir(t, false)
	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != exitClean {
		t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitClean, out.String(), errOut.String())
	}
	for _, bad := range []string{"TORN", "CORRUPT"} {
		if strings.Contains(out.String(), bad) {
			t.Errorf("clean dir reported %s:\n%s", bad, out.String())
		}
	}
	if !strings.Contains(out.String(), "0 torn, 0 corrupt") {
		t.Errorf("summary line wrong:\n%s", out.String())
	}
	// run.log must not appear: freeform text is out of scope.
	if strings.Contains(out.String(), "run.log") {
		t.Errorf("freeform run.log was scrubbed:\n%s", out.String())
	}
}

// TestScrubDoctoredDir: every planted damage class is found, torn tails
// and mid-file corruption are distinguished, and the exit code reflects
// the worst class present.
func TestScrubDoctoredDir(t *testing.T) {
	dir := buildCampaignDir(t, true)
	var out, errOut bytes.Buffer
	code := run([]string{dir}, &out, &errOut)
	if code != exitCorrupt {
		t.Fatalf("exit %d, want %d (mid-file corruption present)\n%s", code, exitCorrupt, out.String())
	}
	s := out.String()
	for _, want := range []struct{ path, status string }{
		{"wal.jsonl", "TORN"},
		{"checkpoint.json", "CORRUPT"},
		{"seg-00000000.jsonl", "CORRUPT"},
		{"alerts.jsonl", "TORN"},
		{"capture-00.pcap", "TORN"},
		{"flows.pwfs", "TORN"},
		{"provenance.trace", "ok"},
		{"manifest.json", "ok"},
	} {
		found := false
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, want.path) {
				found = true
				if !strings.Contains(line, want.status) {
					t.Errorf("%s: got %q, want status %s", want.path, line, want.status)
				}
			}
		}
		if !found {
			t.Errorf("%s missing from report:\n%s", want.path, s)
		}
	}
}

// TestRepairRoundTrip: -repair truncates every truncation-repairable
// artifact to its last valid frame; a re-scrub finds only the
// unrepairable whole-doc JSON, and once that is replaced the directory
// is clean. Repaired artifacts must be readable by their real readers.
func TestRepairRoundTrip(t *testing.T) {
	dir := buildCampaignDir(t, true)
	var out, errOut bytes.Buffer
	code := run([]string{"-repair", dir}, &out, &errOut)
	if code != exitCorrupt {
		t.Fatalf("repair exit %d, want %d (checkpoint.json is unrepairable)\n%s", code, exitCorrupt, out.String())
	}
	if !strings.Contains(out.String(), "repaired") {
		t.Fatalf("no repairs reported:\n%s", out.String())
	}

	// Replace the unrepairable checkpoint and re-scrub: clean.
	writeFile(t, filepath.Join(dir, "journal", "checkpoint.json"), `{"wal_seq":4,"kernel":{"now_ns":100}}`)
	out.Reset()
	if code := run([]string{dir}, &out, &errOut); code != exitClean {
		t.Fatalf("re-scrub exit %d, want %d\n%s", code, exitClean, out.String())
	}

	// The repaired artifacts must load with their real readers.
	f, err := os.Open(filepath.Join(dir, "STAR", "capture-00.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := pcap.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	packets := 0
	if err := rd.ForEach(func(*pcap.Record) error { packets++; return nil }); err != nil {
		t.Fatal(err)
	}
	if packets != 4 || rd.Torn() {
		t.Errorf("repaired pcap: %d packets (torn=%v), want 4 clean", packets, rd.Torn())
	}

	st, err := flowstore.Open(filepath.Join(dir, "flows.pwfs"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Segments() != 2 || st.Torn() {
		t.Errorf("repaired flowstore: %d segments (torn=%v), want 2 clean", st.Segments(), st.Torn())
	}
}

// TestWALSeqGap: a CRC-valid WAL whose sequence numbers skip is
// structural corruption — the intact run ends at the gap, and the valid
// frames behind it classify the damage mid-file.
func TestWALSeqGap(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	for _, seq := range []int{0, 1, 3, 4} {
		b.WriteString(frame(fmt.Sprintf(`{"seq":%d,"kind":"setup"}`, seq)))
	}
	writeFile(t, filepath.Join(dir, "wal.jsonl"), b.String())
	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != exitCorrupt {
		t.Fatalf("exit %d, want %d for a seq gap\n%s", code, exitCorrupt, out.String())
	}
	if !strings.Contains(out.String(), "2 records intact") {
		t.Errorf("intact run should end at the gap:\n%s", out.String())
	}
}

// TestUnterminatedFinalFrame: a final CRC-valid line missing its
// newline is torn by definition, and repair must truncate it away
// rather than extend the file.
func TestUnterminatedFinalFrame(t *testing.T) {
	dir := t.TempDir()
	content := walLines(3) + strings.TrimSuffix(frame(`{"seq":3,"kind":"setup"}`), "\n")
	writeFile(t, filepath.Join(dir, "wal.jsonl"), content)
	var out, errOut bytes.Buffer
	if code := run([]string{"-repair", dir}, &out, &errOut); code != exitClean {
		t.Fatalf("repair exit %d, want %d\n%s", code, exitClean, out.String())
	}
	got, err := os.ReadFile(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != walLines(3) {
		t.Errorf("repair did not truncate to the last terminated frame")
	}
}

// TestExitCodes: usage errors and missing directories exit 1.
func TestExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != exitErr {
		t.Errorf("no args: exit %d, want %d", code, exitErr)
	}
	if code := run([]string{"/nonexistent-pwfsck-dir"}, &out, &errOut); code != exitErr {
		t.Errorf("missing dir: exit %d, want %d", code, exitErr)
	}
}
