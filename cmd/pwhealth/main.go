// Command pwhealth is the health-monitoring companion to patchwork. It
// has two modes:
//
// Validate mode parses alert-rule JSON files without running anything,
// so CI and operators can check rule changes cheaply:
//
//	pwhealth -validate rules/*.json
//
// Check-prom mode validates Prometheus text-exposition files (exported
// artifacts or saved /metrics scrapes) for syntax and histogram
// monotonicity:
//
//	pwhealth -check-prom out/metrics.prom
//
// Run mode drives a profiling campaign on the simulated federation with
// the health monitor attached and renders the live per-site status
// table as virtual time advances, then the alert transitions and
// flight-recorder dump names:
//
//	pwhealth [-seed 1] [-federation-sites 3] [-faults plan.json] [-rules rules.json] [-watch-sec 30]
package main

import (
	"flag"
	"fmt"
	"os"

	patchwork "repro/internal/core"
	"repro/internal/faults"
	"repro/internal/health"
	"repro/internal/hostsim"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
)

func main() {
	var (
		validate  = flag.Bool("validate", false, "parse-check the rule files given as arguments and exit")
		checkProm = flag.Bool("check-prom", false, "validate the Prometheus text-exposition files given as arguments and exit")
		rulesPath = flag.String("rules", "", "alert rule JSON (default: bundled rules)")
		seed      = flag.Uint64("seed", 1, "deterministic seed")
		nSites    = flag.Int("federation-sites", 3, "number of sites in the simulated federation")
		runs      = flag.Int("runs", 3, "port-cycling runs per site")
		sampleSec = flag.Int("sample-sec", 5, "sample duration in (virtual) seconds")
		faultPlan = flag.String("faults", "", "JSON fault plan to inject during the run")
		watchSec  = flag.Int("watch-sec", 30, "status table cadence in (virtual) seconds")
	)
	flag.Parse()

	if *validate {
		os.Exit(validateRules(flag.Args()))
	}
	if *checkProm {
		os.Exit(checkPromFiles(flag.Args()))
	}

	rules := health.DefaultRules()
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			fatal(err)
		}
		if rules, err = health.ParseBytes(data); err != nil {
			fatal(err)
		}
	}

	k := sim.NewKernel()
	full := testbed.DefaultFederation(k, *seed)
	specs := make([]testbed.SiteSpec, 0, *nSites)
	for i, s := range full.Sites() {
		if i >= *nSites {
			break
		}
		specs = append(specs, s.Spec)
	}
	k = sim.NewKernel()
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		fatal(err)
	}
	reg := obs.NewKernelRegistry(k)
	obs.CollectKernel(reg, k)
	fed.SetObs(reg)
	tracer := obs.NewKernelTracer(k)

	var injector *faults.Engine
	if *faultPlan != "" {
		plan, err := faults.Load(*faultPlan)
		if err != nil {
			fatal(err)
		}
		if injector, err = faults.NewEngine(k, *seed, plan); err != nil {
			fatal(err)
		}
		injector.SetObs(reg)
		if err := injector.Arm(fed); err != nil {
			fatal(err)
		}
	}

	monitor, err := health.NewMonitor(k, reg, tracer, health.Config{Rules: rules})
	if err != nil {
		fatal(err)
	}
	monitor.Start()
	k.Every(sim.Duration(*watchSec)*sim.Second, func(sim.Time) {
		if err := monitor.WriteStatus(os.Stdout); err != nil {
			fatal(err)
		}
	})

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(*seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], *seed+uint64(i))
		d := patchwork.NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 150
		drivers = append(drivers, d)
		d.Start()
	}
	poller.Start()

	cfg := patchwork.Config{
		Mode:           patchwork.AllExperiment,
		SampleDuration: sim.Duration(*sampleSec) * sim.Second,
		SampleInterval: sim.Duration(2**sampleSec) * sim.Second,
		SamplesPerRun:  2,
		Runs:           *runs,
		Seed:           *seed,
		Obs:            reg,
		Tracer:         tracer,
		Faults:         injector,
		Storage:        &hostsim.Config{},
		LogSink:        monitor,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := coord.Run(); err != nil {
		fatal(err)
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()
	monitor.Stop()

	fmt.Println("final health status:")
	if err := monitor.WriteStatus(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println("alert transitions:")
	if err := monitor.WriteAlertLog(os.Stdout); err != nil {
		fatal(err)
	}
	for _, d := range monitor.Dumps() {
		fmt.Printf("flight-recorder dump: %s (%d bytes)\n", d.Name, len(d.Data))
	}
	if injector != nil {
		fmt.Printf("faults injected: %s\n", injector.Summary())
	}
}

// validateRules parse-checks each file; with no arguments it checks the
// bundled default rule set. Returns the process exit code.
func validateRules(paths []string) int {
	if len(paths) == 0 {
		rs := health.DefaultRules()
		fmt.Printf("bundled defaults: %d signals, %d rules — ok\n", len(rs.Signals), len(rs.Rules))
		return 0
	}
	code := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pwhealth: %v\n", err)
			code = 1
			continue
		}
		rs, err := health.ParseBytes(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pwhealth: %s: %v\n", p, err)
			code = 1
			continue
		}
		fmt.Printf("%s: %d signals, %d rules — ok\n", p, len(rs.Signals), len(rs.Rules))
	}
	return code
}

// checkPromFiles runs the exposition validator over each file. Returns
// the process exit code.
func checkPromFiles(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "pwhealth: -check-prom needs at least one file")
		return 2
	}
	code := 0
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pwhealth: %v\n", err)
			code = 1
			continue
		}
		n, err := obs.ValidateExposition(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pwhealth: %s: %v\n", p, err)
			code = 1
			continue
		}
		fmt.Printf("%s: %d samples — ok\n", p, n)
	}
	return code
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwhealth:", err)
	os.Exit(1)
}
