// Capture tuning: finding the knobs that make line-rate capture work.
//
// Patchwork's accelerator-assisted path is limited not by the NIC but by
// the host's storage pipeline (paper Section 8.1.3-8.1.4 and Appendix B).
// This example sweeps the two tuning dimensions the paper studies —
// truncation length and vm.dirty_background_ratio:vm.dirty_ratio
// thresholds — and prints where capture starts losing frames.
//
// Run with: go run ./examples/capturetuning
package main

import (
	"fmt"
	"log"

	"repro/internal/capture"
	"repro/internal/hostsim"
	"repro/internal/sim"
	"repro/internal/units"
)

func main() {
	fmt.Println("=== 1. Truncation length vs achievable rate (DPDK, 15 cores) ===")
	fmt.Printf("%-10s %-12s %-10s\n", "snaplen", "rate", "loss")
	for _, snap := range []int{64, 200} {
		for _, gbps := range []int{15, 28, 60, 100} {
			k := sim.NewKernel()
			e, err := capture.NewEngine(k, capture.Config{
				Method: capture.MethodDPDK, SnapLen: snap, Cores: 15,
			})
			if err != nil {
				log.Fatal(err)
			}
			st := capture.OfferLoad(k, e, 512, units.BitRate(gbps)*units.Gbps, 50*sim.Millisecond)
			fmt.Printf("%-10d %-12s %-10v\n", snap,
				(units.BitRate(gbps) * units.Gbps).String(), st.LossPercent())
		}
	}
	fmt.Println("\n(smaller truncation sustains higher rates: Table 1 vs Table 2)")

	fmt.Println("\n=== 2. Dirty-ratio thresholds vs time to the page-cache cliff ===")
	fmt.Printf("%-12s %-16s %-16s\n", "thresholds", "first_stall", "blocked_calls")
	for _, p := range [][2]int{{10, 20}, {20, 50}, {60, 80}} {
		host, err := hostsim.New(hostsim.Config{
			FreeCache:            100 * units.GB,
			DirtyBackgroundRatio: p[0], DirtyRatio: p[1],
		})
		if err != nil {
			log.Fatal(err)
		}
		const chunk = 128 * 216 // one writev per 128 truncated frames
		ingest := int64(8_500_000_000)
		interval := sim.Duration(int64(sim.Second) * chunk / ingest)
		var now sim.Time
		firstStall := sim.Time(-1)
		for now < 12*sim.Second {
			host.Writev(now, chunk)
			if firstStall < 0 && host.Stats.ThrottledCalls+host.Stats.BlockedCalls > 0 {
				firstStall = now
			}
			now += interval
		}
		stall := "none in 12s"
		if firstStall >= 0 {
			stall = fmt.Sprintf("%.2fs", firstStall.Seconds())
		}
		fmt.Printf("%d:%-10d %-16s %-16d\n", p[0], p[1], stall, host.Stats.BlockedCalls)
	}
	fmt.Println("\n(the cliff arrives at the MIDPOINT of the two thresholds —")
	fmt.Println(" with 60:80 on ~100GB of cache, about 8-9 seconds at 8.5 GB/s,")
	fmt.Println(" exactly the paper's back-of-envelope in Appendix B)")

	fmt.Println("\n=== 3. Method choice at a congested mirror (20 Gbps, 2 cores) ===")
	fmt.Printf("%-12s %-10s\n", "method", "loss")
	for _, m := range []capture.Method{capture.MethodTcpdump, capture.MethodDPDK, capture.MethodFPGADPDK} {
		k := sim.NewKernel()
		e, err := capture.NewEngine(k, capture.Config{Method: m, SnapLen: 200, Cores: 2, BufferBytes: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		st := capture.OfferLoad(k, e, 1514, 20*units.Gbps, 100*sim.Millisecond)
		fmt.Printf("%-12s %-10v\n", m, st.LossPercent())
	}
	fmt.Println("\n(tcpdump is the simple default below ~8.5 Gbps; the kernel-bypass")
	fmt.Println(" paths take over beyond it)")
}
