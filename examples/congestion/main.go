// Congestion detection: spotting incomplete samples.
//
// Port mirroring clones both the Tx and Rx channels of the mirrored port
// into the single Tx channel of the egress port. When the mirrored
// port's Tx+Rx rate exceeds the egress line rate, the switch silently
// drops clones and the capture is incomplete. Patchwork cannot prevent
// this — it is a property of the switch — but it detects the condition
// from telemetry and flags the affected samples (paper Section 6.2.2).
//
// This example saturates one port in both directions, profiles it with a
// fixed-port selector, and prints the congestion events alongside the
// switch's own clone-drop counters.
//
// Run with: go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	patchwork "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/units"
)

func main() {
	k := sim.NewKernel()
	fed, err := testbed.NewFederation(k, []testbed.SiteSpec{{
		Name: "HOT", Uplinks: 1, Downlinks: 6, DedicatedNICs: 1,
		Cores: 16, RAM: 64 * units.GB, Storage: units.TB,
		LineRate: 10 * units.Gbps,
	}})
	if err != nil {
		log.Fatal(err)
	}
	site := fed.Sites()[0]
	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, sim.Second)
	poller.Watch(site.Switch)
	poller.Start()

	// Saturate P1: jumbo frames at line rate in BOTH directions, so the
	// mirror must squeeze 20 Gbps into a 10 Gbps egress channel.
	const frameSize = 9000
	interval := sim.Duration((10 * units.Gbps).TransmitNanos(frameSize))
	blast := k.Every(interval, func(sim.Time) {
		f := switchsim.Frame{Size: frameSize}
		_ = site.Switch.Transit("P1", switchsim.DirRx, f)
		_ = site.Switch.Transit("P1", switchsim.DirTx, f)
	})

	cfg := patchwork.Config{
		Mode:            patchwork.AllExperiment,
		SampleDuration:  2 * sim.Second,
		SampleInterval:  4 * sim.Second,
		SamplesPerRun:   2,
		Runs:            2,
		InstancesWanted: 1,
		Selector:        &patchwork.FixedSelector{Ports: []string{"P1"}},
		Seed:            5,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	blast.Stop()
	poller.Stop()

	b := prof.Bundles[0]
	fmt.Printf("site %s: outcome=%v\n\n", b.Site, b.Outcome)
	fmt.Printf("congestion events detected: %d\n", len(b.Congestion))
	for _, ev := range b.Congestion {
		fmt.Printf("  t=%-16v mirror %s->%s offered %s/s vs capacity %s/s (%.1fx oversubscribed)\n",
			ev.At, ev.MirroredPort, ev.EgressPort,
			units.ByteSize(ev.OfferedBps), units.ByteSize(ev.CapacityBps),
			ev.OfferedBps/ev.CapacityBps)
	}
	fmt.Println("\nper-sample switch-side drops (clones lost before capture):")
	for _, s := range b.Samples {
		fmt.Printf("  run %d sample %d on %s: %d frames captured, %d clones dropped at the switch\n",
			s.Run, s.Sample, s.MirroredPort, s.Frames, s.CloneDrops)
	}
	fmt.Println("\ntakeaway: the capture itself cannot see these losses — only")
	fmt.Println("telemetry-based detection marks the sample as incomplete.")
}
