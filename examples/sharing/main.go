// Sharing: the paper's future-work features in action.
//
// Section 6.3 lists two design limitations of the deployed Patchwork:
// (1) mirrored ports cannot be shared — only one FABRIC user can mirror
// a given switch port at a time — and (2) resources are fixed at
// start-up, with no runtime scaling. This example demonstrates the two
// extensions this repository implements for them:
//
//   - MirrorScheduler time-multiplexes a hot port among three users'
//     capture leases;
//   - NicePolicy lets a running profile shrink its footprint when other
//     experiments need the site's dedicated NICs, and grow back later.
//
// Run with: go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	patchwork "repro/internal/core"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
)

func main() {
	fmt.Println("=== 1. MirrorScheduler: three users share one mirrored port ===")
	mirrorSharing()
	fmt.Println("\n=== 2. NicePolicy: scaling the footprint under NIC pressure ===")
	niceScaling()
}

func mirrorSharing() {
	k := sim.NewKernel()
	sw := switchsim.New("S", k)
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		sw.AddPort(p, switchsim.RoleDownlink, 100*units.Gbps)
	}
	ms := patchwork.NewMirrorScheduler(k, sw)

	// Background traffic on the port everyone wants.
	tick := k.Every(50*sim.Millisecond, func(sim.Time) {
		_ = sw.Transit("P1", switchsim.DirRx, switchsim.Frame{Size: 1500})
	})

	for i, spec := range []struct{ user, egress string }{
		{"alice", "P2"}, {"bob", "P3"}, {"carol", "P4"},
	} {
		spec := spec
		var seen uint64
		_ = i
		err := ms.Request(&patchwork.MirrorLease{
			User: spec.user, Mirrored: "P1", Dirs: switchsim.DirRx,
			Egress: spec.egress, Duration: 5 * sim.Second,
			OnGrant: func(sess *switchsim.MirrorSession) {
				fmt.Printf("  t=%-14v %s granted P1 (egress %s)\n", k.Now(), spec.user, spec.egress)
				seen = sess.Cloned
			},
			OnRelease: func() {
				fmt.Printf("  t=%-14v %s released P1\n", k.Now(), spec.user)
				_ = seen
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  (queue after submission: active=%s pending=%d)\n",
		ms.ActiveUser("P1"), ms.PendingFor("P1"))
	// Stop the traffic ticker once all three leases have expired, so the
	// event queue drains.
	k.At(16*sim.Second, func() { tick.Stop() })
	k.Run()
	fmt.Printf("  leases granted: %d, of which %d had to queue\n", ms.Granted, ms.Queued)
}

func niceScaling() {
	k := sim.NewKernel()
	fed, err := testbed.NewFederation(k, []testbed.SiteSpec{{
		Name: "BUSY", Uplinks: 1, Downlinks: 10, DedicatedNICs: 3,
		Cores: 64, RAM: 256 * units.GB, Storage: 2 * units.TB,
	}})
	if err != nil {
		log.Fatal(err)
	}
	site := fed.Sites()[0]
	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 10*sim.Second)
	poller.Watch(site.Switch)
	poller.Start()
	gen := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(3, 1)[0], 3)
	driver := patchwork.NewTrafficDriver(k, site, gen, nil)
	driver.Start()

	// Another experiment grabs the spare NIC mid-run, then lets go.
	var hog *testbed.Sliver
	k.After(10*sim.Second, func() {
		hog, _ = site.Allocate(k.Now(), testbed.SliceRequest{Name: "rival", VMs: []testbed.VMRequest{
			{DedicatedNICs: 1, Cores: 4, RAM: units.GB, Storage: units.GB},
		}})
		fmt.Printf("  t=%-14v rival experiment takes the spare NIC\n", k.Now())
	})
	k.After(40*sim.Second, func() {
		if hog != nil {
			_ = site.Release(hog)
			fmt.Printf("  t=%-14v rival experiment finishes\n", k.Now())
		}
	})

	cfg := patchwork.Config{
		Mode:            patchwork.AllExperiment,
		SampleDuration:  2 * sim.Second,
		SampleInterval:  5 * sim.Second,
		SamplesPerRun:   1,
		Runs:            12,
		InstancesWanted: 2,
		Seed:            7,
		Nice:            &patchwork.NicePolicy{ScaleDownFreeNICs: 0, ScaleUpFreeNICs: 1},
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	driver.Stop()
	poller.Stop()

	b := prof.Bundles[0]
	fmt.Printf("  outcome: %v, captures: %d\n", b.Outcome, len(b.CompressedPcaps))
	fmt.Println("  footprint changes:")
	for _, ev := range b.ScaleEvents {
		fmt.Printf("    %v\n", ev)
	}
	if len(b.ScaleEvents) == 0 {
		fmt.Println("    (none — site never came under pressure)")
	}
}
