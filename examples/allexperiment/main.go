// All-experiment mode: the standing testbed-wide profile.
//
// This example reproduces Patchwork's weekly deployment: it builds a
// six-site federation, runs a different research workload at every site,
// profiles all of them simultaneously in all-experiment mode (the mode
// that requires the testbed operator's discretionary permission), then
// runs the full offline analysis pipeline over the gathered bundles and
// prints a miniature network profile — header occurrence, frame sizes,
// and per-site diversity.
//
// Run with: go run ./examples/allexperiment
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"repro/internal/analysis"
	patchwork "repro/internal/core"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
	"repro/internal/wire"
)

func main() {
	const seed = 11

	// Federation: the first six sites of the default 28-site layout.
	k := sim.NewKernel()
	full := testbed.DefaultFederation(k, seed)
	specs := make([]testbed.SiteSpec, 6)
	for i := range specs {
		specs[i] = full.Sites()[i].Spec
	}
	k = sim.NewKernel()
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		log.Fatal(err)
	}

	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(seed, len(fed.Sites()))
	var drivers []*patchwork.TrafficDriver
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], seed+uint64(i))
		d := patchwork.NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 200
		drivers = append(drivers, d)
		d.Start()
	}
	poller.Start()

	cfg := patchwork.Config{
		Mode:           patchwork.AllExperiment,
		SampleDuration: 4 * sim.Second,
		SampleInterval: 8 * sim.Second,
		SamplesPerRun:  2,
		Runs:           3,
		Seed:           seed,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range drivers {
		d.Stop()
	}
	poller.Stop()

	fmt.Printf("profiled %d sites, success rate %.0f%%\n\n",
		len(prof.Bundles), prof.SuccessRate()*100)

	// Analysis phase: digest every bundle into acaps.
	var acaps []*analysis.Acap
	var all []analysis.Record
	for _, b := range prof.Bundles {
		pcaps, err := b.DecompressPcaps()
		if err != nil {
			log.Fatal(err)
		}
		for _, raw := range pcaps {
			rd, err := pcap.NewReader(bytes.NewReader(raw))
			if err != nil {
				log.Fatal(err)
			}
			a, err := analysis.Digest(b.Site, rd)
			if err != nil {
				log.Fatal(err)
			}
			acaps = append(acaps, a)
			all = append(all, a.Records...)
		}
	}

	// Header occurrence (the Fig. 12 view).
	fmt.Println("header occurrence (% of frames):")
	occ := analysis.HeaderOccurrence(all)
	type hv struct {
		t   wire.LayerType
		pct float64
	}
	var hvs []hv
	for t, p := range occ {
		hvs = append(hvs, hv{t, p})
	}
	sort.Slice(hvs, func(i, j int) bool { return hvs[i].pct > hvs[j].pct })
	for _, h := range hvs {
		fmt.Printf("  %-14s %6.2f%%\n", h.t, h.pct)
	}

	// Frame sizes (the Section 8.2 aggregate view).
	fmt.Println("\nframe sizes:")
	hist := analysis.FrameSizeHistogram(all)
	for i, c := range hist {
		if c == 0 {
			continue
		}
		fmt.Printf("  %-10s %6s\n", analysis.FrameSizeBucketLabel(i),
			units.PercentOf(int64(c), int64(len(all))))
	}

	// Per-site diversity (the Fig. 11 view).
	fmt.Println("\nper-site header diversity:")
	for _, s := range analysis.HeaderStatsBySite(acaps) {
		fmt.Printf("  %-8s %2d distinct headers, deepest stack %d (over %d frames)\n",
			s.Site, s.DistinctHeaders, s.MaxStackDepth, s.Frames)
	}
}
