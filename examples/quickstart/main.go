// Quickstart: profile a single experiment's site with Patchwork.
//
// This example builds a two-site simulated federation, runs another
// researcher's workload across the first site's switch, and then uses
// Patchwork in single-experiment mode to capture that site's traffic. It
// finishes by digesting the captured pcaps and printing what was seen —
// the same flow a FABRIC user follows with the real tool.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/analysis"
	patchwork "repro/internal/core"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
)

func main() {
	// A small federation: two sites, a handful of ports each.
	k := sim.NewKernel()
	fed, err := testbed.NewFederation(k, []testbed.SiteSpec{
		{Name: "STAR", Uplinks: 2, Downlinks: 8, DedicatedNICs: 2,
			Cores: 32, RAM: 128 * units.GB, Storage: units.TB},
		{Name: "TACC", Uplinks: 1, Downlinks: 8, DedicatedNICs: 2,
			Cores: 32, RAM: 128 * units.GB, Storage: units.TB},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry (MFlib stand-in) polls every switch.
	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	for _, s := range fed.Sites() {
		poller.Watch(s.Switch)
	}
	poller.Start()

	// Someone else's experiment: a bulk-TCP workload crossing STAR.
	profile := trafficgen.MakeSiteProfiles(1, 1)[0]
	gen := trafficgen.NewGenerator(profile, 7)
	driver := patchwork.NewTrafficDriver(k, fed.Site("STAR"), gen, nil)
	driver.Start()

	// Patchwork, single-experiment mode, on the slice's site.
	cfg := patchwork.Config{
		Mode:           patchwork.SingleExperiment,
		Sites:          []string{"STAR"},
		SampleDuration: 5 * sim.Second,
		SampleInterval: 10 * sim.Second,
		SamplesPerRun:  2,
		Runs:           2,
		Seed:           42,
	}
	coord, err := patchwork.NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := coord.Run()
	if err != nil {
		log.Fatal(err)
	}
	driver.Stop()
	poller.Stop()

	// Gather + analyze: decompress the bundle and digest the captures.
	b := prof.Bundles[0]
	fmt.Printf("site %s: outcome=%v, sampled ports %v\n", b.Site, b.Outcome, b.PortsSampled)
	pcaps, err := b.DecompressPcaps()
	if err != nil {
		log.Fatal(err)
	}
	frames := 0
	stacks := map[string]int{}
	for _, raw := range pcaps {
		rd, err := pcap.NewReader(bytes.NewReader(raw))
		if err != nil {
			log.Fatal(err)
		}
		acap, err := analysis.Digest(b.Site, rd)
		if err != nil {
			log.Fatal(err)
		}
		frames += len(acap.Records)
		for _, r := range acap.Records {
			stacks[r.StackString()]++
		}
	}
	fmt.Printf("captured %d frames across %d pcaps\n", frames, len(pcaps))
	fmt.Println("header stacks observed:")
	for s, n := range stacks {
		fmt.Printf("  %6d  %s\n", n, s)
	}
}
