package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/storefault"
)

// hostileStorePlan aims three different write faults at the campaign
// WAL: a torn write (silent lost tail mid-file), a bit flip (silent
// corruption), and an ENOSPC (loud failure driving the degradation
// path). rate 1 with disjoint after_ops windows makes each injection
// land deterministically on a specific write op.
const hostileStorePlan = `{
  "name": "hostile-store",
  "torn_writes": [{"path_glob": "wal.jsonl", "rate": 1, "after_ops": 6,  "max": 1}],
  "bit_flips":   [{"path_glob": "wal.jsonl", "rate": 1, "after_ops": 10, "max": 1}],
  "enospc":      [{"path_glob": "wal.jsonl", "rate": 1, "after_ops": 8,  "max": 1}]
}`

// storeChaosSpec needs enough WAL traffic to walk through every
// injection window: three sites, two runs, two samples.
func storeChaosSpec() campaign.Spec {
	return campaign.Spec{
		Mode:            "all",
		FederationSites: 3,
		Runs:            2,
		Samples:         2,
		SampleSec:       2,
		IntervalSec:     4,
		Seed:            11,
		Instances:       1,
		CheckpointSec:   10,
	}
}

// runHostile runs one campaign under the hostile plan and returns the
// result plus the chaos layer's injection log.
func runHostile(t *testing.T, seed uint64, dir string) (*campaign.Result, *storefault.Chaos) {
	t.Helper()
	plan, err := storefault.Parse([]byte(hostileStorePlan))
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := storefault.NewChaos(nil, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.RunExec(storeChaosSpec(), dir, false, campaign.Exec{FS: chaos})
	if err != nil {
		t.Fatal(err)
	}
	return res, chaos
}

// TestStorageChaosCampaign: a campaign writing its journal through the
// hostile plan must still complete — silent faults by definition go
// unnoticed, and the loud ENOSPC must be degraded around (pause, retry)
// rather than aborting the run. Same-seed reruns must replay the chaos
// injection-for-injection.
func TestStorageChaosCampaign(t *testing.T) {
	res, chaos := runHostile(t, 99, t.TempDir())
	if res.Crashed {
		t.Fatal("campaign crashed under the hostile plan; ENOSPC must degrade, not kill")
	}
	if res.Profile == nil {
		t.Fatal("campaign completed without a profile")
	}
	inj := chaos.Injected()
	t.Logf("injections: %s", chaos.Summary())
	for _, kind := range []string{storefault.KindTornWrite, storefault.KindBitFlip, storefault.KindENOSPC} {
		if inj[kind] != 1 {
			t.Errorf("%s injected %d times, want exactly 1", kind, inj[kind])
		}
	}

	// The ENOSPC must have been counted as a storage error (the feed for
	// the bundled storage-errors health rule).
	var metrics bytes.Buffer
	if err := res.Registry.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), `patchwork_storage_errors_total{artifact="append"} 1`) {
		t.Errorf("patchwork_storage_errors_total not counted; metrics:\n%s",
			grepLines(metrics.String(), "storage_errors"))
	}

	// Determinism receipt: a second same-seed campaign over the same plan
	// must emit a byte-identical injection log.
	res2, chaos2 := runHostile(t, 99, t.TempDir())
	if res2.Crashed {
		t.Fatal("second campaign crashed")
	}
	var log1, log2 bytes.Buffer
	if err := chaos.WriteLogJSONL(&log1); err != nil {
		t.Fatal(err)
	}
	if err := chaos2.WriteLogJSONL(&log2); err != nil {
		t.Fatal(err)
	}
	if log1.Len() == 0 {
		t.Fatal("empty injection log")
	}
	if !bytes.Equal(log1.Bytes(), log2.Bytes()) {
		t.Errorf("same seed, different injection logs:\n%s\nvs\n%s", log1.String(), log2.String())
	}

	// A different seed must not replay the same log (the comparison above
	// would be vacuous if the log ignored the seed). The plan's rate-1
	// windows fire on the same ops regardless of seed, but the torn/flip
	// cut points inside the ops differ — assert on the artifact level:
	// same ops, and the campaign still completes.
	res3, chaos3 := runHostile(t, 100, t.TempDir())
	if res3.Crashed {
		t.Fatal("campaign with seed 100 crashed")
	}
	if chaos3.InjectedTotal() != chaos.InjectedTotal() {
		t.Logf("seed 100 injected %d faults vs %d (windows are op-deterministic)",
			chaos3.InjectedTotal(), chaos.InjectedTotal())
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
