package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/remedy"
)

// selfHealPlan is the hostile plan the remediation supervisor must
// recover from: a site outage overlapping NCSA's setup (driving
// alloc-failure burn and a slice re-allocation), corrupted mirror
// sessions at STAR (driving mirror re-arms), and long capture-core
// stalls at UCSD (starving the listener-liveness signal and driving
// engine restarts). The storage-rotation pressure comes from the
// spec's tight storage limit, not the plan.
const selfHealPlan = `{
  "name": "self-heal",
  "site_outages":       [{"site": "NCSA", "from_sec": 1, "to_sec": 8}],
  "mirror_corruptions": [{"site": "STAR", "rate": 0.3}],
  "capture_stalls":     [{"site": "UCSD", "rate": 0.02, "stall_sec": 4}]
}`

// selfHealRules tunes the bundled alert thresholds to the test's small
// scale: a 3-second listener staleness window (the injected stalls are
// 4 s), the default mirror-drop and alloc-burn rules, and a
// storage-pressure threshold sized against the spec's storage limit.
const selfHealRules = `{
  "name": "self-heal-test",
  "rules": [
    {"name": "listener-stale", "severity": "warning",
     "absence": {"metric": "capture_core_queue_highwater", "stale_sec": 3}},
    {"name": "mirror-drop-ratio", "severity": "warning", "for_sec": 2,
     "threshold": {"expr": {"metric": "switchsim_mirror_fault_drops_total", "agg": "rate", "window_sec": 30,
       "divisor": {"metric": "switchsim_mirror_cloned_total", "agg": "rate", "window_sec": 30}},
       "op": ">", "value": 0.02}},
    {"name": "alloc-failure-burn", "severity": "warning",
     "burn_rate": {"expr": {"metric": "testbed_alloc_failures_total", "agg": "rate", "window_sec": 30},
       "budget_per_hour": 12, "max_burn": 10}},
    {"name": "storage-pressure", "severity": "critical", "for_sec": 2,
     "threshold": {"expr": {"metric": "patchwork_storage_free_bytes"}, "op": "<", "value": %d}}
  ]
}`

// selfHealPolicy binds each alert to its remediation with short
// cooldowns and generous retry budgets (the test wants recoveries, not
// suppression), and quarantine disabled so one unlucky site cannot
// starve the assertions.
const selfHealPolicy = `{
  "name": "self-heal-test",
  "rate": {"actions_per_sec": 10, "burst": 10},
  "quarantine_after": 0,
  "rules": [
    {"name": "restart", "on_rule": "listener-stale", "action": "restart-listener",
     "cooldown_sec": 5, "max_attempts": 6, "max_elapsed_sec": 120},
    {"name": "realloc", "on_rule": "alloc-failure-burn", "action": "reallocate",
     "cooldown_sec": 5, "max_attempts": 8, "max_elapsed_sec": 240},
    {"name": "rearm", "on_rule": "mirror-drop-ratio", "action": "rearm-mirror",
     "cooldown_sec": 5, "max_attempts": 6, "max_elapsed_sec": 120},
    {"name": "rotate", "on_rule": "storage-pressure", "action": "rotate-storage",
     "cooldown_sec": 5, "max_attempts": 6, "max_elapsed_sec": 120}
  ]
}`

// selfHealSpec builds the campaign the self-healing tests share.
func selfHealSpec(t *testing.T, planJSON string) campaign.Spec {
	t.Helper()
	// Tight enough that the three cycles' accumulated captures (~250-350
	// KB each) overflow it without rotation, but roomy enough that one
	// cycle's live (unharvestable) bytes never overflow it alone.
	const storageLimit = 768 << 10
	plan, err := faults.Parse([]byte(planJSON))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := remedy.ParsePolicy([]byte(selfHealPolicy))
	if err != nil {
		t.Fatal(err)
	}
	rules := []byte(sprintfRules(selfHealRules, storageLimit/2))
	return campaign.Spec{
		Mode:              "all",
		FederationSites:   3, // STAR, NCSA, UCSD
		Runs:              3,
		Samples:           2,
		SampleSec:         2,
		IntervalSec:       4,
		Seed:              11,
		Instances:         1,
		StorageLimitBytes: storageLimit,
		HealthRules:       json.RawMessage(rules),
		Faults:            &plan,
		Remedy:            &pol,
		CheckpointSec:     10,
	}
}

func sprintfRules(format string, limit int64) string {
	return fmt.Sprintf(format, limit)
}

// campaignArtifacts flattens a campaign result into the byte artifacts
// the determinism contract is checked on.
type campaignArtifacts struct {
	metrics, alertLog, remedyLog, wal []byte
	outcomes                          map[string]int
}

func collectArtifacts(t *testing.T, res *campaign.Result) campaignArtifacts {
	t.Helper()
	var metrics, alerts, actions bytes.Buffer
	if err := res.Registry.WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := res.Monitor.WriteAlertLog(&alerts); err != nil {
		t.Fatal(err)
	}
	if err := res.Supervisor.WriteActionLog(&actions); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(res.Dir, journal.WALFile))
	if err != nil {
		t.Fatal(err)
	}
	return campaignArtifacts{
		metrics:   metrics.Bytes(),
		alertLog:  alerts.Bytes(),
		remedyLog: actions.Bytes(),
		wal:       wal,
		outcomes:  res.Supervisor.Outcomes(),
	}
}

// TestChaosSelfHealing: under the hostile plan the supervisor must
// actually heal the campaign — at least one successful listener
// restart, one slice re-allocation, and one storage rotation — and the
// campaign must still complete. Same-seed reruns must produce a
// byte-identical remediation log (the determinism contract).
func TestChaosSelfHealing(t *testing.T) {
	spec := selfHealSpec(t, selfHealPlan)
	res, err := campaign.Run(spec, t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("campaign crashed with no crash points in the plan")
	}
	art := collectArtifacts(t, res)
	t.Logf("remediation outcomes: %v", art.outcomes)
	t.Logf("remediation log:\n%s", art.remedyLog)

	for _, action := range []string{"restart-listener", "reallocate", "rotate-storage"} {
		if art.outcomes[action+"/ok"] == 0 {
			t.Errorf("no successful %s remediation under the hostile plan", action)
		}
	}
	// The tight storage limit means an unrotated site dies to the
	// watchdog; every site surviving proves rotation worked in time.
	for _, b := range res.Profile.Bundles {
		t.Logf("%s: %v granted=%d/%d pcaps=%d (%s)", b.Site, b.Outcome,
			b.InstancesGranted, b.InstancesRequested, len(b.CompressedPcaps), b.FailureReason)
	}
	if res.Profile.SuccessRate() < 1 {
		t.Errorf("success rate %.2f under remediation, want 1.0", res.Profile.SuccessRate())
	}

	// Determinism: a second same-seed campaign must emit byte-identical
	// remediation and alert logs.
	res2, err := campaign.Run(spec, t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	art2 := collectArtifacts(t, res2)
	if !bytes.Equal(art.remedyLog, art2.remedyLog) {
		t.Errorf("same seed, different remediation logs:\n%s\nvs\n%s", art.remedyLog, art2.remedyLog)
	}
	if !bytes.Equal(art.alertLog, art2.alertLog) {
		t.Error("same seed, different alert logs")
	}
	if !bytes.Equal(art.wal, art2.wal) {
		t.Error("same seed, different campaign WALs")
	}
}

// TestChaosCrashResume: a campaign killed at injected crash points and
// resumed (as many times as it takes) must finish with every artifact
// — WAL, metrics, alert log, remediation log — byte-identical to the
// same campaign run uninterrupted. This is the checkpoint/restore
// contract end to end.
func TestChaosCrashResume(t *testing.T) {
	plan := `{
	  "name": "self-heal-crash",
	  "site_outages":       [{"site": "NCSA", "from_sec": 1, "to_sec": 8}],
	  "mirror_corruptions": [{"site": "STAR", "rate": 0.3}],
	  "capture_stalls":     [{"site": "UCSD", "rate": 0.02, "stall_sec": 4}],
	  "crash_points":       [{"at_sec": 7}, {"at_sec": 19}]
	}`
	spec := selfHealSpec(t, plan)

	// Baseline: crash points journaled but not honored.
	baseDir := t.TempDir()
	base, err := campaign.Run(spec, baseDir, false)
	if err != nil {
		t.Fatal(err)
	}
	baseArt := collectArtifacts(t, base)

	// The real thing: killed at each crash point, resumed after each.
	crashDir := t.TempDir()
	res, err := campaign.Run(spec, crashDir, true)
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for res.Crashed {
		crashes++
		if crashes > 5 {
			t.Fatal("campaign still crashing after 5 resumes")
		}
		t.Logf("crashed at t=%v; resuming", res.CrashedAt)
		if res, err = campaign.Resume(crashDir, true); err != nil {
			t.Fatal(err)
		}
		if res.Replayed == 0 {
			t.Error("resume replayed no journal records")
		}
	}
	if crashes != 2 {
		t.Errorf("crashed %d times, want 2 (one per crash point)", crashes)
	}
	art := collectArtifacts(t, res)

	if !bytes.Equal(art.wal, baseArt.wal) {
		t.Errorf("resumed WAL differs from uninterrupted baseline:\n%s\nvs\n%s", art.wal, baseArt.wal)
	}
	if !bytes.Equal(art.metrics, baseArt.metrics) {
		t.Errorf("resumed metrics differ from baseline (lens %d vs %d)", len(art.metrics), len(baseArt.metrics))
	}
	if !bytes.Equal(art.alertLog, baseArt.alertLog) {
		t.Error("resumed alert log differs from baseline")
	}
	if !bytes.Equal(art.remedyLog, baseArt.remedyLog) {
		t.Errorf("resumed remediation log differs from baseline:\n%s\nvs\n%s", art.remedyLog, baseArt.remedyLog)
	}

	// The resumed run must also have verified a real prefix, and the WAL
	// must record both crashes.
	recs, err := journal.ReadWAL(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	crashRecs := 0
	for _, r := range recs {
		if r.Kind == journal.KindCrash {
			crashRecs++
		}
	}
	if crashRecs != 2 {
		t.Errorf("WAL records %d crashes, want 2", crashRecs)
	}
}

// TestCampaignResumeDetectsDivergence: resuming a journal with a
// different world (here: a WAL doctored to claim different history)
// must fail loudly with a divergence error, never continue silently.
func TestCampaignResumeDetectsDivergence(t *testing.T) {
	spec := selfHealSpec(t, selfHealPlan)
	dir := t.TempDir()
	if _, err := campaign.Run(spec, dir, true); err != nil {
		t.Fatal(err)
	}
	// Doctor the manifest's seed: replay now regenerates different
	// history than the WAL holds.
	manifest, err := journal.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var doctored campaign.Spec
	if err := json.Unmarshal(manifest, &doctored); err != nil {
		t.Fatal(err)
	}
	doctored.Seed = 12
	data, err := json.MarshalIndent(doctored, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journal.ManifestFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Resume(dir, true); err == nil {
		t.Fatal("resume with a doctored seed succeeded; want divergence error")
	} else {
		t.Logf("divergence correctly detected: %v", err)
	}
}
