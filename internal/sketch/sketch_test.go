package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestHLLErrorBounds(t *testing.T) {
	// The estimate must stay within 4 standard errors of the truth for a
	// wide range of cardinalities (a deterministic stream, so this is a
	// regression pin, not a flaky statistical assertion).
	h := NewHLL(12)
	bound := 4 * h.StdError()
	var buf [8]byte
	next := uint64(0)
	for _, n := range []uint64{100, 1000, 10000, 100000, 1000000} {
		for next < n {
			binary.LittleEndian.PutUint64(buf[:], next)
			h.Add(buf[:])
			next++
		}
		got := float64(h.Count())
		rel := math.Abs(got-float64(n)) / float64(n)
		if rel > bound {
			t.Errorf("n=%d: estimate %.0f, relative error %.4f > bound %.4f", n, got, rel, bound)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(10)
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			h.Add([]byte(fmt.Sprintf("item-%d", i)))
		}
	}
	got := float64(h.Count())
	if math.Abs(got-500)/500 > 4*h.StdError() {
		t.Errorf("500 distinct items inserted 5x each: estimate %.0f", got)
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a, b, u := NewHLL(11), NewHLL(11), NewHLL(11)
	for i := 0; i < 3000; i++ {
		item := []byte(fmt.Sprintf("x%d", i))
		if i%2 == 0 {
			a.Add(item)
		} else {
			b.Add(item)
		}
		u.Add(item)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.regs, u.regs) {
		t.Error("merged registers differ from union-stream registers")
	}
	if a.Count() != u.Count() {
		t.Errorf("merged count %d != union count %d", a.Count(), u.Count())
	}
	mismatched := NewHLL(9)
	if err := a.Merge(mismatched); err == nil {
		t.Error("merging mismatched precisions must error")
	}
}

func TestHLLRoundTrip(t *testing.T) {
	h := NewHLL(8)
	for i := 0; i < 100; i++ {
		h.Add([]byte{byte(i), byte(i >> 3)})
	}
	enc, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back HLL
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if back.precision != h.precision || !bytes.Equal(back.regs, h.regs) {
		t.Error("round trip changed sketch state")
	}
	if err := back.UnmarshalBinary(enc[:len(enc)-1]); err == nil {
		t.Error("truncated encoding must error")
	}
}

func TestSpaceSavingGuarantees(t *testing.T) {
	// Zipf-ish stream: item i appears 1000/i times. With k=20 every item
	// with frequency > N/k must survive, and every estimate must satisfy
	// Count-Err <= true <= Count.
	truth := map[string]uint64{}
	var stream []string
	for i := 1; i <= 200; i++ {
		key := fmt.Sprintf("flow-%03d", i)
		reps := 1000 / i
		truth[key] = uint64(reps)
		for r := 0; r < reps; r++ {
			stream = append(stream, key)
		}
	}
	// Deterministic shuffle so hot items interleave with the tail.
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	s := NewSpaceSaving(20)
	for _, key := range stream {
		s.Add(key)
	}
	if s.N() != uint64(len(stream)) {
		t.Fatalf("N = %d, want %d", s.N(), len(stream))
	}
	top := s.Top(0)
	if len(top) != 20 {
		t.Fatalf("tracking %d entries, want 20", len(top))
	}
	present := map[string]Heavy{}
	for _, h := range top {
		present[h.Key] = h
		tc := truth[h.Key]
		if h.Count < tc {
			t.Errorf("%s: estimate %d under true count %d", h.Key, h.Count, tc)
		}
		if h.Count-h.Err > tc {
			t.Errorf("%s: lower bound %d over true count %d", h.Key, h.Count-h.Err, tc)
		}
	}
	threshold := s.N() / uint64(s.K())
	for key, tc := range truth {
		if tc > threshold {
			if _, ok := present[key]; !ok {
				t.Errorf("item %s (freq %d > N/k %d) missing from summary", key, tc, threshold)
			}
		}
	}
}

func TestSpaceSavingDeterministicEviction(t *testing.T) {
	run := func() []Heavy {
		s := NewSpaceSaving(3)
		for _, k := range []string{"a", "b", "c", "d", "e", "d", "e", "f"} {
			s.Add(k)
		}
		return s.Top(0)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic summary: %v vs %v", a, b)
		}
	}
}

func TestSpaceSavingMergeAndRoundTrip(t *testing.T) {
	a, b := NewSpaceSaving(10), NewSpaceSaving(10)
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("k%d", i%25)
		if i%2 == 0 {
			a.Add(key)
		} else {
			b.Add(key)
		}
	}
	a.Merge(b)
	if a.N() != 400 {
		t.Errorf("merged N = %d, want 400", a.N())
	}
	if len(a.entries) > a.k {
		t.Errorf("merged summary holds %d entries, cap %d", len(a.entries), a.k)
	}
	enc, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back SpaceSaving
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	enc2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("re-encoding decoded summary changed bytes")
	}
	if err := back.UnmarshalBinary(enc[:3]); err == nil {
		t.Error("truncated encoding must error")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Sequential inputs must not collide in either half of the word
	// (HLL uses the top bits for bucketing, the rest for rank).
	seenHi := map[uint32]bool{}
	var buf [8]byte
	for i := 0; i < 10000; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		h := Hash64(buf[:])
		seenHi[uint32(h>>32)] = true
	}
	if len(seenHi) < 9990 {
		t.Errorf("top-32-bit collisions: %d distinct of 10000", len(seenHi))
	}
}

// FuzzSketchMerge checks the core merge laws on arbitrary item streams:
// HLL merge must equal the union stream register-for-register, and
// space-saving merge must preserve total weight, capacity, and the
// lower-bound invariant.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte("abcdefgh"), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 250, 251, 252, 253}, uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 64), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		// Derive a stream of short items from the fuzz data.
		var items [][]byte
		for i := 0; i+2 <= len(data); i += 2 {
			items = append(items, data[i:i+2])
		}
		if len(items) == 0 {
			return
		}
		cut := int(split) % len(items)

		ha, hb, hu := NewHLL(6), NewHLL(6), NewHLL(6)
		sa, sb := NewSpaceSaving(4), NewSpaceSaving(4)
		for i, it := range items {
			hu.Add(it)
			if i < cut {
				ha.Add(it)
				sa.Add(string(it))
			} else {
				hb.Add(it)
				sb.Add(string(it))
			}
		}
		if err := ha.Merge(hb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ha.regs, hu.regs) {
			t.Fatal("HLL merge != union stream")
		}
		sa.Merge(sb)
		if sa.N() != uint64(len(items)) {
			t.Fatalf("merged N %d, want %d", sa.N(), len(items))
		}
		if len(sa.entries) > sa.k {
			t.Fatalf("merged entries %d exceed k %d", len(sa.entries), sa.k)
		}
		truth := map[string]uint64{}
		for _, it := range items {
			truth[string(it)]++
		}
		for _, h := range sa.Top(0) {
			if h.Count < h.Err {
				t.Fatalf("entry %q count %d below err %d", h.Key, h.Count, h.Err)
			}
			if lower := h.Count - h.Err; lower > truth[h.Key] {
				t.Fatalf("entry %q lower bound %d over truth %d", h.Key, lower, truth[h.Key])
			}
		}
		// Round-trip the merged summary through its canonical encoding.
		enc, err := sa.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back SpaceSaving
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		enc2, _ := back.MarshalBinary()
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not stable")
		}
	})
}

func TestTopKMatchesSpaceSaving(t *testing.T) {
	// On the same stream, TopK[string] with lexicographic less must
	// behave exactly like the string SpaceSaving.
	ss := NewSpaceSaving(5)
	tk := NewTopK[string](5, func(a, b string) bool { return a < b })
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(40))
		ss.Add(key)
		tk.Add(key, 1)
	}
	a, b := ss.Top(0), tk.Top(0)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Count != b[i].Count || a[i].Err != b[i].Err {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
