// Package sketch provides the bounded-memory summary structures used by
// the streaming analysis pipeline: a HyperLogLog cardinality estimator
// and a space-saving heavy-hitter summary. Both are deterministic —
// identical insertion sequences produce identical state, and Merge is
// well-defined — so streamed runs stay byte-reproducible across lane
// counts and resumes, matching the rest of the repository's
// serial-identical contract.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Hash64 is the deterministic 64-bit hash shared by every sketch in the
// pipeline: FNV-1a over the bytes, finished with a splitmix64 avalanche
// so low-entropy keys (sequential IPs, small ports) still spread across
// the full word. It must never change — on-disk sketches depend on it.
func Hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HLL is a HyperLogLog cardinality estimator with 2^precision
// registers. The zero value is not usable; construct with NewHLL.
type HLL struct {
	precision uint8
	regs      []uint8
}

// NewHLL returns an estimator with 2^precision registers (4..16).
// precision 14 (16 KiB, ~0.8% standard error) suits flow cardinality;
// smaller precisions suit per-site sub-sketches.
func NewHLL(precision uint8) *HLL {
	if precision < 4 || precision > 16 {
		panic(fmt.Sprintf("sketch: HLL precision %d out of range [4,16]", precision))
	}
	return &HLL{precision: precision, regs: make([]uint8, 1<<precision)}
}

// Precision returns the register-count exponent.
func (h *HLL) Precision() uint8 { return h.precision }

// AddHash inserts a pre-hashed item.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - h.precision)
	// Rank of the first set bit in the remaining stream, 1-based; the
	// shifted-in 1 caps the rank for all-zero remainders.
	rest := x<<h.precision | 1<<(h.precision-1)
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Add hashes and inserts the item's bytes.
func (h *HLL) Add(b []byte) { h.AddHash(Hash64(b)) }

// Count estimates the number of distinct items inserted, using the
// standard bias-corrected estimator with linear counting for the small
// range.
func (h *HLL) Count() uint64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch len(h.regs) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting: more accurate while registers remain empty.
		est = m * math.Log(m/float64(zeros))
	}
	return uint64(est + 0.5)
}

// StdError returns the estimator's relative standard error
// (1.04/sqrt(m)); the reported count is within ±2-3 standard errors of
// the truth with high probability.
func (h *HLL) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.regs)))
}

// Merge folds other into h (register-wise max). Both sketches must use
// the same precision.
func (h *HLL) Merge(other *HLL) error {
	if other.precision != h.precision {
		return fmt.Errorf("sketch: merging HLL precision %d into %d", other.precision, h.precision)
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// MarshalBinary encodes the sketch as precision byte + registers.
func (h *HLL) MarshalBinary() ([]byte, error) {
	out := make([]byte, 1+len(h.regs))
	out[0] = h.precision
	copy(out[1:], h.regs)
	return out, nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary.
func (h *HLL) UnmarshalBinary(b []byte) error {
	if len(b) < 1 {
		return fmt.Errorf("sketch: HLL encoding too short")
	}
	p := b[0]
	if p < 4 || p > 16 {
		return fmt.Errorf("sketch: HLL precision %d out of range", p)
	}
	if len(b) != 1+(1<<p) {
		return fmt.Errorf("sketch: HLL encoding length %d, want %d", len(b), 1+(1<<p))
	}
	h.precision = p
	h.regs = append(h.regs[:0], b[1:]...)
	return nil
}

// Heavy is one entry of a space-saving summary: an item, its estimated
// count, and the overestimation bound (true count is within
// [Count-Err, Count]).
type Heavy struct {
	Key   string
	Count uint64
	Err   uint64
}

// SpaceSaving is the Metwally et al. heavy-hitter summary: it tracks at
// most K items, evicting the minimum-count entry when a new item
// arrives at capacity and crediting the newcomer with the evictee's
// count (recorded as its error bound). Any item whose true frequency
// exceeds N/K is guaranteed to be present. Eviction ties break on the
// lexicographically smallest key, keeping the summary deterministic.
type SpaceSaving struct {
	k       int
	entries map[string]*ssEntry
	n       uint64
}

type ssEntry struct {
	count uint64
	err   uint64
}

// NewSpaceSaving returns a summary tracking at most k items.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving k must be positive")
	}
	return &SpaceSaving{k: k, entries: make(map[string]*ssEntry, k)}
}

// K returns the summary's capacity.
func (s *SpaceSaving) K() int { return s.k }

// N returns the total weight observed.
func (s *SpaceSaving) N() uint64 { return s.n }

// Add records one occurrence of key.
func (s *SpaceSaving) Add(key string) { s.AddWeighted(key, 1) }

// AddWeighted records w occurrences of key.
func (s *SpaceSaving) AddWeighted(key string, w uint64) {
	s.n += w
	if e, ok := s.entries[key]; ok {
		e.count += w
		return
	}
	if len(s.entries) < s.k {
		s.entries[key] = &ssEntry{count: w}
		return
	}
	// Evict the minimum-count entry; ties break on the smallest key so
	// identical streams produce identical summaries.
	var minKey string
	var minE *ssEntry
	for k, e := range s.entries {
		if minE == nil || e.count < minE.count || (e.count == minE.count && k < minKey) {
			minKey, minE = k, e
		}
	}
	delete(s.entries, minKey)
	s.entries[key] = &ssEntry{count: minE.count + w, err: minE.count}
}

// Top returns up to n entries ordered by estimated count descending,
// ties broken by key ascending. n <= 0 returns all tracked entries.
func (s *SpaceSaving) Top(n int) []Heavy {
	out := make([]Heavy, 0, len(s.entries))
	for k, e := range s.entries {
		out = append(out, Heavy{Key: k, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Merge folds other into s: counts and error bounds add for shared
// keys, then the combined set is trimmed back to capacity (largest
// counts survive, ties on key). The merged summary keeps the
// space-saving guarantee for the union stream with error bounds summed.
func (s *SpaceSaving) Merge(other *SpaceSaving) {
	s.n += other.n
	for k, oe := range other.entries {
		if e, ok := s.entries[k]; ok {
			e.count += oe.count
			e.err += oe.err
		} else {
			s.entries[k] = &ssEntry{count: oe.count, err: oe.err}
		}
	}
	if len(s.entries) <= s.k {
		return
	}
	all := make([]Heavy, 0, len(s.entries))
	for k, e := range s.entries {
		all = append(all, Heavy{Key: k, Count: e.count, Err: e.err})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	for _, h := range all[s.k:] {
		delete(s.entries, h.Key)
	}
}

// MarshalBinary encodes the summary: k, n, then each entry sorted by
// key (length-prefixed key, count, err). Sorting makes the encoding a
// canonical function of the summary's contents.
func (s *SpaceSaving) MarshalBinary() ([]byte, error) {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	put(uint64(s.k))
	put(s.n)
	put(uint64(len(keys)))
	for _, k := range keys {
		e := s.entries[k]
		put(uint64(len(k)))
		out = append(out, k...)
		put(e.count)
		put(e.err)
	}
	return out, nil
}

// UnmarshalBinary decodes a summary produced by MarshalBinary.
func (s *SpaceSaving) UnmarshalBinary(b []byte) error {
	get := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("sketch: truncated SpaceSaving encoding")
		}
		b = b[n:]
		return v, nil
	}
	k, err := get()
	if err != nil {
		return err
	}
	if k < 1 || k > 1<<20 {
		return fmt.Errorf("sketch: SpaceSaving k %d out of range", k)
	}
	n, err := get()
	if err != nil {
		return err
	}
	cnt, err := get()
	if err != nil {
		return err
	}
	if cnt > k {
		return fmt.Errorf("sketch: SpaceSaving entry count %d exceeds k %d", cnt, k)
	}
	entries := make(map[string]*ssEntry, cnt)
	for i := uint64(0); i < cnt; i++ {
		kl, err := get()
		if err != nil {
			return err
		}
		if kl > uint64(len(b)) {
			return fmt.Errorf("sketch: truncated SpaceSaving key")
		}
		key := string(b[:kl])
		b = b[kl:]
		c, err := get()
		if err != nil {
			return err
		}
		e, err := get()
		if err != nil {
			return err
		}
		if _, dup := entries[key]; dup {
			return fmt.Errorf("sketch: duplicate SpaceSaving key %q", key)
		}
		entries[key] = &ssEntry{count: c, err: e}
	}
	s.k = int(k)
	s.n = n
	s.entries = entries
	return nil
}

// TopK is the space-saving summary generalized to any comparable key —
// the flow table uses it with struct keys so the per-frame hot path
// performs no string conversions. Eviction ties break via the less
// function, keeping summaries deterministic. Unlike SpaceSaving it has
// no serialized form; convert keys and use SpaceSaving when a summary
// must cross a process boundary.
type TopK[K comparable] struct {
	k       int
	entries map[K]*ssEntry
	n       uint64
	less    func(a, b K) bool
}

// NewTopK returns a summary tracking at most k keys; less orders keys
// for deterministic eviction tie-breaks.
func NewTopK[K comparable](k int, less func(a, b K) bool) *TopK[K] {
	if k < 1 {
		panic("sketch: TopK k must be positive")
	}
	return &TopK[K]{k: k, entries: make(map[K]*ssEntry, k), less: less}
}

// N returns the total weight observed.
func (s *TopK[K]) N() uint64 { return s.n }

// Add records w occurrences of key.
func (s *TopK[K]) Add(key K, w uint64) {
	s.n += w
	if e, ok := s.entries[key]; ok {
		e.count += w
		return
	}
	if len(s.entries) < s.k {
		s.entries[key] = &ssEntry{count: w}
		return
	}
	var minKey K
	var minE *ssEntry
	for k, e := range s.entries {
		if minE == nil || e.count < minE.count || (e.count == minE.count && s.less(k, minKey)) {
			minKey, minE = k, e
		}
	}
	delete(s.entries, minKey)
	s.entries[key] = &ssEntry{count: minE.count + w, err: minE.count}
}

// HeavyK is one TopK entry.
type HeavyK[K comparable] struct {
	Key   K
	Count uint64
	Err   uint64
}

// Top returns up to n entries by estimated count descending, ties
// broken by the less order ascending. n <= 0 returns all entries.
func (s *TopK[K]) Top(n int) []HeavyK[K] {
	out := make([]HeavyK[K], 0, len(s.entries))
	for k, e := range s.entries {
		out = append(out, HeavyK[K]{Key: k, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return s.less(out[i].Key, out[j].Key)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
