package health

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Config tunes a Monitor.
type Config struct {
	// Interval is the sampling tick (default 1 sim-second).
	Interval sim.Duration
	// Depth is the per-series ring capacity (default 120 samples).
	Depth int
	// Rules is the rule set to evaluate; leave zero for no alerting
	// (the monitor still maintains windows and the status view).
	Rules RuleSet
	// Recorder tunes the flight recorder rings.
	Recorder RecorderConfig
	// OnTransition, when set, observes every firing/resolved event as
	// it happens (the events are also kept internally).
	OnTransition func(AlertEvent)
	// DumpSink, when set, receives each flight-recorder dump as it is
	// frozen. When nil, dumps accumulate in memory (see Dumps).
	DumpSink func(name string, data []byte) error
	// TraceCounters lists metric names to sample into the tracer as
	// Chrome-trace counter events on every tick (labelled instruments
	// sample one series per label set, suffixed "{labels}"). Sampling
	// only feeds the Chrome export — span JSONL artifacts and the event
	// schedule are untouched. Empty means no counter sampling.
	TraceCounters []string
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = sim.Second
	}
	if c.Depth <= 0 {
		c.Depth = 120
	}
	c.Recorder = c.Recorder.withDefaults()
	return c
}

// AlertEvent is one lifecycle transition of a rule instance.
type AlertEvent struct {
	At       sim.Time
	Rule     string
	Severity Severity
	// Instance identifies the instrument instance ("site=STAR,…"); empty
	// when the rule matched a metric with no labels.
	Instance string
	// State is "firing" or "resolved".
	State string
	// Value is the expression's value at the transition (staleness
	// seconds for absence rules, burn multiple for burn-rate rules).
	Value float64
}

// instance is one tracked instrument instance: its window, identity,
// and label lookup.
type instance struct {
	s      *Series
	id     string
	labels map[string]string
}

// alertState is the lifecycle state for one (rule, instance) pair.
type alertState struct {
	pending      bool
	pendingSince sim.Time
	firing       bool
}

// Monitor samples a registry on a kernel tick, maintains sliding
// windows, publishes derived signals, evaluates alert rules, and
// freezes flight-recorder dumps when rules fire. All iteration orders
// derive from the registry's sorted snapshot, so two same-seed runs
// produce byte-identical alert logs and dumps.
type Monitor struct {
	k      *sim.Kernel
	reg    *obs.Registry
	tracer *obs.Tracer
	cfg    Config

	ticker *sim.Ticker

	series   map[string]*instance // key: metric \x00 labelID
	byMetric map[string][]*instance
	sigHelp  map[string]bool

	states     map[string]*alertState // key: rule \x00 instanceID
	stateOrder []string

	events []AlertEvent
	rec    *recorder
	dumps  []Dump

	// subscribers are notified of every transition after OnTransition,
	// in subscription order (see Subscribe).
	subscribers []func(AlertEvent)

	traceSet map[string]bool // Config.TraceCounters as a set
}

// Dump is one frozen flight-recorder capture.
type Dump struct {
	Name string
	Data []byte
}

// NewMonitor validates the rule set and builds a monitor over the
// registry. The kernel and registry must be non-nil; the tracer may be
// nil (dumps then carry no spans).
func NewMonitor(k *sim.Kernel, reg *obs.Registry, tracer *obs.Tracer, cfg Config) (*Monitor, error) {
	if k == nil {
		return nil, fmt.Errorf("health: monitor needs a kernel")
	}
	if reg == nil {
		return nil, fmt.Errorf("health: monitor needs a registry")
	}
	cfg = cfg.withDefaults()
	if err := cfg.Rules.Validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		k: k, reg: reg, tracer: tracer, cfg: cfg,
		series:   make(map[string]*instance),
		byMetric: make(map[string][]*instance),
		sigHelp:  make(map[string]bool),
		states:   make(map[string]*alertState),
		traceSet: make(map[string]bool, len(cfg.TraceCounters)),
	}
	for _, n := range cfg.TraceCounters {
		m.traceSet[n] = true
	}
	m.rec = newRecorder(cfg.Recorder)
	return m, nil
}

// Start schedules the sampling tick. The first sample lands one
// interval from now.
func (m *Monitor) Start() {
	if m == nil || m.ticker != nil {
		return
	}
	m.ticker = m.k.Every(m.cfg.Interval, m.tick)
}

// Stop cancels the sampling tick; Start may be called again.
func (m *Monitor) Stop() {
	if m == nil || m.ticker == nil {
		return
	}
	m.ticker.Stop()
	m.ticker = nil
}

// Tick runs one sampling pass immediately; exposed for callers that
// drive the monitor manually (tests, offline evaluation).
func (m *Monitor) Tick() { m.tick(m.k.Now()) }

// Logf tees a log line into the flight recorder's ring. Nil-safe so
// producers can call it unconditionally.
func (m *Monitor) Logf(source, level, format string, args ...any) {
	if m == nil {
		return
	}
	m.rec.log(m.k.Now(), source, level, fmt.Sprintf(format, args...))
}

// Subscribe registers an additional observer for every firing/resolved
// transition. Subscribers run synchronously inside the monitor tick, in
// subscription order, after Config.OnTransition; a subscriber that
// needs to take action (e.g. a remediation supervisor) should schedule
// kernel events rather than mutate the world reentrantly. Subscribe is
// the supervisor-facing API: unlike the single OnTransition hook it
// composes, so artifact writers and the remedy supervisor can both
// observe one monitor.
func (m *Monitor) Subscribe(fn func(AlertEvent)) {
	if m == nil || fn == nil {
		return
	}
	m.subscribers = append(m.subscribers, fn)
}

// Events returns every firing/resolved transition so far, in order.
func (m *Monitor) Events() []AlertEvent {
	return append([]AlertEvent(nil), m.events...)
}

// Dumps returns the flight-recorder dumps accumulated in memory (empty
// when a DumpSink consumes them instead).
func (m *Monitor) Dumps() []Dump { return append([]Dump(nil), m.dumps...) }

// Active is one currently firing alert.
type Active struct {
	Rule     string
	Severity Severity
	Instance string
	Since    sim.Time
}

// ActiveAlerts lists currently firing alerts in first-fired order.
func (m *Monitor) ActiveAlerts() []Active {
	if m == nil {
		return nil
	}
	var out []Active
	for _, key := range m.stateOrder {
		st := m.states[key]
		if st == nil || !st.firing {
			continue
		}
		rule, inst, _ := strings.Cut(key, "\x00")
		out = append(out, Active{
			Rule: rule, Severity: m.ruleSeverity(rule),
			Instance: inst, Since: st.pendingSince,
		})
	}
	return out
}

func (m *Monitor) ruleSeverity(name string) Severity {
	for i := range m.cfg.Rules.Rules {
		if m.cfg.Rules.Rules[i].Name == name {
			return m.cfg.Rules.Rules[i].severity
		}
	}
	return SeverityWarning
}

// labelID reproduces the registry's label identity (labels arrive
// sorted from Snapshot).
func labelID(labels []obs.Label) string {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// tick is one sampling pass: ingest the snapshot, record it, publish
// signals, then evaluate rules.
func (m *Monitor) tick(now sim.Time) {
	snap := m.reg.Snapshot()
	for _, mp := range snap {
		id := labelID(mp.Labels)
		key := mp.Name + "\x00" + id
		inst := m.series[key]
		if inst == nil {
			inst = &instance{
				s:      newSeries(mp.Name, mp.Kind, mp.Labels, m.cfg.Depth),
				id:     id,
				labels: labelMap(mp.Labels),
			}
			m.series[key] = inst
			m.byMetric[mp.Name] = append(m.byMetric[mp.Name], inst)
		}
		inst.s.push(Point{T: now, V: mp.Value, Sum: float64(mp.Sum), At: mp.At})
	}
	if m.tracer != nil && len(m.traceSet) > 0 {
		// Counter sampling for the Chrome exporter: pure observation of
		// the sorted snapshot, so it is deterministic and schedules
		// nothing.
		for _, mp := range snap {
			if !m.traceSet[mp.Name] {
				continue
			}
			name := mp.Name
			if id := labelID(mp.Labels); id != "" {
				name += "{" + id + "}"
			}
			m.tracer.RecordCounter(name, mp.Value)
		}
	}
	m.rec.snapshot(now, snap)
	m.publishSignals()
	m.evaluate(now)
}

// publishSignals evaluates each derived signal for every matching
// instance and writes the result back into the registry as a gauge, so
// derived series are exported and alertable like any other metric.
// Non-finite results are skipped (a ratio with a zero denominator stays
// at its previous value rather than poisoning the export).
func (m *Monitor) publishSignals() {
	for i := range m.cfg.Rules.Signals {
		sg := &m.cfg.Rules.Signals[i]
		if !m.sigHelp[sg.Name] && sg.Help != "" {
			m.reg.Help(sg.Name, sg.Help)
			m.sigHelp[sg.Name] = true
		}
		for _, inst := range m.byMetric[sg.Expr.Metric] {
			if !sg.Expr.matches(inst.labels) {
				continue
			}
			v, ok := m.evalExpr(&sg.Expr, inst)
			if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			m.reg.Gauge(sg.Name, inst.s.Labels...).Set(v)
		}
	}
}

// evalExpr reduces one instance's window per the expression, applying
// the divisor (evaluated on the same label identity) when present.
func (m *Monitor) evalExpr(e *Expr, inst *instance) (float64, bool) {
	v, ok := m.evalAgg(e, inst)
	if !ok {
		return 0, false
	}
	if e.Divisor != nil {
		div := m.series[e.Divisor.Metric+"\x00"+inst.id]
		if div == nil {
			return 0, false
		}
		dv, ok := m.evalAgg(e.Divisor, div)
		if !ok {
			return 0, false
		}
		v /= dv // ±Inf/NaN on a zero denominator; callers treat non-finite as "no signal"
	}
	return v, true
}

func (m *Monitor) evalAgg(e *Expr, inst *instance) (float64, bool) {
	switch e.Agg {
	case "", AggValue:
		p, ok := inst.s.Latest()
		return p.V, ok
	case AggRate:
		return inst.s.RateOver(e.window())
	case AggDelta:
		return inst.s.Delta(e.window())
	case AggMax:
		return inst.s.MaxOver(e.window())
	case AggMin:
		return inst.s.MinOver(e.window())
	case AggEWMA:
		return inst.s.EWMA(e.window(), e.Alpha)
	case AggMean:
		return inst.s.MeanOver(e.window())
	}
	return 0, false
}

// evaluate runs every rule against every matching instance and drives
// the inactive → pending → firing → resolved lifecycle.
func (m *Monitor) evaluate(now sim.Time) {
	for i := range m.cfg.Rules.Rules {
		rule := &m.cfg.Rules.Rules[i]
		metric, labels := rule.targets()
		for _, inst := range m.byMetric[metric] {
			if !exprLabelsMatch(labels, inst.labels) {
				continue
			}
			holds, value := m.condition(rule, inst, now)
			m.transition(rule, inst, now, holds, value)
		}
	}
}

// targets returns the metric and label constraints the rule matches
// instances against.
func (r *Rule) targets() (string, map[string]string) {
	switch {
	case r.Threshold != nil:
		return r.Threshold.Expr.Metric, r.Threshold.Expr.Labels
	case r.Absence != nil:
		return r.Absence.Metric, r.Absence.Labels
	case r.BurnRate != nil:
		return r.BurnRate.Expr.Metric, r.BurnRate.Expr.Labels
	}
	return "", nil
}

func exprLabelsMatch(want map[string]string, have map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// condition evaluates the rule's condition for one instance. A value
// that cannot be computed (window too short, missing divisor, NaN)
// means the condition does not hold.
func (m *Monitor) condition(rule *Rule, inst *instance, now sim.Time) (bool, float64) {
	switch {
	case rule.Threshold != nil:
		v, ok := m.evalExpr(&rule.Threshold.Expr, inst)
		if !ok || math.IsNaN(v) {
			return false, v
		}
		return rule.Threshold.holds(v), v
	case rule.Absence != nil:
		stale, ok := inst.s.Staleness(now)
		if !ok {
			return false, 0
		}
		sec := float64(stale) / float64(sim.Second)
		return sec >= rule.Absence.StaleSec, sec
	case rule.BurnRate != nil:
		v, ok := m.evalExpr(&rule.BurnRate.Expr, inst)
		if !ok || math.IsNaN(v) {
			return false, v
		}
		burn := v * 3600 / rule.BurnRate.BudgetPerHour
		return burn > rule.BurnRate.MaxBurn, burn
	}
	return false, 0
}

// transition advances one (rule, instance) state machine and emits
// events, freezing a flight-recorder dump on each pending→firing edge.
func (m *Monitor) transition(rule *Rule, inst *instance, now sim.Time, holds bool, value float64) {
	key := rule.Name + "\x00" + inst.id
	st := m.states[key]
	if st == nil {
		if !holds {
			return
		}
		st = &alertState{}
		m.states[key] = st
		m.stateOrder = append(m.stateOrder, key)
	}
	if !holds {
		if st.firing {
			m.emit(AlertEvent{
				At: now, Rule: rule.Name, Severity: rule.severity,
				Instance: inst.id, State: "resolved", Value: value,
			}, nil)
		}
		st.pending, st.firing = false, false
		return
	}
	if !st.pending {
		st.pending, st.pendingSince = true, now
	}
	if !st.firing && now-st.pendingSince >= rule.holdFor() {
		st.firing = true
		ev := AlertEvent{
			At: now, Rule: rule.Name, Severity: rule.severity,
			Instance: inst.id, State: "firing", Value: value,
		}
		m.emit(ev, rule)
	}
}

// emit records the event; on firing it freezes a dump.
func (m *Monitor) emit(ev AlertEvent, fired *Rule) {
	m.events = append(m.events, ev)
	if m.cfg.OnTransition != nil {
		m.cfg.OnTransition(ev)
	}
	for _, fn := range m.subscribers {
		fn(ev)
	}
	if fired == nil {
		return
	}
	data := m.rec.dump(ev, m.tracer)
	name := dumpName(ev)
	if m.cfg.DumpSink != nil {
		if err := m.cfg.DumpSink(name, data); err != nil {
			m.Logf("health", "error", "dump sink %s: %v", name, err)
		}
		return
	}
	m.dumps = append(m.dumps, Dump{Name: name, Data: data})
}

// dumpName builds a filesystem-safe dump identifier.
func dumpName(ev AlertEvent) string {
	return fmt.Sprintf("%s--%s--%d", sanitize(ev.Rule), sanitize(ev.Instance), int64(ev.At))
}

func sanitize(s string) string {
	if s == "" {
		return "all"
	}
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_' || r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// jsonNumber renders a float for hand-built JSON, mapping non-finite
// values to null (JSON has no NaN/Inf literals).
func jsonNumber(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteAlertLog emits every transition as one JSON object per line, in
// event order — the artifact the determinism contract is checked on.
func (m *Monitor) WriteAlertLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range m.events {
		inst, _ := jsonString(ev.Instance)
		if _, err := fmt.Fprintf(bw,
			`{"sim_ns":%d,"rule":%q,"severity":%q,"instance":%s,"state":%q,"value":%s}`+"\n",
			int64(ev.At), ev.Rule, ev.Severity, inst, ev.State, jsonNumber(ev.Value)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
