package health

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestSeriesAggregations(t *testing.T) {
	s := newSeries("c", obs.KindCounter, nil, 8)
	if _, ok := s.Delta(10 * sim.Second); ok {
		t.Error("delta on empty series should fail")
	}
	for i := 0; i <= 5; i++ {
		s.push(Point{T: sim.Time(i) * sim.Time(sim.Second), V: float64(10 * i), At: sim.Time(i) * sim.Time(sim.Second)})
	}
	if d, ok := s.Delta(3 * sim.Second); !ok || d != 30 {
		t.Errorf("Delta(3s) = %v, %v; want 30", d, ok)
	}
	if r, ok := s.RateOver(3 * sim.Second); !ok || r != 10 {
		t.Errorf("RateOver(3s) = %v, %v; want 10/s", r, ok)
	}
	// Window wider than the ring: falls back to the oldest sample.
	if d, ok := s.Delta(100 * sim.Second); !ok || d != 50 {
		t.Errorf("Delta(100s) = %v, %v; want 50", d, ok)
	}
	if mx, ok := s.MaxOver(2 * sim.Second); !ok || mx != 50 {
		t.Errorf("MaxOver = %v, %v; want 50", mx, ok)
	}
	if mn, ok := s.MinOver(2 * sim.Second); !ok || mn != 30 {
		t.Errorf("MinOver = %v, %v; want 30", mn, ok)
	}
	if e, ok := s.EWMA(2*sim.Second, 1); !ok || e != 50 {
		t.Errorf("EWMA(alpha=1) = %v, %v; want latest 50", e, ok)
	}
	if st, ok := s.Staleness(7 * sim.Time(sim.Second)); !ok || st != 2*sim.Second {
		t.Errorf("Staleness = %v, %v; want 2s", st, ok)
	}
}

func TestSeriesRingEviction(t *testing.T) {
	s := newSeries("c", obs.KindCounter, nil, 4)
	for i := 0; i < 10; i++ {
		s.push(Point{T: sim.Time(i), V: float64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.at(0).V != 6 || s.at(3).V != 9 {
		t.Errorf("ring contents wrong: oldest %v newest %v", s.at(0).V, s.at(3).V)
	}
}

func TestSeriesHistogramMean(t *testing.T) {
	s := newSeries("h", obs.KindHistogram, nil, 8)
	s.push(Point{T: 0, V: 10, Sum: 1000})
	s.push(Point{T: sim.Time(sim.Second), V: 30, Sum: 5000})
	if mean, ok := s.MeanOver(sim.Second); !ok || mean != 200 {
		t.Errorf("MeanOver = %v, %v; want (5000-1000)/(30-10)=200", mean, ok)
	}
	// No new observations in the window: no mean.
	s.push(Point{T: 2 * sim.Time(sim.Second), V: 30, Sum: 5000})
	if _, ok := s.MeanOver(sim.Second); ok {
		t.Error("MeanOver with zero delta count should fail")
	}
}

func TestParseRejectsBadRules(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"rules":[{"name":"x","threshhold":{}}]}`, "unknown field"},
		{"no condition", `{"rules":[{"name":"x"}]}`, "exactly one of"},
		{"two conditions", `{"rules":[{"name":"x","threshold":{"expr":{"metric":"m"},"op":">","value":1},"absence":{"metric":"m","stale_sec":1}}]}`, "exactly one of"},
		{"bad op", `{"rules":[{"name":"x","threshold":{"expr":{"metric":"m"},"op":"~","value":1}}]}`, "unknown op"},
		{"bad agg", `{"rules":[{"name":"x","threshold":{"expr":{"metric":"m","agg":"stddev"},"op":">","value":1}}]}`, "unknown agg"},
		{"rate without window", `{"rules":[{"name":"x","threshold":{"expr":{"metric":"m","agg":"rate"},"op":">","value":1}}]}`, "window_sec"},
		{"bad severity", `{"rules":[{"name":"x","severity":"fatal","threshold":{"expr":{"metric":"m"},"op":">","value":1}}]}`, "unknown severity"},
		{"duplicate rule", `{"rules":[{"name":"x","absence":{"metric":"m","stale_sec":1}},{"name":"x","absence":{"metric":"m","stale_sec":1}}]}`, "duplicate rule"},
		{"absence without stale", `{"rules":[{"name":"x","absence":{"metric":"m"}}]}`, "stale_sec"},
		{"nested divisor", `{"rules":[{"name":"x","threshold":{"expr":{"metric":"m","divisor":{"metric":"d","divisor":{"metric":"e"}}},"op":">","value":1}}]}`, "do not nest"},
		{"ewma alpha", `{"rules":[{"name":"x","threshold":{"expr":{"metric":"m","agg":"ewma","window_sec":5,"alpha":2},"op":">","value":1}}]}`, "alpha"},
		{"burn budget", `{"rules":[{"name":"x","burn_rate":{"expr":{"metric":"m","agg":"rate","window_sec":5},"budget_per_hour":0,"max_burn":2}}]}`, "budget_per_hour"},
		{"unnamed signal", `{"signals":[{"expr":{"metric":"m"}}]}`, "no name"},
	}
	for _, c := range cases {
		_, err := ParseBytes([]byte(c.json))
		if err == nil {
			t.Errorf("%s: parse accepted bad rules", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDefaultRulesParse(t *testing.T) {
	rs := DefaultRules()
	if len(rs.Rules) < 5 {
		t.Fatalf("default rules = %d, want >= 5", len(rs.Rules))
	}
	if len(rs.Signals) < 2 {
		t.Fatalf("default signals = %d, want >= 2", len(rs.Signals))
	}
	names := map[string]bool{}
	for _, r := range rs.Rules {
		names[r.Name] = true
	}
	for _, want := range []string{"capture-drop-ratio", "mirror-drop-ratio", "listener-stale", "storage-write-latency", "alloc-failure-burn"} {
		if !names[want] {
			t.Errorf("default rules missing %q", want)
		}
	}
}

// monitorFixture builds a kernel+registry+monitor with the given rules.
func monitorFixture(t *testing.T, rulesJSON string, cfg Config) (*sim.Kernel, *obs.Registry, *Monitor) {
	t.Helper()
	k := sim.NewKernel()
	reg := obs.NewKernelRegistry(k)
	if rulesJSON != "" {
		rs, err := ParseBytes([]byte(rulesJSON))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Rules = rs
	}
	m, err := NewMonitor(k, reg, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, reg, m
}

func TestThresholdLifecycle(t *testing.T) {
	const rules = `{"rules":[{
		"name":"drop-rate","severity":"critical","for_sec":2,
		"threshold":{"expr":{"metric":"drops_total","agg":"rate","window_sec":5},"op":">","value":1}
	}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	drops := reg.Counter("drops_total", obs.L("site", "STAR"))
	m.Start()
	// Quiet for 3s, then 5 drops/s for 6s, then quiet again.
	for i := 4; i <= 9; i++ {
		k.At(sim.Time(i)*sim.Time(sim.Second)-1, func() { drops.Add(5) })
	}
	k.RunUntil(20 * sim.Time(sim.Second))

	evs := m.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %+v, want firing+resolved", evs)
	}
	fire, res := evs[0], evs[1]
	if fire.State != "firing" || fire.Rule != "drop-rate" || fire.Severity != SeverityCritical {
		t.Errorf("firing event wrong: %+v", fire)
	}
	if fire.Instance != "site=STAR" {
		t.Errorf("instance = %q, want site=STAR", fire.Instance)
	}
	// The condition first holds at the t=4s tick (first sample after
	// drops begin); with for_sec=2 it must fire at t=6s, not before.
	if fire.At != 6*sim.Time(sim.Second) {
		t.Errorf("fired at %v, want 6s (for_sec honored)", fire.At)
	}
	if res.State != "resolved" || res.At <= fire.At {
		t.Errorf("resolve event wrong: %+v", res)
	}
	if len(m.Dumps()) != 1 {
		t.Errorf("dumps = %d, want 1 (one per firing)", len(m.Dumps()))
	}
}

func TestAbsenceLifecycle(t *testing.T) {
	const rules = `{"rules":[{
		"name":"listener-stale",
		"absence":{"metric":"queue_highwater","stale_sec":5}
	}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	g := reg.Gauge("queue_highwater", obs.L("site", "TACC"))
	m.Start()
	// Updated every second until t=4s, then silent.
	for i := 1; i <= 4; i++ {
		k.At(sim.Time(i)*sim.Time(sim.Second)-1, func() { g.Set(3) })
	}
	k.RunUntil(12 * sim.Time(sim.Second))

	evs := m.Events()
	if len(evs) != 1 || evs[0].State != "firing" {
		t.Fatalf("events = %+v, want one firing", evs)
	}
	// Last update just before t=4s; stale_sec=5 → fires at the t=9s tick.
	if evs[0].At != 9*sim.Time(sim.Second) {
		t.Errorf("fired at %v, want 9s", evs[0].At)
	}
	if evs[0].Value < 5 {
		t.Errorf("staleness value = %v, want >= 5s", evs[0].Value)
	}
}

func TestBurnRateLifecycle(t *testing.T) {
	const rules = `{"rules":[{
		"name":"failure-burn",
		"burn_rate":{"expr":{"metric":"fail_total","agg":"rate","window_sec":10},"budget_per_hour":60,"max_burn":10}
	}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	fails := reg.Counter("fail_total")
	m.Start()
	// 1 failure/s = 3600/h = 60x the 60/h budget: way past max_burn 10.
	for i := 1; i <= 8; i++ {
		k.At(sim.Time(i)*sim.Time(sim.Second)-1, func() { fails.Inc() })
	}
	k.RunUntil(10 * sim.Time(sim.Second))

	evs := m.Events()
	if len(evs) == 0 || evs[0].State != "firing" {
		t.Fatalf("events = %+v, want firing", evs)
	}
	if evs[0].Value < 10 {
		t.Errorf("burn multiple = %v, want >= 10", evs[0].Value)
	}
}

func TestDivisorRatioAndSignal(t *testing.T) {
	const rules = `{
		"signals":[{"name":"drop_ratio","help":"drops over received","expr":{
			"metric":"dropped_total","agg":"rate","window_sec":10,
			"divisor":{"metric":"received_total","agg":"rate","window_sec":10}}}],
		"rules":[{"name":"ratio","for_sec":0,"threshold":{"expr":{
			"metric":"dropped_total","agg":"rate","window_sec":10,
			"divisor":{"metric":"received_total","agg":"rate","window_sec":10}},
			"op":">","value":0.25}}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	rx := reg.Counter("received_total", obs.L("site", "STAR"))
	dr := reg.Counter("dropped_total", obs.L("site", "STAR"))
	m.Start()
	k.Every(sim.Second/2, func(sim.Time) {
		rx.Add(100)
		dr.Add(50) // ratio 0.5
	})
	k.RunUntil(6 * sim.Time(sim.Second))

	evs := m.Events()
	if len(evs) == 0 || evs[0].State != "firing" {
		t.Fatalf("divisor rule did not fire: %+v", evs)
	}
	if evs[0].Value < 0.4 || evs[0].Value > 0.6 {
		t.Errorf("ratio = %v, want ~0.5", evs[0].Value)
	}
	// The signal was published back into the registry as a gauge.
	var found bool
	for _, mp := range reg.Snapshot() {
		if mp.Name == "drop_ratio" {
			found = true
			if mp.Kind != obs.KindGauge || mp.Value < 0.4 || mp.Value > 0.6 {
				t.Errorf("signal gauge wrong: %+v", mp)
			}
			if len(mp.Labels) != 1 || mp.Labels[0] != obs.L("site", "STAR") {
				t.Errorf("signal labels not inherited: %+v", mp.Labels)
			}
		}
	}
	if !found {
		t.Error("signal drop_ratio not published to the registry")
	}
	// Zero denominator must not fire or publish garbage.
	if math.IsNaN(evs[0].Value) {
		t.Error("NaN leaked into an event value")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	const rules = `{"rules":[{"name":"hot","threshold":{"expr":{"metric":"g"},"op":">","value":10}}]}`
	k, reg, _ := monitorFixture(t, rules, Config{})
	tracer := obs.NewKernelTracer(k)
	rs, err := ParseBytes([]byte(rules))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(k, reg, tracer, Config{Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	g := reg.Gauge("g", obs.L("site", "STAR"))
	m.Start()
	sp := tracer.Start("experiment")
	k.At(2*sim.Time(sim.Second), func() {
		m.Logf("core", "warn", "something %s", "odd")
		g.Set(50)
	})
	k.RunUntil(5 * sim.Time(sim.Second))
	sp.End()

	dumps := m.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	d := dumps[0]
	if !strings.HasPrefix(d.Name, "hot--site-STAR--") {
		t.Errorf("dump name = %q", d.Name)
	}
	lines := strings.Split(strings.TrimSpace(string(d.Data)), "\n")
	if !strings.Contains(lines[0], `"type":"alert"`) || !strings.Contains(lines[0], `"rule":"hot"`) {
		t.Errorf("dump header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[0], `"window_from_ns":1000000000`) {
		t.Errorf("dump window should open at the first retained snapshot: %s", lines[0])
	}
	var haveMetrics, haveSpan, haveLog bool
	for _, ln := range lines[1:] {
		switch {
		case strings.Contains(ln, `"type":"metrics"`):
			haveMetrics = true
		case strings.Contains(ln, `"type":"span"`) && strings.Contains(ln, `"name":"experiment"`):
			haveSpan = true
		case strings.Contains(ln, `"type":"log"`) && strings.Contains(ln, "something odd"):
			haveLog = true
		}
	}
	if !haveMetrics || !haveSpan || !haveLog {
		t.Errorf("dump missing sections: metrics=%v span=%v log=%v\n%s",
			haveMetrics, haveSpan, haveLog, d.Data)
	}
}

func TestMonitorDeterminism(t *testing.T) {
	run := func() (string, string) {
		const rules = `{"rules":[
			{"name":"hot","for_sec":1,"threshold":{"expr":{"metric":"v","agg":"rate","window_sec":5},"op":">","value":3}},
			{"name":"quiet","absence":{"metric":"v","stale_sec":4}}]}`
		k, reg, m := monitorFixture(t, rules, Config{})
		c := reg.Counter("v", obs.L("site", "A"))
		m.Start()
		for i := 1; i <= 6; i++ {
			k.At(sim.Time(i)*sim.Time(sim.Second)-3, func() { c.Add(10) })
		}
		k.RunUntil(15 * sim.Time(sim.Second))
		var log bytes.Buffer
		if err := m.WriteAlertLog(&log); err != nil {
			t.Fatal(err)
		}
		var dumps bytes.Buffer
		for _, d := range m.Dumps() {
			dumps.WriteString(d.Name)
			dumps.Write(d.Data)
		}
		return log.String(), dumps.String()
	}
	l1, d1 := run()
	l2, d2 := run()
	if l1 != l2 {
		t.Errorf("alert logs differ:\n%s\nvs\n%s", l1, l2)
	}
	if d1 != d2 {
		t.Errorf("dumps differ")
	}
	if l1 == "" {
		t.Error("determinism test produced no events; fixture is inert")
	}
}

func TestStatusView(t *testing.T) {
	const rules = `{"rules":[{"name":"hot","threshold":{"expr":{"metric":"capture_frames_dropped_total"},"op":">","value":5}}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	reg.Counter("capture_frames_received_total", obs.L("site", "STAR"), obs.L("method", "dpdk")).Add(100)
	reg.Counter("capture_frames_dropped_total", obs.L("site", "STAR"), obs.L("method", "dpdk")).Add(10)
	reg.Counter("switchsim_mirror_cloned_total", obs.L("switch", "TACC"), obs.L("mirrored", "P1"), obs.L("egress", "E1")).Add(200)
	reg.Counter("switchsim_mirror_fault_drops_total", obs.L("switch", "TACC"), obs.L("mirrored", "P1"), obs.L("egress", "E1")).Add(20)
	reg.Gauge("patchwork_storage_free_bytes", obs.L("site", "STAR")).Set(2_000_000_000)
	m.Start()
	k.RunUntil(2 * sim.Time(sim.Second))

	rows := m.Status()
	if len(rows) != 2 || rows[0].Site != "STAR" || rows[1].Site != "TACC" {
		t.Fatalf("rows = %+v, want sorted STAR,TACC", rows)
	}
	if rows[0].DropRatio != 0.1 {
		t.Errorf("STAR drop ratio = %v, want 0.1", rows[0].DropRatio)
	}
	if !rows[0].HasAlerts || rows[0].Worst != SeverityWarning || rows[0].Alerts != 1 {
		t.Errorf("STAR alert state wrong: %+v", rows[0])
	}
	if rows[1].MirrorLoss != 0.1 {
		t.Errorf("TACC mirror loss = %v, want 0.1", rows[1].MirrorLoss)
	}
	if rows[1].HasAlerts {
		t.Errorf("TACC should be healthy: %+v", rows[1])
	}

	var buf bytes.Buffer
	if err := m.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SITE", "STAR", "TACC", "warning", "2GB", "! hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestSubscribeObservesTransitions(t *testing.T) {
	const rules = `{"rules":[{
		"name":"drop-rate","severity":"critical","for_sec":2,
		"threshold":{"expr":{"metric":"drops_total","agg":"rate","window_sec":5},"op":">","value":1}
	}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	var first, second []AlertEvent
	m.Subscribe(func(ev AlertEvent) { first = append(first, ev) })
	m.Subscribe(func(ev AlertEvent) { second = append(second, ev) })
	m.Subscribe(nil) // nil subscribers are ignored, not called
	drops := reg.Counter("drops_total", obs.L("site", "STAR"))
	m.Start()
	for i := 4; i <= 9; i++ {
		k.At(sim.Time(i)*sim.Time(sim.Second)-1, func() { drops.Add(5) })
	}
	k.RunUntil(20 * sim.Time(sim.Second))
	events := m.Events()
	if len(events) == 0 {
		t.Fatal("no transitions recorded")
	}
	if len(first) != len(events) || len(second) != len(events) {
		t.Fatalf("subscribers saw %d/%d events, monitor recorded %d",
			len(first), len(second), len(events))
	}
	for i := range events {
		if first[i] != events[i] || second[i] != events[i] {
			t.Errorf("event %d: subscriber copies diverge from monitor record", i)
		}
	}
}

// TestResolveAndRefireSameWindow: a rule that fires, resolves, and
// fires again while the original samples are still inside its window
// must emit two distinct firing events and freeze two distinct
// flight-recorder dumps — remediation hysteresis depends on every
// firing edge being observable.
func TestResolveAndRefireSameWindow(t *testing.T) {
	const rules = `{"rules":[{
		"name":"drop-rate","severity":"critical","for_sec":2,
		"threshold":{"expr":{"metric":"drops_total","agg":"rate","window_sec":5},"op":">","value":1}
	}]}`
	k, reg, m := monitorFixture(t, rules, Config{})
	drops := reg.Counter("drops_total", obs.L("site", "STAR"))
	m.Start()
	// Two bursts separated by a quiet gap long enough to resolve but
	// short enough that the second burst lands in the same ring window.
	for i := 4; i <= 7; i++ {
		k.At(sim.Time(i)*sim.Time(sim.Second)-1, func() { drops.Add(5) })
	}
	for i := 15; i <= 18; i++ {
		k.At(sim.Time(i)*sim.Time(sim.Second)-1, func() { drops.Add(5) })
	}
	k.RunUntil(30 * sim.Time(sim.Second))

	var firings, resolves []AlertEvent
	for _, ev := range m.Events() {
		switch ev.State {
		case "firing":
			firings = append(firings, ev)
		case "resolved":
			resolves = append(resolves, ev)
		}
	}
	if len(firings) != 2 {
		t.Fatalf("firing events = %d (%v), want 2", len(firings), firings)
	}
	if len(resolves) != 2 {
		t.Errorf("resolved events = %d, want 2 (each burst resolves)", len(resolves))
	}
	if firings[0].At == firings[1].At {
		t.Error("the two firings carry the same timestamp")
	}
	if !(firings[0].At < resolves[0].At && resolves[0].At < firings[1].At) {
		t.Errorf("lifecycle out of order: fire=%v resolve=%v refire=%v",
			firings[0].At, resolves[0].At, firings[1].At)
	}
	dumps := m.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("dumps = %d, want one per firing", len(dumps))
	}
	if dumps[0].Name == dumps[1].Name {
		t.Errorf("both dumps share the name %q; firings must freeze distinct dumps", dumps[0].Name)
	}
}

// TestTraceCountersSampled checks Config.TraceCounters feeds selected
// registry series into the tracer as Chrome counter events — labelled
// series suffixed with their label identity — while leaving the span
// JSONL artifact untouched.
func TestTraceCountersSampled(t *testing.T) {
	k := sim.NewKernel()
	reg := obs.NewKernelRegistry(k)
	tracer := obs.NewKernelTracer(k)
	m, err := NewMonitor(k, reg, tracer, Config{
		TraceCounters: []string{"frames", "drops"},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := reg.Counter("frames")
	drops := reg.Counter("drops", obs.L("site", "A"))
	reg.Counter("ignored") // not listed: must not be sampled
	m.Start()
	k.At(1500*sim.Time(sim.Millisecond), func() { frames.Add(7); drops.Add(2) })
	k.RunUntil(3 * sim.Time(sim.Second))

	var chrome bytes.Buffer
	if err := tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	var lastFrames float64
	for _, e := range events {
		if e["ph"] != "C" {
			continue
		}
		name := e["name"].(string)
		byName[name]++
		if name == "frames" {
			lastFrames = e["args"].(map[string]any)["value"].(float64)
		}
	}
	if byName["frames"] < 2 {
		t.Errorf("frames sampled %d times, want one per tick (>= 2)", byName["frames"])
	}
	if byName["drops{site=A}"] == 0 {
		t.Error("labelled series not sampled under its label identity")
	}
	if byName["ignored"] != 0 {
		t.Error("unlisted metric was sampled")
	}
	if lastFrames != 7 {
		t.Errorf("last frames sample = %v, want 7", lastFrames)
	}
	var jsonl bytes.Buffer
	if err := tracer.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(jsonl.Bytes(), []byte("frames")) {
		t.Error("counter sampling leaked into the span JSONL artifact")
	}
}
