package health

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/units"
)

// SiteStatus is the digested health of one site: worst active alert,
// headline capture/mirror loss ratios, queue pressure, and storage.
type SiteStatus struct {
	Site           string
	Alerts         int
	Worst          Severity
	HasAlerts      bool
	DropRatio      float64 // capture drops / received, lifetime
	MirrorLoss     float64 // mirror fault drops / cloned, lifetime
	QueueHighwater float64
	FreeBytes      float64 // NaN when storage is not modeled
	WritevMeanNs   float64 // NaN when no host is attached
}

// Status digests the monitor's current windows and alert states into
// per-site rows, sorted by site name. Sites are discovered from the
// instruments themselves: any instance carrying a "site" label, or a
// "switch" label (the platform names each site's switch after the
// site).
func (m *Monitor) Status() []SiteStatus {
	if m == nil {
		return nil
	}
	rows := make(map[string]*SiteStatus)
	row := func(site string) *SiteStatus {
		r := rows[site]
		if r == nil {
			r = &SiteStatus{Site: site, FreeBytes: math.NaN(), WritevMeanNs: math.NaN()}
			rows[site] = r
		}
		return r
	}
	siteOf := func(inst *instance) string {
		if s := inst.labels["site"]; s != "" {
			return s
		}
		return inst.labels["switch"]
	}
	accumulate := func(metric string) map[string]float64 {
		acc := make(map[string]float64)
		for _, inst := range m.byMetric[metric] {
			site := siteOf(inst)
			if site == "" {
				continue
			}
			if p, ok := inst.s.Latest(); ok {
				row(site) // ensure the site appears even with zero counts
				acc[site] += p.V
			}
		}
		return acc
	}
	received := accumulate("capture_frames_received_total")
	dropped := accumulate("capture_frames_dropped_total")
	cloned := accumulate("switchsim_mirror_cloned_total")
	faultDropped := accumulate("switchsim_mirror_fault_drops_total")
	for site, r := range rows {
		if rx := received[site]; rx > 0 {
			r.DropRatio = dropped[site] / rx
		}
		if cl := cloned[site]; cl > 0 {
			r.MirrorLoss = faultDropped[site] / cl
		}
	}
	for _, inst := range m.byMetric["capture_core_queue_highwater"] {
		site := siteOf(inst)
		if site == "" {
			continue
		}
		if p, ok := inst.s.Latest(); ok {
			if r := row(site); p.V > r.QueueHighwater {
				r.QueueHighwater = p.V
			}
		}
	}
	for _, inst := range m.byMetric["patchwork_storage_free_bytes"] {
		site := siteOf(inst)
		if site == "" {
			continue
		}
		if p, ok := inst.s.Latest(); ok {
			row(site).FreeBytes = p.V
		}
	}
	for _, inst := range m.byMetric["hostsim_writev_latency_ns"] {
		site := siteOf(inst)
		if site == "" {
			continue
		}
		if p, ok := inst.s.Latest(); ok && p.V > 0 {
			row(site).WritevMeanNs = p.Sum / p.V
		}
	}
	for _, a := range m.ActiveAlerts() {
		site := ""
		for _, kv := range strings.Split(a.Instance, ",") {
			k, v, _ := strings.Cut(kv, "=")
			if k == "site" || k == "switch" {
				site = v
				break
			}
		}
		if site == "" {
			continue
		}
		r := row(site)
		r.Alerts++
		if !r.HasAlerts || a.Severity.rank() > r.Worst.rank() {
			r.Worst = a.Severity
		}
		r.HasAlerts = true
	}
	out := make([]SiteStatus, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// WriteStatus renders the live status table: a header with the sim
// clock and alert totals, one row per site, and any active alerts. The
// output is deterministic for a deterministic simulation.
func (m *Monitor) WriteStatus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	now := m.k.Now()
	active := m.ActiveAlerts()
	fmt.Fprintf(bw, "patchwork health @ t=%s  alerts: %d active, %d transitions\n",
		now, len(active), len(m.events))
	fmt.Fprintf(bw, "%-10s %-8s %9s %9s %7s %10s %10s\n",
		"SITE", "STATE", "DROP%", "MIRLOSS%", "QHW", "FREE", "WRITEV")
	for _, r := range m.Status() {
		state := "ok"
		if r.HasAlerts {
			state = r.Worst.String()
		}
		free := "-"
		if !math.IsNaN(r.FreeBytes) {
			free = units.ByteSize(r.FreeBytes).String()
		}
		writev := "-"
		if !math.IsNaN(r.WritevMeanNs) {
			writev = fmt.Sprintf("%.0fns", r.WritevMeanNs)
		}
		fmt.Fprintf(bw, "%-10s %-8s %8.2f%% %8.2f%% %7.0f %10s %10s\n",
			r.Site, state, 100*r.DropRatio, 100*r.MirrorLoss, r.QueueHighwater, free, writev)
	}
	for _, a := range active {
		fmt.Fprintf(bw, "  ! %s [%s] %s since t=%s\n",
			a.Rule, a.Severity, a.Instance, a.Since)
	}
	return bw.Flush()
}
