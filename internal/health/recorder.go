package health

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// RecorderConfig bounds the flight recorder's rings.
type RecorderConfig struct {
	// MetricDepth is how many recent registry snapshots to keep
	// (default 8 — with a 1 s tick, the last 8 sim-seconds).
	MetricDepth int
	// LogDepth is how many recent log lines to keep (default 256).
	LogDepth int
	// SpanTail is how many of the most recent spans to include in a
	// dump (default 64).
	SpanTail int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.MetricDepth <= 0 {
		c.MetricDepth = 8
	}
	if c.LogDepth <= 0 {
		c.LogDepth = 256
	}
	if c.SpanTail <= 0 {
		c.SpanTail = 64
	}
	return c
}

// metricSnap is one retained registry snapshot.
type metricSnap struct {
	at     sim.Time
	points []obs.MetricPoint
}

// logLine is one retained log record.
type logLine struct {
	at            sim.Time
	source, level string
	msg           string
}

// recorder keeps bounded rings of recent context — metric snapshots and
// log lines — and can freeze them, together with the tail of the span
// trace, into a JSONL dump when an alert fires. It records continuously
// and cheaply; the expensive serialization happens only at dump time.
type recorder struct {
	cfg RecorderConfig

	snaps     []metricSnap
	snapHead  int
	snapCount int

	logs     []logLine
	logHead  int
	logCount int
}

func newRecorder(cfg RecorderConfig) *recorder {
	cfg = cfg.withDefaults()
	return &recorder{
		cfg:   cfg,
		snaps: make([]metricSnap, cfg.MetricDepth),
		logs:  make([]logLine, cfg.LogDepth),
	}
}

func (r *recorder) snapshot(at sim.Time, points []obs.MetricPoint) {
	s := metricSnap{at: at, points: points}
	if r.snapCount < len(r.snaps) {
		r.snaps[(r.snapHead+r.snapCount)%len(r.snaps)] = s
		r.snapCount++
		return
	}
	r.snaps[r.snapHead] = s
	r.snapHead = (r.snapHead + 1) % len(r.snaps)
}

func (r *recorder) log(at sim.Time, source, level, msg string) {
	l := logLine{at: at, source: source, level: level, msg: msg}
	if r.logCount < len(r.logs) {
		r.logs[(r.logHead+r.logCount)%len(r.logs)] = l
		r.logCount++
		return
	}
	r.logs[r.logHead] = l
	r.logHead = (r.logHead + 1) % len(r.logs)
}

// jsonString marshals a string; the error return keeps call sites
// honest but marshaling a string cannot fail.
func jsonString(s string) (string, error) {
	b, err := json.Marshal(s)
	return string(b), err
}

// dump freezes the recorder into a JSONL document: an alert header,
// then the retained metric snapshots (oldest first), the tail of the
// span trace, and the retained log lines (oldest first). The window
// header fields state the sim-time range the dump covers, so a reader
// can check an injection or incident window falls inside it.
func (r *recorder) dump(ev AlertEvent, tracer *obs.Tracer) []byte {
	var buf bytes.Buffer

	from := ev.At
	if r.snapCount > 0 {
		from = r.snaps[r.snapHead].at
	}
	if r.logCount > 0 && r.logs[r.logHead].at < from {
		from = r.logs[r.logHead].at
	}
	inst, _ := jsonString(ev.Instance)
	fmt.Fprintf(&buf,
		`{"type":"alert","rule":%q,"severity":%q,"instance":%s,"fired_ns":%d,"value":%s,"window_from_ns":%d,"window_to_ns":%d}`+"\n",
		ev.Rule, ev.Severity, inst, int64(ev.At), jsonNumber(ev.Value), int64(from), int64(ev.At))

	for i := 0; i < r.snapCount; i++ {
		s := r.snaps[(r.snapHead+i)%len(r.snaps)]
		fmt.Fprintf(&buf, `{"type":"metrics","sim_ns":%d,"points":[`, int64(s.at))
		for j, mp := range s.points {
			if j > 0 {
				buf.WriteByte(',')
			}
			name, _ := jsonString(mp.Name)
			id, _ := jsonString(labelID(mp.Labels))
			fmt.Fprintf(&buf, `{"m":%s,"l":%s,"v":%s`, name, id, jsonNumber(mp.Value))
			if mp.Kind == obs.KindHistogram {
				fmt.Fprintf(&buf, `,"sum":%d`, mp.Sum)
			}
			buf.WriteByte('}')
		}
		buf.WriteString("]}\n")
	}

	recs := tracer.Records()
	if len(recs) > r.cfg.SpanTail {
		recs = recs[len(recs)-r.cfg.SpanTail:]
	}
	for _, sp := range recs {
		name, _ := jsonString(sp.Name)
		fmt.Fprintf(&buf, `{"type":"span","span":%d,"parent":%d,"name":%s,"start_ns":%d`,
			sp.ID, sp.Parent, name, int64(sp.Start))
		if sp.Ended {
			fmt.Fprintf(&buf, `,"end_ns":%d`, int64(sp.End))
		}
		if len(sp.Attrs) > 0 {
			buf.WriteString(`,"attrs":{`)
			for i, a := range sp.Attrs {
				if i > 0 {
					buf.WriteByte(',')
				}
				k, _ := jsonString(a.Key)
				v, _ := jsonString(a.Value)
				fmt.Fprintf(&buf, `%s:%s`, k, v)
			}
			buf.WriteByte('}')
		}
		buf.WriteString("}\n")
	}

	for i := 0; i < r.logCount; i++ {
		l := r.logs[(r.logHead+i)%len(r.logs)]
		msg, _ := jsonString(l.msg)
		fmt.Fprintf(&buf, `{"type":"log","sim_ns":%d,"source":%q,"level":%q,"msg":%s}`+"\n",
			int64(l.at), l.source, l.level, msg)
	}
	return buf.Bytes()
}
