// Package health is the platform's monitoring subsystem: it watches an
// obs.Registry from inside the simulation kernel, maintains sliding
// windows over every instrument, evaluates declarative alert rules
// (threshold, staleness, burn-rate) with firing/resolved lifecycle, and
// freezes a flight-recorder dump of recent context whenever a rule
// fires. Everything is stamped in virtual sim.Time and every data
// structure iterates in a deterministic order, so for a fixed (plan,
// seed) two runs produce byte-identical alert logs and dumps — the same
// reproducibility contract the rest of the platform honors.
package health

import (
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Point is one sampled observation of an instrument.
type Point struct {
	// T is the sampling tick's time.
	T sim.Time
	// V is the counter/gauge value; for histograms the observation count.
	V float64
	// Sum is the histogram sum (zero for other kinds).
	Sum float64
	// At is the instrument's own last-update stamp, used for staleness.
	At sim.Time
}

// Series is a fixed-capacity ring of Points for one instrument,
// oldest-first. The zero value is not usable; monitors build them.
type Series struct {
	Name   string
	Labels []obs.Label
	Kind   obs.Kind

	buf  []Point
	head int // index of the oldest point
	n    int
}

func newSeries(name string, kind obs.Kind, labels []obs.Label, depth int) *Series {
	return &Series{Name: name, Kind: kind, Labels: labels, buf: make([]Point, depth)}
}

// push appends a point, evicting the oldest at capacity.
func (s *Series) push(p Point) {
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = p
		s.n++
		return
	}
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
}

// Len reports how many points the ring holds.
func (s *Series) Len() int { return s.n }

// at returns the i-th point, oldest first.
func (s *Series) at(i int) Point { return s.buf[(s.head+i)%len(s.buf)] }

// Latest returns the most recent point.
func (s *Series) Latest() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.at(s.n - 1), true
}

// anchor returns the point that opens a trailing window of the given
// width: the newest point at or before latest.T - window, or the oldest
// point when the ring does not reach back that far (mirroring
// telemetry.Store.RateOver's bin-boundary behaviour).
func (s *Series) anchor(window sim.Duration) (Point, bool) {
	if s.n < 2 {
		return Point{}, false
	}
	cutoff := s.at(s.n-1).T - window
	first := s.at(0)
	for i := s.n - 2; i >= 0; i-- {
		first = s.at(i)
		if s.at(i).T <= cutoff {
			break
		}
	}
	return first, true
}

// Delta returns latest.V - anchor.V over the trailing window. For
// counters this is the increase; for gauges the net change.
func (s *Series) Delta(window sim.Duration) (float64, bool) {
	last, ok := s.Latest()
	if !ok {
		return 0, false
	}
	first, ok := s.anchor(window)
	if !ok {
		return 0, false
	}
	return last.V - first.V, true
}

// RateOver returns the per-second change over the trailing window,
// using the actual time spanned by the chosen samples. For a gauge this
// is its trend (slope); for a counter its event rate.
func (s *Series) RateOver(window sim.Duration) (float64, bool) {
	last, ok := s.Latest()
	if !ok {
		return 0, false
	}
	first, ok := s.anchor(window)
	if !ok {
		return 0, false
	}
	dt := last.T - first.T
	if dt <= 0 {
		return 0, false
	}
	return (last.V - first.V) / (float64(dt) / float64(sim.Second)), true
}

// MaxOver returns the maximum sampled value inside the trailing window
// (inclusive of the anchoring sample).
func (s *Series) MaxOver(window sim.Duration) (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	cutoff := s.at(s.n-1).T - window
	max := math.Inf(-1)
	for i := s.n - 1; i >= 0; i-- {
		p := s.at(i)
		if p.V > max {
			max = p.V
		}
		if p.T <= cutoff {
			break
		}
	}
	return max, true
}

// MinOver returns the minimum sampled value inside the trailing window.
func (s *Series) MinOver(window sim.Duration) (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	cutoff := s.at(s.n-1).T - window
	min := math.Inf(+1)
	for i := s.n - 1; i >= 0; i-- {
		p := s.at(i)
		if p.V < min {
			min = p.V
		}
		if p.T <= cutoff {
			break
		}
	}
	return min, true
}

// EWMA folds an exponentially weighted moving average (newest weighted
// alpha) over the samples in the trailing window, oldest first.
func (s *Series) EWMA(window sim.Duration, alpha float64) (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	cutoff := s.at(s.n-1).T - window
	start := 0
	for i := s.n - 1; i >= 0; i-- {
		start = i
		if s.at(i).T <= cutoff {
			break
		}
	}
	ewma := s.at(start).V
	for i := start + 1; i < s.n; i++ {
		ewma = alpha*s.at(i).V + (1-alpha)*ewma
	}
	return ewma, true
}

// MeanOver returns the mean observed value of a histogram over the
// trailing window: delta(sum) / delta(count). It returns false when no
// observations landed in the window.
func (s *Series) MeanOver(window sim.Duration) (float64, bool) {
	last, ok := s.Latest()
	if !ok {
		return 0, false
	}
	first, ok := s.anchor(window)
	if !ok {
		return 0, false
	}
	dc := last.V - first.V
	if dc <= 0 {
		return 0, false
	}
	return (last.Sum - first.Sum) / dc, true
}

// Staleness reports how long ago (relative to now) the underlying
// instrument last recorded an observation.
func (s *Series) Staleness(now sim.Time) (sim.Duration, bool) {
	last, ok := s.Latest()
	if !ok {
		return 0, false
	}
	return now - last.At, true
}
