package health

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Severity ranks an alert rule. The zero value is SeverityWarning so
// rules that omit "severity" get a sensible default.
type Severity int

const (
	SeverityWarning Severity = iota
	SeverityInfo
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityCritical:
		return "critical"
	default:
		return "warning"
	}
}

// rank orders severities for "worst of" comparisons.
func (s Severity) rank() int {
	switch s {
	case SeverityInfo:
		return 0
	case SeverityCritical:
		return 2
	default:
		return 1
	}
}

func parseSeverity(s string) (Severity, error) {
	switch s {
	case "", "warning":
		return SeverityWarning, nil
	case "info":
		return SeverityInfo, nil
	case "critical":
		return SeverityCritical, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warning, or critical)", s)
}

// Aggregation names accepted in Expr.Agg.
const (
	AggValue = "value" // latest sampled value
	AggRate  = "rate"  // per-second change over the window
	AggDelta = "delta" // absolute change over the window
	AggEWMA  = "ewma"  // exponentially weighted moving average
	AggMax   = "max"   // maximum sample in the window
	AggMin   = "min"   // minimum sample in the window
	AggMean  = "mean"  // histogram mean: delta(sum)/delta(count)
)

// Expr selects instrument instances by metric name and a label subset,
// and reduces each instance's sliding window with an aggregation. An
// optional divisor turns the result into a ratio (for example dropped
// rate over received rate); the divisor is evaluated against the
// instance with the same label identity as the numerator.
type Expr struct {
	Metric    string            `json:"metric"`
	Labels    map[string]string `json:"labels,omitempty"`
	Agg       string            `json:"agg,omitempty"`
	WindowSec float64           `json:"window_sec,omitempty"`
	Alpha     float64           `json:"alpha,omitempty"`
	Divisor   *Expr             `json:"divisor,omitempty"`
}

func (e *Expr) window() sim.Duration {
	return sim.Duration(e.WindowSec * float64(sim.Second))
}

func (e *Expr) validate(where string) error {
	if e.Metric == "" {
		return fmt.Errorf("%s: expr is missing \"metric\"", where)
	}
	switch e.Agg {
	case "", AggValue:
	case AggRate, AggDelta, AggMax, AggMin, AggMean:
		if e.WindowSec <= 0 {
			return fmt.Errorf("%s: agg %q needs a positive \"window_sec\"", where, e.Agg)
		}
	case AggEWMA:
		if e.WindowSec <= 0 {
			return fmt.Errorf("%s: agg %q needs a positive \"window_sec\"", where, e.Agg)
		}
		if e.Alpha <= 0 || e.Alpha > 1 {
			return fmt.Errorf("%s: agg \"ewma\" needs \"alpha\" in (0, 1], got %v", where, e.Alpha)
		}
	default:
		return fmt.Errorf("%s: unknown agg %q", where, e.Agg)
	}
	if e.Divisor != nil {
		if e.Divisor.Divisor != nil {
			return fmt.Errorf("%s: divisors do not nest", where)
		}
		if err := e.Divisor.validate(where + " divisor"); err != nil {
			return err
		}
	}
	return nil
}

// matches reports whether the expression's label constraints are a
// subset of the instance's labels.
func (e *Expr) matches(labels map[string]string) bool {
	for k, want := range e.Labels {
		if labels[k] != want {
			return false
		}
	}
	return true
}

// Signal is a named derived series: the expression is evaluated for
// every matching instance on each tick and published back into the
// registry as a gauge carrying the instance's labels, so derived
// quantities like capture_drop_ratio_30s are first-class metrics that
// every exporter and alert rule can see.
type Signal struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Expr Expr   `json:"expr"`
}

// ThresholdCond is true when the expression's value compares against
// the bound.
type ThresholdCond struct {
	Expr  Expr    `json:"expr"`
	Op    string  `json:"op"`
	Value float64 `json:"value"`
}

func (c *ThresholdCond) holds(v float64) bool {
	switch c.Op {
	case ">":
		return v > c.Value
	case ">=":
		return v >= c.Value
	case "<":
		return v < c.Value
	case "<=":
		return v <= c.Value
	case "==":
		return v == c.Value
	case "!=":
		return v != c.Value
	}
	return false
}

// AbsenceCond is true when a matching instrument has not recorded an
// observation for at least StaleSec sim-seconds — the "listener went
// quiet" class of failure that value thresholds cannot see.
type AbsenceCond struct {
	Metric   string            `json:"metric"`
	Labels   map[string]string `json:"labels,omitempty"`
	StaleSec float64           `json:"stale_sec"`
}

// BurnRateCond is true when the expression's observed per-hour rate
// exceeds MaxBurn times the hourly budget — the SLO burn-rate idiom.
type BurnRateCond struct {
	Expr          Expr    `json:"expr"`
	BudgetPerHour float64 `json:"budget_per_hour"`
	MaxBurn       float64 `json:"max_burn"`
}

// Rule is one alert definition. Exactly one of Threshold, Absence, or
// BurnRate must be set. The condition must hold continuously for ForSec
// sim-seconds before the alert transitions from pending to firing; it
// resolves as soon as the condition stops holding.
type Rule struct {
	Name     string  `json:"name"`
	Severity string  `json:"severity,omitempty"`
	ForSec   float64 `json:"for_sec,omitempty"`

	Threshold *ThresholdCond `json:"threshold,omitempty"`
	Absence   *AbsenceCond   `json:"absence,omitempty"`
	BurnRate  *BurnRateCond  `json:"burn_rate,omitempty"`

	severity Severity
}

func (r *Rule) holdFor() sim.Duration {
	return sim.Duration(r.ForSec * float64(sim.Second))
}

// RuleSet is the top-level document: derived signals plus alert rules.
type RuleSet struct {
	Name    string   `json:"name,omitempty"`
	Signals []Signal `json:"signals,omitempty"`
	Rules   []Rule   `json:"rules,omitempty"`
}

// Parse decodes and validates a rule set. Unknown JSON fields are
// rejected so a typo in a rule file fails loudly instead of silently
// disabling an alert.
func Parse(r io.Reader) (RuleSet, error) {
	var rs RuleSet
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rs); err != nil {
		return RuleSet{}, fmt.Errorf("health: parse rules: %w", err)
	}
	if err := rs.Validate(); err != nil {
		return RuleSet{}, err
	}
	return rs, nil
}

// ParseBytes decodes and validates a rule set from a byte slice.
func ParseBytes(data []byte) (RuleSet, error) { return Parse(bytes.NewReader(data)) }

// Validate checks every signal and rule, naming the offending entry in
// any error. It also resolves severity strings, so a validated rule set
// is ready for evaluation.
func (rs *RuleSet) Validate() error {
	seen := make(map[string]bool)
	for i := range rs.Signals {
		sg := &rs.Signals[i]
		if sg.Name == "" {
			return fmt.Errorf("health: signal %d has no name", i)
		}
		if seen[sg.Name] {
			return fmt.Errorf("health: duplicate signal %q", sg.Name)
		}
		seen[sg.Name] = true
		if err := sg.Expr.validate(fmt.Sprintf("signal %q", sg.Name)); err != nil {
			return fmt.Errorf("health: %w", err)
		}
	}
	names := make(map[string]bool)
	for i := range rs.Rules {
		r := &rs.Rules[i]
		if r.Name == "" {
			return fmt.Errorf("health: rule %d has no name", i)
		}
		if names[r.Name] {
			return fmt.Errorf("health: duplicate rule %q", r.Name)
		}
		names[r.Name] = true
		sev, err := parseSeverity(r.Severity)
		if err != nil {
			return fmt.Errorf("health: rule %q: %w", r.Name, err)
		}
		r.severity = sev
		if r.ForSec < 0 {
			return fmt.Errorf("health: rule %q: negative for_sec", r.Name)
		}
		conds := 0
		if r.Threshold != nil {
			conds++
			switch r.Threshold.Op {
			case ">", ">=", "<", "<=", "==", "!=":
			default:
				return fmt.Errorf("health: rule %q: unknown op %q", r.Name, r.Threshold.Op)
			}
			if err := r.Threshold.Expr.validate(fmt.Sprintf("rule %q", r.Name)); err != nil {
				return fmt.Errorf("health: %w", err)
			}
		}
		if r.Absence != nil {
			conds++
			if r.Absence.Metric == "" {
				return fmt.Errorf("health: rule %q: absence condition is missing \"metric\"", r.Name)
			}
			if r.Absence.StaleSec <= 0 {
				return fmt.Errorf("health: rule %q: absence condition needs a positive \"stale_sec\"", r.Name)
			}
		}
		if r.BurnRate != nil {
			conds++
			if r.BurnRate.BudgetPerHour <= 0 {
				return fmt.Errorf("health: rule %q: burn_rate needs a positive \"budget_per_hour\"", r.Name)
			}
			if r.BurnRate.MaxBurn <= 0 {
				return fmt.Errorf("health: rule %q: burn_rate needs a positive \"max_burn\"", r.Name)
			}
			if err := r.BurnRate.Expr.validate(fmt.Sprintf("rule %q", r.Name)); err != nil {
				return fmt.Errorf("health: %w", err)
			}
			if r.BurnRate.Expr.Agg != "" && r.BurnRate.Expr.Agg != AggRate {
				return fmt.Errorf("health: rule %q: burn_rate expr agg must be \"rate\"", r.Name)
			}
			if r.BurnRate.Expr.WindowSec <= 0 {
				return fmt.Errorf("health: rule %q: burn_rate expr needs a positive \"window_sec\"", r.Name)
			}
		}
		if conds != 1 {
			return fmt.Errorf("health: rule %q: want exactly one of threshold, absence, burn_rate; got %d", r.Name, conds)
		}
	}
	return nil
}

//go:embed rules_default.json
var defaultRulesJSON []byte

// DefaultRules returns the bundled rule set covering the platform's
// built-in instrumentation: capture and mirror loss ratios, listener
// staleness, storage write latency, and allocator failure burn rate.
func DefaultRules() RuleSet {
	rs, err := ParseBytes(defaultRulesJSON)
	if err != nil {
		panic("health: embedded default rules are invalid: " + err.Error())
	}
	return rs
}

// labelMap converts a sorted label slice into a lookup map.
func labelMap(labels []obs.Label) map[string]string {
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// describeExpr renders an expression compactly for logs and dumps.
func describeExpr(e *Expr) string {
	var sb strings.Builder
	agg := e.Agg
	if agg == "" {
		agg = AggValue
	}
	sb.WriteString(agg)
	sb.WriteByte('(')
	sb.WriteString(e.Metric)
	if e.WindowSec > 0 {
		fmt.Fprintf(&sb, ", %gs", e.WindowSec)
	}
	sb.WriteByte(')')
	if e.Divisor != nil {
		sb.WriteString(" / ")
		sb.WriteString(describeExpr(e.Divisor))
	}
	return sb.String()
}
