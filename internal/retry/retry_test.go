package retry

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"defaults", DefaultPolicy(), true},
		{"zero-filled", Policy{}.WithDefaults(), true},
		{"zero base", Policy{Cap: sim.Second, Multiplier: 2, MaxAttempts: 3}, false},
		{"cap below base", Policy{Base: sim.Minute, Cap: sim.Second, Multiplier: 2, MaxAttempts: 3}, false},
		{"multiplier below one", Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 0.5, MaxAttempts: 3}, false},
		{"negative jitter", Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 2, Jitter: -0.1, MaxAttempts: 3}, false},
		{"jitter above one", Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 2, Jitter: 1.5, MaxAttempts: 3}, false},
		{"no attempts", Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 2, MaxAttempts: 0}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	// No jitter: delays are exactly Base*Multiplier^n, clamped at Cap.
	p := Policy{Base: sim.Second, Cap: 10 * sim.Second, Multiplier: 2, Jitter: 0, MaxAttempts: 10}
	want := []sim.Duration{
		1 * sim.Second, 2 * sim.Second, 4 * sim.Second, 8 * sim.Second,
		10 * sim.Second, 10 * sim.Second, 10 * sim.Second,
	}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Negative retry indices clamp to the base delay.
	if got := p.Delay(-3, nil); got != sim.Second {
		t.Errorf("Delay(-3) = %v, want %v", got, sim.Second)
	}
}

func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: 4 * sim.Second, Cap: sim.Minute, Multiplier: 2, Jitter: 0.5, MaxAttempts: 8}
	cases := []struct {
		seed uint64
	}{{1}, {2}, {42}, {0xdeadbeef}}
	for _, c := range cases {
		a, b := rng.New(c.seed), rng.New(c.seed)
		other := rng.New(c.seed + 1)
		var divergent bool
		for i := 0; i < 6; i++ {
			da, db := p.Delay(i, a), p.Delay(i, b)
			if da != db {
				t.Fatalf("seed %d retry %d: same seed diverged: %v vs %v", c.seed, i, da, db)
			}
			if do := p.Delay(i, other); do != da {
				divergent = true
			}
			raw := p.Delay(i, nil) // un-jittered value = upper bound
			if da > raw || da < raw-sim.Duration(float64(raw)*p.Jitter) {
				t.Errorf("seed %d retry %d: jittered delay %v outside [%v, %v]",
					c.seed, i, da, raw-sim.Duration(float64(raw)*p.Jitter), raw)
			}
			if da > p.Cap {
				t.Errorf("seed %d retry %d: delay %v exceeds cap %v", c.seed, i, da, p.Cap)
			}
		}
		if !divergent {
			t.Errorf("seed %d: different seeds produced identical jitter sequences", c.seed)
		}
	}
}

func TestExhaustedGiveUp(t *testing.T) {
	cases := []struct {
		max     int
		attempt int
		want    bool
	}{
		{1, 0, false}, // the single allowed try is attempt 0
		{1, 1, true},
		{3, 2, false},
		{3, 3, true},
		{6, 5, false},
		{6, 6, true},
		{6, 100, true},
	}
	for _, c := range cases {
		p := Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 2, MaxAttempts: c.max}
		if got := p.Exhausted(c.attempt); got != c.want {
			t.Errorf("MaxAttempts=%d Exhausted(%d) = %v, want %v", c.max, c.attempt, got, c.want)
		}
	}
}

func TestTotalBudget(t *testing.T) {
	p := Policy{Base: sim.Second, Cap: 4 * sim.Second, Multiplier: 2, Jitter: 0.5, MaxAttempts: 4}
	// Un-jittered delays: 1s + 2s + 4s = 7s.
	if got := p.TotalBudget(); got != 7*sim.Second {
		t.Errorf("TotalBudget = %v, want %v", got, 7*sim.Second)
	}
	single := Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 2, MaxAttempts: 1}
	if got := single.TotalBudget(); got != 0 {
		t.Errorf("TotalBudget with 1 attempt = %v, want 0", got)
	}
}

func TestMaxElapsedValidation(t *testing.T) {
	p := DefaultPolicy()
	p.MaxElapsed = -sim.Second
	if err := p.Validate(); err == nil {
		t.Error("negative MaxElapsed should fail validation")
	}
	p.MaxElapsed = 0
	if err := p.Validate(); err != nil {
		t.Errorf("zero MaxElapsed (no budget) should validate: %v", err)
	}
	p.MaxElapsed = sim.Minute
	if err := p.Validate(); err != nil {
		t.Errorf("positive MaxElapsed should validate: %v", err)
	}
}

func TestExpiredElapsedBudget(t *testing.T) {
	start := sim.Time(10 * sim.Second)
	cases := []struct {
		name    string
		elapsed sim.Duration
		at      sim.Time
		want    bool
	}{
		{"zero budget never expires", 0, start + sim.Time(sim.Hour), false},
		{"inside budget", 30 * sim.Second, start + sim.Time(20*sim.Second), false},
		{"exactly at budget", 30 * sim.Second, start + sim.Time(30*sim.Second), false},
		{"past budget", 30 * sim.Second, start + sim.Time(30*sim.Second) + 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := Policy{Base: sim.Second, Cap: sim.Minute, Multiplier: 2,
				MaxAttempts: 6, MaxElapsed: c.elapsed}
			if got := p.Expired(start, c.at); got != c.want {
				t.Errorf("Expired(%v, %v) with budget %v = %v, want %v",
					start, c.at, c.elapsed, got, c.want)
			}
		})
	}
}
