// Package retry provides a reusable jittered-exponential-backoff policy
// for the transient failures a federated testbed throws at its users:
// allocator hiccups, short back-end outages, control-plane races. The
// policy is pure arithmetic over virtual time — all randomness flows
// through a caller-supplied rng.Source, so two runs with the same seed
// produce the same retry schedule nanosecond for nanosecond.
package retry

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Policy shapes a retry schedule. The zero value is not usable directly;
// call WithDefaults (Config plumbing in internal/core does this for you).
type Policy struct {
	// Base is the delay before the first retry (default 2 s).
	Base sim.Duration
	// Cap bounds each delay after exponential growth (default 2 min).
	Cap sim.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1].
	// With Jitter = 0.5 a delay d becomes uniform in [d/2, d]. Jitter
	// decorrelates retry storms across sites while staying deterministic
	// for a fixed seed (default 0.5).
	Jitter float64
	// MaxAttempts is the total number of tries, including the first
	// (default 6). Delay is consulted at most MaxAttempts-1 times.
	MaxAttempts int
	// MaxElapsed is an overall elapsed-time budget measured against sim
	// time from the moment the first attempt starts. Zero means no
	// elapsed budget (attempts alone bound the schedule). A policy with
	// generous MaxAttempts can otherwise retry far past the phase
	// timeout that is supposed to contain it; callers with a deadline
	// should set MaxElapsed to that deadline's span and consult Expired
	// before sleeping for another back-off.
	MaxElapsed sim.Duration
}

// DefaultPolicy matches the deployed system's setup loop: first retry
// after ~2 s, doubling to a 2-minute ceiling, half-jittered, giving up
// after 6 attempts (~1 minute of cumulative waiting).
func DefaultPolicy() Policy {
	return Policy{
		Base:        2 * sim.Second,
		Cap:         2 * sim.Minute,
		Multiplier:  2,
		Jitter:      0.5,
		MaxAttempts: 6,
	}
}

// WithDefaults fills zero fields from DefaultPolicy. A fully zero Policy
// becomes DefaultPolicy.
func (p Policy) WithDefaults() Policy {
	d := DefaultPolicy()
	if p.Base == 0 {
		p.Base = d.Base
	}
	if p.Cap == 0 {
		p.Cap = d.Cap
	}
	if p.Multiplier == 0 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter == 0 {
		p.Jitter = d.Jitter
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	return p
}

// Validate rejects nonsensical policies.
func (p Policy) Validate() error {
	switch {
	case p.Base <= 0:
		return fmt.Errorf("retry: base delay %v must be positive", p.Base)
	case p.Cap < p.Base:
		return fmt.Errorf("retry: cap %v below base %v", p.Cap, p.Base)
	case p.Multiplier < 1:
		return fmt.Errorf("retry: multiplier %v must be >= 1", p.Multiplier)
	case p.Jitter < 0 || p.Jitter > 1:
		return fmt.Errorf("retry: jitter %v outside [0, 1]", p.Jitter)
	case p.MaxAttempts < 1:
		return fmt.Errorf("retry: max attempts %d must be >= 1", p.MaxAttempts)
	case p.MaxElapsed < 0:
		return fmt.Errorf("retry: max elapsed %v must not be negative", p.MaxElapsed)
	}
	return nil
}

// Exhausted reports whether a 0-based attempt counter has used up the
// policy's budget: attempt n is the (n+1)-th try.
func (p Policy) Exhausted(attempt int) bool { return attempt >= p.MaxAttempts }

// Expired reports whether the elapsed-time budget is spent: a retry that
// would run at sim time `at` for an operation whose first attempt
// started at `start` is out of budget once at-start exceeds MaxElapsed.
// A zero MaxElapsed never expires.
func (p Policy) Expired(start, at sim.Time) bool {
	return p.MaxElapsed > 0 && at-start > sim.Time(p.MaxElapsed)
}

// Delay returns the back-off before retry number `retry` (0-based: the
// delay between the first and second attempts is Delay(0, r)). The raw
// delay is Base*Multiplier^retry capped at Cap; the final Jitter fraction
// of it is then drawn uniformly from r. The result never exceeds Cap and
// is always at least 1 ns.
func (p Policy) Delay(retry int, r *rng.Source) sim.Duration {
	if retry < 0 {
		retry = 0
	}
	raw := float64(p.Base)
	for i := 0; i < retry; i++ {
		raw *= p.Multiplier
		if raw >= float64(p.Cap) {
			break
		}
	}
	if raw > float64(p.Cap) {
		raw = float64(p.Cap)
	}
	d := sim.Duration(raw)
	if p.Jitter > 0 && r != nil {
		span := sim.Duration(raw * p.Jitter)
		if span > 0 {
			d = d - span + sim.Duration(r.Int63n(int64(span)+1))
		}
	}
	if d < 1 {
		d = 1
	}
	return d
}

// TotalBudget sums the maximum (un-jittered) delays across all retries —
// an upper bound on how long a caller can spend backing off. Useful for
// sizing phase timeouts.
func (p Policy) TotalBudget() sim.Duration {
	var total sim.Duration
	for i := 0; i < p.MaxAttempts-1; i++ {
		total += p.Delay(i, nil)
	}
	return total
}
