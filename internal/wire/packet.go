package wire

import (
	"fmt"
	"strings"
)

// DecodeOptions control how NewPacket processes data.
type DecodeOptions struct {
	// Lazy defers decoding of each layer until it is requested via Layer
	// or Layers. Lazily decoded packets are not safe for concurrent use.
	Lazy bool
	// NoCopy uses the passed slice directly instead of copying it. The
	// caller must guarantee the slice is never mutated afterwards.
	NoCopy bool
}

// Convenience option sets, mirroring the gopacket names.
var (
	// Default decodes eagerly from a private copy of the data.
	Default = DecodeOptions{}
	// Lazy decodes on demand.
	Lazy = DecodeOptions{Lazy: true}
	// NoCopy decodes eagerly, borrowing the caller's slice.
	NoCopy = DecodeOptions{NoCopy: true}
	// LazyNoCopy combines both (fastest, most caveats).
	LazyNoCopy = DecodeOptions{Lazy: true, NoCopy: true}
)

// Packet is a decoded frame: an ordered stack of layers over a byte
// buffer.
//
// A Packet can be reused across frames with Reset: the layers slice,
// the copy buffer, and every previously allocated layer struct are
// retained in per-type pools, so steady-state decoding through one
// reset packet allocates nothing. Reused layers are only valid until
// the next Reset — callers that keep layer pointers must copy what
// they need first.
type Packet struct {
	data   []byte
	layers []Layer
	// decode state for lazy mode
	nextType LayerType
	rest     []byte
	failure  *DecodeFailure
	// Reuse state (Reset): per-type pools of decoder structs, a use
	// counter per type for frames carrying repeated layers (pseudowire
	// inner Ethernet, MPLS stacks), a reusable copy buffer, and a
	// reusable failure struct.
	pool    [layerTypeMax][]DecodingLayer
	used    [layerTypeMax]uint8
	copyBuf []byte
	failBuf DecodeFailure
	errBuf  DecodeError
}

// DecodeFailure is a pseudo-layer recording a decoding error. The bytes
// that could not be decoded are its contents.
type DecodeFailure struct {
	data []byte
	err  error
}

// LayerType returns LayerTypeDecodeFailure.
func (f *DecodeFailure) LayerType() LayerType { return LayerTypeDecodeFailure }

// LayerContents returns the undecodable bytes.
func (f *DecodeFailure) LayerContents() []byte { return f.data }

// LayerPayload returns nil.
func (f *DecodeFailure) LayerPayload() []byte { return nil }

// Error returns the decode error that produced this failure layer.
func (f *DecodeFailure) Error() error { return f.err }

// NewPacket decodes data beginning with the given first layer type.
// Decoding failures do not produce an error return: layers decoded before
// the failure are retained, and ErrorLayer exposes the failure.
func NewPacket(data []byte, first LayerType, opts DecodeOptions) *Packet {
	p := &Packet{}
	p.Reset(data, first, opts)
	return p
}

// Reset re-arms the packet for a new frame, reusing the layers slice,
// the internal copy buffer, and pooled layer structs from previous
// decodes. It is the zero-allocation path for bulk digestion: one
// packet, Reset per frame. Layers obtained from the packet before the
// Reset are overwritten and must not be retained.
func (p *Packet) Reset(data []byte, first LayerType, opts DecodeOptions) {
	if !opts.NoCopy {
		if cap(p.copyBuf) < len(data) {
			p.copyBuf = make([]byte, len(data))
		}
		p.copyBuf = p.copyBuf[:len(data)]
		copy(p.copyBuf, data)
		data = p.copyBuf
	}
	p.data = data
	p.layers = p.layers[:0]
	p.nextType = first
	p.rest = data
	p.failure = nil
	for i := range p.used {
		p.used[i] = 0
	}
	if !opts.Lazy {
		p.decodeAll()
	}
}

// getDecoder returns a decoder for t, reusing a pooled struct when one
// is free this frame and growing the pool otherwise.
func (p *Packet) getDecoder(t LayerType) DecodingLayer {
	if t <= 0 || t >= layerTypeMax {
		return nil
	}
	if n := p.used[t]; int(n) < len(p.pool[t]) {
		p.used[t]++
		return p.pool[t][n]
	}
	d := newDecoder(t)
	if d == nil {
		return nil
	}
	p.pool[t] = append(p.pool[t], d)
	p.used[t]++
	return d
}

// decodeOne advances decoding by a single layer. Returns false when
// decoding is complete (terminal layer, failure, or no bytes left).
func (p *Packet) decodeOne() bool {
	if p.failure != nil || p.nextType == LayerTypeZero || len(p.rest) == 0 {
		return false
	}
	d := p.getDecoder(p.nextType)
	if d == nil {
		// Unknown next layer: classify remaining bytes as payload.
		d = p.getDecoder(LayerTypePayload)
	}
	if err := d.DecodeFromBytes(p.rest); err != nil {
		p.errBuf = DecodeError{Layer: p.nextType, Err: err}
		p.failBuf = DecodeFailure{data: p.rest, err: &p.errBuf}
		p.failure = &p.failBuf
		p.rest = nil
		p.nextType = LayerTypeZero
		return false
	}
	p.layers = append(p.layers, d)
	p.rest = d.LayerPayload()
	p.nextType = d.NextLayerType()
	return true
}

func (p *Packet) decodeAll() {
	for p.decodeOne() {
	}
}

// Data returns the packet's raw bytes.
func (p *Packet) Data() []byte { return p.data }

// Layers returns every decoded layer, decoding the remainder if lazy.
func (p *Packet) Layers() []Layer {
	p.decodeAll()
	return p.layers
}

// Layer returns the first layer of the given type, or nil. In lazy mode it
// decodes only as far as needed.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	for p.decodeOne() {
		l := p.layers[len(p.layers)-1]
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// ErrorLayer returns the decode-failure pseudo-layer if any part of the
// packet failed to decode, after forcing full decoding.
func (p *Packet) ErrorLayer() *DecodeFailure {
	p.decodeAll()
	return p.failure
}

// LinkLayer returns the first link-level layer (Ethernet), or nil.
func (p *Packet) LinkLayer() Layer {
	return p.Layer(LayerTypeEthernet)
}

// NetworkLayer returns the first IPv4 or IPv6 layer, or nil.
func (p *Packet) NetworkLayer() Layer {
	for _, l := range p.Layers() {
		switch l.LayerType() {
		case LayerTypeIPv4, LayerTypeIPv6:
			return l
		}
	}
	return nil
}

// TransportLayer returns the first TCP or UDP layer, or nil.
func (p *Packet) TransportLayer() Layer {
	for _, l := range p.Layers() {
		switch l.LayerType() {
		case LayerTypeTCP, LayerTypeUDP:
			return l
		}
	}
	return nil
}

// ApplicationLayer returns the first layer above transport (including
// Payload), or nil.
func (p *Packet) ApplicationLayer() Layer {
	seenTransport := false
	for _, l := range p.Layers() {
		switch l.LayerType() {
		case LayerTypeTCP, LayerTypeUDP, LayerTypeICMPv4, LayerTypeICMPv6:
			seenTransport = true
		case LayerTypePayload, LayerTypeDNS, LayerTypeTLS, LayerTypeSSH, LayerTypeHTTP, LayerTypeNTP:
			if seenTransport {
				return l
			}
		}
	}
	return nil
}

// LayerTypes returns the stack of layer types in order — the "abstract
// capture" (acap) representation used by the analysis pipeline.
func (p *Packet) LayerTypes() []LayerType {
	ls := p.Layers()
	ts := make([]LayerType, len(ls))
	for i, l := range ls {
		ts[i] = l.LayerType()
	}
	return ts
}

// String renders the layer stack, e.g.
// "Ethernet/Dot1Q/MPLS/IPv4/TCP/TLS".
func (p *Packet) String() string {
	ts := p.LayerTypes()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.String()
	}
	s := strings.Join(names, "/")
	if p.failure != nil {
		s += fmt.Sprintf("!(%v)", p.failure.err)
	}
	return s
}
