package wire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ICMPv4 is an ICMP (v4) message header.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16 // echo request/reply identifier
	Seq      uint16 // echo request/reply sequence

	contents, payload []byte
}

// ICMPv4 message types seen in testbed traffic.
const (
	ICMPv4TypeEchoReply      = 0
	ICMPv4TypeDestUnreach    = 3
	ICMPv4TypeEchoRequest    = 8
	ICMPv4TypeTimeExceeded   = 11
	icmpv4HeaderLen          = 8
	ICMPv6TypeEchoRequest    = 128
	ICMPv6TypeEchoReply      = 129
	ICMPv6TypeNeighborSolic  = 135
	ICMPv6TypeNeighborAdvert = 136
	icmpv6HeaderLen          = 8
)

// LayerType returns LayerTypeICMPv4.
func (i *ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// LayerContents returns the 8 header bytes.
func (i *ICMPv4) LayerContents() []byte { return i.contents }

// LayerPayload returns the message body.
func (i *ICMPv4) LayerPayload() []byte { return i.payload }

// CanDecode returns LayerTypeICMPv4.
func (i *ICMPv4) CanDecode() LayerType { return LayerTypeICMPv4 }

// NextLayerType returns Payload for non-empty bodies.
func (i *ICMPv4) NextLayerType() LayerType {
	if len(i.payload) == 0 {
		return LayerTypeZero
	}
	return LayerTypePayload
}

// DecodeFromBytes parses the ICMP header.
func (i *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < icmpv4HeaderLen {
		return errTruncated{icmpv4HeaderLen, len(data)}
	}
	i.Type = data[0]
	i.Code = data[1]
	i.Checksum = binary.BigEndian.Uint16(data[2:4])
	i.ID = binary.BigEndian.Uint16(data[4:6])
	i.Seq = binary.BigEndian.Uint16(data[6:8])
	i.contents = data[:icmpv4HeaderLen]
	i.payload = data[icmpv4HeaderLen:]
	return nil
}

// SerializeTo prepends the ICMP header.
func (i *ICMPv4) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(icmpv4HeaderLen)
	if err != nil {
		return err
	}
	bytes[0] = i.Type
	bytes[1] = i.Code
	binary.BigEndian.PutUint16(bytes[4:6], i.ID)
	binary.BigEndian.PutUint16(bytes[6:8], i.Seq)
	binary.BigEndian.PutUint16(bytes[2:4], 0)
	if b.opts.ComputeChecksums {
		i.Checksum = internetChecksum(bytes[:icmpv4HeaderLen+payloadLen], 0)
	}
	binary.BigEndian.PutUint16(bytes[2:4], i.Checksum)
	return nil
}

// ICMPv6 is an ICMPv6 message header.
type ICMPv6 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Body     uint32 // message-specific first word

	contents, payload []byte
}

// LayerType returns LayerTypeICMPv6.
func (i *ICMPv6) LayerType() LayerType { return LayerTypeICMPv6 }

// LayerContents returns the 8 header bytes.
func (i *ICMPv6) LayerContents() []byte { return i.contents }

// LayerPayload returns the message body.
func (i *ICMPv6) LayerPayload() []byte { return i.payload }

// CanDecode returns LayerTypeICMPv6.
func (i *ICMPv6) CanDecode() LayerType { return LayerTypeICMPv6 }

// NextLayerType returns Payload for non-empty bodies.
func (i *ICMPv6) NextLayerType() LayerType {
	if len(i.payload) == 0 {
		return LayerTypeZero
	}
	return LayerTypePayload
}

// DecodeFromBytes parses the ICMPv6 header.
func (i *ICMPv6) DecodeFromBytes(data []byte) error {
	if len(data) < icmpv6HeaderLen {
		return errTruncated{icmpv6HeaderLen, len(data)}
	}
	i.Type = data[0]
	i.Code = data[1]
	i.Checksum = binary.BigEndian.Uint16(data[2:4])
	i.Body = binary.BigEndian.Uint32(data[4:8])
	i.contents = data[:icmpv6HeaderLen]
	i.payload = data[icmpv6HeaderLen:]
	return nil
}

// SerializeTo prepends the ICMPv6 header. (Checksum over the IPv6
// pseudo-header is filled when ComputeChecksums and a network layer are
// set.)
func (i *ICMPv6) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(icmpv6HeaderLen)
	if err != nil {
		return err
	}
	bytes[0] = i.Type
	bytes[1] = i.Code
	binary.BigEndian.PutUint32(bytes[4:8], i.Body)
	binary.BigEndian.PutUint16(bytes[2:4], 0)
	if b.opts.ComputeChecksums && b.netForChecksum != nil {
		sum := b.netForChecksum.pseudoHeaderChecksum(IPProtocolICMPv6, icmpv6HeaderLen+payloadLen)
		i.Checksum = internetChecksum(bytes[:icmpv6HeaderLen+payloadLen], sum)
	}
	binary.BigEndian.PutUint16(bytes[2:4], i.Checksum)
	return nil
}

// ARPHeaderLen is the length of an Ethernet/IPv4 ARP message.
const ARPHeaderLen = 28

// ARP operations.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARP is an Ethernet/IPv4 ARP message.
type ARP struct {
	Operation uint16
	SenderMAC MAC
	SenderIP  netip.Addr
	TargetMAC MAC
	TargetIP  netip.Addr

	contents, payload []byte
}

// LayerType returns LayerTypeARP.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// LayerContents returns the 28 message bytes.
func (a *ARP) LayerContents() []byte { return a.contents }

// LayerPayload returns trailing bytes (usually Ethernet padding).
func (a *ARP) LayerPayload() []byte { return a.payload }

// CanDecode returns LayerTypeARP.
func (a *ARP) CanDecode() LayerType { return LayerTypeARP }

// NextLayerType returns LayerTypeZero; ARP is terminal.
func (a *ARP) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes parses an Ethernet/IPv4 ARP message.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPHeaderLen {
		return errTruncated{ARPHeaderLen, len(data)}
	}
	htype := binary.BigEndian.Uint16(data[0:2])
	ptype := binary.BigEndian.Uint16(data[2:4])
	if htype != 1 || ptype != uint16(EthernetTypeIPv4) {
		return fmt.Errorf("ARP hw/proto = %d/0x%04x, want Ethernet/IPv4", htype, ptype)
	}
	if data[4] != 6 || data[5] != 4 {
		return fmt.Errorf("ARP addr lengths = %d/%d, want 6/4", data[4], data[5])
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	a.contents = data[:ARPHeaderLen]
	a.payload = data[ARPHeaderLen:]
	return nil
}

// SerializeTo prepends the ARP message.
func (a *ARP) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(ARPHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bytes[0:2], 1)
	binary.BigEndian.PutUint16(bytes[2:4], uint16(EthernetTypeIPv4))
	bytes[4], bytes[5] = 6, 4
	binary.BigEndian.PutUint16(bytes[6:8], a.Operation)
	copy(bytes[8:14], a.SenderMAC[:])
	sip := as4(a.SenderIP)
	copy(bytes[14:18], sip[:])
	copy(bytes[18:24], a.TargetMAC[:])
	tip := as4(a.TargetIP)
	copy(bytes[24:28], tip[:])
	return nil
}
