package wire

import (
	"testing"
)

// fabricFrame builds the canonical FABRIC encapsulation from the paper:
// Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv4 / TCP / TLS.
func fabricFrame(t testing.TB) []byte {
	t.Helper()
	tlsPay := Payload(make([]byte, 64))
	return buildFrame(t,
		&Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeDot1Q},
		&Dot1Q{VLANID: 2101, EthernetType: EthernetTypeMPLSUnicast},
		&MPLS{Label: 1000, TTL: 64},
		&MPLS{Label: 2000, StackBottom: true, TTL: 64},
		&PWControlWord{},
		&Ethernet{DstMAC: testSrcMAC, SrcMAC: testDstMAC, EthernetType: EthernetTypeIPv4},
		&IPv4{TTL: 62, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&TCP{SrcPort: 51000, DstPort: 443, DataOffset: 5, Flags: TCPPsh | TCPAck},
		&TLS{RecordType: TLSApplicationData, Version: 0x0303},
		&tlsPay,
	)
}

func TestFabricEncapsulationStack(t *testing.T) {
	p := NewPacket(fabricFrame(t), LayerTypeEthernet, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	want := []LayerType{
		LayerTypeEthernet, LayerTypeDot1Q, LayerTypeMPLS, LayerTypeMPLS,
		LayerTypePWControlWord, LayerTypeEthernet, LayerTypeIPv4,
		LayerTypeTCP, LayerTypeTLS,
	}
	got := p.LayerTypes()
	if len(got) != len(want) {
		t.Fatalf("stack = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stack[%d] = %v, want %v (full %v)", i, got[i], want[i], got)
		}
	}
	if p.String() != "Ethernet/Dot1Q/MPLS/MPLS/PWControlWord/Ethernet/IPv4/TCP/TLS" {
		t.Errorf("String = %q", p.String())
	}
}

func TestFabricIPv6SSHStack(t *testing.T) {
	// The paper's other example: Ethernet/VLAN/MPLS/PseudoWire/Ethernet/IPv6/SSH.
	sshPay := Payload([]byte("SSH-2.0-OpenSSH_9.6\r\n"))
	data := buildFrame(t,
		&Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeDot1Q},
		&Dot1Q{VLANID: 2102, EthernetType: EthernetTypeMPLSUnicast},
		&MPLS{Label: 3000, StackBottom: true, TTL: 64},
		&PWControlWord{},
		&Ethernet{DstMAC: testSrcMAC, SrcMAC: testDstMAC, EthernetType: EthernetTypeIPv6},
		&IPv6{NextHeader: IPProtocolTCP, HopLimit: 60, SrcIP: testSrcIP6, DstIP: testDstIP6},
		&TCP{SrcPort: 54000, DstPort: 22, DataOffset: 5, Flags: TCPPsh | TCPAck},
		&sshPay,
	)
	p := NewPacket(data, LayerTypeEthernet, Default)
	ssh, ok := p.Layer(LayerTypeSSH).(*SSH)
	if !ok {
		t.Fatalf("no SSH layer in %v", p.String())
	}
	if ssh.Banner != "SSH-2.0-OpenSSH_9.6" {
		t.Errorf("banner = %q", ssh.Banner)
	}
	if len(p.LayerTypes()) != 8 {
		t.Errorf("stack depth = %d, want 8: %v", len(p.LayerTypes()), p.String())
	}
}

func TestLazyDecoding(t *testing.T) {
	p := NewPacket(fabricFrame(t), LayerTypeEthernet, Lazy)
	// Asking for IPv4 should decode up to it but not beyond.
	if p.Layer(LayerTypeIPv4) == nil {
		t.Fatal("no IPv4 layer")
	}
	decodedSoFar := len(p.layers)
	if decodedSoFar != 7 {
		t.Errorf("lazy decoded %d layers before stopping, want 7", decodedSoFar)
	}
	// Layers() completes the decode.
	if n := len(p.Layers()); n != 9 {
		t.Errorf("full stack = %d layers", n)
	}
}

func TestNoCopySharesData(t *testing.T) {
	data := fabricFrame(t)
	p := NewPacket(data, LayerTypeEthernet, NoCopy)
	if &p.Data()[0] != &data[0] {
		t.Error("NoCopy should alias caller's slice")
	}
	q := NewPacket(data, LayerTypeEthernet, Default)
	if &q.Data()[0] == &data[0] {
		t.Error("Default should copy")
	}
}

func TestErrorLayerPreservesPrefix(t *testing.T) {
	data := fabricFrame(t)
	// Corrupt the inner IPv4 version nibble.
	// Offsets: 14 eth + 4 vlan + 4 mpls + 4 mpls + 4 cw + 14 eth = 44.
	data[44] = 0x95
	p := NewPacket(data, LayerTypeEthernet, Default)
	fail := p.ErrorLayer()
	if fail == nil {
		t.Fatal("expected decode failure")
	}
	if len(p.Layers()) != 6 {
		t.Errorf("prefix layers = %d, want 6 (%v)", len(p.Layers()), p.String())
	}
	var de *DecodeError
	if !asDecodeError(fail.Error(), &de) {
		t.Fatalf("failure error type = %T", fail.Error())
	}
	if de.Layer != LayerTypeIPv4 {
		t.Errorf("failed layer = %v", de.Layer)
	}
}

func asDecodeError(err error, out **DecodeError) bool {
	for err != nil {
		if de, ok := err.(*DecodeError); ok {
			*out = de
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestTruncatedFrameKeepsPrefix(t *testing.T) {
	data := fabricFrame(t)
	// Snap to 60 bytes as a capture with a small snaplen would.
	p := NewPacket(data[:60], LayerTypeEthernet, Default)
	// Everything through the inner IPv4 should decode; TCP is clipped
	// (inner IPv4 starts at 44, needs 20, ends at 64 > 60).
	types := p.LayerTypes()
	if len(types) < 6 {
		t.Errorf("truncated stack too short: %v", p.String())
	}
	if p.ErrorLayer() == nil {
		t.Error("expected truncation failure layer")
	} else if !IsTruncated(p.ErrorLayer().Error()) {
		t.Errorf("error should be truncation: %v", p.ErrorLayer().Error())
	}
}

func TestHelperAccessors(t *testing.T) {
	p := NewPacket(fabricFrame(t), LayerTypeEthernet, Default)
	if p.LinkLayer() == nil {
		t.Error("no link layer")
	}
	net := p.NetworkLayer()
	if net == nil || net.LayerType() != LayerTypeIPv4 {
		t.Errorf("network layer = %v", net)
	}
	tr := p.TransportLayer()
	if tr == nil || tr.LayerType() != LayerTypeTCP {
		t.Errorf("transport layer = %v", tr)
	}
	app := p.ApplicationLayer()
	if app == nil || app.LayerType() != LayerTypeTLS {
		t.Errorf("application layer = %v", app)
	}
}

func TestUnknownEtherTypeBecomesPayload(t *testing.T) {
	pay := Payload([]byte{1, 2, 3, 4})
	data := buildFrame(t,
		&Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: 0x88B5},
		&pay)
	p := NewPacket(data, LayerTypeEthernet, Default)
	types := p.LayerTypes()
	if len(types) != 2 || types[1] != LayerTypePayload {
		t.Errorf("stack = %v", p.String())
	}
}

func TestEmptyPacket(t *testing.T) {
	p := NewPacket(nil, LayerTypeEthernet, Default)
	if len(p.Layers()) != 0 {
		t.Error("empty packet decoded layers")
	}
	if p.ErrorLayer() != nil {
		t.Error("empty packet should not be an error, just empty")
	}
}

// TestPacketReset proves a reused packet decodes exactly like a fresh
// one — across frames with repeated layer types, decode failures, and
// copy/no-copy modes — and that its layer structs really are pooled.
func TestPacketReset(t *testing.T) {
	frames := [][]byte{
		fabricFrame(t),
		fabricFrame(t)[:60],  // truncated mid-stack: decode failure path
		fabricFrame(t),       // full frame again after a failure
		{0x01, 0x02},         // garbage: fails at Ethernet
		fabricFrame(t)[:120], // truncated deeper
	}
	for _, opts := range []DecodeOptions{Default, Lazy, NoCopy, LazyNoCopy} {
		reused := &Packet{}
		for i, data := range frames {
			fresh := NewPacket(data, LayerTypeEthernet, Default)
			reused.Reset(data, LayerTypeEthernet, opts)
			if got, want := reused.String(), fresh.String(); got != want {
				t.Fatalf("opts %+v frame %d: reused %q, fresh %q", opts, i, got, want)
			}
			gf, ff := reused.ErrorLayer(), fresh.ErrorLayer()
			if (gf == nil) != (ff == nil) {
				t.Fatalf("opts %+v frame %d: failure mismatch: reused %v fresh %v", opts, i, gf, ff)
			}
			if gf != nil && IsTruncated(gf.Error()) != IsTruncated(ff.Error()) {
				t.Fatalf("opts %+v frame %d: truncation classification diverged", opts, i)
			}
		}
	}
}

// TestPacketResetPoolsRepeatedLayers checks the pool hands out distinct
// structs for repeated layer types within one frame (two Ethernet, two
// MPLS in the pseudowire stack) and reuses them on the next frame.
func TestPacketResetPoolsRepeatedLayers(t *testing.T) {
	data := fabricFrame(t)
	p := &Packet{}
	p.Reset(data, LayerTypeEthernet, NoCopy)
	ls := p.Layers()
	var eths []Layer
	for _, l := range ls {
		if l.LayerType() == LayerTypeEthernet {
			eths = append(eths, l)
		}
	}
	if len(eths) != 2 || eths[0] == eths[1] {
		t.Fatalf("want 2 distinct pooled Ethernet layers, got %d", len(eths))
	}
	outer := eths[0]
	p.Reset(data, LayerTypeEthernet, NoCopy)
	if p.Layers()[0] != outer {
		t.Fatalf("outer Ethernet struct was not reused across Reset")
	}
}

// BenchmarkPacketReset measures the pooled digest path on the canonical
// deep-encapsulation frame; steady state must be allocation-free.
func BenchmarkPacketReset(b *testing.B) {
	data := fabricFrame(b)
	p := &Packet{}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		p.Reset(data, LayerTypeEthernet, NoCopy)
		if p.Layers() == nil {
			b.Fatal("no layers")
		}
	}
}
