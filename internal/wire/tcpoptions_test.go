package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseOptionsMSSWScale(t *testing.T) {
	opts, err := BuildOptions(
		TCPOption{Kind: TCPOptionMSS, Data: []byte{0x23, 0x28}}, // 9000
		TCPOption{Kind: TCPOptionWindowScale, Data: []byte{7}},
		TCPOption{Kind: TCPOptionSACKPermitted},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts)%4 != 0 {
		t.Fatalf("options not aligned: %d", len(opts))
	}
	tcp := &TCP{Options: opts}
	parsed, err := tcp.ParseOptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 3 {
		t.Fatalf("parsed = %+v", parsed)
	}
	mss, ok := tcp.MSS()
	if !ok || mss != 9000 {
		t.Errorf("MSS = %d/%v", mss, ok)
	}
	ws, ok := tcp.WindowScale()
	if !ok || ws != 7 {
		t.Errorf("WScale = %d/%v", ws, ok)
	}
}

func TestSACKBlocks(t *testing.T) {
	data := make([]byte, 16)
	put := func(i int, v uint32) {
		data[i] = byte(v >> 24)
		data[i+1] = byte(v >> 16)
		data[i+2] = byte(v >> 8)
		data[i+3] = byte(v)
	}
	put(0, 100)
	put(4, 200)
	put(8, 300)
	put(12, 400)
	opts, err := BuildOptions(TCPOption{Kind: TCPOptionSACK, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	tcp := &TCP{Options: opts}
	blocks, ok := tcp.SACKBlocks()
	if !ok || len(blocks) != 2 {
		t.Fatalf("blocks = %v/%v", blocks, ok)
	}
	if blocks[0] != (SACKBlock{100, 200}) || blocks[1] != (SACKBlock{300, 400}) {
		t.Errorf("blocks = %v", blocks)
	}
}

func TestParseOptionsMalformed(t *testing.T) {
	tcp := &TCP{Options: []byte{byte(TCPOptionMSS)}} // truncated
	if _, err := tcp.ParseOptions(); err == nil {
		t.Error("truncated option should fail")
	}
	tcp.Options = []byte{byte(TCPOptionMSS), 1, 0, 0} // length < 2
	if _, err := tcp.ParseOptions(); err == nil {
		t.Error("undersized length should fail")
	}
	tcp.Options = []byte{byte(TCPOptionMSS), 200} // length > available
	if _, err := tcp.ParseOptions(); err == nil {
		t.Error("oversized length should fail")
	}
}

func TestParseOptionsEOLStops(t *testing.T) {
	tcp := &TCP{Options: []byte{
		byte(TCPOptionNop),
		byte(TCPOptionEndOfList),
		byte(TCPOptionMSS), 4, 0x05, 0xB4, // after EOL: ignored
	}}
	parsed, err := tcp.ParseOptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 0 {
		t.Errorf("options after EOL parsed: %+v", parsed)
	}
	if _, ok := tcp.MSS(); ok {
		t.Error("MSS after EOL should be invisible")
	}
}

func TestOptionsRoundTripThroughSegment(t *testing.T) {
	opts, err := BuildOptions(TCPOption{Kind: TCPOptionMSS, Data: []byte{0x05, 0xB4}})
	if err != nil {
		t.Fatal(err)
	}
	pay := Payload([]byte("x"))
	data := buildFrame(t,
		&IPv4{TTL: 3, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&TCP{SrcPort: 1, DstPort: 2, Flags: TCPSyn, Options: opts},
		&pay)
	var ip IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	mss, ok := tcp.MSS()
	if !ok || mss != 1460 {
		t.Errorf("round-tripped MSS = %d/%v", mss, ok)
	}
}

func TestBuildOptionsTooLong(t *testing.T) {
	if _, err := BuildOptions(TCPOption{Kind: TCPOptionSACK, Data: make([]byte, 300)}); err == nil {
		t.Error("oversized option should fail")
	}
}

func TestParseOptionsNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseOptions panicked: %v", r)
			}
		}()
		tcp := &TCP{Options: raw}
		_, _ = tcp.ParseOptions()
		_, _ = tcp.MSS()
		_, _ = tcp.SACKBlocks()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBuildParsePropertyRoundTrip(t *testing.T) {
	f := func(mssVal uint16, wsVal uint8) bool {
		opts, err := BuildOptions(
			TCPOption{Kind: TCPOptionMSS, Data: []byte{byte(mssVal >> 8), byte(mssVal)}},
			TCPOption{Kind: TCPOptionWindowScale, Data: []byte{wsVal}},
		)
		if err != nil {
			return false
		}
		tcp := &TCP{Options: opts}
		m, ok1 := tcp.MSS()
		w, ok2 := tcp.WindowScale()
		return ok1 && ok2 && m == mssVal && w == wsVal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptionKindStrings(t *testing.T) {
	if TCPOptionMSS.String() != "MSS" || TCPOptionSACK.String() != "SACK" {
		t.Error("kind names")
	}
	if !bytes.Contains([]byte(TCPOptionKind(99).String()), []byte("99")) {
		t.Error("unknown kind name")
	}
}
