package wire

import "fmt"

// SerializeOptions control serialization behaviour.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IP total length, UDP length,
	// TCP data offset) from actual payload sizes.
	FixLengths bool
	// ComputeChecksums fills in IP/TCP/UDP/ICMP checksums.
	ComputeChecksums bool
}

// SerializableLayer is a layer that can write itself into a
// SerializeBuffer.
type SerializableLayer interface {
	// SerializeTo prepends this layer onto the buffer, treating the
	// buffer's current contents as its payload.
	SerializeTo(b *SerializeBuffer) error
	// LayerType identifies the layer being serialized.
	LayerType() LayerType
}

// networkForChecksum is implemented by IPv4 and IPv6 to supply the
// pseudo-header partial sum for transport checksums.
type networkForChecksum interface {
	pseudoHeaderChecksum(proto IPProtocol, length int) uint32
}

// tailReserve is the room Clear leaves after the write position so that
// trailers and minimum-frame padding can usually be appended without
// growing storage.
const tailReserve = 256

// SerializeBuffer accumulates packet bytes back-to-front: each layer
// prepends its header in front of the payload serialized so far. Trailers
// and padding can be appended at the back.
type SerializeBuffer struct {
	store      []byte
	start, end int // current bytes are store[start:end]

	opts           SerializeOptions
	netForChecksum networkForChecksum
}

// NewSerializeBuffer returns an empty buffer with a reasonable default
// capacity for jumbo frames.
func NewSerializeBuffer() *SerializeBuffer {
	return NewSerializeBufferExpectedSize(EthernetJumboMax)
}

// NewSerializeBufferExpectedSize pre-allocates for packets of about the
// given size.
func NewSerializeBufferExpectedSize(n int) *SerializeBuffer {
	if n < 0 {
		n = 0
	}
	b := &SerializeBuffer{store: make([]byte, n+tailReserve)}
	b.Clear()
	return b
}

// Bytes returns the serialized packet so far.
func (b *SerializeBuffer) Bytes() []byte { return b.store[b.start:b.end] }

// Clear resets the buffer for reuse.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.store) - tailReserve
	if b.start < 0 {
		b.start = 0
	}
	b.end = b.start
	b.netForChecksum = nil
}

// PrependBytes grows the front of the buffer by n bytes and returns the
// new region for the caller to fill.
func (b *SerializeBuffer) PrependBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("wire: prepend negative size %d", n)
	}
	if n > b.start {
		// Grow storage, shifting current bytes toward the tail to open
		// prepend headroom.
		shift := n - b.start + len(b.store)
		ns := make([]byte, len(b.store)+shift)
		copy(ns[b.start+shift:b.end+shift], b.store[b.start:b.end])
		b.store = ns
		b.start += shift
		b.end += shift
	}
	b.start -= n
	return b.store[b.start : b.start+n], nil
}

// AppendBytes grows the back of the buffer by n bytes (used for trailers
// and padding) and returns the new region.
func (b *SerializeBuffer) AppendBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("wire: append negative size %d", n)
	}
	if b.end+n > len(b.store) {
		ns := make([]byte, len(b.store)+n+tailReserve)
		copy(ns[b.start:b.end], b.store[b.start:b.end])
		b.store = ns
	}
	b.end += n
	return b.store[b.end-n : b.end], nil
}

// SerializeLayers clears the buffer and serializes the given layers in
// order (outermost first), applying opts. Transport checksums use the
// nearest enclosing IPv4/IPv6 layer's pseudo-header.
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	b.Clear()
	b.opts = opts
	// Serialize back-to-front. Before serializing each layer, point the
	// checksum context at the closest network layer above it.
	for i := len(layers) - 1; i >= 0; i-- {
		b.netForChecksum = nil
		for j := i - 1; j >= 0; j-- {
			if n, ok := layers[j].(networkForChecksum); ok {
				b.netForChecksum = n
				break
			}
		}
		if err := layers[i].SerializeTo(b); err != nil {
			return fmt.Errorf("wire: serializing %v: %w", layers[i].LayerType(), err)
		}
	}
	return nil
}

// PadToMinimumFrame appends zero bytes so the buffer meets the Ethernet
// minimum frame size (64 bytes including a notional 4-byte FCS, so 60
// bytes of header+payload).
func PadToMinimumFrame(b *SerializeBuffer) error {
	const minNoFCS = EthernetMinFrame - 4
	if n := len(b.Bytes()); n < minNoFCS {
		pad, err := b.AppendBytes(minNoFCS - n)
		if err != nil {
			return err
		}
		for i := range pad {
			pad[i] = 0
		}
	}
	return nil
}
