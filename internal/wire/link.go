package wire

import (
	"encoding/binary"
	"fmt"
)

// EthernetType is an Ethernet II frame's EtherType field.
type EthernetType uint16

// EtherTypes used on FABRIC.
const (
	EthernetTypeIPv4        EthernetType = 0x0800
	EthernetTypeARP         EthernetType = 0x0806
	EthernetTypeDot1Q       EthernetType = 0x8100
	EthernetTypeIPv6        EthernetType = 0x86DD
	EthernetTypeMPLSUnicast EthernetType = 0x8847
	EthernetTypeQinQ        EthernetType = 0x88A8
)

// LayerType maps the EtherType to the wire layer type that decodes it.
func (t EthernetType) LayerType() LayerType {
	switch t {
	case EthernetTypeIPv4:
		return LayerTypeIPv4
	case EthernetTypeARP:
		return LayerTypeARP
	case EthernetTypeDot1Q, EthernetTypeQinQ:
		return LayerTypeDot1Q
	case EthernetTypeIPv6:
		return LayerTypeIPv6
	case EthernetTypeMPLSUnicast:
		return LayerTypeMPLS
	default:
		return LayerTypePayload
	}
}

// String names well-known EtherTypes.
func (t EthernetType) String() string {
	switch t {
	case EthernetTypeIPv4:
		return "IPv4"
	case EthernetTypeARP:
		return "ARP"
	case EthernetTypeDot1Q:
		return "802.1Q"
	case EthernetTypeQinQ:
		return "QinQ"
	case EthernetTypeIPv6:
		return "IPv6"
	case EthernetTypeMPLSUnicast:
		return "MPLS"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// MAC is a 6-byte Ethernet hardware address.
type MAC [6]byte

// String renders the conventional colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EthernetHeaderLen is the length of an Ethernet II header (no FCS).
const EthernetHeaderLen = 14

// EthernetMinFrame and EthernetJumboMax bound valid frame sizes on FABRIC;
// the testbed's switches are configured for jumbo frames throughout.
const (
	EthernetMinFrame = 64
	EthernetJumboMax = 9216
)

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	DstMAC, SrcMAC MAC
	EthernetType   EthernetType

	contents, payload []byte
}

// LayerType returns LayerTypeEthernet.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerContents returns the 14 header bytes.
func (e *Ethernet) LayerContents() []byte { return e.contents }

// LayerPayload returns the bytes after the header.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// CanDecode returns LayerTypeEthernet.
func (e *Ethernet) CanDecode() LayerType { return LayerTypeEthernet }

// NextLayerType is derived from the EtherType.
func (e *Ethernet) NextLayerType() LayerType { return e.EthernetType.LayerType() }

// DecodeFromBytes parses an Ethernet II header.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return errTruncated{EthernetHeaderLen, len(data)}
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EthernetType = EthernetType(binary.BigEndian.Uint16(data[12:14]))
	e.contents = data[:EthernetHeaderLen]
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// LinkFlow returns the src->dst MAC flow.
func (e *Ethernet) LinkFlow() Flow {
	return NewFlow(NewMACEndpoint(e.SrcMAC), NewMACEndpoint(e.DstMAC))
}

// SerializeTo prepends the Ethernet header.
func (e *Ethernet) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(EthernetHeaderLen)
	if err != nil {
		return err
	}
	copy(bytes[0:6], e.DstMAC[:])
	copy(bytes[6:12], e.SrcMAC[:])
	binary.BigEndian.PutUint16(bytes[12:14], uint16(e.EthernetType))
	return nil
}

// Dot1Q is an IEEE 802.1Q VLAN tag. FABRIC's underlay tags slices' traffic
// with VLANs, so these appear on nearly every mirrored frame.
type Dot1Q struct {
	Priority     uint8 // PCP, 3 bits
	DropEligible bool  // DEI
	VLANID       uint16
	EthernetType EthernetType

	contents, payload []byte
}

// Dot1QHeaderLen is the 802.1Q tag length after the EtherType that
// announced it.
const Dot1QHeaderLen = 4

// LayerType returns LayerTypeDot1Q.
func (d *Dot1Q) LayerType() LayerType { return LayerTypeDot1Q }

// LayerContents returns the 4 tag bytes.
func (d *Dot1Q) LayerContents() []byte { return d.contents }

// LayerPayload returns the bytes after the tag.
func (d *Dot1Q) LayerPayload() []byte { return d.payload }

// CanDecode returns LayerTypeDot1Q.
func (d *Dot1Q) CanDecode() LayerType { return LayerTypeDot1Q }

// NextLayerType is derived from the inner EtherType.
func (d *Dot1Q) NextLayerType() LayerType { return d.EthernetType.LayerType() }

// DecodeFromBytes parses a VLAN tag.
func (d *Dot1Q) DecodeFromBytes(data []byte) error {
	if len(data) < Dot1QHeaderLen {
		return errTruncated{Dot1QHeaderLen, len(data)}
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	d.Priority = uint8(tci >> 13)
	d.DropEligible = tci&0x1000 != 0
	d.VLANID = tci & 0x0FFF
	d.EthernetType = EthernetType(binary.BigEndian.Uint16(data[2:4]))
	d.contents = data[:Dot1QHeaderLen]
	d.payload = data[Dot1QHeaderLen:]
	return nil
}

// SerializeTo prepends the VLAN tag.
func (d *Dot1Q) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(Dot1QHeaderLen)
	if err != nil {
		return err
	}
	tci := uint16(d.Priority)<<13 | d.VLANID&0x0FFF
	if d.DropEligible {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(bytes[0:2], tci)
	binary.BigEndian.PutUint16(bytes[2:4], uint16(d.EthernetType))
	return nil
}

// MPLS is one entry of an MPLS label stack. FABRIC's inter-site underlay
// encapsulates slice traffic in one or more MPLS labels, often terminating
// in an Ethernet pseudowire.
type MPLS struct {
	Label        uint32 // 20 bits
	TrafficClass uint8  // 3 bits
	StackBottom  bool   // S bit
	TTL          uint8

	contents, payload []byte
}

// MPLSHeaderLen is the length of one label-stack entry.
const MPLSHeaderLen = 4

// LayerType returns LayerTypeMPLS.
func (m *MPLS) LayerType() LayerType { return LayerTypeMPLS }

// LayerContents returns the 4 label bytes.
func (m *MPLS) LayerContents() []byte { return m.contents }

// LayerPayload returns the bytes after this label entry.
func (m *MPLS) LayerPayload() []byte { return m.payload }

// CanDecode returns LayerTypeMPLS.
func (m *MPLS) CanDecode() LayerType { return LayerTypeMPLS }

// NextLayerType uses the S bit and the standard first-nibble heuristic:
// below the bottom of stack, 0x4 means IPv4, 0x6 means IPv6, and 0x0 is a
// pseudowire control word (Ethernet over MPLS).
func (m *MPLS) NextLayerType() LayerType {
	if !m.StackBottom {
		return LayerTypeMPLS
	}
	if len(m.payload) == 0 {
		return LayerTypeZero
	}
	switch m.payload[0] >> 4 {
	case 4:
		return LayerTypeIPv4
	case 6:
		return LayerTypeIPv6
	case 0:
		return LayerTypePWControlWord
	default:
		return LayerTypePayload
	}
}

// DecodeFromBytes parses one label-stack entry.
func (m *MPLS) DecodeFromBytes(data []byte) error {
	if len(data) < MPLSHeaderLen {
		return errTruncated{MPLSHeaderLen, len(data)}
	}
	v := binary.BigEndian.Uint32(data[0:4])
	m.Label = v >> 12
	m.TrafficClass = uint8(v>>9) & 0x7
	m.StackBottom = v&0x100 != 0
	m.TTL = uint8(v)
	m.contents = data[:MPLSHeaderLen]
	m.payload = data[MPLSHeaderLen:]
	return nil
}

// SerializeTo prepends the label entry.
func (m *MPLS) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(MPLSHeaderLen)
	if err != nil {
		return err
	}
	v := m.Label<<12 | uint32(m.TrafficClass&0x7)<<9 | uint32(m.TTL)
	if m.StackBottom {
		v |= 0x100
	}
	binary.BigEndian.PutUint32(bytes[0:4], v)
	return nil
}

// PWControlWord is the 4-byte Ethernet pseudowire control word (RFC 4448)
// that sits between the MPLS bottom-of-stack label and the encapsulated
// Ethernet frame. Its first nibble is zero, which is how MPLS decoding
// distinguishes it from an IP packet.
type PWControlWord struct {
	Flags          uint8  // 4 bits after the zero nibble
	FragmentBits   uint8  // 2 bits
	Length         uint8  // 6 bits
	SequenceNumber uint16 // 16 bits

	contents, payload []byte
}

// PWControlWordLen is the control word's length.
const PWControlWordLen = 4

// LayerType returns LayerTypePWControlWord.
func (p *PWControlWord) LayerType() LayerType { return LayerTypePWControlWord }

// LayerContents returns the 4 control-word bytes.
func (p *PWControlWord) LayerContents() []byte { return p.contents }

// LayerPayload returns the encapsulated frame bytes.
func (p *PWControlWord) LayerPayload() []byte { return p.payload }

// CanDecode returns LayerTypePWControlWord.
func (p *PWControlWord) CanDecode() LayerType { return LayerTypePWControlWord }

// NextLayerType returns LayerTypeEthernet: an Ethernet pseudowire always
// carries an Ethernet frame.
func (p *PWControlWord) NextLayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes parses the control word. A non-zero first nibble is an
// error: that would be an IP packet, not a control word.
func (p *PWControlWord) DecodeFromBytes(data []byte) error {
	if len(data) < PWControlWordLen {
		return errTruncated{PWControlWordLen, len(data)}
	}
	if data[0]>>4 != 0 {
		return fmt.Errorf("pseudowire control word first nibble = %d, want 0", data[0]>>4)
	}
	p.Flags = data[0] & 0x0F
	p.FragmentBits = data[1] >> 6
	p.Length = data[1] & 0x3F
	p.SequenceNumber = binary.BigEndian.Uint16(data[2:4])
	p.contents = data[:PWControlWordLen]
	p.payload = data[PWControlWordLen:]
	return nil
}

// SerializeTo prepends the control word.
func (p *PWControlWord) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(PWControlWordLen)
	if err != nil {
		return err
	}
	bytes[0] = p.Flags & 0x0F
	bytes[1] = p.FragmentBits<<6 | p.Length&0x3F
	binary.BigEndian.PutUint16(bytes[2:4], p.SequenceNumber)
	return nil
}

// VXLAN is a VXLAN encapsulation header (RFC 7348); some FABRIC
// experiments build overlay networks with it.
type VXLAN struct {
	ValidIDFlag bool
	VNI         uint32 // 24 bits

	contents, payload []byte
}

// VXLANHeaderLen is the VXLAN header length.
const VXLANHeaderLen = 8

// LayerType returns LayerTypeVXLAN.
func (v *VXLAN) LayerType() LayerType { return LayerTypeVXLAN }

// LayerContents returns the 8 header bytes.
func (v *VXLAN) LayerContents() []byte { return v.contents }

// LayerPayload returns the encapsulated frame.
func (v *VXLAN) LayerPayload() []byte { return v.payload }

// CanDecode returns LayerTypeVXLAN.
func (v *VXLAN) CanDecode() LayerType { return LayerTypeVXLAN }

// NextLayerType returns LayerTypeEthernet.
func (v *VXLAN) NextLayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes parses the VXLAN header.
func (v *VXLAN) DecodeFromBytes(data []byte) error {
	if len(data) < VXLANHeaderLen {
		return errTruncated{VXLANHeaderLen, len(data)}
	}
	v.ValidIDFlag = data[0]&0x08 != 0
	v.VNI = binary.BigEndian.Uint32(data[4:8]) >> 8
	v.contents = data[:VXLANHeaderLen]
	v.payload = data[VXLANHeaderLen:]
	return nil
}

// SerializeTo prepends the VXLAN header.
func (v *VXLAN) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(VXLANHeaderLen)
	if err != nil {
		return err
	}
	for i := range bytes {
		bytes[i] = 0
	}
	if v.ValidIDFlag {
		bytes[0] = 0x08
	}
	binary.BigEndian.PutUint32(bytes[4:8], v.VNI<<8)
	return nil
}

// GRE is a minimal GRE header (RFC 2784, no optional fields).
type GRE struct {
	Protocol EthernetType

	contents, payload []byte
}

// GREHeaderLen is the base GRE header length.
const GREHeaderLen = 4

// LayerType returns LayerTypeGRE.
func (g *GRE) LayerType() LayerType { return LayerTypeGRE }

// LayerContents returns the header bytes.
func (g *GRE) LayerContents() []byte { return g.contents }

// LayerPayload returns the encapsulated packet.
func (g *GRE) LayerPayload() []byte { return g.payload }

// CanDecode returns LayerTypeGRE.
func (g *GRE) CanDecode() LayerType { return LayerTypeGRE }

// NextLayerType derives from the GRE protocol field.
func (g *GRE) NextLayerType() LayerType { return g.Protocol.LayerType() }

// DecodeFromBytes parses a base GRE header. Headers with optional fields
// (checksum/key/sequence bits) are rejected as unsupported.
func (g *GRE) DecodeFromBytes(data []byte) error {
	if len(data) < GREHeaderLen {
		return errTruncated{GREHeaderLen, len(data)}
	}
	if data[0]&0xB0 != 0 {
		return fmt.Errorf("GRE optional fields unsupported (flags 0x%02x)", data[0])
	}
	g.Protocol = EthernetType(binary.BigEndian.Uint16(data[2:4]))
	g.contents = data[:GREHeaderLen]
	g.payload = data[GREHeaderLen:]
	return nil
}

// SerializeTo prepends the GRE header.
func (g *GRE) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(GREHeaderLen)
	if err != nil {
		return err
	}
	bytes[0], bytes[1] = 0, 0
	binary.BigEndian.PutUint16(bytes[2:4], uint16(g.Protocol))
	return nil
}
