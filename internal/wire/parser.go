package wire

import "fmt"

// ErrUnsupportedLayer is returned by DecodingLayerParser when it reaches a
// layer type it has no decoder for. Layers decoded before the stop remain
// valid in the caller's decoded slice.
type ErrUnsupportedLayer struct {
	LayerType LayerType
}

func (e ErrUnsupportedLayer) Error() string {
	return fmt.Sprintf("wire: no decoder registered for %v", e.LayerType)
}

// DecodingLayerParser decodes packet data into caller-owned layer structs
// without allocating. This is the capture fast path: Patchwork's
// DPDK-style pipeline decodes millions of frames per second through one of
// these, reusing the same layer values for every frame.
//
// Like its gopacket namesake, the parser stops (with ErrUnsupportedLayer)
// when it encounters a layer type that was not registered; the decoded
// slice reports how far it got.
type DecodingLayerParser struct {
	first    LayerType
	decoders [layerTypeMax]DecodingLayer
	// Truncated is set after each DecodeLayers call when decoding stopped
	// because the data ran out rather than because of a protocol error.
	Truncated bool
}

// NewDecodingLayerParser builds a parser starting at first with the given
// decoding layers registered.
func NewDecodingLayerParser(first LayerType, layers ...DecodingLayer) *DecodingLayerParser {
	p := &DecodingLayerParser{first: first}
	for _, l := range layers {
		p.AddDecodingLayer(l)
	}
	return p
}

// AddDecodingLayer registers an additional decoding layer.
func (p *DecodingLayerParser) AddDecodingLayer(l DecodingLayer) {
	t := l.CanDecode()
	if t <= 0 || t >= layerTypeMax {
		panic(fmt.Sprintf("wire: cannot register decoder for %v", t))
	}
	p.decoders[t] = l
}

// DecodeLayers decodes data, appending each decoded layer's type to
// *decoded (which is truncated first). It stops at the first unregistered
// layer type (returning ErrUnsupportedLayer), at a terminal layer, or on a
// decode error.
func (p *DecodingLayerParser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	typ := p.first
	for typ != LayerTypeZero && len(data) > 0 {
		d := p.decoders[typ]
		if d == nil {
			return ErrUnsupportedLayer{typ}
		}
		if err := d.DecodeFromBytes(data); err != nil {
			if IsTruncated(err) {
				p.Truncated = true
			}
			return &DecodeError{Layer: typ, Err: err}
		}
		*decoded = append(*decoded, typ)
		data = d.LayerPayload()
		typ = d.NextLayerType()
	}
	return nil
}
