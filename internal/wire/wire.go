// Package wire implements packet decoding and serialization for the
// protocol stacks observed on FABRIC's network: Ethernet, 802.1Q VLAN,
// MPLS, Ethernet pseudowires, IPv4/IPv6, TCP/UDP/ICMP/ARP, and the
// application protocols the Patchwork analysis pipeline classifies (DNS,
// TLS, SSH, HTTP, NTP). Its API follows the layering idiom popularized by
// gopacket — Layer, Packet, DecodingLayerParser, SerializeBuffer — but is
// implemented from scratch on the standard library alone.
//
// Two decode paths are provided:
//
//   - NewPacket: allocates a Packet holding a []Layer, supporting lazy and
//     no-copy decoding. Versatile; used by the offline analysis pipeline.
//   - DecodingLayerParser: decodes into caller-owned layer structs with no
//     allocation. Used on the capture fast path.
package wire

import (
	"fmt"
)

// LayerType identifies a protocol layer. The zero value is invalid.
type LayerType int

// Layer types known to this package.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeDot1Q
	LayerTypeMPLS
	LayerTypePWControlWord
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeIPv6HopByHop
	LayerTypeIPv6Fragment
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypeICMPv6
	LayerTypeARP
	LayerTypeDNS
	LayerTypeTLS
	LayerTypeSSH
	LayerTypeHTTP
	LayerTypeNTP
	LayerTypeVXLAN
	LayerTypeGRE
	LayerTypePayload
	LayerTypeDecodeFailure
	layerTypeMax // sentinel; keep last
)

// LayerTypeCount is the number of layer-type values (including the zero
// value); valid types are in [1, LayerTypeCount). Useful for sizing
// per-type arrays outside this package.
const LayerTypeCount = int(layerTypeMax)

var layerTypeNames = [...]string{
	LayerTypeZero:          "Zero",
	LayerTypeEthernet:      "Ethernet",
	LayerTypeDot1Q:         "Dot1Q",
	LayerTypeMPLS:          "MPLS",
	LayerTypePWControlWord: "PWControlWord",
	LayerTypeIPv4:          "IPv4",
	LayerTypeIPv6:          "IPv6",
	LayerTypeIPv6HopByHop:  "IPv6HopByHop",
	LayerTypeIPv6Fragment:  "IPv6Fragment",
	LayerTypeTCP:           "TCP",
	LayerTypeUDP:           "UDP",
	LayerTypeICMPv4:        "ICMPv4",
	LayerTypeICMPv6:        "ICMPv6",
	LayerTypeARP:           "ARP",
	LayerTypeDNS:           "DNS",
	LayerTypeTLS:           "TLS",
	LayerTypeSSH:           "SSH",
	LayerTypeHTTP:          "HTTP",
	LayerTypeNTP:           "NTP",
	LayerTypeVXLAN:         "VXLAN",
	LayerTypeGRE:           "GRE",
	LayerTypePayload:       "Payload",
	LayerTypeDecodeFailure: "DecodeFailure",
}

// String returns the layer type's protocol name.
func (t LayerType) String() string {
	if t > 0 && int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is one decoded protocol layer within a packet.
type Layer interface {
	// LayerType identifies the protocol of this layer.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries (everything after
	// the header).
	LayerPayload() []byte
}

// DecodingLayer is a Layer that can decode itself from bytes, for use with
// DecodingLayerParser and the Packet decoder. Implementations overwrite
// their fields on each DecodeFromBytes call.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver. The receiver keeps
	// references into data; callers must not mutate it while the layer is
	// in use.
	DecodeFromBytes(data []byte) error
	// CanDecode reports the layer type this decoder handles.
	CanDecode() LayerType
	// NextLayerType reports the type of the layer encapsulated by this
	// one, or LayerTypePayload/LayerTypeZero when unknown or absent.
	NextLayerType() LayerType
}

// DecodeError describes a failure to decode a layer. The successfully
// decoded layers preceding the failure remain available on the Packet.
type DecodeError struct {
	Layer LayerType // the layer being decoded when the failure occurred
	Err   error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: decoding %v: %v", e.Layer, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// errTruncated is the common cause for decode errors on short frames
// (frequent in Patchwork captures because frames are truncated to the
// configured snap length).
type errTruncated struct {
	want, have int
}

func (e errTruncated) Error() string {
	return fmt.Sprintf("truncated: need %d bytes, have %d", e.want, e.have)
}

// IsTruncated reports whether err is (or wraps) a truncation error. The
// analysis pipeline uses this to distinguish snap-length artifacts from
// malformed traffic.
func IsTruncated(err error) bool {
	for err != nil {
		if _, ok := err.(errTruncated); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// newDecoder returns a fresh DecodingLayer for the given type, or nil if
// the type has no registered decoder.
func newDecoder(t LayerType) DecodingLayer {
	switch t {
	case LayerTypeEthernet:
		return &Ethernet{}
	case LayerTypeDot1Q:
		return &Dot1Q{}
	case LayerTypeMPLS:
		return &MPLS{}
	case LayerTypePWControlWord:
		return &PWControlWord{}
	case LayerTypeIPv4:
		return &IPv4{}
	case LayerTypeIPv6:
		return &IPv6{}
	case LayerTypeIPv6HopByHop:
		return &IPv6HopByHop{}
	case LayerTypeIPv6Fragment:
		return &IPv6Fragment{}
	case LayerTypeTCP:
		return &TCP{}
	case LayerTypeUDP:
		return &UDP{}
	case LayerTypeICMPv4:
		return &ICMPv4{}
	case LayerTypeICMPv6:
		return &ICMPv6{}
	case LayerTypeARP:
		return &ARP{}
	case LayerTypeDNS:
		return &DNS{}
	case LayerTypeTLS:
		return &TLS{}
	case LayerTypeSSH:
		return &SSH{}
	case LayerTypeHTTP:
		return &HTTP{}
	case LayerTypeNTP:
		return &NTP{}
	case LayerTypeVXLAN:
		return &VXLAN{}
	case LayerTypeGRE:
		return &GRE{}
	case LayerTypePayload:
		p := Payload{}
		return &p
	default:
		return nil
	}
}

// Payload is a terminal layer holding unclassified bytes.
type Payload []byte

// LayerType returns LayerTypePayload.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents returns the payload bytes.
func (p *Payload) LayerContents() []byte { return *p }

// LayerPayload returns nil; Payload is terminal.
func (p *Payload) LayerPayload() []byte { return nil }

// DecodeFromBytes stores data as the payload.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// CanDecode returns LayerTypePayload.
func (p *Payload) CanDecode() LayerType { return LayerTypePayload }

// NextLayerType returns LayerTypeZero; Payload is terminal.
func (p *Payload) NextLayerType() LayerType { return LayerTypeZero }

// SerializeTo appends the payload bytes.
func (p *Payload) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(len(*p))
	if err != nil {
		return err
	}
	copy(bytes, *p)
	return nil
}
