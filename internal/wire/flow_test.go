package wire

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestEndpointEquality(t *testing.T) {
	a := NewIPEndpoint(netip.MustParseAddr("10.0.0.1"))
	b := NewIPEndpoint(netip.MustParseAddr("10.0.0.1"))
	c := NewIPEndpoint(netip.MustParseAddr("10.0.0.2"))
	if a != b {
		t.Error("equal addresses should compare equal")
	}
	if a == c {
		t.Error("different addresses should differ")
	}
	// Endpoints are map keys.
	m := map[Endpoint]int{a: 1}
	if m[b] != 1 {
		t.Error("map lookup through equal endpoint failed")
	}
}

func TestEndpointTypesDistinct(t *testing.T) {
	tcp := NewTCPPortEndpoint(443)
	udp := NewUDPPortEndpoint(443)
	if tcp == udp {
		t.Error("TCP and UDP port 443 should be distinct endpoints")
	}
	if tcp.String() != "443" || udp.String() != "443" {
		t.Errorf("port strings = %q/%q", tcp, udp)
	}
}

func TestEndpointString(t *testing.T) {
	mac := NewMACEndpoint(MAC{0x02, 0, 0, 0, 0, 0xFF})
	if mac.String() != "02:00:00:00:00:ff" {
		t.Errorf("mac = %q", mac)
	}
	v6 := NewIPEndpoint(netip.MustParseAddr("2001:db8::1"))
	if v6.String() != "2001:db8::1" {
		t.Errorf("v6 = %q", v6)
	}
	if v6.Type() != EndpointIPv6 {
		t.Errorf("type = %v", v6.Type())
	}
}

func TestFlowSymmetricHash(t *testing.T) {
	f := func(a, b [4]byte) bool {
		src := NewIPEndpoint(netip.AddrFrom4(a))
		dst := NewIPEndpoint(netip.AddrFrom4(b))
		fwd := NewFlow(src, dst)
		rev := NewFlow(dst, src)
		return fwd.FastHash() == rev.FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowHashSpreads(t *testing.T) {
	// Different flows should rarely collide in the low 3 bits (the paper's
	// load-balancing example uses &0x7).
	buckets := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		src := NewIPEndpoint(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
		dst := NewIPEndpoint(netip.AddrFrom4([4]byte{10, 1, 0, 1}))
		buckets[NewFlow(src, dst).FastHash()&0x7]++
	}
	for b, n := range buckets {
		if n < 4096/8/2 || n > 4096/8*2 {
			t.Errorf("bucket %d has %d flows, poorly spread", b, n)
		}
	}
	if len(buckets) != 8 {
		t.Errorf("only %d buckets hit", len(buckets))
	}
}

func TestFlowReverse(t *testing.T) {
	src := NewTCPPortEndpoint(1000)
	dst := NewTCPPortEndpoint(2000)
	f := NewFlow(src, dst)
	r := f.Reverse()
	if r.Src() != dst || r.Dst() != src {
		t.Errorf("reverse = %v", r)
	}
	if f == r {
		t.Error("flow should differ from its reverse")
	}
	if f != r.Reverse() {
		t.Error("double reverse should restore")
	}
}

func TestFlowAsMapKey(t *testing.T) {
	f1 := NewFlow(NewUDPPortEndpoint(1000), NewUDPPortEndpoint(500))
	f2 := NewFlow(NewUDPPortEndpoint(1000), NewUDPPortEndpoint(500))
	m := map[Flow]int{f1: 7}
	if m[f2] != 7 {
		t.Error("equal flows should hit the same map slot")
	}
}

func TestMixedFamilyFlowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MAC->port flow should panic")
		}
	}()
	NewFlow(NewMACEndpoint(MAC{}), NewTCPPortEndpoint(1))
}

func TestIPv4v6MixAllowed(t *testing.T) {
	// 4-to-6 translation experiments produce these; they must not panic.
	f := NewFlow(
		NewIPEndpoint(netip.MustParseAddr("10.0.0.1")),
		NewIPEndpoint(netip.MustParseAddr("2001:db8::1")))
	if f.Src().Type() != EndpointIPv4 || f.Dst().Type() != EndpointIPv6 {
		t.Errorf("flow = %v", f)
	}
}

func TestLayerFlows(t *testing.T) {
	p := NewPacket(fabricFrame(t), LayerTypeEthernet, Default)
	ip := p.NetworkLayer().(*IPv4)
	nf := ip.NetworkFlow()
	if nf.Src().String() != "10.0.1.1" || nf.Dst().String() != "10.0.2.2" {
		t.Errorf("network flow = %v", nf)
	}
	tcp := p.TransportLayer().(*TCP)
	tf := tcp.TransportFlow()
	if tf.String() != "51000->443" {
		t.Errorf("transport flow = %v", tf)
	}
	eth := p.LinkLayer().(*Ethernet)
	lf := eth.LinkFlow()
	if lf.Src() != NewMACEndpoint(testSrcMAC) {
		t.Errorf("link flow = %v", lf)
	}
}
