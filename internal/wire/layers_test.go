package wire

import (
	"bytes"
	"net/netip"
	"testing"
)

var (
	testSrcMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	testDstMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	testSrcIP4 = netip.MustParseAddr("10.0.1.1")
	testDstIP4 = netip.MustParseAddr("10.0.2.2")
	testSrcIP6 = netip.MustParseAddr("2001:db8::1")
	testDstIP6 = netip.MustParseAddr("2001:db8::2")
)

// buildFrame serializes layers with fixed lengths and checksums.
func buildFrame(t testing.TB, layers ...SerializableLayer) []byte {
	t.Helper()
	buf := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := SerializeLayers(buf, opts, layers...); err != nil {
		t.Fatalf("SerializeLayers: %v", err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func TestEthernetRoundTrip(t *testing.T) {
	pay := Payload([]byte("hello"))
	data := buildFrame(t,
		&Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeIPv4},
		&pay)
	var eth Ethernet
	if err := eth.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if eth.DstMAC != testDstMAC || eth.SrcMAC != testSrcMAC {
		t.Errorf("MACs = %v/%v", eth.DstMAC, eth.SrcMAC)
	}
	if eth.EthernetType != EthernetTypeIPv4 {
		t.Errorf("EtherType = %v", eth.EthernetType)
	}
	if string(eth.LayerPayload()) != "hello" {
		t.Errorf("payload = %q", eth.LayerPayload())
	}
	if eth.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("next = %v", eth.NextLayerType())
	}
}

func TestEthernetTruncated(t *testing.T) {
	var eth Ethernet
	err := eth.DecodeFromBytes(make([]byte, 13))
	if err == nil || !IsTruncated(err) {
		t.Errorf("13-byte frame should be truncated, got %v", err)
	}
}

func TestDot1QRoundTrip(t *testing.T) {
	pay := Payload([]byte("x"))
	data := buildFrame(t,
		&Dot1Q{Priority: 5, DropEligible: true, VLANID: 3001, EthernetType: EthernetTypeIPv6},
		&pay)
	var d Dot1Q
	if err := d.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Priority != 5 || !d.DropEligible || d.VLANID != 3001 {
		t.Errorf("tag = %+v", d)
	}
	if d.NextLayerType() != LayerTypeIPv6 {
		t.Errorf("next = %v", d.NextLayerType())
	}
}

func TestMPLSStack(t *testing.T) {
	// Two-label stack over IPv4: outer label S=0, inner S=1.
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: testSrcIP4, DstIP: testDstIP4}
	udp := &UDP{SrcPort: 1111, DstPort: 2222}
	pay := Payload([]byte("data"))
	data := buildFrame(t,
		&MPLS{Label: 100, StackBottom: false, TTL: 63},
		&MPLS{Label: 200, StackBottom: true, TTL: 63},
		ip, udp, &pay)

	var outer MPLS
	if err := outer.DecodeFromBytes(data); err != nil {
		t.Fatalf("outer: %v", err)
	}
	if outer.Label != 100 || outer.StackBottom {
		t.Errorf("outer = %+v", outer)
	}
	if outer.NextLayerType() != LayerTypeMPLS {
		t.Errorf("outer next = %v", outer.NextLayerType())
	}
	var inner MPLS
	if err := inner.DecodeFromBytes(outer.LayerPayload()); err != nil {
		t.Fatalf("inner: %v", err)
	}
	if inner.Label != 200 || !inner.StackBottom {
		t.Errorf("inner = %+v", inner)
	}
	if inner.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("inner next = %v (first payload byte %x)", inner.NextLayerType(), inner.LayerPayload()[0])
	}
}

func TestMPLSPseudowireHeuristic(t *testing.T) {
	// Bottom-of-stack MPLS followed by a zero first nibble means an
	// Ethernet pseudowire control word.
	innerEth := &Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeIPv4}
	ip := &IPv4{TTL: 4, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4}
	tcp := &TCP{SrcPort: 40000, DstPort: 443, DataOffset: 5}
	pay := Payload([]byte{22, 3, 3, 0, 5, 1, 2, 3, 4, 5}) // TLS handshake record
	data := buildFrame(t,
		&MPLS{Label: 16, StackBottom: true, TTL: 64},
		&PWControlWord{SequenceNumber: 7},
		innerEth, ip, tcp, &pay)

	var m MPLS
	if err := m.DecodeFromBytes(data); err != nil {
		t.Fatalf("mpls: %v", err)
	}
	if m.NextLayerType() != LayerTypePWControlWord {
		t.Fatalf("next after BoS = %v, want PWControlWord", m.NextLayerType())
	}
	var cw PWControlWord
	if err := cw.DecodeFromBytes(m.LayerPayload()); err != nil {
		t.Fatalf("cw: %v", err)
	}
	if cw.SequenceNumber != 7 {
		t.Errorf("seq = %d", cw.SequenceNumber)
	}
	if cw.NextLayerType() != LayerTypeEthernet {
		t.Errorf("cw next = %v", cw.NextLayerType())
	}
}

func TestPWControlWordRejectsIP(t *testing.T) {
	var cw PWControlWord
	// An IPv4 header starts with nibble 4.
	if err := cw.DecodeFromBytes([]byte{0x45, 0, 0, 20}); err == nil {
		t.Error("control word with nonzero first nibble should fail")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	udp := &UDP{SrcPort: 53, DstPort: 9999}
	pay := Payload(bytes.Repeat([]byte{0xAB}, 32))
	data := buildFrame(t,
		&IPv4{TOS: 0x10, ID: 777, Flags: IPv4DontFragment, TTL: 61,
			Protocol: IPProtocolUDP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		udp, &pay)
	var ip IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ip.Version != 4 || ip.IHL != 5 {
		t.Errorf("version/IHL = %d/%d", ip.Version, ip.IHL)
	}
	if ip.SrcIP != testSrcIP4 || ip.DstIP != testDstIP4 {
		t.Errorf("addrs = %v->%v", ip.SrcIP, ip.DstIP)
	}
	if ip.Length != uint16(len(data)) {
		t.Errorf("length = %d, want %d", ip.Length, len(data))
	}
	if ip.Flags&IPv4DontFragment == 0 {
		t.Error("DF flag lost")
	}
	// Verify checksum: re-computing over the header must yield 0 residual
	// (i.e. checksum field validates).
	if got := internetChecksum(ip.LayerContents(), 0); got != 0 {
		t.Errorf("IPv4 header checksum residual = 0x%04x, want 0", got)
	}
}

func TestIPv4PayloadBounding(t *testing.T) {
	// IPv4 total length smaller than the buffer: the payload must be
	// clipped (Ethernet padding case).
	udp := &UDP{SrcPort: 1, DstPort: 2}
	pay := Payload([]byte("ab"))
	data := buildFrame(t,
		&IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		udp, &pay)
	padded := append(data, make([]byte, 20)...) // trailing padding
	var ip IPv4
	if err := ip.DecodeFromBytes(padded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(ip.LayerPayload()) != UDPHeaderLen+2 {
		t.Errorf("payload len = %d, want %d", len(ip.LayerPayload()), UDPHeaderLen+2)
	}
}

func TestIPv4BadVersion(t *testing.T) {
	var ip IPv4
	data := make([]byte, 20)
	data[0] = 0x65 // version 6
	if err := ip.DecodeFromBytes(data); err == nil {
		t.Error("version 6 should fail IPv4 decode")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	tcp := &TCP{SrcPort: 22222, DstPort: 22, DataOffset: 5, Flags: TCPPsh | TCPAck}
	pay := Payload([]byte("SSH-2.0-OpenSSH_9.6\r\n"))
	data := buildFrame(t,
		&IPv6{TrafficClass: 3, FlowLabel: 0xBEEF5, NextHeader: IPProtocolTCP,
			HopLimit: 60, SrcIP: testSrcIP6, DstIP: testDstIP6},
		tcp, &pay)
	var ip IPv6
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ip.TrafficClass != 3 || ip.FlowLabel != 0xBEEF5 {
		t.Errorf("tc/flow = %d/%x", ip.TrafficClass, ip.FlowLabel)
	}
	if ip.SrcIP != testSrcIP6 || ip.DstIP != testDstIP6 {
		t.Errorf("addrs = %v->%v", ip.SrcIP, ip.DstIP)
	}
	if int(ip.Length) != len(data)-IPv6HeaderLen {
		t.Errorf("payload length = %d", ip.Length)
	}
}

func TestIPv6ExtensionHeaders(t *testing.T) {
	udp := &UDP{SrcPort: 5000, DstPort: 5001}
	pay := Payload([]byte("z"))
	data := buildFrame(t,
		&IPv6{NextHeader: IPProtocolHopByHop, HopLimit: 64, SrcIP: testSrcIP6, DstIP: testDstIP6},
		&IPv6HopByHop{NextHeader: IPProtocolUDP, Options: make([]byte, 6)},
		udp, &pay)
	p := NewPacket(data, LayerTypeIPv6, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("error layer: %v", p.ErrorLayer().Error())
	}
	want := []LayerType{LayerTypeIPv6, LayerTypeIPv6HopByHop, LayerTypeUDP, LayerTypePayload}
	got := p.LayerTypes()
	if len(got) != len(want) {
		t.Fatalf("stack = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stack = %v, want %v", got, want)
		}
	}
}

func TestIPv6FragmentContinuation(t *testing.T) {
	frag := &IPv6Fragment{NextHeader: IPProtocolUDP, FragmentOffset: 100, Identification: 9}
	pay := Payload([]byte("frag data"))
	data := buildFrame(t,
		&IPv6{NextHeader: IPProtocolIPv6Fragment, HopLimit: 64, SrcIP: testSrcIP6, DstIP: testDstIP6},
		frag, &pay)
	p := NewPacket(data, LayerTypeIPv6, Default)
	// Non-first fragment: transport header absent, payload follows.
	if l := p.Layer(LayerTypeUDP); l != nil {
		t.Error("continuation fragment should not decode UDP")
	}
	if l := p.Layer(LayerTypePayload); l == nil {
		t.Error("continuation fragment should end in payload")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	opts := []byte{2, 4, 5, 0x6C} // MSS option, padded to 4 bytes
	pay := Payload([]byte("GET / HTTP/1.1\r\n"))
	data := buildFrame(t,
		&IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&TCP{SrcPort: 12345, DstPort: 80, Seq: 42, Ack: 43,
			Flags: TCPSyn | TCPAck, Window: 65535, Options: opts},
		&pay)
	var ip IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatalf("tcp: %v", err)
	}
	if tcp.SrcPort != 12345 || tcp.DstPort != 80 || tcp.Seq != 42 || tcp.Ack != 43 {
		t.Errorf("tcp = %+v", tcp)
	}
	if tcp.DataOffset != 6 {
		t.Errorf("data offset = %d, want 6", tcp.DataOffset)
	}
	if !bytes.Equal(tcp.Options, opts) {
		t.Errorf("options = %v", tcp.Options)
	}
	if tcp.Flags.String() != "SYN|ACK" {
		t.Errorf("flags = %v", tcp.Flags)
	}
	if tcp.NextLayerType() != LayerTypeHTTP {
		t.Errorf("next = %v, want HTTP (port 80)", tcp.NextLayerType())
	}
}

func TestTCPChecksumValidates(t *testing.T) {
	pay := Payload([]byte("abc"))
	ip := &IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4}
	data := buildFrame(t, ip,
		&TCP{SrcPort: 1, DstPort: 2, DataOffset: 5, Flags: TCPAck}, &pay)
	var dip IPv4
	if err := dip.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	seg := dip.LayerPayload()
	sum := dip.pseudoHeaderChecksum(IPProtocolTCP, len(seg))
	if got := internetChecksum(seg, sum); got != 0 {
		t.Errorf("TCP checksum residual = 0x%04x, want 0", got)
	}
}

func TestTCPEmptyPayloadIsTerminal(t *testing.T) {
	data := buildFrame(t,
		&IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&TCP{SrcPort: 9, DstPort: 443, DataOffset: 5, Flags: TCPAck})
	p := NewPacket(data, LayerTypeIPv4, Default)
	types := p.LayerTypes()
	last := types[len(types)-1]
	if last != LayerTypeTCP {
		t.Errorf("pure ACK should end at TCP, got %v", types)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	ntpBody := make([]byte, 48)
	ntpBody[0] = 4<<3 | 3 // NTPv4, client mode
	pay := Payload(ntpBody)
	data := buildFrame(t,
		&IPv6{NextHeader: IPProtocolUDP, HopLimit: 64, SrcIP: testSrcIP6, DstIP: testDstIP6},
		&UDP{SrcPort: 123, DstPort: 123},
		&pay)
	p := NewPacket(data, LayerTypeIPv6, Default)
	udp, ok := p.Layer(LayerTypeUDP).(*UDP)
	if !ok {
		t.Fatal("no UDP layer")
	}
	if udp.Length != UDPHeaderLen+48 {
		t.Errorf("UDP length = %d", udp.Length)
	}
	if p.Layer(LayerTypeNTP) == nil {
		t.Error("port 123 with 48-byte payload should classify as NTP")
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	pay := Payload([]byte("pingpayload"))
	data := buildFrame(t,
		&ICMPv4{Type: ICMPv4TypeEchoRequest, ID: 5, Seq: 6},
		&pay)
	var ic ICMPv4
	if err := ic.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if ic.Type != ICMPv4TypeEchoRequest || ic.ID != 5 || ic.Seq != 6 {
		t.Errorf("icmp = %+v", ic)
	}
	if got := internetChecksum(data, 0); got != 0 {
		t.Errorf("ICMP checksum residual = 0x%04x", got)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Operation: ARPRequest, SenderMAC: testSrcMAC, SenderIP: testSrcIP4,
		TargetMAC: MAC{}, TargetIP: testDstIP4}
	data := buildFrame(t, a)
	var d ARP
	if err := d.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if d.Operation != ARPRequest || d.SenderIP != testSrcIP4 || d.TargetIP != testDstIP4 {
		t.Errorf("arp = %+v", d)
	}
}

func TestDNSRoundTrip(t *testing.T) {
	q := &DNS{ID: 0x1234, Opcode: 0, Questions: []string{"fabric-testbed.net"}}
	data := buildFrame(t, q)
	var d DNS
	if err := d.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if d.ID != 0x1234 || d.QR {
		t.Errorf("dns header = %+v", d)
	}
	if len(d.Questions) != 1 || d.Questions[0] != "fabric-testbed.net" {
		t.Errorf("questions = %v", d.Questions)
	}
}

func TestDNSCompressionPointer(t *testing.T) {
	// Hand-build a message with a compressed name: question at offset 12
	// is "a.example.com", then a second name pointing back to "example.com".
	msg := []byte{
		0x00, 0x01, 0x80, 0x00, // ID, QR=1
		0x00, 0x02, 0, 0, 0, 0, 0, 0, // QDCount=2
	}
	msg = append(msg, 1, 'a', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0)
	msg = append(msg, 0, 1, 0, 1) // qtype/qclass
	ptr := len(msg)
	_ = ptr
	msg = append(msg, 0xC0, 14) // pointer to offset 14 ("example.com")
	msg = append(msg, 0, 1, 0, 1)
	var d DNS
	if err := d.DecodeFromBytes(msg); err != nil {
		t.Fatal(err)
	}
	if len(d.Questions) != 2 {
		t.Fatalf("questions = %v", d.Questions)
	}
	if d.Questions[0] != "a.example.com" || d.Questions[1] != "example.com" {
		t.Errorf("questions = %v", d.Questions)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	msg := make([]byte, 14)
	msg[5] = 1                  // QDCount = 1
	msg[12], msg[13] = 0xC0, 12 // name points at itself
	var d DNS
	if err := d.DecodeFromBytes(msg); err != nil {
		t.Fatal(err)
	}
	// Loop is detected inside name parsing; header still decodes, no
	// questions survive.
	if len(d.Questions) != 0 {
		t.Errorf("questions = %v, want none", d.Questions)
	}
}

func TestTLSValidation(t *testing.T) {
	var tls TLS
	if err := tls.DecodeFromBytes([]byte{22, 3, 3, 0, 100}); err != nil {
		t.Errorf("valid handshake record rejected: %v", err)
	}
	if tls.RecordType != TLSHandshake || tls.Length != 100 {
		t.Errorf("tls = %+v", tls)
	}
	if err := tls.DecodeFromBytes([]byte{99, 3, 3, 0, 1}); err == nil {
		t.Error("record type 99 should fail")
	}
	if err := tls.DecodeFromBytes([]byte{22, 9, 9, 0, 1}); err == nil {
		t.Error("version 0x0909 should fail")
	}
}

func TestSSHBanner(t *testing.T) {
	var s SSH
	if err := s.DecodeFromBytes([]byte("SSH-2.0-OpenSSH_9.6\r\nextra")); err != nil {
		t.Fatal(err)
	}
	if s.Banner != "SSH-2.0-OpenSSH_9.6" {
		t.Errorf("banner = %q", s.Banner)
	}
	// Binary phase: no banner but still classifies.
	if err := s.DecodeFromBytes([]byte{0, 0, 1, 44, 7}); err != nil {
		t.Fatal(err)
	}
	if s.Banner != "" {
		t.Errorf("binary packet banner = %q", s.Banner)
	}
}

func TestHTTPClassification(t *testing.T) {
	var h HTTP
	if err := h.DecodeFromBytes([]byte("GET /index.html HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	if !h.IsRequest || h.Method != "GET" {
		t.Errorf("http = %+v", h)
	}
	if err := h.DecodeFromBytes([]byte("HTTP/1.1 200 OK\r\n")); err != nil {
		t.Fatal(err)
	}
	if h.IsRequest || h.Method != "HTTP/1.1" {
		t.Errorf("response = %+v", h)
	}
}

func TestNTPValidation(t *testing.T) {
	data := make([]byte, 48)
	data[0] = 4<<3 | 3 // version 4, client mode
	data[1] = 2
	var n NTP
	if err := n.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if n.Version != 4 || n.Mode != 3 || n.Stratum != 2 {
		t.Errorf("ntp = %+v", n)
	}
	bad := make([]byte, 48)
	bad[0] = 7 << 3 // version 7
	if err := n.DecodeFromBytes(bad); err == nil {
		t.Error("version 7 should fail")
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	inner := &Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeIPv4}
	ip := &IPv4{TTL: 3, Protocol: IPProtocolICMPv4, SrcIP: testSrcIP4, DstIP: testDstIP4}
	ic := &ICMPv4{Type: ICMPv4TypeEchoRequest}
	data := buildFrame(t, &VXLAN{ValidIDFlag: true, VNI: 0xABCDE}, inner, ip, ic)
	var v VXLAN
	if err := v.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if !v.ValidIDFlag || v.VNI != 0xABCDE {
		t.Errorf("vxlan = %+v", v)
	}
	if v.NextLayerType() != LayerTypeEthernet {
		t.Errorf("next = %v", v.NextLayerType())
	}
}

func TestGRERoundTrip(t *testing.T) {
	ip := &IPv4{TTL: 8, Protocol: IPProtocolUDP, SrcIP: testSrcIP4, DstIP: testDstIP4}
	udp := &UDP{SrcPort: 7, DstPort: 8}
	data := buildFrame(t, &GRE{Protocol: EthernetTypeIPv4}, ip, udp)
	var g GRE
	if err := g.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if g.NextLayerType() != LayerTypeIPv4 {
		t.Errorf("next = %v", g.NextLayerType())
	}
	if err := g.DecodeFromBytes([]byte{0x80, 0, 0x08, 0}); err == nil {
		t.Error("GRE with checksum bit should be rejected")
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeEthernet.String() != "Ethernet" {
		t.Error("Ethernet name")
	}
	if LayerType(999).String() != "LayerType(999)" {
		t.Error("unknown name")
	}
}

func TestMinimumFramePadding(t *testing.T) {
	buf := NewSerializeBuffer()
	eth := &Ethernet{EthernetType: EthernetTypeARP}
	arp := &ARP{Operation: ARPRequest, SenderIP: testSrcIP4, TargetIP: testDstIP4}
	if err := SerializeLayers(buf, SerializeOptions{}, eth, arp); err != nil {
		t.Fatal(err)
	}
	if err := PadToMinimumFrame(buf); err != nil {
		t.Fatal(err)
	}
	if len(buf.Bytes()) != 60 {
		t.Errorf("padded frame = %d bytes, want 60", len(buf.Bytes()))
	}
}

func TestZeroAddressSerializesAsZeros(t *testing.T) {
	// An unset netip.Addr field must serialize as 0.0.0.0 / ::, not panic.
	data := buildFrame(t,
		&IPv4{TTL: 1, Protocol: IPProtocolUDP},
		&UDP{SrcPort: 1, DstPort: 2})
	var ip IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if ip.SrcIP.String() != "0.0.0.0" {
		t.Errorf("src = %v", ip.SrcIP)
	}
	data6 := buildFrame(t,
		&IPv6{NextHeader: IPProtocolUDP, HopLimit: 1},
		&UDP{SrcPort: 1, DstPort: 2})
	var ip6 IPv6
	if err := ip6.DecodeFromBytes(data6); err != nil {
		t.Fatal(err)
	}
	if ip6.SrcIP.String() != "::" {
		t.Errorf("src6 = %v", ip6.SrcIP)
	}
}
