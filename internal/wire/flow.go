package wire

import (
	"fmt"
	"net/netip"
)

// EndpointType distinguishes address families in an Endpoint.
type EndpointType uint8

// Endpoint types.
const (
	EndpointInvalid EndpointType = iota
	EndpointMAC
	EndpointIPv4
	EndpointIPv6
	EndpointTCPPort
	EndpointUDPPort
)

// String names the endpoint type.
func (t EndpointType) String() string {
	switch t {
	case EndpointMAC:
		return "MAC"
	case EndpointIPv4:
		return "IPv4"
	case EndpointIPv6:
		return "IPv6"
	case EndpointTCPPort:
		return "TCPPort"
	case EndpointUDPPort:
		return "UDPPort"
	default:
		return "Invalid"
	}
}

// Endpoint is a hashable, comparable representation of one side of a
// conversation (a MAC, an IP address, or a port). Endpoints are valid map
// keys and can be compared with ==.
type Endpoint struct {
	typ EndpointType
	len uint8
	raw [16]byte
}

// Type returns the endpoint's address family.
func (e Endpoint) Type() EndpointType { return e.typ }

// Raw returns the endpoint's address bytes.
func (e Endpoint) Raw() []byte { return e.raw[:e.len] }

// String renders the endpoint in its family's conventional form.
func (e Endpoint) String() string {
	switch e.typ {
	case EndpointMAC:
		var m MAC
		copy(m[:], e.raw[:6])
		return m.String()
	case EndpointIPv4:
		a := netip.AddrFrom4([4]byte(e.raw[:4]))
		return a.String()
	case EndpointIPv6:
		a := netip.AddrFrom16(e.raw)
		return a.String()
	case EndpointTCPPort, EndpointUDPPort:
		return fmt.Sprintf("%d", uint16(e.raw[0])<<8|uint16(e.raw[1]))
	default:
		return "invalid"
	}
}

// FastHash returns a non-cryptographic hash of the endpoint, suitable for
// load balancing.
func (e Endpoint) FastHash() uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	h = (h ^ uint64(e.typ)) * 1099511628211
	for i := uint8(0); i < e.len; i++ {
		h = (h ^ uint64(e.raw[i])) * 1099511628211
	}
	return h
}

// NewMACEndpoint wraps a MAC address.
func NewMACEndpoint(m MAC) Endpoint {
	e := Endpoint{typ: EndpointMAC, len: 6}
	copy(e.raw[:], m[:])
	return e
}

// NewIPEndpoint wraps an IPv4 or IPv6 address.
func NewIPEndpoint(a netip.Addr) Endpoint {
	if a.Is4() {
		e := Endpoint{typ: EndpointIPv4, len: 4}
		b := a.As4()
		copy(e.raw[:], b[:])
		return e
	}
	e := Endpoint{typ: EndpointIPv6, len: 16}
	b := a.As16()
	copy(e.raw[:], b[:])
	return e
}

// NewRawEndpoint rebuilds an endpoint from its family and raw address
// bytes (the inverse of Type/Raw) — used by on-disk stores that persist
// endpoints columnar. Bytes beyond the family's length are ignored; a
// zero-length raw produces the invalid zero Endpoint.
func NewRawEndpoint(typ EndpointType, raw []byte) Endpoint {
	var n int
	switch typ {
	case EndpointMAC:
		n = 6
	case EndpointIPv4:
		n = 4
	case EndpointIPv6:
		n = 16
	case EndpointTCPPort, EndpointUDPPort:
		n = 2
	default:
		return Endpoint{}
	}
	if len(raw) < n {
		return Endpoint{}
	}
	e := Endpoint{typ: typ, len: uint8(n)}
	copy(e.raw[:], raw[:n])
	return e
}

// NewTCPPortEndpoint wraps a TCP port.
func NewTCPPortEndpoint(p uint16) Endpoint {
	return Endpoint{typ: EndpointTCPPort, len: 2, raw: [16]byte{byte(p >> 8), byte(p)}}
}

// NewUDPPortEndpoint wraps a UDP port.
func NewUDPPortEndpoint(p uint16) Endpoint {
	return Endpoint{typ: EndpointUDPPort, len: 2, raw: [16]byte{byte(p >> 8), byte(p)}}
}

// Flow is an ordered (src, dst) pair of endpoints. Flows are valid map
// keys and can be compared with ==.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a flow from src to dst. Mixing endpoint families (other
// than IPv4/IPv6) panics, mirroring gopacket's contract.
func NewFlow(src, dst Endpoint) Flow {
	if src.typ != dst.typ {
		okMix := (src.typ == EndpointIPv4 || src.typ == EndpointIPv6) &&
			(dst.typ == EndpointIPv4 || dst.typ == EndpointIPv6)
		if !okMix {
			panic(fmt.Sprintf("wire: flow with mismatched endpoint types %v / %v", src.typ, dst.typ))
		}
	}
	return Flow{src: src, dst: dst}
}

// Endpoints returns the flow's (src, dst) pair.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// FastHash returns a symmetric non-cryptographic hash: A->B hashes equal
// to B->A, so bidirectional traffic lands in the same bucket.
func (f Flow) FastHash() uint64 {
	a, b := f.src.FastHash(), f.dst.FastHash()
	// XOR is symmetric; the multiply spreads bits afterwards.
	h := a ^ b
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// String renders "src->dst".
func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }
