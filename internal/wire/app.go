package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// DNS is a DNS message header with question names. Patchwork's analysis
// counts DNS as a distinct header above UDP/TCP port 53.
type DNS struct {
	ID      uint16
	QR      bool // response flag
	Opcode  uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
	// Questions holds up to the first 4 question names, decoded with
	// compression-pointer support.
	Questions []string

	contents, payload []byte
}

const dnsHeaderLen = 12

// LayerType returns LayerTypeDNS.
func (d *DNS) LayerType() LayerType { return LayerTypeDNS }

// LayerContents returns the full message bytes.
func (d *DNS) LayerContents() []byte { return d.contents }

// LayerPayload returns nil; DNS is terminal.
func (d *DNS) LayerPayload() []byte { return d.payload }

// CanDecode returns LayerTypeDNS.
func (d *DNS) CanDecode() LayerType { return LayerTypeDNS }

// NextLayerType returns LayerTypeZero.
func (d *DNS) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes parses the DNS header and question names.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < dnsHeaderLen {
		return errTruncated{dnsHeaderLen, len(data)}
	}
	d.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	d.QR = flags&0x8000 != 0
	d.Opcode = uint8(flags>>11) & 0xF
	d.QDCount = binary.BigEndian.Uint16(data[4:6])
	d.ANCount = binary.BigEndian.Uint16(data[6:8])
	d.NSCount = binary.BigEndian.Uint16(data[8:10])
	d.ARCount = binary.BigEndian.Uint16(data[10:12])
	d.Questions = d.Questions[:0]
	off := dnsHeaderLen
	n := int(d.QDCount)
	if n > 4 {
		n = 4
	}
	for q := 0; q < n; q++ {
		name, next, err := dnsName(data, off)
		if err != nil {
			// Truncated captures commonly clip questions; the header alone
			// still classifies the packet, so keep what we have.
			break
		}
		d.Questions = append(d.Questions, name)
		off = next + 4 // skip QTYPE and QCLASS
		if off > len(data) {
			break
		}
	}
	d.contents = data
	d.payload = nil
	return nil
}

// dnsName decodes a possibly-compressed DNS name starting at off,
// returning the dotted name and the offset just past it.
func dnsName(data []byte, off int) (string, int, error) {
	var sb bytes.Buffer
	end := -1 // offset after the name in the original (non-pointer) stream
	hops := 0
	for {
		if off >= len(data) {
			return "", 0, errTruncated{off + 1, len(data)}
		}
		l := int(data[off])
		switch {
		case l == 0:
			if end < 0 {
				end = off + 1
			}
			return sb.String(), end, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(data) {
				return "", 0, errTruncated{off + 2, len(data)}
			}
			if end < 0 {
				end = off + 2
			}
			off = (l&0x3F)<<8 | int(data[off+1])
			hops++
			if hops > 16 {
				return "", 0, fmt.Errorf("DNS compression loop")
			}
		case l&0xC0 != 0:
			return "", 0, fmt.Errorf("DNS label with reserved length bits")
		default:
			if off+1+l > len(data) {
				return "", 0, errTruncated{off + 1 + l, len(data)}
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[off+1 : off+1+l])
			off += 1 + l
		}
	}
}

// SerializeTo prepends a DNS header plus uncompressed question names.
func (d *DNS) SerializeTo(b *SerializeBuffer) error {
	var body bytes.Buffer
	for _, q := range d.Questions {
		if err := writeDNSName(&body, q); err != nil {
			return err
		}
		var tail [4]byte
		binary.BigEndian.PutUint16(tail[0:2], 1) // QTYPE A
		binary.BigEndian.PutUint16(tail[2:4], 1) // QCLASS IN
		body.Write(tail[:])
	}
	total := dnsHeaderLen + body.Len()
	bs, err := b.PrependBytes(total)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bs[0:2], d.ID)
	var flags uint16
	if d.QR {
		flags |= 0x8000
	}
	flags |= uint16(d.Opcode&0xF) << 11
	binary.BigEndian.PutUint16(bs[2:4], flags)
	binary.BigEndian.PutUint16(bs[4:6], uint16(len(d.Questions)))
	binary.BigEndian.PutUint16(bs[6:8], d.ANCount)
	binary.BigEndian.PutUint16(bs[8:10], d.NSCount)
	binary.BigEndian.PutUint16(bs[10:12], d.ARCount)
	copy(bs[dnsHeaderLen:], body.Bytes())
	return nil
}

func writeDNSName(w *bytes.Buffer, name string) error {
	if name == "" {
		w.WriteByte(0)
		return nil
	}
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			label := name[start:i]
			if len(label) == 0 || len(label) > 63 {
				return fmt.Errorf("DNS label %q invalid", label)
			}
			w.WriteByte(byte(len(label)))
			w.WriteString(label)
			start = i + 1
		}
	}
	w.WriteByte(0)
	return nil
}

// TLSRecordType is the TLS record content type.
type TLSRecordType uint8

// TLS record content types.
const (
	TLSChangeCipherSpec TLSRecordType = 20
	TLSAlert            TLSRecordType = 21
	TLSHandshake        TLSRecordType = 22
	TLSApplicationData  TLSRecordType = 23
)

// TLS is a TLS record header. Only the first record in the payload is
// parsed; that is enough for the analysis pipeline to classify the frame.
type TLS struct {
	RecordType TLSRecordType
	Version    uint16 // 0x0301..0x0304
	Length     uint16

	contents, payload []byte
}

const tlsRecordHeaderLen = 5

// LayerType returns LayerTypeTLS.
func (t *TLS) LayerType() LayerType { return LayerTypeTLS }

// LayerContents returns the record bytes present in the capture.
func (t *TLS) LayerContents() []byte { return t.contents }

// LayerPayload returns nil; record contents are opaque.
func (t *TLS) LayerPayload() []byte { return t.payload }

// CanDecode returns LayerTypeTLS.
func (t *TLS) CanDecode() LayerType { return LayerTypeTLS }

// NextLayerType returns LayerTypeZero.
func (t *TLS) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes validates and parses a TLS record header.
func (t *TLS) DecodeFromBytes(data []byte) error {
	if len(data) < tlsRecordHeaderLen {
		return errTruncated{tlsRecordHeaderLen, len(data)}
	}
	rt := TLSRecordType(data[0])
	if rt < TLSChangeCipherSpec || rt > TLSApplicationData {
		return fmt.Errorf("TLS record type %d out of range", rt)
	}
	ver := binary.BigEndian.Uint16(data[1:3])
	if ver < 0x0300 || ver > 0x0304 {
		return fmt.Errorf("TLS version 0x%04x out of range", ver)
	}
	t.RecordType = rt
	t.Version = ver
	t.Length = binary.BigEndian.Uint16(data[3:5])
	t.contents = data
	t.payload = nil
	return nil
}

// SerializeTo prepends a TLS record header (header only; payload is
// whatever the buffer already contains).
func (t *TLS) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	bs, err := b.PrependBytes(tlsRecordHeaderLen)
	if err != nil {
		return err
	}
	bs[0] = uint8(t.RecordType)
	binary.BigEndian.PutUint16(bs[1:3], t.Version)
	length := t.Length
	if b.opts.FixLengths {
		length = uint16(payloadLen)
		t.Length = length
	}
	binary.BigEndian.PutUint16(bs[3:5], length)
	return nil
}

// SSH is an SSH protocol classification layer. The version-exchange banner
// is parsed when present; established-session binary packets are
// classified by port and validated loosely.
type SSH struct {
	// Banner is the "SSH-2.0-..." identification string if the payload
	// starts with one, without the trailing CRLF.
	Banner string

	contents, payload []byte
}

// LayerType returns LayerTypeSSH.
func (s *SSH) LayerType() LayerType { return LayerTypeSSH }

// LayerContents returns the payload bytes.
func (s *SSH) LayerContents() []byte { return s.contents }

// LayerPayload returns nil.
func (s *SSH) LayerPayload() []byte { return s.payload }

// CanDecode returns LayerTypeSSH.
func (s *SSH) CanDecode() LayerType { return LayerTypeSSH }

// NextLayerType returns LayerTypeZero.
func (s *SSH) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes classifies SSH traffic.
func (s *SSH) DecodeFromBytes(data []byte) error {
	if len(data) == 0 {
		return errTruncated{1, 0}
	}
	s.Banner = ""
	if bytes.HasPrefix(data, []byte("SSH-")) {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = data[:i]
		}
		s.Banner = string(bytes.TrimRight(line, "\r\n"))
	}
	s.contents = data
	s.payload = nil
	return nil
}

// SerializeTo writes the banner (or nothing for binary-phase packets).
func (s *SSH) SerializeTo(b *SerializeBuffer) error {
	if s.Banner == "" {
		return nil
	}
	line := s.Banner + "\r\n"
	bs, err := b.PrependBytes(len(line))
	if err != nil {
		return err
	}
	copy(bs, line)
	return nil
}

// HTTP classifies plaintext HTTP/1.x traffic by request method or status
// line.
type HTTP struct {
	// IsRequest is true when the payload starts with a known method.
	IsRequest bool
	// Method holds the request method or the "HTTP/1.x" token of a
	// response.
	Method string

	contents, payload []byte
}

var httpMethods = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("PUT "), []byte("HEAD "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("PATCH "), []byte("CONNECT "),
}

// LayerType returns LayerTypeHTTP.
func (h *HTTP) LayerType() LayerType { return LayerTypeHTTP }

// LayerContents returns the payload bytes.
func (h *HTTP) LayerContents() []byte { return h.contents }

// LayerPayload returns nil.
func (h *HTTP) LayerPayload() []byte { return h.payload }

// CanDecode returns LayerTypeHTTP.
func (h *HTTP) CanDecode() LayerType { return LayerTypeHTTP }

// NextLayerType returns LayerTypeZero.
func (h *HTTP) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes classifies the payload as HTTP request, response, or
// continuation data on a port-80 stream.
func (h *HTTP) DecodeFromBytes(data []byte) error {
	if len(data) == 0 {
		return errTruncated{1, 0}
	}
	h.IsRequest = false
	h.Method = ""
	for _, m := range httpMethods {
		if bytes.HasPrefix(data, m) {
			h.IsRequest = true
			h.Method = string(bytes.TrimSpace(m))
			break
		}
	}
	if !h.IsRequest && bytes.HasPrefix(data, []byte("HTTP/1.")) {
		h.Method = string(data[:8])
	}
	h.contents = data
	h.payload = nil
	return nil
}

// SerializeTo is a no-op placeholder: HTTP content is generated by the
// traffic generator as opaque payload.
func (h *HTTP) SerializeTo(b *SerializeBuffer) error { return nil }

// NTP is an NTP header (RFC 5905), 48 bytes.
type NTP struct {
	LeapIndicator uint8
	Version       uint8
	Mode          uint8
	Stratum       uint8

	contents, payload []byte
}

const ntpHeaderLen = 48

// LayerType returns LayerTypeNTP.
func (n *NTP) LayerType() LayerType { return LayerTypeNTP }

// LayerContents returns the 48 header bytes.
func (n *NTP) LayerContents() []byte { return n.contents }

// LayerPayload returns bytes after the header (extensions, usually none).
func (n *NTP) LayerPayload() []byte { return n.payload }

// CanDecode returns LayerTypeNTP.
func (n *NTP) CanDecode() LayerType { return LayerTypeNTP }

// NextLayerType returns LayerTypeZero.
func (n *NTP) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes parses the first NTP header byte and stratum.
func (n *NTP) DecodeFromBytes(data []byte) error {
	if len(data) < ntpHeaderLen {
		return errTruncated{ntpHeaderLen, len(data)}
	}
	n.LeapIndicator = data[0] >> 6
	n.Version = (data[0] >> 3) & 0x7
	n.Mode = data[0] & 0x7
	if n.Version < 1 || n.Version > 4 {
		return fmt.Errorf("NTP version %d out of range", n.Version)
	}
	n.Stratum = data[1]
	n.contents = data[:ntpHeaderLen]
	n.payload = data[ntpHeaderLen:]
	return nil
}

// SerializeTo prepends a zero-filled NTP header with the mode byte set.
func (n *NTP) SerializeTo(b *SerializeBuffer) error {
	bs, err := b.PrependBytes(ntpHeaderLen)
	if err != nil {
		return err
	}
	for i := range bs {
		bs[i] = 0
	}
	bs[0] = n.LeapIndicator<<6 | (n.Version&0x7)<<3 | n.Mode&0x7
	bs[1] = n.Stratum
	return nil
}
