package wire

import (
	"encoding/binary"
	"fmt"
)

// internetChecksum computes the RFC 1071 Internet checksum over data,
// folding in an initial partial sum (for pseudo-headers).
func internetChecksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	return ^uint16(sum)
}

// wellKnownTCP maps TCP ports to application layer types. tshark-style
// port classification: the Patchwork analysis pipeline counts these as
// distinct headers above TCP (Section 8.2 of the paper).
func wellKnownTCP(src, dst uint16) LayerType {
	for _, p := range [2]uint16{dst, src} {
		switch p {
		case 22:
			return LayerTypeSSH
		case 53:
			return LayerTypeDNS
		case 80, 8080:
			return LayerTypeHTTP
		case 443, 8443:
			return LayerTypeTLS
		}
	}
	return LayerTypePayload
}

// wellKnownUDP maps UDP ports to application layer types.
func wellKnownUDP(src, dst uint16) LayerType {
	for _, p := range [2]uint16{dst, src} {
		switch p {
		case 53:
			return LayerTypeDNS
		case 123:
			return LayerTypeNTP
		case 443:
			return LayerTypeTLS // QUIC-over-443 classified as TLS by port
		case 4789:
			return LayerTypeVXLAN
		}
	}
	return LayerTypePayload
}

// TCPHeaderLen is the minimum TCP header length (no options).
const TCPHeaderLen = 20

// TCPFlags is the 9-bit TCP flag field (we keep the common low 8).
type TCPFlags uint8

// TCP flag bits.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// String renders set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{TCPFin, "FIN"}, {TCPSyn, "SYN"}, {TCPRst, "RST"}, {TCPPsh, "PSH"},
		{TCPAck, "ACK"}, {TCPUrg, "URG"}, {TCPEce, "ECE"}, {TCPCwr, "CWR"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// TCP is a TCP segment header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte

	contents, payload []byte
}

// LayerType returns LayerTypeTCP.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerContents returns the header bytes including options.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload returns the segment payload.
func (t *TCP) LayerPayload() []byte { return t.payload }

// CanDecode returns LayerTypeTCP.
func (t *TCP) CanDecode() LayerType { return LayerTypeTCP }

// NextLayerType classifies the payload by well-known port, returning
// LayerTypeZero for empty payloads (e.g. pure ACKs).
func (t *TCP) NextLayerType() LayerType {
	if len(t.payload) == 0 {
		return LayerTypeZero
	}
	return wellKnownTCP(t.SrcPort, t.DstPort)
}

// DecodeFromBytes parses a TCP header.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return errTruncated{TCPHeaderLen, len(data)}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < TCPHeaderLen {
		return fmt.Errorf("TCP data offset = %d words, below minimum", t.DataOffset)
	}
	if len(data) < hlen {
		return errTruncated{hlen, len(data)}
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[TCPHeaderLen:hlen]
	t.contents = data[:hlen]
	t.payload = data[hlen:]
	return nil
}

// TransportFlow returns the src->dst port flow.
func (t *TCP) TransportFlow() Flow {
	return NewFlow(NewTCPPortEndpoint(t.SrcPort), NewTCPPortEndpoint(t.DstPort))
}

// SerializeTo prepends the TCP header. Checksum computation requires a
// network layer to have been provided via SetNetworkLayerForChecksum.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("TCP options length %d not a multiple of 4", len(t.Options))
	}
	hlen := TCPHeaderLen + len(t.Options)
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(hlen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bytes[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(bytes[2:4], t.DstPort)
	binary.BigEndian.PutUint32(bytes[4:8], t.Seq)
	binary.BigEndian.PutUint32(bytes[8:12], t.Ack)
	if b.opts.FixLengths {
		t.DataOffset = uint8(hlen / 4)
	}
	bytes[12] = t.DataOffset << 4
	bytes[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(bytes[14:16], t.Window)
	binary.BigEndian.PutUint16(bytes[18:20], t.Urgent)
	copy(bytes[20:], t.Options)
	binary.BigEndian.PutUint16(bytes[16:18], 0)
	if b.opts.ComputeChecksums && b.netForChecksum != nil {
		sum := b.netForChecksum.pseudoHeaderChecksum(IPProtocolTCP, hlen+payloadLen)
		t.Checksum = internetChecksum(bytes[:hlen+payloadLen], sum)
	}
	binary.BigEndian.PutUint16(bytes[16:18], t.Checksum)
	return nil
}

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	contents, payload []byte
}

// LayerType returns LayerTypeUDP.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerContents returns the 8 header bytes.
func (u *UDP) LayerContents() []byte { return u.contents }

// LayerPayload returns the datagram payload.
func (u *UDP) LayerPayload() []byte { return u.payload }

// CanDecode returns LayerTypeUDP.
func (u *UDP) CanDecode() LayerType { return LayerTypeUDP }

// NextLayerType classifies the payload by well-known port.
func (u *UDP) NextLayerType() LayerType {
	if len(u.payload) == 0 {
		return LayerTypeZero
	}
	return wellKnownUDP(u.SrcPort, u.DstPort)
}

// DecodeFromBytes parses a UDP header.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return errTruncated{UDPHeaderLen, len(data)}
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	u.contents = data[:UDPHeaderLen]
	end := len(data)
	if l := int(u.Length); l >= UDPHeaderLen && l < end {
		end = l
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// TransportFlow returns the src->dst port flow.
func (u *UDP) TransportFlow() Flow {
	return NewFlow(NewUDPPortEndpoint(u.SrcPort), NewUDPPortEndpoint(u.DstPort))
}

// SerializeTo prepends the UDP header.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(UDPHeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(bytes[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(bytes[2:4], u.DstPort)
	if b.opts.FixLengths {
		u.Length = uint16(UDPHeaderLen + payloadLen)
	}
	binary.BigEndian.PutUint16(bytes[4:6], u.Length)
	binary.BigEndian.PutUint16(bytes[6:8], 0)
	if b.opts.ComputeChecksums && b.netForChecksum != nil {
		sum := b.netForChecksum.pseudoHeaderChecksum(IPProtocolUDP, UDPHeaderLen+payloadLen)
		u.Checksum = internetChecksum(bytes[:UDPHeaderLen+payloadLen], sum)
	}
	binary.BigEndian.PutUint16(bytes[6:8], u.Checksum)
	return nil
}
