package wire

import (
	"testing"
)

// FuzzParsePacket feeds arbitrary bytes to the full eager decoder. The
// parser sits directly behind captured traffic — any byte sequence a
// switch can mirror must decode without panicking, and the decoded
// layers must stay consistent with each other.
func FuzzParsePacket(f *testing.F) {
	f.Add(fabricFrame(f))
	f.Add(buildFrame(f,
		&Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&UDP{SrcPort: 53, DstPort: 5353},
	))
	f.Add(buildFrame(f,
		&Ethernet{DstMAC: testDstMAC, SrcMAC: testSrcMAC, EthernetType: EthernetTypeDot1Q},
		&Dot1Q{VLANID: 7, EthernetType: EthernetTypeIPv4},
		&IPv4{TTL: 1, Protocol: IPProtocolTCP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&TCP{SrcPort: 80, DstPort: 1024, DataOffset: 5, Flags: TCPSyn},
	))
	// Truncated and degenerate inputs: the capture path truncates frames
	// to the snap length, so partial headers are the common case.
	full := fabricFrame(f)
	for _, n := range []int{0, 1, 13, 14, 17, 40, 60} {
		if n <= len(full) {
			f.Add(full[:n])
		}
	}
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewPacket(data, LayerTypeEthernet, Default)
		layers := p.Layers()
		types := p.LayerTypes()
		if len(types) != len(layers) {
			t.Fatalf("LayerTypes len %d != Layers len %d", len(types), len(layers))
		}
		for i, l := range layers {
			if l.LayerType() != types[i] {
				t.Fatalf("layer %d type mismatch: %v vs %v", i, l.LayerType(), types[i])
			}
			// Contents and payload must be views into (a copy of) the input,
			// never longer than what was offered.
			if len(l.LayerContents())+len(l.LayerPayload()) > len(data) {
				t.Fatalf("layer %d contents+payload %d+%d exceed input %d",
					i, len(l.LayerContents()), len(l.LayerPayload()), len(data))
			}
		}
		// Accessors must agree with the layer list on the failure layer.
		if p.ErrorLayer() != nil && len(layers) == 0 && len(data) > 0 {
			// A failed first layer still surfaces the error; that's fine.
			_ = p.ErrorLayer().Error()
		}
		_ = p.String()
	})
}

// FuzzTCPOptions feeds arbitrary bytes to the TCP options walker and its
// typed accessors. Parsed options must round out of the input without
// panics, and every accepted option must lie within the input bytes.
func FuzzTCPOptions(f *testing.F) {
	mss, err := BuildOptions(
		TCPOption{Kind: TCPOptionMSS, Data: []byte{0x05, 0xb4}},
		TCPOption{Kind: TCPOptionWindowScale, Data: []byte{7}},
		TCPOption{Kind: TCPOptionSACKPermitted},
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mss)
	sack, err := BuildOptions(TCPOption{Kind: TCPOptionSACK, Data: []byte{
		0, 0, 0, 1, 0, 0, 0, 9,
		0, 0, 1, 0, 0, 0, 2, 0,
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sack)
	ts, err := BuildOptions(TCPOption{Kind: TCPOptionTimestamps, Data: make([]byte, 8)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ts)
	// Malformed shapes: zero length, length past the buffer, bare kinds.
	f.Add([]byte{2, 0})
	f.Add([]byte{5, 250, 1, 2})
	f.Add([]byte{1, 1, 1, 0})
	f.Add([]byte{8})

	f.Fuzz(func(t *testing.T, data []byte) {
		tcp := &TCP{Options: data}
		opts, err := tcp.ParseOptions()
		total := 0
		for _, o := range opts {
			if len(o.Data) > len(data) {
				t.Fatalf("option %v data %d bytes exceeds input %d", o.Kind, len(o.Data), len(data))
			}
			total += 2 + len(o.Data)
		}
		if total > len(data) {
			t.Fatalf("options consumed %d bytes of %d", total, len(data))
		}
		if err == nil {
			// A clean parse must survive rebuild + reparse with the same
			// option list (NOP/EOL padding aside).
			rebuilt, berr := BuildOptions(opts...)
			if berr != nil {
				t.Fatalf("BuildOptions on parsed options: %v", berr)
			}
			tcp2 := &TCP{Options: rebuilt}
			opts2, rerr := tcp2.ParseOptions()
			if rerr != nil {
				t.Fatalf("reparse of rebuilt options: %v", rerr)
			}
			if len(opts2) != len(opts) {
				t.Fatalf("round trip changed option count: %d -> %d", len(opts), len(opts2))
			}
			for i := range opts {
				if opts2[i].Kind != opts[i].Kind || string(opts2[i].Data) != string(opts[i].Data) {
					t.Fatalf("round trip changed option %d: %+v -> %+v", i, opts[i], opts2[i])
				}
			}
		}
		// Typed accessors must never panic regardless of parse outcome.
		_, _ = tcp.MSS()
		_, _ = tcp.WindowScale()
		_, _ = tcp.SACKBlocks()
	})
}
