package wire

import (
	"encoding/binary"
	"fmt"
)

// TCPOptionKind identifies a TCP option.
type TCPOptionKind uint8

// Common TCP option kinds.
const (
	TCPOptionEndOfList     TCPOptionKind = 0
	TCPOptionNop           TCPOptionKind = 1
	TCPOptionMSS           TCPOptionKind = 2
	TCPOptionWindowScale   TCPOptionKind = 3
	TCPOptionSACKPermitted TCPOptionKind = 4
	TCPOptionSACK          TCPOptionKind = 5
	TCPOptionTimestamps    TCPOptionKind = 8
)

// String names common kinds.
func (k TCPOptionKind) String() string {
	switch k {
	case TCPOptionEndOfList:
		return "EOL"
	case TCPOptionNop:
		return "NOP"
	case TCPOptionMSS:
		return "MSS"
	case TCPOptionWindowScale:
		return "WScale"
	case TCPOptionSACKPermitted:
		return "SACKPermitted"
	case TCPOptionSACK:
		return "SACK"
	case TCPOptionTimestamps:
		return "Timestamps"
	default:
		return fmt.Sprintf("TCPOption(%d)", uint8(k))
	}
}

// TCPOption is one parsed option.
type TCPOption struct {
	Kind TCPOptionKind
	// Data is the option payload (excluding kind and length bytes);
	// empty for single-byte options.
	Data []byte
}

// ParseOptions walks the segment's options field, returning the parsed
// list. Malformed lengths produce an error; congestion-control
// evaluation (the paper's motivating example for header inspection)
// depends on fields like SACK blocks and timestamps parsing correctly.
func (t *TCP) ParseOptions() ([]TCPOption, error) {
	var out []TCPOption
	data := t.Options
	for len(data) > 0 {
		kind := TCPOptionKind(data[0])
		switch kind {
		case TCPOptionEndOfList:
			return out, nil
		case TCPOptionNop:
			data = data[1:]
			continue
		}
		if len(data) < 2 {
			return out, errTruncated{2, len(data)}
		}
		l := int(data[1])
		if l < 2 || l > len(data) {
			return out, fmt.Errorf("TCP option %v length %d invalid (have %d)", kind, l, len(data))
		}
		out = append(out, TCPOption{Kind: kind, Data: data[2:l]})
		data = data[l:]
	}
	return out, nil
}

// MSS returns the segment's advertised maximum segment size, if present.
func (t *TCP) MSS() (uint16, bool) {
	opts, err := t.ParseOptions()
	if err != nil {
		return 0, false
	}
	for _, o := range opts {
		if o.Kind == TCPOptionMSS && len(o.Data) == 2 {
			return binary.BigEndian.Uint16(o.Data), true
		}
	}
	return 0, false
}

// WindowScale returns the window-scale shift, if present.
func (t *TCP) WindowScale() (uint8, bool) {
	opts, err := t.ParseOptions()
	if err != nil {
		return 0, false
	}
	for _, o := range opts {
		if o.Kind == TCPOptionWindowScale && len(o.Data) == 1 {
			return o.Data[0], true
		}
	}
	return 0, false
}

// SACKBlock is one selective-acknowledgement range.
type SACKBlock struct{ Left, Right uint32 }

// SACKBlocks returns the segment's SACK ranges, if present.
func (t *TCP) SACKBlocks() ([]SACKBlock, bool) {
	opts, err := t.ParseOptions()
	if err != nil {
		return nil, false
	}
	for _, o := range opts {
		if o.Kind == TCPOptionSACK && len(o.Data)%8 == 0 && len(o.Data) > 0 {
			blocks := make([]SACKBlock, 0, len(o.Data)/8)
			for i := 0; i+8 <= len(o.Data); i += 8 {
				blocks = append(blocks, SACKBlock{
					Left:  binary.BigEndian.Uint32(o.Data[i : i+4]),
					Right: binary.BigEndian.Uint32(o.Data[i+4 : i+8]),
				})
			}
			return blocks, true
		}
	}
	return nil, false
}

// BuildOptions serializes options into a 4-byte-aligned block suitable
// for TCP.Options, padding with NOPs and a final EOL as needed.
func BuildOptions(opts ...TCPOption) ([]byte, error) {
	var out []byte
	for _, o := range opts {
		switch o.Kind {
		case TCPOptionNop, TCPOptionEndOfList:
			out = append(out, byte(o.Kind))
		default:
			l := 2 + len(o.Data)
			if l > 255 {
				return nil, fmt.Errorf("TCP option %v too long (%d)", o.Kind, l)
			}
			out = append(out, byte(o.Kind), byte(l))
			out = append(out, o.Data...)
		}
	}
	for len(out)%4 != 0 {
		out = append(out, byte(TCPOptionNop))
	}
	return out, nil
}
