package wire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomStack builds a random-but-valid layer stack from a seeded source,
// returning the serializable layers and the expected decoded layer types.
func randomStack(r *rng.Source) ([]SerializableLayer, []LayerType) {
	var layers []SerializableLayer
	var want []LayerType

	push := func(l SerializableLayer, t LayerType) {
		layers = append(layers, l)
		want = append(want, t)
	}

	useV6 := r.Bool(0.2)
	innerType := EthernetTypeIPv4
	if useV6 {
		innerType = EthernetTypeIPv6
	}

	// Link + encapsulation.
	vlan := r.Bool(0.8)
	mplsLabels := r.Intn(3) // 0..2
	pw := mplsLabels > 0 && r.Bool(0.5)

	outerNext := innerType
	if vlan {
		outerNext = EthernetTypeDot1Q
	} else if mplsLabels > 0 {
		outerNext = EthernetTypeMPLSUnicast
	}
	push(&Ethernet{SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2}, EthernetType: outerNext}, LayerTypeEthernet)
	if vlan {
		next := innerType
		if mplsLabels > 0 {
			next = EthernetTypeMPLSUnicast
		}
		push(&Dot1Q{VLANID: uint16(1 + r.Intn(4000)), EthernetType: next}, LayerTypeDot1Q)
	}
	for i := 0; i < mplsLabels; i++ {
		push(&MPLS{Label: uint32(16 + r.Intn(1000)), StackBottom: i == mplsLabels-1, TTL: 64}, LayerTypeMPLS)
	}
	if pw {
		push(&PWControlWord{SequenceNumber: uint16(r.Intn(1 << 16))}, LayerTypePWControlWord)
		push(&Ethernet{SrcMAC: MAC{2, 0, 0, 0, 1, 1}, DstMAC: MAC{2, 0, 0, 0, 1, 2}, EthernetType: innerType}, LayerTypeEthernet)
	}

	// Network + transport.
	useUDP := r.Bool(0.4)
	proto := IPProtocolTCP
	if useUDP {
		proto = IPProtocolUDP
	}
	if useV6 {
		push(&IPv6{NextHeader: proto, HopLimit: 64,
			SrcIP: netip.MustParseAddr("2001:db8::a"), DstIP: netip.MustParseAddr("2001:db8::b")}, LayerTypeIPv6)
	} else {
		push(&IPv4{TTL: 64, Protocol: proto,
			SrcIP: netip.MustParseAddr("10.9.8.7"), DstIP: netip.MustParseAddr("10.9.8.8")}, LayerTypeIPv4)
	}
	// Ports chosen to avoid app-layer classification so the stack ends
	// at transport + payload.
	sport := uint16(20000 + r.Intn(1000))
	dport := uint16(21000 + r.Intn(1000))
	if useUDP {
		push(&UDP{SrcPort: sport, DstPort: dport}, LayerTypeUDP)
	} else {
		push(&TCP{SrcPort: sport, DstPort: dport, DataOffset: 5, Flags: TCPPsh | TCPAck}, LayerTypeTCP)
	}
	payLen := 1 + r.Intn(1200)
	pay := make(Payload, payLen)
	for i := range pay {
		pay[i] = byte(r.Intn(256))
	}
	push(&pay, LayerTypePayload)
	return layers, want
}

// TestRandomStackRoundTrip: any random valid stack serializes and decodes
// back to exactly the same layer-type sequence, with the payload intact.
func TestRandomStackRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		layers, want := randomStack(r)
		buf := NewSerializeBuffer()
		opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
		if err := SerializeLayers(buf, opts, layers...); err != nil {
			t.Logf("serialize: %v", err)
			return false
		}
		pkt := NewPacket(buf.Bytes(), LayerTypeEthernet, Default)
		if fail := pkt.ErrorLayer(); fail != nil {
			t.Logf("decode failure: %v in %v", fail.Error(), pkt.String())
			return false
		}
		got := pkt.LayerTypes()
		if len(got) != len(want) {
			t.Logf("stack %v != want %v", got, want)
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("stack %v != want %v", got, want)
				return false
			}
		}
		// Payload bytes survive.
		wantPay := layers[len(layers)-1].(*Payload)
		lastLayer := pkt.Layers()[len(got)-1]
		if !bytes.Equal(lastLayer.LayerContents(), *wantPay) {
			t.Log("payload corrupted")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestRandomStackChecksumsValidate: serialized IPv4/TCP/UDP checksums
// validate under pseudo-header recomputation.
func TestRandomStackChecksumsValidate(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		layers, _ := randomStack(r)
		buf := NewSerializeBuffer()
		opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
		if err := SerializeLayers(buf, opts, layers...); err != nil {
			return false
		}
		pkt := NewPacket(buf.Bytes(), LayerTypeEthernet, Default)
		for _, l := range pkt.Layers() {
			if ip, ok := l.(*IPv4); ok {
				if internetChecksum(ip.LayerContents(), 0) != 0 {
					t.Log("IPv4 checksum invalid")
					return false
				}
				seg := ip.LayerPayload()
				switch ip.Protocol {
				case IPProtocolTCP, IPProtocolUDP:
					sum := ip.pseudoHeaderChecksum(ip.Protocol, len(seg))
					if internetChecksum(seg, sum) != 0 {
						t.Logf("%v checksum invalid", ip.Protocol)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics: arbitrary bytes must never panic the decoder,
// whatever garbage the capture hands it.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked on %d bytes: %v", len(data), r)
			}
		}()
		pkt := NewPacket(data, LayerTypeEthernet, Default)
		_ = pkt.Layers()
		_ = pkt.String()
		_ = pkt.ErrorLayer()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFastParserNeverPanics: same robustness for the zero-alloc path.
func TestFastParserNeverPanics(t *testing.T) {
	parser, _, _, _, _, _, _, _, _ := newFastParser()
	var decoded []LayerType
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("fast parser panicked: %v", r)
			}
		}()
		_ = parser.DecodeLayers(data, &decoded)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTruncationMonotonic: decoding a frame truncated at any length never
// yields a longer layer stack than the full frame, and the decoded
// prefix agrees with the full decode.
func TestTruncationMonotonic(t *testing.T) {
	r := rng.New(77)
	layers, _ := randomStack(r)
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, layers...); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	fullTypes := NewPacket(full, LayerTypeEthernet, Default).LayerTypes()
	for cut := 0; cut <= len(full); cut += 7 {
		types := NewPacket(full[:cut], LayerTypeEthernet, Default).LayerTypes()
		if len(types) > len(fullTypes) {
			t.Fatalf("cut %d produced deeper stack %v than full %v", cut, types, fullTypes)
		}
		for i := range types {
			// The final decoded layer of a truncated frame may differ in
			// type only if the full decode classified further; the prefix
			// up to the last common layer must match.
			if i < len(types)-1 && types[i] != fullTypes[i] {
				t.Fatalf("cut %d stack %v diverges from full %v at %d", cut, types, fullTypes, i)
			}
		}
	}
}
