package wire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPProtocol is the IPv4 Protocol / IPv6 Next Header field.
type IPProtocol uint8

// IP protocol numbers seen in FABRIC traffic.
const (
	IPProtocolICMPv4       IPProtocol = 1
	IPProtocolTCP          IPProtocol = 6
	IPProtocolUDP          IPProtocol = 17
	IPProtocolIPv6Fragment IPProtocol = 44
	IPProtocolGRE          IPProtocol = 47
	IPProtocolICMPv6       IPProtocol = 58
	IPProtocolNoNext       IPProtocol = 59
	IPProtocolHopByHop     IPProtocol = 0
)

// LayerType maps the protocol number to its decoder's layer type.
func (p IPProtocol) LayerType() LayerType {
	switch p {
	case IPProtocolICMPv4:
		return LayerTypeICMPv4
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolGRE:
		return LayerTypeGRE
	case IPProtocolICMPv6:
		return LayerTypeICMPv6
	case IPProtocolIPv6Fragment:
		return LayerTypeIPv6Fragment
	case IPProtocolHopByHop:
		return LayerTypeIPv6HopByHop
	case IPProtocolNoNext:
		return LayerTypeZero
	default:
		return LayerTypePayload
	}
}

// String names common protocols.
func (p IPProtocol) String() string {
	switch p {
	case IPProtocolICMPv4:
		return "ICMPv4"
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	case IPProtocolGRE:
		return "GRE"
	case IPProtocolICMPv6:
		return "ICMPv6"
	default:
		return fmt.Sprintf("IPProtocol(%d)", uint8(p))
	}
}

// IPv4HeaderLen is the minimum IPv4 header length (no options).
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header.
type IPv4 struct {
	Version    uint8 // always 4 after a successful decode
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length
	ID         uint16
	Flags      uint8  // 3 bits: reserved, DF, MF
	FragOffset uint16 // 13 bits
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	SrcIP      netip.Addr
	DstIP      netip.Addr
	Options    []byte

	contents, payload []byte
}

// IPv4 flag bits.
const (
	IPv4DontFragment  = 0x2
	IPv4MoreFragments = 0x1
)

// LayerType returns LayerTypeIPv4.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerContents returns the header bytes including options.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload returns the bytes after the header, bounded by the total
// length field when the buffer extends beyond it.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// CanDecode returns LayerTypeIPv4.
func (ip *IPv4) CanDecode() LayerType { return LayerTypeIPv4 }

// NextLayerType derives from the Protocol field; fragments with a non-zero
// offset decode as payload because the transport header is absent.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.FragOffset != 0 {
		return LayerTypePayload
	}
	return ip.Protocol.LayerType()
}

// DecodeFromBytes parses an IPv4 header.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return errTruncated{IPv4HeaderLen, len(data)}
	}
	ip.Version = data[0] >> 4
	if ip.Version != 4 {
		return fmt.Errorf("IPv4 version = %d", ip.Version)
	}
	ip.IHL = data[0] & 0x0F
	hlen := int(ip.IHL) * 4
	if hlen < IPv4HeaderLen {
		return fmt.Errorf("IPv4 IHL = %d words, below minimum", ip.IHL)
	}
	if len(data) < hlen {
		return errTruncated{hlen, len(data)}
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1FFF
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.SrcIP = netip.AddrFrom4([4]byte(data[12:16]))
	ip.DstIP = netip.AddrFrom4([4]byte(data[16:20]))
	ip.Options = data[IPv4HeaderLen:hlen]
	ip.contents = data[:hlen]
	end := len(data)
	// Honor the total-length field when the capture buffer carries
	// padding (common for minimum-size Ethernet frames).
	if tl := int(ip.Length); tl >= hlen && tl < end {
		end = tl
	}
	ip.payload = data[hlen:end]
	return nil
}

// NetworkFlow returns the src->dst IP flow.
func (ip *IPv4) NetworkFlow() Flow {
	return NewFlow(NewIPEndpoint(ip.SrcIP), NewIPEndpoint(ip.DstIP))
}

// SerializeTo prepends the IPv4 header. When opts fix lengths and
// checksums, the Length and Checksum fields are computed from the buffer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	hlen := IPv4HeaderLen + len(ip.Options)
	if hlen%4 != 0 {
		return fmt.Errorf("IPv4 options length %d not a multiple of 4", len(ip.Options))
	}
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(hlen)
	if err != nil {
		return err
	}
	bytes[0] = 4<<4 | uint8(hlen/4)
	bytes[1] = ip.TOS
	length := ip.Length
	if b.opts.FixLengths {
		length = uint16(hlen + payloadLen)
		ip.Length = length
	}
	binary.BigEndian.PutUint16(bytes[2:4], length)
	binary.BigEndian.PutUint16(bytes[4:6], ip.ID)
	binary.BigEndian.PutUint16(bytes[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1FFF)
	bytes[8] = ip.TTL
	bytes[9] = uint8(ip.Protocol)
	src, dst := as4(ip.SrcIP), as4(ip.DstIP)
	copy(bytes[12:16], src[:])
	copy(bytes[16:20], dst[:])
	copy(bytes[20:], ip.Options)
	binary.BigEndian.PutUint16(bytes[10:12], 0)
	if b.opts.ComputeChecksums {
		ip.Checksum = internetChecksum(bytes[:hlen], 0)
	}
	binary.BigEndian.PutUint16(bytes[10:12], ip.Checksum)
	return nil
}

// pseudoHeaderChecksum computes the partial checksum over the IPv4
// pseudo-header used by TCP and UDP.
func (ip *IPv4) pseudoHeaderChecksum(proto IPProtocol, length int) uint32 {
	var sum uint32
	src, dst := as4(ip.SrcIP), as4(ip.DstIP)
	sum += uint32(binary.BigEndian.Uint16(src[0:2])) + uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2])) + uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// IPv6HeaderLen is the fixed IPv6 header length.
const IPv6HeaderLen = 40

// IPv6 is an IPv6 fixed header.
type IPv6 struct {
	Version      uint8 // always 6 after a successful decode
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	Length       uint16 // payload length
	NextHeader   IPProtocol
	HopLimit     uint8
	SrcIP        netip.Addr
	DstIP        netip.Addr

	contents, payload []byte
}

// LayerType returns LayerTypeIPv6.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// LayerContents returns the 40 header bytes.
func (ip *IPv6) LayerContents() []byte { return ip.contents }

// LayerPayload returns the bytes after the header.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// CanDecode returns LayerTypeIPv6.
func (ip *IPv6) CanDecode() LayerType { return LayerTypeIPv6 }

// NextLayerType derives from the NextHeader field.
func (ip *IPv6) NextLayerType() LayerType { return ip.NextHeader.LayerType() }

// DecodeFromBytes parses an IPv6 fixed header.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return errTruncated{IPv6HeaderLen, len(data)}
	}
	ip.Version = data[0] >> 4
	if ip.Version != 6 {
		return fmt.Errorf("IPv6 version = %d", ip.Version)
	}
	v := binary.BigEndian.Uint32(data[0:4])
	ip.TrafficClass = uint8(v >> 20)
	ip.FlowLabel = v & 0xFFFFF
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = IPProtocol(data[6])
	ip.HopLimit = data[7]
	ip.SrcIP = netip.AddrFrom16([16]byte(data[8:24]))
	ip.DstIP = netip.AddrFrom16([16]byte(data[24:40]))
	ip.contents = data[:IPv6HeaderLen]
	end := len(data)
	if tl := IPv6HeaderLen + int(ip.Length); tl < end {
		end = tl
	}
	ip.payload = data[IPv6HeaderLen:end]
	return nil
}

// NetworkFlow returns the src->dst IP flow.
func (ip *IPv6) NetworkFlow() Flow {
	return NewFlow(NewIPEndpoint(ip.SrcIP), NewIPEndpoint(ip.DstIP))
}

// SerializeTo prepends the IPv6 header.
func (ip *IPv6) SerializeTo(b *SerializeBuffer) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(IPv6HeaderLen)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(bytes[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xFFFFF)
	length := ip.Length
	if b.opts.FixLengths {
		length = uint16(payloadLen)
		ip.Length = length
	}
	binary.BigEndian.PutUint16(bytes[4:6], length)
	bytes[6] = uint8(ip.NextHeader)
	bytes[7] = ip.HopLimit
	src, dst := as16(ip.SrcIP), as16(ip.DstIP)
	copy(bytes[8:24], src[:])
	copy(bytes[24:40], dst[:])
	return nil
}

// as4 is a panic-free As4: the zero Addr (an unset field) serializes as
// 0.0.0.0 rather than crashing the writer.
func as4(a netip.Addr) [4]byte {
	if !a.Is4() && !a.Is4In6() {
		return [4]byte{}
	}
	return a.As4()
}

// as16 is a panic-free As16 for unset fields.
func as16(a netip.Addr) [16]byte {
	if !a.IsValid() {
		return [16]byte{}
	}
	return a.As16()
}

func (ip *IPv6) pseudoHeaderChecksum(proto IPProtocol, length int) uint32 {
	var sum uint32
	src, dst := as16(ip.SrcIP), as16(ip.DstIP)
	for i := 0; i < 16; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(src[i : i+2]))
		sum += uint32(binary.BigEndian.Uint16(dst[i : i+2]))
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// IPv6HopByHop is the hop-by-hop options extension header.
type IPv6HopByHop struct {
	NextHeader IPProtocol
	Options    []byte

	contents, payload []byte
}

// LayerType returns LayerTypeIPv6HopByHop.
func (h *IPv6HopByHop) LayerType() LayerType { return LayerTypeIPv6HopByHop }

// LayerContents returns the extension header bytes.
func (h *IPv6HopByHop) LayerContents() []byte { return h.contents }

// LayerPayload returns the bytes after the extension header.
func (h *IPv6HopByHop) LayerPayload() []byte { return h.payload }

// CanDecode returns LayerTypeIPv6HopByHop.
func (h *IPv6HopByHop) CanDecode() LayerType { return LayerTypeIPv6HopByHop }

// NextLayerType derives from the NextHeader field.
func (h *IPv6HopByHop) NextLayerType() LayerType { return h.NextHeader.LayerType() }

// DecodeFromBytes parses the extension header.
func (h *IPv6HopByHop) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errTruncated{8, len(data)}
	}
	h.NextHeader = IPProtocol(data[0])
	hlen := int(data[1])*8 + 8
	if len(data) < hlen {
		return errTruncated{hlen, len(data)}
	}
	h.Options = data[2:hlen]
	h.contents = data[:hlen]
	h.payload = data[hlen:]
	return nil
}

// SerializeTo prepends the extension header.
func (h *IPv6HopByHop) SerializeTo(b *SerializeBuffer) error {
	hlen := 2 + len(h.Options)
	if hlen%8 != 0 {
		return fmt.Errorf("IPv6 hop-by-hop length %d not a multiple of 8", hlen)
	}
	bytes, err := b.PrependBytes(hlen)
	if err != nil {
		return err
	}
	bytes[0] = uint8(h.NextHeader)
	bytes[1] = uint8(hlen/8 - 1)
	copy(bytes[2:], h.Options)
	return nil
}

// IPv6Fragment is the fragment extension header.
type IPv6Fragment struct {
	NextHeader     IPProtocol
	FragmentOffset uint16 // 13 bits
	MoreFragments  bool
	Identification uint32

	contents, payload []byte
}

// LayerType returns LayerTypeIPv6Fragment.
func (f *IPv6Fragment) LayerType() LayerType { return LayerTypeIPv6Fragment }

// LayerContents returns the 8 header bytes.
func (f *IPv6Fragment) LayerContents() []byte { return f.contents }

// LayerPayload returns the fragment data.
func (f *IPv6Fragment) LayerPayload() []byte { return f.payload }

// CanDecode returns LayerTypeIPv6Fragment.
func (f *IPv6Fragment) CanDecode() LayerType { return LayerTypeIPv6Fragment }

// NextLayerType returns the encapsulated type for first fragments and
// payload for continuations.
func (f *IPv6Fragment) NextLayerType() LayerType {
	if f.FragmentOffset != 0 {
		return LayerTypePayload
	}
	return f.NextHeader.LayerType()
}

// DecodeFromBytes parses the fragment header.
func (f *IPv6Fragment) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errTruncated{8, len(data)}
	}
	f.NextHeader = IPProtocol(data[0])
	v := binary.BigEndian.Uint16(data[2:4])
	f.FragmentOffset = v >> 3
	f.MoreFragments = v&0x1 != 0
	f.Identification = binary.BigEndian.Uint32(data[4:8])
	f.contents = data[:8]
	f.payload = data[8:]
	return nil
}

// SerializeTo prepends the fragment header.
func (f *IPv6Fragment) SerializeTo(b *SerializeBuffer) error {
	bytes, err := b.PrependBytes(8)
	if err != nil {
		return err
	}
	bytes[0] = uint8(f.NextHeader)
	bytes[1] = 0
	v := f.FragmentOffset << 3
	if f.MoreFragments {
		v |= 1
	}
	binary.BigEndian.PutUint16(bytes[2:4], v)
	binary.BigEndian.PutUint32(bytes[4:8], f.Identification)
	return nil
}
