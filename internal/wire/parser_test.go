package wire

import (
	"errors"
	"testing"
	"testing/quick"
)

func newFastParser() (*DecodingLayerParser, *Ethernet, *Dot1Q, *MPLS, *PWControlWord, *IPv4, *IPv6, *TCP, *UDP) {
	var (
		eth  Ethernet
		dot  Dot1Q
		mpls MPLS
		cw   PWControlWord
		ip4  IPv4
		ip6  IPv6
		tcp  TCP
		udp  UDP
	)
	p := NewDecodingLayerParser(LayerTypeEthernet, &eth, &dot, &mpls, &cw, &ip4, &ip6, &tcp, &udp)
	return p, &eth, &dot, &mpls, &cw, &ip4, &ip6, &tcp, &udp
}

func TestParserDecodesFabricStack(t *testing.T) {
	parser, _, dot, mpls, _, ip4, _, tcp, _ := newFastParser()
	data := fabricFrame(t)
	var decoded []LayerType
	err := parser.DecodeLayers(data, &decoded)
	// The TLS layer is not registered, so the parser should stop there.
	var unsup ErrUnsupportedLayer
	if !errors.As(err, &unsup) || unsup.LayerType != LayerTypeTLS {
		t.Fatalf("err = %v, want unsupported TLS", err)
	}
	want := []LayerType{
		LayerTypeEthernet, LayerTypeDot1Q, LayerTypeMPLS, LayerTypeMPLS,
		LayerTypePWControlWord, LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP,
	}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded = %v, want %v", decoded, want)
		}
	}
	// The parser fills the caller's structs.
	if dot.VLANID != 2101 {
		t.Errorf("vlan = %d", dot.VLANID)
	}
	if mpls.Label != 2000 || !mpls.StackBottom {
		t.Errorf("mpls (last decode wins) = %+v", mpls)
	}
	if ip4.DstIP != testDstIP4 {
		t.Errorf("dst = %v", ip4.DstIP)
	}
	if tcp.DstPort != 443 {
		t.Errorf("dport = %d", tcp.DstPort)
	}
}

func TestParserReuseNoState(t *testing.T) {
	parser, _, _, _, _, ip4, _, _, udp := newFastParser()
	frameA := buildFrame(t,
		&Ethernet{EthernetType: EthernetTypeIPv4},
		&IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: testSrcIP4, DstIP: testDstIP4},
		&UDP{SrcPort: 1, DstPort: 2})
	frameB := buildFrame(t,
		&Ethernet{EthernetType: EthernetTypeIPv4},
		&IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: testDstIP4, DstIP: testSrcIP4},
		&UDP{SrcPort: 3, DstPort: 4})
	var decoded []LayerType
	if err := parser.DecodeLayers(frameA, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := parser.DecodeLayers(frameB, &decoded); err != nil {
		t.Fatal(err)
	}
	if ip4.SrcIP != testDstIP4 || udp.SrcPort != 3 {
		t.Errorf("second decode did not overwrite: ip=%v udp=%d", ip4.SrcIP, udp.SrcPort)
	}
}

func TestParserTruncationFlag(t *testing.T) {
	parser, _, _, _, _, _, _, _, _ := newFastParser()
	data := fabricFrame(t)
	var decoded []LayerType
	err := parser.DecodeLayers(data[:50], &decoded)
	if err == nil {
		t.Fatal("expected error on truncated frame")
	}
	if !parser.Truncated {
		t.Error("Truncated flag not set")
	}
	// A protocol error (bad version) is not a truncation.
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[44] = 0x95
	err = parser.DecodeLayers(bad, &decoded)
	if err == nil {
		t.Fatal("expected error on corrupt frame")
	}
	if parser.Truncated {
		t.Error("protocol error mislabeled as truncation")
	}
}

func TestParserMatchesPacketDecode(t *testing.T) {
	// Property: for random TCP/UDP frames, the fast parser and the Packet
	// decoder agree on the layer stack (up to the parser's registered set).
	f := func(srcPort, dstPort uint16, useV6, useUDP bool, payLen uint8) bool {
		var layers []SerializableLayer
		layers = append(layers, &Ethernet{
			DstMAC: testDstMAC, SrcMAC: testSrcMAC,
			EthernetType: map[bool]EthernetType{false: EthernetTypeIPv4, true: EthernetTypeIPv6}[useV6],
		})
		proto := IPProtocolTCP
		if useUDP {
			proto = IPProtocolUDP
		}
		if useV6 {
			layers = append(layers, &IPv6{NextHeader: proto, HopLimit: 64, SrcIP: testSrcIP6, DstIP: testDstIP6})
		} else {
			layers = append(layers, &IPv4{TTL: 64, Protocol: proto, SrcIP: testSrcIP4, DstIP: testDstIP4})
		}
		if useUDP {
			layers = append(layers, &UDP{SrcPort: srcPort, DstPort: dstPort})
		} else {
			layers = append(layers, &TCP{SrcPort: srcPort, DstPort: dstPort, DataOffset: 5})
		}
		pay := Payload(make([]byte, int(payLen)))
		layers = append(layers, &pay)

		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, layers...); err != nil {
			return false
		}
		data := buf.Bytes()

		parser, _, _, _, _, _, _, _, _ := newFastParser()
		var fast []LayerType
		errFast := parser.DecodeLayers(data, &fast)

		pkt := NewPacket(data, LayerTypeEthernet, Default)
		slow := pkt.LayerTypes()

		// Fast path may stop early on app layers; its decoded prefix must
		// match the slow path's.
		if errFast != nil {
			var unsup ErrUnsupportedLayer
			if !errors.As(errFast, &unsup) {
				return false
			}
		}
		if len(fast) > len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserUnregisteredFirstLayer(t *testing.T) {
	parser := NewDecodingLayerParser(LayerTypeEthernet) // nothing registered
	var decoded []LayerType
	err := parser.DecodeLayers([]byte{1, 2, 3}, &decoded)
	var unsup ErrUnsupportedLayer
	if !errors.As(err, &unsup) || unsup.LayerType != LayerTypeEthernet {
		t.Errorf("err = %v", err)
	}
}

func BenchmarkDecodingLayerParser(b *testing.B) {
	parser, _, _, _, _, _, _, _, _ := newFastParser()
	data := fabricFrame(b)
	var decoded []LayerType
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = parser.DecodeLayers(data, &decoded)
	}
}

func BenchmarkNewPacketDecode(b *testing.B) {
	data := fabricFrame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket(data, LayerTypeEthernet, NoCopy)
		_ = p.Layers()
	}
}
