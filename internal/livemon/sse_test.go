package livemon

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// newTestServer builds a memory-only server with a fixed-clock sim
// registry attached and no monitor.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.Attach(obs.NewRegistry(nil), nil)
	return s
}

type frame struct {
	id    string
	event string
	data  string
}

// readFrames parses n SSE frames off the stream, ignoring keepalive
// comments.
func readFrames(t *testing.T, r *bufio.Reader, n int) []frame {
	t.Helper()
	var out []frame
	var cur frame
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d/%d frames: %v", len(out), n, err)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.event != "":
			out = append(out, cur)
			cur = frame{}
		}
	}
	return out
}

func openStream(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*bufio.Reader, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+path, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return bufio.NewReader(resp.Body), func() { cancel(); resp.Body.Close() }
}

func TestSSEReplayFraming(t *testing.T) {
	s := newTestServer(t)
	for i := 1; i <= 3; i++ {
		s.PublishEvent(KindAlert, sim.Time(i*1000), []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// replay=all streams the whole backlog with ring seqs as event ids.
	r, done := openStream(t, ts, "/events?replay=all", nil)
	frames := readFrames(t, r, 3)
	done()
	for i, f := range frames {
		want := frame{id: fmt.Sprint(i + 1), event: KindAlert, data: fmt.Sprintf(`{"n":%d}`, i+1)}
		if f != want {
			t.Fatalf("frame %d = %+v, want %+v", i, f, want)
		}
	}

	// A reconnect with Last-Event-ID resumes after that id.
	r, done = openStream(t, ts, "/events", map[string]string{"Last-Event-ID": "1"})
	frames = readFrames(t, r, 2)
	done()
	if frames[0].id != "2" || frames[1].id != "3" {
		t.Fatalf("Last-Event-ID replay ids = %s,%s, want 2,3", frames[0].id, frames[1].id)
	}

	// The query-parameter form works for curl-style clients.
	r, done = openStream(t, ts, "/events?last_event_id=2", nil)
	frames = readFrames(t, r, 1)
	done()
	if frames[0].id != "3" {
		t.Fatalf("last_event_id=2 replay id = %s, want 3", frames[0].id)
	}
}

func TestSSELiveBroadcast(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A fresh client (no Last-Event-ID) gets the live stream only.
	s.PublishEvent(KindAlert, 10, []byte(`{"old":true}`))
	r, done := openStream(t, ts, "/events", nil)
	defer done()

	// Wait for the subscriber to register, then publish.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.PublishEvent(KindProgress, 20, []byte(`{"live":true}`))
	frames := readFrames(t, r, 1)
	if frames[0].event != KindProgress || frames[0].data != `{"live":true}` {
		t.Fatalf("live frame = %+v", frames[0])
	}
}

func TestSSEBadLastEventID(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest("GET", ts.URL+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
