package livemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/sim"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	code, body := get(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, code, body)
	}
	if err := json.Unmarshal([]byte(body), into); err != nil {
		t.Fatalf("GET %s: %v in %s", path, err, body)
	}
}

// TestServerEndpoints drives a tiny simulation through PublishTick and
// checks every read endpoint against it.
func TestServerEndpoints(t *testing.T) {
	k := sim.NewKernel()
	reg := obs.NewKernelRegistry(k)
	mon, err := health.NewMonitor(k, reg, nil, health.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{PublishEvery: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Attach(reg, mon)

	rx := reg.Counter("capture_frames_received_total", obs.L("site", "STAR"))
	for i := 1; i <= 3; i++ {
		k.At(sim.Time(i)*sim.Second, func() { rx.Add(10) })
	}
	// The host drive loop: step the kernel, publish between steps.
	for k.Step() {
		mon.Tick()
		s.PublishTick(k.Now())
	}
	if got := s.Interval(); got != sim.Second {
		t.Fatalf("Interval = %d", got)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`capture_frames_received_total{site="STAR"} 30`,
		"patchwork_build_info",
		"patchwork_runtime_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if _, err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	var status struct {
		SimNs     int64 `json:"sim_ns"`
		Published int   `json:"published"`
		Sites     []struct {
			Site string `json:"site"`
		} `json:"sites"`
		Ring ringStatus `json:"ring"`
	}
	getJSON(t, ts, "/api/status", &status)
	if status.SimNs != int64(3*sim.Second) || status.Published != 3 {
		t.Fatalf("status = %+v", status)
	}
	if len(status.Sites) != 1 || status.Sites[0].Site != "STAR" {
		t.Fatalf("sites = %+v", status.Sites)
	}
	if status.Ring.Records == 0 {
		t.Fatalf("ring empty: %+v", status.Ring)
	}

	var alerts struct {
		Active []alertDTO `json:"active"`
	}
	getJSON(t, ts, "/api/alerts", &alerts)
	if len(alerts.Active) != 0 {
		t.Fatalf("unexpected active alerts: %+v", alerts.Active)
	}

	var series struct {
		Name   string `json:"name"`
		Series []struct {
			Labels string `json:"labels"`
			Points []struct {
				TNs int64   `json:"t_ns"`
				V   float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	getJSON(t, ts, "/api/series?name=capture_frames_received_total", &series)
	if len(series.Series) != 1 || series.Series[0].Labels != "site=STAR" {
		t.Fatalf("series = %+v", series.Series)
	}
	pts := series.Series[0].Points
	if len(pts) != 3 || pts[0].V != 10 || pts[2].V != 30 {
		t.Fatalf("points = %+v", pts)
	}
	from, to := int64(2*sim.Second), int64(2*sim.Second)
	getJSON(t, ts, fmt.Sprintf("/api/series?name=capture_frames_received_total&from=%d&to=%d", from, to), &series)
	if len(series.Series) != 1 || len(series.Series[0].Points) != 1 || series.Series[0].Points[0].V != 20 {
		t.Fatalf("range query = %+v", series.Series)
	}
	if code, _ := get(t, ts, "/api/series"); code != http.StatusBadRequest {
		t.Fatalf("series without name: %d, want 400", code)
	}

	var bi BuildInfo
	getJSON(t, ts, "/api/buildinfo", &bi)
	if bi.GoVersion == "" {
		t.Fatal("buildinfo missing go_version")
	}
}

// TestAlertTransitionsStream checks that monitor transitions reach the
// ring and the active-alert view via the subscription callback.
func TestAlertTransitionsStream(t *testing.T) {
	s := newTestServer(t)
	s.publishAlert(health.AlertEvent{
		At: 5 * sim.Second, Rule: "capture-drops", Severity: health.SeverityCritical,
		Instance: "site=STAR", State: "firing", Value: 0.4,
	})
	evs := s.ring.EventsSince(0)
	if len(evs) != 1 || evs[0].Kind != KindAlert {
		t.Fatalf("ring events = %+v", evs)
	}
	var dto alertEventDTO
	if err := json.Unmarshal(evs[0].Data, &dto); err != nil {
		t.Fatal(err)
	}
	if dto.Rule != "capture-drops" || dto.Severity != "critical" || dto.State != "firing" || dto.Value == nil || *dto.Value != 0.4 {
		t.Fatalf("alert dto = %+v", dto)
	}
}

// TestConcurrentScrapeRace scrapes every endpoint from several
// goroutines while the simulation goroutine steps the kernel, mutates
// the registry, and publishes ticks. Run under -race this is the
// snapshot-consistency gate: HTTP handlers must only ever touch frozen
// copies, never live sim state.
func TestConcurrentScrapeRace(t *testing.T) {
	k := sim.NewKernel()
	reg := obs.NewKernelRegistry(k)
	obs.CollectKernel(reg, k)
	s, err := New(Config{PublishEvery: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Attach(reg, nil)

	rx := reg.Counter("capture_frames_received_total", obs.L("site", "STAR"))
	lat := reg.Histogram("hostsim_writev_latency_ns", obs.L("site", "STAR"))
	var tick func(i int)
	tick = func(i int) {
		rx.Add(3)
		lat.Observe(int64(1000 + i*7))
		if i < 2000 {
			k.After(sim.Microsecond*50, func() { tick(i + 1) })
		}
	}
	k.At(0, func() { tick(0) })

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	paths := []string{"/metrics", "/api/status", "/api/series?name=capture_frames_received_total", "/api/alerts"}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[(g+i)%len(paths)]
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					return // server shutting down
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if path == "/metrics" {
					if _, verr := obs.ValidateExposition(strings.NewReader(string(body))); verr != nil {
						t.Errorf("mid-run /metrics invalid: %v", verr)
						return
					}
				}
			}
		}(g)
	}
	// Worker-goroutine progress publishing races the scrapes too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.PublishProgress(i%4, fmt.Sprintf("exp-%d", i), "start", i, 500)
		}
	}()

	next := sim.Duration(0)
	for k.Step() {
		if k.Now() >= next {
			s.PublishTick(k.Now())
			next = k.Now() + s.Interval()
		}
	}
	s.PublishTick(k.Now())
	close(done)
	wg.Wait()

	if _, body := get(t, ts, "/metrics"); !strings.Contains(body, `capture_frames_received_total{site="STAR"} 6003`) {
		t.Fatalf("final counter missing from /metrics:\n%s", body)
	}
}
