package livemon

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// sseEvent is one frame queued to a subscriber: the ring sequence
// number doubles as the SSE event id, so a client that reconnects with
// Last-Event-ID resumes exactly where its stream broke.
type sseEvent struct {
	id   uint64
	typ  string
	data []byte
}

type subscriber struct {
	ch chan sseEvent
}

// subscribe registers a new SSE client and returns the replay backlog
// (ring events past lastID). Replay collection and registration happen
// under one lock acquisition, so no event published in between can be
// missed or duplicated.
func (s *Server) subscribe(lastID uint64) ([]Record, *subscriber) {
	sub := &subscriber{ch: make(chan sseEvent, s.cfg.SSEBuffer)}
	s.mu.Lock()
	defer s.mu.Unlock()
	replay := s.ring.EventsSince(lastID)
	s.subs[sub] = struct{}{}
	return replay, sub
}

func (s *Server) unsubscribe(sub *subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, sub)
}

// broadcastLocked queues an event to every subscriber without blocking:
// the publisher is the simulation goroutine and must never wait on a
// slow client. A full queue drops the frame and counts the drop — the
// client recovers the gap by reconnecting with Last-Event-ID.
func (s *Server) broadcastLocked(ev sseEvent) {
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
			s.sseDropped++
		}
	}
}

// handleEvents serves the /events SSE stream: replay of missed events
// first (honoring Last-Event-ID, also accepted as ?last_event_id= for
// curl-style clients), then live alert firings/resolutions, status
// diffs, and progress events as they are published.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// A fresh client starts from the live stream; everything already in
	// the ring is history it did not ask for. Last-Event-ID (or
	// ?last_event_id=) resumes after that id; ?replay=all streams the
	// whole retained backlog first.
	lastID := ^uint64(0)
	idStr := r.Header.Get("Last-Event-ID")
	if idStr == "" {
		idStr = r.URL.Query().Get("last_event_id")
	}
	switch {
	case idStr != "":
		n, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad Last-Event-ID", http.StatusBadRequest)
			return
		}
		lastID = n
	case r.URL.Query().Get("replay") == "all":
		lastID = 0
	}
	replay, sub := s.subscribe(lastID)
	defer s.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for _, rec := range replay {
		if err := writeFrame(w, sseEvent{id: rec.Seq, typ: rec.Kind, data: rec.Data}); err != nil {
			return
		}
	}
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closed:
			return
		case ev := <-sub.ch:
			if err := writeFrame(w, ev); err != nil {
				return
			}
			fl.Flush()
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeFrame emits one SSE frame. Data is single-line JSON, so the
// one-data-line form is always valid.
func writeFrame(w http.ResponseWriter, ev sseEvent) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.typ, ev.data)
	return err
}
