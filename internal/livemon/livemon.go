// Package livemon is the live telemetry plane: an embeddable HTTP
// server that exposes a running simulation's metrics, health, and
// progress without perturbing it.
//
// The core contract is determinism. The simulation is single-threaded
// and its artifacts must be byte-identical for a given seed, so the
// server never touches sim-owned state from an HTTP goroutine and never
// schedules kernel events. Instead the host's drive loop calls
// PublishTick between kernel steps: the sim goroutine takes a frozen
// registry snapshot, digests the health monitor's status table, and
// hands the copies to the server under its lock. HTTP handlers only
// ever render those published copies. Wall-clock runtime metrics
// (goroutines, heap, GC, worker progress) live in a separate registry
// that is served on /metrics but never written to an artifact.
//
// Published snapshots, alert transitions, status diffs, and progress
// events also land in a bounded on-disk ring (see Ring), which backs
// /api/series time-range queries and SSE reconnect replay.
package livemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/flowstore"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storefault"
)

// Config sizes and locates one Server.
type Config struct {
	// Addr is the listen address (":0" for an ephemeral port).
	Addr string
	// Dir is the ring directory; empty keeps the ring in memory only.
	Dir string
	// AddrFile, when set, receives the bound address after listen — a
	// rendezvous for probes when Addr was ephemeral.
	AddrFile string
	// PublishEvery is the sim-time cadence hosts should call
	// PublishTick at; zero defaults to one virtual second.
	PublishEvery sim.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// RingSegmentBytes and RingMaxSegments bound the ring (zero takes
	// the defaults).
	RingSegmentBytes int64
	RingMaxSegments  int
	// SSEBuffer is the per-subscriber queue depth; zero defaults to 64.
	SSEBuffer int
	// FS is the filesystem seam the ring writes through; nil means the
	// real disk (storage-chaos campaigns inject a fault layer here).
	FS storefault.FS
}

// Server is one live telemetry instance. Create with New, wire with
// Attach, serve with ListenAndServe, feed with PublishTick from the
// simulation's drive loop, and Close on shutdown to flush the ring.
type Server struct {
	cfg     Config
	bi      BuildInfo
	runtime *obs.Registry

	// simReg and mon are only ever dereferenced on the simulation
	// goroutine (PublishTick, monitor callbacks) — never from handlers.
	simReg *obs.Registry
	mon    *health.Monitor

	ln   net.Listener
	hs   *http.Server
	done chan struct{} // ListenAndServe's goroutine has returned

	mu         sync.Mutex
	ring       *Ring
	points     []obs.MetricPoint // last published sim snapshot
	simNow     sim.Time          // sim time of that snapshot
	published  int               // PublishTick count
	status     []siteStatusDTO
	prevStatus map[string]string // site -> marshaled row, for diffing
	alerts     []alertDTO
	subs       map[*subscriber]struct{}
	sseDropped uint64
	closed     chan struct{}
	closeOnce  sync.Once

	// Profiling sources (SetProfSources); any may be unset. The summary
	// and chrome functions snapshot under the profiler's own lock, and
	// provFlush drains the provenance writer's buffer, so serving them
	// from HTTP goroutines never touches sim-owned state.
	profSummary func() any
	profChrome  func(io.Writer) error
	provPath    string
	provFlush   func() error

	// flowPath backs /api/flows (SetFlowStore); the store file is opened
	// read-only per request, so handlers never share state with the
	// analysis pipeline that appends to it.
	flowPath string
}

// New builds a Server: opens (and, after a crash, recovers) the ring
// and constructs the wall-clock runtime registry.
func New(cfg Config) (*Server, error) {
	if cfg.SSEBuffer <= 0 {
		cfg.SSEBuffer = 64
	}
	ring, err := OpenRingFS(cfg.FS, cfg.Dir, cfg.RingSegmentBytes, cfg.RingMaxSegments)
	if err != nil {
		return nil, err
	}
	bi := readBuildInfo()
	return &Server{
		cfg:        cfg,
		bi:         bi,
		runtime:    newRuntimeRegistry(bi),
		ring:       ring,
		prevStatus: make(map[string]string),
		subs:       make(map[*subscriber]struct{}),
		closed:     make(chan struct{}),
	}, nil
}

// Attach wires the sim-time registry and (optionally nil) health
// monitor. Alert transitions stream out as SSE events the moment the
// monitor evaluates them. Call before the simulation starts running.
func (s *Server) Attach(reg *obs.Registry, mon *health.Monitor) {
	s.simReg = reg
	s.mon = mon
	mon.Subscribe(s.publishAlert) // nil-safe
}

// Runtime exposes the wall-clock registry so hosts can add their own
// operational gauges (campaign WAL lag, checkpoint age). Instruments
// here are served on /metrics but never written to artifacts.
func (s *Server) Runtime() *obs.Registry { return s.runtime }

// BuildInfo returns the build metadata served on /api/buildinfo.
func (s *Server) BuildInfo() BuildInfo { return s.bi }

// RingRef exposes the ring for tests and probes; all access must happen
// before serving starts or after Close.
func (s *Server) RingRef() *Ring { return s.ring }

// Interval is the sim-time publish cadence hosts should drive
// PublishTick at.
func (s *Server) Interval() sim.Duration {
	if s.cfg.PublishEvery > 0 {
		return s.cfg.PublishEvery
	}
	return sim.Second
}

// siteStatusDTO mirrors health.SiteStatus for JSON: encoding/json
// rejects NaN, so the not-modeled markers become absent fields.
type siteStatusDTO struct {
	Site           string   `json:"site"`
	Alerts         int      `json:"alerts"`
	Worst          string   `json:"worst,omitempty"`
	DropRatio      float64  `json:"drop_ratio"`
	MirrorLoss     float64  `json:"mirror_loss"`
	QueueHighwater float64  `json:"queue_highwater"`
	FreeBytes      *float64 `json:"free_bytes,omitempty"`
	WritevMeanNs   *float64 `json:"writev_mean_ns,omitempty"`
}

func statusDTO(st health.SiteStatus) siteStatusDTO {
	d := siteStatusDTO{
		Site:           st.Site,
		Alerts:         st.Alerts,
		DropRatio:      st.DropRatio,
		MirrorLoss:     st.MirrorLoss,
		QueueHighwater: st.QueueHighwater,
	}
	if st.HasAlerts {
		d.Worst = st.Worst.String()
	}
	if !math.IsNaN(st.FreeBytes) {
		v := st.FreeBytes
		d.FreeBytes = &v
	}
	if !math.IsNaN(st.WritevMeanNs) {
		v := st.WritevMeanNs
		d.WritevMeanNs = &v
	}
	return d
}

// alertDTO is one active alert in /api/alerts.
type alertDTO struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Instance string `json:"instance,omitempty"`
	SinceNs  int64  `json:"since_ns"`
}

// alertEventDTO is one firing/resolved transition on the SSE stream.
type alertEventDTO struct {
	AtNs     int64    `json:"at_ns"`
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Instance string   `json:"instance,omitempty"`
	State    string   `json:"state"`
	Value    *float64 `json:"value,omitempty"`
}

// seriesPoint is the compact per-instrument encoding inside a ring
// snapshot record: name, label identity, value (observation count for
// histograms, which also carry the sum).
type seriesPoint struct {
	N string  `json:"n"`
	L string  `json:"l,omitempty"`
	V float64 `json:"v"`
	S int64   `json:"s,omitempty"`
}

type snapshotRecord struct {
	Points []seriesPoint `json:"points"`
}

func labelID(labels []obs.Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

func encodeSnapshot(points []obs.MetricPoint) []byte {
	rec := snapshotRecord{Points: make([]seriesPoint, 0, len(points))}
	for _, mp := range points {
		if math.IsNaN(mp.Value) || math.IsInf(mp.Value, 0) {
			continue // JSON cannot carry it; absent beats corrupt
		}
		rec.Points = append(rec.Points, seriesPoint{
			N: mp.Name, L: labelID(mp.Labels), V: mp.Value, S: mp.Sum,
		})
	}
	return mustJSON(rec)
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All inputs are server-owned structs; a failure is a bug.
		panic(fmt.Sprintf("livemon: marshal: %v", err))
	}
	return b
}

// PublishTick runs on the simulation goroutine, between kernel steps:
// it snapshots the sim registry and health state there (where touching
// them is safe) and publishes frozen copies for the HTTP side. One
// snapshot record lands in the ring per tick; sites whose status row
// changed since the last tick land as status events and stream to SSE
// subscribers.
func (s *Server) PublishTick(now sim.Time) {
	if s == nil {
		return
	}
	points := s.simReg.Snapshot()
	var rows []siteStatusDTO
	for _, st := range s.mon.Status() {
		rows = append(rows, statusDTO(st))
	}
	var active []alertDTO
	for _, a := range s.mon.ActiveAlerts() {
		active = append(active, alertDTO{
			Rule: a.Rule, Severity: a.Severity.String(),
			Instance: a.Instance, SinceNs: int64(a.Since),
		})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = points
	s.simNow = now
	s.published++
	s.alerts = active
	s.ring.Append(KindSnapshot, now, encodeSnapshot(points))
	for _, row := range rows {
		encoded := mustJSON(row)
		key := row.Site
		if s.prevStatus[key] == string(encoded) {
			continue
		}
		s.prevStatus[key] = string(encoded)
		if seq, stored := s.ring.Append(KindStatus, now, encoded); stored {
			s.broadcastLocked(sseEvent{id: seq, typ: KindStatus, data: encoded})
		}
	}
	s.status = rows
}

// publishAlert is the monitor subscription callback; it runs on the
// simulation goroutine inside kernel steps.
func (s *Server) publishAlert(ev health.AlertEvent) {
	dto := alertEventDTO{
		AtNs: int64(ev.At), Rule: ev.Rule, Severity: ev.Severity.String(),
		Instance: ev.Instance, State: ev.State,
	}
	if !math.IsNaN(ev.Value) && !math.IsInf(ev.Value, 0) {
		v := ev.Value
		dto.Value = &v
	}
	data := mustJSON(dto)
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq, stored := s.ring.Append(KindAlert, ev.At, data); stored {
		s.broadcastLocked(sseEvent{id: seq, typ: KindAlert, data: data})
	}
}

// PublishEvent appends an arbitrary record to the ring and streams it;
// the generic ingress used by hosts with their own event kinds.
func (s *Server) PublishEvent(kind string, at sim.Time, data []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq, stored := s.ring.Append(kind, at, data); stored {
		s.broadcastLocked(sseEvent{id: seq, typ: kind, data: data})
	}
}

// SetProfSources wires the profiling surfaces: summary renders the lane
// profiler's speedup/efficiency aggregate on /api/prof, chrome streams
// its wall-plane Chrome trace on /api/prof/chrome, and provenancePath +
// provFlush serve the on-disk causal trace on /api/prof/provenance
// (flushed first so the download sees every record so far). Any argument
// may be nil/empty; the corresponding endpoint answers 404. Call before
// the simulation starts running.
func (s *Server) SetProfSources(summary func() any, chrome func(io.Writer) error, provenancePath string, provFlush func() error) {
	s.profSummary = summary
	s.profChrome = chrome
	s.provPath = provenancePath
	s.provFlush = provFlush
}

func (s *Server) handleProf(w http.ResponseWriter, _ *http.Request) {
	if s.profSummary == nil {
		http.Error(w, "no lane profiler attached", http.StatusNotFound)
		return
	}
	writeJSON(w, s.profSummary())
}

func (s *Server) handleProfChrome(w http.ResponseWriter, _ *http.Request) {
	if s.profChrome == nil {
		http.Error(w, "no lane profiler attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="lane-trace.json"`)
	s.profChrome(w)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if s.provPath == "" {
		http.Error(w, "no provenance trace attached", http.StatusNotFound)
		return
	}
	if s.provFlush != nil {
		if err := s.provFlush(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="provenance.trace"`)
	http.ServeFile(w, r, s.provPath)
}

// SetFlowStore points /api/flows at a columnar flow store file written
// by the streaming analysis pipeline (flowstore.Writer). The file is
// opened fresh on each request, so queries see every segment the
// analyzer has appended so far — including ones written after attach.
// An empty path detaches; the endpoint then answers 404.
func (s *Server) SetFlowStore(path string) { s.flowPath = path }

// flowRowDTO is one /api/flows result row: the flow 5-tuple plus
// virtualization tags and the totals observed over [first_ns, last_ns].
type flowRowDTO struct {
	Site    string `json:"site"`
	VLANID  uint16 `json:"vlan_id,omitempty"`
	MPLSTop uint32 `json:"mpls_label,omitempty"`
	Src     string `json:"src"`
	Dst     string `json:"dst"`
	Proto   string `json:"proto"`
	SrcPort uint16 `json:"src_port,omitempty"`
	DstPort uint16 `json:"dst_port,omitempty"`
	FirstNs int64  `json:"first_ns"`
	LastNs  int64  `json:"last_ns"`
	Frames  uint64 `json:"frames"`
	Bytes   uint64 `json:"bytes"`
}

// handleFlows answers /api/flows?from=&to=&site=&limit= against the
// attached flow store. from/to are sim-nanosecond bounds (a row matches
// when its [first_ns, last_ns] span intersects the range), site filters
// by capture site, and limit caps the result (default 1000, 0 keeps the
// default; segment pruning happens inside the store).
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if s.flowPath == "" {
		http.Error(w, "no flow store attached", http.StatusNotFound)
		return
	}
	q := flowstore.Query{Site: r.URL.Query().Get("site"), Limit: 1000}
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"from", &q.FromNs}, {"to", &q.ToNs}} {
		if v := r.URL.Query().Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad "+p.name, http.StatusBadRequest)
				return
			}
			*p.dst = n
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		q.Limit = n
	}
	st, err := flowstore.Open(s.flowPath)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer st.Close()
	recs, err := st.Query(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rows := make([]flowRowDTO, 0, len(recs))
	for _, rec := range recs {
		rows = append(rows, flowRowDTO{
			Site:    rec.Site,
			VLANID:  rec.Key.VLANID,
			MPLSTop: rec.Key.MPLSTop,
			Src:     rec.Key.Src.String(),
			Dst:     rec.Key.Dst.String(),
			Proto:   rec.Key.Proto.String(),
			SrcPort: rec.Key.SrcPort,
			DstPort: rec.Key.DstPort,
			FirstNs: rec.FirstNs,
			LastNs:  rec.LastNs,
			Frames:  rec.Frames,
			Bytes:   rec.Bytes,
		})
	}
	writeJSON(w, struct {
		Segments int          `json:"segments"`
		Rows     int64        `json:"rows"`
		Torn     bool         `json:"torn"`
		Matched  int          `json:"matched"`
		Flows    []flowRowDTO `json:"flows"`
	}{st.Segments(), st.Rows(), st.Torn(), len(rows), rows})
}

// Handler builds the route table. Exposed separately from
// ListenAndServe so tests can drive it with httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/status", s.handleStatus)
	mux.HandleFunc("/api/alerts", s.handleAlerts)
	mux.HandleFunc("/api/series", s.handleSeries)
	mux.HandleFunc("/api/buildinfo", s.handleBuildinfo)
	mux.HandleFunc("/api/prof", s.handleProf)
	mux.HandleFunc("/api/prof/chrome", s.handleProfChrome)
	mux.HandleFunc("/api/prof/provenance", s.handleProvenance)
	mux.HandleFunc("/api/flows", s.handleFlows)
	mux.HandleFunc("/events", s.handleEvents)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "patchwork live telemetry")
	fmt.Fprintln(w, "  /metrics        Prometheus exposition (sim snapshot + runtime)")
	fmt.Fprintln(w, "  /api/status     per-site health table")
	fmt.Fprintln(w, "  /api/alerts     active alerts")
	fmt.Fprintln(w, "  /api/series     ?name=&from=&to= time-range query over the ring")
	fmt.Fprintln(w, "  /api/buildinfo  module version, VCS revision, Go version")
	fmt.Fprintln(w, "  /api/prof       lane profiler summary (speedup, efficiency)")
	fmt.Fprintln(w, "  /api/prof/chrome      wall-plane Chrome trace download")
	fmt.Fprintln(w, "  /api/prof/provenance  causal provenance trace download")
	fmt.Fprintln(w, "  /api/flows      ?from=&to=&site=&limit= flow store query")
	fmt.Fprintln(w, "  /events         SSE stream (alerts, status diffs, progress)")
	if s.cfg.Pprof {
		fmt.Fprintln(w, "  /debug/pprof/   profiling")
	}
}

// handleMetrics renders the last published sim snapshot followed by the
// runtime registry. The sim points are frozen copies, so rendering them
// here never races the simulation.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	points := s.points
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheusPoints(w, points); err != nil {
		return
	}
	s.runtime.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := struct {
		SimNs      int64           `json:"sim_ns"`
		Published  int             `json:"published"`
		Sites      []siteStatusDTO `json:"sites"`
		Ring       ringStatus      `json:"ring"`
		SSEDropped uint64          `json:"sse_dropped,omitempty"`
	}{
		SimNs: int64(s.simNow), Published: s.published, Sites: s.status,
		Ring: ringStatus{
			Records: s.ring.Len(), NextSeq: s.ring.NextSeq(),
			Recovered: s.ring.Recovered(), Err: errString(s.ring.Err()),
		},
		SSEDropped: s.sseDropped,
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

type ringStatus struct {
	Records   int    `json:"records"`
	NextSeq   uint64 `json:"next_seq"`
	Recovered int    `json:"recovered,omitempty"`
	Err       string `json:"err,omitempty"`
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := struct {
		SimNs  int64      `json:"sim_ns"`
		Active []alertDTO `json:"active"`
	}{SimNs: int64(s.simNow), Active: s.alerts}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleBuildinfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.bi)
}

// handleSeries answers /api/series?name=&from=&to= from the ring's
// snapshot records: every retained sample of the named instrument
// inside [from, to] sim-nanoseconds, grouped by label identity.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing ?name=", http.StatusBadRequest)
		return
	}
	from, to := int64(math.MinInt64), int64(math.MaxInt64)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from", http.StatusBadRequest)
			return
		}
		from = n
	}
	if v := r.URL.Query().Get("to"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad to", http.StatusBadRequest)
			return
		}
		to = n
	}
	type tv struct {
		TNs int64   `json:"t_ns"`
		V   float64 `json:"v"`
	}
	byLabel := map[string][]tv{}
	s.mu.Lock()
	s.ring.Scan(func(rec Record) bool {
		if rec.Kind != KindSnapshot || rec.SimNs < from || rec.SimNs > to {
			return true
		}
		var snap snapshotRecord
		if err := json.Unmarshal(rec.Data, &snap); err != nil {
			return true
		}
		for _, p := range snap.Points {
			if p.N == name {
				byLabel[p.L] = append(byLabel[p.L], tv{TNs: rec.SimNs, V: p.V})
			}
		}
		return true
	})
	s.mu.Unlock()
	ids := make([]string, 0, len(byLabel))
	for id := range byLabel {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	type series struct {
		Labels string `json:"labels,omitempty"`
		Points []tv   `json:"points"`
	}
	resp := struct {
		Name   string   `json:"name"`
		Series []series `json:"series"`
	}{Name: name, Series: make([]series, 0, len(ids))}
	for _, id := range ids {
		resp.Series = append(resp.Series, series{Labels: id, Points: byLabel[id]})
	}
	writeJSON(w, resp)
}

// ListenAndServe binds the configured address, writes the AddrFile
// rendezvous, and serves in a background goroutine.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("livemon: %w", err)
	}
	s.ln = ln
	if s.cfg.AddrFile != "" {
		// Write-then-rename so a probe polling the file never reads a
		// partial address.
		tmp := s.cfg.AddrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("livemon: %w", err)
		}
		if err := os.Rename(tmp, s.cfg.AddrFile); err != nil {
			ln.Close()
			return fmt.Errorf("livemon: %w", err)
		}
	}
	s.hs = &http.Server{Handler: s.Handler()}
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		s.hs.Serve(ln)
	}()
	return nil
}

// Addr reports the bound address (useful with Addr ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully — SSE streams are released,
// in-flight scrapes finish, the ring is flushed and closed. Safe to
// call multiple times and on a server that never listened.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed) // unblocks every SSE handler's select
		if s.hs != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err = s.hs.Shutdown(ctx)
			cancel()
			<-s.done
		}
		s.mu.Lock()
		if cerr := s.ring.Close(); err == nil {
			err = cerr
		}
		s.mu.Unlock()
	})
	return err
}
