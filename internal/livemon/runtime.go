package livemon

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// wallClock stamps the runtime registry with the wall clock. Runtime
// metrics live in their own registry precisely so this nondeterminism
// never reaches the sim-time registry or any exported artifact.
func wallClock() sim.Time { return sim.Time(time.Now().UnixNano()) }

// BuildInfo is the /api/buildinfo payload, extracted once at startup
// from the binary's embedded build information.
type BuildInfo struct {
	GoVersion     string `json:"go_version"`
	ModulePath    string `json:"module_path,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSTime       string `json:"vcs_time,omitempty"`
	VCSModified   bool   `json:"vcs_modified,omitempty"`
}

// readBuildInfo digests runtime/debug.ReadBuildInfo; a binary built
// without module support still reports its Go version.
func readBuildInfo() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	out.ModulePath = bi.Main.Path
	out.ModuleVersion = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.VCSRevision = s.Value
		case "vcs.time":
			out.VCSTime = s.Value
		case "vcs.modified":
			out.VCSModified = s.Value == "true"
		}
	}
	return out
}

// newRuntimeRegistry builds the wall-clock registry: Go runtime health
// (goroutines, heap, GC), the build-info gauge, and — when the host
// wires them — RunMany worker progress and campaign journal gauges.
// Everything here refreshes on scrape via collectors; nothing is ever
// written to a sim-time artifact.
func newRuntimeRegistry(bi BuildInfo) *obs.Registry {
	r := obs.NewRegistry(wallClock)
	r.Help("patchwork_build_info", "build metadata as labels, value always 1")
	labels := []obs.Label{obs.L("goversion", bi.GoVersion)}
	if bi.ModuleVersion != "" {
		labels = append(labels, obs.L("version", bi.ModuleVersion))
	}
	if bi.VCSRevision != "" {
		labels = append(labels, obs.L("revision", bi.VCSRevision))
	}
	r.Gauge("patchwork_build_info", labels...).Set(1)

	r.Help("patchwork_runtime_goroutines", "live goroutines in the serving process")
	r.Help("patchwork_runtime_heap_alloc_bytes", "bytes of allocated heap objects")
	r.Help("patchwork_runtime_heap_sys_bytes", "heap memory obtained from the OS")
	r.Help("patchwork_runtime_gc_runs_total", "completed GC cycles")
	r.Help("patchwork_runtime_gc_pause_total_ns", "cumulative GC stop-the-world pause")
	r.Help("patchwork_runtime_gomaxprocs", "scheduler parallelism")
	goroutines := r.Gauge("patchwork_runtime_goroutines")
	heapAlloc := r.Gauge("patchwork_runtime_heap_alloc_bytes")
	heapSys := r.Gauge("patchwork_runtime_heap_sys_bytes")
	gcRuns := r.Gauge("patchwork_runtime_gc_runs_total")
	gcPause := r.Gauge("patchwork_runtime_gc_pause_total_ns")
	maxprocs := r.Gauge("patchwork_runtime_gomaxprocs")
	r.RegisterCollector(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcRuns.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs))
		maxprocs.Set(float64(runtime.GOMAXPROCS(0)))
	})
	return r
}

// progressEvent is the SSE payload for RunMany worker progress.
type progressEvent struct {
	Worker int    `json:"worker"`
	ID     string `json:"id"`
	State  string `json:"state"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

// PublishProgress records live RunMany worker progress: per-worker
// busy/current-experiment gauges and overall done/total in the runtime
// registry, plus a "progress" SSE event. Safe to call from any worker
// goroutine. Progress is wall-clock territory — worker interleaving is
// nondeterministic — so none of it touches the sim registry or ring
// determinism (progress records carry sim time zero).
func (s *Server) PublishProgress(worker int, id, state string, done, total int) {
	if s == nil {
		return
	}
	wl := obs.L("worker", strconv.Itoa(worker))
	s.runtime.Help("patchwork_runmany_total", "experiments in the current RunMany batch")
	s.runtime.Help("patchwork_runmany_done", "experiments completed in the current RunMany batch")
	s.runtime.Help("patchwork_runmany_worker_busy", "1 while the worker is running an experiment")
	s.runtime.Gauge("patchwork_runmany_total").Set(float64(total))
	s.runtime.Gauge("patchwork_runmany_done").Set(float64(done))
	busy := 0.0
	if state == "start" {
		busy = 1
	}
	s.runtime.Gauge("patchwork_runmany_worker_busy", wl).Set(busy)
	data := mustJSON(progressEvent{Worker: worker, ID: id, State: state, Done: done, Total: total})
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq, stored := s.ring.Append(KindProgress, 0, data); stored {
		s.broadcastLocked(sseEvent{id: seq, typ: KindProgress, data: data})
	}
}
