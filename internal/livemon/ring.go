package livemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/sim"
	"repro/internal/storefault"
)

// Record is one entry in the time-series ring: a registry snapshot, an
// alert transition, a status-table diff, or a progress event, stamped
// with the virtual time it was published at. Records carry no wall
// clock: the ring of a seeded simulation is itself a deterministic
// artifact.
type Record struct {
	Seq   uint64          `json:"seq"`
	SimNs int64           `json:"sim_ns"`
	Kind  string          `json:"kind"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Record kinds written by the Server. Kind is an open string set — the
// ring itself treats records as opaque.
const (
	KindSnapshot = "snapshot"
	KindAlert    = "alert"
	KindStatus   = "status"
	KindProgress = "progress"
)

// Ring is a bounded append-only record log: rotated segment files on
// disk (CRC-framed lines, torn-tail tolerant like internal/journal)
// mirrored by an in-memory copy that queries and SSE replay read from.
// It is not internally synchronized — the owning Server serializes all
// access under its own lock.
//
// On-disk layout under the ring directory:
//
//	seg-00000000.jsonl   oldest retained segment
//	seg-00000007.jsonl   active segment, one "crc32c-hex8 json" per line
//
// When the active segment exceeds the byte budget a new one starts; the
// oldest is deleted once the segment count exceeds the cap. A torn
// final line (the process died mid-write) fails its CRC and is
// truncated away on open; everything before it is recovered.
type Ring struct {
	dir      string // "" = memory-only (no files, same bounds)
	fs       storefault.FS
	segBytes int64
	maxSegs  int

	f       storefault.File
	bw      *bufio.Writer
	segIdx  int   // index of the active segment
	segSize int64 // bytes written to the active segment

	recs []memRec
	next uint64

	// recoveredSimNs is the newest record timestamp found on open.
	// Appends strictly older than it are suppressed: a resumed campaign
	// replays its history from t=0, and the ring already holds it.
	recoveredSimNs int64
	recovered      int
	pruned         int // PruneAggressive invocations (ENOSPC degradation)

	err error // first I/O error; the ring keeps serving from memory
}

type memRec struct {
	Record
	seg  int
	size int64
}

const (
	defaultSegmentBytes = 1 << 20
	defaultMaxSegments  = 8
)

// OpenRing opens (or creates) a ring in dir. An empty dir keeps the
// ring purely in memory with the same retention bounds. segBytes and
// maxSegs of zero take the defaults (1 MiB × 8 segments).
func OpenRing(dir string, segBytes int64, maxSegs int) (*Ring, error) {
	return OpenRingFS(nil, dir, segBytes, maxSegs)
}

// OpenRingFS is OpenRing through an explicit filesystem seam (nil means
// the real disk) — the storage-chaos injection point.
func OpenRingFS(fsys storefault.FS, dir string, segBytes int64, maxSegs int) (*Ring, error) {
	if segBytes <= 0 {
		segBytes = defaultSegmentBytes
	}
	if maxSegs <= 0 {
		maxSegs = defaultMaxSegments
	}
	// Sequence numbers start at 1: an SSE client sending
	// Last-Event-ID: 0 therefore replays the whole retained backlog.
	r := &Ring{dir: dir, fs: storefault.Or(fsys), segBytes: segBytes, maxSegs: maxSegs, next: 1, recoveredSimNs: -1}
	if dir == "" {
		return r, nil
	}
	if err := r.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("livemon: ring: %w", err)
	}
	if err := r.load(); err != nil {
		return nil, err
	}
	if err := r.openActive(); err != nil {
		return nil, err
	}
	return r, nil
}

// segPath names segment i.
func (r *Ring) segPath(i int) string {
	return filepath.Join(r.dir, fmt.Sprintf("seg-%08d.jsonl", i))
}

// load reads every retained segment, truncating a torn tail off the
// newest one.
func (r *Ring) load() error {
	entries, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("livemon: ring: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".jsonl"))
		if err != nil {
			continue
		}
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	for pos, idx := range idxs {
		last := pos == len(idxs)-1
		keep, err := r.loadSegment(idx, last)
		if err != nil {
			return err
		}
		if last {
			r.segIdx, r.segSize = idx, keep
		}
	}
	if len(idxs) == 0 {
		r.segIdx = 0
	}
	r.recovered = len(r.recs)
	return nil
}

// loadSegment parses one segment; when truncate is set, a torn tail is
// cut off the file. Returns the committed byte length. A final line
// missing its newline is torn by definition — even if its CRC happens
// to validate — so it is dropped rather than counted, which keeps
// recovery idempotent (truncating never extends the file).
func (r *Ring) loadSegment(idx int, truncate bool) (int64, error) {
	path := r.segPath(idx)
	data, err := r.fs.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("livemon: ring: %w", err)
	}
	var keep int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated final line: torn write
		}
		rec, ok := parseFrame(string(data[off : off+nl]))
		if !ok {
			break // torn or corrupt: drop this line and everything after
		}
		size := int64(nl) + 1
		r.recs = append(r.recs, memRec{Record: rec, seg: idx, size: size})
		keep += size
		off += nl + 1
		if rec.Seq >= r.next {
			r.next = rec.Seq + 1
		}
		if rec.SimNs > r.recoveredSimNs {
			r.recoveredSimNs = rec.SimNs
		}
	}
	if truncate && keep < int64(len(data)) {
		if err := r.fs.Truncate(path, keep); err != nil {
			return 0, fmt.Errorf("livemon: ring: truncating torn tail: %w", err)
		}
	}
	return keep, nil
}

// openActive opens the newest segment for appending.
func (r *Ring) openActive() error {
	f, err := r.fs.OpenFile(r.segPath(r.segIdx), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("livemon: ring: %w", err)
	}
	if _, err := f.Seek(r.segSize, 0); err != nil {
		f.Close()
		return fmt.Errorf("livemon: ring: %w", err)
	}
	r.f, r.bw = f, bufio.NewWriter(f)
	return nil
}

// parseFrame validates one "crc8hex json" line.
func parseFrame(line string) (Record, bool) {
	frame, rest, found := strings.Cut(line, " ")
	if !found || len(frame) != 8 {
		return Record{}, false
	}
	want, err := strconv.ParseUint(frame, 16, 32)
	if err != nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE([]byte(rest)) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal([]byte(rest), &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Append stores one record and returns its sequence number. stored is
// false when the append was suppressed as a replay duplicate (its sim
// time predates what the ring already recovered) — callers must not
// broadcast suppressed records, reconnecting clients get the originals
// from replay instead.
func (r *Ring) Append(kind string, at sim.Time, data []byte) (seq uint64, stored bool) {
	if int64(at) < r.recoveredSimNs {
		return 0, false
	}
	rec := Record{Seq: r.next, SimNs: int64(at), Kind: kind, Data: data}
	encoded, err := json.Marshal(rec)
	if err != nil {
		r.fail(err)
		return 0, false
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(encoded), encoded)
	size := int64(len(line))
	r.appendLine(line)
	r.recs = append(r.recs, memRec{Record: rec, seg: r.segIdx, size: size})
	r.next++
	r.segSize += size
	if r.segSize >= r.segBytes {
		r.rotate()
	}
	return rec.Seq, true
}

// appendLine writes one framed line to the active segment. A full
// volume (ENOSPC) triggers the degradation path: retained history is
// pruned aggressively to free space and the write retried once from the
// committed offset; only a second failure (or any other error) latches.
func (r *Ring) appendLine(line string) {
	if r.bw == nil {
		return
	}
	err := r.writeFlush(line)
	if err == nil {
		return
	}
	if !errors.Is(err, syscall.ENOSPC) {
		r.fail(err)
		return
	}
	r.PruneAggressive()
	// The failed flush may have persisted a prefix; rewind to the
	// committed length so the retry cannot leave interleaved garbage.
	if terr := r.f.Truncate(r.segSize); terr != nil {
		r.fail(err)
		return
	}
	if _, serr := r.f.Seek(r.segSize, 0); serr != nil {
		r.fail(err)
		return
	}
	r.bw = bufio.NewWriter(r.f)
	if err2 := r.writeFlush(line); err2 != nil {
		r.fail(err2)
	}
}

func (r *Ring) writeFlush(line string) error {
	if _, err := r.bw.WriteString(line); err != nil {
		return err
	}
	return r.bw.Flush()
}

// PruneAggressive drops every retained segment except the active one
// and tightens the retention cap to two segments — the livemon side of
// graceful ENOSPC degradation. Safe to call at any time.
func (r *Ring) PruneAggressive() {
	r.pruned++
	if r.maxSegs > 2 {
		r.maxSegs = 2
	}
	drop := 0
	for drop < len(r.recs) && r.recs[drop].seg < r.segIdx {
		drop++
	}
	if drop > 0 {
		r.recs = append(r.recs[:0:0], r.recs[drop:]...)
	}
	if r.dir != "" {
		for i := r.segIdx - 1; i >= 0; i-- {
			if err := r.fs.Remove(r.segPath(i)); err != nil {
				break // already gone
			}
		}
	}
}

// Pruned counts PruneAggressive invocations.
func (r *Ring) Pruned() int { return r.pruned }

// rotate starts a new segment and prunes the oldest past the cap. In
// memory-only mode the same bounds apply without files.
func (r *Ring) rotate() {
	if r.f != nil {
		if err := r.bw.Flush(); err != nil {
			r.fail(err)
		}
		if err := r.f.Close(); err != nil {
			r.fail(err)
		}
		r.f, r.bw = nil, nil
	}
	r.segIdx++
	r.segSize = 0
	if r.dir != "" {
		if err := r.openActive(); err != nil {
			r.fail(err)
		}
	}
	oldest := r.segIdx - r.maxSegs
	if oldest < 0 {
		return
	}
	drop := 0
	for drop < len(r.recs) && r.recs[drop].seg <= oldest {
		drop++
	}
	if drop > 0 {
		r.recs = append(r.recs[:0:0], r.recs[drop:]...)
	}
	if r.dir != "" {
		for i := oldest; i >= 0; i-- {
			path := r.segPath(i)
			if err := r.fs.Remove(path); err != nil {
				break // already pruned on an earlier rotation
			}
		}
	}
}

func (r *Ring) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("livemon: ring: %w", err)
	}
}

// Err reports the first I/O error, if any; the in-memory view keeps
// working past it.
func (r *Ring) Err() error { return r.err }

// Len returns the number of retained records.
func (r *Ring) Len() int { return len(r.recs) }

// Recovered returns how many records were loaded from disk on open
// (zero for a fresh or memory-only ring).
func (r *Ring) Recovered() int { return r.recovered }

// NextSeq returns the sequence number the next append will take.
func (r *Ring) NextSeq() uint64 { return r.next }

// Scan calls fn for every retained record in append order until fn
// returns false.
func (r *Ring) Scan(fn func(Record) bool) {
	for i := range r.recs {
		if !fn(r.recs[i].Record) {
			return
		}
	}
}

// EventsSince returns the retained non-snapshot records with Seq >
// lastID, in order — the SSE reconnect replay set.
func (r *Ring) EventsSince(lastID uint64) []Record {
	var out []Record
	for i := range r.recs {
		rec := r.recs[i].Record
		if rec.Seq > lastID && rec.Kind != KindSnapshot {
			out = append(out, rec)
		}
	}
	return out
}

// Close flushes and closes the active segment.
func (r *Ring) Close() error {
	if r.f == nil {
		return r.err
	}
	ferr := r.bw.Flush()
	cerr := r.f.Close()
	r.f, r.bw = nil, nil
	if r.err != nil {
		return r.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}
