package livemon

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProfEndpoints checks the profiling surfaces: 404 with nothing
// attached, then JSON summary, Chrome trace download, and provenance
// download (flushed before serving) once SetProfSources wires them.
func TestProfEndpoints(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/api/prof", "/api/prof/chrome", "/api/prof/provenance"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Errorf("GET %s with nothing attached: %d, want 404", path, code)
		}
	}

	provPath := filepath.Join(t.TempDir(), "provenance.trace")
	if err := os.WriteFile(provPath, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	flushed := false
	s.SetProfSources(
		func() any { return map[string]any{"workers": 2, "est_speedup": 1.5} },
		func(w io.Writer) error { _, err := io.WriteString(w, "[\n]\n"); return err },
		provPath,
		func() error {
			flushed = true
			return os.WriteFile(provPath, []byte("fresh-records"), 0o644)
		},
	)

	var sum struct {
		Workers    int     `json:"workers"`
		EstSpeedup float64 `json:"est_speedup"`
	}
	getJSON(t, ts, "/api/prof", &sum)
	if sum.Workers != 2 || sum.EstSpeedup != 1.5 {
		t.Errorf("summary = %+v", sum)
	}

	code, body := get(t, ts, "/api/prof/chrome")
	if code != http.StatusOK || body != "[\n]\n" {
		t.Errorf("chrome download: %d %q", code, body)
	}

	code, body = get(t, ts, "/api/prof/provenance")
	if code != http.StatusOK {
		t.Fatalf("provenance download: %d", code)
	}
	if !flushed {
		t.Error("provenance served without flushing the writer first")
	}
	if !strings.Contains(body, "fresh-records") {
		t.Errorf("provenance body = %q, want the flushed bytes", body)
	}
}
