package livemon

import (
	"net/http"
	"net/http/httptest"
	"net/netip"
	"path/filepath"
	"testing"

	"repro/internal/flowstore"
	"repro/internal/sim"
	"repro/internal/wire"
)

func writeTestFlowStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flows.pwfs")
	w, err := flowstore.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int, site string, baseNs int64) flowstore.Rec {
		return flowstore.Rec{
			Key: flowstore.Key{
				VLANID:  uint16(100 + i),
				Src:     wire.NewIPEndpoint(netip.AddrFrom4([4]byte{10, 0, 0, byte(i)})),
				Dst:     wire.NewIPEndpoint(netip.AddrFrom4([4]byte{10, 1, 0, 1})),
				Proto:   wire.LayerTypeTCP,
				SrcPort: uint16(30000 + i),
				DstPort: 443,
			},
			Site:     site,
			FirstNs:  baseNs + int64(i)*1e9,
			LastNs:   baseNs + int64(i)*1e9 + 5e8,
			FirstSeq: uint64(i),
			Frames:   uint64(i + 1),
			Bytes:    uint64((i + 1) * 900),
		}
	}
	segA := []flowstore.Rec{mk(0, "STAR", 1e9), mk(1, "STAR", 1e9)}
	segB := []flowstore.Rec{mk(2, "DALL", 100e9), mk(3, "DALL", 100e9), mk(4, "DALL", 100e9)}
	if err := w.Append("STAR", segA); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("DALL", segB); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

type flowsResp struct {
	Segments int   `json:"segments"`
	Rows     int64 `json:"rows"`
	Torn     bool  `json:"torn"`
	Matched  int   `json:"matched"`
	Flows    []struct {
		Site    string `json:"site"`
		VLANID  uint16 `json:"vlan_id"`
		Src     string `json:"src"`
		Dst     string `json:"dst"`
		Proto   string `json:"proto"`
		SrcPort uint16 `json:"src_port"`
		DstPort uint16 `json:"dst_port"`
		FirstNs int64  `json:"first_ns"`
		LastNs  int64  `json:"last_ns"`
		Frames  uint64 `json:"frames"`
		Bytes   uint64 `json:"bytes"`
	} `json:"flows"`
}

// TestFlowsEndpoint covers the /api/flows query surface: unattached 404,
// full scan, site and time-range pruning, limit, and bad params.
func TestFlowsEndpoint(t *testing.T) {
	s, err := New(Config{PublishEvery: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts, "/api/flows"); code != http.StatusNotFound {
		t.Fatalf("unattached: got %d, want 404", code)
	}

	s.SetFlowStore(writeTestFlowStore(t))

	var all flowsResp
	getJSON(t, ts, "/api/flows", &all)
	if all.Segments != 2 || all.Rows != 5 || all.Matched != 5 || all.Torn {
		t.Fatalf("full scan: %+v", all)
	}
	f := all.Flows[0]
	if f.Site != "STAR" || f.VLANID != 100 || f.Src != "10.0.0.0" || f.Proto != "TCP" || f.DstPort != 443 || f.Frames != 1 || f.Bytes != 900 {
		t.Fatalf("first row: %+v", f)
	}

	var bySite flowsResp
	getJSON(t, ts, "/api/flows?site=DALL", &bySite)
	if bySite.Matched != 3 {
		t.Fatalf("site filter: matched %d, want 3", bySite.Matched)
	}
	for _, f := range bySite.Flows {
		if f.Site != "DALL" {
			t.Fatalf("site filter leaked row: %+v", f)
		}
	}

	// Time range covering only the first segment's rows.
	var byTime flowsResp
	getJSON(t, ts, "/api/flows?from=1&to=3000000000", &byTime)
	if byTime.Matched != 2 {
		t.Fatalf("time filter: matched %d, want 2", byTime.Matched)
	}

	var limited flowsResp
	getJSON(t, ts, "/api/flows?limit=1", &limited)
	if limited.Matched != 1 || len(limited.Flows) != 1 {
		t.Fatalf("limit: %+v", limited)
	}

	for _, bad := range []string{"/api/flows?from=x", "/api/flows?to=x", "/api/flows?limit=0", "/api/flows?limit=x"} {
		if code, _ := get(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("%s: got %d, want 400", bad, code)
		}
	}

	// A missing file is a server-side error, not a silent empty result.
	s.SetFlowStore(filepath.Join(t.TempDir(), "absent.pwfs"))
	if code, _ := get(t, ts, "/api/flows"); code != http.StatusInternalServerError {
		t.Fatalf("missing file: got %d, want 500", code)
	}
}
