package livemon

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func TestRingSequenceAndEvents(t *testing.T) {
	r, err := OpenRing("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq, stored := r.Append(KindSnapshot, 100, []byte(`{"points":[]}`))
	if !stored || seq != 1 {
		t.Fatalf("first append: seq=%d stored=%v, want 1 true", seq, stored)
	}
	r.Append(KindAlert, 200, []byte(`{"rule":"a"}`))
	r.Append(KindStatus, 300, []byte(`{"site":"STAR"}`))
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	// Replay from zero skips snapshots but keeps order.
	evs := r.EventsSince(0)
	if len(evs) != 2 || evs[0].Kind != KindAlert || evs[1].Kind != KindStatus {
		t.Fatalf("EventsSince(0) = %+v", evs)
	}
	if evs := r.EventsSince(2); len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("EventsSince(2) = %+v", evs)
	}
}

func TestRingTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRing(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, stored := r.Append(KindAlert, sim.Time(i*100), []byte(`{"i":`+string(rune('0'+i))+`}`)); !stored {
			t.Fatalf("append %d suppressed", i)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a frame with a bad CRC and no newline
	// at the tail of the active segment.
	seg := filepath.Join(dir, "seg-00000000.jsonl")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"seq":6,"sim_ns":600,"kind":"alert"`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	r2, err := OpenRing(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Recovered() != 5 {
		t.Fatalf("Recovered = %d, want 5 (torn tail dropped)", r2.Recovered())
	}
	if r2.NextSeq() != 6 {
		t.Fatalf("NextSeq = %d, want 6", r2.NextSeq())
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}

	// Resume dedupe: a replayed publish strictly older than the newest
	// recovered record is suppressed; the frontier and beyond append.
	if _, stored := r2.Append(KindAlert, 400, nil); stored {
		t.Fatal("append older than recovered frontier was stored")
	}
	if seq, stored := r2.Append(KindAlert, 600, nil); !stored || seq != 6 {
		t.Fatalf("append past frontier: seq=%d stored=%v, want 6 true", seq, stored)
	}
}

func TestRingRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRing(dir, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"pad":"0123456789012345678901234567890123456789"}`)
	for i := 0; i < 40; i++ {
		r.Append(KindStatus, sim.Time(i), payload)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Fatalf("retained %d segments on disk, cap is 2", len(entries))
	}
	// The memory mirror pruned with the segments: the oldest retained
	// seq moved past 1 and matches what a reopen recovers.
	first := uint64(0)
	r.Scan(func(rec Record) bool { first = rec.Seq; return false })
	if first <= 1 {
		t.Fatalf("oldest retained seq = %d, want pruned past 1", first)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenRing(dir, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != r.Len() {
		t.Fatalf("reopen recovered %d records, memory had %d", r2.Len(), r.Len())
	}
}

func TestRingMemoryOnlyBounds(t *testing.T) {
	r, err := OpenRing("", 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Append(KindStatus, sim.Time(i), []byte(`{"pad":"xxxxxxxxxxxxxxxxxxxxxxxx"}`))
	}
	if r.Len() >= 100 {
		t.Fatalf("memory-only ring retained all %d records, want bounded", r.Len())
	}
}
