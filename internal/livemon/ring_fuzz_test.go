package livemon

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/storefault"
)

// FuzzRingSegment feeds arbitrary bytes through the on-disk ring codec:
// opening a damaged segment must never panic, recovery must be
// idempotent (the first open truncates the torn tail, so a second open
// sees exactly the same records), and a recovered ring must keep
// accepting appends that survive another reopen.
func FuzzRingSegment(f *testing.F) {
	// Seed corpus from a real segment written by the ring itself.
	seedDir := f.TempDir()
	r, err := OpenRing(seedDir, 0, 0)
	if err != nil {
		f.Fatal(err)
	}
	r.Append(KindSnapshot, 100, []byte(`{"points":[{"name":"x","value":1}]}`))
	r.Append(KindAlert, 200, []byte(`{"rule":"capture-drop-ratio","state":"firing"}`))
	r.Append(KindStatus, 300, []byte(`{"site":"STAR","worst":"warn"}`))
	r.Append(KindProgress, 400, []byte(`{"run":1,"sample":2}`))
	if err := r.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, "seg-00000000.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                         // torn tail mid-record
	f.Add(seed[:len(seed)-1])                         // missing final newline
	f.Add([]byte("00000000 {}\n"))                    // bad CRC
	f.Add([]byte("zz zz\n"))                          // unparseable frame
	f.Add([]byte{})                                   // empty segment
	f.Add(append(append([]byte{}, seed...), seed...)) // duplicated seqs

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000000.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r1, err := OpenRing(dir, 0, 0)
		if err != nil {
			t.Skip() // I/O-level failure, not a codec property
		}
		n := r1.Len()
		if r1.Recovered() != n {
			t.Fatalf("Recovered()=%d but Len()=%d", r1.Recovered(), n)
		}
		r1.Scan(func(rec Record) bool {
			if rec.Seq >= r1.NextSeq() {
				t.Fatalf("recovered seq %d >= NextSeq %d", rec.Seq, r1.NextSeq())
			}
			return true
		})
		if err := r1.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}

		// Idempotent recovery: the torn tail is gone now.
		r2, err := OpenRing(dir, 0, 0)
		if err != nil {
			t.Fatalf("second open: %v", err)
		}
		if r2.Len() != n {
			t.Fatalf("recovery not idempotent: %d then %d records", n, r2.Len())
		}
		// The recovered ring must still be appendable, and the append
		// must itself survive recovery.
		_, stored := r2.Append(KindAlert, sim.Time(math.MaxInt64), []byte(`{}`))
		if err := r2.Close(); err != nil {
			t.Fatalf("close after append: %v", err)
		}
		r3, err := OpenRing(dir, 0, 0)
		if err != nil {
			t.Fatalf("third open: %v", err)
		}
		want := n
		if stored {
			want++
		}
		if r3.Len() != want {
			t.Fatalf("append lost: %d records, want %d", r3.Len(), want)
		}
		r3.Close()
	})
}

// TestRingENOSPCPrunesAndRetries exercises graceful degradation: when
// the volume fills mid-append, the ring prunes its retained history,
// retries the write, and keeps running with no latched error.
func TestRingENOSPCPrunesAndRetries(t *testing.T) {
	dir := t.TempDir()
	plan, err := storefault.Parse([]byte(
		`{"enospc": [{"rate": 1, "after_ops": 30, "max": 1, "path_glob": "seg-*.jsonl"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := storefault.NewChaos(nil, 11, plan)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenRingFS(chaos, dir, 256, 8) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, stored := r.Append(KindAlert, sim.Time(i)*sim.Time(100), []byte(`{"n":1}`)); !stored {
			t.Fatalf("append %d suppressed", i)
		}
	}
	if r.Err() != nil {
		t.Fatalf("ENOSPC must degrade, not latch: %v", r.Err())
	}
	if r.Pruned() != 1 {
		t.Fatalf("Pruned() = %d, want 1", r.Pruned())
	}
	if chaos.Injected()[storefault.KindENOSPC] != 1 {
		t.Fatalf("injections: %v", chaos.Injected())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything still on disk must recover cleanly.
	r2, err := OpenRing(dir, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() == 0 {
		t.Fatal("nothing recovered after degradation")
	}
}
