package faults

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/units"
)

func testFed(t *testing.T, k *sim.Kernel, names ...string) *testbed.Federation {
	t.Helper()
	specs := make([]testbed.SiteSpec, len(names))
	for i, n := range names {
		specs[i] = testbed.SiteSpec{
			Name: n, Uplinks: 1, Downlinks: 4,
			DedicatedNICs: 3, Cores: 64, RAM: 256 * units.GB, Storage: units.TB,
		}
	}
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestParseValidRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"empty", `{}`, true},
		{"full", `{
			"name": "hostile",
			"allocator_transients": [{"rate": 0.3, "to_sec": 60}],
			"site_outages": [{"site": "STAR", "from_sec": 5, "to_sec": 20}],
			"port_flaps": [{"site": "STAR", "port": "P1", "at_sec": 10, "down_sec": 3, "repeat": 2, "every_sec": 8}],
			"mirror_corruptions": [{"rate": 0.01}],
			"storage_slowdowns": [{"factor": 8, "from_sec": 1, "to_sec": 2}],
			"capture_stalls": [{"rate": 0.05, "stall_sec": 0.002}]
		}`, true},
		{"unknown field", `{"allocator_transient": []}`, false},
		{"rate zero", `{"allocator_transients": [{"rate": 0}]}`, false},
		{"rate above one", `{"mirror_corruptions": [{"rate": 1.5}]}`, false},
		{"outage without site", `{"site_outages": [{"from_sec": 1, "to_sec": 2}]}`, false},
		{"outage open-ended", `{"site_outages": [{"site": "A", "from_sec": 1}]}`, false},
		{"empty window", `{"allocator_transients": [{"rate": 0.5, "from_sec": 5, "to_sec": 5}]}`, false},
		{"flap missing port", `{"port_flaps": [{"site": "A", "at_sec": 1, "down_sec": 1}]}`, false},
		{"flap repeat overlap", `{"port_flaps": [{"site": "A", "port": "P1", "at_sec": 1, "down_sec": 5, "repeat": 1, "every_sec": 2}]}`, false},
		{"slowdown below one", `{"storage_slowdowns": [{"factor": 0.5}]}`, false},
		{"stall no duration", `{"capture_stalls": [{"rate": 0.5}]}`, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.json))
			if (err == nil) != c.ok {
				t.Errorf("Parse: err=%v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestAllocatorTransientInjection(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR", "TACC")
	plan := Plan{AllocatorTransients: []AllocatorTransient{
		{Site: "STAR", Rate: 1, Window: Window{ToSec: 60}},
	}}
	e, err := NewEngine(k, 7, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	req := testbed.SliceRequest{Name: "x", VMs: []testbed.VMRequest{testbed.DefaultListenerVM()}}
	if _, err := fed.Site("STAR").Allocate(0, req); !errors.Is(err, testbed.ErrBackendTransient) {
		t.Errorf("STAR inside window: err = %v, want transient", err)
	}
	// Rate-1 faults stop when the window closes.
	if _, err := fed.Site("STAR").Allocate(61*sim.Second, req); err != nil {
		t.Errorf("STAR after window: err = %v, want success", err)
	}
	// The untargeted site is unaffected.
	if _, err := fed.Site("TACC").Allocate(0, req); err != nil {
		t.Errorf("TACC: err = %v, want success", err)
	}
	if got := e.Injected()[KindAllocatorTransient]; got != 1 {
		t.Errorf("injected allocator-transient = %d, want 1", got)
	}
}

func TestSiteOutageSchedulesWindows(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR")
	plan := Plan{SiteOutages: []SiteOutage{{Site: "STAR", Window: Window{FromSec: 10, ToSec: 20}}}}
	e, err := NewEngine(k, 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	req := testbed.SliceRequest{Name: "x", VMs: []testbed.VMRequest{testbed.DefaultListenerVM()}}
	if err := fed.Site("STAR").CanAllocate(15*sim.Second, req); !errors.Is(err, testbed.ErrBackendTransient) {
		t.Errorf("during outage: err = %v, want transient", err)
	}
	if err := fed.Site("STAR").CanAllocate(25*sim.Second, req); err != nil {
		t.Errorf("after outage: err = %v", err)
	}
}

func TestPortFlapDropsTraffic(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR")
	plan := Plan{PortFlaps: []PortFlap{
		{Site: "STAR", Port: "P1", AtSec: 1, DownSec: 2, Repeat: 1, EverySec: 5},
	}}
	e, err := NewEngine(k, 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	sw := fed.Site("STAR").Switch
	frame := switchsim.Frame{Size: 1000}
	transitAt := func(at sim.Time) {
		k.At(at, func() { _ = sw.Transit("P1", switchsim.DirRx, frame) })
	}
	transitAt(500 * sim.Millisecond)  // up
	transitAt(1500 * sim.Millisecond) // down (first flap)
	transitAt(3500 * sim.Millisecond) // up again
	transitAt(6500 * sim.Millisecond) // down (second flap at 6s)
	k.Run()
	c := sw.Port("P1").Counters()
	if c.RxFrames != 2 {
		t.Errorf("RxFrames = %d, want 2", c.RxFrames)
	}
	if c.DownDrops != 2 {
		t.Errorf("DownDrops = %d, want 2", c.DownDrops)
	}
	if got := e.Injected()[KindPortFlap]; got != 2 {
		t.Errorf("injected port-flap = %d, want 2", got)
	}
}

func TestMirrorCorruptionDropsClones(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR")
	plan := Plan{MirrorCorruptions: []MirrorCorruption{{Site: "STAR", Rate: 1}}}
	e, err := NewEngine(k, 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	sw := fed.Site("STAR").Switch
	sess, err := sw.StartMirror("P1", switchsim.DirBoth, "P2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = sw.Transit("P1", switchsim.DirRx, switchsim.Frame{Size: 100})
	}
	if sess.FaultDrops != 10 || sess.Cloned != 0 {
		t.Errorf("FaultDrops=%d Cloned=%d, want 10/0", sess.FaultDrops, sess.Cloned)
	}
	// Original traffic is unaffected.
	if c := sw.Port("P1").Counters(); c.RxFrames != 10 {
		t.Errorf("RxFrames = %d, want 10", c.RxFrames)
	}
}

func TestCaptureStallAndStorageFns(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR", "TACC")
	plan := Plan{
		CaptureStalls:    []CaptureStall{{Site: "STAR", Rate: 1, StallSec: 0.5}},
		StorageSlowdowns: []StorageSlowdown{{Site: "STAR", Factor: 4}},
	}
	e, err := NewEngine(k, 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	if fn := e.CaptureStallFn("TACC"); fn != nil {
		t.Error("TACC should have no stall fn")
	}
	fn := e.CaptureStallFn("STAR")
	if fn == nil {
		t.Fatal("STAR should have a stall fn")
	}
	if got := fn(0); got != 500*sim.Millisecond {
		t.Errorf("stall = %v, want 500ms", got)
	}
	sf := e.StorageFaultFn("STAR")
	if sf == nil {
		t.Fatal("STAR should have a storage fault fn")
	}
	if got := sf(0, 1024, sim.Microsecond); got != 4*sim.Microsecond {
		t.Errorf("storage fault latency = %v, want 4us", got)
	}
	if e.StorageFaultFn("TACC") != nil {
		t.Error("TACC should have no storage fault fn")
	}
}

func TestEngineDeterminismAcrossRuns(t *testing.T) {
	run := func(seed uint64) []int64 {
		k := sim.NewKernel()
		fed := testFed(t, k, "STAR")
		plan := Plan{AllocatorTransients: []AllocatorTransient{{Rate: 0.5}}}
		e, err := NewEngine(k, seed, plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Arm(fed); err != nil {
			t.Fatal(err)
		}
		req := testbed.SliceRequest{Name: "x", VMs: []testbed.VMRequest{{Cores: 1, RAM: units.GB, Storage: units.GB}}}
		out := make([]int64, 0, 40)
		for i := 0; i < 40; i++ {
			if err := fed.Site("STAR").CanAllocate(sim.Time(i)*sim.Second, req); err != nil {
				out = append(out, int64(i))
			}
		}
		return out
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("rate-0.5 fault injected %d/40 times; expected a mix", len(a))
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestArmErrors(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR")
	e, err := NewEngine(k, 1, Plan{SiteOutages: []SiteOutage{{Site: "NOPE", Window: Window{ToSec: 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err == nil || !strings.Contains(err.Error(), "unknown site") {
		t.Errorf("Arm with unknown site: err = %v", err)
	}
	e2, err := NewEngine(k, 1, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Arm(fed); err != nil {
		t.Fatal(err)
	}
	if err := e2.Arm(fed); err == nil {
		t.Error("second Arm should fail")
	}
	e3, err := NewEngine(k, 1, Plan{PortFlaps: []PortFlap{{Site: "STAR", Port: "P99", AtSec: 0, DownSec: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Arm(fed); err == nil || !strings.Contains(err.Error(), "unknown port") {
		t.Errorf("Arm with unknown port: err = %v", err)
	}
}

func TestSummary(t *testing.T) {
	k := sim.NewKernel()
	e, err := NewEngine(k, 1, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Summary(); got != "no faults injected" {
		t.Errorf("empty Summary = %q", got)
	}
	e.note(KindPortFlap, 0)
	e.note(KindPortFlap, 0)
	e.note(KindAllocatorTransient, 0)
	if got := e.Summary(); got != "allocator-transient=1 port-flap=2" {
		t.Errorf("Summary = %q", got)
	}
	if e.InjectedTotal() != 3 {
		t.Errorf("InjectedTotal = %d", e.InjectedTotal())
	}
}

func TestCrashPointValidation(t *testing.T) {
	if _, err := Parse([]byte(`{"crash_points": [{"at_sec": 0}]}`)); err == nil {
		t.Error("crash point at t=0 should be rejected")
	}
	if _, err := Parse([]byte(`{"crash_points": [{"at_sec": -1}]}`)); err == nil {
		t.Error("negative crash point should be rejected")
	}
	p, err := Parse([]byte(`{"crash_points": [{"at_sec": 5}, {"at_sec": 9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Error("a plan with crash points is not empty")
	}
}

func TestCrashPointsFireInOrder(t *testing.T) {
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR")
	plan := Plan{CrashPoints: []CrashPoint{{AtSec: 5}, {AtSec: 9}}}
	e, err := NewEngine(k, 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	var fired []sim.Time
	e.SetCrashFn(func(at sim.Time) { fired = append(fired, at) })
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(20 * sim.Time(sim.Second))
	want := []sim.Time{5 * sim.Time(sim.Second), 9 * sim.Time(sim.Second)}
	if len(fired) != len(want) {
		t.Fatalf("crash fn fired %d times (%v), want %d", len(fired), fired, len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("crash %d at %v, want %v", i, fired[i], want[i])
		}
	}
	if got := e.Injected()[KindCrashPoint]; got != 2 {
		t.Errorf("injected crash-point = %d, want 2", got)
	}
	if !strings.Contains(e.Summary(), "crash-point=2") {
		t.Errorf("summary %q should count crash points", e.Summary())
	}
}

func TestCrashPointWithoutFnIsCounted(t *testing.T) {
	// An engine without a crash fn (no journal attached) still counts the
	// injection — the plan stays replayable either way.
	k := sim.NewKernel()
	fed := testFed(t, k, "STAR")
	e, err := NewEngine(k, 1, Plan{CrashPoints: []CrashPoint{{AtSec: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Arm(fed); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(5 * sim.Time(sim.Second))
	if got := e.Injected()[KindCrashPoint]; got != 1 {
		t.Errorf("injected crash-point = %d, want 1", got)
	}
}
