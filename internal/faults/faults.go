// Package faults is a seeded, sim-time fault-injection engine for the
// Patchwork reproduction. A Plan is a named, JSON-serializable schedule
// of adversity — transient allocator errors, site outages, switch port
// flaps, mirror-table corruption, slow storage, capture-core stalls —
// and an Engine drives it through injection points the substrate
// packages expose (testbed.Site.SetAllocFault, switchsim's SetPortDown /
// SetCloneFault, hostsim.Host.SetWriteFault, capture.Config.Stall).
//
// The failure schedule is a first-class, replayable experiment input:
// every stochastic decision flows through a child of one seeded
// rng.Source, and every trigger fires on the shared simulation kernel,
// so the same (plan, seed) pair reproduces the same faults at the same
// virtual nanoseconds — and therefore byte-identical experiment output.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Window is a half-open virtual-time interval [FromSec, ToSec) in
// seconds. ToSec = 0 means open-ended (the fault persists to the end of
// the run).
type Window struct {
	FromSec float64 `json:"from_sec,omitempty"`
	ToSec   float64 `json:"to_sec,omitempty"`
}

// During reports whether now falls inside the window.
func (w Window) During(now sim.Time) bool {
	if now < secs(w.FromSec) {
		return false
	}
	return w.ToSec == 0 || now < secs(w.ToSec)
}

func (w Window) validate(what string) error {
	if w.FromSec < 0 || w.ToSec < 0 {
		return fmt.Errorf("faults: %s: negative window bound", what)
	}
	if w.ToSec != 0 && w.ToSec <= w.FromSec {
		return fmt.Errorf("faults: %s: window [%g, %g) is empty", what, w.FromSec, w.ToSec)
	}
	return nil
}

func secs(s float64) sim.Time { return sim.Time(s * float64(sim.Second)) }

// AllocatorTransient fails allocation attempts with ErrBackendTransient
// at the given rate while the window is open — the Sept 10/11 class of
// failures from the paper's Section 8.1.1, made schedulable.
type AllocatorTransient struct {
	// Site restricts the fault to one site; empty applies to every site.
	Site string `json:"site,omitempty"`
	// Rate is the per-attempt failure probability in (0, 1].
	Rate float64 `json:"rate"`
	Window
}

// SiteOutage takes a site's allocator hard down for the window: every
// attempt fails, deterministically.
type SiteOutage struct {
	Site string `json:"site"`
	Window
}

// PortFlap takes one switch port's link down at AtSec for DownSec,
// optionally repeating.
type PortFlap struct {
	Site string `json:"site"`
	Port string `json:"port"`
	// AtSec is the first flap's start.
	AtSec float64 `json:"at_sec"`
	// DownSec is how long the link stays down per flap.
	DownSec float64 `json:"down_sec"`
	// Repeat adds this many further flaps after the first.
	Repeat int `json:"repeat,omitempty"`
	// EverySec spaces repeated flap starts (must exceed DownSec).
	EverySec float64 `json:"every_sec,omitempty"`
}

// MirrorCorruption silently discards mirror clones at the given rate
// while the window is open, modeling a corrupted mirror-table entry.
type MirrorCorruption struct {
	Site string  `json:"site,omitempty"`
	Rate float64 `json:"rate"`
	Window
}

// StorageSlowdown multiplies writev latency on a site's capture hosts by
// Factor while the window is open (slow or failing storage writes).
type StorageSlowdown struct {
	Site string `json:"site,omitempty"`
	// Factor >= 1 scales each write's latency.
	Factor float64 `json:"factor"`
	Window
}

// CaptureStall steals StallSec of processing time from a capture core
// with probability Rate per frame while the window is open — the
// "capture process briefly loses the CPU" failure mode.
type CaptureStall struct {
	Site     string  `json:"site,omitempty"`
	Rate     float64 `json:"rate"`
	StallSec float64 `json:"stall_sec"`
	Window
}

// CrashPoint kills the whole campaign process at AtSec — the chaos
// lever behind crash-resume testing. The campaign journal appends a
// crash record before dying, and a later -resume replays past it (an
// already-journaled crash point does not fire twice).
type CrashPoint struct {
	AtSec float64 `json:"at_sec"`
}

// Plan is a complete, replayable fault schedule.
type Plan struct {
	// Name labels the plan in logs and metrics.
	Name string `json:"name,omitempty"`
	// AllocatorTransients, SiteOutages, … are the plan's fault entries,
	// applied in declaration order.
	AllocatorTransients []AllocatorTransient `json:"allocator_transients,omitempty"`
	SiteOutages         []SiteOutage         `json:"site_outages,omitempty"`
	PortFlaps           []PortFlap           `json:"port_flaps,omitempty"`
	MirrorCorruptions   []MirrorCorruption   `json:"mirror_corruptions,omitempty"`
	StorageSlowdowns    []StorageSlowdown    `json:"storage_slowdowns,omitempty"`
	CaptureStalls       []CaptureStall       `json:"capture_stalls,omitempty"`
	CrashPoints         []CrashPoint         `json:"crash_points,omitempty"`
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool {
	return len(p.AllocatorTransients) == 0 && len(p.SiteOutages) == 0 &&
		len(p.PortFlaps) == 0 && len(p.MirrorCorruptions) == 0 &&
		len(p.StorageSlowdowns) == 0 && len(p.CaptureStalls) == 0 &&
		len(p.CrashPoints) == 0
}

// Validate rejects malformed plans with an error naming the bad entry.
func (p Plan) Validate() error {
	for i, a := range p.AllocatorTransients {
		what := fmt.Sprintf("allocator_transients[%d]", i)
		if a.Rate <= 0 || a.Rate > 1 {
			return fmt.Errorf("faults: %s: rate %g outside (0, 1]", what, a.Rate)
		}
		if err := a.Window.validate(what); err != nil {
			return err
		}
	}
	for i, o := range p.SiteOutages {
		what := fmt.Sprintf("site_outages[%d]", i)
		if o.Site == "" {
			return fmt.Errorf("faults: %s: site required", what)
		}
		if o.ToSec == 0 {
			return fmt.Errorf("faults: %s: outage needs a closed window", what)
		}
		if err := o.Window.validate(what); err != nil {
			return err
		}
	}
	for i, f := range p.PortFlaps {
		what := fmt.Sprintf("port_flaps[%d]", i)
		switch {
		case f.Site == "" || f.Port == "":
			return fmt.Errorf("faults: %s: site and port required", what)
		case f.AtSec < 0 || f.DownSec <= 0:
			return fmt.Errorf("faults: %s: need at_sec >= 0 and down_sec > 0", what)
		case f.Repeat < 0:
			return fmt.Errorf("faults: %s: negative repeat", what)
		case f.Repeat > 0 && f.EverySec <= f.DownSec:
			return fmt.Errorf("faults: %s: every_sec %g must exceed down_sec %g", what, f.EverySec, f.DownSec)
		}
	}
	for i, m := range p.MirrorCorruptions {
		what := fmt.Sprintf("mirror_corruptions[%d]", i)
		if m.Rate <= 0 || m.Rate > 1 {
			return fmt.Errorf("faults: %s: rate %g outside (0, 1]", what, m.Rate)
		}
		if err := m.Window.validate(what); err != nil {
			return err
		}
	}
	for i, s := range p.StorageSlowdowns {
		what := fmt.Sprintf("storage_slowdowns[%d]", i)
		if s.Factor < 1 {
			return fmt.Errorf("faults: %s: factor %g must be >= 1", what, s.Factor)
		}
		if err := s.Window.validate(what); err != nil {
			return err
		}
	}
	for i, c := range p.CaptureStalls {
		what := fmt.Sprintf("capture_stalls[%d]", i)
		if c.Rate <= 0 || c.Rate > 1 {
			return fmt.Errorf("faults: %s: rate %g outside (0, 1]", what, c.Rate)
		}
		if c.StallSec <= 0 {
			return fmt.Errorf("faults: %s: stall_sec %g must be > 0", what, c.StallSec)
		}
		if err := c.Window.validate(what); err != nil {
			return err
		}
	}
	for i, c := range p.CrashPoints {
		if c.AtSec <= 0 {
			return fmt.Errorf("faults: crash_points[%d]: at_sec %g must be > 0", i, c.AtSec)
		}
	}
	return nil
}

// Parse decodes and validates a JSON plan. Unknown fields are errors so
// a typo in a plan file fails loudly instead of silently injecting
// nothing.
func Parse(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Load reads and parses a plan file.
func Load(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return Plan{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// Fault kinds, used as the obs label and the Injected() map key.
const (
	KindAllocatorTransient = "allocator-transient"
	KindSiteOutage         = "site-outage"
	KindPortFlap           = "port-flap"
	KindMirrorCorruption   = "mirror-corruption"
	KindStorageSlowdown    = "storage-slowdown"
	KindCaptureStall       = "capture-stall"
	KindCrashPoint         = "crash-point"
)

// kinds enumerates every fault kind, so injection state can be fully
// pre-allocated: fault hooks run on dataplane lanes during parallel
// window execution, and must never grow a map or resolve an instrument.
var kinds = []string{
	KindAllocatorTransient, KindSiteOutage, KindPortFlap,
	KindMirrorCorruption, KindStorageSlowdown, KindCaptureStall,
	KindCrashPoint,
}

// Engine drives one plan through a federation. Create it with NewEngine,
// optionally attach a metrics registry, then Arm it on the federation
// before the experiment starts. An Engine is bound to one kernel and one
// run; build a fresh one per run for replay.
type Engine struct {
	kernel *sim.Kernel
	plan   Plan
	root   *rng.Source
	armed  bool

	// crashFn, when set before Arm, receives each crash point's trigger
	// time. The campaign layer installs the journal-then-die behavior;
	// without a crash fn crash points only count as injections.
	crashFn func(at sim.Time)

	// stalls and slowdowns index per-site closures resolved at Arm time.
	stalls    map[string][]*stallState
	slowdowns map[string][]StorageSlowdown

	injected map[string]*atomic.Int64
	reg      *obs.Registry
	counters map[string]*obs.Counter
}

type stallState struct {
	spec CaptureStall
	r    *rng.Source
}

// NewEngine validates the plan and binds an engine to the kernel. All of
// the engine's randomness derives from seed, independently of any other
// seeded component.
func NewEngine(k *sim.Kernel, seed uint64, plan Plan) (*Engine, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	injected := make(map[string]*atomic.Int64, len(kinds))
	for _, kind := range kinds {
		injected[kind] = new(atomic.Int64)
	}
	return &Engine{
		kernel:   k,
		plan:     plan,
		root:     rng.New(seed ^ 0x6661756c74), // "fault"
		injected: injected,
	}, nil
}

// Plan returns the engine's (validated) plan.
func (e *Engine) Plan() Plan { return e.plan }

// SetCrashFn installs the handler crash points fire through. Call
// before Arm; the handler runs on the kernel at each crash point's
// AtSec after the injection is counted.
func (e *Engine) SetCrashFn(f func(at sim.Time)) { e.crashFn = f }

// SetObs attaches a registry; injections are then counted per kind under
// faults_injected_total. Call before Arm.
func (e *Engine) SetObs(reg *obs.Registry) {
	e.reg = reg
	if reg != nil {
		reg.Help("faults_injected_total", "injected faults by kind")
		e.counters = make(map[string]*obs.Counter, len(kinds))
		for _, kind := range kinds {
			e.counters[kind] = reg.Counter("faults_injected_total", obs.L("kind", kind))
		}
	}
}

// note records one injected fault of the given kind at virtual time now.
// It is lane-safe: the count is atomic and the counter pre-resolved, so
// hooks firing on parallel dataplane lanes never touch shared maps.
func (e *Engine) note(kind string, now sim.Time) {
	e.injected[kind].Add(1)
	e.counters[kind].IncAt(now)
}

// Injected returns a copy of the per-kind injection counts so far
// (kinds with zero injections are omitted).
func (e *Engine) Injected() map[string]int64 {
	out := make(map[string]int64)
	for k, v := range e.injected {
		if n := v.Load(); n > 0 {
			out[k] = n
		}
	}
	return out
}

// InjectedTotal sums injections across kinds.
func (e *Engine) InjectedTotal() int64 {
	var total int64
	for _, v := range e.injected {
		total += v.Load()
	}
	return total
}

// Summary renders the per-kind counts, sorted by kind, for CLI output.
func (e *Engine) Summary() string {
	injected := e.Injected()
	if len(injected) == 0 {
		return "no faults injected"
	}
	names := make([]string, 0, len(injected))
	for k := range injected {
		names = append(names, k)
	}
	sort.Strings(names)
	s := ""
	for _, k := range names {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, injected[k])
	}
	return s
}

// Arm installs the plan's hooks and schedules its timed events on the
// federation. It must be called exactly once, before the experiment
// starts; the entries take effect in declaration order, and sites are
// visited in federation declaration order, which (with the seeded rng)
// makes the whole schedule reproducible.
func (e *Engine) Arm(fed *testbed.Federation) error {
	if e.armed {
		return fmt.Errorf("faults: engine already armed")
	}
	e.armed = true
	e.stalls = make(map[string][]*stallState)
	e.slowdowns = make(map[string][]StorageSlowdown)

	resolve := func(name, what string) ([]*testbed.Site, error) {
		if name == "" {
			return fed.Sites(), nil
		}
		s := fed.Site(name)
		if s == nil {
			return nil, fmt.Errorf("faults: %s: unknown site %q", what, name)
		}
		return []*testbed.Site{s}, nil
	}

	// Transient allocator errors: one hook per site composing every
	// matching entry, each entry with its own child rng per site.
	type transient struct {
		spec AllocatorTransient
		r    *rng.Source
	}
	perSite := make(map[string][]*transient)
	for i, a := range e.plan.AllocatorTransients {
		sites, err := resolve(a.Site, fmt.Sprintf("allocator_transients[%d]", i))
		if err != nil {
			return err
		}
		for _, s := range sites {
			perSite[s.Spec.Name] = append(perSite[s.Spec.Name], &transient{spec: a, r: e.root.Split()})
		}
	}
	for _, s := range fed.Sites() {
		ts := perSite[s.Spec.Name]
		if len(ts) == 0 {
			continue
		}
		s.SetAllocFault(func(now sim.Time) error {
			for _, t := range ts {
				if t.spec.During(now) && t.r.Bool(t.spec.Rate) {
					e.note(KindAllocatorTransient, now)
					return testbed.ErrBackendTransient
				}
			}
			return nil
		})
	}

	// Scheduled site outages reuse the allocator's deterministic outage
	// windows; count one injection per outage at its onset.
	for i, o := range e.plan.SiteOutages {
		sites, err := resolve(o.Site, fmt.Sprintf("site_outages[%d]", i))
		if err != nil {
			return err
		}
		for _, s := range sites {
			s.AddOutage(secs(o.FromSec), secs(o.ToSec))
			onset := secs(o.FromSec)
			e.kernel.At(onset, func() { e.note(KindSiteOutage, onset) })
		}
	}

	// Port flaps: pairs of down/up events per repetition.
	for i, f := range e.plan.PortFlaps {
		site := fed.Site(f.Site)
		if site == nil {
			return fmt.Errorf("faults: port_flaps[%d]: unknown site %q", i, f.Site)
		}
		if site.Switch.Port(f.Port) == nil {
			return fmt.Errorf("faults: port_flaps[%d]: unknown port %q at %s", i, f.Port, f.Site)
		}
		sw := site.Switch
		port := f.Port
		for rep := 0; rep <= f.Repeat; rep++ {
			down := secs(f.AtSec + float64(rep)*f.EverySec)
			up := down + secs(f.DownSec)
			e.kernel.At(down, func() {
				e.note(KindPortFlap, down)
				_ = sw.SetPortDown(port, true)
			})
			e.kernel.At(up, func() { _ = sw.SetPortDown(port, false) })
		}
	}

	// Mirror corruption: one clone-fault hook per switch composing all
	// matching entries.
	type corruption struct {
		spec MirrorCorruption
		r    *rng.Source
	}
	perSwitch := make(map[string][]*corruption)
	for i, m := range e.plan.MirrorCorruptions {
		sites, err := resolve(m.Site, fmt.Sprintf("mirror_corruptions[%d]", i))
		if err != nil {
			return err
		}
		for _, s := range sites {
			perSwitch[s.Spec.Name] = append(perSwitch[s.Spec.Name], &corruption{spec: m, r: e.root.Split()})
		}
	}
	for _, s := range fed.Sites() {
		cs := perSwitch[s.Spec.Name]
		if len(cs) == 0 {
			continue
		}
		s.Switch.SetCloneFault(func(now sim.Time) bool {
			for _, c := range cs {
				if c.spec.During(now) && c.r.Bool(c.spec.Rate) {
					e.note(KindMirrorCorruption, now)
					return true
				}
			}
			return false
		})
	}

	// Storage slowdowns and capture stalls resolve lazily: the capture
	// engines and hosts that consume them are created mid-run, so Arm
	// only indexes the entries (and pre-splits stall rngs) per site.
	for i, sl := range e.plan.StorageSlowdowns {
		sites, err := resolve(sl.Site, fmt.Sprintf("storage_slowdowns[%d]", i))
		if err != nil {
			return err
		}
		for _, s := range sites {
			e.slowdowns[s.Spec.Name] = append(e.slowdowns[s.Spec.Name], sl)
		}
	}
	for i, c := range e.plan.CaptureStalls {
		sites, err := resolve(c.Site, fmt.Sprintf("capture_stalls[%d]", i))
		if err != nil {
			return err
		}
		for _, s := range sites {
			e.stalls[s.Spec.Name] = append(e.stalls[s.Spec.Name], &stallState{spec: c, r: e.root.Split()})
		}
	}

	// Crash points: counted, then handed to the campaign layer to
	// journal and kill the process.
	for _, c := range e.plan.CrashPoints {
		at := secs(c.AtSec)
		e.kernel.At(at, func() {
			e.note(KindCrashPoint, at)
			if e.crashFn != nil {
				e.crashFn(at)
			}
		})
	}
	return nil
}

// CaptureStallFn returns the per-frame stall hook for a site's capture
// engines (capture.Config.Stall), or nil when the plan schedules no
// stalls there. Engines created across cycles share the same underlying
// rng stream, keeping the schedule deterministic.
func (e *Engine) CaptureStallFn(site string) func(now sim.Time) sim.Duration {
	ss := e.stalls[site]
	if len(ss) == 0 {
		return nil
	}
	return func(now sim.Time) sim.Duration {
		for _, s := range ss {
			if s.spec.During(now) && s.r.Bool(s.spec.Rate) {
				e.note(KindCaptureStall, now)
				return secs(s.spec.StallSec)
			}
		}
		return 0
	}
}

// StorageFaultFn returns the writev-latency hook for a site's capture
// hosts (hostsim.Host.SetWriteFault), or nil when the plan schedules no
// slowdown there. Overlapping windows compound multiplicatively.
func (e *Engine) StorageFaultFn(site string) func(now sim.Time, n int, lat sim.Duration) sim.Duration {
	sls := e.slowdowns[site]
	if len(sls) == 0 {
		return nil
	}
	return func(now sim.Time, n int, lat sim.Duration) sim.Duration {
		out := lat
		for _, sl := range sls {
			if sl.During(now) {
				out = sim.Duration(float64(out) * sl.Factor)
			}
		}
		if out > lat {
			e.note(KindStorageSlowdown, now)
		}
		return out
	}
}
