package trafficgen

// FrameArena is a chunked byte arena for frame data. Sample-scale
// callers clone each generated frame into the arena instead of the heap,
// then recycle every chunk with a single Reset between samples — the
// allocation profile becomes O(chunks) per run instead of O(frames).
type FrameArena struct {
	chunks [][]byte
	cur    int // index of the chunk being filled
	off    int // fill offset within chunks[cur]
}

const arenaChunkSize = 1 << 20

// NewFrameArena returns an empty arena.
func NewFrameArena() *FrameArena { return &FrameArena{} }

// Reset recycles all chunks. Previously returned slices become invalid
// (their bytes will be overwritten by future Allocs).
func (a *FrameArena) Reset() { a.cur, a.off = 0, 0 }

// Alloc copies b into the arena and returns the stable copy, valid
// until the next Reset.
func (a *FrameArena) Alloc(b []byte) []byte {
	n := len(b)
	if n == 0 {
		return nil
	}
	if n > arenaChunkSize {
		// Frames never approach the chunk size; fall back to a plain
		// heap copy (not recycled) rather than complicate the chunk list.
		return append([]byte(nil), b...)
	}
	for {
		if a.cur == len(a.chunks) {
			a.chunks = append(a.chunks, make([]byte, arenaChunkSize))
		}
		c := a.chunks[a.cur]
		if a.off+n <= len(c) {
			out := c[a.off : a.off+n : a.off+n]
			copy(out, b)
			a.off += n
			return out
		}
		a.cur++
		a.off = 0
	}
}
