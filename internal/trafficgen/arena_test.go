package trafficgen

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestSampleIntoMatchesSample pins the refactor contract: SampleInto
// with an arena produces the exact frame sequence (bytes, timestamps,
// directions) Sample produces from the same generator state.
func TestSampleIntoMatchesSample(t *testing.T) {
	profiles := MakeSiteProfiles(3, 30)
	for pi, p := range profiles[:6] {
		cfg := SampleConfig{Duration: 20 * sim.Second, MaxFrames: 2000, FlowCount: 300}
		g1 := NewGenerator(p, 77)
		want, err := g1.Sample(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g2 := NewGenerator(p, 77)
		arena := NewFrameArena()
		got, err := g2.SampleInto(cfg, nil, arena.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("profile %d: %d frames vs %d", pi, len(got), len(want))
		}
		for i := range want {
			if got[i].At != want[i].At || got[i].Dir != want[i].Dir || !bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("profile %d frame %d differs (At %v/%v, Dir %v/%v, %d/%d bytes)",
					pi, i, got[i].At, want[i].At, got[i].Dir, want[i].Dir, len(got[i].Data), len(want[i].Data))
			}
		}
	}
}

// TestSampleIntoScanMode covers the port-scan path (bare SYN probes via
// the pooled control-frame builder).
func TestSampleIntoScanMode(t *testing.T) {
	p := MakeSiteProfiles(5, 30)[0]
	cfg := SampleConfig{Duration: 20 * sim.Second, MaxFrames: 8000, FlowCount: 6000}
	g1 := NewGenerator(p, 11)
	want, err := g1.Sample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGenerator(p, 11)
	arena := NewFrameArena()
	got, err := g2.SampleInto(cfg, nil, arena.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d frames vs %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

// TestArenaReuse checks that Reset recycles chunk memory: a second
// identical sample round must not grow the arena.
func TestArenaReuse(t *testing.T) {
	p := MakeSiteProfiles(9, 30)[2]
	arena := NewFrameArena()
	var frames []TimedFrame
	run := func() int {
		arena.Reset()
		g := NewGenerator(p, 5)
		var err error
		frames, err = g.SampleInto(SampleConfig{MaxFrames: 1000, FlowCount: 100}, frames[:0], arena.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		return len(arena.chunks)
	}
	first := run()
	second := run()
	if second != first {
		t.Errorf("chunks grew across identical runs: %d -> %d", first, second)
	}
	if first == 0 {
		t.Error("arena never allocated a chunk")
	}
}

// TestArenaAllocIsolation: slices handed out must not alias each other.
func TestArenaAllocIsolation(t *testing.T) {
	a := NewFrameArena()
	x := a.Alloc([]byte{1, 2, 3})
	y := a.Alloc([]byte{4, 5, 6})
	x[0] = 9
	if y[0] != 4 {
		t.Error("allocations alias")
	}
	// Appending to an arena slice must not bleed into the next one.
	_ = append(x, 7)
	if y[0] != 4 {
		t.Error("append to arena slice overwrote neighbor")
	}
}

// BenchmarkSampleInto measures the pooled generation path; the point of
// the refactor is that B/op stays near the arena-chunk floor instead of
// scaling with frame count.
func BenchmarkSampleInto(b *testing.B) {
	p := MakeSiteProfiles(2, 30)[0]
	g := NewGenerator(p, 3)
	arena := NewFrameArena()
	var frames []TimedFrame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		var err error
		frames, err = g.SampleInto(SampleConfig{MaxFrames: 3000, FlowCount: 75}, frames[:0], arena.Alloc)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = frames
}

// BenchmarkSample is the baseline heap-allocating path for comparison.
func BenchmarkSample(b *testing.B) {
	p := MakeSiteProfiles(2, 30)[0]
	g := NewGenerator(p, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Sample(SampleConfig{MaxFrames: 3000, FlowCount: 75}); err != nil {
			b.Fatal(err)
		}
	}
}
