package trafficgen

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Dir is the direction of a frame relative to its flow.
type Dir uint8

// Directions.
const (
	DirForward Dir = iota
	DirReverse
)

// TimedFrame is one synthesized frame with its arrival timestamp within a
// sample window.
type TimedFrame struct {
	At   sim.Time
	Data []byte
	Dir  Dir
}

// FlowSpec fixes the invariants of one flow: endpoints, encapsulation,
// and archetype. Frames of a flow share these, so the analysis pipeline
// can classify them together.
type FlowSpec struct {
	Kind Kind
	// VLANID tags the flow (FABRIC's underlay isolates slices by tag).
	VLANID uint16
	// MPLSLabels is the label stack, outermost first (empty = no MPLS).
	MPLSLabels []uint32
	// Pseudowire selects an Ethernet pseudowire (inner Ethernet) under
	// the MPLS stack.
	Pseudowire bool
	// IPv6 selects IPv6 addressing.
	IPv6 bool

	SrcMAC, DstMAC   wire.MAC
	SrcIP, DstIP     netip.Addr
	SrcPort, DstPort uint16
}

// StackDepth returns the number of headers a forward data frame of this
// flow will carry, including the port-classified application layer. The
// paper's Fig. 11 reports maxima between 6 and 12.
func (fs *FlowSpec) StackDepth() int {
	if fs.Kind == KindARP {
		// ARP frames skip the MPLS underlay: Ethernet/VLAN/ARP.
		return 3
	}
	d := 2 // outer Ethernet + VLAN
	d += len(fs.MPLSLabels)
	if fs.Pseudowire {
		d += 2 // control word + inner Ethernet
	}
	d++ // IP
	switch fs.Kind {
	case KindICMP:
		d++ // ICMP
	case KindBulkTCP, KindUDPBulk:
		d++ // transport; payload unclassified
	case KindVXLAN:
		d += 5 // UDP + VXLAN + inner Ethernet + inner IP + inner UDP
	case KindGRE:
		d += 3 // GRE + inner IP + inner UDP
	default:
		d += 2 // transport + app layer
	}
	return d
}

// Generator synthesizes traffic for one site profile. It is driven by a
// deterministic rng stream, so a (seed, profile) pair always produces the
// same capture.
type Generator struct {
	Profile  Profile
	r        *rng.Source
	buf      *wire.SerializeBuffer
	nextIP   uint32
	nextPort uint16

	// ls holds one pooled instance of every serializable layer the
	// generator emits, so a frame build allocates nothing: each build
	// reinitializes the structs it needs by whole-struct assignment.
	ls layerScratch
	// ctrl is the pooled packet BuildTCPControl patches flags through.
	ctrl wire.Packet
}

// layerScratch pools serialization state. Fields with two instances
// (eth, ipv4, udp) cover the deepest stacks, which carry an outer and
// one tunneled inner copy of those layers.
type layerScratch struct {
	eth    [2]wire.Ethernet
	dot1q  wire.Dot1Q
	mpls   [2]wire.MPLS
	pw     wire.PWControlWord
	ip4    [2]wire.IPv4
	ip6    wire.IPv6
	arp    wire.ARP
	icmp4  wire.ICMPv4
	icmp6  wire.ICMPv6
	gre    wire.GRE
	vxlan  wire.VXLAN
	udp    [2]wire.UDP
	tcp    wire.TCP
	tls    wire.TLS
	ntp    wire.NTP
	dns    wire.DNS
	dnsQ   [1]string
	pay    wire.Payload
	payBuf []byte
	layers []wire.SerializableLayer
}

// payload returns the pooled payload sized to n, zero-filled — reusing
// the buffer must be indistinguishable from a fresh make([]byte, n).
func (s *layerScratch) payload(n int) *wire.Payload {
	if cap(s.payBuf) < n {
		s.payBuf = make([]byte, n)
	}
	b := s.payBuf[:n]
	clear(b)
	s.pay = wire.Payload(b)
	return &s.pay
}

// NewGenerator binds a profile to a seeded source.
func NewGenerator(p Profile, seed uint64) *Generator {
	return &Generator{
		Profile:  p,
		r:        rng.New(seed),
		buf:      wire.NewSerializeBuffer(),
		nextIP:   1,
		nextPort: 30000,
	}
}

// NewFlow draws a flow specification from the profile.
func (g *Generator) NewFlow() FlowSpec {
	p := &g.Profile
	fs := FlowSpec{
		Kind:   p.drawKind(g.r),
		VLANID: uint16(2000 + g.r.Intn(1000)),
		IPv6:   g.r.Bool(p.IPv6Fraction),
	}
	if fs.Kind == KindARP {
		fs.IPv6 = false // ARP is IPv4-only
	}
	labels := 1
	if g.r.Bool(p.MPLSDepth2Fraction) {
		labels = 2
	}
	for i := 0; i < labels; i++ {
		fs.MPLSLabels = append(fs.MPLSLabels, uint32(16+g.r.Intn(1<<19)))
	}
	fs.Pseudowire = g.r.Bool(p.PWFraction)
	if fs.Kind == KindVXLAN || fs.Kind == KindGRE {
		// Tunnel workloads already nest deeply; the underlay keeps them
		// on a single label without a pseudowire (keeps observed stack
		// depths within the paper's 6-12 range).
		fs.Pseudowire = false
		fs.MPLSLabels = fs.MPLSLabels[:1]
	}
	fs.SrcMAC = wire.MAC{0x02, 0xFA, 0xB0, byte(g.r.Intn(256)), byte(g.r.Intn(256)), byte(g.r.Intn(256))}
	fs.DstMAC = wire.MAC{0x02, 0xFA, 0xB1, byte(g.r.Intn(256)), byte(g.r.Intn(256)), byte(g.r.Intn(256))}
	// Different slices reuse 10/8 space; the VLAN/MPLS tags are what
	// distinguish them (Section 6.2.4).
	a := g.nextIP
	g.nextIP += 2
	if fs.IPv6 {
		fs.SrcIP = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
		fs.DstIP = netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a + 1)})
	} else {
		fs.SrcIP = netip.AddrFrom4([4]byte{10, byte(a >> 16), byte(a >> 8), byte(a)})
		fs.DstIP = netip.AddrFrom4([4]byte{10, byte(a >> 16), byte(a >> 8), byte(a + 1)})
	}
	fs.SrcPort = g.nextPort
	g.nextPort++
	if g.nextPort > 60000 {
		g.nextPort = 30000
	}
	fs.DstPort = wellKnownPort(fs.Kind, g.r)
	return fs
}

func wellKnownPort(k Kind, r *rng.Source) uint16 {
	switch k {
	case KindTLS:
		return 443
	case KindSSH:
		return 22
	case KindHTTP:
		return 80
	case KindDNS:
		return 53
	case KindNTP:
		return 123
	case KindVXLAN:
		return 4789
	default:
		return uint16(5001 + r.Intn(4000))
	}
}

// DataFrameSize draws the wire size for a forward data frame of the given
// kind. Bulk flows on jumbo-framed sites produce the 1519-2047B class
// that dominates FABRIC traffic (74.7%).
func (g *Generator) DataFrameSize(k Kind) int {
	switch k {
	case KindBulkTCP, KindUDPBulk, KindVXLAN, KindGRE:
		if g.Profile.JumboData {
			return 1519 + g.r.Intn(529) // 1519-2047
		}
		return 1400 + g.r.Intn(119) // near-MTU
	case KindTLS, KindHTTP:
		return 300 + g.r.Intn(1200)
	case KindSSH:
		return 90 + g.r.Intn(160)
	case KindDNS, KindNTP:
		return 90 + g.r.Intn(60)
	case KindICMP:
		return 98
	case KindARP:
		return 64
	default:
		return 128 + g.r.Intn(128)
	}
}

// BuildFrame serializes one frame of the flow. For DirForward the frame
// is padded/filled to approximately wireSize bytes; DirReverse produces a
// minimum-size ACK (TCP kinds) or a small response.
func (g *Generator) BuildFrame(fs *FlowSpec, dir Dir, wireSize int) ([]byte, error) {
	raw, err := g.buildFrameRaw(fs, dir, wireSize)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), raw...), nil
}

// buildFrameRaw is BuildFrame without the defensive copy: the returned
// slice aliases the generator's serialize buffer and is only valid
// until the next build call. It is the zero-allocation fast path behind
// SampleInto.
func (g *Generator) buildFrameRaw(fs *FlowSpec, dir Dir, wireSize int) ([]byte, error) {
	ls := &g.ls
	layers := ls.layers[:0]
	srcMAC, dstMAC := fs.SrcMAC, fs.DstMAC
	srcIP, dstIP := fs.SrcIP, fs.DstIP
	srcPort, dstPort := fs.SrcPort, fs.DstPort
	if dir == DirReverse {
		srcMAC, dstMAC = dstMAC, srcMAC
		srcIP, dstIP = dstIP, srcIP
		srcPort, dstPort = dstPort, srcPort
	}

	nextOuter := wire.EthernetTypeDot1Q
	ls.eth[0] = wire.Ethernet{DstMAC: dstMAC, SrcMAC: srcMAC, EthernetType: nextOuter}
	layers = append(layers, &ls.eth[0])
	innerType := wire.EthernetTypeIPv4
	if fs.IPv6 {
		innerType = wire.EthernetTypeIPv6
	}
	if fs.Kind == KindARP {
		innerType = wire.EthernetTypeARP
	}
	vlanNext := innerType
	if len(fs.MPLSLabels) > 0 && fs.Kind != KindARP {
		vlanNext = wire.EthernetTypeMPLSUnicast
	}
	ls.dot1q = wire.Dot1Q{VLANID: fs.VLANID, EthernetType: vlanNext}
	layers = append(layers, &ls.dot1q)
	if vlanNext == wire.EthernetTypeMPLSUnicast {
		for i, label := range fs.MPLSLabels {
			ls.mpls[i] = wire.MPLS{
				Label:       label,
				StackBottom: i == len(fs.MPLSLabels)-1,
				TTL:         64,
			}
			layers = append(layers, &ls.mpls[i])
		}
		if fs.Pseudowire {
			ls.pw = wire.PWControlWord{}
			ls.eth[1] = wire.Ethernet{DstMAC: dstMAC, SrcMAC: srcMAC, EthernetType: innerType}
			layers = append(layers, &ls.pw, &ls.eth[1])
		}
	}

	if fs.Kind == KindARP {
		op := uint16(wire.ARPRequest)
		if dir == DirReverse {
			op = wire.ARPReply
		}
		sip, tip := srcIP, dstIP
		ls.arp = wire.ARP{
			Operation: op, SenderMAC: srcMAC, SenderIP: sip,
			TargetMAC: dstMAC, TargetIP: tip,
		}
		layers = append(layers, &ls.arp)
		return g.serializeRaw(layers)
	}

	// Network layer.
	overhead := stackOverhead(fs)
	if fs.IPv6 {
		proto := transportProto(fs.Kind, true)
		ls.ip6 = wire.IPv6{NextHeader: proto, HopLimit: 62, SrcIP: srcIP, DstIP: dstIP}
		layers = append(layers, &ls.ip6)
	} else {
		proto := transportProto(fs.Kind, false)
		ls.ip4[0] = wire.IPv4{TTL: 62, Protocol: proto, ID: uint16(g.r.Intn(1 << 16)), SrcIP: srcIP, DstIP: dstIP}
		layers = append(layers, &ls.ip4[0])
	}

	switch fs.Kind {
	case KindICMP:
		if fs.IPv6 {
			typ := uint8(wire.ICMPv6TypeEchoRequest)
			if dir == DirReverse {
				typ = wire.ICMPv6TypeEchoReply
			}
			ls.icmp6 = wire.ICMPv6{Type: typ}
			layers = append(layers, &ls.icmp6)
		} else {
			typ := uint8(wire.ICMPv4TypeEchoRequest)
			if dir == DirReverse {
				typ = wire.ICMPv4TypeEchoReply
			}
			ls.icmp4 = wire.ICMPv4{Type: typ, ID: 1, Seq: uint16(g.r.Intn(1 << 16))}
			layers = append(layers, &ls.icmp4)
		}
		layers = append(layers, ls.payload(clampPayload(wireSize-overhead-8, 0)))
	case KindGRE:
		inner := wire.EthernetTypeIPv4
		ls.gre = wire.GRE{Protocol: inner}
		ls.ip4[1] = wire.IPv4{TTL: 60, Protocol: wire.IPProtocolUDP, SrcIP: netip.AddrFrom4([4]byte{192, 168, 0, 1}), DstIP: netip.AddrFrom4([4]byte{192, 168, 0, 2})}
		ls.udp[0] = wire.UDP{SrcPort: srcPort, DstPort: 9999}
		layers = append(layers, &ls.gre, &ls.ip4[1], &ls.udp[0])
		layers = append(layers, ls.payload(clampPayload(wireSize-overhead-32, 8)))
	case KindVXLAN:
		ls.udp[0] = wire.UDP{SrcPort: srcPort, DstPort: 4789}
		ls.vxlan = wire.VXLAN{ValidIDFlag: true, VNI: uint32(g.r.Intn(1 << 24))}
		ls.eth[1] = wire.Ethernet{DstMAC: dstMAC, SrcMAC: srcMAC, EthernetType: wire.EthernetTypeIPv4}
		ls.ip4[1] = wire.IPv4{TTL: 60, Protocol: wire.IPProtocolUDP, SrcIP: netip.AddrFrom4([4]byte{172, 16, 0, 1}), DstIP: netip.AddrFrom4([4]byte{172, 16, 0, 2})}
		ls.udp[1] = wire.UDP{SrcPort: 7000, DstPort: 7001}
		layers = append(layers, &ls.udp[0], &ls.vxlan, &ls.eth[1], &ls.ip4[1], &ls.udp[1])
		layers = append(layers, ls.payload(clampPayload(wireSize-overhead-58, 8)))
	case KindDNS:
		ls.udp[0] = wire.UDP{SrcPort: srcPort, DstPort: dstPort}
		ls.dnsQ[0] = fmt.Sprintf("host%d.fabric-testbed.net", g.r.Intn(1000))
		ls.dns = wire.DNS{ID: uint16(g.r.Intn(1 << 16)), QR: dir == DirReverse,
			Questions: ls.dnsQ[:]}
		layers = append(layers, &ls.udp[0], &ls.dns)
	case KindNTP:
		ls.udp[0] = wire.UDP{SrcPort: srcPort, DstPort: dstPort}
		mode := uint8(3)
		if dir == DirReverse {
			mode = 4
		}
		ls.ntp = wire.NTP{Version: 4, Mode: mode, Stratum: 2}
		layers = append(layers, &ls.udp[0], &ls.ntp)
	case KindUDPBulk:
		ls.udp[0] = wire.UDP{SrcPort: srcPort, DstPort: dstPort}
		layers = append(layers, &ls.udp[0])
		layers = append(layers, ls.payload(clampPayload(wireSize-overhead-8, 8)))
	default:
		// TCP-based kinds.
		ls.tcp = wire.TCP{SrcPort: srcPort, DstPort: dstPort,
			Seq: uint32(g.r.Intn(1 << 30)), Ack: uint32(g.r.Intn(1 << 30)),
			Window: 65535}
		if dir == DirReverse {
			ls.tcp.Flags = wire.TCPAck // payload-free ACK: minimum-size frame
			layers = append(layers, &ls.tcp)
		} else {
			ls.tcp.Flags = wire.TCPPsh | wire.TCPAck
			layers = append(layers, &ls.tcp)
			payLen := clampPayload(wireSize-overhead-20, 1)
			switch fs.Kind {
			case KindTLS:
				ls.tls = wire.TLS{RecordType: wire.TLSApplicationData, Version: 0x0303}
				layers = append(layers, &ls.tls)
				layers = append(layers, ls.payload(clampPayload(payLen-5, 1)))
			case KindSSH:
				pay := ls.payload(payLen)
				copy(*pay, "SSH-2.0-OpenSSH_9.6\r\n")
				layers = append(layers, pay)
			case KindHTTP:
				pay := ls.payload(payLen)
				copy(*pay, "GET /data HTTP/1.1\r\nHost: x\r\n\r\n")
				layers = append(layers, pay)
			default:
				layers = append(layers, ls.payload(payLen))
			}
		}
	}
	return g.serializeRaw(layers)
}

func clampPayload(n, min int) int {
	if n < min {
		return min
	}
	return n
}

func transportProto(k Kind, v6 bool) wire.IPProtocol {
	switch k {
	case KindICMP:
		if v6 {
			return wire.IPProtocolICMPv6
		}
		return wire.IPProtocolICMPv4
	case KindDNS, KindNTP, KindUDPBulk, KindVXLAN:
		return wire.IPProtocolUDP
	case KindGRE:
		return wire.IPProtocolGRE
	default:
		return wire.IPProtocolTCP
	}
}

// stackOverhead estimates encapsulation bytes above the transport payload
// for sizing purposes.
func stackOverhead(fs *FlowSpec) int {
	n := wire.EthernetHeaderLen + wire.Dot1QHeaderLen
	n += len(fs.MPLSLabels) * wire.MPLSHeaderLen
	if fs.Pseudowire {
		n += wire.PWControlWordLen + wire.EthernetHeaderLen
	}
	if fs.IPv6 {
		n += wire.IPv6HeaderLen
	} else {
		n += wire.IPv4HeaderLen
	}
	return n
}

// serializeRaw serializes into the generator's reusable buffer and
// returns the borrowed bytes — valid only until the next build call.
func (g *Generator) serializeRaw(layers []wire.SerializableLayer) ([]byte, error) {
	g.ls.layers = layers[:0] // keep the grown slice for the next build
	if err := wire.SerializeLayers(g.buf, wire.SerializeOptions{FixLengths: true}, layers...); err != nil {
		return nil, err
	}
	if err := wire.PadToMinimumFrame(g.buf); err != nil {
		return nil, err
	}
	return g.buf.Bytes(), nil
}

// SampleConfig bounds one synthesized capture window.
type SampleConfig struct {
	// Duration of the window (the paper samples 20 seconds at a time).
	Duration sim.Duration
	// MaxFrames caps the number of frames generated.
	MaxFrames int
	// MaxBytes caps the total wire bytes (roughly rate * duration).
	MaxBytes int64
	// FlowCount overrides the profile's lognormal flow-count draw when
	// positive.
	FlowCount int
}

// Sample synthesizes one capture window: a set of flows drawn from the
// profile, their frames spread over the window, sorted by timestamp.
func (g *Generator) Sample(cfg SampleConfig) ([]TimedFrame, error) {
	return g.SampleInto(cfg, nil, func(b []byte) []byte { return append([]byte(nil), b...) })
}

// SampleInto is Sample with caller-controlled memory: frames are
// appended to the passed slice (pass a recycled slice's [:0] to reuse
// its backing array, or nil) and each frame's bytes are stabilized
// through clone — typically a FrameArena's Alloc — instead of an
// individual heap copy. The RNG draw sequence is identical to Sample's,
// so from equal generator states the two produce byte-identical frame
// sequences.
func (g *Generator) SampleInto(cfg SampleConfig, frames []TimedFrame, clone func([]byte) []byte) ([]TimedFrame, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 20 * sim.Second
	}
	if cfg.MaxFrames <= 0 {
		cfg.MaxFrames = 50000
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 30
	}
	nFlows := cfg.FlowCount
	if nFlows <= 0 {
		nFlows = g.Profile.drawFlowCount(g.r)
	}
	if frames == nil {
		frames = make([]TimedFrame, 0, minInt(cfg.MaxFrames, nFlows*4))
	}
	var totalBytes int64

	// A flow-storm sample (port scans, connection stress tests) has a
	// huge number of single-frame flows; normal samples have heavy-tailed
	// per-flow budgets where bulk flows dominate the bytes.
	scanMode := nFlows > 5000
	framesLeft := cfg.MaxFrames
	for i := 0; i < nFlows && framesLeft > 0 && totalBytes < cfg.MaxBytes; i++ {
		fs := g.NewFlow()
		var nData int
		switch {
		case scanMode:
			nData = 1
		case fs.Kind == KindBulkTCP || fs.Kind == KindUDPBulk:
			nData = 6 + int(g.r.Pareto(4, 1.05))
		default:
			nData = 1 + int(g.r.Pareto(1, 1.4))
			if nData > 20 {
				nData = 20
			}
		}
		if nData > framesLeft {
			nData = framesLeft
		}
		if nData > 400 {
			nData = 400
		}
		// Flows that begin inside the window show their handshake.
		flowStart := sim.Time(g.r.Int63n(int64(cfg.Duration)))
		if isTCPKind(fs.Kind) && !scanMode && g.r.Bool(0.35) && framesLeft >= 2 {
			raw, err := g.buildTCPControlRaw(&fs, DirForward, wire.TCPSyn)
			if err != nil {
				return nil, err
			}
			// The raw bytes alias the serialize buffer: stabilize each
			// frame before the next build overwrites it.
			syn := clone(raw)
			raw, err = g.buildTCPControlRaw(&fs, DirReverse, wire.TCPSyn|wire.TCPAck)
			if err != nil {
				return nil, err
			}
			synAck := clone(raw)
			frames = append(frames, TimedFrame{At: flowStart, Data: syn, Dir: DirForward})
			frames = append(frames, TimedFrame{At: flowStart + sim.Time(g.r.Int63n(int64(2*sim.Millisecond))), Data: synAck, Dir: DirReverse})
			totalBytes += int64(len(syn) + len(synAck))
			framesLeft -= 2
		}
		var lastAt sim.Time
		for j := 0; j < nData && framesLeft > 0 && totalBytes < cfg.MaxBytes; j++ {
			size := g.DataFrameSize(fs.Kind)
			if scanMode {
				size = 0 // probe-sized frames
			}
			var raw []byte
			var err error
			if scanMode && isTCPKind(fs.Kind) {
				// Port-scan probes are bare SYNs.
				raw, err = g.buildTCPControlRaw(&fs, DirForward, wire.TCPSyn)
			} else {
				raw, err = g.buildFrameRaw(&fs, DirForward, size)
			}
			if err != nil {
				return nil, fmt.Errorf("trafficgen: building %v frame: %w", fs.Kind, err)
			}
			data := clone(raw)
			at := sim.Time(g.r.Int63n(int64(cfg.Duration)))
			if at > lastAt {
				lastAt = at
			}
			frames = append(frames, TimedFrame{At: at, Data: data, Dir: DirForward})
			totalBytes += int64(len(data))
			framesLeft--
			// Bulk TCP flows generate a reverse ACK for roughly every
			// fourth data frame (delayed ACKs plus receive coalescing) —
			// the source of the 65-127B frame class.
			if (fs.Kind == KindBulkTCP || fs.Kind == KindTLS || fs.Kind == KindHTTP || fs.Kind == KindSSH) &&
				!scanMode && j%4 == 3 && framesLeft > 0 {
				raw, err := g.buildFrameRaw(&fs, DirReverse, 0)
				if err != nil {
					return nil, err
				}
				ack := clone(raw)
				frames = append(frames, TimedFrame{At: at + sim.Time(g.r.Int63n(int64(sim.Millisecond))), Data: ack, Dir: DirReverse})
				totalBytes += int64(len(ack))
				framesLeft--
			}
			// Request/response kinds answer once.
			if (fs.Kind == KindDNS || fs.Kind == KindNTP || fs.Kind == KindICMP || fs.Kind == KindARP) &&
				!scanMode && framesLeft > 0 {
				raw, err := g.buildFrameRaw(&fs, DirReverse, g.DataFrameSize(fs.Kind))
				if err != nil {
					return nil, err
				}
				resp := clone(raw)
				frames = append(frames, TimedFrame{At: at + sim.Time(g.r.Int63n(int64(10*sim.Millisecond))), Data: resp, Dir: DirReverse})
				totalBytes += int64(len(resp))
				framesLeft--
			}
		}
		// Flows that end inside the window show their teardown; a small
		// fraction end abnormally (the RST class the profile definition
		// calls out).
		if isTCPKind(fs.Kind) && !scanMode && framesLeft > 0 {
			switch {
			case g.r.Bool(0.02):
				raw, err := g.buildTCPControlRaw(&fs, DirForward, wire.TCPRst)
				if err != nil {
					return nil, err
				}
				rst := clone(raw)
				frames = append(frames, TimedFrame{At: lastAt, Data: rst, Dir: DirForward})
				totalBytes += int64(len(rst))
				framesLeft--
			case g.r.Bool(0.3):
				raw, err := g.buildTCPControlRaw(&fs, DirForward, wire.TCPFin|wire.TCPAck)
				if err != nil {
					return nil, err
				}
				fin := clone(raw)
				frames = append(frames, TimedFrame{At: lastAt, Data: fin, Dir: DirForward})
				totalBytes += int64(len(fin))
				framesLeft--
			}
		}
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i].At < frames[j].At })
	return frames, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// isTCPKind reports whether the archetype rides TCP.
func isTCPKind(k Kind) bool {
	switch k {
	case KindBulkTCP, KindTLS, KindSSH, KindHTTP:
		return true
	default:
		return false
	}
}

// BuildTCPControl builds a payload-free TCP segment of the flow carrying
// the given flags (SYN, SYN|ACK, FIN|ACK, RST, ...). It fails for
// non-TCP archetypes.
func (g *Generator) BuildTCPControl(fs *FlowSpec, dir Dir, flags wire.TCPFlags) ([]byte, error) {
	raw, err := g.buildTCPControlRaw(fs, dir, flags)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), raw...), nil
}

// buildTCPControlRaw is BuildTCPControl on the borrowed serialize
// buffer (valid until the next build call).
func (g *Generator) buildTCPControlRaw(fs *FlowSpec, dir Dir, flags wire.TCPFlags) ([]byte, error) {
	if !isTCPKind(fs.Kind) {
		return nil, fmt.Errorf("trafficgen: %v is not a TCP archetype", fs.Kind)
	}
	spec := *fs
	if dir == DirForward {
		// BuildFrame's DirReverse path emits the payload-free frame; the
		// reverse of a swapped spec travels forward.
		spec.SrcMAC, spec.DstMAC = spec.DstMAC, spec.SrcMAC
		spec.SrcIP, spec.DstIP = spec.DstIP, spec.SrcIP
		spec.SrcPort, spec.DstPort = spec.DstPort, spec.SrcPort
	}
	data, err := g.buildFrameRaw(&spec, DirReverse, 0)
	if err != nil {
		return nil, err
	}
	g.ctrl.Reset(data, wire.LayerTypeEthernet, wire.NoCopy)
	tl, ok := g.ctrl.TransportLayer().(*wire.TCP)
	if !ok {
		return nil, fmt.Errorf("trafficgen: control frame lost its TCP header")
	}
	// LayerContents aliases data under NoCopy: patch the flag byte.
	tl.LayerContents()[13] = uint8(flags)
	return data, nil
}
