package trafficgen

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

func bulkProfile() Profile {
	p := Profile{
		Site:                   "S0",
		IPv6Fraction:           0.02,
		PWFraction:             0.6,
		MPLSDepth2Fraction:     0.4,
		JumboData:              true,
		FlowsPerSampleLogMean:  5,
		FlowsPerSampleLogSigma: 1,
		MeanUtilization:        0.1,
	}
	p.KindWeights[KindBulkTCP] = 1
	return p
}

func richProfile() Profile {
	p := bulkProfile()
	p.KindWeights[KindBulkTCP] = 0.3
	p.KindWeights[KindTLS] = 0.15
	p.KindWeights[KindSSH] = 0.1
	p.KindWeights[KindHTTP] = 0.1
	p.KindWeights[KindDNS] = 0.1
	p.KindWeights[KindNTP] = 0.05
	p.KindWeights[KindICMP] = 0.05
	p.KindWeights[KindARP] = 0.05
	p.KindWeights[KindUDPBulk] = 0.05
	p.KindWeights[KindVXLAN] = 0.03
	p.KindWeights[KindGRE] = 0.02
	return p
}

func TestAllKindsDecode(t *testing.T) {
	g := NewGenerator(richProfile(), 42)
	seen := map[Kind]bool{}
	for i := 0; i < 400; i++ {
		fs := g.NewFlow()
		seen[fs.Kind] = true
		for _, dir := range []Dir{DirForward, DirReverse} {
			size := g.DataFrameSize(fs.Kind)
			data, err := g.BuildFrame(&fs, dir, size)
			if err != nil {
				t.Fatalf("BuildFrame(%v,%v): %v", fs.Kind, dir, err)
			}
			p := wire.NewPacket(data, wire.LayerTypeEthernet, wire.Default)
			if fail := p.ErrorLayer(); fail != nil {
				t.Fatalf("kind %v dir %v: decode failure %v in %v (len %d)",
					fs.Kind, dir, fail.Error(), p.String(), len(data))
			}
			if len(p.LayerTypes()) < 3 {
				t.Errorf("kind %v produced shallow stack %v", fs.Kind, p.String())
			}
		}
	}
	if len(seen) < 8 {
		t.Errorf("only %d kinds drawn from rich profile", len(seen))
	}
}

func TestStackDepthRange(t *testing.T) {
	g := NewGenerator(richProfile(), 7)
	for i := 0; i < 200; i++ {
		fs := g.NewFlow()
		d := fs.StackDepth()
		if fs.Kind == KindARP {
			if d != 3 {
				t.Errorf("ARP stack depth = %d, want 3", d)
			}
			continue
		}
		if d < 4 || d > 12 {
			t.Errorf("kind %v stack depth %d outside [4,12]", fs.Kind, d)
		}
	}
}

func TestStackDepthMatchesDecode(t *testing.T) {
	// For TCP app kinds the predicted depth must equal the decoded layer
	// count on a forward data frame.
	g := NewGenerator(richProfile(), 99)
	checked := 0
	for i := 0; i < 300 && checked < 50; i++ {
		fs := g.NewFlow()
		switch fs.Kind {
		case KindTLS, KindSSH, KindHTTP, KindDNS, KindNTP, KindICMP, KindARP, KindBulkTCP, KindUDPBulk:
		default:
			continue
		}
		data, err := g.BuildFrame(&fs, DirForward, g.DataFrameSize(fs.Kind))
		if err != nil {
			t.Fatal(err)
		}
		p := wire.NewPacket(data, wire.LayerTypeEthernet, wire.Default)
		got := len(p.LayerTypes())
		want := fs.StackDepth()
		// Bulk flows end in Payload which the predictor counts as the
		// transport's payload, so allow +1 for the Payload layer.
		if got != want && got != want+1 {
			t.Errorf("kind %v: decoded %d layers (%v), predicted %d",
				fs.Kind, got, p.String(), want)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d flows checked", checked)
	}
}

func TestJumboDataFrameSizes(t *testing.T) {
	g := NewGenerator(bulkProfile(), 5)
	for i := 0; i < 100; i++ {
		s := g.DataFrameSize(KindBulkTCP)
		if s < 1519 || s > 2047 {
			t.Errorf("jumbo size = %d, want 1519-2047", s)
		}
	}
}

func TestAckFramesAreMinimal(t *testing.T) {
	g := NewGenerator(bulkProfile(), 6)
	fs := g.NewFlow()
	ack, err := g.BuildFrame(&fs, DirReverse, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ack) < 60 || len(ack) > 127 {
		t.Errorf("ACK frame = %d bytes, want 60-127", len(ack))
	}
	p := wire.NewPacket(ack, wire.LayerTypeEthernet, wire.Default)
	tcp, ok := p.TransportLayer().(*wire.TCP)
	if !ok {
		t.Fatalf("no TCP in ACK: %v", p.String())
	}
	if tcp.Flags != wire.TCPAck {
		t.Errorf("flags = %v", tcp.Flags)
	}
	if len(tcp.LayerPayload()) != 0 {
		t.Errorf("ACK carries %d payload bytes", len(tcp.LayerPayload()))
	}
}

func TestSampleRespectsBounds(t *testing.T) {
	g := NewGenerator(richProfile(), 11)
	frames, err := g.Sample(SampleConfig{Duration: 20 * sim.Second, MaxFrames: 500, FlowCount: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 || len(frames) > 500 {
		t.Fatalf("frames = %d", len(frames))
	}
	for i, f := range frames {
		if f.At < 0 || f.At >= 20*sim.Second {
			t.Fatalf("frame %d at %v outside window", i, f.At)
		}
		if i > 0 && frames[i].At < frames[i-1].At {
			t.Fatal("frames not sorted by time")
		}
	}
}

func TestSampleByteBudget(t *testing.T) {
	g := NewGenerator(bulkProfile(), 13)
	frames, err := g.Sample(SampleConfig{MaxFrames: 100000, MaxBytes: 100000, FlowCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, f := range frames {
		total += int64(len(f.Data))
	}
	// The budget may be exceeded by at most a couple of frames.
	if total > 100000+4096 {
		t.Errorf("total bytes = %d, budget 100000", total)
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, err := NewGenerator(richProfile(), 21).Sample(SampleConfig{MaxFrames: 300, FlowCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(richProfile(), 21).Sample(SampleConfig{MaxFrames: 300, FlowCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || len(a[i].Data) != len(b[i].Data) {
			t.Fatal("samples differ")
		}
	}
}

func TestIPv6FractionApproximate(t *testing.T) {
	p := bulkProfile()
	p.IPv6Fraction = 0.02
	g := NewGenerator(p, 31)
	v6 := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if g.NewFlow().IPv6 {
			v6++
		}
	}
	frac := float64(v6) / n
	if frac < 0.01 || frac > 0.035 {
		t.Errorf("IPv6 flow fraction = %.4f, want ~0.02", frac)
	}
}

func TestMakeSiteProfilesDiversity(t *testing.T) {
	profiles := MakeSiteProfiles(1, 30)
	if len(profiles) != 30 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	minKinds, maxKinds := 99, 0
	for _, p := range profiles {
		n := len(p.ActiveKinds())
		if n < minKinds {
			minKinds = n
		}
		if n > maxKinds {
			maxKinds = n
		}
	}
	if minKinds > 4 {
		t.Errorf("no low-variety site (min %d kinds)", minKinds)
	}
	if maxKinds < 9 {
		t.Errorf("no high-variety site (max %d kinds)", maxKinds)
	}
	// Determinism.
	again := MakeSiteProfiles(1, 30)
	for i := range profiles {
		if profiles[i].KindWeights != again[i].KindWeights {
			t.Fatal("profiles not deterministic")
		}
	}
}

func TestVLANAlwaysPresent(t *testing.T) {
	g := NewGenerator(richProfile(), 41)
	for i := 0; i < 50; i++ {
		fs := g.NewFlow()
		data, err := g.BuildFrame(&fs, DirForward, g.DataFrameSize(fs.Kind))
		if err != nil {
			t.Fatal(err)
		}
		p := wire.NewPacket(data, wire.LayerTypeEthernet, wire.Default)
		if p.Layer(wire.LayerTypeDot1Q) == nil {
			t.Fatalf("frame without VLAN tag: %v", p.String())
		}
	}
}

func TestKindString(t *testing.T) {
	if KindBulkTCP.String() != "bulk-tcp" || KindVXLAN.String() != "vxlan" {
		t.Error("kind names")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("unknown kind name")
	}
}

func BenchmarkBuildJumboFrame(b *testing.B) {
	g := NewGenerator(bulkProfile(), 1)
	fs := g.NewFlow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.BuildFrame(&fs, DirForward, 1600); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuildTCPControl(t *testing.T) {
	g := NewGenerator(bulkProfile(), 17)
	fs := g.NewFlow()
	syn, err := g.BuildTCPControl(&fs, DirForward, wire.TCPSyn)
	if err != nil {
		t.Fatal(err)
	}
	p := wire.NewPacket(syn, wire.LayerTypeEthernet, wire.Default)
	tcp, ok := p.TransportLayer().(*wire.TCP)
	if !ok {
		t.Fatalf("no TCP: %v", p.String())
	}
	if tcp.Flags != wire.TCPSyn {
		t.Errorf("flags = %v", tcp.Flags)
	}
	// Forward direction: ports match the flow's orientation.
	if tcp.SrcPort != fs.SrcPort || tcp.DstPort != fs.DstPort {
		t.Errorf("ports = %d->%d, want %d->%d", tcp.SrcPort, tcp.DstPort, fs.SrcPort, fs.DstPort)
	}
	if len(tcp.LayerPayload()) != 0 {
		t.Error("control frame carries payload")
	}

	synAck, err := g.BuildTCPControl(&fs, DirReverse, wire.TCPSyn|wire.TCPAck)
	if err != nil {
		t.Fatal(err)
	}
	p2 := wire.NewPacket(synAck, wire.LayerTypeEthernet, wire.Default)
	tcp2 := p2.TransportLayer().(*wire.TCP)
	if tcp2.SrcPort != fs.DstPort || tcp2.DstPort != fs.SrcPort {
		t.Errorf("reverse ports = %d->%d", tcp2.SrcPort, tcp2.DstPort)
	}
	if tcp2.Flags != wire.TCPSyn|wire.TCPAck {
		t.Errorf("reverse flags = %v", tcp2.Flags)
	}
}

func TestBuildTCPControlRejectsNonTCP(t *testing.T) {
	p := bulkProfile()
	p.KindWeights = [11]float64{}
	p.KindWeights[KindDNS] = 1
	g := NewGenerator(p, 3)
	fs := g.NewFlow()
	if _, err := g.BuildTCPControl(&fs, DirForward, wire.TCPSyn); err == nil {
		t.Error("DNS flow should reject TCP control frames")
	}
}

func TestSampleEmitsHandshakes(t *testing.T) {
	g := NewGenerator(bulkProfile(), 23)
	frames, err := g.Sample(SampleConfig{MaxFrames: 4000, FlowCount: 120})
	if err != nil {
		t.Fatal(err)
	}
	var syn, fin, rst int
	for _, tf := range frames {
		p := wire.NewPacket(tf.Data, wire.LayerTypeEthernet, wire.Lazy)
		tl, ok := p.Layer(wire.LayerTypeTCP).(*wire.TCP)
		if !ok {
			continue
		}
		switch {
		case tl.Flags&wire.TCPSyn != 0:
			syn++
		case tl.Flags&wire.TCPRst != 0:
			rst++
		case tl.Flags&wire.TCPFin != 0:
			fin++
		}
	}
	if syn == 0 {
		t.Error("no SYNs emitted")
	}
	if fin == 0 {
		t.Error("no FINs emitted")
	}
	// RSTs are rare but should appear at this flow count.
	if rst == 0 {
		t.Log("no RSTs in this sample (rare event); acceptable")
	}
}
