// Package trafficgen synthesizes FABRIC-like network traffic: research
// workloads wrapped in the testbed's underlay encapsulations (VLAN, MPLS,
// Ethernet pseudowires). Because the real 13-month capture corpus cannot
// be redistributed, generators are calibrated to the aggregate statistics
// the paper reports — frame-size distribution dominated by jumbo frames,
// IPv4 dominance with <2% IPv6, per-site protocol diversity ranging from
// bare throughput tests to rich application mixes, and heavy-tailed flow
// sizes.
package trafficgen

import (
	"fmt"

	"repro/internal/rng"
)

// Kind is a flow archetype. Each kind maps to a protocol stack and a
// characteristic frame-size mix.
type Kind uint8

// Flow archetypes observed in research-testbed traffic.
const (
	// KindBulkTCP is an iperf3-style throughput flow: jumbo data frames
	// one way, minimum-size ACKs the other.
	KindBulkTCP Kind = iota
	// KindTLS is an HTTPS/TLS session (mid-size records).
	KindTLS
	// KindSSH is an interactive SSH session (small segments).
	KindSSH
	// KindHTTP is plaintext HTTP.
	KindHTTP
	// KindDNS is a UDP DNS query/response pair.
	KindDNS
	// KindNTP is an NTP poll.
	KindNTP
	// KindICMP is a ping train.
	KindICMP
	// KindARP is an ARP request/reply.
	KindARP
	// KindUDPBulk is a UDP blast (e.g. custom transport experiments).
	KindUDPBulk
	// KindVXLAN is VXLAN-encapsulated overlay traffic.
	KindVXLAN
	// KindGRE is GRE-tunneled traffic.
	KindGRE
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	names := [...]string{
		"bulk-tcp", "tls", "ssh", "http", "dns", "ntp", "icmp", "arp",
		"udp-bulk", "vxlan", "gre",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Profile describes one site's workload mix. All fractions are 0..1.
type Profile struct {
	// Site is the (pseudonymized) site name.
	Site string
	// KindWeights gives the relative frequency of each flow archetype;
	// zero-weight kinds never appear at this site. Sites with few nonzero
	// weights reproduce the paper's low-protocol-variety sites.
	KindWeights [numKinds]float64
	// IPv6Fraction is the probability a flow uses IPv6 (1.93% of frames
	// testbed-wide).
	IPv6Fraction float64
	// PWFraction is the probability a flow's encapsulation includes an
	// Ethernet pseudowire (inner Ethernet) under the MPLS stack.
	PWFraction float64
	// MPLSDepth2Fraction is the probability of a 2-label MPLS stack
	// instead of 1.
	MPLSDepth2Fraction float64
	// JumboData selects jumbo (~1519-2047B) data frames for bulk flows;
	// otherwise standard 1500B MTU framing is used.
	JumboData bool
	// FlowsPerSampleLogMean/LogSigma parameterize a lognormal draw of the
	// number of distinct flows in one 20-second sample (Fig. 13: mostly
	// under 3,000, a handful above 20,000).
	FlowsPerSampleLogMean  float64
	FlowsPerSampleLogSigma float64
	// MeanUtilization is the fraction of line rate this site's mirrored
	// traffic tends to occupy (FABRIC utilization is usually low: the
	// median port runs below 38%).
	MeanUtilization float64
	// StormProbability is the chance a sample window catches a
	// flow-storm experiment (port scans, many-flow stress tests) whose
	// flow count dwarfs the usual draw — the source of Fig. 13's
	// >20,000-flow tail.
	StormProbability float64
}

// ActiveKinds returns the kinds with nonzero weight.
func (p *Profile) ActiveKinds() []Kind {
	var out []Kind
	for k := Kind(0); k < numKinds; k++ {
		if p.KindWeights[k] > 0 {
			out = append(out, k)
		}
	}
	return out
}

// drawKind samples a flow archetype.
func (p *Profile) drawKind(r *rng.Source) Kind {
	return Kind(r.WeightedChoice(p.KindWeights[:]))
}

// drawFlowCount samples the number of distinct flows in a 20s sample.
func (p *Profile) drawFlowCount(r *rng.Source) int {
	n := int(r.LogNormal(p.FlowsPerSampleLogMean, p.FlowsPerSampleLogSigma))
	if n < 1 {
		n = 1
	}
	if r.Bool(p.StormProbability) {
		n *= 80
	}
	return n
}

// MakeSiteProfiles builds n deterministic per-site profiles with the
// diversity Section 8.2 reports: several sites run essentially one
// workload (simple throughput experiments), most carry a moderate mix,
// and a few host many protocol types.
func MakeSiteProfiles(seed uint64, n int) []Profile {
	r := rng.New(seed)
	out := make([]Profile, n)
	for i := range out {
		p := Profile{
			Site:                   fmt.Sprintf("S%d", i),
			IPv6Fraction:           0.015 + 0.01*r.Float64(), // ~1.5-2.5% of flows
			PWFraction:             0.5 + 0.4*r.Float64(),
			MPLSDepth2Fraction:     0.3 + 0.4*r.Float64(),
			JumboData:              r.Bool(0.95),
			StormProbability:       0.03,
			FlowsPerSampleLogMean:  4.5 + 2.2*r.Float64(), // e^4.5≈90 .. e^6.7≈810 median
			FlowsPerSampleLogSigma: 0.9 + 0.8*r.Float64(),
			MeanUtilization:        0.02 + 0.3*r.Float64()*r.Float64(),
		}
		if i%4 == 1 {
			// Shallow-encapsulation sites: no pseudowire, single MPLS
			// label (Fig. 11's 6-header minimum).
			p.PWFraction = 0
			p.MPLSDepth2Fraction = 0
		}
		// Workload variety class.
		switch {
		case i%5 == 0:
			// Throughput-experiment site: bulk TCP dominates, little else.
			p.KindWeights[KindBulkTCP] = 0.9
			p.KindWeights[KindICMP] = 0.05
			p.KindWeights[KindARP] = 0.05
		case i%5 == 4:
			// Rich application mix.
			p.KindWeights[KindBulkTCP] = 0.25
			p.KindWeights[KindTLS] = 0.2
			p.KindWeights[KindSSH] = 0.12
			p.KindWeights[KindHTTP] = 0.1
			p.KindWeights[KindDNS] = 0.1
			p.KindWeights[KindNTP] = 0.05
			p.KindWeights[KindICMP] = 0.05
			p.KindWeights[KindARP] = 0.03
			p.KindWeights[KindUDPBulk] = 0.05
			p.KindWeights[KindVXLAN] = 0.03
			p.KindWeights[KindGRE] = 0.02
		default:
			// Moderate mix, randomized emphasis.
			p.KindWeights[KindBulkTCP] = 0.55 + 0.3*r.Float64()
			p.KindWeights[KindTLS] = 0.1 * r.Float64()
			p.KindWeights[KindSSH] = 0.15 * r.Float64()
			p.KindWeights[KindDNS] = 0.1 * r.Float64()
			p.KindWeights[KindICMP] = 0.05
			p.KindWeights[KindUDPBulk] = 0.2 * r.Float64()
			if r.Bool(0.3) {
				p.KindWeights[KindVXLAN] = 0.05
			}
		}
		out[i] = p
	}
	return out
}
