// Package rng provides deterministic pseudo-random number generation for
// the Patchwork simulation. Every experiment in this repository must be
// reproducible bit-for-bit, so all stochastic behaviour flows through a
// seeded Source rather than math/rand's global state.
//
// The generator is xoshiro256** seeded via splitmix64, the combination
// recommended by its authors. It is not cryptographically secure and is
// not meant to be.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; create one Source per goroutine (Split makes this cheap).
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using splitmix64 so that
// nearby seeds produce unrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm = sm + 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split derives an independent child source from the current state. The
// parent's stream advances, so successive Splits differ.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa0761d6478bd642f)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation (simple rejection
	// variant keeps it readable and unbiased).
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int64(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by 1/lambda for other rates.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha. Heavy-tailed flow sizes in the traffic generator use this.
func (s *Source) Pareto(xm, alpha float64) float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// LogNormal returns exp(mu + sigma*N(0,1)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) chosen with
// probability proportional to weights[i]. Zero total weight panics.
func (s *Source) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: WeightedChoice with zero total weight")
	}
	r := s.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := mean + math.Sqrt(mean)*s.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
