package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(100, 1.2); v < 100 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	for _, n := range []int{0, 1, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(21)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-total weights should panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestPoissonMean(t *testing.T) {
	s := New(17)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		var sum int
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
}

func TestBool(t *testing.T) {
	s := New(29)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.23 || p > 0.27 {
		t.Errorf("Bool(0.25) frequency = %v", p)
	}
}

func TestShuffle(t *testing.T) {
	s := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle altered elements: %v (orig %v)", xs, orig)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
