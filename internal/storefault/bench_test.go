package storefault

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func nowNs() int64 { return time.Now().UnixNano() }

// The seam-cost benchmarks compare the two write patterns the seam sits
// on in production against raw *os.File writes of the same shape:
// journal-style small framed lines and flowstore-style column blocks.
// The passthrough Disk adds one interface dispatch per call and nothing
// else; these benchmarks (and the -smoke gate in TestSeamOverheadGate)
// are the receipt.

const (
	journalLineBytes   = 160
	flowstoreBlockSize = 8 << 10
)

// benchWrites measures b.N sequential writes of size bytes, either
// through the Disk seam or straight to *os.File.
func benchWrites(b *testing.B, seam bool, size int) {
	path := filepath.Join(b.TempDir(), "bench.dat")
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	var w interface {
		Write([]byte) (int, error)
		Close() error
	}
	if seam {
		f, err := Disk.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		w = f
	} else {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		w = f
	}
	defer w.Close()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeamJournalLineRaw(b *testing.B)    { benchWrites(b, false, journalLineBytes) }
func BenchmarkSeamJournalLineDisk(b *testing.B)   { benchWrites(b, true, journalLineBytes) }
func BenchmarkSeamFlowstoreBlockRaw(b *testing.B) { benchWrites(b, false, flowstoreBlockSize) }
func BenchmarkSeamFlowstoreBlockDisk(b *testing.B) {
	benchWrites(b, true, flowstoreBlockSize)
}

// TestSeamOverheadGate is the within-noise gate bench.sh -smoke runs:
// the passthrough seam must stay within 2x + 2µs of the raw write on
// both hot-path shapes (a single interface dispatch costs nanoseconds;
// the actual write costs microseconds, so a seam regression that trips
// this gate means the seam grew real work). Skipped unless
// PW_SEAM_GATE=1, because testing.Benchmark runs long enough to be
// meaningful and this does not belong in every unit-test pass.
func TestSeamOverheadGate(t *testing.T) {
	if os.Getenv("PW_SEAM_GATE") == "" {
		t.Skip("set PW_SEAM_GATE=1 to run the seam overhead gate")
	}
	// Fixed iteration counts and best-of-5 keep the gate fast (tens of
	// milliseconds per shape) while smoothing scheduler jitter.
	measure := func(seam bool, size, iters int) int64 {
		best := int64(-1)
		for rep := 0; rep < 5; rep++ {
			path := filepath.Join(t.TempDir(), "gate.dat")
			buf := make([]byte, size)
			var w File
			var err error
			if seam {
				w, err = Disk.Create(path)
			} else {
				var f *os.File
				f, err = os.Create(path)
				w = f
			}
			if err != nil {
				t.Fatal(err)
			}
			start := nowNs()
			for i := 0; i < iters; i++ {
				if _, err := w.Write(buf); err != nil {
					t.Fatal(err)
				}
			}
			per := (nowNs() - start) / int64(iters)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if best < 0 || per < best {
				best = per
			}
		}
		return best
	}
	for _, tc := range []struct {
		name  string
		size  int
		iters int
	}{
		{"journal-line", journalLineBytes, 8192},
		{"flowstore-block", flowstoreBlockSize, 2048},
	} {
		rawNs := measure(false, tc.size, tc.iters)
		seamNs := measure(true, tc.size, tc.iters)
		ratio := float64(seamNs) / float64(rawNs)
		// Key for bench.sh to scrape: seam_overhead <name> <raw> <seam> <ratio>
		fmt.Printf("seam_overhead %s raw_ns=%d seam_ns=%d ratio=%.3f\n",
			tc.name, rawNs, seamNs, ratio)
		if limit := rawNs*2 + 2000; seamNs > limit {
			t.Errorf("%s: seam %d ns/op exceeds noise limit %d ns/op (raw %d ns/op)",
				tc.name, seamNs, limit, rawNs)
		}
	}
}
