// Package storefault is the storage seam of the fault-injection story:
// every on-disk artifact writer and reader in the platform (campaign
// journal, flow store, livemon ring, provenance traces, pcap and health
// dumps) performs its I/O through the FS interface defined here instead
// of calling the os package directly. The passthrough implementation
// (Disk) adds nothing but a virtual call; the chaos implementation
// (NewChaos) injects torn writes, short writes, bit flips, ENOSPC,
// fsync failures, rename failures, and read errors from a seeded,
// JSON-serializable plan — the storage sibling of internal/faults.
//
// Like the dataplane fault engine, the chaos layer is deterministic:
// every injection decision flows through a child of one seeded
// rng.Source keyed by matching-operation order, so the same
// (plan, seed) pair replays the same injections at the same operations.
package storefault

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the platform's artifact writers and
// readers use. *os.File satisfies it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	// WriteString writes a string (the WAL's line-framing path).
	WriteString(s string) (int, error)
	// Truncate cuts the file to size (torn-tail repair on open).
	Truncate(size int64) error
	// Sync flushes the file to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem seam. Implementations: osFS (the real disk,
// exposed as Disk) and Chaos (fault-injecting wrapper).
type FS interface {
	// Create truncates/creates the file at path for writing.
	Create(path string) (File, error)
	// Open opens the file at path read-only.
	Open(path string) (File, error)
	// OpenFile is the general open (os.OpenFile semantics).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// WriteFile writes data to path, creating or truncating it.
	WriteFile(path string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the file at path.
	Remove(path string) error
	// MkdirAll creates the directory path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts the file at path to size.
	Truncate(path string, size int64) error
	// Stat describes the file at path.
	Stat(path string) (fs.FileInfo, error)
	// ReadDir lists the directory at path.
	ReadDir(path string) ([]fs.DirEntry, error)
}

// Disk is the passthrough FS: every call forwards to the os package.
// It is the default seam everywhere — the chaos layer is opt-in.
var Disk FS = osFS{}

// osFS forwards to the os package.
type osFS struct{}

func (osFS) Create(path string) (File, error) { return os.Create(path) }
func (osFS) Open(path string) (File, error)   { return os.Open(path) }
func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func (osFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Truncate(path string, size int64) error       { return os.Truncate(path, size) }
func (osFS) Stat(path string) (fs.FileInfo, error)        { return os.Stat(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }

// Or returns fsys when non-nil and Disk otherwise — the idiom every
// FS-parameterized constructor uses to default its seam.
func Or(fsys FS) FS {
	if fsys == nil {
		return Disk
	}
	return fsys
}
