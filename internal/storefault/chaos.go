package storefault

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"repro/internal/rng"
)

// Injected-fault sentinels. ENOSPC is the real syscall errno so callers'
// errors.Is(err, syscall.ENOSPC) degradation paths fire exactly as they
// would on a full disk.
var (
	// ErrInjectedFsync is the cause of an injected fsync failure.
	ErrInjectedFsync = errors.New("storefault: injected fsync failure")
	// ErrInjectedRename is the cause of an injected rename failure.
	ErrInjectedRename = errors.New("storefault: injected rename failure")
	// ErrInjectedRead is the cause of an injected read error.
	ErrInjectedRead = errors.New("storefault: injected read error")
)

// Target selects which operations a plan entry can fire on. Every entry
// embeds one.
type Target struct {
	// PathGlob is a filepath.Match pattern tested against the file's
	// base name ("wal.jsonl", "*.pcap", "seg-*"). Empty matches every
	// file.
	PathGlob string `json:"path_glob,omitempty"`
	// Rate is the per-matching-operation injection probability in (0, 1].
	Rate float64 `json:"rate"`
	// AfterOps skips the entry's first AfterOps matching operations, so
	// a plan can let a file's header land intact before corrupting it.
	AfterOps int `json:"after_ops,omitempty"`
	// Max caps the entry's total injections; 0 means unlimited.
	Max int `json:"max,omitempty"`
}

func (t Target) validate(what string) error {
	if t.Rate <= 0 || t.Rate > 1 {
		return fmt.Errorf("storefault: %s: rate %g outside (0, 1]", what, t.Rate)
	}
	if t.AfterOps < 0 || t.Max < 0 {
		return fmt.Errorf("storefault: %s: negative after_ops or max", what)
	}
	if t.PathGlob != "" {
		if _, err := filepath.Match(t.PathGlob, "x"); err != nil {
			return fmt.Errorf("storefault: %s: bad path_glob %q: %v", what, t.PathGlob, err)
		}
	}
	return nil
}

// TornWrite persists only a prefix of a write but reports full success —
// the classic lost-tail power failure, invisible until the file is read
// back.
type TornWrite struct{ Target }

// ShortWrite persists a prefix and honestly returns n < len(p) with a
// nil error, which io.Writer clients must surface as io.ErrShortWrite.
type ShortWrite struct{ Target }

// BitFlip flips one random bit of the written buffer and reports
// success — silent media corruption.
type BitFlip struct{ Target }

// ENOSPC fails a write with syscall.ENOSPC, modeling a full volume.
type ENOSPC struct{ Target }

// FsyncFault corrupts fsync: by default Sync returns an error; with
// Latent it silently skips the inner sync and reports success (the
// "lying fsync" firmware bug).
type FsyncFault struct {
	Target
	Latent bool `json:"latent,omitempty"`
}

// RenameFault fails a rename (matched against the destination's base
// name) — the atomic checkpoint swap's failure mode.
type RenameFault struct{ Target }

// ReadError fails a read operation on a matching file.
type ReadError struct{ Target }

// Plan is a complete, replayable storage-fault schedule — the
// filesystem sibling of faults.Plan.
type Plan struct {
	// Name labels the plan in logs and summaries.
	Name string `json:"name,omitempty"`
	// TornWrites, ShortWrites, … are the plan's entries, applied in
	// declaration order.
	TornWrites   []TornWrite   `json:"torn_writes,omitempty"`
	ShortWrites  []ShortWrite  `json:"short_writes,omitempty"`
	BitFlips     []BitFlip     `json:"bit_flips,omitempty"`
	ENOSPCs      []ENOSPC      `json:"enospc,omitempty"`
	FsyncFaults  []FsyncFault  `json:"fsync_faults,omitempty"`
	RenameFaults []RenameFault `json:"rename_faults,omitempty"`
	ReadErrors   []ReadError   `json:"read_errors,omitempty"`
}

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool {
	return len(p.TornWrites) == 0 && len(p.ShortWrites) == 0 &&
		len(p.BitFlips) == 0 && len(p.ENOSPCs) == 0 &&
		len(p.FsyncFaults) == 0 && len(p.RenameFaults) == 0 &&
		len(p.ReadErrors) == 0
}

// Validate rejects malformed plans with an error naming the bad entry.
func (p Plan) Validate() error {
	for i, e := range p.TornWrites {
		if err := e.validate(fmt.Sprintf("torn_writes[%d]", i)); err != nil {
			return err
		}
	}
	for i, e := range p.ShortWrites {
		if err := e.validate(fmt.Sprintf("short_writes[%d]", i)); err != nil {
			return err
		}
	}
	for i, e := range p.BitFlips {
		if err := e.validate(fmt.Sprintf("bit_flips[%d]", i)); err != nil {
			return err
		}
	}
	for i, e := range p.ENOSPCs {
		if err := e.validate(fmt.Sprintf("enospc[%d]", i)); err != nil {
			return err
		}
	}
	for i, e := range p.FsyncFaults {
		if err := e.validate(fmt.Sprintf("fsync_faults[%d]", i)); err != nil {
			return err
		}
	}
	for i, e := range p.RenameFaults {
		if err := e.validate(fmt.Sprintf("rename_faults[%d]", i)); err != nil {
			return err
		}
	}
	for i, e := range p.ReadErrors {
		if err := e.validate(fmt.Sprintf("read_errors[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// Parse decodes and validates a JSON plan. Unknown fields are errors so
// a typo fails loudly instead of silently injecting nothing.
func Parse(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("storefault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Load reads and parses a plan file.
func Load(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("storefault: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return Plan{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// Fault kinds, used as the Injected() map key and the injection-log
// label.
const (
	KindTornWrite   = "torn-write"
	KindShortWrite  = "short-write"
	KindBitFlip     = "bit-flip"
	KindENOSPC      = "enospc"
	KindFsyncFault  = "fsync-fault"
	KindRenameFault = "rename-fault"
	KindReadError   = "read-error"
)

// Injection is one fired fault: the Op'th fault-eligible filesystem
// operation the chaos layer saw, what was injected, and on which file.
// The ordered injection list is the layer's determinism receipt — two
// runs of the same (plan, seed) must produce identical lists.
type Injection struct {
	Op   int    `json:"op"`
	Kind string `json:"kind"`
	Path string `json:"path"`
}

// entry is one armed plan entry with its private rng stream and
// matching-op counters.
type entry struct {
	kind   string
	t      Target
	latent bool
	r      *rng.Source
	ops    int
	hits   int
}

// fire decides whether this entry injects on a matching operation. The
// rng stream advances exactly once per matching op past after_ops, so
// entries decide independently of each other's outcomes — the core of
// injection-for-injection replay.
func (e *entry) fire(base string) bool {
	if e.t.PathGlob != "" {
		if ok, _ := filepath.Match(e.t.PathGlob, base); !ok {
			return false
		}
	}
	e.ops++
	if e.ops <= e.t.AfterOps {
		return false
	}
	if e.t.Max > 0 && e.hits >= e.t.Max {
		return false
	}
	if !e.r.Bool(e.t.Rate) {
		return false
	}
	e.hits++
	return true
}

// Chaos is the fault-injecting FS. It wraps an inner FS (usually Disk)
// and applies a Plan's entries to matching operations. All decisions
// are serialized under one mutex and drawn from per-entry children of a
// single seeded source, so a single-threaded caller replays the same
// injections for the same (plan, seed).
type Chaos struct {
	inner FS
	plan  Plan

	mu      sync.Mutex
	writes  []*entry // torn, short, flip, enospc — precedence below
	syncs   []*entry
	renames []*entry
	reads   []*entry
	opSeq   int
	counts  map[string]int64
	log     []Injection

	notify func(kind, path string)
}

// NewChaos validates the plan and arms a chaos FS over inner. All
// randomness derives from seed, independently of any other seeded
// component; entries receive child streams in declaration order.
func NewChaos(inner FS, seed uint64, plan Plan) (*Chaos, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	c := &Chaos{
		inner:  Or(inner),
		plan:   plan,
		counts: make(map[string]int64),
	}
	root := rng.New(seed ^ 0x73746f7265) // "store"
	// Error-kind write faults (ENOSPC, short) precede silent ones (torn,
	// bit flip): an op that fails loudly cannot also corrupt silently.
	for _, e := range plan.ENOSPCs {
		c.writes = append(c.writes, &entry{kind: KindENOSPC, t: e.Target, r: root.Split()})
	}
	for _, e := range plan.ShortWrites {
		c.writes = append(c.writes, &entry{kind: KindShortWrite, t: e.Target, r: root.Split()})
	}
	for _, e := range plan.TornWrites {
		c.writes = append(c.writes, &entry{kind: KindTornWrite, t: e.Target, r: root.Split()})
	}
	for _, e := range plan.BitFlips {
		c.writes = append(c.writes, &entry{kind: KindBitFlip, t: e.Target, r: root.Split()})
	}
	for _, e := range plan.FsyncFaults {
		c.syncs = append(c.syncs, &entry{kind: KindFsyncFault, t: e.Target, latent: e.Latent, r: root.Split()})
	}
	for _, e := range plan.RenameFaults {
		c.renames = append(c.renames, &entry{kind: KindRenameFault, t: e.Target, r: root.Split()})
	}
	for _, e := range plan.ReadErrors {
		c.reads = append(c.reads, &entry{kind: KindReadError, t: e.Target, r: root.Split()})
	}
	return c, nil
}

// Plan returns the chaos layer's (validated) plan.
func (c *Chaos) Plan() Plan { return c.plan }

// SetNotify installs a callback invoked (outside the chaos lock) for
// every injection — the campaign layer counts these under
// patchwork_storage_errors_total.
func (c *Chaos) SetNotify(f func(kind, path string)) { c.notify = f }

// effect is one resolved write-op decision: which fault applies and the
// rng-drawn cut point / bit position it needs.
type effect struct {
	kind string
	path string
	n    int // torn/short: bytes actually persisted
	bit  int // bit flip: bit index into the buffer
}

// decideWrite runs every write-class entry against one write op and
// resolves precedence. Every matching entry's stream advances whether
// or not an earlier entry already fired.
func (c *Chaos) decideWrite(path string, size int) (effect, func()) {
	base := filepath.Base(path)
	c.mu.Lock()
	c.opSeq++
	eff := effect{path: path}
	for _, e := range c.writes {
		if !e.fire(base) {
			continue
		}
		if eff.kind != "" {
			e.hits-- // a single op carries a single fault; refund the cap
			continue
		}
		eff.kind = e.kind
		switch e.kind {
		case KindTornWrite, KindShortWrite:
			if size > 0 {
				eff.n = e.r.Intn(size) // strict prefix: [0, size)
			}
		case KindBitFlip:
			if size > 0 {
				eff.bit = e.r.Intn(size * 8)
			} else {
				eff.kind = "" // nothing to flip in an empty write
				e.hits--
			}
		}
	}
	return eff, c.noteLocked(eff.kind, path)
}

// decideOp runs one non-write op class (sync, rename, read) and reports
// the fired entry, if any.
func (c *Chaos) decideOp(entries []*entry, path string) (*entry, func()) {
	base := filepath.Base(path)
	c.mu.Lock()
	c.opSeq++
	var fired *entry
	for _, e := range entries {
		if e.fire(base) {
			if fired != nil {
				e.hits--
				continue
			}
			fired = e
		}
	}
	kind := ""
	if fired != nil {
		kind = fired.kind
	}
	return fired, c.noteLocked(kind, path)
}

// noteLocked records an injection (or nothing) and returns the deferred
// notify step to run after the lock is released. Callers must hold c.mu;
// the returned func unlocks it.
func (c *Chaos) noteLocked(kind, path string) func() {
	var fn func(kind, path string)
	if kind != "" {
		c.counts[kind]++
		c.log = append(c.log, Injection{Op: c.opSeq, Kind: kind, Path: filepath.Base(path)})
		fn = c.notify
	}
	c.mu.Unlock()
	if fn == nil {
		return func() {}
	}
	return func() { fn(kind, path) }
}

// Injected returns a copy of the per-kind injection counts so far
// (kinds with zero injections are omitted).
func (c *Chaos) Injected() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// InjectedTotal sums injections across kinds.
func (c *Chaos) InjectedTotal() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, v := range c.counts {
		total += v
	}
	return total
}

// Injections returns the ordered injection log.
func (c *Chaos) Injections() []Injection {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Injection, len(c.log))
	copy(out, c.log)
	return out
}

// WriteLogJSONL renders the injection log one JSON object per line —
// the artifact same-seed runs are byte-compared on.
func (c *Chaos) WriteLogJSONL(w io.Writer) error {
	for _, inj := range c.Injections() {
		data, err := json.Marshal(inj)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the per-kind counts, sorted by kind, for CLI output.
func (c *Chaos) Summary() string {
	injected := c.Injected()
	if len(injected) == 0 {
		return "no storage faults injected"
	}
	names := make([]string, 0, len(injected))
	for k := range injected {
		names = append(names, k)
	}
	sort.Strings(names)
	s := ""
	for _, k := range names {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, injected[k])
	}
	return s
}

// --- FS implementation ---

func (c *Chaos) wrap(f File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return &chaosFile{c: c, f: f, path: f.Name()}, nil
}

func (c *Chaos) Create(path string) (File, error) { return c.wrap(c.inner.Create(path)) }
func (c *Chaos) Open(path string) (File, error)   { return c.wrap(c.inner.Open(path)) }
func (c *Chaos) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return c.wrap(c.inner.OpenFile(path, flag, perm))
}

func (c *Chaos) ReadFile(path string) ([]byte, error) {
	fired, done := c.decideOp(c.reads, path)
	done()
	if fired != nil {
		return nil, &os.PathError{Op: "read", Path: path, Err: ErrInjectedRead}
	}
	return c.inner.ReadFile(path)
}

func (c *Chaos) WriteFile(path string, data []byte, perm os.FileMode) error {
	eff, done := c.decideWrite(path, len(data))
	done()
	switch eff.kind {
	case KindENOSPC:
		return &os.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
	case KindShortWrite, KindTornWrite:
		// Whole-file writes have no honest short-write channel; both
		// kinds leave a truncated file. Short write reports the error,
		// torn write lies.
		err := c.inner.WriteFile(path, data[:eff.n], perm)
		if err == nil && eff.kind == KindShortWrite {
			err = &os.PathError{Op: "write", Path: path, Err: io.ErrShortWrite}
		}
		return err
	case KindBitFlip:
		flipped := append([]byte(nil), data...)
		flipped[eff.bit/8] ^= 1 << (eff.bit % 8)
		return c.inner.WriteFile(path, flipped, perm)
	}
	return c.inner.WriteFile(path, data, perm)
}

func (c *Chaos) Rename(oldpath, newpath string) error {
	fired, done := c.decideOp(c.renames, newpath)
	done()
	if fired != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrInjectedRename}
	}
	return c.inner.Rename(oldpath, newpath)
}

func (c *Chaos) Remove(path string) error                     { return c.inner.Remove(path) }
func (c *Chaos) MkdirAll(path string, perm os.FileMode) error { return c.inner.MkdirAll(path, perm) }
func (c *Chaos) Truncate(path string, size int64) error       { return c.inner.Truncate(path, size) }
func (c *Chaos) Stat(path string) (fs.FileInfo, error)        { return c.inner.Stat(path) }
func (c *Chaos) ReadDir(path string) ([]fs.DirEntry, error)   { return c.inner.ReadDir(path) }

// chaosFile applies write/read/sync faults to one open file.
type chaosFile struct {
	c    *Chaos
	f    File
	path string
}

func (f *chaosFile) Write(p []byte) (int, error) {
	eff, done := f.c.decideWrite(f.path, len(p))
	done()
	switch eff.kind {
	case KindENOSPC:
		return 0, &os.PathError{Op: "write", Path: f.path, Err: syscall.ENOSPC}
	case KindShortWrite:
		n, err := f.f.Write(p[:eff.n])
		if err != nil {
			return n, err
		}
		return n, nil // honest short count; callers must notice n < len(p)
	case KindTornWrite:
		if _, err := f.f.Write(p[:eff.n]); err != nil {
			return 0, err
		}
		return len(p), nil // the lie: full success, prefix persisted
	case KindBitFlip:
		flipped := append([]byte(nil), p...)
		flipped[eff.bit/8] ^= 1 << (eff.bit % 8)
		return f.f.Write(flipped)
	}
	return f.f.Write(p)
}

func (f *chaosFile) WriteString(s string) (int, error) { return f.Write([]byte(s)) }

func (f *chaosFile) Read(p []byte) (int, error) {
	fired, done := f.c.decideOp(f.c.reads, f.path)
	done()
	if fired != nil {
		return 0, &os.PathError{Op: "read", Path: f.path, Err: ErrInjectedRead}
	}
	return f.f.Read(p)
}

func (f *chaosFile) ReadAt(p []byte, off int64) (int, error) {
	fired, done := f.c.decideOp(f.c.reads, f.path)
	done()
	if fired != nil {
		return 0, &os.PathError{Op: "read", Path: f.path, Err: ErrInjectedRead}
	}
	return f.f.ReadAt(p, off)
}

func (f *chaosFile) Sync() error {
	fired, done := f.c.decideOp(f.c.syncs, f.path)
	done()
	if fired != nil {
		if fired.latent {
			return nil // lying fsync: success reported, nothing durable
		}
		return &os.PathError{Op: "sync", Path: f.path, Err: ErrInjectedFsync}
	}
	return f.f.Sync()
}

func (f *chaosFile) Seek(offset int64, whence int) (int64, error) { return f.f.Seek(offset, whence) }
func (f *chaosFile) Truncate(size int64) error                    { return f.f.Truncate(size) }
func (f *chaosFile) Close() error                                 { return f.f.Close() }
func (f *chaosFile) Name() string                                 { return f.f.Name() }
