package storefault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

func TestDiskPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := Disk.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("hello"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := Disk.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" {
		t.Fatalf("read back %q", data)
	}
	if err := Disk.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if Or(nil) != Disk {
		t.Fatal("Or(nil) != Disk")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []string{
		`{"torn_writes": [{"rate": 0}]}`,
		`{"bit_flips": [{"rate": 1.5}]}`,
		`{"enospc": [{"rate": 0.5, "after_ops": -1}]}`,
		`{"read_errors": [{"rate": 0.5, "path_glob": "[unclosed"}]}`,
		`{"bogus_field": []}`,
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("Parse(%s) accepted", c)
		}
	}
	p, err := Parse([]byte(`{"name": "ok", "torn_writes": [{"rate": 1, "path_glob": "*.jsonl", "max": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() || p.Name != "ok" {
		t.Fatalf("unexpected plan %+v", p)
	}
}

// chaosWrite writes data to path through the chaos FS's file layer and
// returns what Write reported plus the bytes that actually landed.
func chaosWrite(t *testing.T, c *Chaos, path string, data []byte) (int, error, []byte) {
	t.Helper()
	f, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write(data)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return n, werr, got
}

func TestTornWriteLies(t *testing.T) {
	plan, _ := Parse([]byte(`{"torn_writes": [{"rate": 1, "max": 1}]}`))
	c, err := NewChaos(Disk, 1, plan)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	n, werr, got := chaosWrite(t, c, filepath.Join(t.TempDir(), "f"), payload)
	if werr != nil || n != len(payload) {
		t.Fatalf("torn write must report full success, got n=%d err=%v", n, werr)
	}
	if len(got) >= len(payload) {
		t.Fatalf("torn write persisted %d bytes, want a strict prefix of %d", len(got), len(payload))
	}
	if c.Injected()[KindTornWrite] != 1 {
		t.Fatalf("injected = %v", c.Injected())
	}
}

func TestShortWriteHonest(t *testing.T) {
	plan, _ := Parse([]byte(`{"short_writes": [{"rate": 1, "max": 1}]}`))
	c, _ := NewChaos(Disk, 2, plan)
	payload := bytes.Repeat([]byte("y"), 64)
	n, werr, got := chaosWrite(t, c, filepath.Join(t.TempDir(), "f"), payload)
	if werr != nil {
		t.Fatalf("short write returns nil error (the count is the signal), got %v", werr)
	}
	if n >= len(payload) {
		t.Fatalf("short write reported n=%d, want < %d", n, len(payload))
	}
	if len(got) != n {
		t.Fatalf("persisted %d bytes, reported %d", len(got), n)
	}
}

func TestBitFlipSilent(t *testing.T) {
	plan, _ := Parse([]byte(`{"bit_flips": [{"rate": 1, "max": 1}]}`))
	c, _ := NewChaos(Disk, 3, plan)
	payload := bytes.Repeat([]byte{0}, 32)
	n, werr, got := chaosWrite(t, c, filepath.Join(t.TempDir(), "f"), payload)
	if werr != nil || n != len(payload) {
		t.Fatalf("bit flip must report success, got n=%d err=%v", n, werr)
	}
	if len(got) != len(payload) {
		t.Fatalf("length changed: %d", len(got))
	}
	ones := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("want exactly one flipped bit, got %d", ones)
	}
}

func TestENOSPC(t *testing.T) {
	plan, _ := Parse([]byte(`{"enospc": [{"rate": 1, "max": 1}]}`))
	c, _ := NewChaos(Disk, 4, plan)
	_, werr, got := chaosWrite(t, c, filepath.Join(t.TempDir(), "f"), []byte("data"))
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", werr)
	}
	if len(got) != 0 {
		t.Fatalf("ENOSPC persisted %d bytes", len(got))
	}
	// WriteFile takes the same path.
	err := c.WriteFile(filepath.Join(t.TempDir(), "g"), []byte("data"), 0o644)
	if err != nil {
		t.Fatalf("max=1 exhausted, second write should pass: %v", err)
	}
}

func TestFsyncFaults(t *testing.T) {
	plan, _ := Parse([]byte(`{"fsync_faults": [{"rate": 1, "max": 1}]}`))
	c, _ := NewChaos(Disk, 5, plan)
	f, err := c.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjectedFsync) {
		t.Fatalf("want injected fsync failure, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync should pass: %v", err)
	}

	latent, _ := Parse([]byte(`{"fsync_faults": [{"rate": 1, "latent": true}]}`))
	c2, _ := NewChaos(Disk, 5, latent)
	f2, err := c2.Create(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.Sync(); err != nil {
		t.Fatalf("latent fsync must report success, got %v", err)
	}
	if c2.Injected()[KindFsyncFault] != 1 {
		t.Fatalf("latent fsync not counted: %v", c2.Injected())
	}
}

func TestRenameFault(t *testing.T) {
	plan, _ := Parse([]byte(`{"rename_faults": [{"rate": 1, "max": 1, "path_glob": "checkpoint.json"}]}`))
	c, _ := NewChaos(Disk, 6, plan)
	dir := t.TempDir()
	src := filepath.Join(dir, "checkpoint.json.tmp")
	if err := os.WriteFile(src, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := c.Rename(src, filepath.Join(dir, "checkpoint.json"))
	if !errors.Is(err, ErrInjectedRename) {
		t.Fatalf("want injected rename failure, got %v", err)
	}
	// Other destinations don't match the glob.
	if err := c.Rename(src, filepath.Join(dir, "other.json")); err != nil {
		t.Fatal(err)
	}
}

func TestReadError(t *testing.T) {
	plan, _ := Parse([]byte(`{"read_errors": [{"rate": 1, "max": 2}]}`))
	c, _ := NewChaos(Disk, 7, plan)
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile(path); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("want injected read error, got %v", err)
	}
	f, err := c.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Read(make([]byte, 4)); !errors.Is(err, ErrInjectedRead) {
		t.Fatalf("want injected read error, got %v", err)
	}
	if _, err := io.ReadAll(f); err != nil {
		t.Fatalf("max exhausted, read should pass: %v", err)
	}
}

func TestGlobAndAfterOps(t *testing.T) {
	plan, _ := Parse([]byte(`{"torn_writes": [{"rate": 1, "path_glob": "wal.jsonl", "after_ops": 2}]}`))
	c, _ := NewChaos(Disk, 8, plan)
	dir := t.TempDir()

	// Non-matching files are never touched.
	n, werr, got := chaosWrite(t, c, filepath.Join(dir, "other.log"), []byte("aaaa"))
	if werr != nil || n != 4 || string(got) != "aaaa" {
		t.Fatalf("non-matching file perturbed: n=%d err=%v got=%q", n, werr, got)
	}

	f, err := c.Create(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // ops 1..2 are protected by after_ops
		if _, err := f.Write([]byte("line\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Write([]byte("line\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= 15 {
		t.Fatalf("third write should be torn, file has %d bytes", len(data))
	}
	if len(data) < 10 {
		t.Fatalf("first two writes must land intact, file has %d bytes", len(data))
	}
}

// driveOps runs a fixed operation sequence against a chaos FS and
// returns the injection log.
func driveOps(t *testing.T, seed uint64, plan Plan) []Injection {
	t.Helper()
	c, err := NewChaos(Disk, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	f, err := c.Create(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		_, _ = f.Write([]byte("record-payload-bytes\n"))
	}
	_ = f.Sync()
	_ = f.Close()
	for i := 0; i < 10; i++ {
		_ = c.WriteFile(filepath.Join(dir, "checkpoint.json.tmp"), []byte(`{"seq": 1}`), 0o644)
		_ = c.Rename(filepath.Join(dir, "checkpoint.json.tmp"), filepath.Join(dir, "checkpoint.json"))
	}
	_, _ = c.ReadFile(filepath.Join(dir, "wal.jsonl"))
	return c.Injections()
}

func TestSameSeedReplaysInjectionForInjection(t *testing.T) {
	plan, err := Parse([]byte(`{
		"torn_writes":  [{"rate": 0.2, "path_glob": "wal.jsonl"}],
		"bit_flips":    [{"rate": 0.1}],
		"enospc":       [{"rate": 0.05}],
		"fsync_faults": [{"rate": 0.5}],
		"rename_faults":[{"rate": 0.3, "path_glob": "checkpoint.json"}],
		"read_errors":  [{"rate": 1, "max": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	a := driveOps(t, 42, plan)
	b := driveOps(t, 42, plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("hostile plan injected nothing; test is vacuous")
	}
	other := driveOps(t, 43, plan)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical injection logs")
	}
}

func TestNotifyAndLogJSONL(t *testing.T) {
	plan, _ := Parse([]byte(`{"enospc": [{"rate": 1, "max": 3}]}`))
	c, _ := NewChaos(Disk, 9, plan)
	var kinds []string
	c.SetNotify(func(kind, path string) { kinds = append(kinds, kind) })
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		_ = c.WriteFile(filepath.Join(dir, "f"), []byte("x"), 0o644)
	}
	if len(kinds) != 3 {
		t.Fatalf("notify fired %d times, want 3", len(kinds))
	}
	if c.InjectedTotal() != 3 {
		t.Fatalf("InjectedTotal = %d", c.InjectedTotal())
	}
	var buf bytes.Buffer
	if err := c.WriteLogJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 3 {
		t.Fatalf("log has %d lines, want 3: %q", lines, buf.String())
	}
	if c.Summary() != "enospc=3" {
		t.Fatalf("summary %q", c.Summary())
	}
}
