package remedy

import "testing"

// FuzzParsePolicy hammers the remediation-policy parser: whatever the
// input, it must never panic, and any policy it accepts must be
// internally consistent (validated actions, no duplicate rule names,
// sane rate/budget numbers) and must re-validate after a round trip.
func FuzzParsePolicy(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"rules":[]}`))
	f.Add(defaultPolicyJSON)
	f.Add([]byte(`{"name":"x","rate":{"actions_per_sec":2,"burst":4},"quarantine_after":2,` +
		`"rules":[{"name":"a","on_rule":"r","action":"rotate-storage","cooldown_sec":1.5}]}`))
	f.Add([]byte(`{"rules":[{"name":"a","on_rule":"r","action":"reallocate","max_attempts":3,"max_elapsed_sec":60}]}`))
	f.Add([]byte(`{"rules":[{"name":"a","on_rule":"r","action":"rearm-mirror"`)) // truncated
	f.Add([]byte(`{"rate":{"actions_per_sec":-1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePolicy(data)
		if err != nil {
			return
		}
		if len(p.Rules) == 0 {
			t.Fatal("accepted a policy with no rules")
		}
		seen := make(map[string]bool)
		for _, r := range p.Rules {
			if !knownActions[r.Action] {
				t.Fatalf("accepted unknown action %q", r.Action)
			}
			if r.Name == "" || r.OnRule == "" {
				t.Fatalf("accepted unnamed binding %+v", r)
			}
			if seen[r.Name] {
				t.Fatalf("accepted duplicate rule %q", r.Name)
			}
			seen[r.Name] = true
			if r.CooldownSec < 0 || r.MaxAttempts < 0 || r.MaxElapsedSec < 0 {
				t.Fatalf("accepted negative budget %+v", r)
			}
		}
		if p.Rate != nil && (p.Rate.ActionsPerSec <= 0 || p.Rate.Burst < 1) {
			t.Fatalf("accepted bad rate %+v", p.Rate)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted policy fails re-validation: %v", err)
		}
	})
}
