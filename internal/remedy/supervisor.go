package remedy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Target executes remediation actions. The core coordinator implements
// it; the string-only signature keeps remedy and core decoupled (the
// campaign layer wires them together). The returned note describes what
// changed ("sliver 2 -> 3, avoiding NICs [0]") and lands in the action
// log and journal.
type Target interface {
	RemediateSite(action, site string) (note string, err error)
}

// Config assembles a Supervisor.
type Config struct {
	// Policy is the validated remediation policy.
	Policy Policy
	// Target executes actions; required.
	Target Target
	// Retry shapes per-action retry schedules; zero fields default via
	// retry.DefaultPolicy, then per-rule MaxAttempts/MaxElapsedSec
	// override.
	Retry retry.Policy
	// Seed feeds the supervisor's jitter rng (independent stream).
	Seed uint64
	// Obs, when set, counts actions under remedy_actions_total.
	Obs *obs.Registry
	// Logf, when set, receives narrative log lines (core.LogSink
	// compatible signature).
	Logf func(source, level, format string, args ...any)
	// Journal, when set, receives one record per effectful outcome
	// (ok, failed, quarantine) for the campaign WAL.
	Journal func(now sim.Time, site, note string) error
}

// ActionRecord is one supervisor decision, in decision order — the
// remediation log the determinism contract is checked on.
type ActionRecord struct {
	At       sim.Time
	Rule     string // policy rule (binding) name
	Action   string
	Site     string
	Instance string
	Attempt  int
	// Outcome: "ok", "retry", "failed", "quarantine", or one of the
	// suppressions "skip-quarantined", "skip-cooldown",
	// "skip-rate-limited", "skip-no-site".
	Outcome string
	Note    string
}

// bucket is a deterministic sim-time token bucket (lazy refill).
type bucket struct {
	rate   float64 // tokens per sim-second
	burst  float64
	tokens float64
	last   sim.Time
}

func (b *bucket) take(now sim.Time) bool {
	if b == nil {
		return true
	}
	b.tokens += float64(now-b.last) / float64(sim.Second) * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// task is one triggered action working through its retry budget.
type task struct {
	rule     ActionRule
	site     string
	instance string
	attempt  int
	started  sim.Time
	pol      retry.Policy
}

// Supervisor drives remediation. Create with NewSupervisor, wire to a
// monitor with Attach (or call OnAlert directly), and read the action
// log when the run ends. All scheduling happens on the kernel, so the
// log is byte-identical across same-seed runs.
type Supervisor struct {
	k   *sim.Kernel
	cfg Config
	r   *rng.Source

	rl       *bucket
	cooldown map[string]sim.Time // rule \x00 instance -> last accepted
	failures map[string]int      // site -> consecutive failed recoveries
	quar     map[string]bool     // site -> quarantined

	records []ActionRecord
}

// NewSupervisor validates the policy and binds a supervisor to the
// kernel.
func NewSupervisor(k *sim.Kernel, cfg Config) (*Supervisor, error) {
	if k == nil {
		return nil, fmt.Errorf("remedy: supervisor needs a kernel")
	}
	if cfg.Target == nil {
		return nil, fmt.Errorf("remedy: supervisor needs a target")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	cfg.Retry = cfg.Retry.WithDefaults()
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	s := &Supervisor{
		k: k, cfg: cfg,
		r:        rng.New(cfg.Seed ^ 0x72656d656479), // "remedy"
		cooldown: make(map[string]sim.Time),
		failures: make(map[string]int),
		quar:     make(map[string]bool),
	}
	if rate := cfg.Policy.Rate; rate != nil {
		s.rl = &bucket{rate: rate.ActionsPerSec, burst: float64(rate.Burst), tokens: float64(rate.Burst)}
	}
	if cfg.Obs != nil {
		cfg.Obs.Help("remedy_actions_total", "remediation supervisor decisions by action and outcome")
	}
	return s, nil
}

// Attach subscribes the supervisor to a monitor's alert transitions.
func (s *Supervisor) Attach(m *health.Monitor) { m.Subscribe(s.OnAlert) }

// OnAlert is the subscription entry point. Only firing transitions
// trigger actions; because the monitor holds alerts through their
// for_sec window before firing, this is the policy's hysteresis — no
// action runs while a rule is still pending. Actions are scheduled as
// fresh kernel events, never executed reentrantly inside the monitor
// tick.
func (s *Supervisor) OnAlert(ev health.AlertEvent) {
	if ev.State != "firing" {
		return
	}
	now := s.k.Now()
	for i := range s.cfg.Policy.Rules {
		rule := s.cfg.Policy.Rules[i]
		if rule.OnRule != ev.Rule {
			continue
		}
		site := siteOf(ev.Instance)
		if site == "" && rule.Action == ActionFreeSpace {
			// Storage errors are campaign-scoped: the artifact volume is
			// shared, so the metric carries no site label. Route the
			// action with the wildcard and let the target fan it out.
			site = "*"
		}
		if site == "" {
			s.record(ActionRecord{At: now, Rule: rule.Name, Action: rule.Action,
				Instance: ev.Instance, Outcome: "skip-no-site",
				Note: "instance carries no site/switch label"})
			continue
		}
		if s.quar[site] {
			s.record(ActionRecord{At: now, Rule: rule.Name, Action: rule.Action,
				Site: site, Instance: ev.Instance, Outcome: "skip-quarantined"})
			continue
		}
		key := rule.Name + "\x00" + ev.Instance
		if last, seen := s.cooldown[key]; seen && now-last < cooldownFor(rule) {
			s.record(ActionRecord{At: now, Rule: rule.Name, Action: rule.Action,
				Site: site, Instance: ev.Instance, Outcome: "skip-cooldown",
				Note: fmt.Sprintf("last accepted %gs ago", float64(now-last)/float64(sim.Second))})
			continue
		}
		if !s.rl.take(now) {
			s.record(ActionRecord{At: now, Rule: rule.Name, Action: rule.Action,
				Site: site, Instance: ev.Instance, Outcome: "skip-rate-limited"})
			continue
		}
		s.cooldown[key] = now
		t := &task{rule: rule, site: site, instance: ev.Instance, started: now, pol: s.policyFor(rule)}
		s.k.After(0, func() { s.attempt(t) })
	}
}

// policyFor applies a rule's per-action overrides to the base retry
// policy.
func (s *Supervisor) policyFor(rule ActionRule) retry.Policy {
	pol := s.cfg.Retry
	if rule.MaxAttempts > 0 {
		pol.MaxAttempts = rule.MaxAttempts
	}
	if rule.MaxElapsedSec > 0 {
		pol.MaxElapsed = sim.Duration(rule.MaxElapsedSec * float64(sim.Second))
	}
	return pol
}

// cooldownFor defaults an unset cooldown to 30 sim-seconds.
func cooldownFor(rule ActionRule) sim.Duration {
	if rule.CooldownSec > 0 {
		return sim.Duration(rule.CooldownSec * float64(sim.Second))
	}
	return 30 * sim.Second
}

// attempt executes one try of a task and either records success,
// schedules a back-off retry, or declares the recovery failed (and
// possibly quarantines the site).
func (s *Supervisor) attempt(t *task) {
	now := s.k.Now()
	if s.quar[t.site] {
		s.record(ActionRecord{At: now, Rule: t.rule.Name, Action: t.rule.Action,
			Site: t.site, Instance: t.instance, Attempt: t.attempt, Outcome: "skip-quarantined"})
		return
	}
	note, err := s.cfg.Target.RemediateSite(t.rule.Action, t.site)
	if err == nil {
		s.failures[t.site] = 0
		s.record(ActionRecord{At: now, Rule: t.rule.Name, Action: t.rule.Action,
			Site: t.site, Instance: t.instance, Attempt: t.attempt, Outcome: "ok", Note: note})
		s.logf("info", "%s at %s recovered (attempt %d): %s", t.rule.Action, t.site, t.attempt+1, note)
		s.journal(now, t.site, fmt.Sprintf("%s ok attempt=%d %s", t.rule.Action, t.attempt, note))
		return
	}
	next := t.attempt + 1
	delay := t.pol.Delay(t.attempt, s.r)
	if t.pol.Exhausted(next) || t.pol.Expired(t.started, now+sim.Time(delay)) {
		s.fail(t, now, err)
		return
	}
	s.record(ActionRecord{At: now, Rule: t.rule.Name, Action: t.rule.Action,
		Site: t.site, Instance: t.instance, Attempt: t.attempt, Outcome: "retry",
		Note: fmt.Sprintf("%v; next try in %gs", err, float64(delay)/float64(sim.Second))})
	t.attempt = next
	s.k.After(delay, func() { s.attempt(t) })
}

// fail records a spent recovery and escalates to quarantine when the
// site has burned through its consecutive-failure budget.
func (s *Supervisor) fail(t *task, now sim.Time, err error) {
	s.record(ActionRecord{At: now, Rule: t.rule.Name, Action: t.rule.Action,
		Site: t.site, Instance: t.instance, Attempt: t.attempt, Outcome: "failed",
		Note: err.Error()})
	s.logf("error", "%s at %s failed after %d attempts: %v", t.rule.Action, t.site, t.attempt+1, err)
	s.journal(now, t.site, fmt.Sprintf("%s failed attempt=%d %v", t.rule.Action, t.attempt, err))
	s.failures[t.site]++
	q := s.cfg.Policy.QuarantineAfter
	if q > 0 && s.failures[t.site] >= q && !s.quar[t.site] {
		s.quar[t.site] = true
		s.record(ActionRecord{At: now, Rule: t.rule.Name, Action: t.rule.Action,
			Site: t.site, Instance: t.instance, Outcome: "quarantine",
			Note: fmt.Sprintf("%d consecutive failed recoveries", s.failures[t.site])})
		s.logf("error", "ESCALATION: site %s quarantined after %d failed recoveries — operator attention required",
			t.site, s.failures[t.site])
		s.journal(now, t.site, fmt.Sprintf("quarantine after=%d", s.failures[t.site]))
	}
}

// record appends to the action log and counts the decision.
func (s *Supervisor) record(rec ActionRecord) {
	s.records = append(s.records, rec)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter("remedy_actions_total",
			obs.L("action", rec.Action), obs.L("outcome", rec.Outcome)).Inc()
	}
}

func (s *Supervisor) logf(level, format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf("remedy", level, format, args...)
	}
}

func (s *Supervisor) journal(now sim.Time, site, note string) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal(now, site, note); err != nil {
		s.logf("error", "journal: %v", err)
	}
}

// Actions returns every decision so far, in decision order.
func (s *Supervisor) Actions() []ActionRecord {
	return append([]ActionRecord(nil), s.records...)
}

// Outcomes counts decisions per (action, outcome) — convenient for
// test assertions and CLI summaries.
func (s *Supervisor) Outcomes() map[string]int {
	out := make(map[string]int)
	for _, r := range s.records {
		out[r.Action+"/"+r.Outcome]++
	}
	return out
}

// Quarantined lists quarantined sites, sorted.
func (s *Supervisor) Quarantined() []string {
	var out []string
	for site := range s.quar {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// WriteActionLog emits the remediation log as one JSON object per
// line, in decision order — the artifact the determinism contract is
// checked on.
func (s *Supervisor) WriteActionLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range s.records {
		if _, err := fmt.Fprintf(bw,
			`{"sim_ns":%d,"rule":%q,"action":%q,"site":%q,"instance":%q,"attempt":%d,"outcome":%q,"note":%q}`+"\n",
			int64(r.At), r.Rule, r.Action, r.Site, r.Instance, r.Attempt, r.Outcome, r.Note); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// siteOf extracts the site a remediation should land on from an alert
// instance's label identity: the "site" label when present, else the
// "switch" label (mirror alerts are labeled by switch, and switches are
// named after their site).
func siteOf(instance string) string {
	var bySwitch string
	for _, kv := range strings.Split(instance, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "site":
			return v
		case "switch":
			bySwitch = v
		}
	}
	return bySwitch
}
