// Package remedy closes Patchwork's control loop: a supervisor
// subscribes to health alert transitions and executes declarative JSON
// remediation policies — restart a stalled listener, re-allocate a
// slice away from failed hardware, re-arm a corrupted mirror session,
// rotate storage under pressure — and quarantines a site after
// repeated failed recoveries. Every action is scheduled on the sim
// kernel and retried through internal/retry with per-action budgets, a
// token-bucket rate limit against remediation storms, and hysteresis
// (alerts only fire after their for_sec hold, and each (rule,
// instance) pair is cooled down between actions), so same-seed runs
// produce byte-identical remediation logs.
package remedy

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
)

// Actions in the remediation catalog. Each maps to a re-setup path the
// core coordinator exposes (see Target).
const (
	// ActionRestartListener tears down and rebuilds a site's capture
	// engines in place — the fix for a stalled or wedged listener.
	ActionRestartListener = "restart-listener"
	// ActionReallocate releases the site's newest sliver and allocates
	// a replacement excluding the NICs the failed sliver held.
	ActionReallocate = "reallocate"
	// ActionRearmMirror stops and restarts every mirror session feeding
	// the site's listeners, clearing corrupted mirror-table entries.
	ActionRearmMirror = "rearm-mirror"
	// ActionRotateStorage evicts the oldest captured bytes on the
	// site's store, freeing space before the watchdog kills the run.
	ActionRotateStorage = "rotate-storage"
	// ActionFreeSpace is the campaign-scoped ENOSPC recovery: evict
	// harvested bytes and resume paused capture across every site. Its
	// triggering metric (patchwork_storage_errors_total) carries no site
	// label, so the supervisor routes it with the wildcard site "*".
	ActionFreeSpace = "free-space"
)

// knownActions gates policy validation.
var knownActions = map[string]bool{
	ActionRestartListener: true,
	ActionReallocate:      true,
	ActionRearmMirror:     true,
	ActionRotateStorage:   true,
	ActionFreeSpace:       true,
}

// RateSpec is the supervisor-wide token bucket: at most Burst actions
// back to back, refilling at ActionsPerSec (sim time).
type RateSpec struct {
	ActionsPerSec float64 `json:"actions_per_sec"`
	Burst         int     `json:"burst"`
}

// ActionRule binds one alert rule to one remediation action.
type ActionRule struct {
	// Name labels the binding in logs.
	Name string `json:"name"`
	// OnRule is the health rule whose firing transitions trigger this
	// action (resolved transitions never trigger anything).
	OnRule string `json:"on_rule"`
	// Action is one of the catalog actions above.
	Action string `json:"action"`
	// CooldownSec suppresses re-triggering for the same (rule,
	// instance) pair for this many sim-seconds after an action is
	// accepted (default 30).
	CooldownSec float64 `json:"cooldown_sec,omitempty"`
	// MaxAttempts bounds tries per triggered action, including the
	// first (default: the retry policy's).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// MaxElapsedSec bounds the total sim time spent retrying one
	// triggered action (default: the retry policy's MaxElapsed).
	MaxElapsedSec float64 `json:"max_elapsed_sec,omitempty"`
}

// Policy is a complete remediation policy document.
type Policy struct {
	// Name labels the policy in logs and artifacts.
	Name string `json:"name,omitempty"`
	// Rate is the supervisor-wide action rate limit; nil disables
	// rate limiting.
	Rate *RateSpec `json:"rate,omitempty"`
	// QuarantineAfter quarantines a site after this many consecutive
	// failed recoveries there (0 disables quarantine). A quarantined
	// site gets no further remediation; the supervisor escalates to the
	// log and journal instead.
	QuarantineAfter int `json:"quarantine_after,omitempty"`
	// Rules bind alert rules to actions, evaluated in declaration
	// order; every matching rule triggers.
	Rules []ActionRule `json:"rules"`
}

// Validate rejects malformed policies with an error naming the bad
// entry.
func (p Policy) Validate() error {
	if p.Rate != nil {
		if p.Rate.ActionsPerSec <= 0 {
			return fmt.Errorf("remedy: rate: actions_per_sec %g must be > 0", p.Rate.ActionsPerSec)
		}
		if p.Rate.Burst < 1 {
			return fmt.Errorf("remedy: rate: burst %d must be >= 1", p.Rate.Burst)
		}
	}
	if p.QuarantineAfter < 0 {
		return fmt.Errorf("remedy: quarantine_after %d must not be negative", p.QuarantineAfter)
	}
	if len(p.Rules) == 0 {
		return fmt.Errorf("remedy: policy has no rules")
	}
	names := make(map[string]bool)
	for i, r := range p.Rules {
		what := fmt.Sprintf("rules[%d]", i)
		if r.Name == "" {
			return fmt.Errorf("remedy: %s: name required", what)
		}
		if names[r.Name] {
			return fmt.Errorf("remedy: duplicate rule %q", r.Name)
		}
		names[r.Name] = true
		if r.OnRule == "" {
			return fmt.Errorf("remedy: %s (%s): on_rule required", what, r.Name)
		}
		if !knownActions[r.Action] {
			return fmt.Errorf("remedy: %s (%s): unknown action %q", what, r.Name, r.Action)
		}
		if r.CooldownSec < 0 {
			return fmt.Errorf("remedy: %s (%s): negative cooldown_sec", what, r.Name)
		}
		if r.MaxAttempts < 0 {
			return fmt.Errorf("remedy: %s (%s): negative max_attempts", what, r.Name)
		}
		if r.MaxElapsedSec < 0 {
			return fmt.Errorf("remedy: %s (%s): negative max_elapsed_sec", what, r.Name)
		}
	}
	return nil
}

// ParsePolicy decodes and validates a JSON policy. Unknown fields are
// errors so a typo in a policy file fails loudly instead of silently
// never remediating.
func ParsePolicy(data []byte) (Policy, error) {
	var p Policy
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Policy{}, fmt.Errorf("remedy: parsing policy: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// LoadPolicy reads and parses a policy file.
func LoadPolicy(path string) (Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Policy{}, fmt.Errorf("remedy: %w", err)
	}
	p, err := ParsePolicy(data)
	if err != nil {
		return Policy{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

//go:embed policy_default.json
var defaultPolicyJSON []byte

// DefaultPolicy returns the bundled policy wiring the bundled health
// rules to the full action catalog.
func DefaultPolicy() Policy {
	p, err := ParsePolicy(defaultPolicyJSON)
	if err != nil {
		panic("remedy: embedded default policy is invalid: " + err.Error())
	}
	return p
}
