package remedy

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/health"
	"repro/internal/retry"
	"repro/internal/sim"
)

func TestDefaultPolicyParses(t *testing.T) {
	p := DefaultPolicy()
	if len(p.Rules) < 4 {
		t.Fatalf("default policy has %d rules, want >= 4", len(p.Rules))
	}
	covered := make(map[string]bool)
	for _, r := range p.Rules {
		covered[r.Action] = true
	}
	for _, a := range []string{ActionRestartListener, ActionReallocate, ActionRearmMirror, ActionRotateStorage} {
		if !covered[a] {
			t.Errorf("default policy does not exercise %s", a)
		}
	}
	if p.Rate == nil || p.QuarantineAfter == 0 {
		t.Error("default policy should rate-limit and quarantine")
	}
}

func TestParsePolicyRejectsBadDocuments(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `{"rules":[{"name":"a","on_rule":"r","action":"reallocate"}],"bogus":1}`},
		{"no rules", `{"name":"x"}`},
		{"unknown action", `{"rules":[{"name":"a","on_rule":"r","action":"reboot-universe"}]}`},
		{"missing on_rule", `{"rules":[{"name":"a","action":"reallocate"}]}`},
		{"duplicate rule", `{"rules":[{"name":"a","on_rule":"r","action":"reallocate"},{"name":"a","on_rule":"r2","action":"reallocate"}]}`},
		{"bad rate", `{"rate":{"actions_per_sec":0,"burst":1},"rules":[{"name":"a","on_rule":"r","action":"reallocate"}]}`},
		{"negative cooldown", `{"rules":[{"name":"a","on_rule":"r","action":"reallocate","cooldown_sec":-1}]}`},
	}
	for _, tc := range cases {
		if _, err := ParsePolicy([]byte(tc.doc)); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
}

// fakeTarget scripts per-site outcomes: failUntil[site] attempts fail
// before one succeeds; failAlways[site] never succeeds.
type fakeTarget struct {
	calls      []string
	failN      map[string]int
	failAlways map[string]bool
}

func (ft *fakeTarget) RemediateSite(action, site string) (string, error) {
	ft.calls = append(ft.calls, action+"@"+site)
	if ft.failAlways[site] {
		return "", errors.New("still down")
	}
	if ft.failN[site] > 0 {
		ft.failN[site]--
		return "", errors.New("transient")
	}
	return "done", nil
}

func testPolicy(quarAfter int) Policy {
	return Policy{
		Name:            "test",
		QuarantineAfter: quarAfter,
		Rules: []ActionRule{
			{Name: "restart", OnRule: "listener-stale", Action: ActionRestartListener,
				CooldownSec: 10, MaxAttempts: 2, MaxElapsedSec: 300},
		},
	}
}

func fixture(t *testing.T, pol Policy, ft *fakeTarget) (*sim.Kernel, *Supervisor) {
	t.Helper()
	k := sim.NewKernel()
	s, err := NewSupervisor(k, Config{Policy: pol, Target: ft, Seed: 7,
		Retry: retry.Policy{Base: sim.Second, Cap: sim.Second, Multiplier: 1, Jitter: 0, MaxAttempts: 5}})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	return k, s
}

func firing(rule, instance string) health.AlertEvent {
	return health.AlertEvent{Rule: rule, Instance: instance, State: "firing"}
}

func TestSupervisorRunsActionOnFiring(t *testing.T) {
	ft := &fakeTarget{}
	k, s := fixture(t, testPolicy(0), ft)
	s.OnAlert(firing("listener-stale", "core=0,site=STAR"))
	s.OnAlert(health.AlertEvent{Rule: "listener-stale", Instance: "core=0,site=STAR", State: "resolved"})
	k.Run()
	if len(ft.calls) != 1 || ft.calls[0] != ActionRestartListener+"@STAR" {
		t.Fatalf("calls = %v", ft.calls)
	}
	recs := s.Actions()
	if len(recs) != 1 || recs[0].Outcome != "ok" || recs[0].Site != "STAR" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSupervisorRetriesThenSucceeds(t *testing.T) {
	ft := &fakeTarget{failN: map[string]int{"STAR": 1}}
	k, s := fixture(t, testPolicy(0), ft)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	if len(ft.calls) != 2 {
		t.Fatalf("want 2 attempts, got %v", ft.calls)
	}
	recs := s.Actions()
	if len(recs) != 2 || recs[0].Outcome != "retry" || recs[1].Outcome != "ok" || recs[1].Attempt != 1 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSupervisorFailsAndQuarantines(t *testing.T) {
	ft := &fakeTarget{failAlways: map[string]bool{"STAR": true}}
	k, s := fixture(t, testPolicy(1), ft)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	recs := s.Actions()
	// attempt 0 -> retry, attempt 1 -> failed (MaxAttempts 2), quarantine.
	if len(recs) != 3 || recs[1].Outcome != "failed" || recs[2].Outcome != "quarantine" {
		t.Fatalf("records = %+v", recs)
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != "STAR" {
		t.Fatalf("quarantined = %v", q)
	}
	// Further firings are suppressed without touching the target.
	n := len(ft.calls)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	if len(ft.calls) != n {
		t.Fatal("quarantined site was remediated")
	}
	last := s.Actions()[len(s.Actions())-1]
	if last.Outcome != "skip-quarantined" {
		t.Fatalf("last record = %+v", last)
	}
}

func TestSupervisorCooldownSuppressesRefire(t *testing.T) {
	ft := &fakeTarget{}
	k, s := fixture(t, testPolicy(0), ft)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	s.OnAlert(firing("listener-stale", "site=STAR")) // now still 0 < cooldown 10s
	k.Run()
	if len(ft.calls) != 1 {
		t.Fatalf("cooldown ignored: %v", ft.calls)
	}
	k.RunUntil(20 * sim.Second)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	if len(ft.calls) != 2 {
		t.Fatalf("cooldown never expires: %v", ft.calls)
	}
}

func TestSupervisorRateLimit(t *testing.T) {
	ft := &fakeTarget{}
	pol := testPolicy(0)
	pol.Rate = &RateSpec{ActionsPerSec: 0.1, Burst: 1}
	k, s := fixture(t, pol, ft)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	s.OnAlert(firing("listener-stale", "site=NCSA"))
	k.Run()
	if len(ft.calls) != 1 {
		t.Fatalf("rate limit ignored: %v", ft.calls)
	}
	var limited int
	for _, r := range s.Actions() {
		if r.Outcome == "skip-rate-limited" {
			limited++
		}
	}
	if limited != 1 {
		t.Fatalf("want 1 skip-rate-limited, records = %+v", s.Actions())
	}
}

func TestSiteOfPrefersSiteThenSwitch(t *testing.T) {
	cases := []struct{ in, want string }{
		{"core=0,host=listener,site=STAR", "STAR"},
		{"egress=P9,mirrored=P1,switch=SITEA", "SITEA"},
		{"switch=SITEA,site=STAR", "STAR"},
		{"", ""},
		{"metric", ""},
	}
	for _, tc := range cases {
		if got := siteOf(tc.in); got != tc.want {
			t.Errorf("siteOf(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWriteActionLogDeterministic(t *testing.T) {
	run := func() string {
		ft := &fakeTarget{failN: map[string]int{"STAR": 1}}
		k, s := fixture(t, testPolicy(0), ft)
		s.OnAlert(firing("listener-stale", "site=STAR"))
		k.Run()
		var buf bytes.Buffer
		if err := s.WriteActionLog(&buf); err != nil {
			t.Fatalf("WriteActionLog: %v", err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed action logs differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"outcome":"ok"`) || !strings.Contains(a, `"outcome":"retry"`) {
		t.Fatalf("log content: %s", a)
	}
	if lines := strings.Count(a, "\n"); lines != 2 {
		t.Fatalf("want 2 log lines, got %d", lines)
	}
}

func TestMaxElapsedBoundsRetries(t *testing.T) {
	ft := &fakeTarget{failAlways: map[string]bool{"STAR": true}}
	pol := testPolicy(0)
	pol.Rules[0].MaxAttempts = 0   // inherit base (5)
	pol.Rules[0].MaxElapsedSec = 2 // but only 2s of budget at 1s per retry
	k, s := fixture(t, pol, ft)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	if len(ft.calls) >= 5 {
		t.Fatalf("MaxElapsed ignored: %d attempts", len(ft.calls))
	}
	last := s.Actions()[len(s.Actions())-1]
	if last.Outcome != "failed" {
		t.Fatalf("last = %+v", last)
	}
}

func TestOutcomesSummary(t *testing.T) {
	ft := &fakeTarget{}
	k, s := fixture(t, testPolicy(0), ft)
	s.OnAlert(firing("listener-stale", "site=STAR"))
	k.Run()
	if got := s.Outcomes()[ActionRestartListener+"/ok"]; got != 1 {
		t.Fatalf("Outcomes = %v", s.Outcomes())
	}
	_ = fmt.Sprintf("%v", s.Outcomes())
}
