package analysis

import (
	"fmt"
	"sort"

	"repro/internal/flowstore"
	"repro/internal/pcap"
	"repro/internal/sketch"
	"repro/internal/wire"
)

// This file is the streaming Analyze step: a single-pass, bounded-memory
// digest pipeline. Where the in-memory functions (FrameSizeHistogram,
// HeaderOccurrence, FlowsInSample, AggregateFlows, ...) each walk a
// materialized []Record or []*Acap, the Digester folds every statistic
// in one pass over frames delivered through a reusable buffer, decoding
// each frame once with a pooled wire.Packet. Results are defined to be
// identical — bit-for-bit, including orderings — to the in-memory
// functions applied to the same frames; the equivalence tests pin that.
//
// Memory is bounded three ways: the packet/stack/pattern scratch is
// reused per frame, the flow table spills its coldest entries to a
// columnar on-disk flow store when it exceeds the hot budget, and flow
// cardinality plus heavy hitters are additionally tracked in O(1)
// sketches (HyperLogLog, space-saving).

// DigestOptions configure a Digester.
type DigestOptions struct {
	// MaxHotFlows bounds the in-memory flow table; when exceeded, the
	// coldest half (least-recently-seen) is spilled to Spill. Zero means
	// unbounded (nothing spills).
	MaxHotFlows int
	// Spill receives spilled flow rows. With MaxHotFlows > 0 and no
	// writer, spilled rows are dropped: memory stays bounded and the
	// sketches keep approximate totals, but Aggregates loses the exact
	// counts for spilled flows.
	Spill *flowstore.Writer
	// HLLPrecision sets the cardinality sketch's register exponent
	// (default 14 ≈ 0.8% error in 16 KiB).
	HLLPrecision uint8
	// HeavyK sets the heavy-hitter summary capacity (default 64).
	HeavyK int
}

// Digester folds analysis statistics over a stream of frames grouped
// into site samples. Not safe for concurrent use.
type Digester struct {
	opt DigestOptions

	pkt      wire.Packet
	stackBuf []wire.LayerType
	patBuf   []byte

	frames    int
	truncated int
	sizeHist  []int
	jumbo     int

	headerCounts map[wire.LayerType]int

	sites     map[string]*siteAcc
	siteOrder []string
	curSite   *siteAcc

	encap      map[string]*int
	encapOrder []string

	flags TCPFlagCounts

	flows *FlowTable

	sampleSeen   map[FlowKey]struct{}
	sampleCounts []int
	inSample     bool
}

// siteAcc accumulates one site's statistics.
type siteAcc struct {
	name             string
	frames           int
	maxDepth         int
	distinct         [wire.LayerTypeCount]bool
	nDistinct        int
	v4, v6, tcp, udp int
	sizeHist         []int
	jumbo            int
}

// NewDigester builds a streaming digester.
func NewDigester(opt DigestOptions) *Digester {
	if opt.HLLPrecision == 0 {
		opt.HLLPrecision = 14
	}
	if opt.HeavyK == 0 {
		opt.HeavyK = 64
	}
	return &Digester{
		opt:          opt,
		sizeHist:     make([]int, len(FrameSizeBuckets)+1),
		headerCounts: make(map[wire.LayerType]int),
		sites:        make(map[string]*siteAcc),
		encap:        make(map[string]*int),
		flows:        NewFlowTable(opt.MaxHotFlows, opt.Spill, opt.HLLPrecision, opt.HeavyK),
		sampleSeen:   make(map[FlowKey]struct{}),
	}
}

// Flows exposes the digester's flow table.
func (d *Digester) Flows() *FlowTable { return d.flows }

// StartSample begins a new capture sample attributed to site.
func (d *Digester) StartSample(site string) {
	if d.inSample {
		d.EndSample()
	}
	sa, ok := d.sites[site]
	if !ok {
		sa = &siteAcc{name: site, sizeHist: make([]int, len(FrameSizeBuckets)+1)}
		d.sites[site] = sa
		d.siteOrder = append(d.siteOrder, site)
	}
	d.curSite = sa
	d.flows.site = site
	clear(d.sampleSeen)
	d.inSample = true
}

// EndSample closes the current sample and returns its distinct-flow
// count (FlowsInSample's quantity).
func (d *Digester) EndSample() int {
	if !d.inSample {
		return 0
	}
	n := len(d.sampleSeen)
	d.sampleCounts = append(d.sampleCounts, n)
	d.inSample = false
	return n
}

// Frame digests one frame: data is the stored (possibly truncated)
// bytes, wireLen the original on-wire length. The data slice is only
// read during the call and may be reused by the caller afterwards.
// StartSample must have been called.
func (d *Digester) Frame(tsNanos int64, data []byte, wireLen int) error {
	if d.curSite == nil {
		return fmt.Errorf("analysis: Frame before StartSample")
	}
	d.frames++
	sa := d.curSite
	sa.frames++

	// Size statistics (by original wire length, as the in-memory pass).
	sb := sizeBucket(wireLen)
	d.sizeHist[sb]++
	sa.sizeHist[sb]++
	if wireLen > JumboThreshold {
		d.jumbo++
		sa.jumbo++
	}

	// One decode per frame through the pooled packet. NoCopy is safe:
	// nothing below retains layer or data references past the call.
	d.pkt.Reset(data, wire.LayerTypeEthernet, wire.NoCopy)
	layers := d.pkt.Layers()
	if fail := d.pkt.ErrorLayer(); fail != nil && wire.IsTruncated(fail.Error()) {
		d.truncated++
	}

	// Header stack statistics + encapsulation census.
	d.stackBuf = d.stackBuf[:0]
	d.patBuf = d.patBuf[:0]
	depth := len(layers)
	if depth > sa.maxDepth {
		sa.maxDepth = depth
	}
	for i, l := range layers {
		t := l.LayerType()
		d.stackBuf = append(d.stackBuf, t)
		d.headerCounts[t]++
		if int(t) < len(sa.distinct) && !sa.distinct[t] {
			sa.distinct[t] = true
			sa.nDistinct++
		}
		switch t {
		case wire.LayerTypeIPv4:
			sa.v4++
		case wire.LayerTypeIPv6:
			sa.v6++
		case wire.LayerTypeTCP:
			sa.tcp++
		case wire.LayerTypeUDP:
			sa.udp++
		}
		if i > 0 {
			d.patBuf = append(d.patBuf, '/')
		}
		d.patBuf = append(d.patBuf, t.String()...)
	}
	// map[string]*int: the read side is allocation-free (string(patBuf)
	// lookups don't materialize the string); only a new pattern interns.
	if c, ok := d.encap[string(d.patBuf)]; ok {
		*c++
	} else {
		p := string(d.patBuf)
		n := 1
		d.encap[p] = &n
		d.encapOrder = append(d.encapOrder, p)
	}

	// TCP control flags (CountTCPFlags semantics, on the same decode).
	for _, l := range layers {
		if tcp, ok := l.(*wire.TCP); ok {
			d.flags.Segments++
			switch {
			case tcp.Flags&wire.TCPRst != 0:
				d.flags.Rst++
			case tcp.Flags&wire.TCPSyn != 0 && tcp.Flags&wire.TCPAck != 0:
				d.flags.SynAck++
			case tcp.Flags&wire.TCPSyn != 0:
				d.flags.Syn++
			}
			if tcp.Flags&wire.TCPFin != 0 {
				d.flags.Fin++
			}
			if tcp.Flags == wire.TCPAck && len(tcp.LayerPayload()) == 0 {
				d.flags.PureAck++
			}
			break
		}
	}

	// Flow accounting on the canonical key.
	key := extractFlowKey(layers).Canonical()
	d.sampleSeen[key] = struct{}{}
	return d.flows.Observe(key, tsNanos, wireLen)
}

// DigestStream runs a pcap.Stream through the digester as one sample.
func (d *Digester) DigestStream(site string, s pcap.Stream) error {
	d.StartSample(site)
	err := pcap.ForEachStream(s, func(rec *pcap.Record) error {
		return d.Frame(rec.TimestampNanos, rec.Data, rec.OriginalLength)
	})
	d.EndSample()
	return err
}

// --- Result views: each reproduces its in-memory counterpart exactly ---

// Frames returns the total frames digested.
func (d *Digester) Frames() int { return d.frames }

// FrameSizeHist returns FrameSizeHistogram over every digested frame.
func (d *Digester) FrameSizeHist() []int {
	return append([]int(nil), d.sizeHist...)
}

// SiteFrameSizeHist returns the per-site histogram and frame count
// (Fig. 15's per-site rows); ok is false for unseen sites.
func (d *Digester) SiteFrameSizeHist(site string) (hist []int, frames, jumbo int, ok bool) {
	sa, found := d.sites[site]
	if !found {
		return nil, 0, 0, false
	}
	return append([]int(nil), sa.sizeHist...), sa.frames, sa.jumbo, true
}

// JumboFrac returns JumboFraction over every digested frame.
func (d *Digester) JumboFrac() float64 {
	if d.frames == 0 {
		return 0
	}
	return float64(d.jumbo) / float64(d.frames)
}

// TruncatedShare returns TruncatedDecodeShare over every digested frame.
func (d *Digester) TruncatedShare() float64 {
	if d.frames == 0 {
		return 0
	}
	return float64(d.truncated) / float64(d.frames)
}

// HeaderOccurrence returns header occurrences per frame as percentages,
// exactly as the in-memory HeaderOccurrence.
func (d *Digester) HeaderOccurrence() map[wire.LayerType]float64 {
	if d.frames == 0 {
		return nil
	}
	out := make(map[wire.LayerType]float64, len(d.headerCounts))
	for t, c := range d.headerCounts {
		out[t] = float64(c) / float64(d.frames) * 100
	}
	return out
}

// SiteOrder returns sites in first-seen order.
func (d *Digester) SiteOrder() []string {
	return append([]string(nil), d.siteOrder...)
}

// SiteHeaderStats returns HeaderStatsBySite's rows: first-seen site
// order, stably sorted by distinct-header count descending.
func (d *Digester) SiteHeaderStats() []SiteHeaderStats {
	out := make([]SiteHeaderStats, 0, len(d.siteOrder))
	for _, site := range d.siteOrder {
		sa := d.sites[site]
		out = append(out, SiteHeaderStats{
			Site:            sa.name,
			DistinctHeaders: sa.nDistinct,
			MaxStackDepth:   sa.maxDepth,
			Frames:          sa.frames,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].DistinctHeaders > out[j].DistinctHeaders
	})
	return out
}

// SiteProtocolShares returns ProtocolShareBySite's rows in first-seen
// site order.
func (d *Digester) SiteProtocolShares() []SiteProtocolShare {
	out := make([]SiteProtocolShare, 0, len(d.siteOrder))
	for _, site := range d.siteOrder {
		sa := d.sites[site]
		s := SiteProtocolShare{Site: sa.name, Frames: sa.frames}
		if sa.frames > 0 {
			n := float64(sa.frames)
			s.IPv4Percent = float64(sa.v4) / n * 100
			s.IPv6Percent = float64(sa.v6) / n * 100
			s.TCPPercent = float64(sa.tcp) / n * 100
			s.UDPPercent = float64(sa.udp) / n * 100
		}
		out = append(out, s)
	}
	return out
}

// EncapCensus returns EncapsulationCensus's rows: first-seen pattern
// order, stably sorted by frequency descending then pattern.
func (d *Digester) EncapCensus() []StackPattern {
	out := make([]StackPattern, 0, len(d.encapOrder))
	for _, p := range d.encapOrder {
		out = append(out, StackPattern{Pattern: p, Frames: *d.encap[p]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frames != out[j].Frames {
			return out[i].Frames > out[j].Frames
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// TCPFlags returns CountTCPFlags's tally over every digested frame.
func (d *Digester) TCPFlags() TCPFlagCounts { return d.flags }

// SampleFlowCounts returns FlowsInSample per sample, in sample order
// (Fig. 13's inputs).
func (d *Digester) SampleFlowCounts() []int {
	return append([]int(nil), d.sampleCounts...)
}

// --- Spillable flow table ---

// flowEntry is one hot flow.
type flowEntry struct {
	key      FlowKey
	site     string
	firstNs  int64
	lastNs   int64
	firstSeq uint64
	frames   uint64
	bytes    uint64
}

// FlowTable aggregates per-flow totals with a bounded hot set. Flows
// beyond the hot budget spill — least-recently-seen first — to a
// columnar flowstore, from which Aggregates can merge them back. The
// table also maintains O(1) sketches: a HyperLogLog over distinct keys
// and a space-saving summary of heavy-hitter flows by frame count.
type FlowTable struct {
	hot     map[FlowKey]*flowEntry
	maxHot  int
	spill   *flowstore.Writer
	site    string
	seq     uint64
	spilled int64

	hll    *sketch.HLL
	heavy  *sketch.TopK[FlowKey]
	keyBuf []byte

	scratch []*flowEntry
	recBuf  []flowstore.Rec
}

// flowKeyLess orders FlowKeys deterministically (for eviction and
// heavy-hitter tie-breaks).
func flowKeyLess(a, b FlowKey) bool {
	if a.VLANID != b.VLANID {
		return a.VLANID < b.VLANID
	}
	if a.MPLSTop != b.MPLSTop {
		return a.MPLSTop < b.MPLSTop
	}
	ar, br := a.Src.Raw(), b.Src.Raw()
	for i := 0; i < len(ar) && i < len(br); i++ {
		if ar[i] != br[i] {
			return ar[i] < br[i]
		}
	}
	if len(ar) != len(br) {
		return len(ar) < len(br)
	}
	ar, br = a.Dst.Raw(), b.Dst.Raw()
	for i := 0; i < len(ar) && i < len(br); i++ {
		if ar[i] != br[i] {
			return ar[i] < br[i]
		}
	}
	if len(ar) != len(br) {
		return len(ar) < len(br)
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	return a.DstPort < b.DstPort
}

// NewFlowTable builds a table. maxHot <= 0 disables spilling.
func NewFlowTable(maxHot int, spill *flowstore.Writer, hllPrecision uint8, heavyK int) *FlowTable {
	if hllPrecision == 0 {
		hllPrecision = 14
	}
	if heavyK <= 0 {
		heavyK = 64
	}
	return &FlowTable{
		hot:    make(map[FlowKey]*flowEntry),
		maxHot: maxHot,
		spill:  spill,
		hll:    sketch.NewHLL(hllPrecision),
		heavy:  sketch.NewTopK[FlowKey](heavyK, flowKeyLess),
	}
}

// StoreKey converts an analysis FlowKey to its flowstore form.
func StoreKey(k FlowKey) flowstore.Key {
	return flowstore.Key{
		VLANID: k.VLANID, MPLSTop: k.MPLSTop,
		Src: k.Src, Dst: k.Dst, Proto: k.Proto,
		SrcPort: k.SrcPort, DstPort: k.DstPort,
	}
}

// FromStoreKey converts a flowstore key back to an analysis FlowKey.
func FromStoreKey(k flowstore.Key) FlowKey {
	return FlowKey{
		VLANID: k.VLANID, MPLSTop: k.MPLSTop,
		Src: k.Src, Dst: k.Dst, Proto: k.Proto,
		SrcPort: k.SrcPort, DstPort: k.DstPort,
	}
}

// Observe accounts one frame to key at tsNanos.
func (t *FlowTable) Observe(key FlowKey, tsNanos int64, wireLen int) error {
	t.keyBuf = appendFlowKeyBytes(t.keyBuf[:0], key)
	t.hll.AddHash(sketch.Hash64(t.keyBuf))
	t.heavy.Add(key, 1)
	e, ok := t.hot[key]
	if !ok {
		e = &flowEntry{key: key, site: t.site, firstNs: tsNanos, lastNs: tsNanos, firstSeq: t.seq}
		t.hot[key] = e
	}
	t.seq++
	if tsNanos < e.firstNs {
		e.firstNs = tsNanos
	}
	if tsNanos > e.lastNs {
		e.lastNs = tsNanos
	}
	e.frames++
	e.bytes += uint64(wireLen)
	// Spill after accounting so a just-inserted entry can never be
	// written out before its first frame is recorded.
	if !ok && t.maxHot > 0 && len(t.hot) > t.maxHot {
		return t.spillColdest()
	}
	return nil
}

// appendFlowKeyBytes mirrors the flowstore's canonical key encoding so
// sketch hashes agree between the table and the store.
func appendFlowKeyBytes(dst []byte, k FlowKey) []byte {
	dst = append(dst, byte(k.VLANID>>8), byte(k.VLANID),
		byte(k.MPLSTop>>24), byte(k.MPLSTop>>16), byte(k.MPLSTop>>8), byte(k.MPLSTop),
		byte(k.Proto), byte(k.SrcPort>>8), byte(k.SrcPort), byte(k.DstPort>>8), byte(k.DstPort),
		byte(k.Src.Type()), byte(k.Dst.Type()))
	dst = append(dst, k.Src.Raw()...)
	dst = append(dst, k.Dst.Raw()...)
	return dst
}

// spillColdest moves the least-recently-seen half of the hot set to the
// store. Within the spill batch rows are grouped by origin site (one
// segment per site, sites in name order) and ordered by first-seen
// sequence, so the on-disk layout is a pure function of the stream.
func (t *FlowTable) spillColdest() error {
	n := len(t.hot) / 2
	if n == 0 {
		return nil
	}
	t.scratch = t.scratch[:0]
	for _, e := range t.hot {
		t.scratch = append(t.scratch, e)
	}
	// Coldest first: oldest last-seen, ties on first-seen sequence
	// (unique, so the order is total and map iteration cannot leak in).
	sort.Slice(t.scratch, func(i, j int) bool {
		a, b := t.scratch[i], t.scratch[j]
		if a.lastNs != b.lastNs {
			return a.lastNs < b.lastNs
		}
		return a.firstSeq < b.firstSeq
	})
	return t.spillEntries(t.scratch[:n])
}

// spillEntries writes the given entries out (grouped by origin site,
// one segment per site in name order, rows by first-seen sequence) and
// removes them from the hot set. With no spill writer attached the
// entries are simply dropped — the bounded-memory, no-disk mode.
func (t *FlowTable) spillEntries(victims []*flowEntry) error {
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].site != victims[j].site {
			return victims[i].site < victims[j].site
		}
		return victims[i].firstSeq < victims[j].firstSeq
	})
	for start := 0; t.spill != nil && start < len(victims); {
		end := start
		site := victims[start].site
		for end < len(victims) && victims[end].site == site {
			end++
		}
		t.recBuf = t.recBuf[:0]
		for _, e := range victims[start:end] {
			t.recBuf = append(t.recBuf, flowstore.Rec{
				Key: StoreKey(e.key), Site: e.site,
				FirstNs: e.firstNs, LastNs: e.lastNs,
				FirstSeq: e.firstSeq, Frames: e.frames, Bytes: e.bytes,
			})
		}
		if err := t.spill.Append(site, t.recBuf); err != nil {
			return err
		}
		start = end
	}
	for _, e := range victims {
		delete(t.hot, e.key)
	}
	t.spilled += int64(len(victims))
	return nil
}

// Flush spills every remaining hot flow and clears the hot set, making
// the spill target a complete record of all observed flows (each flow
// appears in the store at least once; Aggregates over the reopened
// store merges multi-spill rows back together). Call after the last
// frame, before closing the spill writer.
func (t *FlowTable) Flush() error {
	if len(t.hot) == 0 {
		return nil
	}
	t.scratch = t.scratch[:0]
	for _, e := range t.hot {
		t.scratch = append(t.scratch, e)
	}
	return t.spillEntries(t.scratch)
}

// HotFlows returns the current in-memory flow count.
func (t *FlowTable) HotFlows() int { return len(t.hot) }

// SpilledFlows returns the number of rows spilled to the store (a flow
// spilled and re-observed counts once per spill).
func (t *FlowTable) SpilledFlows() int64 { return t.spilled }

// CardinalityEstimate returns the HLL's distinct-flow estimate and its
// standard error.
func (t *FlowTable) CardinalityEstimate() (uint64, float64) {
	return t.hll.Count(), t.hll.StdError()
}

// HeavyHitters returns the top-n flows by frame count with
// overestimation bounds.
func (t *FlowTable) HeavyHitters(n int) []sketch.HeavyK[FlowKey] {
	return t.heavy.Top(n)
}

// Aggregates merges hot and spilled rows into AggregateFlows's exact
// output: one row per canonical key, ordered by first observation
// (insertion order), stably re-sorted by Bytes descending. store is the
// reopened spill target; pass nil when nothing spilled.
func (t *FlowTable) Aggregates(store *flowstore.Store) ([]FlowAggregate, error) {
	type agg struct {
		FlowAggregate
		firstSeq uint64
	}
	merged := make(map[FlowKey]*agg, len(t.hot))
	add := func(k FlowKey, firstSeq, frames, bytes uint64) {
		a, ok := merged[k]
		if !ok {
			merged[k] = &agg{FlowAggregate{Key: k, Frames: int(frames), Bytes: int64(bytes)}, firstSeq}
			return
		}
		a.Frames += int(frames)
		a.Bytes += int64(bytes)
		if firstSeq < a.firstSeq {
			a.firstSeq = firstSeq
		}
	}
	if store != nil {
		err := store.ForEach(func(r flowstore.Rec) error {
			add(FromStoreKey(r.Key), r.FirstSeq, r.Frames, r.Bytes)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for _, e := range t.hot {
		add(e.key, e.firstSeq, e.frames, e.bytes)
	}
	out := make([]*agg, 0, len(merged))
	for _, a := range merged {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstSeq < out[j].firstSeq })
	sort.SliceStable(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	res := make([]FlowAggregate, len(out))
	for i, a := range out {
		res[i] = a.FlowAggregate
	}
	return res, nil
}
