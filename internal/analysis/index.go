package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// IndexEntry summarizes one acap so later analyses can locate the samples
// they need without re-reading every digest (the paper's Index step: "a
// single profile often produces dozens of gigabytes").
type IndexEntry struct {
	// Site is the sample's site.
	Site string `json:"site"`
	// Path locates the acap file.
	Path string `json:"path"`
	// StartNanos and EndNanos bound the sample window.
	StartNanos int64 `json:"start"`
	EndNanos   int64 `json:"end"`
	// Frames and Bytes summarize volume.
	Frames int   `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// DistinctFlows is the sample's canonical flow count.
	DistinctFlows int `json:"flows"`
}

// Index is a collection of entries, ordered by (site, start).
type Index struct {
	Entries []IndexEntry `json:"entries"`
}

// Summarize builds the index entry for one acap.
func Summarize(a *Acap, path string) IndexEntry {
	e := IndexEntry{Site: a.Site, Path: path, Frames: len(a.Records)}
	for i, r := range a.Records {
		if i == 0 || r.TimestampNanos < e.StartNanos {
			e.StartNanos = r.TimestampNanos
		}
		if r.TimestampNanos > e.EndNanos {
			e.EndNanos = r.TimestampNanos
		}
		e.Bytes += int64(r.WireLen)
	}
	e.DistinctFlows = FlowsInSample(a)
	return e
}

// Add inserts an entry, keeping the index sorted.
func (ix *Index) Add(e IndexEntry) {
	ix.Entries = append(ix.Entries, e)
	sort.SliceStable(ix.Entries, func(i, j int) bool {
		a, b := ix.Entries[i], ix.Entries[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.StartNanos < b.StartNanos
	})
}

// BySite returns the entries for one site.
func (ix *Index) BySite(site string) []IndexEntry {
	var out []IndexEntry
	for _, e := range ix.Entries {
		if e.Site == site {
			out = append(out, e)
		}
	}
	return out
}

// InWindow returns entries overlapping [from, to).
func (ix *Index) InWindow(from, to int64) []IndexEntry {
	var out []IndexEntry
	for _, e := range ix.Entries {
		if e.StartNanos < to && e.EndNanos >= from {
			out = append(out, e)
		}
	}
	return out
}

// Sites returns the distinct site names in the index, sorted.
func (ix *Index) Sites() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range ix.Entries {
		if !seen[e.Site] {
			seen[e.Site] = true
			out = append(out, e.Site)
		}
	}
	sort.Strings(out)
	return out
}

// Encode serializes the index as JSON.
func (ix *Index) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(ix)
}

// ReadIndex parses an index from JSON.
func ReadIndex(r io.Reader) (*Index, error) {
	var ix Index
	if err := json.NewDecoder(r).Decode(&ix); err != nil {
		return nil, fmt.Errorf("analysis: reading index: %w", err)
	}
	return &ix, nil
}
