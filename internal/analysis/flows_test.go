package analysis

import (
	"testing"

	"repro/internal/trafficgen"
	"repro/internal/wire"
)

func TestCountTCPFlags(t *testing.T) {
	g := trafficgen.NewGenerator(bulkOnlyProfile(), 3)
	fs := g.NewFlow()
	var frames [][]byte
	// Data frames (PSH|ACK) and pure ACKs.
	for i := 0; i < 6; i++ {
		d, err := g.BuildFrame(&fs, trafficgen.DirForward, 1600)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, d)
	}
	for i := 0; i < 3; i++ {
		a, err := g.BuildFrame(&fs, trafficgen.DirReverse, 0)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, a)
	}
	// Hand-build a SYN and an RST.
	frames = append(frames, tcpFlagFrame(t, wire.TCPSyn))
	frames = append(frames, tcpFlagFrame(t, wire.TCPSyn|wire.TCPAck))
	frames = append(frames, tcpFlagFrame(t, wire.TCPRst))
	// Non-TCP frame is ignored.
	frames = append(frames, []byte{0, 1, 2})

	c := CountTCPFlags(frames)
	if c.Segments != 12 {
		t.Errorf("segments = %d, want 12", c.Segments)
	}
	if c.PureAck != 3 {
		t.Errorf("pure ACKs = %d, want 3", c.PureAck)
	}
	if c.Syn != 1 || c.SynAck != 1 || c.Rst != 1 {
		t.Errorf("flags = %+v", c)
	}
}

func tcpFlagFrame(t *testing.T, flags wire.TCPFlags) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer()
	err := wire.SerializeLayers(buf, wire.SerializeOptions{FixLengths: true},
		&wire.Ethernet{EthernetType: wire.EthernetTypeIPv4},
		&wire.IPv4{TTL: 9, Protocol: wire.IPProtocolTCP,
			SrcIP: mustAddr("10.1.1.1"), DstIP: mustAddr("10.1.1.2")},
		&wire.TCP{SrcPort: 1, DstPort: 2, DataOffset: 5, Flags: flags})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	return out
}

func bulkOnlyProfile() trafficgen.Profile {
	p := trafficgen.Profile{
		Site: "T", IPv6Fraction: 0, PWFraction: 1, MPLSDepth2Fraction: 1,
		JumboData: true, FlowsPerSampleLogMean: 4, FlowsPerSampleLogSigma: 1,
	}
	p.KindWeights[trafficgen.KindBulkTCP] = 1
	return p
}

func TestFlowDurations(t *testing.T) {
	a := &Acap{Site: "S"}
	k1 := FlowKey{VLANID: 1, Proto: wire.LayerTypeTCP, SrcPort: 10, DstPort: 20}
	k2 := FlowKey{VLANID: 2, Proto: wire.LayerTypeTCP, SrcPort: 30, DstPort: 40}
	a.Records = []Record{
		{TimestampNanos: 100, Flow: k1},
		{TimestampNanos: 900, Flow: k1},
		{TimestampNanos: 500, Flow: k1},
		{TimestampNanos: 200, Flow: k2},
	}
	ds := FlowDurations([]*Acap{a})
	if len(ds) != 2 {
		t.Fatalf("flows = %d", len(ds))
	}
	if ds[0].DurationNanos() != 800 || ds[0].Frames != 3 {
		t.Errorf("longest = %+v", ds[0])
	}
	if ds[1].DurationNanos() != 0 || ds[1].Frames != 1 {
		t.Errorf("single-frame flow = %+v", ds[1])
	}
}

func TestFlowDurationsMergeDirections(t *testing.T) {
	a := &Acap{Site: "S"}
	fwd := FlowKey{Proto: wire.LayerTypeTCP, SrcPort: 10, DstPort: 20}
	rev := FlowKey{Proto: wire.LayerTypeTCP, SrcPort: 20, DstPort: 10}
	a.Records = []Record{
		{TimestampNanos: 0, Flow: fwd},
		{TimestampNanos: 100, Flow: rev},
	}
	ds := FlowDurations([]*Acap{a})
	if len(ds) != 1 {
		t.Fatalf("directions not merged: %+v", ds)
	}
	if ds[0].Frames != 2 || ds[0].DurationNanos() != 100 {
		t.Errorf("merged = %+v", ds[0])
	}
}

func TestEncapsulationCensus(t *testing.T) {
	recs := []Record{
		{Stack: []wire.LayerType{wire.LayerTypeEthernet, wire.LayerTypeIPv4, wire.LayerTypeTCP}},
		{Stack: []wire.LayerType{wire.LayerTypeEthernet, wire.LayerTypeIPv4, wire.LayerTypeTCP}},
		{Stack: []wire.LayerType{wire.LayerTypeEthernet, wire.LayerTypeARP}},
	}
	ps := EncapsulationCensus(recs)
	if len(ps) != 2 {
		t.Fatalf("patterns = %+v", ps)
	}
	if ps[0].Pattern != "Ethernet/IPv4/TCP" || ps[0].Frames != 2 {
		t.Errorf("top = %+v", ps[0])
	}
	if ps[1].Pattern != "Ethernet/ARP" {
		t.Errorf("second = %+v", ps[1])
	}
}

func TestProtocolShareBySite(t *testing.T) {
	v4 := Record{Stack: []wire.LayerType{wire.LayerTypeEthernet, wire.LayerTypeIPv4, wire.LayerTypeTCP}}
	v6 := Record{Stack: []wire.LayerType{wire.LayerTypeEthernet, wire.LayerTypeIPv6, wire.LayerTypeUDP}}
	a1 := &Acap{Site: "A", Records: []Record{v4, v4, v4, v6}}
	a2 := &Acap{Site: "B", Records: []Record{v6, v6}}
	shares := ProtocolShareBySite([]*Acap{a1, a2})
	if len(shares) != 2 {
		t.Fatalf("shares = %+v", shares)
	}
	sa := shares[0]
	if sa.Site != "A" || sa.IPv4Percent != 75 || sa.IPv6Percent != 25 || sa.TCPPercent != 75 {
		t.Errorf("site A = %+v", sa)
	}
	sb := shares[1]
	if sb.IPv6Percent != 100 || sb.UDPPercent != 100 || sb.IPv4Percent != 0 {
		t.Errorf("site B = %+v", sb)
	}
}

func TestTruncatedDecodeShare(t *testing.T) {
	recs := []Record{{DecodeTruncated: true}, {}, {}, {DecodeTruncated: true}}
	if got := TruncatedDecodeShare(recs); got != 0.5 {
		t.Errorf("share = %v", got)
	}
	if TruncatedDecodeShare(nil) != 0 {
		t.Error("empty should be 0")
	}
}
