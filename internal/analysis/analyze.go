package analysis

import (
	"sort"

	"repro/internal/wire"
)

// FrameSizeBuckets are the bucket upper bounds used in the paper's
// frame-size breakdown. Bucket i covers (lower, FrameSizeBuckets[i]],
// with the first bucket starting at 0.
var FrameSizeBuckets = []int{64, 127, 255, 511, 1023, 1518, 2047, 4095, 9215}

// FrameSizeBucketLabel names bucket i, e.g. "1519-2047".
func FrameSizeBucketLabel(i int) string {
	lo := 1
	if i > 0 {
		lo = FrameSizeBuckets[i-1] + 1
	}
	if i >= len(FrameSizeBuckets) {
		return "9216+"
	}
	return itoa(lo) + "-" + itoa(FrameSizeBuckets[i])
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// JumboThreshold is the wire length above which a frame counts as jumbo.
const JumboThreshold = 1518

// FrameSizeHistogram counts frames per size bucket (by original wire
// length). The final slot counts frames above the last bucket.
func FrameSizeHistogram(recs []Record) []int {
	h := make([]int, len(FrameSizeBuckets)+1)
	for _, r := range recs {
		h[sizeBucket(r.WireLen)]++
	}
	return h
}

func sizeBucket(n int) int {
	for i, ub := range FrameSizeBuckets {
		if n <= ub {
			return i
		}
	}
	return len(FrameSizeBuckets)
}

// JumboFraction is the fraction of frames above JumboThreshold bytes.
func JumboFraction(recs []Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	n := 0
	for _, r := range recs {
		if r.WireLen > JumboThreshold {
			n++
		}
	}
	return float64(n) / float64(len(recs))
}

// HeaderOccurrence reports, for each layer type, occurrences per frame as
// a percentage of frames. Ethernet exceeds 100% when frames carry inner
// Ethernet headers (pseudowires), exactly as in the paper's Fig. 12.
func HeaderOccurrence(recs []Record) map[wire.LayerType]float64 {
	if len(recs) == 0 {
		return nil
	}
	counts := make(map[wire.LayerType]int)
	for _, r := range recs {
		for _, t := range r.Stack {
			counts[t]++
		}
	}
	out := make(map[wire.LayerType]float64, len(counts))
	for t, c := range counts {
		out[t] = float64(c) / float64(len(recs)) * 100
	}
	return out
}

// SiteHeaderStats summarizes Fig. 11 for one site: the number of distinct
// header types observed and the deepest header stack.
type SiteHeaderStats struct {
	Site            string
	DistinctHeaders int
	MaxStackDepth   int
	Frames          int
}

// HeaderStatsBySite computes Fig. 11's two curves from a set of acaps.
func HeaderStatsBySite(acaps []*Acap) []SiteHeaderStats {
	bySite := make(map[string]*SiteHeaderStats)
	order := []string{}
	distinct := make(map[string]map[wire.LayerType]bool)
	for _, a := range acaps {
		st, ok := bySite[a.Site]
		if !ok {
			st = &SiteHeaderStats{Site: a.Site}
			bySite[a.Site] = st
			order = append(order, a.Site)
			distinct[a.Site] = make(map[wire.LayerType]bool)
		}
		for _, r := range a.Records {
			st.Frames++
			if len(r.Stack) > st.MaxStackDepth {
				st.MaxStackDepth = len(r.Stack)
			}
			for _, t := range r.Stack {
				distinct[a.Site][t] = true
			}
		}
	}
	out := make([]SiteHeaderStats, 0, len(order))
	for _, site := range order {
		st := bySite[site]
		st.DistinctHeaders = len(distinct[site])
		out = append(out, *st)
	}
	// Fig. 11 presents sites ordered by distinct-header count.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].DistinctHeaders > out[j].DistinctHeaders
	})
	return out
}

// FlowsInSample counts distinct canonical flow keys in one sample
// (Fig. 13's x-axis quantity).
func FlowsInSample(a *Acap) int {
	seen := make(map[FlowKey]bool)
	for _, r := range a.Records {
		seen[r.Flow.Canonical()] = true
	}
	return len(seen)
}

// FlowCountBuckets are the Fig. 13 histogram boundaries.
var FlowCountBuckets = []int{100, 300, 1000, 3000, 10000, 20000, 50000}

// FlowCountHistogram buckets per-sample flow counts.
func FlowCountHistogram(counts []int) []int {
	h := make([]int, len(FlowCountBuckets)+1)
	for _, c := range counts {
		i := 0
		for i < len(FlowCountBuckets) && c > FlowCountBuckets[i] {
			i++
		}
		h[i]++
	}
	return h
}

// FlowAggregate is one flow's totals pieced together across samples.
type FlowAggregate struct {
	Key    FlowKey
	Frames int
	Bytes  int64
}

// AggregateFlows merges flow snippets across samples, as the paper does
// to estimate flow sizes (most flows short, some ~100 GB).
func AggregateFlows(acaps []*Acap) []FlowAggregate {
	agg := make(map[FlowKey]*FlowAggregate)
	order := []FlowKey{}
	for _, a := range acaps {
		for _, r := range a.Records {
			k := r.Flow.Canonical()
			fa, ok := agg[k]
			if !ok {
				fa = &FlowAggregate{Key: k}
				agg[k] = fa
				order = append(order, k)
			}
			fa.Frames++
			fa.Bytes += int64(r.WireLen)
		}
	}
	out := make([]FlowAggregate, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out
}

// ProtocolShare summarizes the headline Fig. 12 numbers.
type ProtocolShare struct {
	IPv4Percent float64
	IPv6Percent float64
	TCPPercent  float64
	UDPPercent  float64
	VLANPercent float64
	MPLSPercent float64
	EthPercent  float64 // may exceed 100
}

// Shares extracts the headline percentages from a HeaderOccurrence map.
func Shares(occ map[wire.LayerType]float64) ProtocolShare {
	return ProtocolShare{
		IPv4Percent: occ[wire.LayerTypeIPv4],
		IPv6Percent: occ[wire.LayerTypeIPv6],
		TCPPercent:  occ[wire.LayerTypeTCP],
		UDPPercent:  occ[wire.LayerTypeUDP],
		VLANPercent: occ[wire.LayerTypeDot1Q],
		MPLSPercent: occ[wire.LayerTypeMPLS],
		EthPercent:  occ[wire.LayerTypeEthernet],
	}
}
