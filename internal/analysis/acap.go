// Package analysis implements Patchwork's offline analysis phase
// (Section 6.2.4 of the paper): the Digest step turns raw pcap files into
// abstract header stacks ("acaps"), the Index step makes large capture
// corpora addressable, the Analyze step computes the statistics behind
// the paper's Section 8.2 figures, and the Process step emits CSV files.
//
// Flows are classified using the virtualization tags (VLAN and MPLS) in
// addition to network- and transport-layer fields, so two slices reusing
// the same 10/8 addresses are kept distinct.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pcap"
	"repro/internal/wire"
)

// FlowKey identifies a flow. Keys are comparable and usable as map keys.
type FlowKey struct {
	// VLANID and MPLSTop are the virtualization tags (0 when absent).
	VLANID  uint16
	MPLSTop uint32
	// Src and Dst are the first network-layer endpoints.
	Src, Dst wire.Endpoint
	// Proto is the transport layer type (TCP/UDP/ICMPv4/...), or
	// LayerTypeZero when none decoded.
	Proto wire.LayerType
	// SrcPort and DstPort are transport ports (0 when not applicable).
	SrcPort, DstPort uint16
}

// Canonical returns the key with src/dst ordered so both directions of a
// conversation map to the same key.
func (k FlowKey) Canonical() FlowKey {
	if shouldSwap(k) {
		k.Src, k.Dst = k.Dst, k.Src
		k.SrcPort, k.DstPort = k.DstPort, k.SrcPort
	}
	return k
}

func shouldSwap(k FlowKey) bool {
	a, b := k.Src.Raw(), k.Dst.Raw()
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return k.SrcPort > k.DstPort
}

// Record is one digested frame: its abstract header stack plus the
// timing, size, and flow metadata retained from the pcap.
type Record struct {
	// TimestampNanos is the capture timestamp.
	TimestampNanos int64
	// WireLen is the frame's original on-wire length.
	WireLen int
	// StoredLen is the truncated length stored in the capture.
	StoredLen int
	// Stack is the decoded header stack, outermost first.
	Stack []wire.LayerType
	// Flow is the classification key.
	Flow FlowKey
	// DecodeTruncated marks frames whose decode stopped at the snap
	// length (expected for deep payloads under truncation).
	DecodeTruncated bool
}

// Acap is the digest of one capture sample: an abstract capture.
type Acap struct {
	// Site is the (pseudonymized) site the sample came from.
	Site string
	// SampleStartNanos is the beginning of the sample window.
	SampleStartNanos int64
	// Records holds one entry per captured frame.
	Records []Record
}

// Digest runs the protocol dissectors over a pcap stream and produces the
// abstract capture. It is the analysis pipeline's slowest step, as in the
// paper ("most of this time is taken up by protocol dissectors").
func Digest(site string, r *pcap.Reader) (*Acap, error) {
	a := &Acap{Site: site}
	err := r.ForEach(func(rec *pcap.Record) error {
		a.Records = append(a.Records, DigestFrame(rec.TimestampNanos, rec.Data, rec.OriginalLength))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: digesting %s: %w", site, err)
	}
	if len(a.Records) > 0 {
		a.SampleStartNanos = a.Records[0].TimestampNanos
	}
	return a, nil
}

// DigestFrame dissects one frame into a Record.
func DigestFrame(tsNanos int64, data []byte, wireLen int) Record {
	pkt := wire.NewPacket(data, wire.LayerTypeEthernet, wire.Default)
	layers := pkt.Layers()
	rec := Record{
		TimestampNanos: tsNanos,
		WireLen:        wireLen,
		StoredLen:      len(data),
		Stack:          pkt.LayerTypes(),
	}
	if fail := pkt.ErrorLayer(); fail != nil && wire.IsTruncated(fail.Error()) {
		rec.DecodeTruncated = true
	}
	rec.Flow = extractFlowKey(layers)
	return rec
}

// extractFlowKey pulls the virtualization tags and first network and
// transport fields from a decoded layer stack.
func extractFlowKey(layers []wire.Layer) FlowKey {
	var k FlowKey
	for _, l := range layers {
		switch v := l.(type) {
		case *wire.Dot1Q:
			if k.VLANID == 0 {
				k.VLANID = v.VLANID
			}
		case *wire.MPLS:
			if k.MPLSTop == 0 {
				k.MPLSTop = v.Label
			}
		case *wire.IPv4:
			if k.Proto == wire.LayerTypeZero && k.Src == (wire.Endpoint{}) {
				k.Src = wire.NewIPEndpoint(v.SrcIP)
				k.Dst = wire.NewIPEndpoint(v.DstIP)
			}
		case *wire.IPv6:
			if k.Proto == wire.LayerTypeZero && k.Src == (wire.Endpoint{}) {
				k.Src = wire.NewIPEndpoint(v.SrcIP)
				k.Dst = wire.NewIPEndpoint(v.DstIP)
			}
		case *wire.TCP:
			if k.Proto == wire.LayerTypeZero {
				k.Proto = wire.LayerTypeTCP
				k.SrcPort, k.DstPort = v.SrcPort, v.DstPort
			}
		case *wire.UDP:
			if k.Proto == wire.LayerTypeZero {
				k.Proto = wire.LayerTypeUDP
				k.SrcPort, k.DstPort = v.SrcPort, v.DstPort
			}
		case *wire.ICMPv4:
			if k.Proto == wire.LayerTypeZero {
				k.Proto = wire.LayerTypeICMPv4
			}
		case *wire.ICMPv6:
			if k.Proto == wire.LayerTypeZero {
				k.Proto = wire.LayerTypeICMPv6
			}
		case *wire.ARP:
			if k.Proto == wire.LayerTypeZero {
				k.Proto = wire.LayerTypeARP
				k.Src = wire.NewIPEndpoint(v.SenderIP)
				k.Dst = wire.NewIPEndpoint(v.TargetIP)
			}
		}
	}
	return k
}

// acapJSON is the serialized form (stack as ints keeps files compact).
type acapJSON struct {
	Site    string       `json:"site"`
	Start   int64        `json:"start"`
	Records []recordJSON `json:"records"`
}

type recordJSON struct {
	TS        int64  `json:"ts"`
	Wire      int    `json:"wire"`
	Stored    int    `json:"stored"`
	Stack     []int  `json:"stack"`
	VLAN      uint16 `json:"vlan,omitempty"`
	MPLS      uint32 `json:"mpls,omitempty"`
	Src       string `json:"src,omitempty"`
	Dst       string `json:"dst,omitempty"`
	Proto     int    `json:"proto,omitempty"`
	SPort     uint16 `json:"sport,omitempty"`
	DPort     uint16 `json:"dport,omitempty"`
	Truncated bool   `json:"trunc,omitempty"`
}

// Encode serializes the acap as JSON (one object). The format is stable
// across runs for a given input.
func (a *Acap) Encode(w io.Writer) error {
	out := acapJSON{Site: a.Site, Start: a.SampleStartNanos}
	out.Records = make([]recordJSON, len(a.Records))
	for i, r := range a.Records {
		rj := recordJSON{
			TS: r.TimestampNanos, Wire: r.WireLen, Stored: r.StoredLen,
			VLAN: r.Flow.VLANID, MPLS: r.Flow.MPLSTop,
			Src: r.Flow.Src.String(), Dst: r.Flow.Dst.String(),
			Proto: int(r.Flow.Proto), SPort: r.Flow.SrcPort, DPort: r.Flow.DstPort,
			Truncated: r.DecodeTruncated,
		}
		rj.Stack = make([]int, len(r.Stack))
		for j, t := range r.Stack {
			rj.Stack[j] = int(t)
		}
		out.Records[i] = rj
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// StackString renders a record's header stack like
// "Ethernet/Dot1Q/MPLS/IPv4/TCP".
func (r *Record) StackString() string {
	s := ""
	for i, t := range r.Stack {
		if i > 0 {
			s += "/"
		}
		s += t.String()
	}
	return s
}
