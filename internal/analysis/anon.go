package analysis

import (
	"encoding/binary"

	"repro/internal/wire"
)

// Anonymizer rewrites IP addresses in captured frames with a keyed,
// deterministic mapping, preserving flow structure (the same input
// address always maps to the same output) while hiding real addresses.
// This is the "close-to-source traffic processing" the paper cites
// (Section 1, requirement 6); Patchwork can run it on the FPGA NIC or in
// the DPDK pipeline before frames reach storage.
//
// The mapping keeps the address family and the top octet's private-range
// class so that anonymized captures remain structurally plausible.
type Anonymizer struct {
	key uint64
}

// NewAnonymizer builds an anonymizer from a secret key.
func NewAnonymizer(key uint64) *Anonymizer {
	return &Anonymizer{key: key}
}

// mix is a 64-bit finalizer (splitmix64-style) keyed by a.key.
func (a *Anonymizer) mix(v uint64) uint64 {
	z := v ^ a.key
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// AnonymizeFrame rewrites the addresses of every IPv4/IPv6 and ARP layer
// in the frame, in place, and fixes the affected checksums. Frames that
// fail to decode are left untouched. It reports whether any rewrite
// happened.
func (a *Anonymizer) AnonymizeFrame(data []byte) bool {
	pkt := wire.NewPacket(data, wire.LayerTypeEthernet, wire.NoCopy)
	changed := false
	for _, l := range pkt.Layers() {
		switch v := l.(type) {
		case *wire.IPv4:
			hdr := v.LayerContents() // aliases data under NoCopy
			a.rewriteV4(hdr[12:16])
			a.rewriteV4(hdr[16:20])
			// Recompute the header checksum.
			hdr[10], hdr[11] = 0, 0
			ck := ipv4HeaderChecksum(hdr)
			binary.BigEndian.PutUint16(hdr[10:12], ck)
			// Transport checksums over the pseudo-header are now stale;
			// blank them (valid per RFC for UDP; analysis tooling treats
			// zero as "not checked").
			blankTransportChecksum(v.LayerPayload(), v.Protocol)
			changed = true
		case *wire.IPv6:
			hdr := v.LayerContents()
			a.rewriteV6(hdr[8:24])
			a.rewriteV6(hdr[24:40])
			blankTransportChecksum(v.LayerPayload(), v.NextHeader)
			changed = true
		case *wire.ARP:
			msg := v.LayerContents()
			a.rewriteV4(msg[14:18])
			a.rewriteV4(msg[24:28])
			changed = true
		}
	}
	return changed
}

// rewriteV4 substitutes the low 24 bits of the address, keeping the top
// octet (so 10.x stays 10.x).
func (a *Anonymizer) rewriteV4(addr []byte) {
	v := uint64(addr[1])<<16 | uint64(addr[2])<<8 | uint64(addr[3])
	m := a.mix(v | uint64(addr[0])<<24)
	addr[1] = byte(m >> 16)
	addr[2] = byte(m >> 8)
	addr[3] = byte(m)
}

// rewriteV6 substitutes the interface identifier and low subnet bits,
// keeping the top 6 bytes of the prefix.
func (a *Anonymizer) rewriteV6(addr []byte) {
	lo := binary.BigEndian.Uint64(addr[8:16])
	hiTail := binary.BigEndian.Uint16(addr[6:8])
	m1 := a.mix(lo)
	m2 := a.mix(uint64(hiTail) ^ 0x5bd1e995)
	binary.BigEndian.PutUint64(addr[8:16], m1)
	binary.BigEndian.PutUint16(addr[6:8], uint16(m2))
}

func ipv4HeaderChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	return ^uint16(sum)
}

// blankTransportChecksum zeroes the TCP/UDP checksum field when the
// transport header is present in the (possibly truncated) payload.
func blankTransportChecksum(payload []byte, proto wire.IPProtocol) {
	switch proto {
	case wire.IPProtocolTCP:
		if len(payload) >= 18 {
			payload[16], payload[17] = 0, 0
		}
	case wire.IPProtocolUDP:
		if len(payload) >= 8 {
			payload[6], payload[7] = 0, 0
		}
	}
}
