package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/wire"
)

// The Process step: CSV emitters matching the paper's analysis outputs.
// Each writer produces a header row followed by data rows; numbers use
// plain decimal formatting so downstream plotting scripts stay simple.

// WriteFrameSizeCSV emits the frame-size histogram (Fig. 15 per site /
// Section 8.2 aggregate): bucket,count,percent.
func WriteFrameSizeCSV(w io.Writer, recs []Record) error {
	return WriteFrameSizeHistCSV(w, FrameSizeHistogram(recs))
}

// WriteFrameSizeHistCSV is WriteFrameSizeCSV on an already-computed
// histogram (the streaming path's entry point).
func WriteFrameSizeHistCSV(w io.Writer, h []int) error {
	total := 0
	for _, c := range h {
		total += c
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bucket", "count", "percent"}); err != nil {
		return err
	}
	for i, c := range h {
		pct := 0.0
		if total > 0 {
			pct = float64(c) / float64(total) * 100
		}
		if err := cw.Write([]string{
			FrameSizeBucketLabel(i),
			strconv.Itoa(c),
			strconv.FormatFloat(pct, 'f', 2, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHeaderOccurrenceCSV emits Fig. 12: header,percent (sorted
// descending).
func WriteHeaderOccurrenceCSV(w io.Writer, recs []Record) error {
	return WriteHeaderOccurrenceMapCSV(w, HeaderOccurrence(recs))
}

// WriteHeaderOccurrenceMapCSV is WriteHeaderOccurrenceCSV on an
// already-computed occurrence map (the streaming path's entry point).
func WriteHeaderOccurrenceMapCSV(w io.Writer, occ map[wire.LayerType]float64) error {
	type row struct {
		t   wire.LayerType
		pct float64
	}
	rows := make([]row, 0, len(occ))
	for t, p := range occ {
		rows = append(rows, row{t, p})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pct != rows[j].pct {
			return rows[i].pct > rows[j].pct
		}
		return rows[i].t < rows[j].t
	})
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"header", "percent_of_frames"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.t.String(), strconv.FormatFloat(r.pct, 'f', 2, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSiteHeaderStatsCSV emits Fig. 11: site,distinct_headers,max_depth.
func WriteSiteHeaderStatsCSV(w io.Writer, stats []SiteHeaderStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"site", "distinct_headers", "max_stack_depth", "frames"}); err != nil {
		return err
	}
	for _, s := range stats {
		if err := cw.Write([]string{
			s.Site, strconv.Itoa(s.DistinctHeaders),
			strconv.Itoa(s.MaxStackDepth), strconv.Itoa(s.Frames),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFlowCountCSV emits Fig. 13: flows_bucket,samples.
func WriteFlowCountCSV(w io.Writer, counts []int) error {
	h := FlowCountHistogram(counts)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"flows_in_sample", "samples"}); err != nil {
		return err
	}
	for i, c := range h {
		label := ""
		switch {
		case i == 0:
			label = fmt.Sprintf("<=%d", FlowCountBuckets[0])
		case i < len(FlowCountBuckets):
			label = fmt.Sprintf("%d-%d", FlowCountBuckets[i-1]+1, FlowCountBuckets[i])
		default:
			label = fmt.Sprintf(">%d", FlowCountBuckets[len(FlowCountBuckets)-1])
		}
		if err := cw.Write([]string{label, strconv.Itoa(c)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFlowAggregateCSV emits the flow-size aggregation: rank,frames,bytes.
// Only the top n flows are written when n > 0.
func WriteFlowAggregateCSV(w io.Writer, flows []FlowAggregate, n int) error {
	if n <= 0 || n > len(flows) {
		n = len(flows)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "frames", "bytes", "proto"}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		f := flows[i]
		if err := cw.Write([]string{
			strconv.Itoa(i + 1), strconv.Itoa(f.Frames),
			strconv.FormatInt(f.Bytes, 10), f.Key.Proto.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEncapsulationCSV emits the encapsulation census: pattern,frames.
// Only the top n patterns are written when n > 0.
func WriteEncapsulationCSV(w io.Writer, recs []Record, n int) error {
	return WriteStackPatternsCSV(w, EncapsulationCensus(recs), n)
}

// WriteStackPatternsCSV is WriteEncapsulationCSV on an already-computed
// census (the streaming path's entry point).
func WriteStackPatternsCSV(w io.Writer, ps []StackPattern, n int) error {
	if n <= 0 || n > len(ps) {
		n = len(ps)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"pattern", "frames"}); err != nil {
		return err
	}
	for _, p := range ps[:n] {
		if err := cw.Write([]string{p.Pattern, strconv.Itoa(p.Frames)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSiteProtocolCSV emits per-site protocol shares.
func WriteSiteProtocolCSV(w io.Writer, shares []SiteProtocolShare) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"site", "frames", "ipv4_pct", "ipv6_pct", "tcp_pct", "udp_pct"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	for _, s := range shares {
		if err := cw.Write([]string{
			s.Site, strconv.Itoa(s.Frames),
			f(s.IPv4Percent), f(s.IPv6Percent), f(s.TCPPercent), f(s.UDPPercent),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTCPFlagsCSV emits the control-information summary.
func WriteTCPFlagsCSV(w io.Writer, c TCPFlagCounts) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "count"}); err != nil {
		return err
	}
	rows := [][2]string{
		{"tcp_segments", strconv.Itoa(c.Segments)},
		{"syn", strconv.Itoa(c.Syn)},
		{"syn_ack", strconv.Itoa(c.SynAck)},
		{"fin", strconv.Itoa(c.Fin)},
		{"rst", strconv.Itoa(c.Rst)},
		{"pure_ack", strconv.Itoa(c.PureAck)},
	}
	for _, r := range rows {
		if err := cw.Write(r[:]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
