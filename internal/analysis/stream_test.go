package analysis

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/flowstore"
	"repro/internal/trafficgen"
)

// equivCorpus builds a deterministic multi-site corpus: per site a list
// of samples, each sample a list of (ts, stored bytes, wire length).
type equivFrame struct {
	ts      int64
	data    []byte
	wireLen int
}

func equivCorpus(t testing.TB, seed uint64, sites, samples, frames int) [][][]equivFrame {
	t.Helper()
	profiles := trafficgen.MakeSiteProfiles(seed, 30)
	out := make([][][]equivFrame, sites)
	for i := 0; i < sites; i++ {
		g := trafficgen.NewGenerator(profiles[i%len(profiles)], seed*100+uint64(i))
		out[i] = make([][]equivFrame, samples)
		for s := 0; s < samples; s++ {
			tfs, err := g.Sample(trafficgen.SampleConfig{MaxFrames: frames, FlowCount: frames / 5})
			if err != nil {
				t.Fatal(err)
			}
			smp := make([]equivFrame, len(tfs))
			for j, tf := range tfs {
				data := tf.Data
				if len(data) > 200 {
					data = data[:200]
				}
				smp[j] = equivFrame{ts: int64(tf.At), data: data, wireLen: len(tf.Data)}
			}
			out[i][s] = smp
		}
	}
	return out
}

// hostileMutate injects the fault classes the loaders tolerate: frames
// cut far below any header boundary, pure garbage, and empty frames.
func hostileMutate(corpus [][][]equivFrame) {
	n := 0
	for _, site := range corpus {
		for _, smp := range site {
			for j := range smp {
				switch n % 17 {
				case 3:
					if len(smp[j].data) > 9 {
						smp[j].data = smp[j].data[:9] // mid-Ethernet cut
					}
				case 7:
					garbage := make([]byte, len(smp[j].data))
					for i := range garbage {
						garbage[i] = byte(i*31 + n)
					}
					smp[j].data = garbage
				case 11:
					smp[j].data = nil // zero stored bytes
				}
				n++
			}
		}
	}
}

// runBoth feeds the corpus through the in-memory pipeline (acaps + raw
// frame list) and the streaming digester (spilling aggressively) and
// returns both sides' views.
func runBoth(t *testing.T, corpus [][][]equivFrame, siteNames []string) (acaps []*Acap, raw [][]byte, d *Digester, spillPath string) {
	t.Helper()
	spillPath = filepath.Join(t.TempDir(), "flows.seg")
	w, err := flowstore.Create(spillPath)
	if err != nil {
		t.Fatal(err)
	}
	// MaxHotFlows far below the corpus flow count forces many spills.
	d = NewDigester(DigestOptions{MaxHotFlows: 64, Spill: w})
	for i, site := range corpus {
		for _, smp := range site {
			a := &Acap{Site: siteNames[i]}
			d.StartSample(siteNames[i])
			for _, f := range smp {
				a.Records = append(a.Records, DigestFrame(f.ts, f.data, f.wireLen))
				raw = append(raw, f.data)
				if err := d.Frame(f.ts, f.data, f.wireLen); err != nil {
					t.Fatal(err)
				}
			}
			d.EndSample()
			acaps = append(acaps, a)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return acaps, raw, d, spillPath
}

func checkEquivalence(t *testing.T, acaps []*Acap, raw [][]byte, d *Digester, spillPath string) {
	t.Helper()
	var recs []Record
	for _, a := range acaps {
		recs = append(recs, a.Records...)
	}

	if got, want := d.FrameSizeHist(), FrameSizeHistogram(recs); !equalInts(got, want) {
		t.Errorf("FrameSizeHist: %v != %v", got, want)
	}
	if got, want := d.JumboFrac(), JumboFraction(recs); got != want {
		t.Errorf("JumboFrac: %v != %v", got, want)
	}
	if got, want := d.TruncatedShare(), TruncatedDecodeShare(recs); got != want {
		t.Errorf("TruncatedShare: %v != %v", got, want)
	}

	gotOcc, wantOcc := d.HeaderOccurrence(), HeaderOccurrence(recs)
	if len(gotOcc) != len(wantOcc) {
		t.Errorf("HeaderOccurrence sizes: %d != %d", len(gotOcc), len(wantOcc))
	}
	for k, v := range wantOcc {
		if gotOcc[k] != v {
			t.Errorf("HeaderOccurrence[%v]: %v != %v", k, gotOcc[k], v)
		}
	}

	gotSH, wantSH := d.SiteHeaderStats(), HeaderStatsBySite(acaps)
	if len(gotSH) != len(wantSH) {
		t.Fatalf("SiteHeaderStats sizes: %d != %d", len(gotSH), len(wantSH))
	}
	for i := range wantSH {
		if gotSH[i] != wantSH[i] {
			t.Errorf("SiteHeaderStats[%d]: %+v != %+v", i, gotSH[i], wantSH[i])
		}
	}

	gotPS, wantPS := d.SiteProtocolShares(), ProtocolShareBySite(acaps)
	if len(gotPS) != len(wantPS) {
		t.Fatalf("SiteProtocolShares sizes: %d != %d", len(gotPS), len(wantPS))
	}
	for i := range wantPS {
		if gotPS[i] != wantPS[i] {
			t.Errorf("SiteProtocolShares[%d]: %+v != %+v", i, gotPS[i], wantPS[i])
		}
	}

	gotEC, wantEC := d.EncapCensus(), EncapsulationCensus(recs)
	if len(gotEC) != len(wantEC) {
		t.Fatalf("EncapCensus sizes: %d != %d", len(gotEC), len(wantEC))
	}
	for i := range wantEC {
		if gotEC[i] != wantEC[i] {
			t.Errorf("EncapCensus[%d]: %+v != %+v", i, gotEC[i], wantEC[i])
		}
	}

	if got, want := d.TCPFlags(), CountTCPFlags(raw); got != want {
		t.Errorf("TCPFlags: %+v != %+v", got, want)
	}

	gotFC := d.SampleFlowCounts()
	if len(gotFC) != len(acaps) {
		t.Fatalf("SampleFlowCounts: %d samples, want %d", len(gotFC), len(acaps))
	}
	for i, a := range acaps {
		if want := FlowsInSample(a); gotFC[i] != want {
			t.Errorf("sample %d flow count: %d != %d", i, gotFC[i], want)
		}
	}

	// Aggregates must match row-for-row, including order, with the
	// spilled rows merged back from disk.
	st, err := flowstore.Open(spillPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if d.Flows().SpilledFlows() == 0 {
		t.Error("corpus never spilled; raise flow count or lower MaxHotFlows")
	}
	gotAgg, err := d.Flows().Aggregates(st)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg := AggregateFlows(acaps)
	if len(gotAgg) != len(wantAgg) {
		t.Fatalf("Aggregates sizes: %d != %d", len(gotAgg), len(wantAgg))
	}
	for i := range wantAgg {
		if gotAgg[i] != wantAgg[i] {
			t.Fatalf("Aggregates[%d]: %+v != %+v", i, gotAgg[i], wantAgg[i])
		}
	}

	// CSV artifacts must be byte-identical.
	type csvPair struct {
		name      string
		mem, strm func(io.Writer) error
	}
	pairs := []csvPair{
		{"frame_sizes",
			func(w io.Writer) error { return WriteFrameSizeCSV(w, recs) },
			func(w io.Writer) error { return WriteFrameSizeHistCSV(w, d.FrameSizeHist()) }},
		{"header_occurrence",
			func(w io.Writer) error { return WriteHeaderOccurrenceCSV(w, recs) },
			func(w io.Writer) error { return WriteHeaderOccurrenceMapCSV(w, d.HeaderOccurrence()) }},
		{"site_headers",
			func(w io.Writer) error { return WriteSiteHeaderStatsCSV(w, wantSH) },
			func(w io.Writer) error { return WriteSiteHeaderStatsCSV(w, d.SiteHeaderStats()) }},
		{"flow_counts",
			func(w io.Writer) error {
				counts := make([]int, len(acaps))
				for i, a := range acaps {
					counts[i] = FlowsInSample(a)
				}
				return WriteFlowCountCSV(w, counts)
			},
			func(w io.Writer) error { return WriteFlowCountCSV(w, d.SampleFlowCounts()) }},
		{"flow_aggregate",
			func(w io.Writer) error { return WriteFlowAggregateCSV(w, wantAgg, 100) },
			func(w io.Writer) error { return WriteFlowAggregateCSV(w, gotAgg, 100) }},
		{"encapsulations",
			func(w io.Writer) error { return WriteEncapsulationCSV(w, recs, 50) },
			func(w io.Writer) error { return WriteStackPatternsCSV(w, gotEC, 50) }},
		{"site_protocols",
			func(w io.Writer) error { return WriteSiteProtocolCSV(w, wantPS) },
			func(w io.Writer) error { return WriteSiteProtocolCSV(w, d.SiteProtocolShares()) }},
		{"tcp_flags",
			func(w io.Writer) error { return WriteTCPFlagsCSV(w, CountTCPFlags(raw)) },
			func(w io.Writer) error { return WriteTCPFlagsCSV(w, d.TCPFlags()) }},
	}
	for _, p := range pairs {
		var m, s bytes.Buffer
		if err := p.mem(&m); err != nil {
			t.Fatal(err)
		}
		if err := p.strm(&s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m.Bytes(), s.Bytes()) {
			t.Errorf("%s.csv differs between in-memory and streamed paths", p.name)
		}
	}
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamEquivalenceClean pins the tentpole contract: the streaming
// digester with aggressive spilling produces bit-identical statistics
// and CSV artifacts to the in-memory pipeline on a clean corpus.
func TestStreamEquivalenceClean(t *testing.T) {
	corpus := equivCorpus(t, 11, 3, 2, 600)
	acaps, raw, d, spill := runBoth(t, corpus, []string{"site-a", "site-b", "site-c"})
	checkEquivalence(t, acaps, raw, d, spill)
}

// TestStreamEquivalenceHostile repeats the check on a corpus salted with
// truncated, garbage, and empty frames — decode failures must fold into
// both pipelines identically.
func TestStreamEquivalenceHostile(t *testing.T) {
	corpus := equivCorpus(t, 23, 3, 2, 500)
	hostileMutate(corpus)
	acaps, raw, d, spill := runBoth(t, corpus, []string{"site-x", "site-y", "site-z"})
	checkEquivalence(t, acaps, raw, d, spill)
}

// TestStreamSketches checks the measured-error contract: the HLL's flow
// cardinality estimate lands within 4 standard errors of the exact
// count, and the heavy-hitter summary's top entry is the true top flow
// with a valid overestimation bound.
func TestStreamSketches(t *testing.T) {
	corpus := equivCorpus(t, 31, 2, 2, 800)
	acaps, _, d, _ := runBoth(t, corpus, []string{"s1", "s2"})

	truth := map[FlowKey]uint64{}
	for _, a := range acaps {
		for _, r := range a.Records {
			truth[r.Flow.Canonical()]++
		}
	}
	est, stderr := d.Flows().CardinalityEstimate()
	rel := math.Abs(float64(est)-float64(len(truth))) / float64(len(truth))
	if rel > 4*stderr {
		t.Errorf("cardinality estimate %d vs true %d: error %.4f > 4σ %.4f", est, len(truth), rel, 4*stderr)
	}

	var topKey FlowKey
	var topCount uint64
	for k, c := range truth {
		if c > topCount || (c == topCount && flowKeyLess(k, topKey)) {
			topKey, topCount = k, c
		}
	}
	heavy := d.Flows().HeavyHitters(5)
	if len(heavy) == 0 {
		t.Fatal("no heavy hitters tracked")
	}
	h := heavy[0]
	if h.Count < truth[h.Key] || h.Count-h.Err > truth[h.Key] {
		t.Errorf("heavy hitter %+v violates bounds (true %d)", h, truth[h.Key])
	}
	if h.Key != topKey {
		// Space-saving guarantees presence, not rank, for items above
		// N/k; with k=64 over this corpus the true top flow must at
		// least appear in the summary.
		found := false
		for _, e := range d.Flows().HeavyHitters(0) {
			if e.Key == topKey {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("true top flow (count %d) missing from heavy hitters", topCount)
		}
	}
}

// TestFlowTableSpillDeterminism runs the same stream twice and compares
// the spill files byte-for-byte: the on-disk layout must be a pure
// function of the input.
func TestFlowTableSpillDeterminism(t *testing.T) {
	corpus := equivCorpus(t, 7, 2, 1, 400)
	run := func(path string) {
		w, err := flowstore.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDigester(DigestOptions{MaxHotFlows: 32, Spill: w})
		for i, site := range corpus {
			for _, smp := range site {
				d.StartSample([]string{"p", "q"}[i])
				for _, f := range smp {
					if err := d.Frame(f.ts, f.data, f.wireLen); err != nil {
						t.Fatal(err)
					}
				}
				d.EndSample()
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.seg"), filepath.Join(dir, "b.seg")
	run(p1)
	run(p2)
	b1 := readAll(t, p1)
	b2 := readAll(t, p2)
	if !bytes.Equal(b1, b2) {
		t.Error("spill files differ across identical runs")
	}
}
