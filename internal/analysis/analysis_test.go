package analysis

import (
	"bytes"
	"strings"
	"testing"

	"net/netip"

	"repro/internal/pcap"
	"repro/internal/trafficgen"
	"repro/internal/wire"
)

// sampleAcap builds an acap from a synthesized capture for the given
// profile seed.
func sampleAcap(t testing.TB, site string, seed uint64, frames int) *Acap {
	t.Helper()
	profiles := trafficgen.MakeSiteProfiles(1, 30)
	idx := int(seed) % len(profiles)
	g := trafficgen.NewGenerator(profiles[idx], seed)
	tfs, err := g.Sample(trafficgen.SampleConfig{MaxFrames: frames, FlowCount: frames / 4})
	if err != nil {
		t.Fatal(err)
	}
	a := &Acap{Site: site}
	for _, tf := range tfs {
		data := tf.Data
		stored := data
		if len(stored) > 200 {
			stored = stored[:200] // Patchwork's default truncation
		}
		a.Records = append(a.Records, DigestFrame(int64(tf.At), stored, len(data)))
	}
	return a
}

func TestDigestFrameBasics(t *testing.T) {
	p := trafficgen.MakeSiteProfiles(1, 30)[4] // rich profile class
	g := trafficgen.NewGenerator(p, 3)
	fs := g.NewFlow()
	data, err := g.BuildFrame(&fs, trafficgen.DirForward, 1600)
	if err != nil {
		t.Fatal(err)
	}
	rec := DigestFrame(12345, data, len(data))
	if rec.TimestampNanos != 12345 || rec.WireLen != len(data) {
		t.Errorf("metadata = %+v", rec)
	}
	if len(rec.Stack) < 3 {
		t.Errorf("stack = %v", rec.StackString())
	}
	if rec.Stack[0] != wire.LayerTypeEthernet || rec.Stack[1] != wire.LayerTypeDot1Q {
		t.Errorf("stack = %v", rec.StackString())
	}
	if rec.Flow.VLANID != fs.VLANID {
		t.Errorf("flow VLAN = %d, want %d", rec.Flow.VLANID, fs.VLANID)
	}
}

func TestDigestFromPcap(t *testing.T) {
	g := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(1, 30)[0], 5)
	tfs, err := g.Sample(trafficgen.SampleConfig{MaxFrames: 100, FlowCount: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.FileHeader{SnapLen: 200, Nanosecond: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tf := range tfs {
		if err := w.WriteRecord(int64(tf.At), tf.Data, len(tf.Data)); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Flush()
	rd, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Digest("S0", rd)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(tfs) {
		t.Errorf("records = %d, want %d", len(a.Records), len(tfs))
	}
	for _, r := range a.Records {
		if r.StoredLen > 200 {
			t.Errorf("stored %d exceeds snaplen", r.StoredLen)
		}
		if r.WireLen < r.StoredLen {
			t.Errorf("wire %d < stored %d", r.WireLen, r.StoredLen)
		}
	}
}

func TestFlowKeyCanonicalSymmetric(t *testing.T) {
	g := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(1, 30)[4], 9)
	found := false
	for i := 0; i < 60 && !found; i++ {
		fs := g.NewFlow()
		fwd, err := g.BuildFrame(&fs, trafficgen.DirForward, 800)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := g.BuildFrame(&fs, trafficgen.DirReverse, 0)
		if err != nil {
			t.Fatal(err)
		}
		rf := DigestFrame(0, fwd, len(fwd))
		rr := DigestFrame(0, rev, len(rev))
		if rf.Flow.Proto == wire.LayerTypeTCP && rr.Flow.Proto == wire.LayerTypeTCP {
			found = true
			if rf.Flow == rr.Flow {
				t.Error("fwd and rev raw keys should differ")
			}
			if rf.Flow.Canonical() != rr.Flow.Canonical() {
				t.Errorf("canonical keys differ: %+v vs %+v", rf.Flow.Canonical(), rr.Flow.Canonical())
			}
		}
	}
	if !found {
		t.Fatal("no TCP flow drawn")
	}
}

func TestVLANDistinguishesFlows(t *testing.T) {
	// Two flows with identical IPs/ports but different VLANs are distinct
	// (Section 6.2.4: same 10/8 addresses in different slices).
	mk := func(vlan uint16) FlowKey {
		pay := wire.Payload([]byte("x"))
		buf := wire.NewSerializeBuffer()
		err := wire.SerializeLayers(buf, wire.SerializeOptions{FixLengths: true},
			&wire.Ethernet{EthernetType: wire.EthernetTypeDot1Q},
			&wire.Dot1Q{VLANID: vlan, EthernetType: wire.EthernetTypeIPv4},
			&wire.IPv4{TTL: 1, Protocol: wire.IPProtocolUDP,
				SrcIP: mustAddr("10.0.0.1"), DstIP: mustAddr("10.0.0.2")},
			&wire.UDP{SrcPort: 1000, DstPort: 2000},
			&pay)
		if err != nil {
			t.Fatal(err)
		}
		return DigestFrame(0, buf.Bytes(), len(buf.Bytes())).Flow
	}
	if mk(100) == mk(200) {
		t.Error("flows in different VLANs should have different keys")
	}
	if mk(100) != mk(100) {
		t.Error("same VLAN should produce the same key")
	}
}

func TestFrameSizeHistogram(t *testing.T) {
	recs := []Record{
		{WireLen: 64}, {WireLen: 100}, {WireLen: 100}, {WireLen: 1600},
		{WireLen: 2000}, {WireLen: 9000}, {WireLen: 10000},
	}
	h := FrameSizeHistogram(recs)
	if h[0] != 1 { // <=64
		t.Errorf("bucket0 = %d", h[0])
	}
	if h[1] != 2 { // 65-127
		t.Errorf("bucket1 = %d", h[1])
	}
	if h[6] != 2 { // 1519-2047
		t.Errorf("bucket6 = %d", h[6])
	}
	if h[8] != 1 || h[9] != 1 {
		t.Errorf("jumbo buckets = %v", h)
	}
	if FrameSizeBucketLabel(6) != "1519-2047" {
		t.Errorf("label = %q", FrameSizeBucketLabel(6))
	}
	if FrameSizeBucketLabel(9) != "9216+" {
		t.Errorf("overflow label = %q", FrameSizeBucketLabel(9))
	}
}

func TestJumboFraction(t *testing.T) {
	recs := []Record{{WireLen: 1518}, {WireLen: 1519}, {WireLen: 2000}, {WireLen: 64}}
	if f := JumboFraction(recs); f != 0.5 {
		t.Errorf("jumbo fraction = %v", f)
	}
	if JumboFraction(nil) != 0 {
		t.Error("empty should be 0")
	}
}

func TestHeaderOccurrenceEthernetOver100(t *testing.T) {
	a := sampleAcap(t, "S4", 4, 2000) // profile with pseudowires
	occ := HeaderOccurrence(a.Records)
	if occ[wire.LayerTypeEthernet] <= 100 {
		t.Errorf("Ethernet occurrence = %.1f%%, want >100%% (pseudowires)", occ[wire.LayerTypeEthernet])
	}
	if occ[wire.LayerTypeIPv4] < 50 {
		t.Errorf("IPv4 = %.1f%%, should dominate", occ[wire.LayerTypeIPv4])
	}
	if occ[wire.LayerTypeIPv6] > 10 {
		t.Errorf("IPv6 = %.1f%%, should be small", occ[wire.LayerTypeIPv6])
	}
	if occ[wire.LayerTypeDot1Q] < 99 {
		t.Errorf("VLAN = %.1f%%, every frame is tagged", occ[wire.LayerTypeDot1Q])
	}
}

func TestHeaderStatsBySite(t *testing.T) {
	acaps := []*Acap{
		sampleAcap(t, "S0", 0, 800), // bulk-heavy profile: few headers
		sampleAcap(t, "S4", 4, 800), // rich profile: many headers
	}
	stats := HeaderStatsBySite(acaps)
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	// Sorted descending by distinct headers: the rich site leads.
	if stats[0].Site != "S4" {
		t.Errorf("order = %v", stats)
	}
	if stats[0].DistinctHeaders <= stats[1].DistinctHeaders {
		t.Errorf("rich site %d headers <= bulk site %d",
			stats[0].DistinctHeaders, stats[1].DistinctHeaders)
	}
	for _, s := range stats {
		if s.MaxStackDepth < 5 || s.MaxStackDepth > 12 {
			t.Errorf("%s max depth = %d, want 5-12", s.Site, s.MaxStackDepth)
		}
	}
}

func TestFlowsInSampleAndHistogram(t *testing.T) {
	a := sampleAcap(t, "S1", 1, 2000)
	n := FlowsInSample(a)
	if n < 10 {
		t.Errorf("flows = %d, too few", n)
	}
	h := FlowCountHistogram([]int{50, 200, 2500, 25000, 60000})
	if h[0] != 1 || h[1] != 1 || h[3] != 1 || h[6] != 1 || h[7] != 1 {
		t.Errorf("hist = %v", h)
	}
}

func TestAggregateFlows(t *testing.T) {
	a1 := sampleAcap(t, "S2", 2, 1000)
	a2 := sampleAcap(t, "S2", 2, 1000) // same seed: same flows reappear
	flows := AggregateFlows([]*Acap{a1, a2})
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	// Sorted by bytes descending.
	for i := 1; i < len(flows); i++ {
		if flows[i].Bytes > flows[i-1].Bytes {
			t.Fatal("not sorted by bytes")
		}
	}
	// Identical samples: every flow has an even frame count (appears in
	// both).
	if flows[0].Frames%2 != 0 {
		t.Errorf("top flow frames = %d, want doubled", flows[0].Frames)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	a := sampleAcap(t, "S3", 3, 500)
	e := Summarize(a, "acaps/s3-0.json")
	if e.Frames != len(a.Records) || e.DistinctFlows <= 0 {
		t.Errorf("entry = %+v", e)
	}
	var ix Index
	ix.Add(e)
	ix.Add(IndexEntry{Site: "S1", Path: "acaps/s1-0.json", StartNanos: 5, EndNanos: 10})
	if got := ix.Sites(); len(got) != 2 || got[0] != "S1" {
		t.Errorf("sites = %v", got)
	}
	if got := ix.BySite("S3"); len(got) != 1 || got[0].Path != "acaps/s3-0.json" {
		t.Errorf("BySite = %v", got)
	}
	if got := ix.InWindow(6, 8); len(got) != 1 {
		t.Errorf("InWindow = %v", got)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 {
		t.Errorf("round trip entries = %d", len(back.Entries))
	}
}

func TestAcapSerialization(t *testing.T) {
	a := sampleAcap(t, "S5", 5, 100)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"site":"S5"`) {
		t.Errorf("serialized acap missing site: %.100s", s)
	}
}

func TestCSVEmitters(t *testing.T) {
	a := sampleAcap(t, "S6", 6, 800)
	var buf bytes.Buffer
	if err := WriteFrameSizeCSV(&buf, a.Records); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(FrameSizeBuckets)+2 {
		t.Errorf("frame-size CSV lines = %d", lines)
	}
	buf.Reset()
	if err := WriteHeaderOccurrenceCSV(&buf, a.Records); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "header,percent_of_frames\n") {
		t.Errorf("header CSV = %.60s", buf.String())
	}
	buf.Reset()
	if err := WriteSiteHeaderStatsCSV(&buf, HeaderStatsBySite([]*Acap{a})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S6") {
		t.Error("site stats CSV missing site")
	}
	buf.Reset()
	if err := WriteFlowCountCSV(&buf, []int{100, 5000}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flows_in_sample") {
		t.Error("flow count CSV missing header")
	}
	buf.Reset()
	if err := WriteFlowAggregateCSV(&buf, AggregateFlows([]*Acap{a}), 10); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines > 11 {
		t.Errorf("flow aggregate CSV lines = %d, want <= 11", lines)
	}
}

func TestAnonymizerDeterministicAndFlowPreserving(t *testing.T) {
	g := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(1, 30)[0], 8)
	fs := g.NewFlow()
	f1, err := g.BuildFrame(&fs, trafficgen.DirForward, 1600)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := g.BuildFrame(&fs, trafficgen.DirForward, 1600)
	if err != nil {
		t.Fatal(err)
	}
	origKey := DigestFrame(0, f1, len(f1)).Flow

	an := NewAnonymizer(0xDEADBEEF)
	if !an.AnonymizeFrame(f1) || !an.AnonymizeFrame(f2) {
		t.Fatal("frames should be rewritten")
	}
	k1 := DigestFrame(0, f1, len(f1)).Flow
	k2 := DigestFrame(0, f2, len(f2)).Flow
	if k1 != k2 {
		t.Error("same flow should anonymize to same key")
	}
	if k1.Src == origKey.Src && k1.Dst == origKey.Dst {
		t.Error("addresses unchanged")
	}
	// Decode must still succeed with a valid IPv4 checksum.
	pkt := wire.NewPacket(f1, wire.LayerTypeEthernet, wire.Default)
	if fail := pkt.ErrorLayer(); fail != nil {
		t.Errorf("anonymized frame no longer decodes: %v", fail.Error())
	}
}

func TestAnonymizerKeysDiffer(t *testing.T) {
	g := trafficgen.NewGenerator(trafficgen.MakeSiteProfiles(1, 30)[0], 8)
	fs := g.NewFlow()
	f1, _ := g.BuildFrame(&fs, trafficgen.DirForward, 1600)
	f2 := append([]byte(nil), f1...)
	NewAnonymizer(1).AnonymizeFrame(f1)
	NewAnonymizer(2).AnonymizeFrame(f2)
	k1 := DigestFrame(0, f1, len(f1)).Flow
	k2 := DigestFrame(0, f2, len(f2)).Flow
	if k1.Src == k2.Src {
		t.Error("different keys should map addresses differently")
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
