package analysis

import (
	"sort"

	"repro/internal/wire"
)

// This file extends the Analyze step with the flow-level characteristics
// the paper's profile definition calls for (Section 4): flow durations,
// the presence of important control information such as RST-flagged
// packets, and the census of encapsulation patterns.

// TCPFlagCounts tallies control-flag occurrences across TCP frames.
type TCPFlagCounts struct {
	Segments int // TCP frames seen
	Syn      int
	SynAck   int
	Fin      int
	Rst      int
	PureAck  int // payload-free ACKs (the minimum-size frame class)
}

// CountTCPFlags re-dissects stored frame bytes for flag analysis. It
// accepts raw stored frames (from pcap records) because the acap
// representation deliberately discards header field values.
func CountTCPFlags(frames [][]byte) TCPFlagCounts {
	var out TCPFlagCounts
	// One pooled packet serves every frame: Reset reuses the layer
	// structs, and LazyNoCopy borrows the frame bytes (safe — nothing
	// here outlives the loop iteration).
	var pkt wire.Packet
	for _, data := range frames {
		pkt.Reset(data, wire.LayerTypeEthernet, wire.LazyNoCopy)
		tl := pkt.Layer(wire.LayerTypeTCP)
		if tl == nil {
			continue
		}
		tcp := tl.(*wire.TCP)
		out.Segments++
		switch {
		case tcp.Flags&wire.TCPRst != 0:
			out.Rst++
		case tcp.Flags&wire.TCPSyn != 0 && tcp.Flags&wire.TCPAck != 0:
			out.SynAck++
		case tcp.Flags&wire.TCPSyn != 0:
			out.Syn++
		}
		if tcp.Flags&wire.TCPFin != 0 {
			out.Fin++
		}
		if tcp.Flags == wire.TCPAck && len(tcp.LayerPayload()) == 0 {
			out.PureAck++
		}
	}
	return out
}

// FlowTimes summarizes one flow's observed lifetime within the capture.
type FlowTimes struct {
	Key                   FlowKey
	FirstNanos, LastNanos int64
	Frames                int
}

// DurationNanos is the observed span. A single-frame flow has zero
// duration (the paper notes samples rarely capture entire flows).
func (f FlowTimes) DurationNanos() int64 { return f.LastNanos - f.FirstNanos }

// FlowDurations computes the observed first/last timestamps per
// canonical flow across the given acaps, sorted by duration descending.
func FlowDurations(acaps []*Acap) []FlowTimes {
	m := map[FlowKey]*FlowTimes{}
	var order []FlowKey
	for _, a := range acaps {
		for _, r := range a.Records {
			k := r.Flow.Canonical()
			ft, ok := m[k]
			if !ok {
				ft = &FlowTimes{Key: k, FirstNanos: r.TimestampNanos, LastNanos: r.TimestampNanos}
				m[k] = ft
				order = append(order, k)
			}
			if r.TimestampNanos < ft.FirstNanos {
				ft.FirstNanos = r.TimestampNanos
			}
			if r.TimestampNanos > ft.LastNanos {
				ft.LastNanos = r.TimestampNanos
			}
			ft.Frames++
		}
	}
	out := make([]FlowTimes, 0, len(order))
	for _, k := range order {
		out = append(out, *m[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].DurationNanos() > out[j].DurationNanos()
	})
	return out
}

// StackPattern is one encapsulation pattern and its frequency.
type StackPattern struct {
	Pattern string
	Frames  int
}

// EncapsulationCensus counts the distinct header-stack patterns in the
// records, most frequent first — the "typical encapsulations" view
// behind the paper's examples like
// Ethernet/VLAN/MPLS/MPLS/PseudoWire/Ethernet/IPv4/TCP/TLS.
func EncapsulationCensus(recs []Record) []StackPattern {
	counts := map[string]int{}
	var order []string
	for i := range recs {
		p := recs[i].StackString()
		if _, seen := counts[p]; !seen {
			order = append(order, p)
		}
		counts[p]++
	}
	out := make([]StackPattern, 0, len(order))
	for _, p := range order {
		out = append(out, StackPattern{Pattern: p, Frames: counts[p]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Frames != out[j].Frames {
			return out[i].Frames > out[j].Frames
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// SiteProtocolShare reports one site's IPv4/IPv6 and TCP/UDP splits.
type SiteProtocolShare struct {
	Site        string
	Frames      int
	IPv4Percent float64
	IPv6Percent float64
	TCPPercent  float64
	UDPPercent  float64
}

// ProtocolShareBySite computes per-site protocol shares (the per-site
// breakdown behind the testbed-wide Fig. 12 aggregates).
func ProtocolShareBySite(acaps []*Acap) []SiteProtocolShare {
	type agg struct {
		frames, v4, v6, tcp, udp int
	}
	m := map[string]*agg{}
	var order []string
	for _, a := range acaps {
		st, ok := m[a.Site]
		if !ok {
			st = &agg{}
			m[a.Site] = st
			order = append(order, a.Site)
		}
		for _, r := range a.Records {
			st.frames++
			for _, t := range r.Stack {
				switch t {
				case wire.LayerTypeIPv4:
					st.v4++
				case wire.LayerTypeIPv6:
					st.v6++
				case wire.LayerTypeTCP:
					st.tcp++
				case wire.LayerTypeUDP:
					st.udp++
				}
			}
		}
	}
	out := make([]SiteProtocolShare, 0, len(order))
	for _, site := range order {
		st := m[site]
		s := SiteProtocolShare{Site: site, Frames: st.frames}
		if st.frames > 0 {
			n := float64(st.frames)
			s.IPv4Percent = float64(st.v4) / n * 100
			s.IPv6Percent = float64(st.v6) / n * 100
			s.TCPPercent = float64(st.tcp) / n * 100
			s.UDPPercent = float64(st.udp) / n * 100
		}
		out = append(out, s)
	}
	return out
}

// TruncatedDecodeShare reports the fraction of records whose dissection
// stopped at the snap length — a sanity signal for choosing truncation
// lengths (200 bytes keeps the full header stack for nearly all FABRIC
// traffic).
func TruncatedDecodeShare(recs []Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	n := 0
	for _, r := range recs {
		if r.DecodeTruncated {
			n++
		}
	}
	return float64(n) / float64(len(recs))
}
