package testbed

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

func twoSiteFederation(t *testing.T) *Federation {
	t.Helper()
	k := sim.NewKernel()
	f, err := NewFederation(k, []SiteSpec{
		{Name: "STAR", Uplinks: 2, Downlinks: 8, DedicatedNICs: 4, FPGANICs: 1,
			Cores: 64, RAM: 256 * units.GB, Storage: 2 * units.TB},
		{Name: "TACC", Uplinks: 1, Downlinks: 12, DedicatedNICs: 2,
			Cores: 32, RAM: 128 * units.GB, Storage: 1 * units.TB},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFederationConstruction(t *testing.T) {
	f := twoSiteFederation(t)
	if len(f.Sites()) != 2 {
		t.Fatalf("sites = %d", len(f.Sites()))
	}
	star := f.Site("STAR")
	if star == nil {
		t.Fatal("no STAR site")
	}
	names := star.Switch.PortNames()
	if len(names) != 10 { // 2 uplinks + 8 downlinks
		t.Errorf("STAR ports = %v", names)
	}
	if star.Switch.Port("U1") == nil || star.Switch.Port("P8") == nil {
		t.Error("expected U1 and P8 ports")
	}
	if f.Site("NOPE") != nil {
		t.Error("unknown site should be nil")
	}
}

func TestDuplicateSiteRejected(t *testing.T) {
	k := sim.NewKernel()
	_, err := NewFederation(k, []SiteSpec{{Name: "A", Downlinks: 1}, {Name: "A", Downlinks: 1}})
	if err == nil {
		t.Error("duplicate site should fail")
	}
}

func TestPortDistributionSorted(t *testing.T) {
	f := twoSiteFederation(t)
	dist := f.PortDistribution()
	if len(dist) != 2 || dist[0].Site != "TACC" || dist[0].Downlinks != 12 {
		t.Errorf("dist = %v", dist)
	}
	// Every site: more downlinks than uplinks (the Fig. 2 observation).
	for _, pc := range dist {
		if pc.Downlinks <= pc.Uplinks {
			t.Errorf("%s: downlinks %d <= uplinks %d", pc.Site, pc.Downlinks, pc.Uplinks)
		}
	}
}

func TestAllocateAndRelease(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("STAR")
	req := SliceRequest{Name: "pw", VMs: []VMRequest{DefaultListenerVM(), DefaultListenerVM()}}
	sl, err := s.Allocate(0, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if s.FreeDedicatedNICs() != 2 {
		t.Errorf("free NICs = %d, want 2", s.FreeDedicatedNICs())
	}
	if s.FreeCores() != 60 {
		t.Errorf("free cores = %d, want 60", s.FreeCores())
	}
	if s.ActiveSlivers() != 1 {
		t.Errorf("active = %d", s.ActiveSlivers())
	}
	if err := s.Release(sl); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.FreeDedicatedNICs() != 4 || s.FreeCores() != 64 {
		t.Error("release did not restore capacity")
	}
	if err := s.Release(sl); err == nil {
		t.Error("double release should fail")
	}
}

func TestAllocationFailureModes(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("TACC") // 2 dedicated NICs, no FPGA, 1TB storage, 32 cores
	cases := []struct {
		req  VMRequest
		want error
	}{
		{VMRequest{DedicatedNICs: 3}, ErrNoDedicatedNICs},
		{VMRequest{FPGANICs: 1}, ErrNoFPGA},
		{VMRequest{Storage: 2 * units.TB}, ErrNoStorage},
		{VMRequest{Cores: 100}, ErrNoCores},
		{VMRequest{RAM: 1 * units.TB}, ErrNoRAM},
	}
	for _, c := range cases {
		_, err := s.Allocate(0, SliceRequest{VMs: []VMRequest{c.req}})
		if !errors.Is(err, c.want) {
			t.Errorf("Allocate(%+v) err = %v, want %v", c.req, err, c.want)
		}
		if !IsResourceExhaustion(err) {
			t.Errorf("%v should be resource exhaustion", err)
		}
	}
}

func TestOutageReturnsTransient(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("STAR")
	s.AddOutage(10*sim.Minute, 20*sim.Minute)
	req := SliceRequest{VMs: []VMRequest{DefaultListenerVM()}}
	if _, err := s.Allocate(15*sim.Minute, req); !errors.Is(err, ErrBackendTransient) {
		t.Errorf("during outage err = %v", err)
	}
	if IsResourceExhaustion(ErrBackendTransient) {
		t.Error("transient should not be resource exhaustion")
	}
	if _, err := s.Allocate(25*sim.Minute, req); err != nil {
		t.Errorf("after outage: %v", err)
	}
}

func TestCanAllocateDoesNotCommit(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("STAR")
	req := SliceRequest{VMs: []VMRequest{DefaultListenerVM()}}
	if err := s.CanAllocate(0, req); err != nil {
		t.Fatal(err)
	}
	if s.FreeDedicatedNICs() != 4 {
		t.Error("CanAllocate must not consume resources")
	}
}

func TestDefaultFederationShape(t *testing.T) {
	k := sim.NewKernel()
	f := DefaultFederation(k, 1)
	sites := f.Sites()
	if len(sites) != 28 {
		t.Fatalf("sites = %d", len(sites))
	}
	fpga := 0
	for _, s := range sites {
		spec := s.Spec
		if spec.Uplinks < 1 || spec.Uplinks > 4 {
			t.Errorf("%s uplinks = %d", spec.Name, spec.Uplinks)
		}
		if spec.Downlinks <= spec.Uplinks {
			t.Errorf("%s downlinks %d <= uplinks %d", spec.Name, spec.Downlinks, spec.Uplinks)
		}
		if spec.Name != "UKY" && (spec.DedicatedNICs < 2 || spec.DedicatedNICs > 10) {
			t.Errorf("%s dedicated NICs = %d", spec.Name, spec.DedicatedNICs)
		}
		if spec.FPGANICs > 0 {
			fpga++
		}
	}
	if f.Site("NCSA").Spec.DedicatedNICs != 10 {
		t.Error("NCSA inventory not applied")
	}
	if f.Site("UKY").Spec.DedicatedNICs != 0 {
		t.Error("UKY should lack dedicated NICs")
	}
	if fpga < 5 {
		t.Errorf("only %d FPGA sites", fpga)
	}
	// Determinism.
	g := DefaultFederation(sim.NewKernel(), 1)
	for i := range sites {
		if g.Sites()[i].Spec != sites[i].Spec {
			t.Fatal("DefaultFederation not deterministic")
		}
	}
}

func TestWorkloadSingleSiteFraction(t *testing.T) {
	m := DefaultWorkloadModel()
	recs := m.Generate(7, 8*sim.Week, DefaultFederation(sim.NewKernel(), 1).SiteNames())
	if len(recs) < 1000 {
		t.Fatalf("only %d slices generated", len(recs))
	}
	h := SitesPerSliceHistogram(recs)
	frac := float64(h[1]) / float64(len(recs))
	if frac < 0.63 || frac < 0.60 || frac > 0.70 {
		t.Errorf("single-site fraction = %.3f, want ~0.665", frac)
	}
	if len(h) < 3 {
		t.Error("no multi-site slices")
	}
}

func TestWorkloadLifetimeCDF(t *testing.T) {
	m := DefaultWorkloadModel()
	recs := m.Generate(11, 8*sim.Week, []string{"A", "B", "C"})
	cdf := LifetimeCDF(recs, []sim.Duration{24 * sim.Hour, 8 * sim.Week})
	if cdf[0] < 0.72 || cdf[0] > 0.78 {
		t.Errorf("P(lifetime<=24h) = %.3f, want ~0.75", cdf[0])
	}
	if cdf[1] != 1 {
		t.Errorf("P(lifetime<=8w) = %.3f, want 1 (capped)", cdf[1])
	}
}

func TestWorkloadConcurrency(t *testing.T) {
	m := DefaultWorkloadModel()
	names := DefaultFederation(sim.NewKernel(), 1).SiteNames()
	recs := m.Generate(3, 52*sim.Week, names)
	st := Concurrency(recs, 52*sim.Week, 6*sim.Hour)
	// Fig. 5: mean 85, stddev 52, max 272. Allow generous bands — the
	// model is statistical, the shape is what matters.
	if st.Mean < 60 || st.Mean > 115 {
		t.Errorf("mean concurrency = %.1f, want ~85", st.Mean)
	}
	if st.StdDev < 30 || st.StdDev > 80 {
		t.Errorf("stddev = %.1f, want ~52", st.StdDev)
	}
	if st.Max < 150 || st.Max > 450 {
		t.Errorf("max = %d, want ~272", st.Max)
	}
}

func TestIntensityRampsToDeadline(t *testing.T) {
	m := DefaultWorkloadModel()
	quiet := m.intensity(2 * sim.Week)
	deadline := m.intensity(46 * sim.Week)
	if deadline < quiet*3 {
		t.Errorf("deadline intensity %.2f should dwarf quiet %.2f", deadline, quiet)
	}
	after := m.intensity(48 * sim.Week)
	if after > quiet*1.5 {
		t.Errorf("post-deadline intensity %.2f should fall back", after)
	}
}

func TestConcurrencyEmpty(t *testing.T) {
	st := Concurrency(nil, sim.Week, sim.Hour)
	if st.Mean != 0 || st.Max != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if got := LifetimeCDF(nil, []sim.Duration{sim.Hour}); got[0] != 0 {
		t.Error("empty CDF should be 0")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := DefaultWorkloadModel()
	a := m.Generate(5, 2*sim.Week, []string{"A", "B"})
	b := m.Generate(5, 2*sim.Week, []string{"A", "B"})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Lifetime != b[i].Lifetime {
			t.Fatal("records differ")
		}
	}
}

func TestConnectSites(t *testing.T) {
	f := twoSiteFederation(t)
	l, err := f.ConnectSites("STAR", "TACC", 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rate != 100*units.Gbps {
		t.Errorf("default rate = %v", l.Rate)
	}
	if l.APort != "U1" || l.BPort != "U1" {
		t.Errorf("ports = %s/%s", l.APort, l.BPort)
	}
	// STAR has 2 uplinks, TACC has 1: a second STAR-TACC link exhausts TACC.
	if _, err := f.ConnectSites("STAR", "TACC", 0); err == nil {
		t.Error("TACC has no free uplink; link should fail")
	}
	if _, err := f.ConnectSites("STAR", "STAR", 0); err == nil {
		t.Error("self link should fail")
	}
	if _, err := f.ConnectSites("STAR", "NOPE", 0); err == nil {
		t.Error("unknown site should fail")
	}
	if got := len(f.LinksOf("STAR")); got != 1 {
		t.Errorf("LinksOf = %d", got)
	}
}

func TestTransitInterSite(t *testing.T) {
	f := twoSiteFederation(t)
	l, err := f.ConnectSites("STAR", "TACC", 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := switchsim.Frame{Size: 1500}
	if err := f.TransitInterSite(l, "STAR", frame); err != nil {
		t.Fatal(err)
	}
	star := f.Site("STAR").Switch.Port(l.APort).Counters()
	tacc := f.Site("TACC").Switch.Port(l.BPort).Counters()
	if star.TxBytes != 1500 || star.RxBytes != 0 {
		t.Errorf("STAR uplink counters = %+v", star)
	}
	if tacc.RxBytes != 1500 || tacc.TxBytes != 0 {
		t.Errorf("TACC uplink counters = %+v", tacc)
	}
	if err := f.TransitInterSite(l, "NOPE", frame); err == nil {
		t.Error("off-link site should fail")
	}
}

func TestWireBackbone(t *testing.T) {
	k := sim.NewKernel()
	f := DefaultFederation(k, 1)
	links := f.WireBackbone()
	// Sites with a single uplink can break at most a couple of ring
	// edges; the backbone must still be nearly complete.
	if len(links) < len(f.Sites())-2 {
		t.Errorf("backbone has %d links for %d sites", len(links), len(f.Sites()))
	}
	// No uplink carries two links.
	seen := map[string]bool{}
	for _, l := range f.Links() {
		for _, key := range []string{l.A + "/" + l.APort, l.B + "/" + l.BPort} {
			if seen[key] {
				t.Fatalf("uplink %s used twice", key)
			}
			seen[key] = true
		}
	}
	// Every site is connected.
	for _, s := range f.Sites() {
		if len(f.LinksOf(s.Spec.Name)) == 0 {
			t.Errorf("site %s disconnected", s.Spec.Name)
		}
	}
}

func TestReleaseTypedErrors(t *testing.T) {
	f := twoSiteFederation(t)
	star, tacc := f.Site("STAR"), f.Site("TACC")
	req := SliceRequest{Name: "pw", VMs: []VMRequest{DefaultListenerVM()}}
	sl, err := star.Allocate(0, req)
	if err != nil {
		t.Fatal(err)
	}
	// Releasing at the wrong site is a forged release, not "already gone".
	if err := tacc.Release(sl); !errors.Is(err, ErrWrongSite) {
		t.Errorf("wrong-site release err = %v, want ErrWrongSite", err)
	} else if IsGone(err) {
		t.Error("wrong-site release must not count as already-gone")
	}
	if err := star.Release(sl); err != nil {
		t.Fatalf("first release: %v", err)
	}
	// Double release: the sliver is already gone — remediation treats
	// this as success.
	err = star.Release(sl)
	if !errors.Is(err, ErrAlreadyReleased) {
		t.Errorf("double release err = %v, want ErrAlreadyReleased", err)
	}
	if !IsGone(err) {
		t.Error("double release should be IsGone")
	}
	if err := star.Release(nil); !errors.Is(err, ErrUnknownSliver) {
		t.Errorf("nil sliver err = %v, want ErrUnknownSliver", err)
	}
	if IsGone(ErrUnknownSliver) {
		t.Error("unknown sliver must not count as already-gone")
	}
}

func TestNICPoolIdentityAndAvoidance(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("STAR") // 4 dedicated NICs: 0,1,2,3
	req := SliceRequest{Name: "a", VMs: []VMRequest{DefaultListenerVM()}}
	a, err := s.Allocate(0, req)
	if err != nil {
		t.Fatal(err)
	}
	// Grants are lowest-first, so the first sliver holds NIC 0.
	if len(a.NICs) != 1 || a.NICs[0] != 0 {
		t.Fatalf("first sliver NICs = %v, want [0]", a.NICs)
	}
	// Excluding the free NICs 1 and 2 must grant 3.
	req2 := SliceRequest{Name: "b", VMs: []VMRequest{DefaultListenerVM()}, AvoidNICs: []int{1, 2}}
	b, err := s.Allocate(0, req2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.NICs) != 1 || b.NICs[0] != 3 {
		t.Errorf("avoiding [1 2]: NICs = %v, want [3]", b.NICs)
	}
	// Excluding every remaining free NIC is exhaustion, not success.
	req3 := SliceRequest{Name: "c", VMs: []VMRequest{DefaultListenerVM()}, AvoidNICs: []int{1, 2}}
	if _, err := s.Allocate(0, req3); !errors.Is(err, ErrNoDedicatedNICs) {
		t.Errorf("all grantable NICs excluded: err = %v, want ErrNoDedicatedNICs", err)
	}
	// Free count ignores exclusions (they are per-request).
	if s.FreeDedicatedNICs() != 2 {
		t.Errorf("free NICs = %d, want 2", s.FreeDedicatedNICs())
	}
	// Releases return identities to the pool; the next unconstrained
	// grant takes the lowest again.
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	c, err := s.Allocate(0, SliceRequest{Name: "d", VMs: []VMRequest{DefaultListenerVM()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.NICs) != 1 || c.NICs[0] != 0 {
		t.Errorf("after releasing NIC 0: NICs = %v, want [0]", c.NICs)
	}
}
