package testbed

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Allocation failure modes. Patchwork's iterative back-off reacts
// differently to each: resource exhaustion triggers a scaled-down retry,
// transient back-end errors mark the run Failed.
var (
	// ErrNoDedicatedNICs: the site has no free dedicated NICs (the most
	// common cause of degraded runs in the paper's Fig. 10).
	ErrNoDedicatedNICs = errors.New("testbed: no dedicated NICs available")
	// ErrNoStorage: insufficient free storage for the requested VMs.
	ErrNoStorage = errors.New("testbed: insufficient storage")
	// ErrNoCores: insufficient free CPU cores.
	ErrNoCores = errors.New("testbed: insufficient cores")
	// ErrNoRAM: insufficient free memory.
	ErrNoRAM = errors.New("testbed: insufficient RAM")
	// ErrNoFPGA: no free FPGA NIC at this site.
	ErrNoFPGA = errors.New("testbed: no FPGA NIC available")
	// ErrBackendTransient: the slice allocator itself failed (the
	// Sept 10/11 class of failures in Section 8.1.1). Retrying later may
	// succeed; scaling down will not help.
	ErrBackendTransient = errors.New("testbed: transient back-end failure")
)

// Release failure modes. A remediation supervisor tearing down a slice
// after a site outage needs to tell "the sliver is already gone" (benign
// — the testbed reaped it first; treat as released) apart from a forged
// or misdirected release (a caller bug that must stay loud).
var (
	// ErrAlreadyReleased: the sliver was released before — by us or by
	// the testbed reaping it during an outage.
	ErrAlreadyReleased = errors.New("testbed: sliver already released")
	// ErrWrongSite: the sliver belongs to a different site.
	ErrWrongSite = errors.New("testbed: sliver belongs to another site")
	// ErrUnknownSliver: the site never granted this sliver (forged or
	// mismatched pointer).
	ErrUnknownSliver = errors.New("testbed: unknown sliver")
)

// IsGone reports whether a Release error means the sliver no longer
// exists (already released/reaped) — the outcome the releasing caller
// wanted anyway — rather than a forged or misdirected release.
func IsGone(err error) bool { return errors.Is(err, ErrAlreadyReleased) }

// IsResourceExhaustion reports whether err is a scale-down-able shortage
// rather than a back-end fault.
func IsResourceExhaustion(err error) bool {
	return errors.Is(err, ErrNoDedicatedNICs) || errors.Is(err, ErrNoStorage) ||
		errors.Is(err, ErrNoCores) || errors.Is(err, ErrNoRAM) || errors.Is(err, ErrNoFPGA)
}

// VMRequest asks for one VM plus its NICs. Patchwork's default listening
// node is 2 cores / 8 GB RAM / 100 GB storage / 1 dedicated dual-port NIC
// (Section 6.2.1).
type VMRequest struct {
	Cores         int
	RAM           units.ByteSize
	Storage       units.ByteSize
	DedicatedNICs int
	FPGANICs      int
}

// DefaultListenerVM is Patchwork's standard per-instance request.
func DefaultListenerVM() VMRequest {
	return VMRequest{Cores: 2, RAM: 8 * units.GB, Storage: 100 * units.GB, DedicatedNICs: 1}
}

// SliceRequest is a set of VMs to allocate at one site.
type SliceRequest struct {
	Name string
	VMs  []VMRequest
	// AvoidNICs lists dedicated-NIC IDs the allocator must not grant —
	// the exclusion list a remediation supervisor builds from a failed
	// sliver so a re-allocation lands on different hardware. IDs not in
	// the site's free pool are ignored.
	AvoidNICs []int
}

// totals sums the request's resource demands.
func (r SliceRequest) totals() VMRequest {
	var t VMRequest
	for _, vm := range r.VMs {
		t.Cores += vm.Cores
		t.RAM += vm.RAM
		t.Storage += vm.Storage
		t.DedicatedNICs += vm.DedicatedNICs
		t.FPGANICs += vm.FPGANICs
	}
	return t
}

// Sliver is a granted allocation at one site.
type Sliver struct {
	ID      int
	Site    string
	Request SliceRequest
	Granted sim.Time
	// NICs are the dedicated-NIC IDs granted to this sliver, ascending.
	// They return to the site's free pool on Release and feed the
	// AvoidNICs exclusion list when a supervisor re-allocates away from
	// suspect hardware.
	NICs     []int
	released bool
}

// AddOutage injects a transient back-end failure window [from, to):
// Allocate calls during it return ErrBackendTransient.
func (s *Site) AddOutage(from, to sim.Time) {
	s.outages = append(s.outages, outage{from, to})
}

// SetAllocFault installs (or, with nil, removes) a hook consulted before
// every allocation check. A non-nil error from the hook fails the
// attempt; wrap ErrBackendTransient for retryable faults or one of the
// shortage sentinels to exercise the scale-down path. The fault engine in
// internal/faults uses this for rate-based transient allocator errors.
func (s *Site) SetAllocFault(f func(now sim.Time) error) { s.allocFault = f }

// failureCause labels an allocation error for the obs counters.
func failureCause(err error) string {
	switch {
	case errors.Is(err, ErrBackendTransient):
		return "backend-transient"
	case errors.Is(err, ErrNoDedicatedNICs):
		return "no-dedicated-nics"
	case errors.Is(err, ErrNoFPGA):
		return "no-fpga"
	case errors.Is(err, ErrNoStorage):
		return "no-storage"
	case errors.Is(err, ErrNoCores):
		return "no-cores"
	case errors.Is(err, ErrNoRAM):
		return "no-ram"
	default:
		return "other"
	}
}

// noteAllocFailure counts a failed allocation check by cause.
func (s *Site) noteAllocFailure(err error) {
	if s.obsReg == nil || err == nil {
		return
	}
	s.obsReg.Counter("testbed_alloc_failures_total",
		obs.L("site", s.Spec.Name), obs.L("cause", failureCause(err))).Inc()
}

// CanAllocate performs the paper's "allocation simulation": it checks
// whether the request would succeed right now without committing
// resources (Patchwork runs this to avoid burdening the testbed's
// allocator with doomed large requests).
func (s *Site) CanAllocate(now sim.Time, req SliceRequest) error {
	err := s.canAllocate(now, req)
	s.noteAllocFailure(err)
	return err
}

func (s *Site) canAllocate(now sim.Time, req SliceRequest) error {
	if s.allocFault != nil {
		if err := s.allocFault(now); err != nil {
			return fmt.Errorf("site %s: %w", s.Spec.Name, err)
		}
	}
	for _, o := range s.outages {
		if now >= o.from && now < o.to {
			return fmt.Errorf("site %s: %w", s.Spec.Name, ErrBackendTransient)
		}
	}
	t := req.totals()
	switch {
	case t.DedicatedNICs > len(s.grantableNICs(req.AvoidNICs)):
		return fmt.Errorf("site %s wants %d dedicated NICs, %d grantable (%d free, %d excluded): %w",
			s.Spec.Name, t.DedicatedNICs, len(s.grantableNICs(req.AvoidNICs)),
			len(s.nicFree), len(req.AvoidNICs), ErrNoDedicatedNICs)
	case t.FPGANICs > s.freeFPGANICs:
		return fmt.Errorf("site %s wants %d FPGAs, %d free: %w",
			s.Spec.Name, t.FPGANICs, s.freeFPGANICs, ErrNoFPGA)
	case t.Storage > s.freeStorage:
		return fmt.Errorf("site %s wants %v storage, %v free: %w",
			s.Spec.Name, t.Storage, s.freeStorage, ErrNoStorage)
	case t.Cores > s.freeCores:
		return fmt.Errorf("site %s wants %d cores, %d free: %w",
			s.Spec.Name, t.Cores, s.freeCores, ErrNoCores)
	case t.RAM > s.freeRAM:
		return fmt.Errorf("site %s wants %v RAM, %v free: %w",
			s.Spec.Name, t.RAM, s.freeRAM, ErrNoRAM)
	}
	return nil
}

// Allocate grants the request or returns one of the package's sentinel
// errors (wrapped with context). Failures are counted internally via
// canAllocate so a pre-flight CanAllocate plus the Allocate it gates
// count a doomed request once, not twice.
func (s *Site) Allocate(now sim.Time, req SliceRequest) (*Sliver, error) {
	if err := s.canAllocate(now, req); err != nil {
		s.noteAllocFailure(err)
		return nil, err
	}
	t := req.totals()
	s.freeCores -= t.Cores
	s.freeRAM -= t.RAM
	s.freeStorage -= t.Storage
	s.freeFPGANICs -= t.FPGANICs
	nics := s.takeNICs(t.DedicatedNICs, req.AvoidNICs)
	s.nextID++
	sl := &Sliver{ID: s.nextID, Site: s.Spec.Name, Request: req, Granted: now, NICs: nics}
	s.slivers[sl.ID] = sl
	return sl, nil
}

// grantableNICs returns the free NIC IDs not on the avoid list,
// ascending. The lowest-first order makes allocation deterministic.
func (s *Site) grantableNICs(avoid []int) []int {
	if len(avoid) == 0 {
		return s.nicFree
	}
	excluded := make(map[int]bool, len(avoid))
	for _, id := range avoid {
		excluded[id] = true
	}
	out := make([]int, 0, len(s.nicFree))
	for _, id := range s.nicFree {
		if !excluded[id] {
			out = append(out, id)
		}
	}
	return out
}

// takeNICs removes and returns n grantable NICs (lowest IDs first).
// Callers must have verified availability via canAllocate.
func (s *Site) takeNICs(n int, avoid []int) []int {
	if n == 0 {
		return nil
	}
	granted := append([]int(nil), s.grantableNICs(avoid)[:n]...)
	taken := make(map[int]bool, n)
	for _, id := range granted {
		taken[id] = true
	}
	kept := s.nicFree[:0]
	for _, id := range s.nicFree {
		if !taken[id] {
			kept = append(kept, id)
		}
	}
	s.nicFree = kept
	return granted
}

// Release returns a sliver's resources. Releasing twice, releasing at
// the wrong site, or releasing a sliver the site never granted is a
// typed error (ErrAlreadyReleased / ErrWrongSite / ErrUnknownSliver —
// see IsGone), and none of them touch the free-resource accounting.
func (s *Site) Release(sl *Sliver) error {
	if sl == nil {
		return fmt.Errorf("release of nil sliver at %s: %w", s.Spec.Name, ErrUnknownSliver)
	}
	if sl.released {
		return fmt.Errorf("sliver %d at %s: %w", sl.ID, sl.Site, ErrAlreadyReleased)
	}
	if sl.Site != s.Spec.Name {
		return fmt.Errorf("sliver %d belongs to %s, not %s: %w", sl.ID, sl.Site, s.Spec.Name, ErrWrongSite)
	}
	if got, ok := s.slivers[sl.ID]; !ok || got != sl {
		return fmt.Errorf("sliver %d at %s: %w", sl.ID, sl.Site, ErrUnknownSliver)
	}
	t := sl.Request.totals()
	s.freeCores += t.Cores
	s.freeRAM += t.RAM
	s.freeStorage += t.Storage
	s.freeFPGANICs += t.FPGANICs
	s.nicFree = append(s.nicFree, sl.NICs...)
	sort.Ints(s.nicFree)
	sl.released = true
	delete(s.slivers, sl.ID)
	return nil
}

// FreeDedicatedNICs reports currently free dedicated NICs — the quantity
// Patchwork's discovery step queries before formulating its request.
func (s *Site) FreeDedicatedNICs() int { return len(s.nicFree) }

// FreeFPGANICs reports currently free FPGA NICs.
func (s *Site) FreeFPGANICs() int { return s.freeFPGANICs }

// FreeStorage reports currently free storage.
func (s *Site) FreeStorage() units.ByteSize { return s.freeStorage }

// FreeCores reports currently free cores.
func (s *Site) FreeCores() int { return s.freeCores }

// ActiveSlivers reports how many slivers are currently held.
func (s *Site) ActiveSlivers() int { return len(s.slivers) }
