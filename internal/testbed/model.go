// Package testbed models the FABRIC federated testbed: sites with
// top-of-rack switches, worker-hosted resources (cores, RAM, storage,
// NICs), uplinks between sites, an information model for topology
// queries, a slice allocator with the failure modes Patchwork must
// tolerate, and a statistical workload model of slice activity calibrated
// to the paper's Section 5 study.
package testbed

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

// NICClass distinguishes the reservable NIC types on FABRIC.
type NICClass uint8

// NIC classes.
const (
	// SharedConnectX is a ConnectX NIC multiplexed among many users.
	SharedConnectX NICClass = iota
	// DedicatedConnectX is a single-user dual-port ConnectX NIC — the
	// scarce resource Patchwork competes for (2-6 per site).
	DedicatedConnectX
	// AlveoFPGA is a Xilinx Alveo FPGA NIC, used by Patchwork for
	// offloaded preprocessing.
	AlveoFPGA
)

// String names the class.
func (c NICClass) String() string {
	switch c {
	case SharedConnectX:
		return "shared-connectx"
	case DedicatedConnectX:
		return "dedicated-connectx"
	case AlveoFPGA:
		return "alveo-fpga"
	default:
		return fmt.Sprintf("NICClass(%d)", uint8(c))
	}
}

// PortsPerNIC is the physical port count of FABRIC's dedicated NICs.
const PortsPerNIC = 2

// SiteSpec describes one site's inventory.
type SiteSpec struct {
	Name string
	// Uplinks is the number of switch ports connected to other sites.
	Uplinks int
	// Downlinks is the number of switch ports connected to this site's
	// own servers.
	Downlinks int
	// DedicatedNICs, SharedNICs, FPGANICs count reservable NICs.
	DedicatedNICs int
	SharedNICs    int
	FPGANICs      int
	// Cores, RAM, and Storage are aggregate worker capacity.
	Cores   int
	RAM     units.ByteSize
	Storage units.ByteSize
	// LineRate of switch ports.
	LineRate units.BitRate
}

// Site is a live site: its spec plus a switch and allocation state.
type Site struct {
	Spec   SiteSpec
	Switch *switchsim.Switch

	// sched is the scheduler the site's dataplane runs on: the shared
	// kernel by default, or a per-site lane in sharded execution
	// (internal/lanes).
	sched sim.Scheduler

	// Free capacity (allocations subtract, releases add back).
	freeCores    int
	freeRAM      units.ByteSize
	freeStorage  units.ByteSize
	freeFPGANICs int
	// nicFree is the pool of free dedicated-NIC IDs (0-based, ascending).
	// NICs have identity — a re-allocation can exclude the exact NICs a
	// failed sliver held via SliceRequest.AvoidNICs.
	nicFree []int

	// outages holds injected transient back-end failure windows.
	outages []outage
	// allocFault, when set, can veto any allocation attempt with an
	// error before capacity checks run. It is the probabilistic
	// injection point used by internal/faults; outages cover the
	// deterministic scheduled kind.
	allocFault func(now sim.Time) error

	slivers map[int]*Sliver
	nextID  int

	obsReg *obs.Registry
}

type outage struct{ from, to sim.Time }

// Federation is the set of FABRIC sites plus the simulation kernel they
// share.
type Federation struct {
	Kernel *sim.Kernel
	sites  []*Site
	byName map[string]*Site

	links       []*InterSiteLink
	usedUplinks map[string]bool // "site/port" -> connected
}

// NewFederation builds live sites from specs. Site names must be unique.
func NewFederation(k *sim.Kernel, specs []SiteSpec) (*Federation, error) {
	f := &Federation{Kernel: k, byName: make(map[string]*Site), usedUplinks: make(map[string]bool)}
	for _, spec := range specs {
		if spec.LineRate == 0 {
			spec.LineRate = 100 * units.Gbps
		}
		if _, dup := f.byName[spec.Name]; dup {
			return nil, fmt.Errorf("testbed: duplicate site %q", spec.Name)
		}
		sw := switchsim.New(spec.Name, k)
		for i := 0; i < spec.Uplinks; i++ {
			sw.AddPort(fmt.Sprintf("U%d", i+1), switchsim.RoleUplink, spec.LineRate)
		}
		for i := 0; i < spec.Downlinks; i++ {
			sw.AddPort(fmt.Sprintf("P%d", i+1), switchsim.RoleDownlink, spec.LineRate)
		}
		s := &Site{
			Spec:         spec,
			Switch:       sw,
			sched:        k,
			freeCores:    spec.Cores,
			freeRAM:      spec.RAM,
			freeStorage:  spec.Storage,
			freeFPGANICs: spec.FPGANICs,
			nicFree:      make([]int, spec.DedicatedNICs),
			slivers:      make(map[int]*Sliver),
		}
		for i := range s.nicFree {
			s.nicFree[i] = i
		}
		f.sites = append(f.sites, s)
		f.byName[spec.Name] = s
	}
	return f, nil
}

// SetObs attaches a metrics registry to every site (allocation-failure
// counters) and every site switch (mirror counters). Nil is the default
// and disables platform observability.
func (f *Federation) SetObs(reg *obs.Registry) {
	if reg != nil {
		reg.Help("testbed_alloc_failures_total", "slice allocation failures by site and cause")
	}
	for _, s := range f.sites {
		s.obsReg = reg
		s.Switch.SetObs(reg)
	}
}

// Scheduler returns the scheduler the site's dataplane events run on.
func (s *Site) Scheduler() sim.Scheduler { return s.sched }

// SetScheduler rebinds the site's dataplane — including its switch — to
// a new scheduler (a per-site lane). Call before any dataplane traffic
// is scheduled.
func (s *Site) SetScheduler(sched sim.Scheduler) {
	s.sched = sched
	s.Switch.SetScheduler(sched)
}

// Sites returns all sites in declaration order.
func (f *Federation) Sites() []*Site { return f.sites }

// Site returns the named site, or nil.
func (f *Federation) Site(name string) *Site { return f.byName[name] }

// SiteNames returns site names in declaration order.
func (f *Federation) SiteNames() []string {
	out := make([]string, len(f.sites))
	for i, s := range f.sites {
		out[i] = s.Spec.Name
	}
	return out
}

// PortCount summarizes one site's switch ports for the information-model
// query behind Fig. 2.
type PortCount struct {
	Site      string
	Uplinks   int
	Downlinks int
}

// PortDistribution returns per-site port counts sorted by descending
// downlinks (the presentation order of Fig. 2).
func (f *Federation) PortDistribution() []PortCount {
	out := make([]PortCount, 0, len(f.sites))
	for _, s := range f.sites {
		out = append(out, PortCount{
			Site:      s.Spec.Name,
			Uplinks:   s.Spec.Uplinks,
			Downlinks: s.Spec.Downlinks,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Downlinks > out[j].Downlinks })
	return out
}

// DefaultFederation builds a 28-site federation whose inventories follow
// the paper's study: most sites have a similar, small number of uplinks
// (1-4); every site has many more downlinks than uplinks; dedicated NICs
// number about 2-6 per site; a minority of sites host FPGA NICs (NCSA's
// published inventory — 10 dedicated NICs, 1 FPGA — is included by name).
// The layout is deterministic for a given seed.
func DefaultFederation(k *sim.Kernel, seed uint64) *Federation {
	r := rng.New(seed)
	names := []string{
		"STAR", "NCSA", "UCSD", "MICH", "MASS", "UTAH", "TACC", "WASH",
		"DALL", "SALT", "KANS", "ATLA", "CLEM", "GATECH", "INDI", "MAX",
		"PSC", "RUTG", "UKY", "FIU", "PRIN", "NEWY", "LOSA", "SEAT",
		"AMST", "BRIST", "CERN", "TOKY",
	}
	specs := make([]SiteSpec, 0, len(names))
	for _, name := range names {
		spec := SiteSpec{
			Name:          name,
			Uplinks:       1 + r.Intn(4),   // 1-4
			Downlinks:     10 + r.Intn(21), // 10-30
			DedicatedNICs: 2 + r.Intn(5),   // 2-6
			SharedNICs:    1,
			FPGANICs:      0,
			Cores:         128 + 64*r.Intn(8), // 128-576
			RAM:           units.ByteSize(512+256*r.Intn(6)) * units.GB,
			Storage:       units.ByteSize(20+10*r.Intn(30)) * units.TB,
			LineRate:      100 * units.Gbps,
		}
		if r.Bool(0.4) {
			spec.FPGANICs = 1
		}
		if name == "NCSA" {
			// Inventory published on the FABRIC portal (Section 3).
			spec.DedicatedNICs = 10
			spec.SharedNICs = 1
			spec.FPGANICs = 1
		}
		if name == "UKY" {
			// EDUKY analog: teaching site without dedicated NICs — the one
			// site Patchwork omits.
			spec.DedicatedNICs = 0
			spec.FPGANICs = 0
		}
		specs = append(specs, spec)
	}
	f, err := NewFederation(k, specs)
	if err != nil {
		panic(err) // unreachable: names are unique
	}
	return f
}
