package testbed

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestOutageOverlapsAllocation walks an allocation sequence across an
// outage window: grants before the window, transient failures inside it
// (half-open, so the right edge is allocatable again), and composition
// of overlapping windows.
func TestOutageOverlapsAllocation(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("STAR")
	s.AddOutage(10*sim.Minute, 20*sim.Minute)
	s.AddOutage(18*sim.Minute, 25*sim.Minute)
	req := SliceRequest{VMs: []VMRequest{DefaultListenerVM()}}

	steps := []struct {
		at      sim.Time
		wantErr bool
	}{
		{0, false},
		{10*sim.Minute - 1, false},
		{10 * sim.Minute, true},  // first window opens
		{19 * sim.Minute, true},  // overlap of both windows
		{22 * sim.Minute, true},  // second window only
		{25 * sim.Minute, false}, // half-open: right edge is clear
	}
	var held []*Sliver
	for _, st := range steps {
		sl, err := s.Allocate(st.at, req)
		if st.wantErr {
			if !errors.Is(err, ErrBackendTransient) {
				t.Errorf("Allocate(t=%v) err = %v, want ErrBackendTransient", st.at, err)
			}
			if IsResourceExhaustion(err) {
				t.Errorf("outage at t=%v misclassified as resource exhaustion", st.at)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Allocate(t=%v): %v", st.at, err)
		}
		held = append(held, sl)
	}
	if s.ActiveSlivers() != len(held) {
		t.Errorf("active slivers = %d, want %d", s.ActiveSlivers(), len(held))
	}
}

// TestIsResourceExhaustionClassification pins the retry/scale-down
// decision table: shortages (wrapped or bare) scale down, back-end
// faults and unknown errors do not.
func TestIsResourceExhaustionClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"nics", ErrNoDedicatedNICs, true},
		{"storage", ErrNoStorage, true},
		{"cores", ErrNoCores, true},
		{"ram", ErrNoRAM, true},
		{"fpga", ErrNoFPGA, true},
		{"wrapped-nics", fmt.Errorf("site X: %w", ErrNoDedicatedNICs), true},
		{"double-wrapped", fmt.Errorf("retry: %w", fmt.Errorf("site X: %w", ErrNoCores)), true},
		{"transient", ErrBackendTransient, false},
		{"wrapped-transient", fmt.Errorf("site X: %w", ErrBackendTransient), false},
		{"unknown", errors.New("disk on fire"), false},
	}
	for _, c := range cases {
		if got := IsResourceExhaustion(c.err); got != c.want {
			t.Errorf("%s: IsResourceExhaustion(%v) = %v, want %v", c.name, c.err, got, c.want)
		}
	}
}

// TestReleaseDuringOutageRestoresCapacity: an outage blocks new
// allocations but must not block releases, and the freed capacity must
// be allocatable the moment the outage lifts.
func TestReleaseDuringOutageRestoresCapacity(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("TACC") // 2 dedicated NICs
	req := SliceRequest{VMs: []VMRequest{DefaultListenerVM(), DefaultListenerVM()}}
	sl, err := s.Allocate(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if s.FreeDedicatedNICs() != 0 {
		t.Fatalf("free NICs = %d, want 0", s.FreeDedicatedNICs())
	}
	s.AddOutage(sim.Minute, sim.Hour)
	if err := s.Release(sl); err != nil {
		t.Fatalf("release during outage: %v", err)
	}
	if s.FreeDedicatedNICs() != 2 || s.ActiveSlivers() != 0 {
		t.Errorf("after release: free NICs = %d active = %d", s.FreeDedicatedNICs(), s.ActiveSlivers())
	}
	if _, err := s.Allocate(30*sim.Minute, req); !errors.Is(err, ErrBackendTransient) {
		t.Errorf("during outage err = %v, want transient", err)
	}
	if _, err := s.Allocate(sim.Hour, req); err != nil {
		t.Errorf("after outage: %v", err)
	}
}

// TestReleaseRejectsForeignAndReplayedSlivers is the regression test for
// the double-release accounting bug: a second Release of the same
// sliver, a release at the wrong site, and a forged sliver with a
// colliding ID must all fail without touching the free-resource books.
func TestReleaseRejectsForeignAndReplayedSlivers(t *testing.T) {
	f := twoSiteFederation(t)
	star, tacc := f.Site("STAR"), f.Site("TACC")
	req := SliceRequest{Name: "pw", VMs: []VMRequest{DefaultListenerVM()}}

	slStar, err := star.Allocate(0, req)
	if err != nil {
		t.Fatal(err)
	}
	slTacc, err := tacc.Allocate(0, req)
	if err != nil {
		t.Fatal(err)
	}
	freeNICs, freeCores := star.FreeDedicatedNICs(), star.FreeCores()

	if err := star.Release(nil); err == nil {
		t.Error("release of nil sliver should fail")
	}
	// Wrong site: TACC's sliver 1 collides with STAR's sliver 1 by ID.
	if err := star.Release(slTacc); err == nil {
		t.Error("cross-site release should fail")
	}
	// Forged sliver carrying a valid (site, ID) pair but not the granted
	// object: pointer identity must be enforced.
	forged := &Sliver{ID: slStar.ID, Site: "STAR", Request: req}
	if err := star.Release(forged); err == nil {
		t.Error("release of forged sliver should fail")
	}
	if star.FreeDedicatedNICs() != freeNICs || star.FreeCores() != freeCores {
		t.Fatalf("failed releases changed accounting: NICs %d->%d cores %d->%d",
			freeNICs, star.FreeDedicatedNICs(), freeCores, star.FreeCores())
	}

	if err := star.Release(slStar); err != nil {
		t.Fatalf("legitimate release: %v", err)
	}
	if err := star.Release(slStar); err == nil {
		t.Error("double release should fail")
	}
	if star.FreeDedicatedNICs() != freeNICs+1 {
		t.Errorf("free NICs = %d, want %d", star.FreeDedicatedNICs(), freeNICs+1)
	}
}

// TestAllocReleaseAccountingInvariant hammers a site with a randomized
// allocate/release interleaving and checks the books balance at every
// step and return to the initial state at the end.
func TestAllocReleaseAccountingInvariant(t *testing.T) {
	f := twoSiteFederation(t)
	s := f.Site("STAR")
	initNICs, initCores := s.FreeDedicatedNICs(), s.FreeCores()
	r := rng.New(7)
	var held []*Sliver
	for step := 0; step < 500; step++ {
		if len(held) > 0 && r.Bool(0.5) {
			i := int(r.Int63n(int64(len(held))))
			if err := s.Release(held[i]); err != nil {
				t.Fatalf("step %d: release: %v", step, err)
			}
			held = append(held[:i], held[i+1:]...)
		} else {
			req := SliceRequest{Name: fmt.Sprintf("s%d", step), VMs: []VMRequest{DefaultListenerVM()}}
			sl, err := s.Allocate(sim.Time(step)*sim.Second, req)
			if err != nil {
				if !IsResourceExhaustion(err) {
					t.Fatalf("step %d: unexpected error class: %v", step, err)
				}
				continue
			}
			held = append(held, sl)
		}
		if got := s.FreeDedicatedNICs(); got != initNICs-len(held) {
			t.Fatalf("step %d: free NICs = %d, want %d", step, got, initNICs-len(held))
		}
		if s.ActiveSlivers() != len(held) {
			t.Fatalf("step %d: active = %d, held = %d", step, s.ActiveSlivers(), len(held))
		}
	}
	for _, sl := range held {
		if err := s.Release(sl); err != nil {
			t.Fatal(err)
		}
	}
	if s.FreeDedicatedNICs() != initNICs || s.FreeCores() != initCores {
		t.Errorf("final books: NICs %d/%d cores %d/%d",
			s.FreeDedicatedNICs(), initNICs, s.FreeCores(), initCores)
	}
}
