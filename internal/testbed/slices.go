package testbed

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
)

// SliceRecord is one research slice's lifecycle, as recorded in the
// anonymized slice-creation statistics the FABRIC operator shared with
// the Patchwork authors.
type SliceRecord struct {
	Start    sim.Time
	Lifetime sim.Duration
	// Sites lists the sites the slice uses resources in (>= 1).
	Sites []string
}

// End returns the slice's teardown time.
func (r SliceRecord) End() sim.Time { return r.Start + r.Lifetime }

// WorkloadModel generates a year of slice activity statistically matched
// to the paper's Section 5 findings:
//
//   - 66.5% of slices use a single site (Fig. 3);
//   - 75% of slices last at most 24 hours (Fig. 4);
//   - an average of 85 slices are active at any time, with standard
//     deviation 52 and an observed maximum of 272 (Fig. 5);
//   - activity ramps up before conference deadlines, peaking the week
//     before Supercomputing in November (Fig. 6).
type WorkloadModel struct {
	// BaseArrivalsPerHour is the unmodulated Poisson arrival intensity.
	BaseArrivalsPerHour float64
	// SingleSiteFraction is the probability a slice stays in one site.
	SingleSiteFraction float64
	// DeadlineWeeks are week indices (0-based within the year) that act
	// as activity attractors; intensity ramps up over the preceding
	// weeks. The defaults approximate April and mid-November deadlines.
	DeadlineWeeks []int
}

// DefaultWorkloadModel returns the calibration used for the paper-shape
// experiments.
func DefaultWorkloadModel() WorkloadModel {
	return WorkloadModel{
		BaseArrivalsPerHour: 3.45,
		SingleSiteFraction:  0.665,
		DeadlineWeeks:       []int{15, 46},
	}
}

// DeadlineIntensityAt exposes the activity multiplier at time t for
// utilization modeling (Fig. 6's ramp-ups reuse the same calendar).
func (m WorkloadModel) DeadlineIntensityAt(t sim.Time) float64 {
	return m.intensity(t)
}

// intensity returns the arrival-rate multiplier at time t: a baseline of
// 0.55 rising toward ~3.2x in a deadline week, with an 8-week ramp.
func (m WorkloadModel) intensity(t sim.Time) float64 {
	week := float64(t) / float64(sim.Week)
	mult := 0.55
	for _, dw := range m.DeadlineWeeks {
		d := float64(dw) - week
		if d >= 0 && d < 8 {
			// Linear ramp over the 8 weeks leading in, then cut off after
			// the deadline passes ("ramp-up period to April and November").
			mult += 2.65 * (1 - d/8)
		}
	}
	return mult
}

// sampleLifetime draws a slice lifetime: 75% of mass within 24 hours
// (short, quadratically skewed toward minutes-to-hours), the rest a
// heavy Pareto tail capped at 8 weeks.
func (m WorkloadModel) sampleLifetime(r *rng.Source) sim.Duration {
	if r.Bool(0.75) {
		u := r.Float64()
		return sim.Duration(u * u * float64(24*sim.Hour))
	}
	d := sim.Duration(float64(24*sim.Hour) * r.Pareto(1, 1.3))
	if d > 8*sim.Week {
		d = 8 * sim.Week
	}
	return d
}

// sampleSites picks the sites a slice spans.
func (m WorkloadModel) sampleSites(r *rng.Source, names []string) []string {
	n := 1
	if !r.Bool(m.SingleSiteFraction) {
		// Multi-site slices: geometric-ish tail over 2..8 sites.
		n = 2
		for n < 8 && r.Bool(0.38) {
			n++
		}
	}
	if n > len(names) {
		n = len(names)
	}
	perm := r.Perm(len(names))
	sites := make([]string, n)
	for i := 0; i < n; i++ {
		sites[i] = names[perm[i]]
	}
	sort.Strings(sites)
	return sites
}

// Generate produces slice records covering [0, horizon) using a
// non-homogeneous Poisson arrival process (thinning over hourly steps).
func (m WorkloadModel) Generate(seed uint64, horizon sim.Duration, siteNames []string) []SliceRecord {
	r := rng.New(seed)
	var out []SliceRecord
	step := sim.Hour
	for t := sim.Time(0); t < horizon; t += step {
		mean := m.BaseArrivalsPerHour * m.intensity(t)
		n := r.Poisson(mean)
		for i := 0; i < n; i++ {
			start := t + sim.Time(r.Int63n(int64(step)))
			out = append(out, SliceRecord{
				Start:    start,
				Lifetime: m.sampleLifetime(r),
				Sites:    m.sampleSites(r, siteNames),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SitesPerSliceHistogram counts slices by the number of sites they span.
// Index 0 is unused; index i counts slices spanning i sites.
func SitesPerSliceHistogram(recs []SliceRecord) []int {
	maxSites := 1
	for _, r := range recs {
		if len(r.Sites) > maxSites {
			maxSites = len(r.Sites)
		}
	}
	h := make([]int, maxSites+1)
	for _, r := range recs {
		h[len(r.Sites)]++
	}
	return h
}

// LifetimeCDF returns, for each requested duration, the fraction of
// slices with Lifetime <= that duration.
func LifetimeCDF(recs []SliceRecord, at []sim.Duration) []float64 {
	out := make([]float64, len(at))
	if len(recs) == 0 {
		return out
	}
	for i, d := range at {
		n := 0
		for _, r := range recs {
			if r.Lifetime <= d {
				n++
			}
		}
		out[i] = float64(n) / float64(len(recs))
	}
	return out
}

// ConcurrencyStats summarizes the number of simultaneously active slices
// sampled at a fixed interval (Fig. 5 reports mean 85, stddev 52,
// max 272).
type ConcurrencyStats struct {
	Mean, StdDev float64
	Max          int
	Series       []int
}

// Concurrency samples active-slice counts every interval over [0,
// horizon).
func Concurrency(recs []SliceRecord, horizon sim.Duration, interval sim.Duration) ConcurrencyStats {
	if interval <= 0 {
		interval = 6 * sim.Hour
	}
	// Event sweep: +1 at start, -1 at end.
	type ev struct {
		t sim.Time
		d int
	}
	events := make([]ev, 0, 2*len(recs))
	for _, r := range recs {
		events = append(events, ev{r.Start, +1}, ev{r.End(), -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].d < events[j].d // ends before starts at ties
	})
	var series []int
	cur, ei := 0, 0
	for t := sim.Time(0); t < sim.Time(horizon); t += interval {
		for ei < len(events) && events[ei].t <= t {
			cur += events[ei].d
			ei++
		}
		series = append(series, cur)
	}
	var stats ConcurrencyStats
	stats.Series = series
	if len(series) == 0 {
		return stats
	}
	var sum, sumSq float64
	for _, v := range series {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
		if v > stats.Max {
			stats.Max = v
		}
	}
	n := float64(len(series))
	stats.Mean = sum / n
	stats.StdDev = math.Sqrt(sumSq/n - stats.Mean*stats.Mean)
	return stats
}
