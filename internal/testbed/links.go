package testbed

import (
	"fmt"
	"sort"

	"repro/internal/switchsim"
	"repro/internal/units"
)

// InterSiteLink joins one uplink port of each of two sites. FABRIC's
// inter-site links have heterogeneous capacities and are shared (some
// with non-FABRIC users), so the link's rate may be below the port rate.
type InterSiteLink struct {
	A, B         string // site names
	APort, BPort string // uplink port names on each switch
	Rate         units.BitRate
}

// String renders "STAR/U1 <-> TACC/U2 (100Gbps)".
func (l InterSiteLink) String() string {
	return fmt.Sprintf("%s/%s <-> %s/%s (%v)", l.A, l.APort, l.B, l.BPort, l.Rate)
}

// ConnectSites records an inter-site link between free uplink ports of
// the two sites. Each uplink port carries at most one link.
func (f *Federation) ConnectSites(a, b string, rate units.BitRate) (*InterSiteLink, error) {
	sa, sb := f.Site(a), f.Site(b)
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("testbed: unknown site in link %s-%s", a, b)
	}
	if a == b {
		return nil, fmt.Errorf("testbed: site %s cannot link to itself", a)
	}
	pa, err := f.freeUplink(sa)
	if err != nil {
		return nil, err
	}
	pb, err := f.freeUplink(sb)
	if err != nil {
		return nil, err
	}
	if rate == 0 {
		rate = 100 * units.Gbps
	}
	l := &InterSiteLink{A: a, B: b, APort: pa, BPort: pb, Rate: rate}
	f.links = append(f.links, l)
	f.usedUplinks[a+"/"+pa] = true
	f.usedUplinks[b+"/"+pb] = true
	return l, nil
}

// freeUplink returns the site's first unconnected uplink port.
func (f *Federation) freeUplink(s *Site) (string, error) {
	for _, name := range s.Switch.PortNames() {
		p := s.Switch.Port(name)
		if p == nil || p.Role != switchsim.RoleUplink {
			continue
		}
		if !f.usedUplinks[s.Spec.Name+"/"+name] {
			return name, nil
		}
	}
	return "", fmt.Errorf("testbed: site %s has no free uplink port", s.Spec.Name)
}

// Links returns the federation's inter-site links.
func (f *Federation) Links() []*InterSiteLink {
	return append([]*InterSiteLink(nil), f.links...)
}

// LinksOf returns the links touching a site.
func (f *Federation) LinksOf(site string) []*InterSiteLink {
	var out []*InterSiteLink
	for _, l := range f.links {
		if l.A == site || l.B == site {
			out = append(out, l)
		}
	}
	return out
}

// TransitInterSite records a frame crossing the link from site `from` to
// the other side: Rx at the origin's uplink (traffic arriving at the
// switch from inside the site, heading out) is modeled as Tx out of the
// origin uplink and Rx into the peer's uplink — the counters that
// telemetry (and thus uplink-biased profiling) observes.
func (f *Federation) TransitInterSite(l *InterSiteLink, from string, frame switchsim.Frame) error {
	var fromSite, toSite *Site
	var fromPort, toPort string
	switch from {
	case l.A:
		fromSite, fromPort = f.Site(l.A), l.APort
		toSite, toPort = f.Site(l.B), l.BPort
	case l.B:
		fromSite, fromPort = f.Site(l.B), l.BPort
		toSite, toPort = f.Site(l.A), l.APort
	default:
		return fmt.Errorf("testbed: site %s not on link %v", from, l)
	}
	if err := fromSite.Switch.Transit(fromPort, switchsim.DirTx, frame); err != nil {
		return err
	}
	return toSite.Switch.Transit(toPort, switchsim.DirRx, frame)
}

// WireBackbone connects the federation's sites into a ring plus chords,
// approximating FABRIC's partially-meshed national/international
// topology. It stops adding links when uplink ports run out. Returns the
// links created.
func (f *Federation) WireBackbone() []*InterSiteLink {
	names := f.SiteNames()
	if len(names) < 2 {
		return nil
	}
	var made []*InterSiteLink
	// Ring.
	for i := range names {
		a, b := names[i], names[(i+1)%len(names)]
		if len(names) == 2 && i == 1 {
			break // avoid a duplicate 2-site "ring"
		}
		if l, err := f.ConnectSites(a, b, 100*units.Gbps); err == nil {
			made = append(made, l)
		}
	}
	// Chords: connect site i to i+len/2 where ports remain.
	half := len(names) / 2
	for i := 0; i < half; i++ {
		if l, err := f.ConnectSites(names[i], names[i+half], 100*units.Gbps); err == nil {
			made = append(made, l)
		}
	}
	sort.Slice(made, func(i, j int) bool { return made[i].String() < made[j].String() })
	return made
}
