package patchwork

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// Coordinator is the component that runs outside the testbed: it
// configures Patchwork, starts it on the selected sites, gathers the
// resulting bundles, and yields resources back (Fig. 7, steps 1-5).
type Coordinator struct {
	Federation *testbed.Federation
	Store      *telemetry.Store
	Poller     *telemetry.Poller

	cfg Config
	r   *rng.Source

	// instances routes remediation actions to running site instances.
	instances map[string]*siteInstance
}

// NewCoordinator wires a coordinator to a federation and its telemetry.
func NewCoordinator(f *testbed.Federation, store *telemetry.Store, poller *telemetry.Poller, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Coordinator{
		Federation: f, Store: store, Poller: poller,
		cfg: cfg,
		r:   rng.New(cfg.Seed ^ 0x70617463), // "patc"
	}, nil
}

// Profile is the result of one coordinated run across sites.
type Profile struct {
	// Bundles holds one bundle per profiled site, in site order.
	Bundles []Bundle
	// Started and Finished bound the run in virtual time.
	Started, Finished sim.Time
}

// OutcomeCounts tallies bundles per outcome (the Fig. 10 quantities).
func (p *Profile) OutcomeCounts() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, b := range p.Bundles {
		out[b.Outcome]++
	}
	return out
}

// SuccessRate is the fraction of sites whose outcome was Success or
// Degraded (profiling completed).
func (p *Profile) SuccessRate() float64 {
	if len(p.Bundles) == 0 {
		return 0
	}
	ok := 0
	for _, b := range p.Bundles {
		if b.Outcome == OutcomeSuccess || b.Outcome == OutcomeDegraded {
			ok++
		}
	}
	return float64(ok) / float64(len(p.Bundles))
}

// targetSites resolves the configured site list.
func (c *Coordinator) targetSites() ([]*testbed.Site, error) {
	if len(c.cfg.Sites) == 0 {
		if c.cfg.Mode == SingleExperiment {
			return nil, fmt.Errorf("patchwork: single-experiment mode requires sites")
		}
		return c.Federation.Sites(), nil
	}
	var out []*testbed.Site
	for _, name := range c.cfg.Sites {
		s := c.Federation.Site(name)
		if s == nil {
			return nil, fmt.Errorf("patchwork: unknown site %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// Start launches Patchwork on every target site and invokes done with
// the gathered profile when the last site finishes. The simulation
// kernel must be run (or stepped) by the caller for progress to happen.
func (c *Coordinator) Start(done func(*Profile, error)) {
	sites, err := c.targetSites()
	if err != nil {
		done(nil, err)
		return
	}
	k := c.Federation.Kernel
	profile := &Profile{Started: k.Now()}
	expSpan := c.cfg.Tracer.Start("experiment",
		obs.L("mode", c.cfg.Mode.String()), obs.L("sites", fmt.Sprintf("%d", len(sites))))
	remaining := len(sites)
	if remaining == 0 {
		profile.Finished = k.Now()
		expSpan.End()
		done(profile, nil)
		return
	}
	bundles := make([]Bundle, len(sites))
	c.instances = make(map[string]*siteInstance, len(sites))
	for i, site := range sites {
		i, site := i, site
		inst := &siteInstance{
			cfg:        c.cfg,
			site:       site,
			store:      c.Store,
			poller:     c.Poller,
			kernel:     k,
			r:          c.r.Split(),
			parentSpan: expSpan,
		}
		inst.bundle.Site = site.Spec.Name
		c.instances[site.Spec.Name] = inst
		// Stagger starts slightly: the coordinator contacts sites one at
		// a time (and the testbed's allocator handles small slices more
		// happily than large ones).
		k.After(sim.Duration(i)*sim.Second, func() {
			inst.run(func(b Bundle) {
				bundles[i] = b
				remaining--
				if remaining == 0 {
					profile.Bundles = bundles
					profile.Finished = k.Now()
					expSpan.End()
					done(profile, nil)
				}
			})
		})
	}
}

// RemediateSite executes one remediation action against the named
// site's running instance. It implements the remedy supervisor's Target
// contract: the action strings are remedy's catalog, the note describes
// what changed, and an error means this attempt failed (the supervisor
// retries under its budgets). All mutations happen synchronously on the
// caller's kernel event, keeping remediation deterministic.
func (c *Coordinator) RemediateSite(action, site string) (string, error) {
	// Storage-error alerts are campaign-scoped (the artifact volume is
	// shared, so the metric carries no site label); the supervisor routes
	// them here with the wildcard site and the action fans out.
	if action == "free-space" && site == "*" {
		return c.freeSpaceAll()
	}
	inst := c.instances[site]
	if inst == nil {
		return "", fmt.Errorf("patchwork: no instance at site %q", site)
	}
	if inst.finished {
		return "", fmt.Errorf("patchwork: instance at %q already finished", site)
	}
	if inst.done == nil {
		return "", fmt.Errorf("patchwork: instance at %q not started yet", site)
	}
	switch action {
	case "restart-listener":
		return inst.remediateRestart()
	case "reallocate":
		return inst.remediateReallocate()
	case "rearm-mirror":
		return inst.remediateRearmMirror()
	case "rotate-storage":
		return inst.remediateRotateStorage()
	case "free-space":
		return inst.remediateFreeSpace()
	}
	return "", fmt.Errorf("patchwork: unknown remediation action %q", action)
}

// PauseCapture pauses (or resumes) every capture engine across all
// running instances — the campaign's graceful-ENOSPC lever: when
// artifact writes start failing for lack of space, capture stops
// filling the disk until a free-space remediation lands. Returns how
// many engines changed state.
func (c *Coordinator) PauseCapture(p bool) int {
	n := 0
	for _, inst := range c.instances {
		if inst == nil || inst.finished {
			continue
		}
		n += inst.pauseCapture(p)
	}
	return n
}

// freeSpaceAll fans the free-space action out to every running
// instance, in site order so notes and mutation logs stay
// deterministic.
func (c *Coordinator) freeSpaceAll() (string, error) {
	sites := make([]string, 0, len(c.instances))
	for site, inst := range c.instances {
		if inst == nil || inst.finished || inst.done == nil {
			continue
		}
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var notes []string
	for _, site := range sites {
		note, err := c.instances[site].remediateFreeSpace()
		if err != nil {
			continue // nothing to free there; try the rest
		}
		notes = append(notes, site+": "+note)
	}
	if len(notes) == 0 {
		return "", fmt.Errorf("patchwork: free-space: no running instance had anything to free")
	}
	return strings.Join(notes, "; "), nil
}

// Run is the synchronous convenience wrapper: it starts the profile and
// drives the kernel until completion.
func (c *Coordinator) Run() (*Profile, error) {
	var out *Profile
	var outErr error
	finished := false
	c.Start(func(p *Profile, err error) {
		out, outErr = p, err
		finished = true
	})
	k := c.Federation.Kernel
	for !finished {
		if !k.Step() {
			return nil, fmt.Errorf("patchwork: simulation stalled before profile completion")
		}
	}
	return out, outErr
}

// SortedPortsSampled returns the union of sampled ports across bundles,
// sorted, for coverage reporting.
func (p *Profile) SortedPortsSampled() []string {
	seen := map[string]bool{}
	for _, b := range p.Bundles {
		for _, port := range b.PortsSampled {
			seen[b.Site+"/"+port] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
