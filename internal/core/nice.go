package patchwork

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/testbed"
)

// NicePolicy implements the paper's future-work "nice factor" (Sections
// 6.3 and 9): a controller that scales Patchwork's resource footprint at
// runtime according to what the testbed has available, so the profiler
// does not impede the experiments it exists to observe.
//
// The scale-down signal is the one the paper identifies as the open
// problem: Patchwork cannot know directly when other researchers are
// being starved, so the policy uses free dedicated NICs at the site as
// the proxy — if few remain, Patchwork yields one of its own; when
// plenty are free again, it grows back toward its configured maximum.
type NicePolicy struct {
	// ScaleDownFreeNICs: when the site's free dedicated NICs fall to or
	// below this value and Patchwork holds more than MinInstances, it
	// releases one listener at the next cycle boundary.
	ScaleDownFreeNICs int
	// ScaleUpFreeNICs: when free NICs rise to or above this value,
	// Patchwork re-acquires one listener (never exceeding the configured
	// InstancesWanted).
	ScaleUpFreeNICs int
	// MinInstances is the floor Patchwork keeps even under pressure
	// (default 1 — dropping to zero would end the profile).
	MinInstances int
}

// Validate checks the policy's thresholds.
func (p *NicePolicy) Validate() error {
	if p.ScaleDownFreeNICs < 0 || p.ScaleUpFreeNICs <= p.ScaleDownFreeNICs {
		return fmt.Errorf("patchwork: nice policy thresholds %d/%d invalid (need down < up)",
			p.ScaleDownFreeNICs, p.ScaleUpFreeNICs)
	}
	return nil
}

func (p *NicePolicy) minInstances() int {
	if p.MinInstances < 1 {
		return 1
	}
	return p.MinInstances
}

// ScaleEvent records one runtime footprint change.
type ScaleEvent struct {
	At       sim.Time
	From, To int
	Reason   string
}

// String renders "t=... 2->1 (site down to 0 free NICs)".
func (e ScaleEvent) String() string {
	return fmt.Sprintf("t=%v %d->%d (%s)", e.At, e.From, e.To, e.Reason)
}

// applyNicePolicy runs at each cycle boundary. A nil policy is a no-op
// (the deployed system's fixed-footprint behaviour).
func (si *siteInstance) applyNicePolicy() {
	p := si.cfg.Nice
	if p == nil {
		return
	}
	free := si.site.FreeDedicatedNICs()
	now := si.kernel.Now()
	switch {
	case free <= p.ScaleDownFreeNICs && si.granted() > p.minInstances():
		// Yield a listener: release the most recently acquired sliver.
		last := si.slivers[len(si.slivers)-1]
		if err := si.site.Release(last); err != nil {
			si.logf(LevelError, "nice: releasing listener: %v", err)
			return
		}
		from := len(si.slivers)
		si.slivers = si.slivers[:len(si.slivers)-1]
		si.noteMutation("release", fmt.Sprintf("sliver=%d reason=nice", last.ID))
		ev := ScaleEvent{At: now, From: from, To: si.granted(),
			Reason: fmt.Sprintf("site down to %d free NICs", free)}
		si.bundle.ScaleEvents = append(si.bundle.ScaleEvents, ev)
		si.logf(LevelInfo, "nice: scaled down %s", ev)
	case free >= p.ScaleUpFreeNICs && si.granted() < si.cfg.InstancesWanted:
		req := defaultRequest(fmt.Sprintf("patchwork-%s-nice", si.site.Spec.Name), 1)
		sliver, err := si.site.Allocate(now, req)
		if err != nil {
			if !testbed.IsResourceExhaustion(err) {
				si.logf(LevelWarn, "nice: scale-up failed: %v", err)
			}
			return
		}
		from := len(si.slivers)
		si.slivers = append(si.slivers, sliver)
		si.noteMutation("setup", fmt.Sprintf("sliver=%d nics=%v reason=nice", sliver.ID, sliver.NICs))
		ev := ScaleEvent{At: now, From: from, To: si.granted(),
			Reason: fmt.Sprintf("site back to %d free NICs", free)}
		si.bundle.ScaleEvents = append(si.bundle.ScaleEvents, ev)
		si.logf(LevelInfo, "nice: scaled up %s", ev)
	}
}
