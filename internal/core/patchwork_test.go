package patchwork

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/capture"
	"repro/internal/pcap"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
	"repro/internal/units"
)

// testEnv is a small federation with telemetry and traffic.
type testEnv struct {
	k       *sim.Kernel
	fed     *testbed.Federation
	store   *telemetry.Store
	poller  *telemetry.Poller
	drivers []*TrafficDriver
}

func newEnv(t testing.TB, nSites int) *testEnv {
	t.Helper()
	k := sim.NewKernel()
	specs := make([]testbed.SiteSpec, nSites)
	for i := range specs {
		specs[i] = testbed.SiteSpec{
			Name: "SITE" + string(rune('A'+i)), Uplinks: 2, Downlinks: 10,
			DedicatedNICs: 3, Cores: 64, RAM: 256 * units.GB, Storage: 2 * units.TB,
		}
	}
	fed, err := testbed.NewFederation(k, specs)
	if err != nil {
		t.Fatal(err)
	}
	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, 30*sim.Second)
	profiles := trafficgen.MakeSiteProfiles(7, nSites)
	env := &testEnv{k: k, fed: fed, store: store, poller: poller}
	for i, s := range fed.Sites() {
		poller.Watch(s.Switch)
		gen := trafficgen.NewGenerator(profiles[i], uint64(100+i))
		d := NewTrafficDriver(k, s, gen, nil)
		d.WindowFrames = 120
		env.drivers = append(env.drivers, d)
		d.Start()
	}
	poller.Start()
	return env
}

func (e *testEnv) stop() {
	for _, d := range e.drivers {
		d.Stop()
	}
	e.poller.Stop()
}

func quickConfig() Config {
	return Config{
		Mode:            AllExperiment,
		SampleDuration:  2 * sim.Second,
		SampleInterval:  4 * sim.Second,
		SamplesPerRun:   2,
		Runs:            3,
		InstancesWanted: 1,
		Seed:            42,
	}
}

func runProfile(t testing.TB, env *testEnv, cfg Config) *Profile {
	t.Helper()
	coord, err := NewCoordinator(env.fed, env.store, env.poller, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prof *Profile
	var perr error
	finished := false
	coord.Start(func(p *Profile, err error) { prof, perr = p, err; finished = true })
	deadline := env.k.Now() + 2*sim.Hour
	for !finished && env.k.Now() < deadline {
		if !env.k.Step() {
			break
		}
	}
	env.stop()
	env.k.RunUntil(env.k.Now() + sim.Second)
	if !finished {
		t.Fatal("profile did not finish")
	}
	if perr != nil {
		t.Fatalf("profile error: %v", perr)
	}
	return prof
}

func TestEndToEndProfile(t *testing.T) {
	env := newEnv(t, 3)
	prof := runProfile(t, env, quickConfig())
	if len(prof.Bundles) != 3 {
		t.Fatalf("bundles = %d", len(prof.Bundles))
	}
	for _, b := range prof.Bundles {
		if b.Outcome != OutcomeSuccess {
			t.Errorf("%s outcome = %v (%s)", b.Site, b.Outcome, b.FailureReason)
		}
		if len(b.CompressedPcaps) == 0 {
			t.Errorf("%s has no captures", b.Site)
		}
		if len(b.Samples) == 0 {
			t.Errorf("%s has no sample records", b.Site)
		}
		if len(b.Logs) == 0 {
			t.Errorf("%s has no logs", b.Site)
		}
		if len(b.PortsSampled) == 0 {
			t.Errorf("%s sampled no ports", b.Site)
		}
	}
	if prof.SuccessRate() != 1 {
		t.Errorf("success rate = %v", prof.SuccessRate())
	}
	if prof.Finished <= prof.Started {
		t.Error("profile duration not positive")
	}
}

func TestBundlePcapsDecodeAndDigest(t *testing.T) {
	env := newEnv(t, 1)
	prof := runProfile(t, env, quickConfig())
	b := prof.Bundles[0]
	raw, err := b.DecompressPcaps()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("no pcaps")
	}
	totalFrames := 0
	for _, data := range raw {
		rd, err := pcap.NewReader(strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		acap, err := analysis.Digest(b.Site, rd)
		if err != nil {
			t.Fatal(err)
		}
		totalFrames += len(acap.Records)
		for _, rec := range acap.Records {
			if rec.StoredLen > 200 {
				t.Fatalf("record stored %d > truncation 200", rec.StoredLen)
			}
			if len(rec.Stack) == 0 {
				t.Fatal("record with empty stack")
			}
		}
	}
	if totalFrames == 0 {
		t.Error("no frames captured end to end")
	}
}

func TestModeValidation(t *testing.T) {
	env := newEnv(t, 1)
	defer env.stop()
	cfg := quickConfig()
	cfg.Mode = SingleExperiment
	cfg.Sites = nil
	if _, err := NewCoordinator(env.fed, env.store, env.poller, cfg); err == nil {
		t.Error("single-experiment without sites should fail")
	}
	cfg.Sites = []string{"NOPE"}
	coord, err := NewCoordinator(env.fed, env.store, env.poller, cfg)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	coord.Start(func(p *Profile, err error) {
		called = true
		if err == nil {
			t.Error("unknown site should error")
		}
	})
	if !called {
		t.Error("done not called for bad site")
	}
}

func TestSingleExperimentModeOnlyTouchesSliceSites(t *testing.T) {
	env := newEnv(t, 3)
	cfg := quickConfig()
	cfg.Mode = SingleExperiment
	cfg.Sites = []string{"SITEB"}
	prof := runProfile(t, env, cfg)
	if len(prof.Bundles) != 1 || prof.Bundles[0].Site != "SITEB" {
		t.Errorf("bundles = %+v", prof.Bundles)
	}
}

func TestBackoffDegraded(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	// Consume NICs so only 1 of the 3 remains; wanting 2 forces back-off.
	pre, err := site.Allocate(0, testbed.SliceRequest{Name: "other", VMs: []testbed.VMRequest{
		{DedicatedNICs: 2, Cores: 2, RAM: units.GB, Storage: units.GB},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = site.Release(pre) }()
	cfg := quickConfig()
	cfg.InstancesWanted = 2
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if b.Outcome != OutcomeDegraded {
		t.Errorf("outcome = %v, want degraded (%s)", b.Outcome, b.FailureReason)
	}
	if b.InstancesGranted != 1 || b.InstancesRequested != 2 {
		t.Errorf("instances = %d/%d", b.InstancesGranted, b.InstancesRequested)
	}
}

func TestNoNICsFails(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	if _, err := site.Allocate(0, testbed.SliceRequest{Name: "hog", VMs: []testbed.VMRequest{
		{DedicatedNICs: 3, Cores: 2, RAM: units.GB, Storage: units.GB},
	}}); err != nil {
		t.Fatal(err)
	}
	prof := runProfile(t, env, quickConfig())
	b := prof.Bundles[0]
	if b.Outcome != OutcomeFailed {
		t.Errorf("outcome = %v, want failed", b.Outcome)
	}
	if !strings.Contains(b.FailureReason, "NIC") {
		t.Errorf("reason = %q", b.FailureReason)
	}
}

func TestBackendOutageFails(t *testing.T) {
	env := newEnv(t, 1)
	env.fed.Sites()[0].AddOutage(0, sim.Hour)
	prof := runProfile(t, env, quickConfig())
	b := prof.Bundles[0]
	if b.Outcome != OutcomeFailed {
		t.Errorf("outcome = %v, want failed", b.Outcome)
	}
	if !strings.Contains(b.FailureReason, "backend") {
		t.Errorf("reason = %q", b.FailureReason)
	}
}

func TestCrashInjectionIncomplete(t *testing.T) {
	env := newEnv(t, 1)
	cfg := quickConfig()
	cfg.CrashProbability = 1
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if b.Outcome != OutcomeIncomplete {
		t.Errorf("outcome = %v, want incomplete", b.Outcome)
	}
}

func TestStorageWatchdog(t *testing.T) {
	env := newEnv(t, 1)
	cfg := quickConfig()
	cfg.StorageLimitBytes = 1024 // absurdly small: watchdog must fire
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if b.Outcome != OutcomeIncomplete {
		t.Errorf("outcome = %v, want incomplete (out of storage)", b.Outcome)
	}
	if !strings.Contains(b.FailureReason, "storage") {
		t.Errorf("reason = %q", b.FailureReason)
	}
}

func TestResourcesReleasedAfterRun(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	before := site.FreeDedicatedNICs()
	_ = runProfile(t, env, quickConfig())
	if site.FreeDedicatedNICs() != before {
		t.Errorf("NICs leaked: %d -> %d", before, site.FreeDedicatedNICs())
	}
	if site.ActiveSlivers() != 0 {
		t.Errorf("slivers leaked: %d", site.ActiveSlivers())
	}
}

func TestPortCyclingCoversMultiplePorts(t *testing.T) {
	env := newEnv(t, 1)
	cfg := quickConfig()
	cfg.Runs = 6
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	// 6 cycles with 2 egress ports should touch more ports than a single
	// cycle could.
	if len(b.PortsSampled) <= 2 {
		t.Errorf("ports sampled = %v, cycling ineffective", b.PortsSampled)
	}
}

func TestCongestionDetection(t *testing.T) {
	// Saturate one port far beyond the egress line rate and verify the
	// congestion detector flags the sample.
	k := sim.NewKernel()
	fed, err := testbed.NewFederation(k, []testbed.SiteSpec{{
		Name: "HOT", Uplinks: 1, Downlinks: 6, DedicatedNICs: 1,
		Cores: 16, RAM: 64 * units.GB, Storage: units.TB,
		LineRate: 10 * units.Mbps, // tiny line rate: easy to exceed
	}})
	if err != nil {
		t.Fatal(err)
	}
	store := telemetry.NewStore()
	poller := telemetry.NewPoller(k, store, sim.Second)
	site := fed.Sites()[0]
	poller.Watch(site.Switch)
	poller.Start()
	// Blast P1 with both directions at ~4x line rate.
	blast := k.Every(10*sim.Millisecond, func(sim.Time) {
		f := switchsim.Frame{Size: 50000}
		_ = site.Switch.Transit("P1", switchsim.DirBoth, f)
	})
	_ = blast
	cfg := quickConfig()
	cfg.Selector = &FixedSelector{Ports: []string{"P1"}}
	coord, err := NewCoordinator(fed, store, poller, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prof *Profile
	finished := false
	coord.Start(func(p *Profile, err error) {
		if err != nil {
			t.Errorf("profile error: %v", err)
		}
		prof, finished = p, true
	})
	for !finished {
		if !k.Step() {
			t.Fatal("stalled")
		}
	}
	blast.Stop()
	b := prof.Bundles[0]
	if len(b.Congestion) == 0 {
		t.Error("no congestion events detected on saturated mirror")
	}
	for _, ev := range b.Congestion {
		if ev.OfferedBps <= ev.CapacityBps {
			t.Errorf("event offered %v <= capacity %v", ev.OfferedBps, ev.CapacityBps)
		}
	}
}

func TestSelectorKinds(t *testing.T) {
	env := newEnv(t, 1)
	defer env.stop()
	site := env.fed.Sites()[0]
	env.k.RunUntil(2 * sim.Minute) // accumulate telemetry
	ctx := &SelectContext{
		Site: site, Store: env.store,
		Candidates: site.Switch.PortNames()[:8],
		History:    map[string]int{},
		Cycle:      0, Want: 2,
		Rand:   rng.New(1),
		Window: 2 * sim.Minute,
	}
	bb := (&BusiestBiasSelector{N: 3}).SelectPorts(ctx)
	if len(bb) == 0 || len(bb) > 2 {
		t.Errorf("busiest-bias = %v", bb)
	}
	fx := (&FixedSelector{Ports: []string{"P3", "P4", "P9"}}).SelectPorts(ctx)
	if len(fx) != 2 || fx[0] != "P3" || fx[1] != "P4" {
		t.Errorf("fixed = %v", fx)
	}
	up := (&UplinkSelector{}).SelectPorts(ctx)
	for _, p := range up {
		if !strings.HasPrefix(p, "U") {
			t.Errorf("uplink selector chose %v", up)
		}
	}
	all0 := (&AllPortsSelector{}).SelectPorts(ctx)
	ctx.Cycle = 1
	all1 := (&AllPortsSelector{}).SelectPorts(ctx)
	if len(all0) != 2 || len(all1) != 2 || all0[0] == all1[0] {
		t.Errorf("all-ports rotation: %v then %v", all0, all1)
	}
}

func TestBusiestBiasFairness(t *testing.T) {
	// Over many cycles the heuristic must not starve the less-busy port.
	env := newEnv(t, 1)
	defer env.stop()
	site := env.fed.Sites()[0]
	env.k.RunUntil(3 * sim.Minute)
	hist := map[string]int{}
	counts := map[string]int{}
	sel := &BusiestBiasSelector{N: 3}
	r := rng.New(9)
	for cycle := 0; cycle < 30; cycle++ {
		ctx := &SelectContext{
			Site: site, Store: env.store,
			Candidates: site.Switch.PortNames()[:8],
			History:    hist, Cycle: cycle, Want: 1,
			Rand: r, Window: 3 * sim.Minute,
		}
		ports := sel.SelectPorts(ctx)
		for _, p := range ports {
			hist[p] = cycle
			counts[p]++
		}
	}
	if len(counts) < 2 {
		t.Errorf("selection concentrated on %v", counts)
	}
}

func TestOutcomeAndModeStrings(t *testing.T) {
	if OutcomeSuccess.String() != "success" || OutcomeIncomplete.String() != "incomplete" {
		t.Error("outcome names")
	}
	if AllExperiment.String() != "all-experiment" || SingleExperiment.String() != "single-experiment" {
		t.Error("mode names")
	}
	if !strings.Contains((LogEvent{At: 0, Level: LevelWarn, Message: "x"}).String(), "warn x") {
		t.Error("log event format")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SampleDuration != 20*sim.Second || cfg.SampleInterval != 5*sim.Minute {
		t.Errorf("sampling defaults = %v/%v", cfg.SampleDuration, cfg.SampleInterval)
	}
	if cfg.TruncateBytes != 200 {
		t.Errorf("truncation default = %d", cfg.TruncateBytes)
	}
	if cfg.Method != capture.MethodTcpdump {
		t.Errorf("method default = %v", cfg.Method)
	}
	bad := Config{CrashProbability: 2}
	if err := bad.Validate(); err == nil {
		t.Error("bad crash probability should fail validation")
	}
}
