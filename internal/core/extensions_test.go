package patchwork

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/units"
)

// --- NicePolicy (future-work "nice factor") ---

func TestNicePolicyValidate(t *testing.T) {
	good := &NicePolicy{ScaleDownFreeNICs: 0, ScaleUpFreeNICs: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good policy rejected: %v", err)
	}
	bad := &NicePolicy{ScaleDownFreeNICs: 3, ScaleUpFreeNICs: 2}
	if err := bad.Validate(); err == nil {
		t.Error("down >= up should fail")
	}
	cfg := quickConfig()
	cfg.Nice = bad
	if err := cfg.Validate(); err == nil {
		t.Error("config with bad nice policy should fail validation")
	}
}

func TestNiceScalesDownUnderPressure(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0] // 3 dedicated NICs
	cfg := quickConfig()
	cfg.InstancesWanted = 2
	cfg.Runs = 6
	cfg.Nice = &NicePolicy{ScaleDownFreeNICs: 0, ScaleUpFreeNICs: 2}

	// Mid-run, another experiment grabs the remaining NIC, dropping free
	// NICs to 0 and triggering a scale-down at the next cycle.
	var hog *testbed.Sliver
	env.k.After(6*sim.Second, func() {
		var err error
		hog, err = site.Allocate(env.k.Now(), testbed.SliceRequest{
			Name: "hog",
			VMs:  []testbed.VMRequest{{DedicatedNICs: 1, Cores: 2, RAM: units.GB, Storage: units.GB}},
		})
		if err != nil {
			t.Errorf("hog allocation: %v", err)
		}
	})
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if len(b.ScaleEvents) == 0 {
		t.Fatalf("no scale events; logs:\n%s", logText(b))
	}
	down := false
	for _, ev := range b.ScaleEvents {
		if ev.To < ev.From {
			down = true
			if !strings.Contains(ev.Reason, "free NICs") {
				t.Errorf("reason = %q", ev.Reason)
			}
		}
	}
	if !down {
		t.Errorf("no scale-down event: %v", b.ScaleEvents)
	}
	if hog != nil {
		_ = site.Release(hog)
	}
	// All of Patchwork's own slivers must still be released at the end.
	if site.ActiveSlivers() != 0 {
		t.Errorf("slivers leaked after nice scaling: %d", site.ActiveSlivers())
	}
}

func TestNiceScalesBackUp(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	// Hold 2 of 3 NICs so Patchwork starts with 1 listener (back-off),
	// then release them mid-run so the nice controller can grow back.
	hog, err := site.Allocate(0, testbed.SliceRequest{
		Name: "hog",
		VMs:  []testbed.VMRequest{{DedicatedNICs: 2, Cores: 2, RAM: units.GB, Storage: units.GB}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.InstancesWanted = 2
	cfg.Runs = 6
	cfg.Nice = &NicePolicy{ScaleDownFreeNICs: 0, ScaleUpFreeNICs: 2}
	env.k.After(6*sim.Second, func() { _ = site.Release(hog) })
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	up := false
	for _, ev := range b.ScaleEvents {
		if ev.To > ev.From {
			up = true
		}
	}
	if !up {
		t.Errorf("no scale-up event: %v (logs:\n%s)", b.ScaleEvents, logText(b))
	}
	if site.ActiveSlivers() != 0 {
		t.Errorf("slivers leaked: %d", site.ActiveSlivers())
	}
}

func TestNiceNeverDropsBelowFloor(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	// Site permanently starved: free NICs 0 after Patchwork takes one.
	if _, err := site.Allocate(0, testbed.SliceRequest{
		Name: "hog",
		VMs:  []testbed.VMRequest{{DedicatedNICs: 2, Cores: 2, RAM: units.GB, Storage: units.GB}},
	}); err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.InstancesWanted = 1
	cfg.Runs = 5
	cfg.Nice = &NicePolicy{ScaleDownFreeNICs: 1, ScaleUpFreeNICs: 3}
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	for _, ev := range b.ScaleEvents {
		if ev.To < 1 {
			t.Errorf("scaled below floor: %v", ev)
		}
	}
	// The profile still completes with its single listener.
	if b.Outcome != OutcomeSuccess {
		t.Errorf("outcome = %v (%s)", b.Outcome, b.FailureReason)
	}
	if len(b.CompressedPcaps) == 0 {
		t.Error("no captures despite holding the floor listener")
	}
}

func logText(b Bundle) string {
	var sb strings.Builder
	for _, e := range b.Logs {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- MirrorScheduler (design-limitation #1: sharing mirrored ports) ---

func schedulerFixture(t *testing.T) (*sim.Kernel, *switchsim.Switch, *MirrorScheduler) {
	t.Helper()
	k := sim.NewKernel()
	sw := switchsim.New("S", k)
	for _, p := range []string{"P1", "P2", "P3", "P4"} {
		sw.AddPort(p, switchsim.RoleDownlink, 100*units.Gbps)
	}
	return k, sw, NewMirrorScheduler(k, sw)
}

func TestSchedulerSerializesUsers(t *testing.T) {
	k, sw, ms := schedulerFixture(t)
	var grants []string
	var releases []string
	mkLease := func(user, egress string) *MirrorLease {
		return &MirrorLease{
			User: user, Mirrored: "P1", Dirs: switchsim.DirBoth, Egress: egress,
			Duration: 10 * sim.Second,
			OnGrant: func(sess *switchsim.MirrorSession) {
				grants = append(grants, user)
				if sess.Mirrored != "P1" {
					t.Errorf("session port = %s", sess.Mirrored)
				}
			},
			OnRelease: func() { releases = append(releases, user) },
		}
	}
	if err := ms.Request(mkLease("alice", "P2")); err != nil {
		t.Fatal(err)
	}
	if err := ms.Request(mkLease("bob", "P3")); err != nil {
		t.Fatal(err)
	}
	if err := ms.Request(mkLease("carol", "P4")); err != nil {
		t.Fatal(err)
	}
	if ms.ActiveUser("P1") != "alice" {
		t.Errorf("active = %q", ms.ActiveUser("P1"))
	}
	if ms.PendingFor("P1") != 2 {
		t.Errorf("pending = %d", ms.PendingFor("P1"))
	}
	k.Run()
	want := []string{"alice", "bob", "carol"}
	if strings.Join(grants, ",") != strings.Join(want, ",") {
		t.Errorf("grant order = %v", grants)
	}
	if strings.Join(releases, ",") != strings.Join(want, ",") {
		t.Errorf("release order = %v", releases)
	}
	if len(sw.Mirrors()) != 0 {
		t.Error("mirrors left running")
	}
	if ms.Granted != 3 || ms.Queued != 2 {
		t.Errorf("stats = granted %d queued %d", ms.Granted, ms.Queued)
	}
}

func TestSchedulerLeaseDurationsRespected(t *testing.T) {
	k, sw, ms := schedulerFixture(t)
	var cloned [2]uint64
	grantTimes := map[string]sim.Time{}
	for i, user := range []string{"u0", "u1"} {
		i := i
		user := user
		err := ms.Request(&MirrorLease{
			User: user, Mirrored: "P1", Dirs: switchsim.DirRx, Egress: "P2",
			Duration: 5 * sim.Second,
			OnGrant: func(sess *switchsim.MirrorSession) {
				grantTimes[user] = k.Now()
				// Count clones attributable to this user's window.
				cloned[i] = sess.Cloned
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Traffic throughout.
	tick := k.Every(100*sim.Millisecond, func(sim.Time) {
		_ = sw.Transit("P1", switchsim.DirRx, switchsim.Frame{Size: 1000})
	})
	k.RunUntil(12 * sim.Second)
	tick.Stop()
	k.Run()
	if grantTimes["u0"] != 0 {
		t.Errorf("u0 granted at %v", grantTimes["u0"])
	}
	if grantTimes["u1"] != 5*sim.Second {
		t.Errorf("u1 granted at %v, want 5s", grantTimes["u1"])
	}
}

func TestSchedulerCancelPending(t *testing.T) {
	k, _, ms := schedulerFixture(t)
	l1 := &MirrorLease{User: "a", Mirrored: "P1", Dirs: switchsim.DirRx, Egress: "P2", Duration: sim.Second}
	l2 := &MirrorLease{User: "b", Mirrored: "P1", Dirs: switchsim.DirRx, Egress: "P3", Duration: sim.Second}
	granted := false
	l2.OnGrant = func(*switchsim.MirrorSession) { granted = true }
	if err := ms.Request(l1); err != nil {
		t.Fatal(err)
	}
	if err := ms.Request(l2); err != nil {
		t.Fatal(err)
	}
	if !ms.Cancel(l2) {
		t.Error("cancel pending should succeed")
	}
	if ms.Cancel(l2) {
		t.Error("double cancel should fail")
	}
	if ms.Cancel(l1) {
		t.Error("cancelling an active lease should fail")
	}
	k.Run()
	if granted {
		t.Error("cancelled lease was granted")
	}
}

func TestSchedulerInvalidRequests(t *testing.T) {
	_, _, ms := schedulerFixture(t)
	if err := ms.Request(&MirrorLease{User: "x"}); err == nil {
		t.Error("empty lease should fail")
	}
	if err := ms.Request(&MirrorLease{User: "x", Mirrored: "P9", Egress: "P2", Duration: sim.Second}); err == nil {
		t.Error("unknown port should fail")
	}
}

func TestSchedulerIndependentPorts(t *testing.T) {
	k, _, ms := schedulerFixture(t)
	users := map[string]bool{}
	for _, spec := range []struct{ user, port, egress string }{
		{"a", "P1", "P2"}, {"b", "P3", "P4"},
	} {
		spec := spec
		err := ms.Request(&MirrorLease{
			User: spec.user, Mirrored: spec.port, Dirs: switchsim.DirRx,
			Egress: spec.egress, Duration: sim.Second,
			OnGrant: func(*switchsim.MirrorSession) { users[spec.user] = true },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Both granted immediately: different ports don't queue behind each
	// other.
	if !users["a"] || !users["b"] {
		t.Errorf("grants = %v", users)
	}
	k.Run()
}
