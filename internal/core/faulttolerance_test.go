package patchwork

import (
	"strings"
	"testing"

	"repro/internal/retry"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// hasLog reports whether any bundle log line contains substr.
func hasLog(b Bundle, substr string) bool {
	for _, e := range b.Logs {
		if strings.Contains(e.Message, substr) {
			return true
		}
	}
	return false
}

// TestTransientOutageRecoveredByRetry: a short back-end outage at run
// start is survived by the back-off loop — the site retries past the
// window and completes successfully instead of failing outright.
func TestTransientOutageRecoveredByRetry(t *testing.T) {
	env := newEnv(t, 1)
	env.fed.Sites()[0].AddOutage(0, 5*sim.Second)
	prof := runProfile(t, env, quickConfig())
	b := prof.Bundles[0]
	if b.Outcome != OutcomeSuccess {
		t.Errorf("outcome = %v (%s), want success", b.Outcome, b.FailureReason)
	}
	if !hasLog(b, "retrying in") {
		t.Error("expected a retry log entry for the transient window")
	}
	if len(b.CompressedPcaps) == 0 {
		t.Error("recovered run captured nothing")
	}
}

// TestRetryExhaustionDegrades: when one listener's allocation keeps
// failing transiently, the site must exhaust its retry budget and run
// degraded with the listeners it holds — not abort.
func TestRetryExhaustionDegrades(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	calls := 0
	// Let listener 0 through (its CanAllocate + Allocate pair), then fail
	// every later attempt.
	site.SetAllocFault(func(now sim.Time) error {
		calls++
		if calls <= 2 {
			return nil
		}
		return testbed.ErrBackendTransient
	})
	cfg := quickConfig()
	cfg.InstancesWanted = 2
	cfg.Retry = retry.Policy{Base: sim.Second, Cap: 2 * sim.Second, Multiplier: 2, Jitter: 0.1, MaxAttempts: 3}
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if b.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %v (%s), want degraded", b.Outcome, b.FailureReason)
	}
	if b.InstancesGranted != 1 || b.InstancesRequested != 2 {
		t.Errorf("instances = %d/%d, want 1/2", b.InstancesGranted, b.InstancesRequested)
	}
	if !hasLog(b, "retries exhausted") || !hasLog(b, "degrading to 1/2") {
		t.Errorf("missing exhaustion/degradation logs: %v", b.Logs)
	}
	if len(b.CompressedPcaps) == 0 {
		t.Error("degraded run captured nothing")
	}
}

// TestSetupTimeoutDegrades: the per-phase deadline cuts the retry loop
// short before the attempt budget is spent; the site still degrades
// gracefully.
func TestSetupTimeoutDegrades(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	calls := 0
	site.SetAllocFault(func(now sim.Time) error {
		calls++
		if calls <= 2 {
			return nil
		}
		return testbed.ErrBackendTransient
	})
	cfg := quickConfig()
	cfg.InstancesWanted = 2
	cfg.SetupTimeout = 2 * sim.Second // default retry budget would run ~1 min
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if b.Outcome != OutcomeDegraded {
		t.Fatalf("outcome = %v (%s), want degraded", b.Outcome, b.FailureReason)
	}
	if !hasLog(b, "phase deadline reached") {
		t.Errorf("missing deadline log: %v", b.Logs)
	}
	if b.InstancesGranted != 1 {
		t.Errorf("granted = %d, want 1", b.InstancesGranted)
	}
}

// TestPersistentBackendFailureFails: with no listener allocated at all,
// exhausting retries is a hard failure with the back-end error surfaced.
func TestPersistentBackendFailureFails(t *testing.T) {
	env := newEnv(t, 1)
	site := env.fed.Sites()[0]
	site.SetAllocFault(func(sim.Time) error { return testbed.ErrBackendTransient })
	cfg := quickConfig()
	cfg.Retry = retry.Policy{Base: sim.Second, Cap: 2 * sim.Second, Multiplier: 2, Jitter: 0.1, MaxAttempts: 2}
	prof := runProfile(t, env, cfg)
	b := prof.Bundles[0]
	if b.Outcome != OutcomeFailed {
		t.Fatalf("outcome = %v, want failed", b.Outcome)
	}
	if !strings.Contains(b.FailureReason, "backend") {
		t.Errorf("reason = %q", b.FailureReason)
	}
	if site.ActiveSlivers() != 0 {
		t.Errorf("failed run leaked %d slivers", site.ActiveSlivers())
	}
}

// TestRetryDelaysConsumeSimTime: the event-driven setup actually waits
// between attempts — a run that retried must finish later than one that
// did not.
func TestRetryDelaysConsumeSimTime(t *testing.T) {
	smooth := runProfile(t, newEnv(t, 1), quickConfig())

	env := newEnv(t, 1)
	env.fed.Sites()[0].AddOutage(0, 10*sim.Second)
	bumpy := runProfile(t, env, quickConfig())

	if bumpy.Bundles[0].Outcome != OutcomeSuccess {
		t.Fatalf("bumpy outcome = %v", bumpy.Bundles[0].Outcome)
	}
	if d0, d1 := smooth.Finished-smooth.Started, bumpy.Finished-bumpy.Started; d1 <= d0 {
		t.Errorf("retrying run took %v, smooth run %v — back-off consumed no sim time", d1, d0)
	}
}

// TestConfigRejectsBadRetryAndTimeout pins validation of the new knobs.
func TestConfigRejectsBadRetryAndTimeout(t *testing.T) {
	cfg := quickConfig()
	cfg.Retry = retry.Policy{Base: sim.Second, Cap: 2 * sim.Second, Multiplier: 2, Jitter: 3, MaxAttempts: 2}
	if err := cfg.Validate(); err == nil {
		t.Error("jitter > 1 should fail validation")
	}
	cfg = quickConfig()
	cfg.SetupTimeout = -sim.Second
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "setup timeout") {
		t.Errorf("negative setup timeout: err = %v", err)
	}
	if err := quickConfig().Validate(); err != nil {
		t.Errorf("zero retry policy must validate via defaults: %v", err)
	}
}
