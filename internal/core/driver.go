package patchwork

import (
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/testbed"
	"repro/internal/trafficgen"
)

// TrafficDriver injects synthesized workload traffic onto a site's
// switch ports, so that mirrored ports have something to capture. It
// stands in for the other researchers' experiments running on the
// testbed: Patchwork itself never generates the traffic it profiles.
type TrafficDriver struct {
	sched sim.Scheduler
	site  *testbed.Site
	gen   *trafficgen.Generator

	// ActivePorts are the downlink ports carrying traffic. Ports not
	// listed stay idle (FABRIC utilization is often low).
	ActivePorts []string
	// WindowFrames bounds frames generated per port per window.
	WindowFrames int
	// Window is the generation granularity (default 1 s).
	Window sim.Duration

	stopped bool
}

// NewTrafficDriver builds a driver for one site, scheduling on k — the
// shared kernel in serial runs, the site's lane in sharded ones.
// activePorts defaults to the first half of the site's downlinks when
// nil.
func NewTrafficDriver(k sim.Scheduler, site *testbed.Site, gen *trafficgen.Generator, activePorts []string) *TrafficDriver {
	if activePorts == nil {
		for _, n := range site.Switch.PortNames() {
			if p := site.Switch.Port(n); p != nil && p.Role == switchsim.RoleDownlink {
				activePorts = append(activePorts, n)
			}
		}
		activePorts = activePorts[:(len(activePorts)+1)/2]
	}
	return &TrafficDriver{
		sched: k, site: site, gen: gen,
		ActivePorts:  activePorts,
		WindowFrames: 400,
		Window:       sim.Second,
	}
}

// Start begins injecting traffic until Stop is called. Each window, every
// active port receives an independent flow sample; a frame's forward
// direction counts as Rx on the source port and Tx on a peer port,
// matching how a frame between two VMs crosses the switch.
func (d *TrafficDriver) Start() {
	d.stopped = false
	d.window()
}

// Stop halts traffic generation after the current window.
func (d *TrafficDriver) Stop() { d.stopped = true }

func (d *TrafficDriver) window() {
	if d.stopped || len(d.ActivePorts) == 0 {
		return
	}
	base := d.sched.Now()
	for pi, port := range d.ActivePorts {
		frames, err := d.gen.Sample(trafficgen.SampleConfig{
			Duration:  d.Window,
			MaxFrames: d.WindowFrames,
			FlowCount: 2 + pi%5,
		})
		if err != nil {
			continue
		}
		port := port
		peer := d.ActivePorts[(pi+1)%len(d.ActivePorts)]
		for _, tf := range frames {
			tf := tf
			d.sched.At(base+tf.At, func() {
				f := switchsim.NewFrame(tf.Data)
				if tf.Dir == trafficgen.DirForward {
					_ = d.site.Switch.Transit(port, switchsim.DirRx, f)
					_ = d.site.Switch.Transit(peer, switchsim.DirTx, f)
				} else {
					_ = d.site.Switch.Transit(peer, switchsim.DirRx, f)
					_ = d.site.Switch.Transit(port, switchsim.DirTx, f)
				}
			})
		}
	}
	d.sched.At(base+d.Window, d.window)
}
