package patchwork

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/switchsim"
)

// MirrorScheduler implements the paper's design-limitation #1 remedy
// (Section 6.3): "Sharing could be achieved by having an intermediate
// layer that schedules the use of mirrored ports on behalf of more than
// one FABRIC user." FABRIC allows a switch port to be mirrored by only
// one session at a time, so without this layer a second user's request
// simply fails. The scheduler time-multiplexes the port: requests queue
// per mirrored port and are granted in FIFO order, each holding the
// mirror for its requested duration.
type MirrorScheduler struct {
	kernel *sim.Kernel
	sw     *switchsim.Switch

	queues map[string][]*MirrorLease // pending, per mirrored port
	active map[string]*MirrorLease

	// Stats.
	Granted int
	Queued  int
}

// MirrorLease is one user's turn on a mirrored port.
type MirrorLease struct {
	User     string
	Mirrored string
	Dirs     switchsim.Direction
	Egress   string
	Duration sim.Duration
	// OnGrant fires when the mirror session starts; the session is valid
	// until OnRelease fires.
	OnGrant func(sess *switchsim.MirrorSession)
	// OnRelease fires when the lease's time is up and the mirror has
	// been torn down.
	OnRelease func()

	granted   sim.Time
	cancelled bool
}

// NewMirrorScheduler builds a scheduler for one switch. All mirror
// set-up on that switch should flow through it; direct StartMirror
// calls by other users will conflict exactly as they do on FABRIC.
func NewMirrorScheduler(k *sim.Kernel, sw *switchsim.Switch) *MirrorScheduler {
	return &MirrorScheduler{
		kernel: k,
		sw:     sw,
		queues: make(map[string][]*MirrorLease),
		active: make(map[string]*MirrorLease),
	}
}

// Request enqueues a lease. It is granted immediately when the port is
// free, otherwise when the current holder's time expires. Returns an
// error only for structurally invalid requests.
func (ms *MirrorScheduler) Request(l *MirrorLease) error {
	if l.Mirrored == "" || l.Egress == "" || l.Duration <= 0 {
		return fmt.Errorf("patchwork: invalid mirror lease %+v", l)
	}
	if ms.sw.Port(l.Mirrored) == nil || ms.sw.Port(l.Egress) == nil {
		return fmt.Errorf("patchwork: lease references unknown port (%s->%s)", l.Mirrored, l.Egress)
	}
	if _, busy := ms.active[l.Mirrored]; busy || len(ms.queues[l.Mirrored]) > 0 {
		ms.Queued++
		ms.queues[l.Mirrored] = append(ms.queues[l.Mirrored], l)
		return nil
	}
	return ms.grant(l)
}

// Cancel removes a pending lease from its queue. Active leases run to
// completion (mirrors are cheap to hold; mid-lease revocation is not
// something the underlying testbed API offers). It reports whether the
// lease was still pending.
func (ms *MirrorScheduler) Cancel(l *MirrorLease) bool {
	q := ms.queues[l.Mirrored]
	for i, p := range q {
		if p == l {
			ms.queues[l.Mirrored] = append(q[:i], q[i+1:]...)
			l.cancelled = true
			return true
		}
	}
	return false
}

// PendingFor reports the queue length for a mirrored port.
func (ms *MirrorScheduler) PendingFor(port string) int { return len(ms.queues[port]) }

// ActiveUser reports who currently holds the port's mirror ("" if free).
func (ms *MirrorScheduler) ActiveUser(port string) string {
	if l := ms.active[port]; l != nil {
		return l.User
	}
	return ""
}

func (ms *MirrorScheduler) grant(l *MirrorLease) error {
	sess, err := ms.sw.StartMirror(l.Mirrored, l.Dirs, l.Egress)
	if err != nil {
		// The egress port may be busy with another user's session even
		// though the mirrored port is free; surface the conflict.
		return fmt.Errorf("patchwork: granting lease for %s: %w", l.User, err)
	}
	ms.active[l.Mirrored] = l
	l.granted = ms.kernel.Now()
	ms.Granted++
	if l.OnGrant != nil {
		l.OnGrant(sess)
	}
	ms.kernel.After(l.Duration, func() { ms.release(l) })
	return nil
}

func (ms *MirrorScheduler) release(l *MirrorLease) {
	ms.sw.StopMirror(l.Mirrored)
	delete(ms.active, l.Mirrored)
	if l.OnRelease != nil {
		l.OnRelease()
	}
	// Grant the next pending lease for this port, skipping ones whose
	// egress is currently held by another active session.
	q := ms.queues[l.Mirrored]
	for len(q) > 0 {
		next := q[0]
		q = q[1:]
		ms.queues[l.Mirrored] = q
		if next.cancelled {
			continue
		}
		if err := ms.grant(next); err != nil {
			// Egress conflict: requeue at the back and stop for now; it
			// will be retried when the conflicting session releases.
			ms.queues[l.Mirrored] = append(ms.queues[l.Mirrored], next)
		}
		break
	}
}
