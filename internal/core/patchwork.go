// Package patchwork implements the paper's primary contribution: a
// user-deployed traffic capture and analysis platform for a federated
// testbed. To the testbed, Patchwork looks like any other experiment: it
// allocates VMs and dedicated NICs through the slice allocator, sets up
// port mirrors at each site's switch, captures (truncated) traffic with
// one of three capture methods, detects switch congestion from telemetry,
// and bundles compressed pcaps and logs for the coordinator to gather.
//
// The package mirrors the paper's four-phase workflow (Section 6.2):
// Setup (discovery, request formulation, iterative back-off), Sampling
// (runs of samples with port cycling), Gathering (compressed bundles),
// and Analysis (performed offline by the analysis package).
package patchwork

import (
	"fmt"

	"repro/internal/capture"
	"repro/internal/faults"
	"repro/internal/hostsim"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// Mode selects whose traffic Patchwork observes.
type Mode uint8

// Modes ("an instance of the zero-one-infinity rule").
const (
	// SingleExperiment profiles only the invoking user's slice: Patchwork
	// runs on the sites where that slice holds resources.
	SingleExperiment Mode = iota
	// AllExperiment profiles every experiment on the testbed. This
	// requires a discretionary permission from the testbed operator.
	AllExperiment
)

// String names the mode.
func (m Mode) String() string {
	if m == AllExperiment {
		return "all-experiment"
	}
	return "single-experiment"
}

// Config parameterizes one profiling run. Zero values take the defaults
// from the paper's deployment (Section 8.2): 20-second samples at
// 5-minute intervals, 200-byte truncation.
type Config struct {
	// Mode selects single- or all-experiment profiling.
	Mode Mode
	// Sites restricts profiling to these sites. Empty means every site in
	// all-experiment mode; in single-experiment mode it is the user's
	// slice sites and must be non-empty.
	Sites []string
	// SampleDuration is the length of one capture sample (default 20 s).
	SampleDuration sim.Duration
	// SampleInterval is the spacing between sample starts (default 5 min).
	SampleInterval sim.Duration
	// SamplesPerRun is the number of samples taken between port cycles
	// (default 3).
	SamplesPerRun int
	// Runs is the number of cycles (default 4).
	Runs int
	// TruncateBytes is the stored snap length (default 200).
	TruncateBytes int
	// Method is the capture implementation (default tcpdump, as in the
	// deployed system; DPDK and FPGA+DPDK available for line rate).
	Method capture.Method
	// CaptureCores is the DPDK worker core count (default 2, matching
	// the listener VM request).
	CaptureCores int
	// InstancesWanted is the number of listener instances (VM + dedicated
	// NIC) requested per site before back-off (default 2).
	InstancesWanted int
	// Selector picks which ports to mirror each cycle; nil selects the
	// default busiest-bias heuristic with N = 3.
	Selector PortSelector
	// Seed drives all stochastic decisions.
	Seed uint64
	// CrashProbability injects the "bug in Patchwork" failure class: each
	// site run crashes mid-sampling with this probability (default 0).
	CrashProbability float64
	// StorageLimitBytes caps captured bytes per instance; exceeding it
	// crashes the instance (watchdog catches it). Zero means the
	// allocated VM storage (100 GB).
	StorageLimitBytes int64
	// Nice enables runtime footprint scaling (the paper's future-work
	// "nice factor"); nil keeps the deployed system's fixed footprint.
	Nice *NicePolicy
	// Obs receives platform metrics (setup back-offs, ports mirrored,
	// congestion detections, run outcomes, per-level log counts, capture
	// engine counters). Nil — the default — disables metric recording; hot
	// paths then pay a single branch.
	Obs *obs.Registry
	// Tracer receives spans for the experiment/site/cycle/sample
	// hierarchy. Nil disables tracing.
	Tracer *obs.Tracer
	// Retry shapes the jittered-exponential back-off applied to transient
	// allocator failures during setup. Zero fields take the defaults of
	// retry.DefaultPolicy (first retry ~2 s, doubling to a 2-minute cap,
	// half jitter, 6 attempts).
	Retry retry.Policy
	// SetupTimeout bounds the setup phase per site. When it expires the
	// site stops retrying and degrades to the listeners it already holds
	// (or fails when it holds none). Default 10 minutes.
	SetupTimeout sim.Duration
	// Faults optionally injects scheduled adversity (see internal/faults).
	// The engine must be armed on the federation before the run starts;
	// site instances pull their capture-stall and storage-slowdown hooks
	// from it.
	Faults *faults.Engine
	// Storage, when set, models each listener VM's storage stack: every
	// site instance gets a hostsim.Host built from this config, capture
	// engines write through its page-cache/writev model, and the faults
	// engine's storage slowdowns apply to it. Nil — the default — keeps
	// the free (zero-latency) write path.
	Storage *hostsim.Config
	// LogSink, when set, receives a copy of every run-log line as it is
	// appended to a site bundle. The health monitor's flight recorder
	// implements this; anything else with the same shape works too.
	LogSink LogSink
	// Mutations, when set, receives every deployment mutation (listener
	// setup, sliver release, storage rotation, mirror re-arm) as it
	// happens, in deterministic order. The campaign journal implements
	// this to build its write-ahead log; nil disables the hook.
	Mutations MutationSink
}

// MutationSink observes deployment mutations for crash-consistent
// journaling. Kind is an open string set ("setup", "release",
// "rotate-storage", …); site names the site mutated; note carries the
// deterministic detail line that lands in the WAL.
type MutationSink interface {
	Mutate(kind, site, note string)
}

// LogSink receives copies of run-log lines for live consumers (the
// health monitor's flight recorder). Implementations must tolerate
// calls from any sim-time context.
type LogSink interface {
	Logf(source, level, format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.SampleDuration == 0 {
		c.SampleDuration = 20 * sim.Second
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 5 * sim.Minute
	}
	if c.SampleInterval < c.SampleDuration {
		c.SampleInterval = c.SampleDuration
	}
	if c.SamplesPerRun == 0 {
		c.SamplesPerRun = 3
	}
	if c.Runs == 0 {
		c.Runs = 4
	}
	if c.TruncateBytes == 0 {
		c.TruncateBytes = 200
	}
	if c.CaptureCores == 0 {
		c.CaptureCores = 2
	}
	if c.InstancesWanted == 0 {
		c.InstancesWanted = 2
	}
	if c.Selector == nil {
		c.Selector = &BusiestBiasSelector{N: 3}
	}
	if c.StorageLimitBytes == 0 {
		c.StorageLimitBytes = 100 << 30
	}
	c.Retry = c.Retry.WithDefaults()
	if c.SetupTimeout == 0 {
		c.SetupTimeout = 10 * sim.Minute
	}
	if c.Retry.MaxElapsed == 0 {
		// The elapsed retry budget defaults to the setup deadline: a
		// policy with generous attempts must still not retry past the
		// phase that contains it.
		c.Retry.MaxElapsed = sim.Duration(c.SetupTimeout)
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Mode == SingleExperiment && len(c.Sites) == 0 {
		return fmt.Errorf("patchwork: single-experiment mode requires the slice's sites")
	}
	if c.SamplesPerRun < 0 || c.Runs < 0 || c.TruncateBytes < 0 {
		return fmt.Errorf("patchwork: negative sampling parameters")
	}
	if c.CrashProbability < 0 || c.CrashProbability > 1 {
		return fmt.Errorf("patchwork: crash probability %v out of range", c.CrashProbability)
	}
	if c.Nice != nil {
		if err := c.Nice.Validate(); err != nil {
			return err
		}
	}
	// Zero Retry fields mean "use the defaults", so validate the policy
	// as withDefaults will shape it.
	if err := c.Retry.WithDefaults().Validate(); err != nil {
		return err
	}
	if c.SetupTimeout < 0 {
		return fmt.Errorf("patchwork: negative setup timeout %v", c.SetupTimeout)
	}
	return nil
}

// Outcome classifies one site run, matching the categories of the
// paper's Fig. 10.
type Outcome uint8

// Outcomes.
const (
	// OutcomeSuccess: all requested instances ran to completion.
	OutcomeSuccess Outcome = iota
	// OutcomeDegraded: back-off reduced the instance count but profiling
	// completed.
	OutcomeDegraded
	// OutcomeFailed: no instances could be allocated (resource shortage
	// or back-end fault).
	OutcomeFailed
	// OutcomeIncomplete: Patchwork crashed mid-run (the watchdog
	// reported abnormal termination).
	OutcomeIncomplete
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeFailed:
		return "failed"
	case OutcomeIncomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// defaultRequest builds the slice request for n listener instances.
func defaultRequest(name string, n int) testbed.SliceRequest {
	req := testbed.SliceRequest{Name: name}
	for i := 0; i < n; i++ {
		req.VMs = append(req.VMs, testbed.DefaultListenerVM())
	}
	return req
}
