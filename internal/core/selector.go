package patchwork

import (
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// SelectContext carries everything a port-selection heuristic may
// consult when choosing the next cycle's mirrored ports.
type SelectContext struct {
	// Site is the site being profiled.
	Site *testbed.Site
	// Store is the MFlib-style telemetry store (rates per port).
	Store *telemetry.Store
	// Candidates are the mirrorable ports (the instance's own egress
	// ports are excluded).
	Candidates []string
	// History maps port name to the cycle index when it was last
	// sampled (-1 / absent = never).
	History map[string]int
	// Cycle is the current cycle index (0-based).
	Cycle int
	// Want is the number of ports to select (= free mirror egresses).
	Want int
	// Rand is the run's deterministic randomness.
	Rand *rng.Source
	// Window is the telemetry lookback for rate queries.
	Window sim.Duration
}

// PortSelector chooses which switch ports to mirror in a cycle. Users
// can plug their own heuristics (Section 6.2.2: "Users can also add
// their own heuristics").
type PortSelector interface {
	// SelectPorts returns up to ctx.Want candidate ports to mirror.
	SelectPorts(ctx *SelectContext) []string
}

// BusiestBiasSelector is Patchwork's default: "busiest ports bias, 1/n
// other non-idle port" — during every n-1 cycles it picks a random
// non-idle port, and during the other cycles it picks the busiest port
// that has not been sampled during the last n cycles. The heuristic
// provides fair sampling across all non-idle ports.
type BusiestBiasSelector struct {
	// N is the heuristic's period (default 3).
	N int
}

// SelectPorts implements PortSelector.
func (s *BusiestBiasSelector) SelectPorts(ctx *SelectContext) []string {
	n := s.N
	if n < 2 {
		n = 3
	}
	nonIdle := nonIdleCandidates(ctx)
	if len(nonIdle) == 0 {
		// Nothing measurable yet (first cycle): sample random candidates.
		return randomSubset(ctx.Rand, ctx.Candidates, ctx.Want)
	}
	var out []string
	used := map[string]bool{}
	busiestTurn := ctx.Cycle%n == 0
	for len(out) < ctx.Want {
		var pick string
		if busiestTurn {
			// Busiest port not sampled during the last n cycles.
			for _, pr := range nonIdle {
				p := pr.Key.Port
				if used[p] {
					continue
				}
				if last, ok := ctx.History[p]; ok && ctx.Cycle-last <= n {
					continue
				}
				pick = p
				break
			}
			busiestTurn = false // at most one busiest pick per cycle
		}
		if pick == "" {
			// Random non-idle port.
			perm := ctx.Rand.Perm(len(nonIdle))
			for _, i := range perm {
				p := nonIdle[i].Key.Port
				if !used[p] {
					pick = p
					break
				}
			}
		}
		if pick == "" {
			break // all non-idle ports already chosen
		}
		used[pick] = true
		out = append(out, pick)
	}
	return out
}

// FixedSelector always mirrors the same ports (no cycling).
type FixedSelector struct {
	Ports []string
}

// SelectPorts implements PortSelector.
func (s *FixedSelector) SelectPorts(ctx *SelectContext) []string {
	var out []string
	allowed := map[string]bool{}
	for _, c := range ctx.Candidates {
		allowed[c] = true
	}
	for _, p := range s.Ports {
		if allowed[p] && len(out) < ctx.Want {
			out = append(out, p)
		}
	}
	return out
}

// UplinkSelector samples only uplink ports, cycling through them.
type UplinkSelector struct{}

// SelectPorts implements PortSelector.
func (s *UplinkSelector) SelectPorts(ctx *SelectContext) []string {
	var uplinks []string
	for _, name := range ctx.Candidates {
		if p := ctx.Site.Switch.Port(name); p != nil && p.Role == switchsim.RoleUplink {
			uplinks = append(uplinks, name)
		}
	}
	return rotate(uplinks, ctx.Cycle, ctx.Want)
}

// AllPortsSelector cycles through every candidate port, idle ones
// included.
type AllPortsSelector struct{}

// SelectPorts implements PortSelector.
func (s *AllPortsSelector) SelectPorts(ctx *SelectContext) []string {
	return rotate(ctx.Candidates, ctx.Cycle, ctx.Want)
}

// rotate returns want entries starting at offset cycle*want, wrapping.
func rotate(ports []string, cycle, want int) []string {
	if len(ports) == 0 || want <= 0 {
		return nil
	}
	if want > len(ports) {
		want = len(ports)
	}
	start := (cycle * want) % len(ports)
	out := make([]string, 0, want)
	for i := 0; i < want; i++ {
		out = append(out, ports[(start+i)%len(ports)])
	}
	return out
}

func nonIdleCandidates(ctx *SelectContext) []telemetry.PortRate {
	allowed := map[string]bool{}
	for _, c := range ctx.Candidates {
		allowed[c] = true
	}
	all := ctx.Store.NonIdlePorts(ctx.Site.Spec.Name, ctx.Window)
	out := all[:0]
	for _, pr := range all {
		if allowed[pr.Key.Port] {
			out = append(out, pr)
		}
	}
	return out
}

func randomSubset(r *rng.Source, ports []string, want int) []string {
	if want >= len(ports) {
		return append([]string(nil), ports...)
	}
	perm := r.Perm(len(ports))
	out := make([]string, 0, want)
	for _, i := range perm[:want] {
		out = append(out, ports[i])
	}
	return out
}
