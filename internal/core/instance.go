package patchwork

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"sort"

	"repro/internal/capture"
	"repro/internal/hostsim"
	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// Level is a log severity. Typed constants (rather than free-form
// strings) make levels typo-proof and let the obs layer count log
// events per level.
type Level uint8

// Log levels, in increasing severity.
const (
	LevelInfo Level = iota
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// LogEvent is one entry in an instance's run log. Logs travel with the
// capture bundle so problems can be diagnosed offline (requirement R3).
type LogEvent struct {
	At      sim.Time
	Level   Level
	Message string
}

// String renders "t=12.000000000s warn message".
func (e LogEvent) String() string {
	return fmt.Sprintf("t=%v %s %s", e.At, e.Level, e.Message)
}

// CongestionEvent records a suspected incomplete sample: the mirrored
// port's Tx+Rx rate exceeded the egress channel's capacity (Section
// 6.2.2).
type CongestionEvent struct {
	At           sim.Time
	MirroredPort string
	EgressPort   string
	// OfferedBps is Mirrored(Tx)+Mirrored(Rx) in bytes/s.
	OfferedBps float64
	// CapacityBps is the egress channel's byte rate.
	CapacityBps float64
}

// SampleRecord summarizes one capture sample for the bundle.
type SampleRecord struct {
	Run, Sample  int
	MirroredPort string
	EgressPort   string
	Start        sim.Time
	Frames       int64
	StoredBytes  int64
	DroppedAtNIC int64
	CloneDrops   uint64 // drops at the switch's mirror egress
}

// Bundle is what the coordinator downloads from one site after the
// sampling phase: compressed pcaps, logs, and per-sample statistics.
type Bundle struct {
	Site          string
	Outcome       Outcome
	FailureReason string
	// InstancesRequested/Granted document back-off.
	InstancesRequested int
	InstancesGranted   int
	// CompressedPcaps holds one gzip-compressed pcap per (instance,
	// mirror-port) capture stream.
	CompressedPcaps [][]byte
	Samples         []SampleRecord
	Congestion      []CongestionEvent
	Logs            []LogEvent
	// PortsSampled lists distinct mirrored ports across all cycles.
	PortsSampled []string
	// ScaleEvents records nice-factor footprint changes (empty unless
	// Config.Nice is set).
	ScaleEvents []ScaleEvent
}

// DecompressPcaps expands the bundle's capture streams for analysis.
func (b *Bundle) DecompressPcaps() ([][]byte, error) {
	out := make([][]byte, 0, len(b.CompressedPcaps))
	for i, cp := range b.CompressedPcaps {
		zr, err := gzip.NewReader(bytes.NewReader(cp))
		if err != nil {
			return nil, fmt.Errorf("patchwork: bundle pcap %d: %w", i, err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(zr); err != nil {
			return nil, fmt.Errorf("patchwork: bundle pcap %d: %w", i, err)
		}
		if err := zr.Close(); err != nil {
			return nil, err
		}
		out = append(out, buf.Bytes())
	}
	return out, nil
}

// siteInstance runs the per-site profiling workflow. One siteInstance
// manages all listener instances at its site (each listener = 1 VM + 1
// dual-port dedicated NIC = 2 mirror egress ports).
type siteInstance struct {
	cfg    Config
	site   *testbed.Site
	store  *telemetry.Store
	poller *telemetry.Poller
	kernel *sim.Kernel
	r      *rng.Source
	// retryR feeds back-off jitter. A dedicated split keeps the retry
	// schedule from perturbing port-selection draws: with or without
	// faults, si.r produces the same sequence.
	retryR *rng.Source

	slivers []*testbed.Sliver // one per listener (VM + dedicated NIC)

	// Remediation state. pendingAvoid/pendingRealloc carry a
	// half-finished re-allocation across retries (released but not yet
	// replaced, with the failed sliver's NICs excluded); evictedBytes
	// counts harvested bytes rotated off the VM's disk; finished marks
	// the bundle delivered (no further remediation possible).
	pendingAvoid   []int
	pendingRealloc bool
	evictedBytes   int64
	finished       bool

	// egress ports reserved for the listeners' NICs (not mirrorable).
	egress []string
	// candidates are the mirrorable ports.
	candidates []string
	history    map[string]int

	// mirrors are the current cycle's active mirror sessions, in
	// mirror-establishment order (empty between cycles). Kept on the
	// instance so a remediation can re-arm them mid-cycle.
	mirrors []mirrorPair

	bundle  Bundle
	crashed bool

	// capture state per egress port, rebuilt each cycle.
	engines map[string]*capture.Engine
	writers map[string]*pcap.Writer
	bufs    map[string]*bytes.Buffer

	totalStored int64

	done func(Bundle)

	// Setup-phase state: the retry loop is event-driven (scheduled on the
	// kernel) so back-off delays consume sim time like everything else.
	setupSpan     *obs.Span
	setupStart    sim.Time
	setupDeadline sim.Time
	setupWant     int
	// stallFn, when non-nil, injects capture-core stalls (resolved once
	// from cfg.Faults and shared by every per-cycle engine).
	stallFn func(sim.Time) sim.Duration
	// host models the listener VM's storage stack when cfg.Storage is
	// set; capture engines write through it and storage-slowdown faults
	// apply to it. Nil keeps the zero-latency write path.
	host *hostsim.Host

	// Observability state (all nil/no-op when cfg.Obs and cfg.Tracer are
	// unset — the default).
	parentSpan  *obs.Span // the coordinator's experiment span
	siteSpan    *obs.Span
	cycleSpan   *obs.Span
	mBackoffs   *obs.Counter
	mRetries    *obs.Counter
	mDowngrades *obs.Counter
	mTimeouts   *obs.Counter
	mMirrored   *obs.Counter
	mCongested  *obs.Counter
	mLogs       [3]*obs.Counter // indexed by Level
	mFreeBytes  *obs.Gauge
}

// instrument resolves the instance's obs instruments. Called once at
// run start; with a nil registry every handle stays nil and recording
// costs one branch.
func (si *siteInstance) instrument() {
	reg := si.cfg.Obs
	if reg == nil {
		return
	}
	site := obs.L("site", si.site.Spec.Name)
	reg.Help("patchwork_setup_backoffs_total", "listener requests abandoned during iterative back-off")
	reg.Help("patchwork_setup_retries_total", "transient allocation failures retried with back-off")
	reg.Help("patchwork_setup_downgrades_total", "sites degraded to fewer listeners after exhausting retries")
	reg.Help("patchwork_setup_timeouts_total", "setup phases cut short by the per-phase deadline")
	reg.Help("patchwork_ports_mirrored_total", "mirror sessions established by port cycling")
	reg.Help("patchwork_congestion_events_total", "suspected incomplete samples (mirror egress overload)")
	reg.Help("patchwork_log_events_total", "run-log events by level")
	reg.Help("patchwork_runs_total", "site runs by outcome")
	reg.Help("patchwork_storage_free_bytes", "capture storage remaining before the watchdog limit")
	si.mBackoffs = reg.Counter("patchwork_setup_backoffs_total", site)
	si.mRetries = reg.Counter("patchwork_setup_retries_total", site)
	si.mDowngrades = reg.Counter("patchwork_setup_downgrades_total", site)
	si.mTimeouts = reg.Counter("patchwork_setup_timeouts_total", site)
	si.mMirrored = reg.Counter("patchwork_ports_mirrored_total", site)
	si.mCongested = reg.Counter("patchwork_congestion_events_total", site)
	for l := LevelInfo; l <= LevelError; l++ {
		si.mLogs[l] = reg.Counter("patchwork_log_events_total", site, obs.L("level", l.String()))
	}
	si.mFreeBytes = reg.Gauge("patchwork_storage_free_bytes", site)
	si.mFreeBytes.Set(float64(si.cfg.StorageLimitBytes))
}

// granted reports the current listener count.
func (si *siteInstance) granted() int { return len(si.slivers) }

// activeEgress returns the egress ports backed by currently-held NICs.
func (si *siteInstance) activeEgress() []string {
	n := si.granted() * testbed.PortsPerNIC
	if n > len(si.egress) {
		n = len(si.egress)
	}
	return si.egress[:n]
}

// mirrorPair tracks one active mirror session and the egress it clones
// into.
type mirrorPair struct {
	mirrored, egress string
	session          *switchsim.MirrorSession
}

// noteMutation feeds the campaign journal's mutation hook.
func (si *siteInstance) noteMutation(kind, note string) {
	if si.cfg.Mutations != nil {
		si.cfg.Mutations.Mutate(kind, si.site.Spec.Name, note)
	}
}

// releaseAll yields every held sliver. A sliver that is already gone
// (released or reaped while we weren't looking — the site-outage case)
// is the outcome we wanted, not an error.
func (si *siteInstance) releaseAll() {
	for _, sl := range si.slivers {
		err := si.site.Release(sl)
		switch {
		case err == nil:
			si.noteMutation("release", fmt.Sprintf("sliver=%d", sl.ID))
		case testbed.IsGone(err):
			si.logf(LevelInfo, "teardown: sliver %d already gone", sl.ID)
		default:
			si.logf(LevelError, "teardown: %v", err)
		}
	}
	si.slivers = nil
}

func (si *siteInstance) logf(level Level, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	si.bundle.Logs = append(si.bundle.Logs, LogEvent{
		At: si.kernel.Now(), Level: level, Message: msg,
	})
	if int(level) < len(si.mLogs) {
		si.mLogs[level].Inc()
	}
	if si.cfg.LogSink != nil {
		si.cfg.LogSink.Logf(si.site.Spec.Name, level.String(), "%s", msg)
	}
}

// beginSetup performs discovery and request formulation (Section 6.2.1),
// then enters the event-driven allocation loop. Transient back-end
// failures are retried with jittered exponential back-off under a
// per-phase deadline; exhausting either degrades the site to the
// listeners it already holds rather than aborting the experiment.
func (si *siteInstance) beginSetup() {
	want := si.cfg.InstancesWanted
	free := si.site.FreeDedicatedNICs()
	if free < want {
		want = free
	}
	si.bundle.InstancesRequested = si.cfg.InstancesWanted
	if want == 0 {
		si.bundle.Outcome = OutcomeFailed
		si.bundle.FailureReason = "no dedicated NICs available"
		si.logf(LevelError, "setup: site has no free dedicated NICs")
		si.endSetup(false)
		return
	}
	si.setupWant = want
	si.allocateListener(0, 0)
}

// allocateListener tries to allocate listener n (0-based); attempt
// counts prior tries for this same listener. Iterative back-off: each
// listener (VM + NIC) is a separate small slice — the testbed's
// allocator handles small slices better than large ones, and
// per-listener slivers let the nice-factor controller scale the
// footprint at runtime.
func (si *siteInstance) allocateListener(n, attempt int) {
	if n >= si.setupWant {
		si.settleSetup()
		return
	}
	now := si.kernel.Now()
	req := defaultRequest(fmt.Sprintf("patchwork-%s-%d", si.site.Spec.Name, n), 1)
	// Patchwork runs its own allocation simulation first so the
	// testbed's allocator is not burdened with doomed requests.
	err := si.site.CanAllocate(now, req)
	var sliver *testbed.Sliver
	if err == nil {
		sliver, err = si.site.Allocate(now, req)
	}
	switch {
	case err == nil:
		si.slivers = append(si.slivers, sliver)
		si.noteMutation("setup", fmt.Sprintf("listener=%d sliver=%d nics=%v", n, sliver.ID, sliver.NICs))
		si.allocateListener(n+1, 0)
	case testbed.IsResourceExhaustion(err):
		// A genuine shortage is not worth retrying: stop asking for more
		// listeners and run with what we hold.
		si.mBackoffs.Inc()
		si.logf(LevelWarn, "setup: backing off at %d instances: %v", n, err)
		si.settleSetup()
	default:
		si.retryOrDegrade(n, attempt, err)
	}
}

// retryOrDegrade handles a transient back-end failure for listener n.
// While the retry budget and the setup deadline allow, the request is
// rescheduled after a jittered back-off; otherwise the site degrades to
// the listeners already held, or fails when it holds none.
func (si *siteInstance) retryOrDegrade(n, attempt int, err error) {
	pol := si.cfg.Retry
	if !pol.Exhausted(attempt + 1) {
		delay := pol.Delay(attempt, si.retryR)
		// Both budgets must allow the retry: the phase deadline and the
		// policy's own elapsed-time budget (MaxElapsed), measured from
		// setup start.
		next := si.kernel.Now() + sim.Time(delay)
		if next <= si.setupDeadline && !pol.Expired(si.setupStart, next) {
			si.mRetries.Inc()
			si.logf(LevelWarn, "setup: transient failure for listener %d (attempt %d): %v; retrying in %v",
				n, attempt+1, err, delay)
			si.kernel.After(delay, func() { si.allocateListener(n, attempt+1) })
			return
		}
		si.mTimeouts.Inc()
		si.logf(LevelError, "setup: phase deadline reached after %d attempts for listener %d: %v",
			attempt+1, n, err)
	} else {
		si.logf(LevelError, "setup: retries exhausted for listener %d: %v", n, err)
	}
	if si.granted() > 0 {
		// Graceful degradation: a flaky back end costs listeners, not the
		// whole site run.
		si.mDowngrades.Inc()
		si.logf(LevelWarn, "setup: degrading to %d/%d listeners", si.granted(), si.cfg.InstancesWanted)
		si.settleSetup()
		return
	}
	si.bundle.Outcome = OutcomeFailed
	si.bundle.FailureReason = fmt.Sprintf("backend: %v", err)
	si.logf(LevelError, "setup: backend failure: %v", err)
	si.releaseAll()
	si.endSetup(false)
}

// settleSetup closes the allocation loop with whatever was granted.
func (si *siteInstance) settleSetup() {
	if si.granted() == 0 {
		si.bundle.Outcome = OutcomeFailed
		si.bundle.FailureReason = "resources exhausted after back-off"
		si.logf(LevelError, "setup: could not allocate even one instance")
		si.endSetup(false)
		return
	}
	si.bundle.InstancesGranted = si.granted()
	si.logf(LevelInfo, "setup: %d/%d instances allocated", si.granted(), si.cfg.InstancesWanted)
	si.reservePorts()
	si.endSetup(true)
}

// reservePorts picks the tail downlink ports as the listeners' NIC
// attachment points (mirror egresses); everything else is a candidate.
// The reservation covers the configured maximum so runtime scale-up has
// ports to grow into.
func (si *siteInstance) reservePorts() {
	egressCount := si.cfg.InstancesWanted * testbed.PortsPerNIC
	names := si.site.Switch.PortNames()
	var downlinks []string
	for _, n := range names {
		if p := si.site.Switch.Port(n); p != nil && p.Role == switchsim.RoleDownlink {
			downlinks = append(downlinks, n)
		}
	}
	if egressCount > len(downlinks) {
		egressCount = len(downlinks)
	}
	si.egress = downlinks[len(downlinks)-egressCount:]
	reserved := map[string]bool{}
	for _, e := range si.egress {
		reserved[e] = true
	}
	for _, n := range names {
		if !reserved[n] {
			si.candidates = append(si.candidates, n)
		}
	}
	si.history = make(map[string]int)
}

// endSetup closes the setup span and either finishes the failed run or
// moves into the sampling phase.
func (si *siteInstance) endSetup(ok bool) {
	si.setupSpan.Annotate("granted", fmt.Sprintf("%d", si.granted()))
	si.setupSpan.End()
	si.setupSpan = nil
	if !ok {
		si.finish()
		return
	}
	if si.r.Bool(si.cfg.CrashProbability) {
		// The injected "bug in Patchwork": pick a random point mid-run to
		// crash; the watchdog reports abnormal termination.
		si.crashed = true
	}
	si.cycle(0)
}

// run executes the sampling phase and schedules completion. done is
// invoked exactly once with the final bundle.
func (si *siteInstance) run(done func(Bundle)) {
	si.done = done
	si.instrument()
	si.retryR = si.r.Split()
	if si.cfg.Faults != nil {
		si.stallFn = si.cfg.Faults.CaptureStallFn(si.site.Spec.Name)
	}
	if si.cfg.Storage != nil {
		host, err := hostsim.New(*si.cfg.Storage)
		if err != nil {
			si.logf(LevelError, "setup: storage model: %v; continuing without one", err)
		} else {
			si.host = host
			if si.cfg.Obs != nil {
				host.Instrument(si.cfg.Obs, obs.L("site", si.site.Spec.Name))
			}
			if si.cfg.Faults != nil {
				if f := si.cfg.Faults.StorageFaultFn(si.site.Spec.Name); f != nil {
					host.SetWriteFault(f)
				}
			}
		}
	}
	si.siteSpan = si.parentSpan.Child("site", obs.L("site", si.site.Spec.Name))
	si.setupSpan = si.siteSpan.Child("setup")
	si.setupStart = si.kernel.Now()
	si.setupDeadline = si.setupStart + sim.Time(si.cfg.SetupTimeout)
	si.beginSetup()
}

// cycle starts run r: select ports, set up mirrors and engines, take
// samples, then advance to the next cycle.
func (si *siteInstance) cycle(runIdx int) {
	if runIdx >= si.cfg.Runs {
		si.finish()
		return
	}
	if si.crashed && runIdx >= si.cfg.Runs/2 {
		si.logf(LevelError, "watchdog: instance terminated abnormally (crash)")
		si.bundle.Outcome = OutcomeIncomplete
		if si.bundle.FailureReason == "" {
			si.bundle.FailureReason = "crashed mid-run"
		}
		si.finish()
		return
	}
	si.cycleSpan = si.siteSpan.Child("cycle", obs.L("run", fmt.Sprintf("%d", runIdx)))
	si.poller.PollNow()
	si.applyNicePolicy()
	egress := si.activeEgress()
	if len(egress) == 0 {
		si.logf(LevelWarn, "cycle %d: no listeners held, skipping", runIdx)
		si.cycleSpan.Annotate("skipped", "no-listeners")
		si.cycleSpan.End()
		si.kernel.After(si.cfg.SampleInterval, func() { si.cycle(runIdx + 1) })
		return
	}
	ctx := &SelectContext{
		Site: si.site, Store: si.store,
		Candidates: si.candidates, History: si.history,
		Cycle: runIdx, Want: len(egress),
		Rand: si.r, Window: 2 * si.cfg.SampleInterval,
	}
	ports := si.cfg.Selector.SelectPorts(ctx)
	if len(ports) == 0 {
		si.logf(LevelWarn, "cycle %d: selector returned no ports", runIdx)
		si.cycleSpan.Annotate("skipped", "no-ports")
		si.cycleSpan.End()
		si.kernel.After(si.cfg.SampleInterval, func() { si.cycle(runIdx + 1) })
		return
	}
	si.logf(LevelInfo, "cycle %d: mirroring %v", runIdx, ports)

	si.mirrors = nil
	si.engines = make(map[string]*capture.Engine)
	si.writers = make(map[string]*pcap.Writer)
	si.bufs = make(map[string]*bytes.Buffer)
	for i, p := range ports {
		eg := egress[i%len(egress)]
		sess, err := si.site.Switch.StartMirror(p, switchsim.DirBoth, eg)
		if err != nil {
			si.logf(LevelWarn, "cycle %d: mirror %s->%s: %v", runIdx, p, eg, err)
			continue
		}
		si.history[p] = runIdx
		si.notePortSampled(p)
		si.mMirrored.Inc()

		buf := &bytes.Buffer{}
		w, err := pcap.NewWriter(buf, pcap.FileHeader{
			SnapLen: uint32(si.cfg.TruncateBytes), Nanosecond: true,
		})
		if err != nil {
			si.logf(LevelError, "cycle %d: pcap writer: %v", runIdx, err)
			si.site.Switch.StopMirror(p)
			continue
		}
		eng, err := si.buildEngine(w)
		if err != nil {
			si.logf(LevelError, "cycle %d: capture engine: %v", runIdx, err)
			si.site.Switch.StopMirror(p)
			continue
		}
		si.site.Switch.Port(eg).SetReceiver(eng)
		si.engines[eg] = eng
		si.writers[eg] = w
		si.bufs[eg] = buf
		si.mirrors = append(si.mirrors, mirrorPair{p, eg, sess})
	}

	// Take SamplesPerRun samples at SampleInterval spacing; each sample
	// lasts SampleDuration. Between samples the mirrors stay configured
	// but we snapshot stats per sample boundary.
	sampleIdx := 0
	var takeSample func()
	takeSample = func() {
		if sampleIdx >= si.cfg.SamplesPerRun {
			// End of run: tear down mirrors, bundle this cycle's pcaps.
			for _, mp := range si.mirrors {
				si.site.Switch.StopMirror(mp.mirrored)
				si.site.Switch.Port(mp.egress).SetReceiver(nil)
			}
			si.mirrors = nil
			harvestSpan := si.cycleSpan.Child("harvest")
			si.harvestCycle()
			harvestSpan.Annotate("pcaps", fmt.Sprintf("%d", len(si.bundle.CompressedPcaps)))
			harvestSpan.End()
			si.cycleSpan.End()
			si.kernel.After(si.cfg.SampleInterval, func() { si.cycle(runIdx + 1) })
			return
		}
		start := si.kernel.Now()
		sampleSpan := si.cycleSpan.Child("sample", obs.L("sample", fmt.Sprintf("%d", sampleIdx)))
		si.kernel.After(si.cfg.SampleDuration, func() {
			// Sample ends: snapshot stats and check for switch congestion.
			si.poller.PollNow()
			for _, mp := range si.mirrors {
				eng := si.engines[mp.egress]
				if eng == nil {
					continue
				}
				rec := SampleRecord{
					Run: runIdx, Sample: sampleIdx,
					MirroredPort: mp.mirrored, EgressPort: mp.egress,
					Start:        start,
					Frames:       eng.Stats.Captured,
					StoredBytes:  eng.Stats.StoredBytes,
					DroppedAtNIC: eng.Stats.Dropped,
					CloneDrops:   mp.session.CloneDrops,
				}
				si.bundle.Samples = append(si.bundle.Samples, rec)
				si.checkCongestion(mp.mirrored, mp.egress)
			}
			si.checkStorage()
			sampleSpan.End()
			sampleIdx++
			gap := si.cfg.SampleInterval - si.cfg.SampleDuration
			if sampleIdx >= si.cfg.SamplesPerRun {
				takeSample()
			} else {
				si.kernel.After(gap, takeSample)
			}
		})
	}
	takeSample()
}

// checkCongestion implements the paper's incomplete-sample detection:
// query the switch (via telemetry) for the mirrored port's Tx and Rx
// rates and flag when their sum exceeds the egress channel's capacity.
func (si *siteInstance) checkCongestion(mirrored, egress string) {
	rate, ok := si.store.LatestRate(telemetry.PortKey{Switch: si.site.Spec.Name, Port: mirrored})
	if !ok {
		return
	}
	egPort := si.site.Switch.Port(egress)
	capacity := float64(egPort.LineRate.BytesPerSecond())
	offered := rate.TotalBps()
	if offered > capacity {
		ev := CongestionEvent{
			At: si.kernel.Now(), MirroredPort: mirrored, EgressPort: egress,
			OfferedBps: offered, CapacityBps: capacity,
		}
		si.bundle.Congestion = append(si.bundle.Congestion, ev)
		si.mCongested.Inc()
		si.logf(LevelWarn, "congestion: %s tx+rx %.0f B/s exceeds egress %s capacity %.0f B/s — sample likely incomplete",
			mirrored, offered, egress, capacity)
	}
}

// buildEngine constructs a capture engine over an existing pcap writer
// with the instance's standing configuration — used at cycle start and
// again when a remediation restarts a stalled listener in place.
func (si *siteInstance) buildEngine(w *pcap.Writer) (*capture.Engine, error) {
	return capture.NewEngine(si.site.Scheduler(), capture.Config{
		Method:    si.cfg.Method,
		SnapLen:   si.cfg.TruncateBytes,
		Cores:     si.cfg.CaptureCores,
		Host:      si.host,
		Writer:    w,
		Stall:     si.stallFn,
		Obs:       si.cfg.Obs,
		ObsLabels: []obs.Label{obs.L("site", si.site.Spec.Name)},
	})
}

// onDiskBytes is the watchdog's view of occupied VM storage: harvested
// bytes plus the live engines' stored bytes, minus what rotation has
// evicted.
func (si *siteInstance) onDiskBytes() int64 {
	var stored int64
	for _, eng := range si.engines {
		stored += eng.Stats.StoredBytes
	}
	return si.totalStored + stored - si.evictedBytes
}

// checkStorage is the watchdog's out-of-storage check: a VM that fills
// its allocation crashes the instance (the paper's example of abnormal
// termination).
func (si *siteInstance) checkStorage() {
	onDisk := si.onDiskBytes()
	free := si.cfg.StorageLimitBytes - onDisk
	if free < 0 {
		free = 0
	}
	si.mFreeBytes.Set(float64(free))
	if onDisk > si.cfg.StorageLimitBytes {
		si.logf(LevelError, "watchdog: VM storage exhausted (%d bytes captured)", onDisk)
		si.bundle.Outcome = OutcomeIncomplete
		si.bundle.FailureReason = "out of storage"
		si.crashed = true
	}
}

// remediateRestart tears down and rebuilds every live capture engine in
// place: stats-to-date are folded into the harvest accounting, a fresh
// engine takes over the same pcap stream, and the egress port's
// receiver is re-pointed. Egress ports are visited in sorted order so
// the action's effects are deterministic.
func (si *siteInstance) remediateRestart() (string, error) {
	if len(si.engines) == 0 {
		return "", fmt.Errorf("no live capture engines to restart")
	}
	egs := make([]string, 0, len(si.engines))
	for eg := range si.engines {
		egs = append(egs, eg)
	}
	sort.Strings(egs)
	for _, eg := range egs {
		old := si.engines[eg]
		old.Flush()
		si.totalStored += old.Stats.StoredBytes
		eng, err := si.buildEngine(si.writers[eg])
		if err != nil {
			return "", fmt.Errorf("rebuilding engine on %s: %w", eg, err)
		}
		si.site.Switch.Port(eg).SetReceiver(eng)
		si.engines[eg] = eng
	}
	note := fmt.Sprintf("restarted %d capture engines on %v", len(egs), egs)
	si.noteMutation("restart-listener", note)
	si.logf(LevelInfo, "remedy: %s", note)
	return note, nil
}

// remediateReallocate moves the newest listener to different hardware:
// release the sliver (already-gone counts as released — the testbed may
// have reaped it during the outage we are recovering from), then
// allocate a replacement excluding the NICs the failed sliver held. The
// half-finished state survives retries: a failed allocation leaves the
// release in place and the next attempt resumes at the allocate step.
func (si *siteInstance) remediateReallocate() (string, error) {
	now := si.kernel.Now()
	if !si.pendingRealloc {
		if len(si.slivers) == 0 {
			return "", fmt.Errorf("no slivers held")
		}
		last := si.slivers[len(si.slivers)-1]
		avoid := append([]int(nil), last.NICs...)
		err := si.site.Release(last)
		switch {
		case err == nil:
			si.noteMutation("release", fmt.Sprintf("sliver=%d reason=reallocate", last.ID))
		case testbed.IsGone(err):
			// Already reaped: exactly the outcome a release wants.
			si.logf(LevelInfo, "remedy: sliver %d already gone, proceeding to re-allocate", last.ID)
		default:
			return "", fmt.Errorf("releasing sliver %d: %w", last.ID, err)
		}
		si.slivers = si.slivers[:len(si.slivers)-1]
		si.pendingRealloc, si.pendingAvoid = true, avoid
	}
	req := defaultRequest(fmt.Sprintf("patchwork-%s-realloc", si.site.Spec.Name), 1)
	req.AvoidNICs = si.pendingAvoid
	sliver, err := si.site.Allocate(now, req)
	if err != nil {
		return "", err
	}
	si.slivers = append(si.slivers, sliver)
	note := fmt.Sprintf("sliver=%d nics=%v avoided=%v", sliver.ID, sliver.NICs, si.pendingAvoid)
	si.pendingRealloc, si.pendingAvoid = false, nil
	si.noteMutation("setup", "reallocated "+note)
	si.logf(LevelInfo, "remedy: reallocated %s", note)
	return "reallocated " + note, nil
}

// remediateRearmMirror stops and restarts every active mirror session,
// clearing a corrupted mirror-table entry; the fresh sessions replace
// the old in the cycle's sample accounting.
func (si *siteInstance) remediateRearmMirror() (string, error) {
	if len(si.mirrors) == 0 {
		return "", fmt.Errorf("no active mirror sessions")
	}
	for i := range si.mirrors {
		mp := &si.mirrors[i]
		si.site.Switch.StopMirror(mp.mirrored)
		sess, err := si.site.Switch.StartMirror(mp.mirrored, switchsim.DirBoth, mp.egress)
		if err != nil {
			return "", fmt.Errorf("re-arming mirror %s->%s: %w", mp.mirrored, mp.egress, err)
		}
		mp.session = sess
	}
	note := fmt.Sprintf("rearmed %d mirror sessions", len(si.mirrors))
	si.noteMutation("rearm-mirror", note)
	si.logf(LevelInfo, "remedy: %s", note)
	return note, nil
}

// remediateRotateStorage evicts harvested capture bytes from the VM's
// disk (the bundle keeps its compressed copies — rotation models
// shipping them off-VM), pulling the free-bytes gauge back up before
// the watchdog kills the run. Bytes still held by live engines cannot
// be rotated.
func (si *siteInstance) remediateRotateStorage() (string, error) {
	evict := si.totalStored - si.evictedBytes
	if evict <= 0 {
		return "", fmt.Errorf("nothing to rotate: no harvested bytes on disk")
	}
	si.evictedBytes += evict
	free := si.cfg.StorageLimitBytes - si.onDiskBytes()
	if free < 0 {
		free = 0
	}
	si.mFreeBytes.Set(float64(free))
	note := fmt.Sprintf("evicted %d harvested bytes, %d free", evict, free)
	si.noteMutation("rotate-storage", note)
	si.logf(LevelInfo, "remedy: %s", note)
	return note, nil
}

// pauseCapture pauses or resumes every engine on the site, returning
// how many engines changed state.
func (si *siteInstance) pauseCapture(p bool) int {
	n := 0
	for _, eng := range si.engines {
		if eng.Paused() != p {
			eng.SetPaused(p)
			n++
		}
	}
	return n
}

// remediateFreeSpace is the campaign-scoped ENOSPC recovery: evict
// every harvested byte still on the VM disk (like rotate-storage) and
// resume any engines the degradation path paused, so capture restarts
// once space is back.
func (si *siteInstance) remediateFreeSpace() (string, error) {
	evict := si.totalStored - si.evictedBytes
	if evict > 0 {
		si.evictedBytes += evict
	}
	resumed := si.pauseCapture(false)
	if evict <= 0 && resumed == 0 {
		return "", fmt.Errorf("nothing to free: no harvested bytes, no paused engines")
	}
	free := si.cfg.StorageLimitBytes - si.onDiskBytes()
	if free < 0 {
		free = 0
	}
	si.mFreeBytes.Set(float64(free))
	note := fmt.Sprintf("evicted %d bytes, resumed %d engines, %d free", evict, resumed, free)
	si.noteMutation("free-space", note)
	si.logf(LevelInfo, "remedy: %s", note)
	return note, nil
}

// harvestCycle compresses each engine's pcap stream into the bundle,
// in egress-port order so the bundle layout is deterministic (map
// iteration order would shuffle pcaps between runs of the same seed).
func (si *siteInstance) harvestCycle() {
	egs := make([]string, 0, len(si.engines))
	for eg := range si.engines {
		egs = append(egs, eg)
	}
	sort.Strings(egs)
	for _, eg := range egs {
		eng := si.engines[eg]
		eng.Flush()
		buf := si.bufs[eg]
		if buf == nil || buf.Len() == 0 {
			continue
		}
		si.totalStored += eng.Stats.StoredBytes
		var z bytes.Buffer
		zw := gzip.NewWriter(&z)
		if _, err := zw.Write(buf.Bytes()); err != nil {
			si.logf(LevelError, "gather: compressing pcap: %v", err)
			continue
		}
		if err := zw.Close(); err != nil {
			si.logf(LevelError, "gather: closing gzip: %v", err)
			continue
		}
		si.bundle.CompressedPcaps = append(si.bundle.CompressedPcaps, z.Bytes())
	}
	si.engines, si.writers, si.bufs = nil, nil, nil
}

func (si *siteInstance) notePortSampled(p string) {
	for _, seen := range si.bundle.PortsSampled {
		if seen == p {
			return
		}
	}
	si.bundle.PortsSampled = append(si.bundle.PortsSampled, p)
}

// finish yields resources back to the testbed and delivers the bundle.
func (si *siteInstance) finish() {
	si.finished = true
	si.releaseAll()
	if si.bundle.Outcome == OutcomeSuccess && si.bundle.InstancesGranted < si.bundle.InstancesRequested &&
		si.bundle.InstancesGranted > 0 {
		si.bundle.Outcome = OutcomeDegraded
	}
	si.logf(LevelInfo, "run complete: outcome=%v", si.bundle.Outcome)
	if si.cfg.Obs != nil {
		si.cfg.Obs.Counter("patchwork_runs_total",
			obs.L("site", si.site.Spec.Name),
			obs.L("outcome", si.bundle.Outcome.String())).Inc()
	}
	si.siteSpan.Annotate("outcome", si.bundle.Outcome.String())
	si.siteSpan.End()
	done := si.done
	si.done = nil
	if done != nil {
		done(si.bundle)
	}
}
