// Package hostsim models the parts of a Linux capture host that dominate
// Patchwork's storage bottleneck (Section 8.1.3 and Appendix B of the
// paper): the filesystem page cache with its vm.dirty_background_ratio and
// vm.dirty_ratio thresholds, the asynchronous write-back flusher, and the
// throttling of writer processes at the midpoint of the two thresholds.
//
// The model reproduces the paper's key observation: writev latency stays
// flat until dirty pages cross dirty_background_ratio, then climbs
// steeply, with hard blocking beginning at the *midpoint* of
// (dirty_background_ratio, dirty_ratio) — before dirty_ratio itself — a
// behaviour the authors confirmed in kernel source.
package hostsim

import (
	"fmt"
	"math/bits"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
)

// Config describes the capture host. The defaults mirror the paper's
// evaluation machine: single NUMA node, 16 cores, 128 GB RAM, with about
// 100 GB of RAM available as free page cache.
type Config struct {
	// Cores is the number of usable CPU cores.
	Cores int
	// RAM is total system memory.
	RAM units.ByteSize
	// FreeCache is the memory available to the page cache. Zero defaults
	// to 78% of RAM (the paper: "for a 128GB RAM, the free cache memory by
	// default will be around 100GB").
	FreeCache units.ByteSize
	// DirtyBackgroundRatio and DirtyRatio are percentages of FreeCache, as
	// in vm.dirty_background_ratio / vm.dirty_ratio.
	DirtyBackgroundRatio int
	DirtyRatio           int
	// StorageWriteRate is the secondary-storage sequential write
	// bandwidth. Zero defaults to 2 GB/s (NVMe class).
	StorageWriteRate units.BitRate
	// WritevBaseLatency is the minimum syscall latency for one writev
	// call. Zero defaults to 4 us.
	WritevBaseLatency sim.Duration
	// WritevPerByte is the per-byte page-cache copy cost. Zero defaults
	// to 0.1 ns/byte (~10 GB/s single-core copy into cache pages).
	WritevPerByte float64
}

func (c Config) withDefaults() Config {
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.RAM == 0 {
		c.RAM = 128 * units.GB
	}
	if c.FreeCache == 0 {
		c.FreeCache = c.RAM * 78 / 100
	}
	if c.DirtyBackgroundRatio == 0 && c.DirtyRatio == 0 {
		c.DirtyBackgroundRatio, c.DirtyRatio = 10, 20 // kernel defaults
	}
	if c.StorageWriteRate == 0 {
		c.StorageWriteRate = 16 * units.Gbps // 2 GB/s
	}
	if c.WritevBaseLatency == 0 {
		c.WritevBaseLatency = 4 * sim.Microsecond
	}
	if c.WritevPerByte == 0 {
		c.WritevPerByte = 0.1
	}
	return c
}

// Validate checks threshold sanity.
func (c Config) Validate() error {
	if c.DirtyBackgroundRatio < 0 || c.DirtyRatio > 100 || c.DirtyBackgroundRatio >= c.DirtyRatio {
		return fmt.Errorf("hostsim: bad dirty thresholds %d:%d", c.DirtyBackgroundRatio, c.DirtyRatio)
	}
	return nil
}

// Host models one capture host's storage path. It is not safe for
// concurrent use; drive it from the simulation goroutine.
type Host struct {
	cfg Config

	// Page-cache state.
	dirty       int64    // dirty bytes awaiting write-back
	flushedUpTo sim.Time // flusher state advanced to this time
	// Derived thresholds in bytes.
	bgBytes, midBytes, hardBytes int64

	// WritevHist records one latency observation per writev call, in
	// bpftrace-style log2 buckets.
	WritevHist Histogram
	// Stats accumulate over the host's lifetime.
	Stats Stats

	// Obs instruments (nil unless Instrument was called). inThrottle
	// tracks dirty-page throttle state for the entry/exit counters.
	mWritevLat                    *obs.Histogram
	mThrottleEnter, mThrottleExit *obs.Counter
	mBlocked                      *obs.Counter
	inThrottle                    bool

	// writeFault, when set, can inflate a writev's latency — the
	// slow/failing-storage injection point (internal/faults). It receives
	// the call time, the byte count, and the latency the model computed,
	// and returns the latency to charge instead.
	writeFault func(now sim.Time, n int, lat sim.Duration) sim.Duration
}

// SetWriteFault installs (or, with nil, removes) a hook that rewrites
// each writev call's latency, modeling a degraded or intermittently
// failing storage device. The returned latency is clamped below at the
// model's own value: faults can only slow storage down.
func (h *Host) SetWriteFault(f func(now sim.Time, n int, lat sim.Duration) sim.Duration) {
	h.writeFault = f
}

// Instrument republishes the host's storage-path telemetry into an obs
// registry: the writev latency histogram, dirty-page throttle
// entry/exit counters, and a hard-block counter. Calling it with a nil
// registry is a no-op; without it the host pays nothing.
func (h *Host) Instrument(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.Help("hostsim_writev_latency_ns", "writev syscall latency (log2 buckets, ns)")
	reg.Help("hostsim_throttle_entries_total", "entries into balance_dirty_pages throttling")
	reg.Help("hostsim_throttle_exits_total", "exits from balance_dirty_pages throttling")
	reg.Help("hostsim_writev_blocked_total", "writev calls hard-blocked at/above dirty_ratio")
	h.mWritevLat = reg.Histogram("hostsim_writev_latency_ns", labels...)
	h.mThrottleEnter = reg.Counter("hostsim_throttle_entries_total", labels...)
	h.mThrottleExit = reg.Counter("hostsim_throttle_exits_total", labels...)
	h.mBlocked = reg.Counter("hostsim_writev_blocked_total", labels...)
}

// Stats counts writer-visible events.
type Stats struct {
	WritevCalls    int64
	BytesWritten   int64
	ThrottledCalls int64 // calls slowed between midpoint and dirty_ratio
	BlockedCalls   int64 // calls blocked at/above dirty_ratio
	// FaultSlowedCalls counts calls whose latency an injected storage
	// fault inflated (SetWriteFault).
	FaultSlowedCalls int64
}

// New builds a host from cfg (zero fields defaulted).
func New(cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Host{cfg: cfg}
	fc := int64(cfg.FreeCache)
	h.bgBytes = fc * int64(cfg.DirtyBackgroundRatio) / 100
	h.hardBytes = fc * int64(cfg.DirtyRatio) / 100
	h.midBytes = (h.bgBytes + h.hardBytes) / 2
	return h, nil
}

// Config returns the host's effective configuration.
func (h *Host) Config() Config { return h.cfg }

// DirtyBytes returns the current dirty page-cache bytes (after advancing
// the flusher to now).
func (h *Host) DirtyBytes(now sim.Time) int64 {
	h.advanceFlusher(now)
	return h.dirty
}

// DirtyFraction returns dirty bytes as a fraction of free cache.
func (h *Host) DirtyFraction(now sim.Time) float64 {
	return float64(h.DirtyBytes(now)) / float64(h.cfg.FreeCache)
}

// advanceFlusher drains dirty pages at device speed for the elapsed
// interval. Write-back runs only while dirty exceeds the background
// threshold, mirroring the kernel's flusher wakeup condition.
func (h *Host) advanceFlusher(now sim.Time) {
	if now <= h.flushedUpTo {
		return
	}
	elapsed := int64(now - h.flushedUpTo)
	h.flushedUpTo = now
	if h.dirty <= h.bgBytes {
		return
	}
	drained := h.cfg.StorageWriteRate.BytesInNanos(elapsed)
	h.dirty -= drained
	if h.dirty < h.bgBytes {
		// The flusher stops at the background threshold; it does not
		// write the cache fully clean.
		h.dirty = h.bgBytes
	}
}

// Writev models one writev syscall storing n bytes of pcap data at time
// now, returning the syscall latency. The caller is responsible for
// advancing its own clock by the returned latency (the writing core is
// busy for that long).
func (h *Host) Writev(now sim.Time, n int) sim.Duration {
	h.advanceFlusher(now)
	base := h.cfg.WritevBaseLatency + sim.Duration(float64(n)*h.cfg.WritevPerByte)
	h.dirty += int64(n)
	h.Stats.WritevCalls++
	h.Stats.BytesWritten += int64(n)

	var lat sim.Duration
	throttledNow := h.dirty >= h.midBytes
	if throttledNow && !h.inThrottle {
		h.mThrottleEnter.IncAt(now)
	} else if !throttledNow && h.inThrottle {
		h.mThrottleExit.IncAt(now)
	}
	h.inThrottle = throttledNow
	switch {
	case h.dirty < h.midBytes:
		// Below the throttling midpoint: page-cache copy only.
		lat = base
	case h.dirty < h.hardBytes:
		// balance_dirty_pages throttling: the writer is slowed toward the
		// device's write-back rate, increasingly as dirty approaches the
		// hard threshold.
		h.Stats.ThrottledCalls++
		// The writer is paced to the device's write-back rate as soon as
		// the midpoint is crossed (balance_dirty_pages pauses writers so
		// dirty stops growing), with the penalty deepening toward the
		// hard threshold.
		span := float64(h.hardBytes - h.midBytes)
		depth := float64(h.dirty-h.midBytes) / span // 0..1
		deviceTime := sim.Duration(h.cfg.StorageWriteRate.TransmitNanos(n))
		lat = base + deviceTime + sim.Duration(depth*float64(deviceTime)*7)
	default:
		// At/above dirty_ratio: the writer blocks while the flusher
		// drains back to the hard threshold, then pays device time for
		// its own bytes.
		h.Stats.BlockedCalls++
		h.mBlocked.IncAt(now)
		excess := h.dirty - h.hardBytes
		drainTime := sim.Duration(h.cfg.StorageWriteRate.TransmitNanos(int(excess)))
		deviceTime := sim.Duration(h.cfg.StorageWriteRate.TransmitNanos(n))
		lat = base + drainTime + deviceTime
		// Blocking gives the flusher time to work; by the time the call
		// returns, dirty pages are back at the hard threshold (a blocked
		// writer cannot push the cache past it).
		h.advanceFlusher(now + lat)
		if h.dirty > h.hardBytes {
			h.dirty = h.hardBytes
		}
	}
	if h.writeFault != nil {
		if faulted := h.writeFault(now, n, lat); faulted > lat {
			h.Stats.FaultSlowedCalls++
			lat = faulted
		}
	}
	h.WritevHist.Record(int64(lat))
	h.mWritevLat.ObserveAt(int64(lat), now)
	return lat
}

// Histogram is a bpftrace-style log2 latency histogram. Bucket i counts
// observations in [2^i, 2^(i+1)) nanoseconds.
type Histogram struct {
	counts [64]int64
	total  int64
}

// Record adds one observation in nanoseconds.
func (g *Histogram) Record(ns int64) {
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	g.counts[b]++
	g.total++
}

// Total returns the number of observations.
func (g *Histogram) Total() int64 { return g.total }

// Bucket returns the count for bucket i ([2^i, 2^(i+1)) ns).
func (g *Histogram) Bucket(i int) int64 {
	if i < 0 || i >= len(g.counts) {
		return 0
	}
	return g.counts[i]
}

// SumUpperBounds computes the Appendix-B "summed latency": each
// observation contributes its bucket's *upper bound*, and buckets whose
// upper bound is below minNanos are excluded (the paper discards the
// average case and focuses on the high-latency tail).
func (g *Histogram) SumUpperBounds(minNanos int64) int64 {
	var sum int64
	for i, c := range g.counts {
		if c == 0 {
			continue
		}
		upper := int64(1) << uint(i+1)
		if upper < minNanos {
			continue
		}
		sum += upper * c
	}
	return sum
}

// Reset clears the histogram.
func (g *Histogram) Reset() {
	*g = Histogram{}
}

// String renders non-empty buckets, low to high.
func (g *Histogram) String() string {
	s := ""
	for i, c := range g.counts {
		if c == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("[%d,%d)ns:%d", int64(1)<<uint(i), int64(1)<<uint(i+1), c)
	}
	if s == "" {
		return "(empty)"
	}
	return s
}
