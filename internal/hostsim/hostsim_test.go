package hostsim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func newHost(t testing.TB, bg, hard int) *Host {
	t.Helper()
	h, err := New(Config{DirtyBackgroundRatio: bg, DirtyRatio: hard})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func TestDefaults(t *testing.T) {
	h, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	if cfg.Cores != 16 || cfg.RAM != 128*units.GB {
		t.Errorf("defaults = %+v", cfg)
	}
	// ~100GB free cache from 128GB RAM, per the paper.
	if cfg.FreeCache < 95*units.GB || cfg.FreeCache > 105*units.GB {
		t.Errorf("free cache = %v", cfg.FreeCache)
	}
	if cfg.DirtyBackgroundRatio != 10 || cfg.DirtyRatio != 20 {
		t.Errorf("thresholds = %d:%d", cfg.DirtyBackgroundRatio, cfg.DirtyRatio)
	}
}

func TestBadThresholds(t *testing.T) {
	if _, err := New(Config{DirtyBackgroundRatio: 50, DirtyRatio: 20}); err == nil {
		t.Error("bg >= hard should fail")
	}
	if _, err := New(Config{DirtyBackgroundRatio: 10, DirtyRatio: 120}); err == nil {
		t.Error("ratio > 100 should fail")
	}
}

func TestLowPressureLatencyFlat(t *testing.T) {
	h := newHost(t, 20, 50)
	lat1 := h.Writev(0, 128*200)
	lat2 := h.Writev(sim.Second, 128*200)
	if lat1 != lat2 {
		t.Errorf("latencies differ at low pressure: %v vs %v", lat1, lat2)
	}
	if lat1 <= 0 {
		t.Error("latency must be positive")
	}
	if h.Stats.ThrottledCalls != 0 || h.Stats.BlockedCalls != 0 {
		t.Errorf("stats = %+v", h.Stats)
	}
}

func TestLatencyCliffAtMidpoint(t *testing.T) {
	// The paper's core finding: the steep latency increase happens at the
	// midpoint of (bg, hard), before dirty_ratio is reached.
	h, err := New(Config{FreeCache: units.GB, DirtyBackgroundRatio: 10, DirtyRatio: 20})
	if err != nil {
		t.Fatal(err)
	}
	fc := int64(h.Config().FreeCache)
	mid := (fc*10/100 + fc*20/100) / 2

	// Fill the cache to just below the midpoint instantaneously (the
	// flusher gets no time to drain).
	const chunk = 1 << 20
	var filled int64
	var lowLat sim.Duration
	for filled < mid-2*chunk {
		lowLat = h.Writev(0, chunk)
		filled += chunk
	}
	if h.Stats.ThrottledCalls != 0 {
		t.Fatalf("throttled before midpoint: %+v (filled=%d mid=%d)", h.Stats, filled, mid)
	}
	// Push past the midpoint.
	for i := 0; i < 4; i++ {
		h.Writev(0, chunk)
		filled += chunk
	}
	highLat := h.Writev(0, chunk)
	if h.Stats.ThrottledCalls == 0 {
		t.Fatal("no throttling after midpoint")
	}
	if highLat < lowLat*2 {
		t.Errorf("latency did not climb at midpoint: %v -> %v", lowLat, highLat)
	}
}

func TestHardBlockingAtDirtyRatio(t *testing.T) {
	h := newHost(t, 10, 20)
	fc := int64(h.Config().FreeCache)
	hard := fc * 20 / 100
	const chunk = 16 << 20
	for written := int64(0); written < hard+chunk; written += chunk {
		h.Writev(0, chunk)
	}
	if h.Stats.BlockedCalls == 0 {
		t.Error("no blocked calls above dirty_ratio")
	}
}

func TestFlusherDrainsBackground(t *testing.T) {
	h := newHost(t, 10, 20)
	fc := int64(h.Config().FreeCache)
	bg := fc * 10 / 100
	// Dirty 15% of the cache at t=0.
	target := fc * 15 / 100
	const chunk = 64 << 20
	var now sim.Time
	for h.DirtyBytes(now) < target {
		h.Writev(now, chunk)
	}
	d0 := h.DirtyBytes(now)
	if d0 <= bg {
		t.Fatalf("setup failed: dirty=%d bg=%d", d0, bg)
	}
	// After plenty of idle time the flusher drains to exactly the
	// background threshold, not below.
	later := now + 1000*sim.Second
	d1 := h.DirtyBytes(later)
	if d1 != bg {
		t.Errorf("dirty after idle = %d, want bg %d", d1, bg)
	}
}

func TestWiderThresholdsDelayCliff(t *testing.T) {
	// Appendix B: at the same RAM usage (15% of cache), a 10:20 host is
	// deep into throttling while a 20:50 host is still flat. Summed
	// latency differs by orders of magnitude.
	fill := func(bg, hard int) int64 {
		h, err := New(Config{FreeCache: units.GB, DirtyBackgroundRatio: bg, DirtyRatio: hard})
		if err != nil {
			t.Fatal(err)
		}
		fc := int64(h.Config().FreeCache)
		target := fc * 16 / 100
		// Write in the paper's batch granularity (128 frames of ~200B +
		// record headers ≈ 28 KB per writev), so the unthrottled base
		// latency stays below the 32 us accounting cutoff.
		const chunk = 28 << 10
		for written := int64(0); written < target; written += chunk {
			h.Writev(0, chunk)
		}
		return h.WritevHist.SumUpperBounds(32 * 1024) // exclude <32us buckets
	}
	tight := fill(10, 20)
	wide := fill(20, 50)
	if tight == 0 {
		t.Fatal("10:20 host shows no tail latency at 16% cache usage")
	}
	if wide*10 > tight {
		t.Errorf("20:50 (%d) should be orders of magnitude below 10:20 (%d)", wide, tight)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var g Histogram
	g.Record(1)    // bucket 0
	g.Record(3)    // bucket 1
	g.Record(1024) // bucket 10
	g.Record(1500) // bucket 10
	if g.Total() != 4 {
		t.Errorf("total = %d", g.Total())
	}
	if g.Bucket(0) != 1 || g.Bucket(1) != 1 || g.Bucket(10) != 2 {
		t.Errorf("buckets = %v", g.String())
	}
	if g.Bucket(-1) != 0 || g.Bucket(64) != 0 {
		t.Error("out-of-range buckets should be 0")
	}
}

func TestHistogramUpperBoundAccounting(t *testing.T) {
	// Appendix B: an observation in [32K, 64K) ns contributes 64K ns.
	var g Histogram
	g.Record(40_000)
	if got := g.SumUpperBounds(0); got != 65536 {
		t.Errorf("sum = %d, want 65536", got)
	}
	// Exclusion threshold drops low buckets.
	g.Record(100)
	if got := g.SumUpperBounds(32 * 1024); got != 65536 {
		t.Errorf("sum with cutoff = %d, want 65536", got)
	}
}

func TestHistogramNonNegativeProperty(t *testing.T) {
	f := func(vals []int32) bool {
		var g Histogram
		var n int64
		for _, v := range vals {
			g.Record(int64(v))
			n++
		}
		return g.Total() == n && g.SumUpperBounds(0) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramResetAndString(t *testing.T) {
	var g Histogram
	if g.String() != "(empty)" {
		t.Errorf("empty string = %q", g.String())
	}
	g.Record(5)
	if !strings.Contains(g.String(), "[4,8)ns:1") {
		t.Errorf("string = %q", g.String())
	}
	g.Reset()
	if g.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := newHost(t, 10, 20)
	h.Writev(0, 100)
	h.Writev(0, 200)
	if h.Stats.WritevCalls != 2 || h.Stats.BytesWritten != 300 {
		t.Errorf("stats = %+v", h.Stats)
	}
}

// TestEightSecondStall reproduces the paper's back-of-envelope: at a
// sustained 8.5 GB/s ingest (100 Gbps) with 60:80 thresholds on ~100 GB of
// free cache, the writer hits the page-cache cliff after roughly 8-9
// seconds.
func TestEightSecondStall(t *testing.T) {
	h, err := New(Config{
		RAM: 128 * units.GB, FreeCache: 100 * units.GB,
		DirtyBackgroundRatio: 60, DirtyRatio: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	const chunkBytes = 128 * 200 // one writev per 128-frame batch
	ingestBps := int64(8_500_000_000)
	interval := sim.Duration(int64(sim.Second) * chunkBytes / ingestBps)
	var now sim.Time
	var stallAt sim.Time
	for now < 20*sim.Second {
		h.Writev(now, chunkBytes)
		if h.Stats.ThrottledCalls+h.Stats.BlockedCalls > 0 {
			stallAt = now
			break
		}
		now += interval
	}
	if stallAt == 0 {
		t.Fatal("no stall within 20s")
	}
	secs := stallAt.Seconds()
	if secs < 6 || secs > 12 {
		t.Errorf("stall at %.1fs, want ~8-9s", secs)
	}
}

func BenchmarkWritev(b *testing.B) {
	h, _ := New(Config{DirtyBackgroundRatio: 60, DirtyRatio: 80})
	var now sim.Time
	for i := 0; i < b.N; i++ {
		lat := h.Writev(now, 128*200)
		now += lat + sim.Microsecond
	}
}
