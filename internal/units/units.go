// Package units provides value types for bandwidth, byte sizes, and data
// rates used throughout the Patchwork simulation. All arithmetic is integer
// based so simulation results are deterministic across platforms.
package units

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// BitRate is a transmission rate in bits per second.
type BitRate int64

// Common bit rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e6 * BitPerSecond
	Gbps                 = 1e9 * BitPerSecond
	Tbps                 = 1e12 * BitPerSecond
)

// String formats the rate with the largest unit that keeps the value >= 1.
func (r BitRate) String() string {
	switch {
	case r >= Tbps:
		return formatScaled(int64(r), int64(Tbps), "Tbps")
	case r >= Gbps:
		return formatScaled(int64(r), int64(Gbps), "Gbps")
	case r >= Mbps:
		return formatScaled(int64(r), int64(Mbps), "Mbps")
	case r >= Kbps:
		return formatScaled(int64(r), int64(Kbps), "Kbps")
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// BytesPerSecond converts the bit rate to a byte rate.
func (r BitRate) BytesPerSecond() int64 { return int64(r) / 8 }

// TransmitNanos returns the number of nanoseconds needed to transmit n bytes
// at this rate. A zero or negative rate yields 0 (instantaneous), which
// callers treat as "unconstrained".
func (r BitRate) TransmitNanos(n int) int64 {
	if r <= 0 || n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	// ns = bits / (bits per ns) = bits * 1e9 / rate, computed carefully to
	// avoid overflow for realistic sizes (n < 1<<40, rate < 1<<50).
	return mulDiv(bits, 1e9, int64(r))
}

// BytesInNanos returns how many bytes can be transmitted in d nanoseconds.
func (r BitRate) BytesInNanos(d int64) int64 {
	if r <= 0 || d <= 0 {
		return 0
	}
	return mulDiv(int64(r), d, 8*1e9)
}

// mulDiv computes a*b/c for non-negative operands without intermediate
// overflow, using a 128-bit product.
func mulDiv(a, b, c int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	q, _ := bits.Div64(hi, lo, uint64(c))
	return int64(q)
}

// ByteSize is a size in bytes.
type ByteSize int64

// Common byte sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
	TB            = 1000 * GB
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
	GiB           = 1024 * MiB
	TiB           = 1024 * GiB
)

// String formats the size using decimal units.
func (s ByteSize) String() string {
	switch {
	case s >= TB:
		return formatScaled(int64(s), int64(TB), "TB")
	case s >= GB:
		return formatScaled(int64(s), int64(GB), "GB")
	case s >= MB:
		return formatScaled(int64(s), int64(MB), "MB")
	case s >= KB:
		return formatScaled(int64(s), int64(KB), "KB")
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

func formatScaled(v, unit int64, suffix string) string {
	whole := v / unit
	frac := (v % unit) * 100 / unit
	if frac == 0 {
		return fmt.Sprintf("%d%s", whole, suffix)
	}
	return fmt.Sprintf("%d.%02d%s", whole, frac, suffix)
}

// ParseBitRate parses strings like "100Gbps", "8.5Gbps", "11 Gbps",
// "3968Mbps". It accepts an optional fractional component.
func ParseBitRate(s string) (BitRate, error) {
	s = strings.TrimSpace(s)
	var unit BitRate
	var numPart string
	lower := strings.ToLower(s)
	switch {
	case strings.HasSuffix(lower, "tbps"):
		unit, numPart = Tbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "gbps"):
		unit, numPart = Gbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "mbps"):
		unit, numPart = Mbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "kbps"):
		unit, numPart = Kbps, s[:len(s)-4]
	case strings.HasSuffix(lower, "bps"):
		unit, numPart = BitPerSecond, s[:len(s)-3]
	default:
		return 0, fmt.Errorf("units: unrecognized bit-rate suffix in %q", s)
	}
	numPart = strings.TrimSpace(numPart)
	f, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad bit-rate number in %q: %w", s, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("units: negative bit rate %q", s)
	}
	return BitRate(f * float64(unit)), nil
}

// ParseByteSize parses strings like "8GB", "100GiB", "32MB".
func ParseByteSize(s string) (ByteSize, error) {
	s = strings.TrimSpace(s)
	type suf struct {
		text string
		unit ByteSize
	}
	suffixes := []suf{
		{"tib", TiB}, {"gib", GiB}, {"mib", MiB}, {"kib", KiB},
		{"tb", TB}, {"gb", GB}, {"mb", MB}, {"kb", KB}, {"b", Byte},
	}
	lower := strings.ToLower(s)
	for _, sf := range suffixes {
		if strings.HasSuffix(lower, sf.text) {
			numPart := strings.TrimSpace(s[:len(s)-len(sf.text)])
			f, err := strconv.ParseFloat(numPart, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad byte-size number in %q: %w", s, err)
			}
			if f < 0 {
				return 0, fmt.Errorf("units: negative byte size %q", s)
			}
			return ByteSize(f * float64(sf.unit)), nil
		}
	}
	return 0, fmt.Errorf("units: unrecognized byte-size suffix in %q", s)
}

// Percent is a ratio expressed in hundredths (basis points would be
// overkill). It is used for utilization and loss figures.
type Percent float64

// String renders with two decimal places.
func (p Percent) String() string { return strconv.FormatFloat(float64(p), 'f', 2, 64) + "%" }

// Ratio converts to a 0..1 fraction.
func (p Percent) Ratio() float64 { return float64(p) / 100 }

// PercentOf returns part/whole as a Percent; zero whole yields 0.
func PercentOf(part, whole int64) Percent {
	if whole == 0 {
		return 0
	}
	return Percent(float64(part) / float64(whole) * 100)
}
