package units

import (
	"testing"
	"testing/quick"
)

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{100 * Gbps, "100Gbps"},
		{BitRate(8.5 * float64(Gbps)), "8.50Gbps"},
		{3968 * Gbps, "3.96Tbps"},
		{15 * Mbps, "15Mbps"},
		{999, "999bps"},
		{2 * Kbps, "2Kbps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("BitRate(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransmitNanos(t *testing.T) {
	// 1500 bytes at 1 Gbps = 12000 ns.
	if got := (1 * Gbps).TransmitNanos(1500); got != 12000 {
		t.Errorf("1Gbps 1500B = %d ns, want 12000", got)
	}
	// 64 bytes at 100 Gbps = 5.12 ns -> 5 (integer floor).
	if got := (100 * Gbps).TransmitNanos(64); got != 5 {
		t.Errorf("100Gbps 64B = %d ns, want 5", got)
	}
	if got := BitRate(0).TransmitNanos(1500); got != 0 {
		t.Errorf("zero rate should be instantaneous, got %d", got)
	}
	if got := (1 * Gbps).TransmitNanos(0); got != 0 {
		t.Errorf("zero bytes should take 0 ns, got %d", got)
	}
}

func TestBytesInNanos(t *testing.T) {
	// 1 Gbps for 1 second = 125 MB.
	if got := (1 * Gbps).BytesInNanos(1e9); got != 125_000_000 {
		t.Errorf("1Gbps for 1s = %d bytes, want 125000000", got)
	}
	// 100 Gbps for 1 us = 12500 bytes.
	if got := (100 * Gbps).BytesInNanos(1000); got != 12500 {
		t.Errorf("100Gbps for 1us = %d bytes, want 12500", got)
	}
}

func TestTransmitRoundTripProperty(t *testing.T) {
	// Transmitting n bytes then asking how many bytes fit in that time
	// should return approximately n (within 1 byte of rounding).
	f := func(n uint16, rateGbps uint8) bool {
		if rateGbps == 0 {
			return true
		}
		rate := BitRate(rateGbps) * Gbps
		nb := int(n)%9000 + 64
		ns := rate.TransmitNanos(nb)
		back := rate.BytesInNanos(ns)
		diff := back - int64(nb)
		return diff >= -32 && diff <= 0 // floor rounding loses a little
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBitRate(t *testing.T) {
	cases := []struct {
		in   string
		want BitRate
		ok   bool
	}{
		{"100Gbps", 100 * Gbps, true},
		{"8.5Gbps", BitRate(8.5 * float64(Gbps)), true},
		{"11 Gbps", 11 * Gbps, true},
		{"3.968Tbps", BitRate(3.968 * float64(Tbps)), true},
		{"15mbps", 15 * Mbps, true},
		{"42bps", 42, true},
		{"", 0, false},
		{"fast", 0, false},
		{"-1Gbps", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBitRate(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseBitRate(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseBitRate(%q) should fail", c.in)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseBitRate(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want ByteSize
		ok   bool
	}{
		{"8GB", 8 * GB, true},
		{"32MiB", 32 * MiB, true},
		{"100GB", 100 * GB, true},
		{"1.5KB", 1500, true},
		{"7B", 7, true},
		{"xyz", 0, false},
		{"-3GB", 0, false},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseByteSize(%q) error: %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseByteSize(%q) should fail", c.in)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{8 * GB, "8GB"},
		{1500 * Byte, "1.50KB"},
		{100 * GB, "100GB"},
		{999, "999B"},
		{2 * TB, "2TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestPercentOf(t *testing.T) {
	if got := PercentOf(50, 100); got != 50 {
		t.Errorf("PercentOf(50,100) = %v", got)
	}
	if got := PercentOf(1, 0); got != 0 {
		t.Errorf("PercentOf(_,0) should be 0, got %v", got)
	}
	if got := PercentOf(665, 1000); got != 66.5 {
		t.Errorf("PercentOf(665,1000) = %v, want 66.5", got)
	}
}

func TestPercentString(t *testing.T) {
	if got := Percent(1.93).String(); got != "1.93%" {
		t.Errorf("Percent(1.93).String() = %q", got)
	}
	if got := Percent(100).Ratio(); got != 1 {
		t.Errorf("Ratio = %v", got)
	}
}

func TestMulDivNoOverflow(t *testing.T) {
	// 100 Gbps transmitting 1 TB: bits = 8e12, times 1e9 overflows int64 if
	// computed naively; mulDiv must handle it.
	rate := 100 * Gbps
	ns := rate.TransmitNanos(1 << 40) // 1 TiB
	tib := float64(int64(1) << 40)
	wantApprox := int64(tib * 8 / 100e9 * 1e9)
	diff := ns - wantApprox
	if diff < -1000 || diff > 1000 {
		t.Errorf("TransmitNanos(1TiB@100Gbps) = %d, want ~%d", ns, wantApprox)
	}
}
