package capture

import (
	"bytes"
	"testing"

	"repro/internal/hostsim"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

func newEngine(t testing.TB, cfg Config) (*sim.Kernel, *Engine) {
	t.Helper()
	k := sim.NewKernel()
	e, err := NewEngine(k, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return k, e
}

func TestDefaults(t *testing.T) {
	_, e := newEngine(t, Config{Method: MethodDPDK})
	cfg := e.Config()
	if cfg.SnapLen != 200 || cfg.RxQueueDepth != 4096 || cfg.Cores != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	_, e = newEngine(t, Config{Method: MethodTcpdump, Cores: 8})
	if e.Config().Cores != 1 {
		t.Error("tcpdump must be single-core")
	}
	if e.Config().BufferBytes != 32<<20 {
		t.Errorf("tcpdump buffer = %d", e.Config().BufferBytes)
	}
}

func TestInvalidConfig(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewEngine(k, Config{Cores: 1000}); err == nil {
		t.Error("absurd core count should fail")
	}
	if _, err := NewEngine(k, Config{SnapLen: -1}); err == nil {
		t.Error("negative snaplen should fail")
	}
}

func TestTcpdumpLosslessAt8Gbps(t *testing.T) {
	// Section 8.1.2: tcpdump captures without loss until about 8.5 Gbps
	// of 1500-byte frames.
	k, e := newEngine(t, Config{Method: MethodTcpdump, SnapLen: 64})
	st := OfferLoad(k, e, 1500, 8*units.Gbps, 200*sim.Millisecond)
	if st.Dropped != 0 {
		t.Errorf("8 Gbps: dropped %d of %d", st.Dropped, st.Received)
	}
	if st.Captured == 0 {
		t.Error("nothing captured")
	}
}

func TestTcpdumpLossAt11Gbps(t *testing.T) {
	// A small buffer shortens the time-to-overflow without changing the
	// throughput ceiling, keeping the simulation quick.
	k, e := newEngine(t, Config{Method: MethodTcpdump, SnapLen: 64, BufferBytes: 2 << 20})
	st := OfferLoad(k, e, 1500, 11*units.Gbps, 500*sim.Millisecond)
	loss := float64(st.LossPercent())
	// 11 Gbps is ~30% beyond the ~8.5 Gbps ceiling: substantial loss.
	if loss < 5 {
		t.Errorf("11 Gbps loss = %.2f%%, expected substantial", loss)
	}
}

func TestTcpdumpCeilingBetween8And9(t *testing.T) {
	// Bisect the lossless ceiling: it must fall in [8, 9] Gbps.
	ceiling := 0
	for g := 6; g <= 12; g++ {
		k, e := newEngine(t, Config{Method: MethodTcpdump, SnapLen: 64, BufferBytes: 1 << 20})
		st := OfferLoad(k, e, 1500, units.BitRate(g)*units.Gbps, 500*sim.Millisecond)
		if st.LossPercent() < 0.01 {
			ceiling = g
		}
	}
	if ceiling < 8 || ceiling > 9 {
		t.Errorf("tcpdump lossless ceiling = %d Gbps, want 8-9", ceiling)
	}
}

func TestDPDKJumboAt100GbpsFiveCores(t *testing.T) {
	// Table 1 row 1: 1514B frames at 100 Gbps, 200B truncation, 5 cores,
	// loss < 1%.
	host, err := hostsim.New(hostsim.Config{DirtyBackgroundRatio: 60, DirtyRatio: 80})
	if err != nil {
		t.Fatal(err)
	}
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 5, Host: host})
	st := OfferLoad(k, e, 1514, 100*units.Gbps, 50*sim.Millisecond)
	if loss := float64(st.LossPercent()); loss >= 1 {
		t.Errorf("loss = %.3f%%, want < 1%%", loss)
	}
}

func TestDPDK512At100GbpsInfeasibleWith200B(t *testing.T) {
	// Table 1: at 512B frames the pipeline cannot hold 100 Gbps with
	// 200-byte truncation even with 15 cores (the paper runs it at 60).
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 15})
	st := OfferLoad(k, e, 512, 100*units.Gbps, 30*sim.Millisecond)
	if loss := float64(st.LossPercent()); loss < 5 {
		t.Errorf("512B@100G/200B loss = %.3f%%, expected heavy loss", loss)
	}
	// But 60 Gbps is sustainable.
	k2, e2 := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 15})
	st2 := OfferLoad(k2, e2, 512, 60*units.Gbps, 30*sim.Millisecond)
	if loss := float64(st2.LossPercent()); loss >= 1 {
		t.Errorf("512B@60G/200B loss = %.3f%%, want < 1%%", loss)
	}
}

func TestTruncation64BeatsTruncation200(t *testing.T) {
	// Table 2 vs Table 1: 64-byte truncation sustains 512B frames at
	// 100 Gbps with 15 cores, which 200-byte truncation cannot.
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 64, Cores: 15})
	st := OfferLoad(k, e, 512, 100*units.Gbps, 30*sim.Millisecond)
	if loss := float64(st.LossPercent()); loss >= 1 {
		t.Errorf("512B@100G/64B loss = %.3f%%, want < 1%%", loss)
	}
}

func TestFewerCoresNeededAt64B(t *testing.T) {
	// Table 2: 1514B at 100 Gbps needs only ~3 cores with 64B truncation.
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 64, Cores: 3})
	st := OfferLoad(k, e, 1514, 100*units.Gbps, 30*sim.Millisecond)
	if loss := float64(st.LossPercent()); loss >= 1 {
		t.Errorf("1514B@100G/64B/3cores loss = %.3f%%, want < 1%%", loss)
	}
	// The same 3 cores with 200B truncation cannot hold 100 Gbps.
	k2, e2 := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 3})
	st2 := OfferLoad(k2, e2, 1514, 100*units.Gbps, 30*sim.Millisecond)
	if loss := float64(st2.LossPercent()); loss < 1 {
		t.Errorf("1514B@100G/200B/3cores loss = %.3f%%, expected lossy", loss)
	}
}

func TestSmallFramesCapRate(t *testing.T) {
	// 128B frames: ~15 Gbps max at 200B trunc, ~28 Gbps at 64B trunc.
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 15})
	st := OfferLoad(k, e, 128, 15*units.Gbps, 20*sim.Millisecond)
	if loss := float64(st.LossPercent()); loss >= 1.5 {
		t.Errorf("128B@15G/200B loss = %.3f%%", loss)
	}
	k2, e2 := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 15})
	st2 := OfferLoad(k2, e2, 128, 40*units.Gbps, 20*sim.Millisecond)
	if loss := float64(st2.LossPercent()); loss < 5 {
		t.Errorf("128B@40G/200B loss = %.3f%%, expected heavy", loss)
	}
	k3, e3 := newEngine(t, Config{Method: MethodFPGADPDK, SnapLen: 64, Cores: 15})
	st3 := OfferLoad(k3, e3, 128, 28*units.Gbps, 20*sim.Millisecond)
	if loss := float64(st3.LossPercent()); loss >= 1.5 {
		t.Errorf("128B@28G/64B FPGA loss = %.3f%%", loss)
	}
}

func TestFPGABeatsHostDPDKOnSmallFrames(t *testing.T) {
	// The FPGA path avoids per-wire-byte host costs; with equal cores it
	// must lose no more than plain DPDK.
	run := func(m Method) float64 {
		k, e := newEngine(t, Config{Method: m, SnapLen: 200, Cores: 10})
		st := OfferLoad(k, e, 1024, 100*units.Gbps, 20*sim.Millisecond)
		return float64(st.LossPercent())
	}
	dpdk := run(MethodDPDK)
	fpga := run(MethodFPGADPDK)
	if fpga > dpdk+0.01 {
		t.Errorf("fpga loss %.3f%% > dpdk loss %.3f%%", fpga, dpdk)
	}
}

func TestFilterExcludesFrames(t *testing.T) {
	k, e := newEngine(t, Config{Method: MethodDPDK, Filter: func(data []byte) bool {
		return len(data) > 0 && data[0] == 0xAA
	}})
	keep := switchsim.NewFrame(bytes.Repeat([]byte{0xAA}, 100))
	drop := switchsim.NewFrame(bytes.Repeat([]byte{0xBB}, 100))
	e.DeliverFrame(0, keep)
	e.DeliverFrame(0, drop)
	k.Run()
	if e.Stats.Captured != 1 || e.Stats.Filtered != 1 {
		t.Errorf("stats = %+v", e.Stats)
	}
}

func TestSampling(t *testing.T) {
	k, e := newEngine(t, Config{Method: MethodDPDK, SampleEvery: 4})
	for i := 0; i < 100; i++ {
		e.DeliverFrame(sim.Time(i*1000), switchsim.Frame{Size: 100})
	}
	k.Run()
	e.Flush()
	if e.Stats.Captured != 25 {
		t.Errorf("captured = %d, want 25 (1 in 4)", e.Stats.Captured)
	}
}

func TestPcapOutputTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.FileHeader{SnapLen: 200})
	if err != nil {
		t.Fatal(err)
	}
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Writer: w})
	data := bytes.Repeat([]byte{0xCC}, 1514)
	e.DeliverFrame(0, switchsim.NewFrame(data))
	k.Run()
	e.Flush()
	rd, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 200 || rec.OriginalLength != 1514 {
		t.Errorf("record = %d/%d, want 200/1514", len(rec.Data), rec.OriginalLength)
	}
}

func TestStorageStallCausesLoss(t *testing.T) {
	// With tight dirty thresholds and slow storage, the writev stalls
	// must translate into Rx-queue drops that would not occur otherwise.
	mk := func(host *hostsim.Host) Stats {
		k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 5, Host: host})
		return OfferLoad(k, e, 1514, 100*units.Gbps, 200*sim.Millisecond)
	}
	slow, err := hostsim.New(hostsim.Config{
		FreeCache:            64 * units.MB, // tiny cache: cliff arrives fast
		DirtyBackgroundRatio: 10, DirtyRatio: 20,
		StorageWriteRate: 1 * units.Gbps, // 125 MB/s disk
	})
	if err != nil {
		t.Fatal(err)
	}
	withStall := mk(slow)
	noHost := mk(nil)
	if noHost.Dropped != 0 {
		t.Errorf("free storage run dropped %d", noHost.Dropped)
	}
	if withStall.Dropped == 0 {
		t.Error("storage stalls should cause drops")
	}
}

func TestLossPercentEdgeCases(t *testing.T) {
	if (Stats{}).LossPercent() != 0 {
		t.Error("zero stats should be 0 loss")
	}
	s := Stats{Received: 100, Filtered: 100}
	if s.LossPercent() != 0 {
		t.Error("all-filtered should be 0 loss")
	}
}

func TestMethodString(t *testing.T) {
	if MethodTcpdump.String() != "tcpdump" || MethodDPDK.String() != "dpdk" ||
		MethodFPGADPDK.String() != "fpga+dpdk" {
		t.Error("method names")
	}
}

func TestCoreSnapshotsBalanced(t *testing.T) {
	k, e := newEngine(t, Config{Method: MethodDPDK, Cores: 4})
	// Deliver 40 frames at one instant: round-robin spreads them evenly.
	for i := 0; i < 40; i++ {
		e.DeliverFrame(0, switchsim.Frame{Size: 1000})
	}
	snaps := e.CoreSnapshots()
	if len(snaps) != 4 {
		t.Fatalf("cores = %d", len(snaps))
	}
	for i, s := range snaps {
		if s.Queued != 10 {
			t.Errorf("core %d queued = %d, want 10", i, s.Queued)
		}
		if s.BusyUntil == 0 {
			t.Errorf("core %d never busy", i)
		}
	}
	k.Run()
	for i, s := range e.CoreSnapshots() {
		if s.Queued != 0 || s.QueuedBytes != 0 {
			t.Errorf("core %d not drained: %+v", i, s)
		}
	}
}

// TestDeliverFrameAllocFree pins the per-frame fast path at zero
// steady-state allocations: completion records recycle through the
// engine's pool and kernel events through the arena, so once both are
// warm, delivering and completing a frame must not touch the heap.
func TestDeliverFrameAllocFree(t *testing.T) {
	k, e := newEngine(t, Config{Method: MethodDPDK, SnapLen: 200, Cores: 4})
	now := sim.Time(0)
	deliver := func(n int) {
		for i := 0; i < n; i++ {
			e.DeliverFrame(now, switchsim.Frame{Size: 1514})
			now += 200 * sim.Nanosecond
			k.RunUntil(now)
		}
	}
	deliver(4096) // warm the pools to the schedule's high-water mark
	allocs := testing.AllocsPerRun(10, func() { deliver(512) })
	perFrame := allocs / 512
	if perFrame > 0.01 {
		t.Errorf("DeliverFrame allocates %.4f objects/frame, want ~0", perFrame)
	}
	k.Run()
}
