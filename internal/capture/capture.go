// Package capture models Patchwork's three frame-capture methods
// (Section 6.2.2 of the paper):
//
//  1. tcpdump with an enlarged (32 MB) capture buffer — the default:
//     simple, single-core, lossless up to roughly 8.5 Gbps of 1500-byte
//     frames on FABRIC hosts;
//  2. a custom DPDK application — kernel-bypass, multi-core, truncating
//     frames on the host before serializing them to pcap;
//  3. Alveo FPGA preprocessing (filtering, truncation, sampling, packet
//     editing at line rate on the NIC) feeding the DPDK pcap writer.
//
// The engine is a switchsim.Receiver: it consumes frames delivered from a
// mirrored switch port and writes (optionally truncated) records through
// a hostsim page-cache model into a pcap stream. Loss arises exactly as
// on the real system — Rx queue overflow when cores cannot keep up, and
// writer stalls when the page cache crosses its dirty thresholds.
//
// Cost-model calibration (documented in DESIGN.md): per-frame CPU cost is
//
//	cost = base + perStoredByte*(stored-64) + perWireByte*wire + contention
//
// where contention grows with the total arrival rate, reproducing the
// system-wide packets-per-second ceiling visible in the paper's Tables 1
// and 2 (~15 Mpps at 200-byte truncation, ~26 Mpps at 64-byte).
package capture

import (
	"fmt"
	"strconv"

	"repro/internal/hostsim"
	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/units"
)

// Method selects the capture implementation.
type Method uint8

// Capture methods.
const (
	// MethodTcpdump is the software default (single core, kernel path).
	MethodTcpdump Method = iota
	// MethodDPDK is the kernel-bypass multi-core path.
	MethodDPDK
	// MethodFPGADPDK offloads preprocessing to the FPGA NIC, then uses
	// the DPDK writer.
	MethodFPGADPDK
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodTcpdump:
		return "tcpdump"
	case MethodDPDK:
		return "dpdk"
	case MethodFPGADPDK:
		return "fpga+dpdk"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Cost-model constants (see package comment).
const (
	tcpdumpBaseCost    = 1400 * sim.Nanosecond // syscall+kernel path per frame
	tcpdumpPerByteCost = 0.5                   // ns per stored byte (copy to user)

	dpdkBaseCost      = 150.0 // ns per frame
	dpdkPerStoredByte = 1.9   // ns per stored byte above 64
	dpdkPerWireByte   = 0.03  // ns per wire byte (DMA/PCIe of full frame)
	// contentionNsPerMpps models shared writer/memory-bus serialization:
	// each frame pays this many extra ns per Mpps of total arrival rate.
	contentionNsPerMpps = 11.0

	// tcpdumpSlotOverhead approximates the kernel ring's per-frame slot
	// overhead (tpacket header + alignment) counted against the capture
	// buffer.
	tcpdumpSlotOverhead = 112

	// WritevBatchFrames matches Patchwork's DPDK writer: one writev per
	// 128 frames.
	WritevBatchFrames = 128
	// pcapRecordOverhead is the per-record pcap header.
	pcapRecordOverhead = 16
)

// Config configures a capture engine.
type Config struct {
	Method Method
	// SnapLen is the truncation length (Patchwork's default is 200 bytes
	// to keep header stacks; 64 is the cheaper variant of Table 2).
	SnapLen int
	// Cores is the number of worker cores (ignored for tcpdump, which is
	// single-core).
	Cores int
	// RxQueueDepth is the per-core Rx descriptor ring size (paper: 4096).
	RxQueueDepth int
	// BufferBytes is tcpdump's capture buffer (default 32 MB).
	BufferBytes int64
	// Host supplies the page-cache storage path. Nil means storage is
	// free (useful for isolating CPU effects in ablations).
	Host *hostsim.Host
	// Writer receives captured records; nil counts without storing.
	Writer *pcap.Writer
	// Filter drops frames before capture when it returns false. On the
	// FPGA method it runs at line rate for free; on the host methods it
	// costs CPU.
	Filter func(data []byte) bool
	// SampleEvery keeps only every Nth frame when > 1 (sampling
	// offload).
	SampleEvery int
	// Stall, when set, is consulted once per captured frame and may
	// return extra time the processing core loses before the frame
	// completes — the capture-core stall injection point
	// (internal/faults). Zero means no stall; with Stall nil the hot path
	// pays a single branch.
	Stall func(now sim.Time) sim.Duration
	// Obs receives capture metrics when non-nil. Instruments are
	// resolved once at engine construction, so with Obs nil (the
	// default) the per-frame cost of observability is a nil check.
	Obs *obs.Registry
	// ObsLabels distinguish engines sharing a registry (e.g. site and
	// egress port); the engine adds a "method" label itself.
	ObsLabels []obs.Label
}

func (c Config) withDefaults() Config {
	if c.SnapLen == 0 {
		c.SnapLen = 200
	}
	if c.Cores == 0 {
		c.Cores = 1
	}
	if c.Method == MethodTcpdump {
		c.Cores = 1
	}
	if c.RxQueueDepth == 0 {
		c.RxQueueDepth = 4096
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 32 << 20
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	return c
}

// Stats accumulates capture-engine counters.
type Stats struct {
	// Received counts frames delivered to the NIC.
	Received int64
	// Filtered counts frames rejected by the filter or sampler.
	Filtered int64
	// Dropped counts frames lost to queue/buffer overflow.
	Dropped int64
	// Captured counts frames fully processed into the capture.
	Captured int64
	// StoredBytes counts stored (truncated) bytes.
	StoredBytes int64
	// Stalls counts injected capture-core stalls (Config.Stall).
	Stalls int64
}

// LossPercent is dropped / (received - filtered).
func (s Stats) LossPercent() units.Percent {
	eligible := s.Received - s.Filtered
	if eligible <= 0 {
		return 0
	}
	return units.PercentOf(s.Dropped, eligible)
}

// frameDone is a pooled completion record for one in-flight frame: the
// state its kernel event needs, carried through AtArg instead of a
// per-frame closure. Records recycle through Engine.doneFree, so the
// steady-state per-frame path allocates nothing.
type frameDone struct {
	core   *coreState
	frame  switchsim.Frame
	stored int
	slot   int64
	next   *frameDone
}

type coreState struct {
	queued      int
	queuedBytes int64
	busyUntil   sim.Time
	batchFrames int
	batchBytes  int
	// occupancy is the per-core queue-depth high-watermark gauge (nil
	// unless the engine is instrumented).
	occupancy *obs.Gauge
}

// Engine is one capture instance. It implements switchsim.Receiver. Not
// safe for concurrent use; drive it from the simulation goroutine.
type Engine struct {
	cfg    Config
	sched  sim.Scheduler
	cores  []coreState
	rr     int
	sample int
	paused bool

	// Arrival-rate estimator for the contention term.
	rateWindowStart sim.Time
	rateWindowCount int64
	currentMpps     float64

	// Stats is exported state; read freely between events.
	Stats Stats

	// Completion-event pool: free list of frameDone records plus the
	// method value dispatched through sim.Kernel.AtArg (bound once here
	// so the per-frame path does not allocate a closure).
	doneFree *frameDone
	doneFn   func(any)

	// Pre-resolved obs instruments (all nil when Config.Obs is nil).
	mReceived, mFiltered, mDropped, mCaptured, mStoredBytes *obs.Counter
}

// NewEngine builds an engine bound to a scheduler — the simulation
// kernel in serial runs, a lane in sharded ones.
func NewEngine(k sim.Scheduler, cfg Config) (*Engine, error) {
	if cfg.Cores < 0 || cfg.Cores > 256 {
		return nil, fmt.Errorf("capture: core count %d out of range", cfg.Cores)
	}
	if cfg.SnapLen < 0 {
		return nil, fmt.Errorf("capture: snap length %d invalid", cfg.SnapLen)
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		sched: k,
		cores: make([]coreState, cfg.Cores),
	}
	e.doneFn = e.frameDone
	if reg := cfg.Obs; reg != nil {
		labels := append(append([]obs.Label(nil), cfg.ObsLabels...),
			obs.L("method", cfg.Method.String()))
		reg.Help("capture_frames_received_total", "frames delivered to the capture NIC")
		reg.Help("capture_frames_filtered_total", "frames rejected by filter or sampler")
		reg.Help("capture_frames_dropped_total", "frames lost to Rx queue or buffer overflow")
		reg.Help("capture_frames_captured_total", "frames fully processed into the capture")
		reg.Help("capture_stored_bytes_total", "stored (truncated) bytes")
		reg.Help("capture_core_queue_highwater", "per-core Rx queue depth high-watermark")
		e.mReceived = reg.Counter("capture_frames_received_total", labels...)
		e.mFiltered = reg.Counter("capture_frames_filtered_total", labels...)
		e.mDropped = reg.Counter("capture_frames_dropped_total", labels...)
		e.mCaptured = reg.Counter("capture_frames_captured_total", labels...)
		e.mStoredBytes = reg.Counter("capture_stored_bytes_total", labels...)
		for i := range e.cores {
			e.cores[i].occupancy = reg.Gauge("capture_core_queue_highwater",
				append(append([]obs.Label(nil), labels...), obs.L("core", strconv.Itoa(i)))...)
		}
	}
	return e, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// estimateRate updates the arrival-rate estimate (Mpps) over 1 ms
// windows.
func (e *Engine) estimateRate(now sim.Time) {
	const window = sim.Millisecond
	if e.rateWindowCount == 0 {
		e.rateWindowStart = now
	}
	e.rateWindowCount++
	if elapsed := now - e.rateWindowStart; elapsed >= window {
		e.currentMpps = float64(e.rateWindowCount) / (float64(elapsed) / 1000)
		e.rateWindowCount = 0
	}
}

// perFrameCost returns the CPU time one core spends on a frame.
func (e *Engine) perFrameCost(stored, wireLen int) sim.Duration {
	switch e.cfg.Method {
	case MethodTcpdump:
		return tcpdumpBaseCost + sim.Duration(float64(stored)*tcpdumpPerByteCost)
	case MethodDPDK:
		ns := dpdkBaseCost +
			dpdkPerStoredByte*float64(maxInt(0, stored-64)) +
			dpdkPerWireByte*float64(wireLen) +
			contentionNsPerMpps*e.currentMpps
		return sim.Duration(ns)
	default: // MethodFPGADPDK
		// The FPGA truncates at line rate, so the host DMAs and touches
		// only the stored bytes; the wire-size term disappears.
		ns := dpdkBaseCost +
			dpdkPerStoredByte*float64(maxInt(0, stored-64)) +
			contentionNsPerMpps*e.currentMpps
		return sim.Duration(ns)
	}
}

// DeliverFrame implements switchsim.Receiver: one frame arrives from the
// mirrored port at virtual time now.
func (e *Engine) DeliverFrame(now sim.Time, f switchsim.Frame) {
	e.Stats.Received++
	e.mReceived.IncAt(now)
	e.estimateRate(now)

	// A paused engine (ENOSPC degradation) sheds every frame before it
	// can reach a core and fill the disk further. The drops are counted
	// honestly: pausing trades capture completeness for campaign
	// survival, and the loss must show in the stats.
	if e.paused {
		e.Stats.Dropped++
		e.mDropped.IncAt(now)
		return
	}

	// Sampling and filtering. On the FPGA these run on the NIC before
	// the host sees the frame; on host methods they spend core time, but
	// the dominant effect either way is the reduction in frames stored.
	if e.cfg.SampleEvery > 1 {
		e.sample++
		if e.sample%e.cfg.SampleEvery != 0 {
			e.Stats.Filtered++
			e.mFiltered.IncAt(now)
			return
		}
	}
	if e.cfg.Filter != nil && !e.cfg.Filter(f.Data) {
		e.Stats.Filtered++
		e.mFiltered.IncAt(now)
		return
	}

	stored := f.Size
	if stored > e.cfg.SnapLen {
		stored = e.cfg.SnapLen
	}

	core := &e.cores[e.rr]
	e.rr = (e.rr + 1) % len(e.cores)

	// Overflow checks: frame-count ring for DPDK paths, byte buffer for
	// tcpdump.
	slotBytes := int64(stored)
	if e.cfg.Method == MethodTcpdump {
		slotBytes += tcpdumpSlotOverhead
		if core.queuedBytes+slotBytes > e.cfg.BufferBytes {
			e.Stats.Dropped++
			e.mDropped.IncAt(now)
			return
		}
	} else if core.queued >= e.cfg.RxQueueDepth {
		e.Stats.Dropped++
		e.mDropped.IncAt(now)
		return
	}

	core.queued++
	core.queuedBytes += slotBytes
	core.occupancy.SetMaxAt(float64(core.queued), now)
	start := core.busyUntil
	if start < now {
		start = now
	}
	done := start + e.perFrameCost(stored, f.Size)
	if e.cfg.Stall != nil {
		if extra := e.cfg.Stall(now); extra > 0 {
			e.Stats.Stalls++
			done += extra
		}
	}
	core.busyUntil = done

	// Batch the pcap write: one writev per 128 frames, charged to the
	// core that fills the batch (this is where dirty-page stalls block
	// the pipeline).
	core.batchFrames++
	core.batchBytes += stored + pcapRecordOverhead
	if core.batchFrames >= WritevBatchFrames {
		if e.cfg.Host != nil {
			lat := e.cfg.Host.Writev(done, core.batchBytes)
			core.busyUntil += lat
			done = core.busyUntil
		}
		core.batchFrames = 0
		core.batchBytes = 0
	}

	fd := e.doneFree
	if fd == nil {
		fd = new(frameDone)
	} else {
		e.doneFree = fd.next
	}
	fd.core = core
	fd.frame = f
	fd.stored = stored
	fd.slot = slotBytes
	e.sched.AtArg(done, e.doneFn, fd)
}

// SetPaused pauses or resumes the engine. A paused engine keeps
// accounting frame arrivals but drops every frame before it queues —
// the storage-degradation lever: stop filling a full disk without
// tearing the listener down. In-flight frames complete normally.
func (e *Engine) SetPaused(p bool) { e.paused = p }

// Paused reports whether the engine is currently shedding all frames.
func (e *Engine) Paused() bool { return e.paused }

// frameDone completes one captured frame (the AtArg callback) and
// returns the record to the pool.
func (e *Engine) frameDone(a any) {
	fd := a.(*frameDone)
	c := fd.core
	c.queued--
	c.queuedBytes -= fd.slot
	now := e.sched.Now()
	e.Stats.Captured++
	e.Stats.StoredBytes += int64(fd.stored)
	e.mCaptured.IncAt(now)
	e.mStoredBytes.AddAt(int64(fd.stored), now)
	if e.cfg.Writer != nil {
		data := fd.frame.Data
		if data == nil {
			data = make([]byte, fd.stored)
		} else if len(data) > fd.stored {
			data = data[:fd.stored]
		}
		_ = e.cfg.Writer.WriteRecord(int64(now), data, fd.frame.Size)
	}
	fd.core = nil
	fd.frame = switchsim.Frame{} // drop the data reference before pooling
	fd.next = e.doneFree
	e.doneFree = fd
}

// Flush finalizes any partial writev batch (end of a sampling window).
func (e *Engine) Flush() {
	for i := range e.cores {
		c := &e.cores[i]
		if c.batchFrames > 0 && e.cfg.Host != nil {
			lat := e.cfg.Host.Writev(maxTime(e.sched.Now(), c.busyUntil), c.batchBytes)
			c.busyUntil += lat
		}
		c.batchFrames = 0
		c.batchBytes = 0
	}
	if e.cfg.Writer != nil {
		_ = e.cfg.Writer.Flush()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// loadDriver emits one frame per firing and reschedules itself through
// the kernel's arg-carrying fast path — one driver allocation for the
// whole offered load instead of one closure per frame.
type loadDriver struct {
	k         *sim.Kernel
	e         *Engine
	frameSize int
	interval  sim.Duration
	next      sim.Time
	end       sim.Time
}

func loadStep(a any) {
	d := a.(*loadDriver)
	d.e.DeliverFrame(d.next, switchsim.Frame{Size: d.frameSize})
	d.next += d.interval
	if d.next < d.end {
		d.k.AtArg(d.next, loadStep, d)
	}
}

// OfferLoad is a convenience harness for the performance experiments: it
// offers frames of the given wire size at the given rate for the given
// duration (deterministic spacing), runs the kernel, flushes, and returns
// the engine's stats. The frames carry no data bytes (rate modeling
// only).
func OfferLoad(k *sim.Kernel, e *Engine, frameSize int, rate units.BitRate, dur sim.Duration) Stats {
	interval := sim.Duration(rate.TransmitNanos(frameSize))
	if interval < 1 {
		interval = 1
	}
	d := &loadDriver{k: k, e: e, frameSize: frameSize, interval: interval,
		next: k.Now(), end: k.Now() + dur}
	if d.next < d.end {
		k.AtArg(d.next, loadStep, d)
	}
	k.Run()
	e.Flush()
	k.Run()
	return e.Stats
}

// CoreSnapshot reports one worker core's instantaneous state.
type CoreSnapshot struct {
	Queued      int
	QueuedBytes int64
	BusyUntil   sim.Time
}

// CoreSnapshots returns the per-core state, for load-balance inspection
// and ablations.
func (e *Engine) CoreSnapshots() []CoreSnapshot {
	out := make([]CoreSnapshot, len(e.cores))
	for i := range e.cores {
		out[i] = CoreSnapshot{
			Queued:      e.cores[i].queued,
			QueuedBytes: e.cores[i].queuedBytes,
			BusyUntil:   e.cores[i].busyUntil,
		}
	}
	return out
}
