package lanes

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/prof"
	"repro/internal/sim"
)

// provConfig is the hostile differential scenario with provenance
// tagging switched on: cross-lane channel traffic, decoy globals, and
// per-node tags, so barrier-merged records and kernel-emitted records
// interleave.
func provConfig() netConfig {
	return netConfig{
		nodes: 6, lanesN: 3, seed: 1347,
		horizon: 400 * sim.Millisecond, stepPeriod: 4 * sim.Millisecond,
		jitterMax: 9 * sim.Millisecond, lookahead: 2 * sim.Millisecond,
		maxWindow: 64, chanLatency: 2 * sim.Millisecond, chanCap: 4,
		sendProb: 0.6, decoyGlobals: 40,
		tagged: true,
	}
}

// TestProvenanceEquivalence is the provenance determinism gate: the
// record stream (seqs, parents, times, callback PCs, tags) emitted
// under lanes must equal the serial kernel's exactly, at every worker
// count — and so must the on-disk trace bytes.
func TestProvenanceEquivalence(t *testing.T) {
	cfg := provConfig()

	collect := func(dst *[]sim.ProvRecord) func(sim.ProvRecord) {
		return func(r sim.ProvRecord) { *dst = append(*dst, r) }
	}
	traceBytes := func(recs []sim.ProvRecord) []byte {
		var buf bytes.Buffer
		w := prof.NewWriter(&buf)
		for i := 0; i < cfg.nodes; i++ {
			w.DefTag(int32(i+1), fmt.Sprintf("node-%d", i))
		}
		for _, r := range recs {
			w.Record(r)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var want []sim.ProvRecord
	serialCfg := cfg
	serialCfg.prov = collect(&want)
	serial := runNet(t, serialCfg, -1)
	if len(want) == 0 {
		t.Fatal("serial run emitted no provenance records")
	}
	wantBytes := traceBytes(want)

	for _, workers := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []sim.ProvRecord
			laneCfg := cfg
			laneCfg.prov = collect(&got)
			res := runNet(t, laneCfg, workers)
			diffResults(t, fmt.Sprintf("workers=%d", workers), serial, res)

			if len(got) != len(want) {
				t.Fatalf("laned run emitted %d records, serial %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, serial %+v", i, got[i], want[i])
				}
			}
			if !bytes.Equal(traceBytes(got), wantBytes) {
				t.Error("trace bytes differ from serial")
			}
		})
	}
}

// TestProvenanceRecordInvariants checks structural properties of the
// laned record stream: strictly increasing seqs, parents that always
// refer to an earlier seq, and tags confined to the configured nodes.
func TestProvenanceRecordInvariants(t *testing.T) {
	cfg := provConfig()
	var recs []sim.ProvRecord
	cfg.prov = func(r sim.ProvRecord) { recs = append(recs, r) }
	runNet(t, cfg, 4)

	var last uint64
	tagSeen := make(map[int32]bool)
	for i, r := range recs {
		if i > 0 && r.Seq <= last {
			t.Fatalf("record %d: seq %d not after %d", i, r.Seq, last)
		}
		last = r.Seq
		if r.Parent != sim.NoProvParent && r.Parent >= r.Seq {
			t.Fatalf("record %d: parent %d not before seq %d", i, r.Parent, r.Seq)
		}
		if r.Tag < 0 || int(r.Tag) > cfg.nodes {
			t.Fatalf("record %d: tag %d out of range", i, r.Tag)
		}
		tagSeen[r.Tag] = true
	}
	for i := 1; i <= cfg.nodes; i++ {
		if !tagSeen[int32(i)] {
			t.Errorf("no records tagged for node %d", i)
		}
	}
	if !tagSeen[0] {
		t.Error("expected some untagged (channel/observer) records")
	}
}
