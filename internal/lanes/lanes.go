// Package lanes shards one simulated world into per-site event lanes
// that execute in parallel while producing output byte-identical to the
// serial kernel — the SimBricks decomposition (loosely coupled
// components synchronized by timestamped channels under a conservative
// lookahead) applied inside a single process, held to the REPETITA
// repeatability bar.
//
// The design keeps ONE sim.Kernel as the source of truth. Events carry
// a lane tag: lane 0 (sim.GlobalLane) is the control plane — the
// coordinator, pollers, health monitor, fault triggers, checkpoints —
// and lanes 1..N are site dataplanes (traffic windows, switch clone
// deliveries, capture completions). The executor alternates two phases:
//
//   - Global phase: the next live event is global, so the kernel steps
//     it serially with every lane quiescent. Globals therefore observe
//     exactly the state a serial run would — every earlier lane event
//     has executed and its effects are visible (the barrier provides
//     the happens-before edge).
//   - Window phase: the next live event is a lane event. PopLaneWindow
//     pops the maximal serial-order prefix of lane events below a
//     conservative lookahead horizon (stopping at the first global
//     event), the events are grouped per lane, and a worker pool
//     executes the lanes concurrently — each lane's subsequence in
//     exact serial order.
//
// Determinism is restored at the window barrier. Every schedule call a
// lane makes during the window is recorded; the barrier merges the
// per-lane records by the serial key of the event that made the call
// and re-assigns the exact sequence numbers a serial kernel would have
// handed out, flushing still-pending events back to the kernel heap
// with those numbers. An event a lane schedules onto itself below the
// window's execution horizon runs inside the window (nothing outside
// the lane can affect it — the horizon is bounded by the next event
// left in the heap); everything else is staged and flushed. Cross-lane
// traffic must flow through a Channel whose latency is at least the
// lookahead, which guarantees deliveries land at or beyond the horizon
// and never need to execute inside the sending window.
//
// The contract a lane component must obey (enforced by convention and
// the equivalence/race harnesses in this package):
//
//   - Lane events touch only their own lane's state, and schedule only
//     onto their own lane (or across lanes through a Channel).
//   - Lane-scheduled events are never cancelled: Lane.At returns an
//     inert Handle during window execution.
//   - Shared instruments use the obs *At variants, which are
//     commutative (atomic add + CAS-max timestamp), so concurrent lane
//     writes fold to the serial value.
package lanes

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Default window parameters.
const (
	// DefaultLookahead is the conservative synchronization window: lane
	// events within one lookahead of the window's first event may run
	// concurrently. Larger windows amortize barrier cost; the bound on
	// cross-lane latency (Channel latency >= lookahead) is what makes
	// the concurrency safe.
	DefaultLookahead = 50 * sim.Millisecond
	// DefaultMaxWindow bounds events popped per window, keeping barrier
	// scratch memory and latency predictable under event storms.
	DefaultMaxWindow = 4096
)

// Config sizes a World.
type Config struct {
	// Lanes is the number of dataplane lanes (ids 1..Lanes; 0 is the
	// global control plane). Minimum 1.
	Lanes int
	// Workers is the number of goroutines executing lanes inside a
	// window, including the coordinator itself. <= 1 executes every
	// lane inline on the coordinator (useful as the determinism
	// baseline); 0 defaults to min(Lanes, GOMAXPROCS).
	Workers int
	// Lookahead is the window width (default DefaultLookahead).
	Lookahead sim.Duration
	// MaxWindow caps events per window (default DefaultMaxWindow).
	MaxWindow int
}

func (c Config) withDefaults() Config {
	if c.Lanes < 1 {
		c.Lanes = 1
	}
	if c.Workers == 0 {
		c.Workers = c.Lanes
		if p := runtime.GOMAXPROCS(0); c.Workers > p {
			c.Workers = p
		}
	}
	if c.Lookahead <= 0 {
		c.Lookahead = DefaultLookahead
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	return c
}

// World drives one kernel with parallel lane windows. Not safe for
// concurrent use: one goroutine calls Step/Run, and the worker pool is
// internal.
type World struct {
	k   *sim.Kernel
	cfg Config

	lanes []*Lane

	// Window scratch, reused across windows.
	evBuf   []sim.LaneEvent
	reapBuf []sim.ReapMark
	ticks   []sim.TickRun
	active  []*Lane
	win     sim.Window

	// Worker pool (nil roundCh when Workers <= 1).
	roundCh chan struct{}
	doneWg  sync.WaitGroup
	next    atomic.Int32
	closed  bool

	windows uint64 // windows executed (introspection)

	// Wall-clock profiler (nil when disabled; see profile.go). Wall
	// time never feeds back into the simulation — this is the "wall
	// plane", kept strictly out of sim-time artifacts.
	profr *Profiler
}

// NewWorld builds a laned executor over k. Call Close when done to stop
// the worker pool.
func NewWorld(k *sim.Kernel, cfg Config) *World {
	cfg = cfg.withDefaults()
	w := &World{k: k, cfg: cfg}
	w.lanes = make([]*Lane, cfg.Lanes)
	for i := range w.lanes {
		w.lanes[i] = &Lane{w: w, id: int32(i + 1)}
	}
	if cfg.Workers > 1 {
		w.roundCh = make(chan struct{})
		for i := 0; i < cfg.Workers-1; i++ {
			go func(worker int) {
				for range w.roundCh {
					w.drainLanes(worker)
					w.doneWg.Done()
				}
			}(i + 1) // worker 0 is the coordinator
		}
	}
	return w
}

// Kernel returns the underlying kernel.
func (w *World) Kernel() *sim.Kernel { return w.k }

// Lanes returns the configured lane count.
func (w *World) Lanes() int { return len(w.lanes) }

// Windows reports how many parallel windows have executed.
func (w *World) Windows() uint64 { return w.windows }

// Lane returns the lane with the given id (1-based; lane 0 is the
// global control plane and has no Lane object — schedule on the kernel
// directly).
func (w *World) Lane(id int) *Lane {
	if id < 1 || id > len(w.lanes) {
		panic(fmt.Sprintf("lanes: lane id %d out of range [1, %d]", id, len(w.lanes)))
	}
	return w.lanes[id-1]
}

// Close stops the worker pool. The World must not Step afterwards.
func (w *World) Close() {
	if w.roundCh != nil && !w.closed {
		close(w.roundCh)
	}
	w.closed = true
}

// Step advances the simulation: one serial kernel step when the next
// event is global, one parallel lane window otherwise. It reports false
// when the queue is empty.
func (w *World) Step() bool {
	lane, _, ok := w.k.NextLane()
	if !ok {
		return false
	}
	if lane == sim.GlobalLane {
		if p := w.profr; p != nil {
			start := time.Now()
			ok := w.k.Step()
			p.recordGlobal(time.Since(start))
			return ok
		}
		return w.k.Step()
	}
	w.window()
	return true
}

// Run executes until the queue is empty.
func (w *World) Run() {
	for w.Step() {
	}
}

// window pops one lane window, executes it across the pool, and folds
// the results back into the kernel.
func (w *World) window() {
	p := w.profr
	var t0, tPop, tExec, tStall time.Time
	if p != nil {
		t0 = time.Now()
	}
	w.win, w.evBuf, w.reapBuf = w.k.PopLaneWindow(w.cfg.Lookahead, w.cfg.MaxWindow, w.evBuf[:0], w.reapBuf[:0])
	win := w.win
	if p != nil {
		tPop = time.Now()
	}

	// Group the popped prefix into per-lane runqueues (order within a
	// lane is serial order — the prefix was popped in serial order).
	w.active = w.active[:0]
	for i := range w.evBuf {
		e := &w.evBuf[i]
		if e.Lane < 1 || int(e.Lane) > len(w.lanes) {
			panic(fmt.Sprintf("lanes: event tagged with unknown lane %d", e.Lane))
		}
		l := w.lanes[e.Lane-1]
		if len(l.run) == 0 {
			l.beginWindow(win)
			w.active = append(w.active, l)
		}
		l.run = append(l.run, *e)
	}

	// Execute the active lanes. The coordinator always participates;
	// extra pool workers join when there is enough work to share.
	extra := 0
	if w.roundCh != nil {
		extra = w.cfg.Workers - 1
		if n := len(w.active) - 1; extra > n {
			extra = n
		}
	}
	w.next.Store(0)
	w.doneWg.Add(extra)
	for i := 0; i < extra; i++ {
		w.roundCh <- struct{}{}
	}
	w.drainLanes(0)
	if p != nil {
		tExec = time.Now()
	}
	w.doneWg.Wait()
	if p != nil {
		tStall = time.Now()
	}

	w.barrier(win)
	if p != nil {
		p.recordWindow(w.windows, win, len(w.active), t0, tPop, tExec, tStall, time.Now())
	}
	w.windows++
}

// drainLanes claims and executes lanes off the shared cursor until none
// remain. Runs on the coordinator (worker 0) and on pool workers.
func (w *World) drainLanes(worker int) {
	for {
		n := int(w.next.Add(1)) - 1
		if n >= len(w.active) {
			return
		}
		l := w.active[n]
		if p := w.profr; p != nil {
			start := time.Now()
			l.exec()
			var events uint64
			for i := range l.ticks {
				events += l.ticks[i].Exec
			}
			p.recordExec(w.windows, l.id, worker, start, time.Now(), events)
		} else {
			l.exec()
		}
	}
}

// barrier reconstructs the serial schedule order of every call the
// lanes made during the window, flushes staged events back to the
// kernel with their exact serial sequence numbers, merges the per-lane
// tick accounting, and applies the window to the kernel.
func (w *World) barrier(win sim.Window) {
	// Phase 1: k-way merge of the per-lane stagedCall lists by the
	// serial key of the scheduling event. Each lane's list is already
	// in serial order, so the merge assigns sequence numbers exactly as
	// a serial kernel would have. A call made by a locally-executed
	// event resolves its key through the record that created that event
	// (always earlier in the same lane's list, hence already assigned).
	total := 0
	for _, l := range w.active {
		l.ptr = 0
		total += len(l.calls)
	}
	// Schedule calls merged here bypassed Kernel.schedule, so the
	// barrier emits their provenance records instead — in assigned-seq
	// order with the resolved serial key as the causal parent, exactly
	// the records a serial kernel would have produced.
	prov := w.k.Provenance()
	seq := win.SeqBase
	for n := 0; n < total; n++ {
		var best *Lane
		var bestAt sim.Time
		var bestSeq uint64
		for _, l := range w.active {
			if l.ptr >= len(l.calls) {
				continue
			}
			c := &l.calls[l.ptr]
			at, s := c.schedAt, c.schedSeq
			if c.schedIdx >= 0 {
				s = l.calls[c.schedIdx].seq
			}
			if best == nil || at < bestAt || (at == bestAt && s < bestSeq) {
				best, bestAt, bestSeq = l, at, s
			}
		}
		c := &best.calls[best.ptr]
		best.ptr++
		c.seq = seq
		seq++
		if prov != nil {
			prov(sim.ProvRecord{
				Seq: c.seq, Parent: bestSeq, At: c.at,
				PC: sim.CallbackPC(c.fn, c.argFn), Tag: c.tag,
			})
		}
		if !c.local {
			w.k.FlushLane(c.lane, c.at, c.seq, c.fn, c.argFn, c.arg)
		}
		c.fn, c.argFn, c.arg = nil, nil, nil
	}

	// Phase 2: merge per-lane tick runs by timestamp and count, for
	// each merged tick, how many reaped cancellations a serial kernel
	// would have processed before sampling at that tick (the reap list
	// is in heap-pop order, i.e. key order, so a single sweep works).
	w.ticks = w.ticks[:0]
	for _, l := range w.active {
		l.ptr = 0
	}
	for {
		var at sim.Time
		found := false
		for _, l := range w.active {
			if l.ptr >= len(l.ticks) {
				continue
			}
			if t := l.ticks[l.ptr].At; !found || t < at {
				at, found = t, true
			}
		}
		if !found {
			break
		}
		merged := sim.TickRun{At: at, FirstSeq: ^uint64(0)}
		for _, l := range w.active {
			if l.ptr >= len(l.ticks) || l.ticks[l.ptr].At != at {
				continue
			}
			tr := &l.ticks[l.ptr]
			l.ptr++
			merged.Exec += tr.Exec
			merged.Push += tr.Push
			if tr.FirstSeq < merged.FirstSeq {
				merged.FirstSeq = tr.FirstSeq
			}
		}
		w.ticks = append(w.ticks, merged)
	}
	rp := 0
	for i := range w.ticks {
		tr := &w.ticks[i]
		for rp < len(w.reapBuf) {
			r := &w.reapBuf[rp]
			if r.At < tr.At || (r.At == tr.At && r.Seq < tr.FirstSeq) {
				rp++
				continue
			}
			break
		}
		tr.ReapBefore = rp
	}

	w.k.ApplyWindow(win, w.ticks, win.SeqBase+uint64(total))

	for _, l := range w.active {
		l.endWindow()
	}
}

// localEvt is an event a lane scheduled onto itself inside the current
// window, ordered by (at, seq) where seq is a provisional lane-local
// number above every prepopped serial sequence — so the merged
// execution order within the lane matches the serial order exactly.
type localEvt struct {
	at     sim.Time
	seq    uint64
	recIdx int32 // index of the stagedCall that created this event
	fn     func()
	argFn  func(any)
	arg    any
}

// stagedCall records one schedule call made during window execution, in
// the order the lane made it. (schedAt, schedSeq/schedIdx) identify the
// serial key of the event that made the call: schedIdx >= 0 points at
// the same lane's record that created the calling event (its assigned
// seq becomes the key); -1 means the caller was a prepopped event whose
// serial seq is schedSeq.
type stagedCall struct {
	schedAt  sim.Time
	schedSeq uint64
	schedIdx int32

	at    sim.Time
	fn    func()
	argFn func(any)
	arg   any
	lane  int32 // destination lane
	tag   int32 // provenance domain tag at stage time (0 = untagged)
	local bool  // executed inside the window; consumes a seq but is not flushed
	seq   uint64
}

// Lane is one dataplane shard's scheduler. It implements sim.Scheduler,
// so substrate components (switches, capture engines, traffic drivers)
// bind to it exactly as they bind to the kernel. Outside a window —
// during setup or a global-phase event — calls route straight to the
// kernel tagged with the lane id; inside a window they are staged for
// the barrier (or run locally when safely below the execution horizon).
type Lane struct {
	w  *World
	id int32

	// Window-execution state. Owned by the executing worker during a
	// window round and by the coordinator between rounds; the round
	// dispatch channel and the barrier WaitGroup order the handoff.
	running     bool
	now         sim.Time
	execHorizon sim.Time
	run         []sim.LaneEvent
	local       []localEvt // binary min-heap by (at, seq)
	calls       []stagedCall
	ticks       []sim.TickRun
	localSeq    uint64
	curAt       sim.Time
	curSeq      uint64
	curIdx      int32
	ptr         int // barrier merge cursor

	// provTag is the provenance domain applied to staged calls (see
	// SetProvTag). Owned by whichever goroutine owns the lane: the
	// executing worker during a window, the coordinator otherwise.
	provTag int32
}

// ID returns the lane id (1-based; 0 is the global control plane).
func (l *Lane) ID() int32 { return l.id }

// SetProvTag sets the provenance domain tag applied to subsequent
// schedule calls made through this lane (the lane-executor counterpart
// of Kernel.SetProvTag). During a window the tag rides on the staged
// call; outside one it forwards to the kernel, which will emit the
// record directly.
func (l *Lane) SetProvTag(tag int32) {
	if l.running {
		l.provTag = tag
		return
	}
	l.w.k.SetProvTag(tag)
}

func (l *Lane) beginWindow(win sim.Window) {
	l.calls = l.calls[:0]
	l.ticks = l.ticks[:0]
	l.local = l.local[:0]
	l.localSeq = win.SeqBase
	l.execHorizon = win.ExecHorizon
}

func (l *Lane) endWindow() {
	l.run = l.run[:0]
	// Call records were cleared during the merge; local heap is empty
	// (every local event executed before the lane went quiescent).
}

// exec runs the lane's window subsequence: the prepopped runqueue
// merged with the self-scheduled local heap, in (at, seq) order.
func (l *Lane) exec() {
	l.running = true
	ri := 0
	for ri < len(l.run) || len(l.local) > 0 {
		if len(l.local) > 0 && (ri >= len(l.run) ||
			l.local[0].at < l.run[ri].At ||
			(l.local[0].at == l.run[ri].At && l.local[0].seq < l.run[ri].Seq)) {
			ev := l.popLocal()
			l.beginTick(ev.at, ev.seq)
			l.now, l.curAt, l.curSeq, l.curIdx = ev.at, ev.at, ev.seq, ev.recIdx
			if ev.argFn != nil {
				ev.argFn(ev.arg)
			} else {
				ev.fn()
			}
		} else {
			ev := &l.run[ri]
			ri++
			l.beginTick(ev.At, ev.Seq)
			l.now, l.curAt, l.curSeq, l.curIdx = ev.At, ev.At, ev.Seq, -1
			ev.Call()
		}
	}
	l.running = false
}

// beginTick opens (or continues) the tick-accounting record for at and
// counts one execution.
func (l *Lane) beginTick(at sim.Time, seq uint64) {
	if n := len(l.ticks); n == 0 || l.ticks[n-1].At != at {
		l.ticks = append(l.ticks, sim.TickRun{At: at, FirstSeq: seq})
	}
	l.ticks[len(l.ticks)-1].Exec++
}

// stage records one schedule call made during window execution,
// dispatching it to the local heap when it targets this lane below the
// execution horizon (it will run inside the window) and leaving it for
// the barrier flush otherwise.
func (l *Lane) stage(dst int32, t sim.Time, fn func(), argFn func(any), arg any) {
	l.ticks[len(l.ticks)-1].Push++
	rec := stagedCall{
		schedAt: l.curAt, schedSeq: l.curSeq, schedIdx: l.curIdx,
		at: t, fn: fn, argFn: argFn, arg: arg, lane: dst, tag: l.provTag,
	}
	if dst == l.id && t < l.execHorizon {
		rec.local = true
		l.pushLocal(localEvt{
			at: t, seq: l.localSeq, recIdx: int32(len(l.calls)),
			fn: fn, argFn: argFn, arg: arg,
		})
		l.localSeq++
	}
	l.calls = append(l.calls, rec)
}

// schedule is the shared core of the Scheduler methods.
func (l *Lane) schedule(t sim.Time, fn func(), argFn func(any), arg any) sim.Handle {
	if !l.running {
		// Global phase (setup, remediation restarts): schedule on the
		// kernel directly, tagged with this lane.
		if fn != nil {
			return l.w.k.LaneAt(l.id, t, fn)
		}
		return l.w.k.LaneAtArg(l.id, t, argFn, arg)
	}
	if t < l.now {
		panic(fmt.Sprintf("lanes: scheduling at %v before now %v", t, l.now))
	}
	l.stage(l.id, t, fn, argFn, arg)
	// Lane-scheduled events are not cancellable: the returned Handle is
	// inert (Cancel reports false). Components driven on lanes must
	// stop via flags, not cancellation.
	return sim.Handle{}
}

// Now returns the executing event's timestamp during a window, and the
// kernel clock otherwise — exactly what Kernel.Now reports serially.
func (l *Lane) Now() sim.Time {
	if l.running {
		return l.now
	}
	return l.w.k.Now()
}

// At implements sim.Scheduler.
func (l *Lane) At(t sim.Time, fn func()) sim.Handle {
	return l.schedule(t, fn, nil, nil)
}

// AtArg implements sim.Scheduler.
func (l *Lane) AtArg(t sim.Time, fn func(any), arg any) sim.Handle {
	return l.schedule(t, nil, fn, arg)
}

// After implements sim.Scheduler.
func (l *Lane) After(d sim.Duration, fn func()) sim.Handle {
	if d < 0 {
		panic("lanes: negative delay")
	}
	return l.schedule(l.Now()+d, fn, nil, nil)
}

// AfterArg implements sim.Scheduler.
func (l *Lane) AfterArg(d sim.Duration, fn func(any), arg any) sim.Handle {
	if d < 0 {
		panic("lanes: negative delay")
	}
	return l.schedule(l.Now()+d, nil, fn, arg)
}

// Every implements sim.Scheduler. Note that a lane ticker's Stop only
// takes effect while the lane is outside a window (lane events are not
// cancellable); prefer flag-guarded self-rescheduling on dataplanes.
func (l *Lane) Every(d sim.Duration, fn func(sim.Time)) *sim.Ticker {
	return sim.NewTicker(l, d, fn)
}

// sendTo stages a cross-lane delivery on behalf of a Channel: the call
// is recorded against the sending lane's current event (that is its
// serial position) while the scheduled event lands on the destination
// lane. Outside a window it schedules directly.
func (l *Lane) sendTo(dst int32, t sim.Time, argFn func(any), arg any) {
	if !l.running {
		l.w.k.LaneAtArg(dst, t, argFn, arg)
		return
	}
	if t < l.now {
		panic(fmt.Sprintf("lanes: cross-lane delivery at %v before now %v", t, l.now))
	}
	l.stage(dst, t, nil, argFn, arg)
}

// --- local min-heap on (at, seq) ---

func localLess(a, b localEvt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (l *Lane) pushLocal(e localEvt) {
	l.local = append(l.local, e)
	i := len(l.local) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !localLess(l.local[i], l.local[p]) {
			break
		}
		l.local[i], l.local[p] = l.local[p], l.local[i]
		i = p
	}
}

func (l *Lane) popLocal() localEvt {
	h := l.local
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = localEvt{} // drop callback references
	l.local = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && localLess(h[c+1], h[c]) {
			c++
		}
		if !localLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}
