package lanes

import (
	"runtime"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestLanedStressRandomTopologies is the race-gated stress suite: many
// small randomized networks with aggressive cross-lane traffic, each
// checked against its serial baseline. Topology parameters are drawn
// from a seeded generator and logged, so any failure replays exactly.
// It runs under `go test -race` in CI short mode (the per-topology
// workload is deliberately small).
func TestLanedStressRandomTopologies(t *testing.T) {
	const masterSeed = 0x5eed1a9e5
	topologies := 24
	if testing.Short() {
		topologies = 10
	}
	r := rng.New(masterSeed)
	workers := []int{2, 4, runtime.NumCPU()}
	for i := 0; i < topologies; i++ {
		// Draw everything up front so the scenario is fully determined
		// by (masterSeed, i) and replayable from the log line alone.
		cfg := netConfig{
			nodes:  2 + r.Intn(10),
			lanesN: 1 + r.Intn(6),
			seed:   r.Uint64(),
			// Short horizons keep the whole suite race-budget friendly.
			horizon:    sim.Time(100+r.Intn(400)) * sim.Millisecond,
			stepPeriod: sim.Duration(2+r.Intn(10)) * sim.Millisecond,
			lookahead:  sim.Duration(1+r.Intn(20)) * sim.Millisecond,
			maxWindow:  1 << uint(3+r.Intn(8)), // 8..1024
			chanCap:    1 + r.Intn(8),
			sendProb:   0.2 + 0.75*r.Float64(), // aggressive cross-lane traffic
		}
		cfg.jitterMax = cfg.lookahead*sim.Duration(1+r.Intn(4)) + sim.Millisecond
		cfg.chanLatency = cfg.lookahead + sim.Duration(r.Intn(10))*sim.Millisecond
		cfg.decoyGlobals = r.Intn(32)
		wk := workers[i%len(workers)]

		t.Logf("topology %d: nodes=%d lanes=%d seed=%#x horizon=%v step=%v jitter=%v lookahead=%v maxWindow=%d chanLat=%v chanCap=%d sendProb=%.2f decoys=%d workers=%d",
			i, cfg.nodes, cfg.lanesN, cfg.seed, cfg.horizon, cfg.stepPeriod, cfg.jitterMax,
			cfg.lookahead, cfg.maxWindow, cfg.chanLatency, cfg.chanCap, cfg.sendProb, cfg.decoyGlobals, wk)

		serial := runNet(t, cfg, -1)
		got := runNet(t, cfg, wk)
		diffResults(t, "stress", serial, got)
		if t.Failed() {
			t.Fatalf("topology %d diverged; replay with the logged parameters above", i)
		}
	}
}
