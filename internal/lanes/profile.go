// Wall-clock lane profiler — the "wall plane" of the profiling
// subsystem. It measures where real time goes in a laned run: per-worker
// busy timelines (each lane execution, attributed to the worker that
// claimed it), the coordinator's window phases (heap pop, barrier stall
// while waiting for stragglers, k-way merge), serial global-phase steps,
// and an events-per-window series. Everything here is wall time and
// therefore machine-dependent and non-deterministic; it is exported only
// through its own Chrome trace and summary, never into sim-time
// artifacts (the livemon runtime-registry split applied to profiling).
package lanes

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// DefaultProfileCap bounds retained timeline records (lane executions
// plus windows). Totals keep accumulating past the cap; only the Chrome
// trace loses detail, and DroppedRecords reports how much.
const DefaultProfileCap = 1 << 18

// laneExec is one lane execution claimed by a worker inside a window.
type laneExec struct {
	window  uint64
	lane    int32
	worker  int32
	startNs int64 // relative to the profiler epoch
	endNs   int64
	events  uint64
}

// windowRec is one window from the coordinator's perspective.
type windowRec struct {
	window   uint64
	simStart sim.Time
	horizon  sim.Time
	events   int
	lanes    int
	startNs  int64
	popEndNs int64 // pop phase ends
	execEnd  int64 // coordinator's own drain ends
	stallEnd int64 // doneWg.Wait returns (barrier stall)
	endNs    int64 // merge/apply done
}

// Profiler collects wall-clock timelines for one World. Safe for
// concurrent use: workers record lane executions while the coordinator
// records window phases, and HTTP handlers may snapshot mid-run.
type Profiler struct {
	mu      sync.Mutex
	epoch   time.Time
	workers int
	lanes   int
	cap     int

	execs   []laneExec
	windows []windowRec
	dropped uint64

	// Running totals, independent of the record cap.
	totWindows   uint64
	totEvents    uint64 // events executed inside windows
	totGlobal    uint64 // serial global-phase steps
	globalNs     int64
	windowWallNs int64 // sum of window spans (coordinator t0..end)
	popNs        int64
	stallNs      int64
	mergeNs      int64
	busyNs       []int64 // per worker
	execsPerW    []uint64
	lastNs       int64
}

func newProfiler(workers, lanes, capRecords int) *Profiler {
	if workers < 1 {
		workers = 1
	}
	if capRecords <= 0 {
		capRecords = DefaultProfileCap
	}
	return &Profiler{
		epoch:     time.Now(),
		workers:   workers,
		lanes:     lanes,
		cap:       capRecords,
		busyNs:    make([]int64, workers),
		execsPerW: make([]uint64, workers),
	}
}

// EnableProfiling attaches a wall-clock profiler to the World. Call
// before Run/Step; capRecords bounds retained timeline records (0
// selects DefaultProfileCap). Profiling never changes the event
// schedule — laned output stays byte-identical to serial.
func (w *World) EnableProfiling(capRecords int) *Profiler {
	w.profr = newProfiler(w.cfg.Workers, len(w.lanes), capRecords)
	return w.profr
}

// Profiler returns the attached profiler, or nil.
func (w *World) Profiler() *Profiler { return w.profr }

func (p *Profiler) rel(t time.Time) int64 { return t.Sub(p.epoch).Nanoseconds() }

func (p *Profiler) recordExec(window uint64, lane int32, worker int, start, end time.Time, events uint64) {
	s, e := p.rel(start), p.rel(end)
	p.mu.Lock()
	defer p.mu.Unlock()
	if worker >= 0 && worker < p.workers {
		p.busyNs[worker] += e - s
		p.execsPerW[worker]++
	}
	if e > p.lastNs {
		p.lastNs = e
	}
	if len(p.execs)+len(p.windows) >= p.cap {
		p.dropped++
		return
	}
	p.execs = append(p.execs, laneExec{
		window: window, lane: lane, worker: int32(worker),
		startNs: s, endNs: e, events: events,
	})
}

func (p *Profiler) recordWindow(window uint64, win sim.Window, lanes int, t0, tPop, tExec, tStall, tEnd time.Time) {
	s := p.rel(t0)
	e := p.rel(tEnd)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totWindows++
	p.totEvents += uint64(win.N)
	p.windowWallNs += e - s
	p.popNs += tPop.Sub(t0).Nanoseconds()
	p.stallNs += tStall.Sub(tExec).Nanoseconds()
	p.mergeNs += tEnd.Sub(tStall).Nanoseconds()
	if e > p.lastNs {
		p.lastNs = e
	}
	if len(p.execs)+len(p.windows) >= p.cap {
		p.dropped++
		return
	}
	p.windows = append(p.windows, windowRec{
		window: window, simStart: win.Start, horizon: win.Horizon,
		events: win.N, lanes: lanes,
		startNs: s, popEndNs: p.rel(tPop), execEnd: p.rel(tExec),
		stallEnd: p.rel(tStall), endNs: e,
	})
}

func (p *Profiler) recordGlobal(d time.Duration) {
	p.mu.Lock()
	p.totGlobal++
	p.globalNs += d.Nanoseconds()
	p.mu.Unlock()
}

// WorkerSummary is one worker's aggregate in a WallSummary.
type WorkerSummary struct {
	Worker int    `json:"worker"`
	Execs  uint64 `json:"lane_execs"`
	BusyNs int64  `json:"busy_ns"`
	// Utilization is BusyNs over the total wall time spent inside
	// windows (idle time inside windows is barrier wait or lane
	// starvation).
	Utilization float64 `json:"utilization"`
}

// WallSummary aggregates the wall plane of a laned run.
type WallSummary struct {
	Workers      int             `json:"workers"`
	Lanes        int             `json:"lanes"`
	Windows      uint64          `json:"windows"`
	WindowEvents uint64          `json:"window_events"`
	GlobalSteps  uint64          `json:"global_steps"`
	WallNs       int64           `json:"wall_ns"`        // epoch to last record
	WindowWallNs int64           `json:"window_wall_ns"` // Σ window spans
	GlobalNs     int64           `json:"global_ns"`      // Σ serial global steps
	PopNs        int64           `json:"pop_ns"`
	StallNs      int64           `json:"barrier_stall_ns"`
	MergeNs      int64           `json:"merge_ns"`
	BusyNs       int64           `json:"busy_ns"` // Σ worker lane-exec time
	PerWorker    []WorkerSummary `json:"per_worker"`
	// ParallelEfficiency is BusyNs / (Workers × WindowWallNs): how much
	// of the pool's capacity inside windows did useful lane work.
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	// EstSpeedup estimates the gain over executing the same lane work
	// serially: (GlobalNs + BusyNs) / (GlobalNs + WindowWallNs).
	EstSpeedup     float64 `json:"est_speedup"`
	DroppedRecords uint64  `json:"dropped_records"`
}

// Summary computes the speedup/efficiency aggregate. Safe mid-run.
func (p *Profiler) Summary() WallSummary {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := WallSummary{
		Workers: p.workers, Lanes: p.lanes,
		Windows: p.totWindows, WindowEvents: p.totEvents,
		GlobalSteps: p.totGlobal,
		WallNs:      p.lastNs, WindowWallNs: p.windowWallNs,
		GlobalNs: p.globalNs, PopNs: p.popNs,
		StallNs: p.stallNs, MergeNs: p.mergeNs,
		DroppedRecords: p.dropped,
	}
	for i := 0; i < p.workers; i++ {
		ws := WorkerSummary{Worker: i, Execs: p.execsPerW[i], BusyNs: p.busyNs[i]}
		if p.windowWallNs > 0 {
			ws.Utilization = float64(ws.BusyNs) / float64(p.windowWallNs)
		}
		s.BusyNs += ws.BusyNs
		s.PerWorker = append(s.PerWorker, ws)
	}
	if p.windowWallNs > 0 {
		s.ParallelEfficiency = float64(s.BusyNs) / (float64(p.workers) * float64(p.windowWallNs))
	}
	if denom := p.globalNs + p.windowWallNs; denom > 0 {
		s.EstSpeedup = float64(p.globalNs+s.BusyNs) / float64(denom)
	}
	return s
}

// WriteChromeTrace renders the wall plane as a Chrome trace-viewer JSON
// array (load in chrome://tracing or Perfetto): one row per lane worker
// with an "X" slice per lane execution, coordinator rows for the window
// phases (pop / stall / merge), and a counter track of events per
// window. Timestamps are wall microseconds since the profiler epoch —
// deliberately a separate timebase from obs.Tracer's sim-time traces.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	p.mu.Lock()
	execs := append([]laneExec(nil), p.execs...)
	windows := append([]windowRec(nil), p.windows...)
	workers := p.workers
	p.mu.Unlock()

	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}
	micros := func(ns int64) string {
		return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	}
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("worker %d", i)
		if i == 0 {
			name = "worker 0 (coordinator)"
		}
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, i, name)
	}
	for i := range execs {
		e := &execs[i]
		emit(`{"name":"lane %d","cat":"lane","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{"window":%d,"events":%d}}`,
			e.lane, micros(e.startNs), micros(e.endNs-e.startNs), e.worker, e.window, e.events)
	}
	for i := range windows {
		wr := &windows[i]
		emit(`{"name":"pop","cat":"window","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":0,"args":{"window":%d,"events":%d,"lanes":%d,"sim_start_ns":%d}}`,
			micros(wr.startNs), micros(wr.popEndNs-wr.startNs), wr.window, wr.events, wr.lanes, int64(wr.simStart))
		emit(`{"name":"barrier stall","cat":"window","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":0,"args":{"window":%d}}`,
			micros(wr.execEnd), micros(wr.stallEnd-wr.execEnd), wr.window)
		emit(`{"name":"merge","cat":"window","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":0,"args":{"window":%d}}`,
			micros(wr.stallEnd), micros(wr.endNs-wr.stallEnd), wr.window)
		emit(`{"name":"events/window","ph":"C","pid":1,"tid":0,"ts":%s,"args":{"events":%d}}`,
			micros(wr.startNs), wr.events)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
