package lanes

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/prof"
	"repro/internal/rng"
	"repro/internal/sim"
)

// The differential harness: a synthetic multi-node network runs once on
// the serial kernel and once per laned configuration, and every
// observable — per-node event digests, a cross-lane global observer
// digest, channel counters, the kernel checkpoint, and the queue/tick
// accounting — must match byte for byte at every worker count.

// netConfig sizes one synthetic network scenario.
type netConfig struct {
	nodes      int
	lanesN     int
	seed       uint64
	horizon    sim.Time
	stepPeriod sim.Duration
	// jitterMax bounds self-event jitter; set above the lookahead to
	// mix in-window local events with staged beyond-horizon ones.
	jitterMax sim.Duration
	lookahead sim.Duration
	maxWindow int
	// channel ring parameters
	chanLatency sim.Duration
	chanCap     int
	sendProb    float64
	// hostile extras
	decoyGlobals int // cancelled global events littering the heap
	// provenance/profiling extras (prov_test.go, profile_test.go)
	prov    func(sim.ProvRecord) // provenance hook to install on the kernel
	tagged  bool                 // wrap node schedulers with prof.TagScheduler
	profile bool                 // attach a wall-clock profiler to the World
}

// node is one synthetic dataplane endpoint. All its state is touched
// only by its own events (its lane), except the digest reads done by
// the global observer at quiescent points.
type node struct {
	id    int
	sched sim.Scheduler
	r     *rng.Source
	cfg   *netConfig
	out   *Channel
	dig   uint64
	stop  bool
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

func fold(h uint64, vs ...uint64) uint64 {
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * fnvPrime
			v >>= 8
		}
	}
	return h
}

func (n *node) fold(kind uint64, vs ...uint64) {
	n.dig = fold(fold(n.dig, kind), vs...)
}

// step is the node's main loop: schedule a burst of jittered ticks,
// then reschedule itself.
func (n *node) step() {
	now := n.sched.Now()
	if n.stop || now >= n.cfg.horizon {
		return
	}
	n.fold(1, uint64(now))
	burst := 1 + n.r.Intn(3)
	for i := 0; i < burst; i++ {
		d := sim.Duration(n.r.Int63n(int64(n.cfg.jitterMax))) + 1
		n.sched.After(d, n.tick)
	}
	n.sched.After(n.cfg.stepPeriod, n.step)
}

// tick records itself and sometimes pushes a message into the ring.
func (n *node) tick() {
	now := n.sched.Now()
	n.fold(2, uint64(now))
	if n.out != nil && n.r.Bool(n.cfg.sendProb) {
		payload := n.r.Uint64()
		if n.out.Send(now, payload) {
			n.fold(3, payload)
		} else {
			n.fold(4, payload)
		}
	}
}

// recv folds an arriving ring message; runs on this node's lane.
func (n *node) recv(at sim.Time, msg any) {
	n.fold(5, uint64(at), msg.(uint64))
}

// netResult is everything the harness compares.
type netResult struct {
	nodeDigs  []uint64
	globalDig uint64
	sent      []int64
	dropped   []int64
	cp        sim.Checkpoint
	hw        int
	maxTick   uint64
	windows   uint64
	profr     *Profiler
}

// runNet executes one scenario. workers < 0 selects the serial kernel
// baseline (no World at all); workers >= 0 runs laned.
func runNet(t *testing.T, cfg netConfig, workers int) netResult {
	t.Helper()
	k := sim.NewKernel()
	var w *World
	if workers >= 0 {
		w = NewWorld(k, Config{
			Lanes: cfg.lanesN, Workers: workers,
			Lookahead: cfg.lookahead, MaxWindow: cfg.maxWindow,
		})
		defer w.Close()
		if cfg.profile {
			w.EnableProfiling(0)
		}
	}
	if cfg.prov != nil {
		k.SetProvenance(cfg.prov)
	}

	nodes := make([]*node, cfg.nodes)
	for i := range nodes {
		n := &node{id: i, r: rng.New(cfg.seed + uint64(i)*7919), cfg: &cfg}
		if w != nil {
			n.sched = w.Lane(i%cfg.lanesN + 1)
		} else {
			n.sched = k
		}
		nodes[i] = n
	}
	// Ring channels: node i sends to node (i+1)%N. The destination
	// binding decides where recv runs; the source binding decides whose
	// window stages the delivery.
	chans := make([]*Channel, cfg.nodes)
	for i, n := range nodes {
		dst := nodes[(i+1)%cfg.nodes]
		var c *Channel
		var err error
		if w != nil {
			c, err = w.NewChannel(n.sched.(*Lane), dst.sched.(*Lane), cfg.chanLatency, cfg.chanCap, dst.recv)
		} else {
			c, err = NewSerialChannel(k, cfg.chanLatency, cfg.chanCap, dst.recv)
		}
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		n.out = c
		chans[i] = c
	}

	// Tag wrapping happens after channel creation (which needs the raw
	// *Lane) and before the initial schedule, so every node-originated
	// event is attributed to its node in both modes.
	if cfg.tagged {
		for _, n := range nodes {
			n.sched = prof.TagScheduler(n.sched, int32(n.id+1))
		}
	}

	// Initial schedule, same call order in both modes so sequence
	// numbers line up.
	for i, n := range nodes {
		n.sched.At(sim.Time(i+1)*sim.Millisecond, n.step)
	}

	// Hostile decoys: global events scheduled across the run, half of
	// them cancelled up front so they sit in the heap as reap fodder.
	dr := rng.New(cfg.seed ^ 0xdecaf)
	for i := 0; i < cfg.decoyGlobals; i++ {
		at := sim.Time(dr.Int63n(int64(cfg.horizon))) + 1
		h := k.At(at, func() {})
		if i%2 == 0 {
			h.Cancel()
		}
	}

	// Global observer: a control-plane event that reads cross-lane
	// state. Lane windows never span a global event, so at each
	// observation every lane is quiescent and has executed exactly the
	// serial prefix.
	var globalDig uint64 = fnvOffset
	obsPeriod := cfg.horizon / 16
	if obsPeriod <= 0 {
		obsPeriod = sim.Millisecond
	}
	var observe func()
	observe = func() {
		globalDig = fold(globalDig, uint64(k.Now()))
		for _, n := range nodes {
			globalDig = fold(globalDig, n.dig)
		}
		for _, c := range chans {
			globalDig = fold(globalDig, uint64(c.Sent), uint64(c.Dropped))
		}
		if t := k.Now() + obsPeriod; t < cfg.horizon {
			k.At(t, observe)
		}
	}
	k.At(obsPeriod, observe)

	if w != nil {
		w.Run()
	} else {
		k.Run()
	}

	res := netResult{
		globalDig: globalDig,
		cp:        k.Checkpoint(),
		hw:        k.QueueHighWatermark(),
		maxTick:   k.MaxEventsPerTick(),
	}
	if w != nil {
		res.windows = w.Windows()
		res.profr = w.Profiler()
	}
	for _, n := range nodes {
		res.nodeDigs = append(res.nodeDigs, n.dig)
	}
	for _, c := range chans {
		res.sent = append(res.sent, c.Sent)
		res.dropped = append(res.dropped, c.Dropped)
	}
	return res
}

func diffResults(t *testing.T, label string, want, got netResult) {
	t.Helper()
	for i := range want.nodeDigs {
		if want.nodeDigs[i] != got.nodeDigs[i] {
			t.Errorf("%s: node %d digest = %#x, serial %#x", label, i, got.nodeDigs[i], want.nodeDigs[i])
		}
	}
	if want.globalDig != got.globalDig {
		t.Errorf("%s: global digest = %#x, serial %#x", label, got.globalDig, want.globalDig)
	}
	for i := range want.sent {
		if want.sent[i] != got.sent[i] || want.dropped[i] != got.dropped[i] {
			t.Errorf("%s: channel %d sent/dropped = %d/%d, serial %d/%d",
				label, i, got.sent[i], got.dropped[i], want.sent[i], want.dropped[i])
		}
	}
	if want.cp != got.cp {
		t.Errorf("%s: checkpoint = %+v, serial %+v", label, got.cp, want.cp)
	}
	if want.hw != got.hw {
		t.Errorf("%s: queue high-watermark = %d, serial %d", label, got.hw, want.hw)
	}
	if want.maxTick != got.maxTick {
		t.Errorf("%s: max events/tick = %d, serial %d", label, got.maxTick, want.maxTick)
	}
}

func workerCounts() []int {
	counts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}
	return counts
}

// TestLanedEquivalence is the determinism gate: every laned
// configuration must reproduce the serial kernel's observables exactly.
func TestLanedEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  netConfig
	}{
		{"baseline", netConfig{
			nodes: 12, lanesN: 4, seed: 42,
			horizon: 2 * sim.Second, stepPeriod: 20 * sim.Millisecond,
			jitterMax: 150 * sim.Millisecond, // ~3x lookahead: mixes local and staged
			lookahead: 50 * sim.Millisecond, maxWindow: 4096,
			chanLatency: 50 * sim.Millisecond, chanCap: 64, sendProb: 0.3,
		}},
		{"hostile", netConfig{
			// Tiny lookahead and window force many small windows; a
			// starved channel overflows constantly; cancelled global
			// decoys exercise reap accounting mid-window.
			nodes: 9, lanesN: 3, seed: 1337,
			horizon: 1 * sim.Second, stepPeriod: 5 * sim.Millisecond,
			jitterMax: 8 * sim.Millisecond,
			lookahead: 2 * sim.Millisecond, maxWindow: 16,
			chanLatency: 2 * sim.Millisecond, chanCap: 2, sendProb: 0.8,
			decoyGlobals: 64,
		}},
		{"one-lane", netConfig{
			// Degenerate sharding: everything on one lane must still
			// match the serial kernel exactly.
			nodes: 5, lanesN: 1, seed: 7,
			horizon: 1 * sim.Second, stepPeriod: 10 * sim.Millisecond,
			jitterMax: 120 * sim.Millisecond,
			lookahead: 40 * sim.Millisecond, maxWindow: 256,
			chanLatency: 40 * sim.Millisecond, chanCap: 8, sendProb: 0.5,
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			serial := runNet(t, sc.cfg, -1)
			if serial.cp.Events == 0 {
				t.Fatal("serial baseline executed no events")
			}
			for _, workers := range workerCounts() {
				got := runNet(t, sc.cfg, workers)
				if got.windows == 0 {
					t.Errorf("workers=%d: no parallel windows executed", workers)
				}
				diffResults(t, fmt.Sprintf("workers=%d", workers), serial, got)
			}
		})
	}
}

// TestLanedRepeatable checks that two identical laned runs agree with
// each other (not just with serial) — the REPETITA bar applied to the
// parallel executor itself.
func TestLanedRepeatable(t *testing.T) {
	cfg := netConfig{
		nodes: 8, lanesN: 4, seed: 99,
		horizon: 1 * sim.Second, stepPeriod: 15 * sim.Millisecond,
		jitterMax: 100 * sim.Millisecond,
		lookahead: 25 * sim.Millisecond, maxWindow: 512,
		chanLatency: 25 * sim.Millisecond, chanCap: 16, sendProb: 0.4,
	}
	a := runNet(t, cfg, 4)
	b := runNet(t, cfg, 4)
	diffResults(t, "repeat", a, b)
}

// TestLaneHorizonOrdering checks the executor never runs an event out
// of timestamp order within a lane, including local in-window events.
func TestLaneHorizonOrdering(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, Config{Lanes: 2, Workers: 1, Lookahead: 10 * sim.Millisecond})
	defer w.Close()
	l := w.Lane(1)
	var times []sim.Time
	var chain func()
	chain = func() {
		now := l.Now()
		times = append(times, now)
		if now < 100*sim.Millisecond {
			// One short hop (in-window local) and one long hop (staged).
			l.After(1*sim.Millisecond, func() { times = append(times, l.Now()) })
			l.After(15*sim.Millisecond, chain)
		}
	}
	l.At(sim.Millisecond, chain)
	w.Run()
	if len(times) < 10 {
		t.Fatalf("chain too short: %d events", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time went backwards at %d: %v after %v", i, times[i], times[i-1])
		}
	}
}

// TestLaneHandleInert documents the cancellation contract: handles from
// in-window lane scheduling are inert.
func TestLaneHandleInert(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, Config{Lanes: 1, Workers: 1})
	defer w.Close()
	l := w.Lane(1)
	ran := false
	l.At(sim.Millisecond, func() {
		h := l.After(sim.Millisecond, func() { ran = true })
		if h.Cancel() {
			t.Error("in-window lane handle should be inert")
		}
	})
	w.Run()
	if !ran {
		t.Error("staged lane event never ran despite inert Cancel")
	}
}
