package lanes

import (
	"fmt"

	"repro/internal/sim"
)

// Channel is the only sanctioned path for cross-lane traffic: a
// bounded, timestamped, fixed-latency link from one source lane to one
// destination lane. Its latency must be at least the world's lookahead,
// which guarantees every delivery lands at or beyond the sending
// window's horizon — so a delivery never has to execute inside the
// window that produced it, and the conservative synchronization stays
// sound.
//
// Capacity models a bounded link buffer: at most capacity messages may
// be in flight (sent but not yet delivered); sends beyond that are
// dropped and counted. All Channel state is owned by the source lane
// (Send must be called from source-lane events), so no locking is
// needed and drops are deterministic.
type Channel struct {
	latency sim.Duration
	capac   int
	recv    func(at sim.Time, msg any)

	// Laned binding (src != nil) or serial binding (k != nil).
	src     *Lane
	dstLane int32
	k       *sim.Kernel

	// sendAts are the send timestamps of in-flight messages, oldest
	// first; entries older than one latency have been delivered.
	sendAts []sim.Time

	// Sent and Dropped count accepted and rejected sends. Plain fields:
	// owned by the source lane like the rest of the channel.
	Sent    int64
	Dropped int64
}

// delivery carries one message to the destination via the zero-closure
// AtArg path.
type delivery struct {
	c   *Channel
	at  sim.Time
	msg any
}

func deliverMsg(a any) {
	d := a.(*delivery)
	d.c.recv(d.at, d.msg)
}

// NewChannel builds a laned channel from src to dst. recv runs on the
// destination lane at send-time + latency. The latency must be at least
// the world's lookahead.
func (w *World) NewChannel(src, dst *Lane, latency sim.Duration, capacity int, recv func(at sim.Time, msg any)) (*Channel, error) {
	if latency < w.cfg.Lookahead {
		return nil, fmt.Errorf("lanes: channel latency %v below lookahead %v", latency, w.cfg.Lookahead)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("lanes: channel capacity %d < 1", capacity)
	}
	return &Channel{latency: latency, capac: capacity, recv: recv, src: src, dstLane: dst.id}, nil
}

// NewSerialChannel builds the serial twin of a laned channel: identical
// latency, capacity, and drop behavior, scheduled directly on the
// kernel. Differential harnesses pair it with NewChannel to check that
// laned delivery order and drops match the serial baseline exactly.
func NewSerialChannel(k *sim.Kernel, latency sim.Duration, capacity int, recv func(at sim.Time, msg any)) (*Channel, error) {
	if latency <= 0 {
		return nil, fmt.Errorf("lanes: channel latency %v must be positive", latency)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("lanes: channel capacity %d < 1", capacity)
	}
	return &Channel{latency: latency, capac: capacity, recv: recv, k: k}, nil
}

// Send offers a message at the given time (the sending event's Now). It
// returns false and counts a drop when the link buffer is full. Must be
// called from the source lane (or, for a serial channel, from any
// kernel event).
func (c *Channel) Send(now sim.Time, msg any) bool {
	// Prune delivered messages: anything sent at or before now-latency
	// has already arrived.
	keep := 0
	for keep < len(c.sendAts) && c.sendAts[keep]+sim.Time(c.latency) <= now {
		keep++
	}
	if keep > 0 {
		n := copy(c.sendAts, c.sendAts[keep:])
		c.sendAts = c.sendAts[:n]
	}
	if len(c.sendAts) >= c.capac {
		c.Dropped++
		return false
	}
	c.sendAts = append(c.sendAts, now)
	c.Sent++
	at := now + sim.Time(c.latency)
	d := &delivery{c: c, at: at, msg: msg}
	if c.src != nil {
		c.src.sendTo(c.dstLane, at, deliverMsg, d)
	} else {
		c.k.AtArg(at, deliverMsg, d)
	}
	return true
}

// InFlight reports messages sent but not yet delivered as of now.
func (c *Channel) InFlight(now sim.Time) int {
	n := 0
	for _, s := range c.sendAts {
		if s+sim.Time(c.latency) > now {
			n++
		}
	}
	return n
}
