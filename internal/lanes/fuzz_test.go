package lanes

import (
	"fmt"
	"testing"
)

// FuzzLanePartition checks the partitioner's invariants on arbitrary
// layouts: every site lands on exactly one lane, every lane id is in
// range, the result is input-order independent, and partitioning is
// site-granular (so a switch's ports can never split across lanes —
// ports belong to sites, and sites are the atoms).
func FuzzLanePartition(f *testing.F) {
	f.Add(uint64(1), 8, 4)
	f.Add(uint64(42), 28, 1)
	f.Add(uint64(7), 3, 16)
	f.Add(uint64(0), 1, 1)
	f.Add(uint64(99), 30, 7)
	f.Fuzz(func(t *testing.T, seed uint64, nSites, lanes int) {
		if nSites < 1 || nSites > 256 {
			t.Skip()
		}
		if lanes < 1 || lanes > 64 {
			t.Skip()
		}
		// Derive site weights from the seed — a cheap deterministic
		// stream keeps the corpus compact.
		sites := make([]SiteLoad, nSites)
		s := seed
		for i := range sites {
			s = s*6364136223846793005 + 1442695040888963407
			sites[i] = SiteLoad{Name: fmt.Sprintf("site-%03d", i), Weight: int(s>>33) % 1000}
		}
		got := PartitionSites(sites, lanes)

		// Every site exactly once (map covers each name; count matches).
		if len(got) != nSites {
			t.Fatalf("%d assignments for %d sites", len(got), nSites)
		}
		for _, site := range sites {
			id, ok := got[site.Name]
			if !ok {
				t.Fatalf("site %q unassigned", site.Name)
			}
			if id < 1 || int(id) > lanes {
				t.Fatalf("site %q on lane %d, want [1, %d]", site.Name, id, lanes)
			}
		}

		// Input order independence: reverse the slice, same partition.
		rev := make([]SiteLoad, nSites)
		for i, site := range sites {
			rev[nSites-1-i] = site
		}
		got2 := PartitionSites(rev, lanes)
		for name, id := range got {
			if got2[name] != id {
				t.Fatalf("order-dependent partition: %q %d vs %d", name, id, got2[name])
			}
		}

		// Balance sanity: with more lanes than sites no lane holds two
		// sites while another holds none and has weight to take.
		if lanes >= nSites {
			used := map[int32]int{}
			for _, id := range got {
				used[id]++
			}
			for id, n := range used {
				if n > 1 {
					t.Fatalf("lane %d holds %d sites with %d lanes for %d sites", id, n, lanes, nSites)
				}
			}
		}
	})
}
