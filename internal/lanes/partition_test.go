package lanes

import (
	"fmt"
	"reflect"
	"testing"
)

func TestPartitionSitesCoversAll(t *testing.T) {
	sites := []SiteLoad{
		{"STAR", 30}, {"NCSA", 25}, {"UCSD", 20}, {"MICH", 18},
		{"MASS", 15}, {"UTAH", 12}, {"TACC", 10}, {"WASH", 5},
	}
	for _, lanes := range []int{1, 2, 3, 4, 8, 16} {
		got := PartitionSites(sites, lanes)
		if len(got) != len(sites) {
			t.Fatalf("lanes=%d: %d assignments, want %d", lanes, len(got), len(sites))
		}
		for _, s := range sites {
			id, ok := got[s.Name]
			if !ok {
				t.Fatalf("lanes=%d: site %q unassigned", lanes, s.Name)
			}
			if id < 1 || int(id) > lanes {
				t.Fatalf("lanes=%d: site %q on lane %d out of range", lanes, s.Name, id)
			}
		}
	}
}

func TestPartitionSitesBalances(t *testing.T) {
	// 4 equal heavy sites over 4 lanes must land one per lane.
	sites := []SiteLoad{{"A", 10}, {"B", 10}, {"C", 10}, {"D", 10}}
	got := PartitionSites(sites, 4)
	used := map[int32]bool{}
	for _, id := range got {
		if used[id] {
			t.Fatalf("lane %d assigned twice: %v", id, got)
		}
		used[id] = true
	}
	// LPT: one big site plus many small ones — the big site gets a lane
	// roughly to itself.
	sites = []SiteLoad{{"BIG", 100}, {"s1", 10}, {"s2", 10}, {"s3", 10}, {"s4", 10}}
	got = PartitionSites(sites, 2)
	bigLane := got["BIG"]
	for name, id := range got {
		if name != "BIG" && id == bigLane {
			t.Fatalf("small site %q shares lane %d with BIG: %v", name, id, got)
		}
	}
}

func TestPartitionSitesDeterministic(t *testing.T) {
	sites := []SiteLoad{{"c", 5}, {"a", 5}, {"b", 7}, {"d", 3}}
	want := PartitionSites(sites, 3)
	for i := 0; i < 10; i++ {
		if got := PartitionSites(sites, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: %v != %v", i, got, want)
		}
	}
	// Input order must not matter: the sort key is (weight, name).
	shuffled := []SiteLoad{{"d", 3}, {"b", 7}, {"a", 5}, {"c", 5}}
	if got := PartitionSites(shuffled, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("input order changed the partition: %v != %v", got, want)
	}
}

func TestPartitionSitesMoreLanesThanSites(t *testing.T) {
	sites := []SiteLoad{{"A", 1}, {"B", 2}}
	got := PartitionSites(sites, 8)
	for name, id := range got {
		if id < 1 || id > 8 {
			t.Fatalf("site %q on lane %d", name, id)
		}
	}
}

func TestPartitionSitesDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate site must panic")
		}
	}()
	PartitionSites([]SiteLoad{{"A", 1}, {"A", 2}}, 2)
}

func ExamplePartitionSites() {
	assign := PartitionSites([]SiteLoad{
		{Name: "STAR", Weight: 24}, {Name: "NCSA", Weight: 18}, {Name: "UCSD", Weight: 12},
	}, 2)
	fmt.Println(assign["STAR"] != assign["NCSA"], len(assign))
	// Output: true 3
}
