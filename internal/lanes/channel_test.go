package lanes

import (
	"testing"

	"repro/internal/sim"
)

func TestChannelLatencyValidation(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, Config{Lanes: 2, Workers: 1, Lookahead: 50 * sim.Millisecond})
	defer w.Close()
	if _, err := w.NewChannel(w.Lane(1), w.Lane(2), 10*sim.Millisecond, 4, func(sim.Time, any) {}); err == nil {
		t.Fatal("latency below lookahead must be rejected")
	}
	if _, err := w.NewChannel(w.Lane(1), w.Lane(2), 50*sim.Millisecond, 0, func(sim.Time, any) {}); err == nil {
		t.Fatal("zero capacity must be rejected")
	}
	if _, err := w.NewChannel(w.Lane(1), w.Lane(2), 50*sim.Millisecond, 4, func(sim.Time, any) {}); err != nil {
		t.Fatalf("valid channel rejected: %v", err)
	}
}

func TestChannelBoundedDrops(t *testing.T) {
	k := sim.NewKernel()
	var got []sim.Time
	c, err := NewSerialChannel(k, 10*sim.Millisecond, 2, func(at sim.Time, msg any) {
		got = append(got, at)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.At(sim.Millisecond, func() {
		now := k.Now()
		// Three rapid sends into a capacity-2 link: third drops.
		for i := 0; i < 3; i++ {
			c.Send(now, i)
		}
		if c.Sent != 2 || c.Dropped != 1 {
			t.Errorf("sent/dropped = %d/%d, want 2/1", c.Sent, c.Dropped)
		}
		if inf := c.InFlight(now); inf != 2 {
			t.Errorf("in-flight = %d, want 2", inf)
		}
	})
	// After one latency the buffer has drained; capacity is available
	// again.
	k.At(20*sim.Millisecond, func() {
		if !c.Send(k.Now(), 99) {
			t.Error("send after drain should succeed")
		}
	})
	k.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d messages, want 3", len(got))
	}
	if got[0] != sim.Millisecond+10*sim.Millisecond {
		t.Errorf("first delivery at %v", got[0])
	}
}

// TestChannelCrossLaneDelivery checks a laned send arrives on the
// destination lane at exactly send-time + latency.
func TestChannelCrossLaneDelivery(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, Config{Lanes: 2, Workers: 2, Lookahead: 5 * sim.Millisecond})
	defer w.Close()
	src, dst := w.Lane(1), w.Lane(2)
	var deliveredAt sim.Time
	var onLaneNow sim.Time
	c, err := w.NewChannel(src, dst, 5*sim.Millisecond, 4, func(at sim.Time, msg any) {
		deliveredAt = at
		onLaneNow = dst.Now()
		if msg.(string) != "frame" {
			t.Errorf("payload = %v", msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	src.At(3*sim.Millisecond, func() {
		if !c.Send(src.Now(), "frame") {
			t.Error("send failed")
		}
	})
	w.Run()
	want := 3*sim.Millisecond + 5*sim.Millisecond
	if deliveredAt != want || onLaneNow != want {
		t.Fatalf("delivered at %v (lane now %v), want %v", deliveredAt, onLaneNow, want)
	}
}
