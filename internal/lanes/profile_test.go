package lanes

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// TestProfilerSummary runs a laned scenario with the wall-clock
// profiler attached and sanity-checks the aggregate — and, critically,
// that profiling never perturbs the simulation's observables.
func TestProfilerSummary(t *testing.T) {
	cfg := provConfig()
	cfg.tagged = false
	serial := runNet(t, cfg, -1)

	profCfg := cfg
	profCfg.profile = true
	res := runNet(t, profCfg, 2)
	diffResults(t, "profiled", serial, res)

	if res.profr == nil {
		t.Fatal("no profiler attached")
	}
	s := res.profr.Summary()
	if s.Workers != 2 {
		t.Errorf("workers = %d, want 2", s.Workers)
	}
	if s.Lanes != cfg.lanesN {
		t.Errorf("lanes = %d, want %d", s.Lanes, cfg.lanesN)
	}
	if s.Windows == 0 || s.Windows != res.windows {
		t.Errorf("windows = %d, world saw %d", s.Windows, res.windows)
	}
	if s.WindowEvents == 0 {
		t.Error("no window events recorded")
	}
	if s.GlobalSteps == 0 {
		t.Error("no serial global steps recorded (decoys guarantee some)")
	}
	if s.BusyNs <= 0 || s.WindowWallNs <= 0 {
		t.Errorf("busy/windowWall = %d/%d, want positive", s.BusyNs, s.WindowWallNs)
	}
	if len(s.PerWorker) != s.Workers {
		t.Fatalf("per-worker rows = %d, want %d", len(s.PerWorker), s.Workers)
	}
	var busy int64
	for _, w := range s.PerWorker {
		busy += w.BusyNs
	}
	if busy != s.BusyNs {
		t.Errorf("per-worker busy sums to %d, total %d", busy, s.BusyNs)
	}
	if s.ParallelEfficiency <= 0 || s.ParallelEfficiency > 1 {
		t.Errorf("parallel efficiency = %v, want in (0, 1]", s.ParallelEfficiency)
	}
	if s.EstSpeedup <= 0 {
		t.Errorf("est speedup = %v, want positive", s.EstSpeedup)
	}
	if s.DroppedRecords != 0 {
		t.Errorf("dropped %d records under the default cap", s.DroppedRecords)
	}
}

// TestProfilerChromeTrace checks the wall-plane export is valid Chrome
// trace JSON with worker metadata and lane slices.
func TestProfilerChromeTrace(t *testing.T) {
	cfg := provConfig()
	cfg.tagged = false
	cfg.profile = true
	res := runNet(t, cfg, 2)

	var buf bytes.Buffer
	if err := res.profr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var meta, lanes, stalls, counters int
	for _, e := range events {
		switch {
		case e["ph"] == "M":
			meta++
		case e["cat"] == "lane":
			lanes++
		case e["name"] == "barrier stall":
			stalls++
		case e["ph"] == "C":
			counters++
		}
	}
	if meta != 2 {
		t.Errorf("%d thread_name records, want 2 (one per worker)", meta)
	}
	if lanes == 0 || stalls == 0 || counters == 0 {
		t.Errorf("lane/stall/counter events = %d/%d/%d, want all nonzero", lanes, stalls, counters)
	}
}

// TestProfilerCap checks the record cap drops detail but keeps totals.
func TestProfilerCap(t *testing.T) {
	k := sim.NewKernel()
	w := NewWorld(k, Config{Lanes: 2, Workers: 1, Lookahead: sim.Millisecond, MaxWindow: 16})
	defer w.Close()
	p := w.EnableProfiling(4)
	for i := 1; i <= 2; i++ {
		l := w.Lane(i)
		var tick func()
		n := 0
		tick = func() {
			if n++; n < 50 {
				l.After(100*sim.Microsecond, tick)
			}
		}
		l.After(sim.Microsecond, tick)
	}
	w.Run()
	s := p.Summary()
	if s.DroppedRecords == 0 {
		t.Error("tiny cap never tripped")
	}
	if s.Windows == 0 || s.BusyNs <= 0 {
		t.Errorf("totals lost under cap: windows=%d busy=%d", s.Windows, s.BusyNs)
	}
}
