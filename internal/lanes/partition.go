package lanes

import (
	"fmt"
	"sort"
)

// SiteLoad is one site's name and its expected event weight (for
// Patchwork campaigns: switch port count, a proxy for frames per
// window).
type SiteLoad struct {
	Name   string
	Weight int
}

// PartitionSites assigns every site to exactly one lane, balancing
// total weight across lanes with the LPT greedy heuristic: sites in
// descending weight (name-ascending tiebreak), each placed on the
// currently lightest lane (lowest id on ties). The result is
// deterministic for a given input, lane ids are 1-based (0 is the
// global control plane), every lane id is in [1, lanes], and a site
// never spans two lanes — its switch, capture engine, and traffic
// driver all follow it.
func PartitionSites(sites []SiteLoad, lanes int) map[string]int32 {
	if lanes < 1 {
		lanes = 1
	}
	ordered := make([]SiteLoad, len(sites))
	copy(ordered, sites)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Weight != ordered[j].Weight {
			return ordered[i].Weight > ordered[j].Weight
		}
		return ordered[i].Name < ordered[j].Name
	})
	load := make([]int64, lanes)
	out := make(map[string]int32, len(sites))
	for _, s := range ordered {
		if _, dup := out[s.Name]; dup {
			panic(fmt.Sprintf("lanes: duplicate site %q in partition input", s.Name))
		}
		best := 0
		for i := 1; i < lanes; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		// Every site costs at least 1, so placing a zero-weight site
		// still marks its lane as more loaded than an empty one —
		// otherwise the greedy pass would stack every weightless site on
		// lane 0 while other lanes sit idle.
		w := int64(s.Weight)
		if w < 1 {
			w = 1
		}
		load[best] += w
		out[s.Name] = int32(best + 1)
	}
	return out
}
