// Package flowstore is the columnar on-disk flow store behind the
// streaming analysis pipeline: cold flows spilled from the in-memory
// flow table land here as append-only CRC-framed segments, and queries
// (time ranges, 5-tuple lookups) are answered from segment metadata —
// a per-segment time range and a key bloom filter — without re-scanning
// pcaps.
//
// On-disk layout (one append-only file):
//
//	segment := magic "PWFS"
//	           metaBlock  (crc32-framed: site, row count, time range,
//	                       column-region length, bloom filter)
//	           colsBlock  (crc32-framed: one byte array per column)
//
// Each block is framed [crc32 uint32][len uint32][body], the binary
// sibling of the journal's "crc32-hex8 body" line framing, and a torn
// final segment (the writer died mid-append) is detected by its CRC or
// missing bytes and ignored on open — the same tolerance the campaign
// journal applies to its WAL tail.
package flowstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/sketch"
	"repro/internal/storefault"
	"repro/internal/wire"
)

var magic = [4]byte{'P', 'W', 'F', 'S'}

// Key identifies a flow: the virtualization tags plus network- and
// transport-layer fields. It mirrors the analysis package's FlowKey
// (which converts to and from it) without importing it — the store
// sits below the analysis layer.
type Key struct {
	VLANID           uint16
	MPLSTop          uint32
	Src, Dst         wire.Endpoint
	Proto            wire.LayerType
	SrcPort, DstPort uint16
}

// appendKeyBytes appends a canonical byte encoding of the key, used for
// bloom-filter hashing.
func appendKeyBytes(dst []byte, k Key) []byte {
	dst = append(dst, byte(k.VLANID>>8), byte(k.VLANID),
		byte(k.MPLSTop>>24), byte(k.MPLSTop>>16), byte(k.MPLSTop>>8), byte(k.MPLSTop),
		byte(k.Proto), byte(k.SrcPort>>8), byte(k.SrcPort), byte(k.DstPort>>8), byte(k.DstPort),
		byte(k.Src.Type()), byte(k.Dst.Type()))
	dst = append(dst, k.Src.Raw()...)
	dst = append(dst, k.Dst.Raw()...)
	return dst
}

// Rec is one stored flow row: a key plus the totals observed over
// [FirstNs, LastNs]. FirstSeq is the global first-seen frame sequence,
// preserved so merged results can be ordered exactly as the in-memory
// baseline orders them (insertion order).
type Rec struct {
	Key             Key
	Site            string
	FirstNs, LastNs int64
	FirstSeq        uint64
	Frames          uint64
	Bytes           uint64
}

// Bloom parameters: ~10 bits and 4 probes per key give a ~1-2% false
// positive rate — a false positive only costs decoding one segment.
const (
	bloomBitsPerKey = 10
	bloomProbes     = 4
)

type bloom []byte

func newBloom(n int) bloom {
	bits := n * bloomBitsPerKey
	if bits < 64 {
		bits = 64
	}
	return make(bloom, (bits+7)/8)
}

func (b bloom) add(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b) * 8)
	for i := uint32(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % n
		b[bit/8] |= 1 << (bit % 8)
	}
}

func (b bloom) maybe(h uint64) bool {
	if len(b) == 0 {
		return false
	}
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b) * 8)
	for i := uint32(0); i < bloomProbes; i++ {
		bit := (h1 + i*h2) % n
		if b[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// putBlock frames body as [crc][len][body].
func putBlock(w io.Writer, body []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// segment metadata as decoded from a metaBlock.
type segMeta struct {
	site    string
	count   int
	minNs   int64
	maxNs   int64
	colsLen uint32 // length of the framed column block (crc+len+body)
	filter  bloom
	colsOff int64 // file offset of the column block
}

func encodeMeta(m *segMeta) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { out = append(out, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	put(uint64(len(m.site)))
	out = append(out, m.site...)
	put(uint64(m.count))
	put(uint64(m.minNs))
	put(uint64(m.maxNs))
	put(uint64(m.colsLen))
	put(uint64(len(m.filter)))
	out = append(out, m.filter...)
	return out
}

func decodeMeta(b []byte) (*segMeta, error) {
	get := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("flowstore: truncated segment meta")
		}
		b = b[n:]
		return v, nil
	}
	siteLen, err := get()
	if err != nil {
		return nil, err
	}
	if siteLen > uint64(len(b)) {
		return nil, fmt.Errorf("flowstore: truncated site label")
	}
	m := &segMeta{site: string(b[:siteLen])}
	b = b[siteLen:]
	cnt, err := get()
	if err != nil {
		return nil, err
	}
	if cnt > 1<<30 {
		return nil, fmt.Errorf("flowstore: implausible row count %d", cnt)
	}
	m.count = int(cnt)
	minNs, err := get()
	if err != nil {
		return nil, err
	}
	maxNs, err := get()
	if err != nil {
		return nil, err
	}
	m.minNs, m.maxNs = int64(minNs), int64(maxNs)
	colsLen, err := get()
	if err != nil {
		return nil, err
	}
	if colsLen > 1<<32-1 {
		return nil, fmt.Errorf("flowstore: implausible column length %d", colsLen)
	}
	m.colsLen = uint32(colsLen)
	fl, err := get()
	if err != nil {
		return nil, err
	}
	if fl > uint64(len(b)) {
		return nil, fmt.Errorf("flowstore: truncated bloom filter")
	}
	m.filter = bloom(append([]byte(nil), b[:fl]...))
	return m, nil
}

// encodeCols lays the rows out column by column. Per-row integers are
// uvarints; timestamps are stored as deltas against the segment minimum
// (FirstNs) and the row's own FirstNs (LastNs), which keeps them short.
func encodeCols(recs []Rec, minNs int64) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { out = append(out, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	for _, r := range recs { // column: FirstNs delta
		put(uint64(r.FirstNs - minNs))
	}
	for _, r := range recs { // column: LastNs delta
		put(uint64(r.LastNs - r.FirstNs))
	}
	for _, r := range recs {
		put(r.FirstSeq)
	}
	for _, r := range recs {
		put(r.Frames)
	}
	for _, r := range recs {
		put(r.Bytes)
	}
	for _, r := range recs {
		put(uint64(r.Key.VLANID))
	}
	for _, r := range recs {
		put(uint64(r.Key.MPLSTop))
	}
	for _, r := range recs {
		out = append(out, byte(r.Key.Proto))
	}
	for _, r := range recs {
		put(uint64(r.Key.SrcPort))
	}
	for _, r := range recs {
		put(uint64(r.Key.DstPort))
	}
	for _, r := range recs { // column: endpoint types
		out = append(out, byte(r.Key.Src.Type()), byte(r.Key.Dst.Type()))
	}
	for _, r := range recs { // column: endpoint raw bytes (length from type)
		out = append(out, r.Key.Src.Raw()...)
		out = append(out, r.Key.Dst.Raw()...)
	}
	return out
}

func endpointRawLen(t wire.EndpointType) int {
	switch t {
	case wire.EndpointMAC:
		return 6
	case wire.EndpointIPv4:
		return 4
	case wire.EndpointIPv6:
		return 16
	case wire.EndpointTCPPort, wire.EndpointUDPPort:
		return 2
	default:
		return 0
	}
}

func decodeCols(b []byte, m *segMeta) ([]Rec, error) {
	get := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("flowstore: truncated column data")
		}
		b = b[n:]
		return v, nil
	}
	n := m.count
	recs := make([]Rec, n)
	for i := 0; i < n; i++ {
		d, err := get()
		if err != nil {
			return nil, err
		}
		recs[i].FirstNs = m.minNs + int64(d)
		recs[i].Site = m.site
	}
	for i := 0; i < n; i++ {
		d, err := get()
		if err != nil {
			return nil, err
		}
		recs[i].LastNs = recs[i].FirstNs + int64(d)
	}
	for _, col := range []func(i int, v uint64){
		func(i int, v uint64) { recs[i].FirstSeq = v },
		func(i int, v uint64) { recs[i].Frames = v },
		func(i int, v uint64) { recs[i].Bytes = v },
		func(i int, v uint64) { recs[i].Key.VLANID = uint16(v) },
		func(i int, v uint64) { recs[i].Key.MPLSTop = uint32(v) },
	} {
		for i := 0; i < n; i++ {
			v, err := get()
			if err != nil {
				return nil, err
			}
			col(i, v)
		}
	}
	if len(b) < n {
		return nil, fmt.Errorf("flowstore: truncated proto column")
	}
	for i := 0; i < n; i++ {
		recs[i].Key.Proto = wire.LayerType(b[i])
	}
	b = b[n:]
	for _, col := range []func(i int, v uint64){
		func(i int, v uint64) { recs[i].Key.SrcPort = uint16(v) },
		func(i int, v uint64) { recs[i].Key.DstPort = uint16(v) },
	} {
		for i := 0; i < n; i++ {
			v, err := get()
			if err != nil {
				return nil, err
			}
			col(i, v)
		}
	}
	if len(b) < 2*n {
		return nil, fmt.Errorf("flowstore: truncated endpoint-type column")
	}
	types := b[:2*n]
	b = b[2*n:]
	for i := 0; i < n; i++ {
		st := wire.EndpointType(types[2*i])
		dt := wire.EndpointType(types[2*i+1])
		sl, dl := endpointRawLen(st), endpointRawLen(dt)
		if len(b) < sl+dl {
			return nil, fmt.Errorf("flowstore: truncated endpoint bytes")
		}
		recs[i].Key.Src = wire.NewRawEndpoint(st, b[:sl])
		b = b[sl:]
		recs[i].Key.Dst = wire.NewRawEndpoint(dt, b[:dl])
		b = b[dl:]
	}
	return recs, nil
}

// Writer appends segments to a flow-store file.
type Writer struct {
	f        storefault.File
	w        *bufio.Writer
	Segments int
	Rows     int64
}

// Create truncates/creates the store file at path.
func Create(path string) (*Writer, error) {
	return CreateFS(nil, path)
}

// CreateFS is Create through an explicit filesystem seam (nil means the
// real disk) — the storage-chaos injection point.
func CreateFS(fsys storefault.FS, path string) (*Writer, error) {
	f, err := storefault.Or(fsys).Create(path)
	if err != nil {
		return nil, fmt.Errorf("flowstore: %w", err)
	}
	return &Writer{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Append writes one segment holding recs, labeled with the site the
// rows came from. Row order is preserved. Empty appends are no-ops.
func (w *Writer) Append(site string, recs []Rec) error {
	if len(recs) == 0 {
		return nil
	}
	m := &segMeta{site: site, count: len(recs)}
	m.minNs, m.maxNs = recs[0].FirstNs, recs[0].LastNs
	var keyBuf []byte
	m.filter = newBloom(len(recs))
	for _, r := range recs {
		if r.FirstNs < m.minNs {
			m.minNs = r.FirstNs
		}
		if r.LastNs > m.maxNs {
			m.maxNs = r.LastNs
		}
		keyBuf = appendKeyBytes(keyBuf[:0], r.Key)
		m.filter.add(sketch.Hash64(keyBuf))
	}
	cols := encodeCols(recs, m.minNs)
	m.colsLen = uint32(len(cols) + 8) // framed length
	if _, err := w.w.Write(magic[:]); err != nil {
		return fmt.Errorf("flowstore: %w", err)
	}
	if err := putBlock(w.w, encodeMeta(m)); err != nil {
		return fmt.Errorf("flowstore: %w", err)
	}
	if err := putBlock(w.w, cols); err != nil {
		return fmt.Errorf("flowstore: %w", err)
	}
	w.Segments++
	w.Rows += int64(len(recs))
	return nil
}

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("flowstore: %w", err)
	}
	return w.f.Close()
}

// Store is an opened flow-store file: segment metadata in memory,
// column data read on demand per query.
type Store struct {
	f    storefault.File
	segs []*segMeta
	rows int64
	torn bool
}

// Open scans the file's segment headers. A torn or corrupt final
// segment is tolerated (dropped, Torn reports true); corruption before
// the final segment is an error.
func Open(path string) (*Store, error) {
	return OpenFS(nil, path)
}

// OpenFS is Open through an explicit filesystem seam (nil means the
// real disk).
func OpenFS(fsys storefault.FS, path string) (*Store, error) {
	fsys = storefault.Or(fsys)
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flowstore: %w", err)
	}
	st := &Store{f: f}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("flowstore: %w", err)
	}
	off := int64(0)
	for off < size {
		m, next, ok := readSegHeader(f, off, size)
		if !ok {
			// Damaged tail: only tolerable at the end of the file.
			st.torn = true
			break
		}
		st.segs = append(st.segs, m)
		st.rows += int64(m.count)
		off = next
	}
	return st, nil
}

// readSegHeader parses a segment's magic + meta block at off and
// validates that the column block fits in the file; returns the meta,
// the offset of the next segment, and ok=false on any damage.
func readSegHeader(f io.ReaderAt, off, size int64) (*segMeta, int64, bool) {
	var hdr [12]byte // magic + block frame
	if off+12 > size {
		return nil, 0, false
	}
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, false
	}
	if [4]byte(hdr[0:4]) != magic {
		return nil, 0, false
	}
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	mlen := binary.LittleEndian.Uint32(hdr[8:12])
	if mlen > 1<<28 || off+12+int64(mlen) > size {
		return nil, 0, false
	}
	body := make([]byte, mlen)
	if _, err := f.ReadAt(body, off+12); err != nil {
		return nil, 0, false
	}
	if crc32.ChecksumIEEE(body) != crc {
		return nil, 0, false
	}
	m, err := decodeMeta(body)
	if err != nil {
		return nil, 0, false
	}
	m.colsOff = off + 12 + int64(mlen)
	if m.colsOff+int64(m.colsLen) > size {
		return nil, 0, false
	}
	return m, m.colsOff + int64(m.colsLen), true
}

// readCols reads and validates a segment's column block.
func (s *Store) readCols(m *segMeta) ([]Rec, error) { return readColsAt(s.f, m) }

func readColsAt(f io.ReaderAt, m *segMeta) ([]Rec, error) {
	buf := make([]byte, m.colsLen)
	if _, err := f.ReadAt(buf, m.colsOff); err != nil {
		return nil, fmt.Errorf("flowstore: reading columns: %w", err)
	}
	if len(buf) < 8 {
		return nil, fmt.Errorf("flowstore: column block too short")
	}
	crc := binary.LittleEndian.Uint32(buf[0:4])
	blen := binary.LittleEndian.Uint32(buf[4:8])
	if int(blen)+8 != len(buf) {
		return nil, fmt.Errorf("flowstore: column block length mismatch")
	}
	body := buf[8:]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("flowstore: column block CRC mismatch")
	}
	return decodeCols(body, m)
}

// Torn reports whether the file ended in a damaged segment that was
// dropped on open.
func (s *Store) Torn() bool { return s.torn }

// Segments returns the number of intact segments.
func (s *Store) Segments() int { return len(s.segs) }

// Rows returns the total stored row count.
func (s *Store) Rows() int64 { return s.rows }

// Close closes the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// Query selects rows. Zero values leave a dimension unconstrained: a
// zero time range matches everything, an empty site matches all sites,
// a nil key matches all flows, and Limit <= 0 returns all matches.
type Query struct {
	FromNs, ToNs int64
	Site         string
	Key          *Key
	Limit        int
}

// Query returns matching rows in storage order (segment order, then row
// order within a segment). Segment metadata prunes the scan: segments
// outside the time range, with a different site label, or whose bloom
// filter excludes the key are skipped without touching column data.
func (s *Store) Query(q Query) ([]Rec, error) {
	var keyHash uint64
	if q.Key != nil {
		keyHash = sketch.Hash64(appendKeyBytes(nil, *q.Key))
	}
	var out []Rec
	for _, m := range s.segs {
		if q.ToNs > 0 && m.minNs > q.ToNs {
			continue
		}
		if q.FromNs > 0 && m.maxNs < q.FromNs {
			continue
		}
		if q.Site != "" && m.site != q.Site {
			continue
		}
		if q.Key != nil && !m.filter.maybe(keyHash) {
			continue
		}
		recs, err := s.readCols(m)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if q.ToNs > 0 && r.FirstNs > q.ToNs {
				continue
			}
			if q.FromNs > 0 && r.LastNs < q.FromNs {
				continue
			}
			if q.Key != nil && r.Key != *q.Key {
				continue
			}
			out = append(out, r)
			if q.Limit > 0 && len(out) >= q.Limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// ForEach streams every stored row in storage order.
func (s *Store) ForEach(fn func(Rec) error) error {
	for _, m := range s.segs {
		recs, err := s.readCols(m)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyReport is one scrub pass over a store file. Unlike Open — which
// stops at the first damaged segment — Verify decodes every segment's
// meta AND column block (catching bit flips Open's lazy reads would
// only surface at query time) and scans past damage for later intact
// segments, which is what distinguishes a tolerable torn tail from
// mid-file corruption.
type VerifyReport struct {
	// Segments and Rows count the leading run of fully intact segments.
	Segments int
	Rows     int64
	// Good is the byte offset where the leading intact run ends — the
	// truncation point Repair uses. Size is the file size.
	Good, Size int64
	// MidFile reports intact segments found after damage: corruption in
	// the middle of the file, not a torn tail.
	MidFile bool
}

// Damaged reports whether the scrub found anything wrong.
func (r VerifyReport) Damaged() bool { return r.Good < r.Size }

// TornTail reports the tolerable damage class: a single damaged region
// ending the file.
func (r VerifyReport) TornTail() bool { return r.Damaged() && !r.MidFile }

// Verify scrubs a store file (nil fsys means the real disk).
func Verify(fsys storefault.FS, path string) (VerifyReport, error) {
	fsys = storefault.Or(fsys)
	f, err := fsys.Open(path)
	if err != nil {
		return VerifyReport{}, fmt.Errorf("flowstore: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return VerifyReport{}, fmt.Errorf("flowstore: %w", err)
	}
	rep := VerifyReport{Size: size}
	off, damaged := int64(0), false
	for off < size {
		m, next, ok := readSegHeader(f, off, size)
		if ok {
			if _, err := readColsAt(f, m); err != nil {
				ok = false
			}
		}
		if ok {
			if !damaged {
				rep.Segments++
				rep.Rows += int64(m.count)
				rep.Good = next
			} else {
				rep.MidFile = true
			}
			off = next
			continue
		}
		if !damaged {
			rep.Good = off
			damaged = true
		}
		off = nextMagic(f, off+1, size)
		if off < 0 {
			break
		}
	}
	return rep, nil
}

// nextMagic returns the offset of the next magic occurrence at or after
// from, or -1.
func nextMagic(f io.ReaderAt, from, size int64) int64 {
	const chunk = 1 << 16
	buf := make([]byte, chunk+len(magic)-1)
	for off := from; off < size; off += chunk {
		n, _ := f.ReadAt(buf, off)
		if i := bytes.Index(buf[:n], magic[:]); i >= 0 {
			return off + int64(i)
		}
		if off+int64(n) >= size {
			break
		}
	}
	return -1
}

// Repair truncates the store file to the end of its leading intact run
// (a no-op on a clean file). Mid-file corruption loses the segments
// behind it — the repair contract is "last valid frame", not recovery.
func Repair(fsys storefault.FS, path string) (VerifyReport, error) {
	fsys = storefault.Or(fsys)
	rep, err := Verify(fsys, path)
	if err != nil {
		return rep, err
	}
	if rep.Damaged() {
		if err := fsys.Truncate(path, rep.Good); err != nil {
			return rep, fmt.Errorf("flowstore: repair: %w", err)
		}
	}
	return rep, nil
}
