package flowstore

import (
	"bytes"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

func testKey(i int) Key {
	a := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
	b := netip.AddrFrom4([4]byte{10, 1, 2, 3})
	return Key{
		VLANID:  uint16(i % 7),
		MPLSTop: uint32(i % 3 * 1000),
		Src:     wire.NewIPEndpoint(a),
		Dst:     wire.NewIPEndpoint(b),
		Proto:   wire.LayerTypeTCP,
		SrcPort: uint16(20000 + i),
		DstPort: 443,
	}
}

func testRecs(n int, site string, baseNs int64) []Rec {
	recs := make([]Rec, n)
	for i := range recs {
		recs[i] = Rec{
			Key:      testKey(i),
			Site:     site,
			FirstNs:  baseNs + int64(i)*1e6,
			LastNs:   baseNs + int64(i)*1e6 + 5e8,
			FirstSeq: uint64(i),
			Frames:   uint64(i%13 + 1),
			Bytes:    uint64((i%13 + 1) * 800),
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flows.seg")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	segs := [][]Rec{
		testRecs(50, "site-a", 1e9),
		testRecs(30, "site-b", 100e9),
		testRecs(1, "site-a", 200e9),
	}
	for _, recs := range segs {
		if err := w.Append(recs[0].Site, recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Torn() {
		t.Error("clean store reports torn")
	}
	if st.Segments() != 3 || st.Rows() != 81 {
		t.Fatalf("segments=%d rows=%d, want 3/81", st.Segments(), st.Rows())
	}
	var got []Rec
	if err := st.ForEach(func(r Rec) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	var want []Rec
	for _, s := range segs {
		want = append(want, s...)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestQueryPruning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flows.seg")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("site-a", testRecs(40, "site-a", 1e9))
	w.Append("site-b", testRecs(40, "site-b", 1000e9))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Time-range query hitting only the second segment.
	recs, err := st.Query(Query{FromNs: 999e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Errorf("time query: %d rows, want 40", len(recs))
	}
	for _, r := range recs {
		if r.Site != "site-b" {
			t.Fatalf("time query leaked row from %s", r.Site)
		}
	}
	// Site filter.
	recs, err = st.Query(Query{Site: "site-a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Errorf("site query: %d rows, want 40", len(recs))
	}
	// Exact-key query: each key appears once per segment's site batch.
	k := testKey(7)
	recs, err = st.Query(Query{Key: &k})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("key query: %d rows, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Key != k {
			t.Fatalf("key query returned wrong key %+v", r.Key)
		}
	}
	// Missing key: bloom pruning plus row filter must yield nothing.
	missing := testKey(999)
	recs, err = st.Query(Query{Key: &missing})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("missing-key query returned %d rows", len(recs))
	}
	// Limit.
	recs, err = st.Query(Query{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("limit query: %d rows, want 5", len(recs))
	}
}

// TestTornTailTolerated mirrors the journal/pcap torn-tail contract: a
// store truncated mid-final-segment opens cleanly with every earlier
// segment intact.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flows.seg")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("site-a", testRecs(20, "site-a", 1e9))
	markLen := fileSize(t, w)
	w.Append("site-b", testRecs(20, "site-b", 50e9))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, cut := range map[string]int{
		"mid-meta": markLen + 9,
		"mid-cols": len(full) - 11,
	} {
		torn := filepath.Join(dir, name+".seg")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(torn)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !st.Torn() {
			t.Errorf("%s: Torn() = false, want true", name)
		}
		if st.Segments() != 1 || st.Rows() != 20 {
			t.Errorf("%s: segments=%d rows=%d, want 1/20", name, st.Segments(), st.Rows())
		}
		n := 0
		if err := st.ForEach(func(Rec) error { n++; return nil }); err != nil {
			t.Errorf("%s: ForEach: %v", name, err)
		}
		if n != 20 {
			t.Errorf("%s: read %d rows, want 20", name, n)
		}
		st.Close()
	}
	// Flipping a byte inside the final segment's column data must also be
	// tolerated as a torn tail (CRC catches it).
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-5] ^= 0xFF
	cpath := filepath.Join(dir, "corrupt.seg")
	if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(cpath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Meta is intact so the segment headers scan fine; the damage
	// surfaces when the column block is read.
	if _, err := st.Query(Query{Site: "site-b"}); err == nil {
		t.Error("querying corrupted column data must error")
	}
	if _, err := st.Query(Query{Site: "site-a"}); err != nil {
		t.Errorf("querying intact segment: %v", err)
	}
}

func fileSize(t *testing.T, w *Writer) int {
	t.Helper()
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	size, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		t.Fatal(err)
	}
	return int(size)
}

// FuzzSegmentCodec feeds arbitrary bytes through the store opener and
// query path: decoding must never panic, and any file the fuzzer
// constructs that opens with intact segments must read back without
// out-of-bounds access.
func FuzzSegmentCodec(f *testing.F) {
	// Seed with a real store file.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.seg")
	w, err := Create(path)
	if err != nil {
		f.Fatal(err)
	}
	w.Append("s", testRecs(5, "s", 1e9))
	w.Close()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(bytes.Repeat([]byte{'P', 'W', 'F', 'S'}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.seg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(p)
		if err != nil {
			return
		}
		defer st.Close()
		n := 0
		st.ForEach(func(Rec) error { n++; return nil })
		if int64(n) > st.Rows() {
			t.Fatalf("ForEach yielded %d rows, metadata says %d", n, st.Rows())
		}
		st.Query(Query{FromNs: 1, ToNs: 1 << 40, Limit: 10})
	})
}

// writeStore builds a three-segment store file and returns its path.
func writeStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flows.pwfs")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, recs := range [][]Rec{
		testRecs(50, "site-a", 1e9),
		testRecs(30, "site-b", 100e9),
		testRecs(20, "site-a", 200e9),
	} {
		if err := w.Append(recs[0].Site, recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyClean(t *testing.T) {
	path := writeStore(t)
	rep, err := Verify(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() || rep.MidFile || rep.Segments != 3 || rep.Rows != 100 {
		t.Fatalf("clean store misreported: %+v", rep)
	}
	if rep.Good != rep.Size {
		t.Fatalf("Good %d != Size %d on clean store", rep.Good, rep.Size)
	}
}

func TestVerifyTornTailAndRepair(t *testing.T) {
	path := writeStore(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last segment: drop the final 10 bytes.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail() || rep.MidFile || rep.Segments != 2 {
		t.Fatalf("torn tail misreported: %+v", rep)
	}
	if _, err := Repair(nil, path); err != nil {
		t.Fatal(err)
	}
	rep2, err := Verify(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Damaged() || rep2.Segments != 2 {
		t.Fatalf("repaired store still damaged: %+v", rep2)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Torn() || st.Segments() != 2 {
		t.Fatalf("repaired store opens torn=%v segs=%d", st.Torn(), st.Segments())
	}
}

func TestVerifyMidFileCorruption(t *testing.T) {
	path := writeStore(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the file: later segments stay intact, so the
	// scrub must classify this as mid-file corruption, not a torn tail.
	data[20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() || !rep.MidFile {
		t.Fatalf("mid-file corruption misreported: %+v", rep)
	}
	if rep.TornTail() {
		t.Fatal("mid-file corruption classified as torn tail")
	}
	// Repair truncates to the last valid frame before the damage; the
	// result must open clean.
	if _, err := Repair(nil, path); err != nil {
		t.Fatal(err)
	}
	rep2, err := Verify(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Damaged() {
		t.Fatalf("repaired store still damaged: %+v", rep2)
	}
}

func TestVerifyCatchesColumnBitFlip(t *testing.T) {
	path := writeStore(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the FINAL segment's column data (well past its
	// meta block). Open() tolerates this lazily; Verify must not.
	data[len(data)-3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	segs := st.Segments()
	st.Close()
	if segs != 3 {
		t.Fatalf("Open dropped segments unexpectedly: %d", segs)
	}
	rep, err := Verify(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() || rep.Segments != 2 {
		t.Fatalf("column bit flip not caught: %+v", rep)
	}
}
