package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// shortFn trims a fully-qualified function name to package.Func.
func shortFn(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// WriteReport renders the human-readable critical-path + blame report
// pwprof prints. top bounds table lengths (<= 0 means 10).
func WriteReport(w io.Writer, t *Trace, top int) error {
	if top <= 0 {
		top = 10
	}
	path := t.CriticalPath()
	fo := t.FanOut()
	fmt.Fprintf(w, "provenance trace: %d events, %d roots, span %v\n", fo.Events, fo.Roots, t.Span())
	if len(path) == 0 {
		_, err := fmt.Fprintln(w, "empty trace: no critical path")
		return err
	}
	endEv := path[len(path)-1].Ev
	fmt.Fprintf(w, "critical path: %d events, ends at seq %d (%s, t=%v)\n",
		len(path), endEv.Seq, shortFn(t.FnName(endEv.Fn)), endEv.At)

	byFn, byTag := t.Blame(path)
	fmt.Fprintf(w, "\nblame by site/component (critical-path time):\n")
	writeBlame(w, byTag, top)
	fmt.Fprintf(w, "\nblame by callback (critical-path time):\n")
	writeBlame(w, byFn, top)

	fmt.Fprintf(w, "\ntop critical-path steps:\n")
	idx := make([]int, len(path))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if path[idx[a]].Delta != path[idx[b]].Delta {
			return path[idx[a]].Delta > path[idx[b]].Delta
		}
		return path[idx[a]].Ev.Seq < path[idx[b]].Ev.Seq
	})
	n := top
	if n > len(idx) {
		n = len(idx)
	}
	fmt.Fprintf(w, "  %12s  %16s  %16s  %s\n", "seq", "at", "delta", "callback")
	for _, i := range idx[:n] {
		s := path[i]
		fmt.Fprintf(w, "  %12d  %16v  %16v  %s [%s]\n",
			s.Ev.Seq, s.Ev.At, s.Delta, shortFn(t.FnName(s.Ev.Fn)), t.TagName(s.Ev.Tag))
	}

	fmt.Fprintf(w, "\nfan-out: mean %.3f, max %d children at seq %d (%s)\n",
		fo.MeanOut, fo.MaxOut, fo.MaxSeq, shortFn(fo.MaxFn))
	if t.Torn {
		fmt.Fprintln(w, "note: trace had a torn tail (truncated at the damaged frame)")
	}
	return nil
}

func writeBlame(w io.Writer, entries []BlameEntry, top int) {
	fmt.Fprintf(w, "  %8s  %16s  %7s  %s\n", "steps", "time", "%", "name")
	n := top
	if n > len(entries) {
		n = len(entries)
	}
	for _, e := range entries[:n] {
		fmt.Fprintf(w, "  %8d  %16v  %6.2f%%  %s\n",
			e.Steps, sim.Duration(e.Ns), 100*e.Frac, shortFn(e.Name))
	}
}

// WriteChromeCriticalPath renders the critical path as a Chrome
// trace-viewer array: one "X" slice per hop, placed at the parent's
// timestamp with the hop's delta as duration, one row (tid) per tag.
// Timestamps are sim-time microseconds — this is a sim-plane artifact
// and is byte-identical across serial and laned runs.
func WriteChromeCriticalPath(w io.Writer, t *Trace) error {
	path := t.CriticalPath()
	var b strings.Builder
	b.WriteString("[\n")
	micros := func(ns sim.Time) string {
		return fmt.Sprintf("%d.%03d", int64(ns)/1000, int64(ns)%1000)
	}
	tids := make(map[int32]bool)
	for i, s := range path {
		if i > 0 {
			b.WriteString(",\n")
		}
		start := s.Ev.At - sim.Time(s.Delta)
		if !tids[s.Ev.Tag] {
			tids[s.Ev.Tag] = true
			fmt.Fprintf(&b, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`+",\n",
				s.Ev.Tag, t.TagName(s.Ev.Tag))
		}
		fmt.Fprintf(&b, `{"name":%q,"cat":"critical-path","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{"seq":%d}}`,
			shortFn(t.FnName(s.Ev.Fn)), micros(start), micros(sim.Time(s.Delta)), s.Ev.Tag, s.Ev.Seq)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
